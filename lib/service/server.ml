module J = Obs.Json
module P = Protocol
module Log = Obs.Log
module ME = Obs.Metrics_export

type config = {
  socket_path : string;
  queue_cap : int;
  cache_cap : int;
  timeout : float option;
  jobs : int;
  log : Log.t;
  trace_path : string option;
}

let default_config ~socket_path =
  {
    socket_path;
    queue_cap = 16;
    cache_cap = 64;
    timeout = None;
    jobs = 1;
    log = Log.null;
    trace_path = None;
  }

type job_state =
  | Queued
  | Running
  | Done of J.t
  | Failed of { code : string; msg : string }
  | Cancelled

(* How the executor computes a job: from scratch, or warm-started from a
   projected base partition (a resubmit whose base basis was still
   cached). A warm job that fails for any reason other than cancellation
   falls back to a cold run — the seed is an accelerator, never a
   correctness dependency. *)
type mode = Cold | Warm of Core.Kway.warm

type job = {
  id : int;
  name : string;
  key : string;
  options : Core.Kway.options;
  circuit : Netlist.Circuit.t;  (* canonical; resubmit bases read it *)
  hypergraph : Hypergraph.t;
  mode : mode;
  cancel : bool Atomic.t;
  received_at : float;  (* Obs.Clock.wall at request decode start *)
  decode_ms : int;  (* parse + canonicalise + map + digest *)
  mutable enqueued_at : float;  (* Obs.Clock.wall at queue push *)
  mutable queue_wait_ms : int;
  mutable run_ms : int;
  mutable encode_ms : int;
  mutable total_ms : int;  (* received_at -> terminal state *)
  mutable state : job_state;
}

(* What a resubmit needs from its base beyond the cached document: the
   canonical circuit (to apply the delta to), the mapped hypergraph and
   the partition (to project), and the options (the resubmit default). *)
type basis = {
  b_circuit : Netlist.Circuit.t;
  b_hypergraph : Hypergraph.t;
  b_result : Core.Kway.result;
  b_options : Core.Kway.options;
}

type entry = { doc : J.t; basis : basis }

type t = {
  cfg : config;
  mutex : Mutex.t;
  cond : Condition.t;
      (* broadcast on every job state change, enqueue, and on stopping *)
  obs : Obs.t;
  trace : Obs.t;
      (* tracing sink for per-job lifecycle spans; Noop unless the config
         carries a trace_path. Kept apart from [obs] so the trace artifact
         never bleeds into svc-stats. *)
  log : Log.t;
  slo_queue_wait : ME.Slo.t;
  slo_run : ME.Slo.t;
  slo_e2e : ME.Slo.t;
  started_at : float;
  jobs_tbl : (int, job) Hashtbl.t;
  queue : job Queue.t;
  cache : entry Lru.t;
  mutable next_id : int;
  mutable stopping : bool;
  mutable open_conns : Unix.file_descr list;
}

(* All shared state — queue, job states, the cache, the Obs sinks and SLO
   histograms (their single-writer contracts) — is touched only under
   this lock. Info-level lifecycle log lines are also emitted under it,
   which gives a serialized workload a deterministic log line order.
   Handler threads and the executor are systhreads on one domain, so
   contention is negligible; the partition engine itself runs outside the
   lock. *)
let with_lock t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let state_string = function
  | Queued -> P.state_queued
  | Running -> P.state_running
  | Done _ -> P.state_done
  | Failed _ -> P.state_failed
  | Cancelled -> P.state_cancelled

let ms_since t0 =
  int_of_float (Float.round ((Obs.Clock.wall () -. t0) *. 1000.))

(* Correlation id: content digest prefix + job id. Deterministic for a
   deterministic workload (both components are), unique per job, and
   greppable across every lifecycle line the job emits. *)
let corr (job : job) =
  let d =
    if String.length job.key > 12 then String.sub job.key 0 12 else job.key
  in
  Printf.sprintf "%s:%d" d job.id

let job_fields (job : job) =
  [ ("job", J.Int job.id); ("corr", J.String (corr job)) ]

(* Wall-clock reply breakdown (protocol v2). The parts and the total are
   measured independently — the total spans received_at to the terminal
   state — so clients can see scheduling gaps; the parts still sum to the
   total within lock/wakeup latency. The _ms keys keep these out of any
   scrubbed byte-compare surface (log scrub masks them; the cached result
   document never contains them). *)
let timings_json (job : job) =
  J.Obj
    [
      ("decode_ms", J.Int job.decode_ms);
      ("queue_wait_ms", J.Int job.queue_wait_ms);
      ("run_ms", J.Int job.run_ms);
      ("encode_ms", J.Int job.encode_ms);
      ("total_ms", J.Int job.total_ms);
    ]

(* A job left the queue/run pipeline: stamp the total, feed the
   end-to-end SLO histogram. Caller holds the lock. *)
let finish_job t (job : job) =
  job.total_ms <- ms_since job.received_at;
  Obs.observe t.obs "service.e2e_ms" job.total_ms;
  ME.Slo.observe t.slo_e2e job.total_ms

(* The document a [result] request returns and the cache stores. Scrubbed
   ([_secs] fields nulled) so the bytes are a pure function of the job
   key: the hit replies exactly what the miss computed. The wall-clock
   [timings] object lives in the reply envelope, never in this document —
   that is what keeps cache-hit replies byte-identical. *)
let result_doc (job : job) result =
  Obs.Snapshot.scrub_elapsed
    (J.Obj
       [
         ("schema_version", J.Int Experiments.Obs_report.schema_version);
         ("artifact", J.String "service.result");
         ("circuit", J.String job.name);
         ("digest", J.String job.key);
         ("options", Experiments.Obs_report.options_to_json job.options);
         ("result", Experiments.Obs_report.result_to_json result);
       ])

(* ------------------------------------------------------------------ *)
(* Executor: one thread, strict FIFO                                  *)
(* ------------------------------------------------------------------ *)

let run_job t (job : job) =
  let deadline =
    Option.map (fun s -> Obs.Clock.wall () +. s) t.cfg.timeout
  in
  let should_stop () =
    Atomic.get job.cancel
    || match deadline with
       | Some d -> Obs.Clock.wall () > d
       | None -> false
  in
  let options =
    { job.options with Core.Kway.jobs = t.cfg.jobs; should_stop }
  in
  let started = Obs.Clock.wall () in
  (* Per-job collecting sink: the engine's F-M telemetry rolls up into the
     service-wide throughput metrics below (the sink itself is discarded —
     svc-stats stays O(jobs), not O(moves)). *)
  let job_obs = Obs.create () in
  let library = Fpga.Library.xc3000 in
  let cold () = Core.Kway.partition ~obs:job_obs ~options ~library job.hypergraph in
  let warm_fell_back = ref false in
  let result =
    match job.mode with
    | Cold -> cold ()
    | Warm warm -> (
        match
          Core.Kway.warm_start ~obs:job_obs ~options ~library ~warm
            job.hypergraph
        with
        | Error msg when String.equal msg Core.Kway.cancelled ->
            Error Core.Kway.cancelled
        | Ok r when Result.is_ok (Core.Kway.check job.hypergraph r) -> Ok r
        | Ok _ | Error _ ->
            (* Malformed seed, a part outgrowing every device, or an
               unsound warm result: recompute from scratch. *)
            warm_fell_back := true;
            cold ())
  in
  let run_end = Obs.Clock.wall () in
  let wall = run_end -. started in
  with_lock t (fun () ->
      job.run_ms <- ms_since started;
      Obs.observe t.obs "service.run_ms" job.run_ms;
      ME.Slo.observe t.slo_run job.run_ms;
      Obs.add_span ~pid:job.id t.trace "partition" ~begin_wall:started
        ~end_wall:run_end;
      (match job.mode with
      | Cold -> ()
      | Warm _ ->
          Obs.observe t.obs "service.resubmit_run_ms" (ms_since started);
          if !warm_fell_back then begin
            Obs.incr t.obs "service.resubmit_warm_failed";
            Log.warn t.log "job.warm_fallback" (job_fields job)
          end);
      (let snap = Obs.snapshot job_obs in
       let counter k =
         try List.assoc k snap.Obs.Snapshot.counters with Not_found -> 0
       in
       let applied = counter "fm.applied_ops" in
       if applied > 0 then begin
         (* One observation per job: applied F-M ops over the job's wall
            time. The _per_sec suffix marks it wall-derived, so the
            determinism scrub masks it like the _secs timers. *)
         Obs.observe t.obs "service.fm_moves_per_sec"
           (int_of_float (float_of_int applied /. Float.max wall 1e-9));
         Obs.incr t.obs ~by:(counter "fm.rescored_cells")
           "service.fm_rescored_cells";
         Obs.incr t.obs ~by:applied "service.fm_applied_ops"
       end);
      (match result with
      | Ok r ->
          let encode_start = Obs.Clock.wall () in
          let doc = result_doc job r in
          let encode_end = Obs.Clock.wall () in
          job.encode_ms <- ms_since encode_start;
          Obs.add_span ~pid:job.id t.trace "encode_reply"
            ~begin_wall:encode_start ~end_wall:encode_end;
          job.state <- Done doc;
          Lru.add t.cache job.key
            {
              doc;
              basis =
                {
                  b_circuit = job.circuit;
                  b_hypergraph = job.hypergraph;
                  b_result = r;
                  b_options = job.options;
                };
            };
          Obs.incr t.obs "service.completed";
          finish_job t job;
          Log.info t.log "job.done"
            (job_fields job
            @ [
                ("run_ms", J.Int job.run_ms);
                ("total_ms", J.Int job.total_ms);
              ])
      | Error msg when String.equal msg Core.Kway.cancelled ->
          if Atomic.get job.cancel then (
            job.state <- Cancelled;
            Obs.incr t.obs "service.cancelled";
            finish_job t job;
            Log.info t.log "job.cancelled" (job_fields job))
          else (
            job.state <-
              Failed
                {
                  code = P.code_timeout;
                  msg = "job exceeded the per-job timeout";
                };
            Obs.incr t.obs "service.timeouts";
            finish_job t job;
            Log.warn t.log "job.timeout" (job_fields job))
      | Error msg ->
          job.state <- Failed { code = P.code_infeasible; msg };
          Obs.incr t.obs "service.failed";
          finish_job t job;
          Log.warn t.log "job.failed"
            (job_fields job @ [ ("code", J.String P.code_infeasible) ]));
      Condition.broadcast t.cond)

(* On [stopping] the loop keeps popping until the queue is empty — the
   graceful drain — and only then exits. *)
let rec executor t =
  let next =
    with_lock t (fun () ->
        while Queue.is_empty t.queue && not t.stopping do
          Condition.wait t.cond t.mutex
        done;
        if Queue.is_empty t.queue then None
        else
          let job = Queue.pop t.queue in
          let dequeued = Obs.Clock.wall () in
          job.queue_wait_ms <- ms_since job.enqueued_at;
          Obs.observe t.obs "service.queue_wait_ms" job.queue_wait_ms;
          ME.Slo.observe t.slo_queue_wait job.queue_wait_ms;
          Obs.add_span ~pid:job.id t.trace "queue_wait"
            ~begin_wall:job.enqueued_at ~end_wall:dequeued;
          if Atomic.get job.cancel then (
            job.state <- Cancelled;
            Obs.incr t.obs "service.cancelled";
            finish_job t job;
            Log.info t.log "job.cancelled" (job_fields job);
            Condition.broadcast t.cond;
            Some None)
          else (
            job.state <- Running;
            Log.info t.log "job.dequeue"
              (job_fields job @ [ ("queue_wait_ms", J.Int job.queue_wait_ms) ]);
            Condition.broadcast t.cond;
            Some (Some job)))
  in
  match next with
  | None -> ()
  | Some None -> executor t
  | Some (Some job) ->
      run_job t job;
      executor t

(* ------------------------------------------------------------------ *)
(* Request dispatch                                                   *)
(* ------------------------------------------------------------------ *)

let queue_position t id =
  let pos = ref (-1) and i = ref 0 in
  Queue.iter
    (fun (j : job) ->
      if j.id = id && !pos < 0 then pos := !i;
      incr i)
    t.queue;
  if !pos < 0 then None else Some !pos

(* The wall-clock stamps a handler records on the way to [register_job]:
   request receipt, end of netlist decode, end of
   canonicalise-and-digest. They become the job's [decode_ms] and its
   "decode"/"canonicalise" trace spans. *)
type decode_stamps = { t_received : float; t_decoded : float; t_keyed : float }

(* Register a job in the table (caller holds the lock). The table never
   evicts, which is what lets a resubmit recover its base's canonical
   circuit even after the LRU dropped the cached entry. *)
let register_job t ~name ~key ~options ~circuit ~hypergraph ~mode ~stamps
    state =
  let id = t.next_id in
  t.next_id <- id + 1;
  let job =
    {
      id;
      name;
      key;
      options;
      circuit;
      hypergraph;
      mode;
      cancel = Atomic.make false;
      received_at = stamps.t_received;
      decode_ms =
        int_of_float
          (Float.round ((stamps.t_keyed -. stamps.t_received) *. 1000.));
      enqueued_at = stamps.t_keyed;
      queue_wait_ms = 0;
      run_ms = 0;
      encode_ms = 0;
      total_ms = 0;
      state;
    }
  in
  Hashtbl.replace t.jobs_tbl id job;
  Obs.add_span ~pid:id t.trace "decode" ~begin_wall:stamps.t_received
    ~end_wall:stamps.t_decoded;
  Obs.add_span ~pid:id t.trace "canonicalise" ~begin_wall:stamps.t_decoded
    ~end_wall:stamps.t_keyed;
  job

(* A request answered from the cache: terminal on arrival. *)
let cached_reply t (job : job) ~extra doc =
  finish_job t job;
  Log.info t.log "job.cache_hit"
    (job_fields job @ [ ("digest", J.String job.key) ]);
  P.ok
    ([
       ("job", J.Int job.id);
       ("state", J.String P.state_done);
       ("cached", J.Bool true);
       ("digest", J.String job.key);
     ]
    @ extra
    @ [ ("timings", timings_json job); ("result", doc) ])

let handle_submit t ~name ~format ~netlist ~options =
  let t_received = Obs.Clock.wall () in
  match P.parse_netlist format netlist with
  | Error msg ->
      with_lock t (fun () ->
          Log.warn t.log "job.decode_failed" [ ("name", J.String name) ]);
      P.error ~code:P.code_bad_request ("netlist: " ^ msg)
  | Ok circuit ->
      let t_decoded = Obs.Clock.wall () in
      (* Canonicalise, then map the canonical form: the key and the
         computation see the same node order, so byte-permuted inputs
         share both the cache entry and the exact result bytes. *)
      let canonical = Digest.canonical_circuit circuit in
      let h = Techmap.Mapper.to_hypergraph (Techmap.Mapper.map canonical) in
      let key = Digest.job_key ~library:Fpga.Library.xc3000 ~options h in
      let t_keyed = Obs.Clock.wall () in
      let stamps = { t_received; t_decoded; t_keyed } in
      with_lock t (fun () ->
          let fresh_job =
            register_job t ~name ~key ~options ~circuit:canonical
              ~hypergraph:h ~mode:Cold ~stamps
          in
          match Lru.find t.cache key with
          | Some { doc; _ } ->
              Obs.incr t.obs "service.cache_hit";
              let job = fresh_job (Done doc) in
              cached_reply t job ~extra:[] doc
          | None ->
              Obs.incr t.obs "service.cache_miss";
              if t.stopping then begin
                Log.warn t.log "job.refused_draining"
                  [ ("digest", J.String key) ];
                P.error ~code:P.code_shutting_down
                  "server is draining; not accepting new jobs"
              end
              else if Queue.length t.queue >= t.cfg.queue_cap then begin
                Obs.incr t.obs "service.rejected";
                Log.warn t.log "job.rejected"
                  [
                    ("digest", J.String key);
                    ("queue_depth", J.Int (Queue.length t.queue));
                  ];
                P.error ~code:P.code_overloaded
                  (Printf.sprintf
                     "job queue is full (%d queued); resubmit later"
                     (Queue.length t.queue))
              end
              else begin
                let job = fresh_job Queued in
                job.enqueued_at <- Obs.Clock.wall ();
                Queue.push job t.queue;
                Log.info t.log "job.enqueue"
                  (job_fields job
                  @ [
                      ("name", J.String name);
                      ("digest", J.String key);
                      ("position", J.Int (Queue.length t.queue - 1));
                    ]);
                Condition.broadcast t.cond;
                P.ok
                  [
                    ("job", J.Int job.id);
                    ("state", J.String P.state_queued);
                    ("cached", J.Bool false);
                    ("digest", J.String key);
                    ("position", J.Int (Queue.length t.queue - 1));
                  ]
              end)

(* A batch is its items submitted in order, each with the full submit
   semantics (cache lookup, backpressure) — one frame in, one reply
   carrying a per-item array out. An item that fails (bad netlist, queue
   full) contributes an {"error": ...} element without poisoning its
   siblings; the client pairs items with replies by index. *)
let handle_submit_batch t ~items =
  let replies =
    List.map
      (fun { P.b_name; b_format; b_netlist; b_options } ->
        (* Strip the per-item "ok" tag: the batch reply carries one
           top-level ok; an item is a submit reply shape on success and
           an {"error": ...} object on failure. *)
        match
          handle_submit t ~name:b_name ~format:b_format ~netlist:b_netlist
            ~options:b_options
        with
        | J.Obj (("ok", J.Bool _) :: fields) -> J.Obj fields
        | other -> other)
      items
  in
  with_lock t (fun () ->
      Obs.incr t.obs "service.batches";
      Obs.observe t.obs "service.batch_size" (List.length items));
  P.ok [ ("items", J.List replies) ]

let job_not_found id =
  P.error ~code:P.code_not_found (Printf.sprintf "no such job: %d" id)

(* ------------------------------------------------------------------ *)
(* Resubmit: incremental repartitioning                               *)
(* ------------------------------------------------------------------ *)

(* Resolve a resubmit's base to (key, canonical circuit, options, cached
   entry). The cached entry carries the warm context; it is [None] when
   the LRU evicted it (or the base job has not finished) — the resubmit
   then falls back to a cold run, because lineage eviction must never
   strand a chain, only slow it down. The canonical circuit itself is
   always recoverable: by-id from the job table (which never evicts),
   by-digest from the table scan. Caller holds the lock. *)
let resolve_base t base =
  match base with
  | `Job id -> (
      match Hashtbl.find_opt t.jobs_tbl id with
      | None -> Error (job_not_found id)
      | Some job ->
          Ok (job.key, job.circuit, job.options, Lru.find t.cache job.key))
  | `Digest key -> (
      match Lru.find t.cache key with
      | Some e -> Ok (key, e.basis.b_circuit, e.basis.b_options, Some e)
      | None -> (
          let recovered =
            Hashtbl.fold
              (fun _ (j : job) acc ->
                if acc = None && String.equal j.key key then Some j else acc)
              t.jobs_tbl None
          in
          match recovered with
          | Some j -> Ok (key, j.circuit, j.options, None)
          | None ->
              Error
                (P.error ~code:P.code_not_found
                   ("no job or cached result with digest " ^ key))))

let handle_resubmit t ~name ~base ~delta ~options =
  let t_received = Obs.Clock.wall () in
  let resolved =
    with_lock t (fun () ->
        Obs.incr t.obs "service.resubmit_requests";
        resolve_base t base)
  in
  match resolved with
  | Error reply -> reply
  | Ok (base_key, base_circuit, base_options, base_entry)
    when (match options with
         | Some (o : Core.Kway.options) ->
             not
               (String.equal o.Core.Kway.objective.Fpga.Objective.name
                  base_options.Core.Kway.objective.Fpga.Objective.name)
         | None -> false) ->
      (* A warm chain cannot switch cost objectives mid-lineage: the base
         partition was shaped (device choices, split decisions) by its
         objective, so projecting it under another would launder a
         foreign seed into the new objective's cache lineage. Reject
         loudly; the client submits cold instead. *)
      ignore (base_key, base_circuit, base_entry);
      with_lock t (fun () -> Obs.incr t.obs "service.bad_requests");
      let requested =
        match options with
        | Some (o : Core.Kway.options) ->
            o.Core.Kway.objective.Fpga.Objective.name
        | None -> assert false
      in
      P.error ~code:P.code_bad_request
        (Printf.sprintf
           "resubmit: objective %S differs from the base's %S; a warm \
            lineage keeps one objective (submit cold to switch)"
           requested
           base_options.Core.Kway.objective.Fpga.Objective.name)
  | Ok (base_key, base_circuit, base_options, base_entry) -> (
      let options = Option.value options ~default:base_options in
      let same_options =
        String.equal
          (Digest.options_fingerprint options)
          (Digest.options_fingerprint base_options)
      in
      match base_entry with
      | Some entry when Netlist.Delta.is_empty delta && same_options ->
          (* Delta of nothing: the request asks for the base partition
             itself. Reply the cached document verbatim — byte-identical
             to the submit reply that populated it — without mapping or
             running anything (service.fm_applied_ops is untouched). *)
          let t_keyed = Obs.Clock.wall () in
          let stamps = { t_received; t_decoded = t_keyed; t_keyed } in
          with_lock t (fun () ->
              Obs.incr t.obs "service.resubmit_noop";
              Obs.incr t.obs "service.cache_hit";
              let job =
                register_job t ~name ~key:base_key ~options
                  ~circuit:base_circuit ~hypergraph:entry.basis.b_hypergraph
                  ~mode:Cold ~stamps (Done entry.doc)
              in
              cached_reply t job ~extra:[] entry.doc)
      | _ -> (
          match Netlist.Delta.apply base_circuit delta with
          | Error e ->
              with_lock t (fun () ->
                  Obs.incr t.obs "service.bad_requests";
                  Log.warn t.log "job.decode_failed"
                    [ ("name", J.String name); ("delta", J.Bool true) ]);
              P.error ~code:P.code_bad_request
                ("delta: " ^ Netlist.Delta.error_to_string e)
          | Ok edited ->
              let t_decoded = Obs.Clock.wall () in
              (* Delta.apply rebuilds canonically — the edited circuit is
                 already in digest node order, exactly like a submit's
                 canonicalised circuit. *)
              let h =
                Techmap.Mapper.to_hypergraph (Techmap.Mapper.map edited)
              in
              let key_e =
                Digest.job_key ~library:Fpga.Library.xc3000 ~options h
              in
              let mode, warm_shape =
                match base_entry with
                | None -> (Cold, None)
                | Some { basis; _ } ->
                    let base_labels, base_replicated =
                      Core.Kway.labels_of_parts basis.b_hypergraph
                        basis.b_result.Core.Kway.parts
                    in
                    let proj =
                      Projection.project ~base:basis.b_hypergraph ~base_labels
                        ~base_dirty:base_replicated h
                    in
                    let warm =
                      {
                        Core.Kway.w_labels = proj.Projection.labels;
                        w_dirty = proj.Projection.dirty;
                        w_devices =
                          Array.of_list
                            (List.map
                               (fun p -> p.Core.Kway.device)
                               basis.b_result.Core.Kway.parts);
                      }
                    in
                    let dirty =
                      Array.fold_left
                        (fun a d -> if d then a + 1 else a)
                        0 proj.Projection.dirty
                    in
                    (Warm warm, Some (dirty, proj.Projection.added))
              in
              (* A warm result depends on which partition seeded it, so it
                 caches under the lineage key; a cold fallback is a plain
                 run of the edited circuit and shares the cold key (and
                 its byte-determinism contract). *)
              let key =
                match mode with
                | Cold -> key_e
                | Warm _ -> Digest.lineage_key ~base:base_key ~edited:key_e
              in
              let cold_fallback =
                match mode with Cold -> true | Warm _ -> false
              in
              let t_keyed = Obs.Clock.wall () in
              let stamps = { t_received; t_decoded; t_keyed } in
              with_lock t (fun () ->
                  match Lru.find t.cache key with
                  | Some { doc; _ } ->
                      Obs.incr t.obs "service.cache_hit";
                      let job =
                        register_job t ~name ~key ~options ~circuit:edited
                          ~hypergraph:h ~mode:Cold ~stamps (Done doc)
                      in
                      cached_reply t job
                        ~extra:[ ("cold_fallback", J.Bool cold_fallback) ]
                        doc
                  | None ->
                      Obs.incr t.obs "service.cache_miss";
                      if t.stopping then begin
                        Log.warn t.log "job.refused_draining"
                          [ ("digest", J.String key) ];
                        P.error ~code:P.code_shutting_down
                          "server is draining; not accepting new jobs"
                      end
                      else if Queue.length t.queue >= t.cfg.queue_cap then begin
                        Obs.incr t.obs "service.rejected";
                        Log.warn t.log "job.rejected"
                          [
                            ("digest", J.String key);
                            ("queue_depth", J.Int (Queue.length t.queue));
                          ];
                        P.error ~code:P.code_overloaded
                          (Printf.sprintf
                             "job queue is full (%d queued); resubmit later"
                             (Queue.length t.queue))
                      end
                      else begin
                        (match mode with
                        | Warm _ ->
                            Obs.incr t.obs "service.resubmit_warm";
                            (match warm_shape with
                            | Some (dirty, seeded) ->
                                Obs.observe t.obs
                                  "service.resubmit_dirty_cells" dirty;
                                Obs.observe t.obs
                                  "service.resubmit_seeded_cells" seeded
                            | None -> ())
                        | Cold ->
                            Obs.incr t.obs "service.resubmit_cold_fallback");
                        let job =
                          register_job t ~name ~key ~options ~circuit:edited
                            ~hypergraph:h ~mode ~stamps Queued
                        in
                        job.enqueued_at <- Obs.Clock.wall ();
                        Queue.push job t.queue;
                        Log.info t.log "job.enqueue"
                          (job_fields job
                          @ [
                              ("name", J.String name);
                              ("digest", J.String key);
                              ("base", J.String base_key);
                              ("cold_fallback", J.Bool cold_fallback);
                              ("position", J.Int (Queue.length t.queue - 1));
                            ]);
                        Condition.broadcast t.cond;
                        P.ok
                          [
                            ("job", J.Int job.id);
                            ("state", J.String P.state_queued);
                            ("cached", J.Bool false);
                            ("digest", J.String key);
                            ("cold_fallback", J.Bool cold_fallback);
                            ("position", J.Int (Queue.length t.queue - 1));
                          ]
                      end)))

let handle_status t id =
  with_lock t (fun () ->
      match Hashtbl.find_opt t.jobs_tbl id with
      | None -> job_not_found id
      | Some job ->
          let fields =
            [
              ("job", J.Int id);
              ("state", J.String (state_string job.state));
            ]
          in
          let fields =
            match job.state with
            | Queued -> (
                match queue_position t id with
                | Some p -> fields @ [ ("position", J.Int p) ]
                | None -> fields)
            | _ -> fields
          in
          P.ok fields)

let handle_result t ~id ~wait =
  with_lock t (fun () ->
      match Hashtbl.find_opt t.jobs_tbl id with
      | None -> job_not_found id
      | Some job ->
          if wait then
            (* The executor drains the queue even while stopping, so
               every job reaches a terminal state and this wait always
               ends. *)
            while
              match job.state with Queued | Running -> true | _ -> false
            do
              Condition.wait t.cond t.mutex
            done;
          (match job.state with
          | Queued | Running ->
              P.error ~code:P.code_pending
                (Printf.sprintf "job %d is %s" id (state_string job.state))
          | Done doc ->
              P.ok
                [
                  ("job", J.Int id);
                  ("state", J.String P.state_done);
                  ("timings", timings_json job);
                  ("result", doc);
                ]
          | Failed { code; msg } -> P.error ~code msg
          | Cancelled ->
              P.error ~code:P.code_cancelled
                (Printf.sprintf "job %d was cancelled" id)))

let handle_cancel t id =
  with_lock t (fun () ->
      match Hashtbl.find_opt t.jobs_tbl id with
      | None -> job_not_found id
      | Some job ->
          let cancelling =
            match job.state with Queued | Running -> true | _ -> false
          in
          if cancelling then begin
            (* The executor notices: a queued job is skipped when
               popped, a running one aborts at the engine's next
               should_stop poll. *)
            Atomic.set job.cancel true;
            Log.info t.log "job.cancel" (job_fields job);
            Condition.broadcast t.cond
          end;
          P.ok
            [
              ("job", J.Int id);
              ("state", J.String (state_string job.state));
              ("cancelling", J.Bool cancelling);
            ])

let handle_stats t =
  with_lock t (fun () ->
      P.ok
        [
          ( "stats",
            J.Obj
              [
                ( "schema_version",
                  J.Int Experiments.Obs_report.schema_version );
                ("artifact", J.String "service.stats");
                ("queue_len", J.Int (Queue.length t.queue));
                ("queue_cap", J.Int t.cfg.queue_cap);
                ( "cache",
                  J.Obj
                    [
                      ("len", J.Int (Lru.length t.cache));
                      ("cap", J.Int (Lru.cap t.cache));
                    ] );
                ("obs", Obs.Snapshot.to_json (Obs.snapshot t.obs));
              ] );
        ])

let inflight t =
  Hashtbl.fold
    (fun _ (j : job) acc -> match j.state with Running -> acc + 1 | _ -> acc)
    t.jobs_tbl 0

(* The OpenMetrics exposition (the [metrics] verb). Counters and
   histograms come straight from the Obs snapshot; gauges are sampled
   here, under the lock, so depth/inflight/cache readings are a
   consistent cut of server state. *)
let handle_metrics t =
  with_lock t (fun () ->
      let snap = Obs.snapshot t.obs in
      let counter k =
        try List.assoc k snap.Obs.Snapshot.counters with Not_found -> 0
      in
      let hits = counter "service.cache_hit" in
      let misses = counter "service.cache_miss" in
      let hit_ratio =
        if hits + misses = 0 then 0.0
        else float_of_int hits /. float_of_int (hits + misses)
      in
      let g = Gc.quick_stat () in
      let gauge g_name g_help g_value =
        { ME.g_name; g_help; g_value; g_labels = [] }
      in
      let gauges =
        [
          gauge "queue_depth" "Jobs queued and not yet running."
            (float_of_int (Queue.length t.queue));
          gauge "queue_capacity" "Queue bound; submits beyond it are refused."
            (float_of_int t.cfg.queue_cap);
          gauge "inflight_jobs" "Jobs currently running on the executor."
            (float_of_int (inflight t));
          gauge "cache_entries" "Result documents held by the LRU cache."
            (float_of_int (Lru.length t.cache));
          gauge "cache_capacity" "LRU cache bound."
            (float_of_int (Lru.cap t.cache));
          gauge "cache_hit_ratio" "Cache hits over hits + misses."
            hit_ratio;
          gauge "jobs_registered" "Jobs accepted since startup."
            (float_of_int (t.next_id - 1));
          gauge "uptime_seconds" "Wall-clock seconds since startup."
            (Obs.Clock.wall () -. t.started_at);
          gauge "gc_heap_words" "Gc.quick_stat heap words (live major heap)."
            (float_of_int g.Gc.heap_words);
          gauge "gc_major_collections" "Major GC cycles since startup."
            (float_of_int g.Gc.major_collections);
          gauge "gc_minor_collections" "Minor GC cycles since startup."
            (float_of_int g.Gc.minor_collections);
        ]
      in
      let slos =
        [
          ( "service_queue_wait_seconds",
            "Time from enqueue to dequeue per executed job.",
            t.slo_queue_wait );
          ( "service_run_seconds",
            "Partition engine wall time per executed job.",
            t.slo_run );
          ( "service_e2e_seconds",
            "Request decode to terminal job state, end to end.",
            t.slo_e2e );
        ]
      in
      P.ok [ ("metrics", J.String (ME.render ~gauges ~slos snap)) ])

let handle_health t =
  with_lock t (fun () ->
      P.ok
        [
          ( "health",
            J.Obj
              [
                ( "state",
                  J.String (if t.stopping then "draining" else "accepting") );
                ("protocol_version", J.Int P.protocol_version);
                ( "stats_schema_version",
                  J.Int Experiments.Obs_report.schema_version );
                ("uptime_secs", J.Float (Obs.Clock.wall () -. t.started_at));
                ("queue_depth", J.Int (Queue.length t.queue));
                ("queue_cap", J.Int t.cfg.queue_cap);
                ("inflight", J.Int (inflight t));
                ( "cache",
                  J.Obj
                    [
                      ("len", J.Int (Lru.length t.cache));
                      ("cap", J.Int (Lru.cap t.cache));
                    ] );
                ("jobs_total", J.Int (t.next_id - 1));
              ] );
        ])

let handle_shutdown t =
  with_lock t (fun () ->
      t.stopping <- true;
      Log.info t.log "server.drain"
        [ ("queue_depth", J.Int (Queue.length t.queue)) ];
      Condition.broadcast t.cond;
      P.ok [ ("stopping", J.Bool true) ])

let dispatch t = function
  | P.Submit { name; format; netlist; options; envelope = _ } ->
      (* The single-process daemon accepts the v3 envelope and ignores
         it: strict FIFO is its documented behaviour. *)
      handle_submit t ~name ~format ~netlist ~options
  | P.Submit_batch { items; envelope = _ } -> handle_submit_batch t ~items
  | P.Fleet_stats ->
      P.error ~code:P.code_bad_request
        "fleet-stats requires a fleet scheduler (serve --workers N)"
  | P.Resubmit { name; base; delta; options } ->
      handle_resubmit t ~name ~base ~delta ~options
  | P.Status id -> handle_status t id
  | P.Result { job; wait } -> handle_result t ~id:job ~wait
  | P.Cancel id -> handle_cancel t id
  | P.Stats -> handle_stats t
  | P.Metrics -> handle_metrics t
  | P.Health -> handle_health t
  | P.Shutdown -> handle_shutdown t

let verb_name = function
  | P.Submit _ -> "submit"
  | P.Submit_batch _ -> "submit-batch"
  | P.Fleet_stats -> "fleet-stats"
  | P.Resubmit _ -> "resubmit"
  | P.Status _ -> "status"
  | P.Result _ -> "result"
  | P.Cancel _ -> "cancel"
  | P.Stats -> "stats"
  | P.Metrics -> "metrics"
  | P.Health -> "health"
  | P.Shutdown -> "shutdown"

(* ------------------------------------------------------------------ *)
(* Connections                                                        *)
(* ------------------------------------------------------------------ *)

let forget_conn t fd =
  with_lock t (fun () ->
      t.open_conns <- List.filter (fun fd' -> fd' <> fd) t.open_conns);
  try Unix.close fd with Unix.Unix_error _ -> ()

(* One thread per connection; frames are handled in order. A bad frame
   gets an error reply and the connection is closed (the stream position
   is unknowable); a bad *request* in a good frame only costs an error
   reply — the connection survives. Accept/decode logging stays at debug:
   its interleaving across handler threads is scheduling-dependent, so
   only the info-level lifecycle stream (emitted under the state lock) is
   held to the byte-determinism contract. *)
let rec handle_conn t fd =
  match Codec.read_frame fd with
  | Error `Eof -> forget_conn t fd
  | Error err ->
      with_lock t (fun () ->
          Obs.incr t.obs "service.bad_requests";
          Log.warn t.log "request.bad_frame" []);
      (try
         Codec.write_frame fd
           (P.error ~code:P.code_bad_request (Codec.read_error_to_string err))
       with Unix.Unix_error _ -> ());
      forget_conn t fd
  | Ok json -> (
      with_lock t (fun () -> Obs.incr t.obs "service.requests");
      let reply =
        match P.request_of_json json with
        | Error (code, msg) ->
            with_lock t (fun () ->
                Obs.incr t.obs "service.bad_requests";
                Log.warn t.log "request.bad" [ ("code", J.String code) ]);
            P.error ~code msg
        | Ok req ->
            Log.debug t.log "request.decode"
              [ ("verb", J.String (verb_name req)) ];
            dispatch t req
      in
      match Codec.write_frame fd reply with
      | () -> handle_conn t fd
      | exception Unix.Unix_error _ -> forget_conn t fd)

(* ------------------------------------------------------------------ *)
(* Accept loop and lifecycle                                          *)
(* ------------------------------------------------------------------ *)

(* A SIGKILLed daemon leaves its socket file behind, and blindly
   unlinking it would clobber a *live* daemon's socket instead. Probe
   with connect first: success means someone is accepting on the path
   (refuse to bind); ECONNREFUSED means nothing is listening, so the
   file is a stale leftover and safe to unlink. *)
let bind_socket path =
  let probe_existing () =
    match Unix.lstat path with
    | { Unix.st_kind = Unix.S_SOCK; _ } -> (
        let probe = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
        Fun.protect
          ~finally:(fun () ->
            try Unix.close probe with Unix.Unix_error _ -> ())
          (fun () ->
            match Unix.connect probe (Unix.ADDR_UNIX path) with
            | () -> `Live
            | exception Unix.Unix_error (Unix.ECONNREFUSED, _, _) -> `Stale
            | exception Unix.Unix_error _ -> `Leave))
    | _ -> `Leave
    | exception Unix.Unix_error (Unix.ENOENT, _, _) -> `Absent
  in
  match probe_existing () with
  | `Live ->
      Error
        (Printf.sprintf
           "cannot bind %s: a live daemon is already accepting on it" path)
  | (`Stale | `Leave | `Absent) as probed ->
      (if probed = `Stale then
         try Unix.unlink path with Unix.Unix_error _ -> ());
      let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  match Unix.bind sock (Unix.ADDR_UNIX path) with
  | () ->
      Unix.listen sock 16;
      Ok sock
  | exception Unix.Unix_error (e, _, _) ->
      (try Unix.close sock with Unix.Unix_error _ -> ());
      Error
        (Printf.sprintf "cannot bind %s: %s" path (Unix.error_message e))

let run ?(on_ready = fun () -> ()) ?(external_stop = fun () -> false) cfg =
  (* A client that disconnects before reading its reply must surface as
     [EPIPE] in the connection handler, not as a process-killing
     SIGPIPE. *)
  ignore (Sys.signal Sys.sigpipe Sys.Signal_ignore);
  let t =
    {
      cfg;
      mutex = Mutex.create ();
      cond = Condition.create ();
      obs = Obs.create ();
      trace =
        (match cfg.trace_path with
        | Some _ -> Obs.create ~trace:true ()
        | None -> Obs.noop);
      log = cfg.log;
      slo_queue_wait = ME.Slo.create ();
      slo_run = ME.Slo.create ();
      slo_e2e = ME.Slo.create ();
      started_at = Obs.Clock.wall ();
      jobs_tbl = Hashtbl.create 64;
      queue = Queue.create ();
      cache = Lru.create ~cap:cfg.cache_cap;
      next_id = 1;
      stopping = false;
      open_conns = [];
    }
  in
  match bind_socket cfg.socket_path with
  | Error _ as e -> e
  | Ok sock ->
      let exec_thread = Thread.create executor t in
      let conn_threads = ref [] in
      with_lock t (fun () ->
          Log.info t.log "server.start"
            [
              ("protocol_version", J.Int P.protocol_version);
              ("queue_cap", J.Int cfg.queue_cap);
              ("cache_cap", J.Int cfg.cache_cap);
            ]);
      on_ready ();
      let rec accept_loop () =
        if external_stop () then
          with_lock t (fun () ->
              t.stopping <- true;
              Log.info t.log "server.drain"
                [ ("queue_depth", J.Int (Queue.length t.queue)) ];
              Condition.broadcast t.cond)
        else if with_lock t (fun () -> t.stopping) then ()
        else
          match Unix.select [ sock ] [] [] 0.2 with
          | [], _, _ -> accept_loop ()
          | _ -> (
              match Unix.accept sock with
              | fd, _ ->
                  with_lock t (fun () ->
                      t.open_conns <- fd :: t.open_conns;
                      Log.debug t.log "conn.accept" []);
                  conn_threads :=
                    Thread.create (handle_conn t) fd :: !conn_threads;
                  accept_loop ()
              | exception Unix.Unix_error (Unix.EINTR, _, _) ->
                  accept_loop ())
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> accept_loop ()
      in
      accept_loop ();
      with_lock t (fun () ->
          t.stopping <- true;
          Condition.broadcast t.cond);
      (* Drain: queued jobs finish (or are cancelled), waiting clients
         get their replies. *)
      Thread.join exec_thread;
      (* Idle connections would park their handlers in read() forever;
         shutting the sockets down turns that into a clean EOF. *)
      with_lock t (fun () -> t.open_conns)
      |> List.iter (fun fd ->
             try Unix.shutdown fd Unix.SHUTDOWN_ALL
             with Unix.Unix_error _ -> ());
      List.iter Thread.join !conn_threads;
      (try Unix.close sock with Unix.Unix_error _ -> ());
      (try Unix.unlink cfg.socket_path with Unix.Unix_error _ -> ());
      (match cfg.trace_path with
      | Some path -> Obs.Trace.write ~path t.trace
      | None -> ());
      with_lock t (fun () ->
          Log.info t.log "server.stopped"
            [ ("jobs_total", J.Int (t.next_id - 1)) ]);
      Ok ()
