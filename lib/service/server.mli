(** The partitioning daemon: a long-lived server accepting jobs over a
    Unix-domain socket.

    One accept loop, one handler thread per connection, and a single
    executor thread that runs jobs strictly in FIFO order on the
    existing {!Parallel.Pool} machinery (via [jobs] in
    {!Core.Kway.options}). The queue is bounded: a [submit] past
    [queue_cap] is refused with the typed [overloaded] error rather than
    queued — backpressure instead of unbounded memory.

    Results are cached in an LRU keyed by {!Digest.job_key}, computed on
    the {e canonicalised} circuit ({!Digest.canonical_circuit}), so two
    submissions of semantically identical netlists — even with permuted
    lines — share one computation. The cached document is the scrubbed
    result document ({!Obs.Snapshot.scrub_elapsed}), so a cache hit
    replies byte-identically to the miss that populated it.

    A [resubmit] applies a {!Netlist.Delta} to a base job's canonical
    circuit and warm-starts the k-way driver from the base partition
    projected onto the edit ({!Core.Kway.warm_start}), falling back to a
    cold run — flagged [cold_fallback] in the reply — when the base's
    cached context was evicted. Warm results cache under a
    {!Digest.lineage_key} (base key × edited key) so they never collide
    with the cold key's byte-determinism contract; the empty delta
    replies with the cached base document verbatim, running nothing.

    Every request, hit, miss, rejection, cancellation, timeout, and the
    queue-wait / run-time distributions are recorded through {!Obs} and
    exposed by the [stats] verb ([service.resubmit_*] counters cover the
    incremental path). The [metrics] verb renders the same sink — plus
    live gauges (queue depth, inflight, cache occupancy, GC) and SLO
    latency histograms for queue-wait / run / end-to-end — as an
    OpenMetrics text exposition ({!Obs.Metrics_export}), and [health]
    answers a liveness probe without touching the queue.

    Observability is layered on three channels, each with its own
    determinism contract:
    - {e Structured logs} ({!Obs.Log}): JSON lines with a per-job
      correlation id ([corr] = digest prefix [:] job id) on every
      lifecycle line. Info-level lifecycle events (cache_hit, enqueue,
      dequeue, done/failed/timeout/cancelled, drain) are emitted under
      the state lock, so a serialized workload logs them in a
      deterministic order; with scrub on, the line bytes are
      deterministic too. Accept/decode chatter stays at debug, outside
      the contract.
    - {e Reply timings} (protocol v2): every [result]/cached reply
      carries a wall-clock [timings] breakdown in the reply envelope —
      never inside the cached result document, which keeps cache-hit
      byte-identity intact.
    - {e Per-job trace} ([trace_path]): one span lane per job id with
      the decode → canonicalise → queue_wait → partition → encode_reply
      lifecycle, written as a Chrome trace-event file at shutdown.

    Shutdown (the [shutdown] verb, or SIGINT/SIGTERM via
    [external_stop]) is a graceful drain: no new connections or
    submissions are accepted, queued jobs still run to completion (a
    [cancel] can empty the queue faster), waiting clients get their
    replies, then the socket is unlinked and {!run} returns. *)

type config = {
  socket_path : string;
  queue_cap : int;  (** max queued (not yet running) jobs *)
  cache_cap : int;  (** max cached result documents *)
  timeout : float option;
      (** per-job wall-clock budget in seconds; exceeding it fails the
          job with the [timeout] error code (cooperatively — the engine
          stops at the next pass boundary) *)
  jobs : int;  (** domains per job, as [fpgapart partition --jobs] *)
  log : Obs.Log.t;
      (** structured-log sink; {!Obs.Log.null} silences the server *)
  trace_path : string option;
      (** when set, write the per-job lifecycle trace (Chrome
          trace-event JSON) here at shutdown *)
}

val default_config : socket_path:string -> config
(** [queue_cap = 16], [cache_cap = 64], no timeout, [jobs = 1], no log
    sink, no trace. *)

val bind_socket : string -> (Unix.file_descr, string) result
(** Bind and listen on a Unix-domain socket path. An existing socket
    file is connect-probed first: if a daemon answers, the bind is
    refused ([Error], never clobbering the live socket); if the connect
    is refused, the file is a stale leftover (e.g. from a SIGKILLed
    process) and is unlinked before binding. The fleet scheduler reuses
    this for its public and per-worker sockets. *)

val run :
  ?on_ready:(unit -> unit) ->
  ?external_stop:(unit -> bool) ->
  config ->
  (unit, string) result
(** Bind the socket ({!bind_socket}: stale leftovers are unlinked, a
    live daemon's socket refuses the bind), serve until shutdown, clean
    up, return. [on_ready] fires once the socket is
    listening — tests use it to know when to connect. [external_stop] is
    polled a few times a second by the accept loop; returning [true]
    triggers the same drain as the [shutdown] verb (the CLI passes the
    SIGINT/SIGTERM flag from {!Signals.install_stop_flag}). [Error] only
    when the socket cannot be bound. *)
