(** Wire format of the partition service: length-prefixed JSON frames over
    a Unix-domain socket.

    A frame is a 4-byte big-endian payload length followed by that many
    bytes of UTF-8 JSON (one {!Obs.Json.t} document). Both sides use the
    same codec, so the client and the daemon cannot drift on framing.

    The reader enforces {!max_frame}: a length prefix beyond the limit is
    reported as [`Oversized] {e without} allocating or reading the
    payload, which is what lets the daemon shrug off garbage bytes (a
    random 4-byte prefix is almost always a huge bogus length) as well as
    deliberate memory-exhaustion frames. After any read error the stream
    position is unspecified — close the connection. *)

val max_frame : int
(** Default payload cap, 16 MiB — generous for netlist texts, small
    enough that a malicious length prefix cannot balloon the daemon. *)

type read_error =
  [ `Eof  (** clean end of stream before any byte of a frame *)
  | `Oversized of int  (** declared payload length beyond the cap *)
  | `Truncated  (** stream ended mid-frame *)
  | `Malformed of string  (** payload is not valid JSON *) ]

val read_error_to_string : read_error -> string

val read_frame :
  ?max_frame:int -> Unix.file_descr -> (Obs.Json.t, read_error) result

val write_frame : Unix.file_descr -> Obs.Json.t -> unit
(** Raises [Unix.Unix_error] if the peer is gone (the caller treats any
    raise as "connection lost"). *)
