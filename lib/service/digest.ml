module C = Netlist.Circuit

(* Rebuild the circuit resolving nodes in sorted-name order. Signal names
   are unique (the Builder enforces it), so the resulting numbering is a
   pure function of the circuit's structure — the declaration order of the
   source file is forgotten. Resolution is the same DFS-with-DFF-
   placeholders scheme the netlist parsers use: a flip-flop's D cone may
   read its own Q, so DFFs enter as placeholders and get wired after all
   nodes exist. *)
let canonical_circuit c =
  let names =
    Array.to_list (Array.map (fun (n : C.node) -> n.C.name) c.C.nodes)
    |> List.sort String.compare
  in
  let b = C.Builder.create ~name:c.C.name () in
  let ids = Hashtbl.create (Array.length c.C.nodes) in
  let rec resolve old_id =
    let node = C.node c old_id in
    match Hashtbl.find_opt ids node.C.name with
    | Some id -> id
    | None ->
        let id =
          match node.C.kind with
          | Netlist.Gate.Input -> C.Builder.input b node.C.name
          | Netlist.Gate.Dff -> C.Builder.dff_placeholder b node.C.name
          | kind ->
              let fanins =
                Array.to_list (Array.map resolve node.C.fanins)
              in
              C.Builder.gate b ~name:node.C.name kind fanins
        in
        Hashtbl.replace ids node.C.name id;
        id
  in
  List.iter
    (fun name ->
      match C.find c name with
      | Some old_id -> ignore (resolve old_id)
      | None -> assert false)
    names;
  Array.iter
    (fun (node : C.node) ->
      if Netlist.Gate.equal node.C.kind Netlist.Gate.Dff then
        C.Builder.connect_dff b
          (Hashtbl.find ids node.C.name)
          (resolve node.C.fanins.(0)))
    c.C.nodes;
  Array.to_list c.C.outputs
  |> List.map (fun id -> (C.node c id).C.name)
  |> List.sort String.compare
  |> List.iter (fun name -> C.Builder.mark_output b (Hashtbl.find ids name));
  C.Builder.finish b

let md5_hex s = Stdlib.Digest.to_hex (Stdlib.Digest.string s)

let add_ints buf ints =
  Array.iter (fun i -> Buffer.add_string buf (string_of_int i ^ ",")) ints

let hypergraph_fingerprint (h : Hypergraph.t) =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf (Printf.sprintf "cells=%d;" (Hypergraph.num_cells h));
  Array.iter
    (fun (cell : Hypergraph.cell) ->
      Buffer.add_string buf cell.Hypergraph.name;
      Buffer.add_char buf '#';
      Buffer.add_string buf (string_of_int cell.Hypergraph.area);
      Buffer.add_string buf ";dem:";
      add_ints buf cell.Hypergraph.demand;
      Buffer.add_string buf ";in:";
      add_ints buf cell.Hypergraph.inputs;
      Buffer.add_string buf ";out:";
      add_ints buf cell.Hypergraph.outputs;
      Buffer.add_string buf ";sup:";
      Array.iter
        (fun s ->
          add_ints buf (Array.of_list (Bitvec.to_list s));
          Buffer.add_char buf '|')
        cell.Hypergraph.supports;
      Buffer.add_char buf '\n')
    h.Hypergraph.cells;
  Buffer.add_string buf (Printf.sprintf "nets=%d;" h.Hypergraph.num_nets);
  Array.iteri
    (fun n name ->
      Buffer.add_string buf name;
      Buffer.add_string buf (if h.Hypergraph.net_external.(n) then "!;" else ";"))
    h.Hypergraph.net_names;
  md5_hex (Buffer.contents buf)

(* The scalar fields are cached views of the vectors, but both go into
   the hash anyway: two devices that differ only on a secondary axis
   (say BRAM capacity) are different parts and must not share job
   keys. *)
let library_fingerprint lib =
  let buf = Buffer.create 256 in
  List.iter
    (fun (d : Fpga.Device.t) ->
      Buffer.add_string buf
        (Printf.sprintf "%s:%d:%d:%.6f:%.6f:%.6f;res:" d.Fpga.Device.name
           d.Fpga.Device.capacity d.Fpga.Device.terminals d.Fpga.Device.price
           d.Fpga.Device.util_low d.Fpga.Device.util_high);
      add_ints buf d.Fpga.Device.resources;
      Buffer.add_string buf ";win:";
      Array.iteri
        (fun a low ->
          Buffer.add_string buf
            (Printf.sprintf "%.6f..%.6f," low d.Fpga.Device.res_high.(a)))
        d.Fpga.Device.res_low;
      Buffer.add_char buf '\n')
    (Fpga.Library.devices lib);
  md5_hex (Buffer.contents buf)

(* The options JSON of the stats schema is exactly the result-shaping
   subset (jobs and should_stop are execution knobs, deliberately absent
   there), so its deterministic rendering is the right hash input. *)
let options_fingerprint options =
  md5_hex (Obs.Json.to_string (Experiments.Obs_report.options_to_json options))

let job_key ~library ~options h =
  md5_hex
    (hypergraph_fingerprint h ^ "/" ^ library_fingerprint library ^ "/"
   ^ options_fingerprint options)

let lineage_key ~base ~edited = md5_hex (base ^ ">" ^ edited)
