(** Content-addressed cache keys for partition jobs.

    The service must serve a resubmitted design from its result cache even
    when the netlist file arrived with its lines permuted: the circuit is
    the same, only the declaration order differs. Hashing the input bytes
    would miss that, and hashing the parsed structures directly would too —
    the parser numbers nodes in resolution order, and everything downstream
    (technology mapping, the hypergraph, the multi-start RNG streams) is
    sensitive to that numbering.

    The fix is a canonicalisation pass at the {e circuit} level, before
    mapping: {!canonical_circuit} rebuilds the circuit with nodes ordered
    by signal name (names are unique, so the order is total and
    input-order-independent). The service both {e hashes} and {e runs} the
    canonical form, which buys two properties at once: permuted
    submissions produce the same {!job_key}, and a cache miss recomputes
    exactly the document a cache hit would have returned — byte for byte
    after scrubbing.

    The key itself is an MD5 over the canonical {e hypergraph} (cells with
    areas, pins, nets and per-output supports — what the partitioner
    actually sees), the device library, and the result-shaping options
    (execution knobs — [jobs], [should_stop] — excluded, exactly the
    fields the stats schema serialises). *)

val canonical_circuit : Netlist.Circuit.t -> Netlist.Circuit.t
(** Rebuild the circuit with nodes in sorted-by-name order (inputs,
    gates and flip-flops alike; primary outputs sorted too). Idempotent,
    semantics-preserving, and independent of the node order of the
    input — two parses of line-permuted netlist files canonicalise to
    structurally identical circuits. *)

val hypergraph_fingerprint : Hypergraph.t -> string
(** MD5 hex digest of the full hypergraph structure: every cell's name,
    area, resource demand vector, pin-to-net wiring and per-output
    support masks, every net's name and external flag, all in index
    order. Index order is only meaningful downstream of
    {!canonical_circuit}. *)

val library_fingerprint : Fpga.Library.t -> string
(** MD5 hex digest of the device list (name, capacity, terminals, price,
    and the full per-axis resource capacities and utilization windows per
    device — two devices differing only on a secondary axis hash
    differently). *)

val options_fingerprint : Core.Kway.options -> string
(** MD5 hex digest of the result-shaping options, i.e. the exact fields
    {!Experiments.Obs_report.options_to_json} serialises — [jobs] and
    [should_stop] never influence the partition, so they are absent. *)

val job_key :
  library:Fpga.Library.t -> options:Core.Kway.options -> Hypergraph.t -> string
(** The cache key: MD5 over the three fingerprints above. *)

val lineage_key : base:string -> edited:string -> string
(** Cache key for a warm (resubmit) result: MD5 over the base partition's
    {!job_key} and the edited circuit's {!job_key}. A warm result depends
    on {e which} partition seeded it, so it must never be cached under the
    edited circuit's own key — that key's entry is reserved for cold runs,
    preserving the submit path's byte-determinism contract. *)
