type 'a entry = { value : 'a; mutable last_used : int }

type 'a t = {
  table : (string, 'a entry) Hashtbl.t;
  capacity : int;
  mutable tick : int;
}

let create ~cap =
  if cap <= 0 then
    invalid_arg (Printf.sprintf "Lru.create: cap must be positive (got %d)" cap);
  { table = Hashtbl.create (min cap 64); capacity = cap; tick = 0 }

let touch t e =
  t.tick <- t.tick + 1;
  e.last_used <- t.tick

let find t key =
  match Hashtbl.find_opt t.table key with
  | None -> None
  | Some e ->
      touch t e;
      Some e.value

let evict_lru t =
  let victim = ref None in
  Hashtbl.iter
    (fun key e ->
      match !victim with
      | Some (_, age) when age <= e.last_used -> ()
      | _ -> victim := Some (key, e.last_used))
    t.table;
  match !victim with
  | Some (key, _) -> Hashtbl.remove t.table key
  | None -> ()

let add t key value =
  (if not (Hashtbl.mem t.table key) then
     if Hashtbl.length t.table >= t.capacity then evict_lru t);
  let e = { value; last_used = 0 } in
  touch t e;
  Hashtbl.replace t.table key e

let length t = Hashtbl.length t.table
let cap t = t.capacity
