(** The request/response vocabulary of the partition service, one layer
    above {!Codec}'s framing.

    Every request is a JSON object [{"v": 3, "verb": ..., ...}]. Replies
    are [{"ok": true, ...}] or [{"ok": false, "error": {"code", "msg"}}];
    the error codes are a closed vocabulary (below) so clients and the
    smoke tests can switch on them without string-matching messages.

    Verbs:
    - [submit]: ["name"], ["format"] ("bench" | "blif" | "verilog"),
      ["netlist"] (the full netlist text) and an optional ["options"]
      object with the result-shaping knobs in the stats-schema encoding
      ([runs], [seed], [replication], [max_passes], [fm_attempts],
      [refine_rounds]). Optional envelope fields (v3): ["tenant"] (fair-
      queue tenant id, default "default"), ["priority"] (higher runs
      first within the tenant, default 0) and ["portfolio"] (let a fleet
      scheduler race the job across idle workers, default false). Reply:
      ["job"] id, ["state"], ["cached"], and the cached ["result"]
      document on a cache hit.
    - [submit-batch] (v3): ["items"], a non-empty array (at most 1024)
      of submit bodies (["name"]/["format"]/["netlist"]/optional
      ["options"]) sharing one envelope, carried in a single frame.
      Reply: ["items"], an array of per-item reply objects in request
      order — each either a submit reply shape or [{"error": {"code",
      "msg"}}] (one full item failing, e.g. on a tenant queue cap, never
      poisons its siblings).
    - [resubmit]: ["name"], a base partition reference (["base_job"] id
      {e or} ["base_digest"] content digest, exactly one), a ["delta"]
      object ([{"ops": [...]}], see {!delta_to_json}) and an optional
      ["options"] object (defaults to the base job's options). Reply: as
      [submit], plus ["cold_fallback"] ([true] when the base's warm
      context was evicted and the job ran cold). The empty delta replies
      with the cached base document byte-identically, without running
      F-M.
    - [status]: ["job"] — reply ["state"] and, while queued,
      ["position"].
    - [result]: ["job"], optional ["wait"] (block until the job leaves
      the queue/run states) — reply the scrubbed ["result"] document plus
      a ["timings"] breakdown (v2): [decode_ms], [queue_wait_ms],
      [run_ms], [encode_ms], [total_ms] — wall-clock, never part of the
      cached result document.
    - [cancel]: ["job"] — request cooperative cancellation.
    - [stats]: server counters/timers/histograms as a schema-v3
      compatible document.
    - [fleet-stats] (v3): the fleet scheduler's view — per-worker states
      and restart counts, per-tenant queue depths, requeue/portfolio
      counters and disk-cache occupancy. A single-process daemon answers
      [bad_request]: there is no fleet to describe.
    - [metrics] (v2): the server's OpenMetrics text exposition
      ({!Obs.Metrics_export}) as a ["metrics"] string field — gauges,
      SLO latency histograms, and every Obs counter/histogram.
    - [health] (v2): liveness probe without submitting work — reply a
      ["health"] object with ["state"] ("accepting" | "draining"),
      ["protocol_version"], ["stats_schema_version"], ["uptime_secs"],
      queue capacity/depth, inflight jobs and cache occupancy.
    - [shutdown]: graceful drain-then-exit. *)

type format = Bench | Blif | Verilog

val format_to_string : format -> string
val format_of_string : string -> format option

val parse_netlist : format -> string -> (Netlist.Circuit.t, string) result

type envelope = {
  tenant : string;  (** fair-queue tenant id, 1..64 chars *)
  priority : int;  (** higher dequeues first within the tenant *)
  portfolio : bool;  (** race across idle fleet workers *)
}
(** Submission envelope (v3). A single-process daemon accepts and
    ignores it — strict FIFO is its documented behaviour; the fleet
    scheduler routes on it. *)

val default_envelope : envelope
(** [{tenant = "default"; priority = 0; portfolio = false}] — what an
    envelope-less frame decodes to, and the fields {!request_to_json}
    omits from the wire. *)

type batch_item = {
  b_name : string;
  b_format : format;
  b_netlist : string;
  b_options : Core.Kway.options;
}

type request =
  | Submit of {
      name : string;
      format : format;
      netlist : string;
      options : Core.Kway.options;
      envelope : envelope;
    }
  | Submit_batch of { items : batch_item list; envelope : envelope }
  | Resubmit of {
      name : string;
      base : [ `Job of int | `Digest of string ];
      delta : Netlist.Delta.t;
      options : Core.Kway.options option;  (** [None] inherits the base's *)
    }
  | Status of int
  | Result of { job : int; wait : bool }
  | Cancel of int
  | Stats
  | Fleet_stats
  | Metrics
  | Health
  | Shutdown

val delta_to_json : Netlist.Delta.t -> Obs.Json.t
(** [{"ops": [{"op": "add" | "remove" | "rewire" | "set_output", ...}]}];
    gate kinds spell as in [.bench] files ({!Netlist.Gate.to_string}). *)

val delta_of_json : Obs.Json.t -> (Netlist.Delta.t, string) result
(** Inverse of {!delta_to_json}; [Error] names the offending field. *)

val request_to_json : request -> Obs.Json.t

val request_of_json : Obs.Json.t -> (request, string * string) result
(** [Error (code, msg)]: [code] is {!code_unsupported_version} when the
    frame's ["v"] field is missing, ill-typed or not
    {!protocol_version} (checked before any verb dispatch), and
    {!code_bad_request} for a missing/unknown verb, missing fields, or
    option values {!Core.Kway.Options.make} rejects. *)

val protocol_version : int
(** The wire vocabulary this build speaks (3 since the fleet PR:
    [submit-batch]/[fleet-stats] verbs and the
    tenant/priority/portfolio submission envelope). Every request frame
    carries it as ["v"]. *)

(** {1 Error codes} *)

val code_bad_request : string
(** unparseable frame or request *)

val code_unsupported_version : string
(** request frame whose ["v"] is missing or not {!protocol_version} *)

val code_overloaded : string
(** job queue at [--queue-cap]; resubmit later *)

val code_not_found : string
(** unknown job id *)

val code_pending : string
(** [result] without [wait] on an unfinished job *)

val code_infeasible : string
(** the engine found no feasible partition *)

val code_cancelled : string
(** job cancelled by a [cancel] request *)

val code_timeout : string
(** job exceeded the per-job [--timeout] *)

val code_shutting_down : string
(** submit refused during drain *)

val code_worker_lost : string
(** a fleet worker died while running the job and its single requeue
    credit was already spent (or the job cannot be requeued, e.g. a
    forwarded resubmit whose warm context died with the worker) *)

(** {1 Replies} *)

val ok : (string * Obs.Json.t) list -> Obs.Json.t
(** [{"ok": true, <fields>}]. *)

val error : code:string -> string -> Obs.Json.t
(** [{"ok": false, "error": {"code": <code>, "msg": <msg>}}]. *)

(** {1 Job states} *)

val state_queued : string
val state_running : string
val state_done : string
val state_failed : string
val state_cancelled : string
