(** SIGINT/SIGTERM as a cooperative-cancellation flag.

    Both the CLI ([fpgapart partition]) and the daemon want the same
    behaviour on Ctrl-C: don't die mid-write — raise a flag, let the
    engine notice it at the next {!Core.Kway.options.should_stop} poll,
    and flush whatever artifacts make sense before exiting. *)

val install_stop_flag : unit -> unit -> bool
(** Install handlers for SIGINT and SIGTERM that set a shared atomic
    flag, and return a closure reading it — suitable directly as the
    [should_stop] hook of {!Core.Kway.Options.make}. Safe to call more
    than once (each call installs fresh handlers over the previous
    ones and returns a fresh flag). *)
