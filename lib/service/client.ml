module J = Obs.Json

type conn = Unix.file_descr

let connect path =
  (* A daemon tearing the connection down mid-request (drain, crash) must
     come back as [EPIPE] from {!request}, not kill the client. *)
  ignore (Sys.signal Sys.sigpipe Sys.Signal_ignore);
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  match Unix.connect fd (Unix.ADDR_UNIX path) with
  | () -> Ok fd
  | exception Unix.Unix_error (e, _, _) ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      Error
        (Printf.sprintf "cannot connect to %s: %s" path (Unix.error_message e))

let request fd req =
  match Codec.write_frame fd (Protocol.request_to_json req) with
  | exception Unix.Unix_error (e, _, _) ->
      Error ("connection lost: " ^ Unix.error_message e)
  | () -> (
      match Codec.read_frame fd with
      | Ok reply -> Ok reply
      | Error err -> Error (Codec.read_error_to_string err)
      | exception Unix.Unix_error (e, _, _) ->
          Error ("connection lost: " ^ Unix.error_message e))

let close fd = try Unix.close fd with Unix.Unix_error _ -> ()

let rpc ~socket req =
  match connect socket with
  | Error _ as e -> e
  | Ok fd ->
      let reply = request fd req in
      close fd;
      reply

module Backoff = struct
  type t = { attempts : int; base : float; cap : float; jitter : float }

  let default = { attempts = 5; base = 0.05; cap = 2.0; jitter = 0.5 }

  (* Full-jitter-lite: exponential growth capped at [cap], minus a
     uniform slice of up to [jitter] of itself, so a thundering herd of
     refused clients spreads out instead of re-colliding in lockstep.
     [rand] draws from [0, 1); pinning it makes the schedule
     deterministic for tests. *)
  let delay ~rand t i =
    let exp = t.base *. (2. ** float_of_int i) in
    let capped = Float.min t.cap exp in
    capped -. (t.jitter *. capped *. rand ())

  let schedule ?(rand = fun () -> 0.) t =
    List.init (max 0 (t.attempts - 1)) (delay ~rand t)
end

(* What a retry can fix: the daemon not (yet) accepting on the socket —
   connection refused, or the socket file not created yet — and the
   typed [overloaded] backpressure reply. Everything else (bad request,
   infeasible, a lost established connection) is not transient. *)
let retryable = function
  | Error msg ->
      String.length msg >= 14 && String.equal (String.sub msg 0 14) "cannot connect"
  | Ok reply -> (
      match Option.bind (J.member "ok" reply) J.to_bool with
      | Some false -> (
          match
            Option.bind
              (Option.bind (J.member "error" reply) (J.member "code"))
              J.to_str
          with
          | Some code -> String.equal code Protocol.code_overloaded
          | None -> false)
      | _ -> false)

let rpc_retry ?(backoff = Backoff.default) ?(sleep = Unix.sleepf) ?rand
    ~socket req =
  let rand =
    match rand with
    | Some r -> r
    | None ->
        let st = Random.State.make_self_init () in
        fun () -> Random.State.float st 1.0
  in
  let rec go i reply =
    if retryable reply && i < backoff.Backoff.attempts - 1 then begin
      sleep (Backoff.delay ~rand backoff i);
      go (i + 1) (rpc ~socket req)
    end
    else reply
  in
  go 0 (rpc ~socket req)

let ok_or_error reply =
  match Option.bind (J.member "ok" reply) J.to_bool with
  | Some true -> Ok reply
  | Some false ->
      let err = J.member "error" reply in
      let get name =
        Option.bind (Option.bind err (J.member name)) J.to_str
      in
      Error
        ( Option.value (get "code") ~default:Protocol.code_bad_request,
          Option.value (get "msg") ~default:"unspecified error" )
  | None -> Error (Protocol.code_bad_request, "malformed reply")
