module J = Obs.Json

type conn = Unix.file_descr

let connect path =
  (* A daemon tearing the connection down mid-request (drain, crash) must
     come back as [EPIPE] from {!request}, not kill the client. *)
  ignore (Sys.signal Sys.sigpipe Sys.Signal_ignore);
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  match Unix.connect fd (Unix.ADDR_UNIX path) with
  | () -> Ok fd
  | exception Unix.Unix_error (e, _, _) ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      Error
        (Printf.sprintf "cannot connect to %s: %s" path (Unix.error_message e))

let request fd req =
  match Codec.write_frame fd (Protocol.request_to_json req) with
  | exception Unix.Unix_error (e, _, _) ->
      Error ("connection lost: " ^ Unix.error_message e)
  | () -> (
      match Codec.read_frame fd with
      | Ok reply -> Ok reply
      | Error err -> Error (Codec.read_error_to_string err)
      | exception Unix.Unix_error (e, _, _) ->
          Error ("connection lost: " ^ Unix.error_message e))

let close fd = try Unix.close fd with Unix.Unix_error _ -> ()

let rpc ~socket req =
  match connect socket with
  | Error _ as e -> e
  | Ok fd ->
      let reply = request fd req in
      close fd;
      reply

let ok_or_error reply =
  match Option.bind (J.member "ok" reply) J.to_bool with
  | Some true -> Ok reply
  | Some false ->
      let err = J.member "error" reply in
      let get name =
        Option.bind (Option.bind err (J.member name)) J.to_str
      in
      Error
        ( Option.value (get "code") ~default:Protocol.code_bad_request,
          Option.value (get "msg") ~default:"unspecified error" )
  | None -> Error (Protocol.code_bad_request, "malformed reply")
