let max_frame = 16 * 1024 * 1024

type read_error =
  [ `Eof | `Oversized of int | `Truncated | `Malformed of string ]

let read_error_to_string = function
  | `Eof -> "end of stream"
  | `Oversized n -> Printf.sprintf "frame of %d bytes exceeds the limit" n
  | `Truncated -> "stream ended mid-frame"
  | `Malformed msg -> msg

(* Read exactly [len] bytes; [`Partial] distinguishes EOF-at-a-frame-
   boundary (a clean close) from EOF inside one (a truncated frame). *)
let read_exactly fd len =
  let buf = Bytes.create len in
  let rec loop off =
    if off = len then `Ok buf
    else
      match Unix.read fd buf off (len - off) with
      | 0 -> if off = 0 then `Eof else `Partial
      | n -> loop (off + n)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop off
  in
  loop 0

let read_frame ?(max_frame = max_frame) fd =
  match read_exactly fd 4 with
  | `Eof -> Error `Eof
  | `Partial -> Error `Truncated
  | `Ok header -> (
      let len =
        (Char.code (Bytes.get header 0) lsl 24)
        lor (Char.code (Bytes.get header 1) lsl 16)
        lor (Char.code (Bytes.get header 2) lsl 8)
        lor Char.code (Bytes.get header 3)
      in
      if len > max_frame then Error (`Oversized len)
      else
        match read_exactly fd len with
        | `Eof | `Partial -> Error `Truncated
        | `Ok payload -> (
            match Obs.Json.of_string (Bytes.unsafe_to_string payload) with
            | Ok json -> Ok json
            | Error msg -> Error (`Malformed msg)))

let write_all fd buf =
  let len = Bytes.length buf in
  let rec loop off =
    if off < len then
      match Unix.write fd buf off (len - off) with
      | n -> loop (off + n)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop off
  in
  loop 0

let write_frame fd json =
  let payload = Obs.Json.to_string json in
  let len = String.length payload in
  let buf = Bytes.create (4 + len) in
  Bytes.set buf 0 (Char.chr ((len lsr 24) land 0xFF));
  Bytes.set buf 1 (Char.chr ((len lsr 16) land 0xFF));
  Bytes.set buf 2 (Char.chr ((len lsr 8) land 0xFF));
  Bytes.set buf 3 (Char.chr (len land 0xFF));
  Bytes.blit_string payload 0 buf 4 len;
  write_all fd buf
