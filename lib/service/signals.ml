let install_stop_flag () =
  let stop = Atomic.make false in
  let handler _ = Atomic.set stop true in
  ignore (Sys.signal Sys.sigint (Sys.Signal_handle handler));
  ignore (Sys.signal Sys.sigterm (Sys.Signal_handle handler));
  fun () -> Atomic.get stop
