(** Small string-keyed LRU map, the result cache of the partition service.

    Capacities are small (a daemon caches at most a few hundred partition
    documents), so the implementation favours obviousness over asymptotics:
    a hash table plus a recency tick, with an O(n) scan on eviction. *)

type 'a t

val create : cap:int -> 'a t
(** Raises [Invalid_argument] on a non-positive capacity. *)

val find : 'a t -> string -> 'a option
(** Lookup; a hit refreshes the entry's recency. *)

val add : 'a t -> string -> 'a -> unit
(** Insert or replace; evicts the least-recently-used entry when the map
    would exceed its capacity. *)

val length : 'a t -> int
val cap : 'a t -> int
