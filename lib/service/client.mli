(** Client side of the service protocol — what [fpgapart submit],
    [svc-stats] and friends (and the tests) speak.

    A connection is persistent: {!request} can be called repeatedly, one
    frame out, one frame in. {!rpc} is the one-shot
    connect/request/close convenience. *)

type conn

val connect : string -> (conn, string) result
(** Connect to the daemon's Unix-domain socket at the given path. Also
    sets SIGPIPE to ignore for the process, so a daemon vanishing
    mid-request surfaces as an [Error] rather than a fatal signal. *)

val request : conn -> Protocol.request -> (Obs.Json.t, string) result
(** Send one request, wait for its reply frame. [Error] on connection
    loss or a malformed reply; protocol-level failures come back as
    [Ok] [{"ok": false, ...}] documents — use {!ok_or_error}. *)

val close : conn -> unit

val rpc : socket:string -> Protocol.request -> (Obs.Json.t, string) result
(** [connect], one {!request}, [close]. *)

(** Jittered exponential backoff schedule for {!rpc_retry}. *)
module Backoff : sig
  type t = {
    attempts : int;  (** total tries, including the first *)
    base : float;  (** first retry delay, seconds *)
    cap : float;  (** upper bound on any single delay *)
    jitter : float;  (** fraction of each delay randomized away, 0..1 *)
  }

  val default : t
  (** 5 attempts, 50 ms base doubling to a 2 s cap, 0.5 jitter. *)

  val delay : rand:(unit -> float) -> t -> int -> float
  (** [delay ~rand t i] is the sleep before retry [i] (0-based):
      [min cap (base * 2^i)] minus a uniform jitter slice drawn from
      [rand () ∈ \[0, 1)]. *)

  val schedule : ?rand:(unit -> float) -> t -> float list
  (** All [attempts - 1] delays in order; [rand] defaults to the
      zero-jitter constant, making the schedule deterministic. *)
end

val rpc_retry :
  ?backoff:Backoff.t ->
  ?sleep:(float -> unit) ->
  ?rand:(unit -> float) ->
  socket:string ->
  Protocol.request ->
  (Obs.Json.t, string) result
(** {!rpc} with bounded retries on the two transient failures: the
    connect being refused (daemon not up yet, or its listen backlog
    full) and the typed [overloaded] backpressure reply. Any other
    outcome — success or not — returns immediately. Never used
    implicitly: plain {!rpc} stays retry-free, so byte-identity gates on
    existing tooling are unaffected; callers opt in (the CLI gates it
    behind [--retries]). [sleep]/[rand] exist for deterministic tests. *)

val ok_or_error : Obs.Json.t -> (Obs.Json.t, string * string) result
(** Split a reply on its ["ok"] field: [Ok reply] when true, [Error
    (code, msg)] from the ["error"] object when false (with
    [bad_request]-flavoured fallbacks if the reply is malformed). *)
