(** Client side of the service protocol — what [fpgapart submit],
    [svc-stats] and friends (and the tests) speak.

    A connection is persistent: {!request} can be called repeatedly, one
    frame out, one frame in. {!rpc} is the one-shot
    connect/request/close convenience. *)

type conn

val connect : string -> (conn, string) result
(** Connect to the daemon's Unix-domain socket at the given path. Also
    sets SIGPIPE to ignore for the process, so a daemon vanishing
    mid-request surfaces as an [Error] rather than a fatal signal. *)

val request : conn -> Protocol.request -> (Obs.Json.t, string) result
(** Send one request, wait for its reply frame. [Error] on connection
    loss or a malformed reply; protocol-level failures come back as
    [Ok] [{"ok": false, ...}] documents — use {!ok_or_error}. *)

val close : conn -> unit

val rpc : socket:string -> Protocol.request -> (Obs.Json.t, string) result
(** [connect], one {!request}, [close]. *)

val ok_or_error : Obs.Json.t -> (Obs.Json.t, string * string) result
(** Split a reply on its ["ok"] field: [Ok reply] when true, [Error
    (code, msg)] from the ["error"] object when false (with
    [bad_request]-flavoured fallbacks if the reply is malformed). *)
