module J = Obs.Json

type format = Bench | Blif | Verilog

let format_to_string = function
  | Bench -> "bench"
  | Blif -> "blif"
  | Verilog -> "verilog"

let format_of_string = function
  | "bench" -> Some Bench
  | "blif" -> Some Blif
  | "verilog" -> Some Verilog
  | _ -> None

let parse_netlist format text =
  match format with
  | Bench -> Netlist.Bench_format.parse text
  | Blif -> Netlist.Blif.parse text
  | Verilog -> Netlist.Verilog.parse text

(* The submission envelope shared by [submit] and [submit-batch]: who is
   asking (the fair-queue tenant), how urgently (priority within the
   tenant's queue), and whether the fleet scheduler may race the job
   across idle workers (portfolio mode). A single-process daemon accepts
   and ignores all three — FIFO semantics are its contract. *)
type envelope = { tenant : string; priority : int; portfolio : bool }

let default_envelope = { tenant = "default"; priority = 0; portfolio = false }

type batch_item = {
  b_name : string;
  b_format : format;
  b_netlist : string;
  b_options : Core.Kway.options;
}

type request =
  | Submit of {
      name : string;
      format : format;
      netlist : string;
      options : Core.Kway.options;
      envelope : envelope;
    }
  | Submit_batch of { items : batch_item list; envelope : envelope }
  | Resubmit of {
      name : string;
      base : [ `Job of int | `Digest of string ];
      delta : Netlist.Delta.t;
      options : Core.Kway.options option;
    }
  | Status of int
  | Result of { job : int; wait : bool }
  | Cancel of int
  | Stats
  | Fleet_stats
  | Metrics
  | Health
  | Shutdown

(* v3 (this PR): the `submit-batch` and `fleet-stats` verbs, and the
   tenant/priority/portfolio submission envelope. The gate below is
   strict — a v2 client sees `unsupported_version`, not silently ignored
   envelope fields. *)
let protocol_version = 3

let code_bad_request = "bad_request"
let code_unsupported_version = "unsupported_version"
let code_overloaded = "overloaded"
let code_not_found = "not_found"
let code_pending = "pending"
let code_infeasible = "infeasible"
let code_cancelled = "cancelled"
let code_timeout = "timeout"
let code_shutting_down = "shutting_down"
let code_worker_lost = "worker_lost"

let ok fields = J.Obj (("ok", J.Bool true) :: fields)

let error ~code msg =
  J.Obj
    [
      ("ok", J.Bool false);
      ("error", J.Obj [ ("code", J.String code); ("msg", J.String msg) ]);
    ]

let state_queued = "queued"
let state_running = "running"
let state_done = "done"
let state_failed = "failed"
let state_cancelled = "cancelled"

(* Delta wire encoding: {"ops": [{"op": ..., ...}]}. Gate kinds use the
   .bench spellings via Gate.to_string/of_string. *)
let op_to_json = function
  | Netlist.Delta.Add_cell { name; kind; fanins } ->
      J.Obj
        [
          ("op", J.String "add");
          ("name", J.String name);
          ("kind", J.String (Netlist.Gate.to_string kind));
          ("fanins", J.List (List.map (fun f -> J.String f) fanins));
        ]
  | Netlist.Delta.Remove_cell name ->
      J.Obj [ ("op", J.String "remove"); ("name", J.String name) ]
  | Netlist.Delta.Rewire { cell; pin; net } ->
      J.Obj
        [
          ("op", J.String "rewire");
          ("cell", J.String cell);
          ("pin", J.Int pin);
          ("net", J.String net);
        ]
  | Netlist.Delta.Set_output { net; output } ->
      J.Obj
        [
          ("op", J.String "set_output");
          ("net", J.String net);
          ("output", J.Bool output);
        ]

let delta_to_json (delta : Netlist.Delta.t) =
  J.Obj [ ("ops", J.List (List.map op_to_json delta)) ]

let ( let* ) = Result.bind

let op_of_json json =
  let str name =
    match Option.bind (J.member name json) J.to_str with
    | Some s -> Ok s
    | None -> Error (Printf.sprintf "delta op: missing or ill-typed %S" name)
  in
  let* op = str "op" in
  match op with
  | "add" ->
      let* name = str "name" in
      let* kind_s = str "kind" in
      let* kind =
        match Netlist.Gate.of_string kind_s with
        | Some k -> Ok k
        | None -> Error (Printf.sprintf "delta op: unknown gate kind %S" kind_s)
      in
      let* fanins =
        match J.member "fanins" json with
        | Some (J.List l) ->
            List.fold_left
              (fun acc f ->
                let* acc = acc in
                match J.to_str f with
                | Some s -> Ok (s :: acc)
                | None -> Error "delta op: ill-typed \"fanins\" element")
              (Ok []) l
            |> Result.map List.rev
        | _ -> Error "delta op: missing or ill-typed \"fanins\""
      in
      Ok (Netlist.Delta.Add_cell { name; kind; fanins })
  | "remove" ->
      let* name = str "name" in
      Ok (Netlist.Delta.Remove_cell name)
  | "rewire" ->
      let* cell = str "cell" in
      let* pin =
        match Option.bind (J.member "pin" json) J.to_int with
        | Some p -> Ok p
        | None -> Error "delta op: missing or ill-typed \"pin\""
      in
      let* net = str "net" in
      Ok (Netlist.Delta.Rewire { cell; pin; net })
  | "set_output" ->
      let* net = str "net" in
      let* output =
        match Option.bind (J.member "output" json) J.to_bool with
        | Some b -> Ok b
        | None -> Error "delta op: missing or ill-typed \"output\""
      in
      Ok (Netlist.Delta.Set_output { net; output })
  | op -> Error (Printf.sprintf "delta op: unknown op %S" op)

let delta_of_json json =
  match J.member "ops" json with
  | Some (J.List ops) ->
      List.fold_left
        (fun acc o ->
          let* acc = acc in
          let* op = op_of_json o in
          Ok (op :: acc))
        (Ok []) ops
      |> Result.map List.rev
  | _ -> Error "delta: missing or ill-typed \"ops\""

(* Envelope fields are serialised only when they differ from the
   defaults, so a default submit frame is byte-identical to what a plain
   (pre-fleet) client would send modulo the version field. *)
let envelope_fields e =
  (if String.equal e.tenant default_envelope.tenant then []
   else [ ("tenant", J.String e.tenant) ])
  @ (if e.priority = default_envelope.priority then []
     else [ ("priority", J.Int e.priority) ])
  @ if e.portfolio = default_envelope.portfolio then []
    else [ ("portfolio", J.Bool e.portfolio) ]

let batch_item_to_json { b_name; b_format; b_netlist; b_options } =
  J.Obj
    [
      ("name", J.String b_name);
      ("format", J.String (format_to_string b_format));
      ("netlist", J.String b_netlist);
      ("options", Experiments.Obs_report.options_to_json b_options);
    ]

(* The options wire encoding is the stats-schema encoding
   (Obs_report.options_to_json), so a client can lift the "options"
   object straight out of a stats document and resubmit with it. *)
let request_to_json = function
  | Submit { name; format; netlist; options; envelope } ->
      J.Obj
        ([
           ("v", J.Int protocol_version);
           ("verb", J.String "submit");
           ("name", J.String name);
           ("format", J.String (format_to_string format));
           ("netlist", J.String netlist);
           ("options", Experiments.Obs_report.options_to_json options);
         ]
        @ envelope_fields envelope)
  | Submit_batch { items; envelope } ->
      J.Obj
        ([
           ("v", J.Int protocol_version);
           ("verb", J.String "submit-batch");
           ("items", J.List (List.map batch_item_to_json items));
         ]
        @ envelope_fields envelope)
  | Resubmit { name; base; delta; options } ->
      let base_field =
        match base with
        | `Job job -> ("base_job", J.Int job)
        | `Digest d -> ("base_digest", J.String d)
      in
      let opt_fields =
        match options with
        | None -> []
        | Some o -> [ ("options", Experiments.Obs_report.options_to_json o) ]
      in
      J.Obj
        ([
           ("v", J.Int protocol_version);
           ("verb", J.String "resubmit");
           ("name", J.String name);
           base_field;
           ("delta", delta_to_json delta);
         ]
        @ opt_fields)
  | Status job ->
      J.Obj [ ("v", J.Int protocol_version); ("verb", J.String "status"); ("job", J.Int job) ]
  | Result { job; wait } ->
      J.Obj
        [
          ("v", J.Int protocol_version);
          ("verb", J.String "result");
          ("job", J.Int job);
          ("wait", J.Bool wait);
        ]
  | Cancel job ->
      J.Obj [ ("v", J.Int protocol_version); ("verb", J.String "cancel"); ("job", J.Int job) ]
  | Stats -> J.Obj [ ("v", J.Int protocol_version); ("verb", J.String "stats") ]
  | Fleet_stats ->
      J.Obj [ ("v", J.Int protocol_version); ("verb", J.String "fleet-stats") ]
  | Metrics ->
      J.Obj [ ("v", J.Int protocol_version); ("verb", J.String "metrics") ]
  | Health ->
      J.Obj [ ("v", J.Int protocol_version); ("verb", J.String "health") ]
  | Shutdown ->
      J.Obj [ ("v", J.Int protocol_version); ("verb", J.String "shutdown") ]

let field name conv json =
  match Option.bind (J.member name json) conv with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "missing or ill-typed field %S" name)

let opt_field name conv ~default json =
  match J.member name json with
  | None -> Ok default
  | Some v -> (
      match conv v with
      | Some v -> Ok v
      | None -> Error (Printf.sprintf "ill-typed field %S" name))

let replication_of_json = function
  | J.String "none" -> Ok `None
  | J.Obj _ as o -> (
      match Option.bind (J.member "functional_threshold" o) J.to_int with
      | Some t -> Ok (`Functional t)
      | None -> Error "ill-typed field \"replication\"")
  | _ -> Error "ill-typed field \"replication\""

(* Mirrors Obs_report.strategy_to_json: "flat", or an object carrying
   the multilevel knobs (absent knobs take the library defaults). *)
let strategy_of_json = function
  | J.String "flat" -> Ok Core.Kway.Flat
  | J.Obj _ as o ->
      let dm = Core.Kway.Options.default_multilevel in
      let* max_levels =
        opt_field "max_levels" J.to_int ~default:dm.Core.Kway.max_levels o
      in
      let* coarsen_ratio =
        opt_field "coarsen_ratio" J.to_float ~default:dm.Core.Kway.coarsen_ratio
          o
      in
      let* refine_passes =
        opt_field "refine_passes" J.to_int ~default:dm.Core.Kway.refine_passes o
      in
      Ok (Core.Kway.Multilevel { Core.Kway.max_levels; coarsen_ratio; refine_passes })
  | _ -> Error "ill-typed field \"strategy\""

let options_of_json json =
  let d = Core.Kway.Options.default in
  let* runs = opt_field "runs" J.to_int ~default:d.Core.Kway.runs json in
  let* seed = opt_field "seed" J.to_int ~default:d.Core.Kway.seed json in
  let* replication =
    match J.member "replication" json with
    | None -> Ok d.Core.Kway.replication
    | Some r -> replication_of_json r
  in
  let* max_passes =
    opt_field "max_passes" J.to_int ~default:d.Core.Kway.max_passes json
  in
  let* fm_attempts =
    opt_field "fm_attempts" J.to_int ~default:d.Core.Kway.fm_attempts json
  in
  let* refine_rounds =
    opt_field "refine_rounds" J.to_int ~default:d.Core.Kway.refine_rounds json
  in
  let* objective =
    match J.member "objective" json with
    | None -> Ok d.Core.Kway.objective
    | Some (J.String s) -> Fpga.Objective.of_name s
    | Some _ -> Error "ill-typed field \"objective\""
  in
  let* strategy =
    match J.member "strategy" json with
    | None -> Ok d.Core.Kway.strategy
    | Some s -> strategy_of_json s
  in
  match
    Core.Kway.Options.make ~runs ~seed ~replication ~max_passes ~fm_attempts
      ~refine_rounds ~objective ~strategy ()
  with
  | options -> Ok options
  | exception Invalid_argument msg -> Error msg

(* The version gate runs before any verb dispatch: a frame without a
   recognised ["v"] gets the typed [unsupported_version] error naming
   what this server speaks, so an old client (or a future one) fails
   with a diagnosable code instead of a field-by-field "bad_request"
   whose real cause is a vocabulary mismatch. *)
let rec request_of_json json =
  match J.member "v" json with
  | None ->
      Error
        ( code_unsupported_version,
          Printf.sprintf
            "missing protocol version field \"v\" (this server speaks v%d)"
            protocol_version )
  | Some v -> (
      match J.to_int v with
      | Some n when n = protocol_version ->
          Result.map_error
            (fun msg -> (code_bad_request, msg))
            (decode_request json)
      | Some n ->
          Error
            ( code_unsupported_version,
              Printf.sprintf
                "unsupported protocol version %d (this server speaks v%d)" n
                protocol_version )
      | None ->
          Error
            ( code_unsupported_version,
              Printf.sprintf
                "ill-typed protocol version field \"v\" (this server speaks \
                 v%d)"
                protocol_version ))

and envelope_of_json json =
  let* tenant =
    opt_field "tenant" J.to_str ~default:default_envelope.tenant json
  in
  let* () =
    if String.length tenant = 0 || String.length tenant > 64 then
      Error "field \"tenant\" must be 1..64 characters"
    else Ok ()
  in
  let* priority =
    opt_field "priority" J.to_int ~default:default_envelope.priority json
  in
  let* portfolio =
    opt_field "portfolio" J.to_bool ~default:default_envelope.portfolio json
  in
  Ok { tenant; priority; portfolio }

and submit_body_of_json json =
  let* name = field "name" J.to_str json in
  let* format_s = field "format" J.to_str json in
  let* format =
    match format_of_string format_s with
    | Some f -> Ok f
    | None -> Error (Printf.sprintf "unknown netlist format %S" format_s)
  in
  let* netlist = field "netlist" J.to_str json in
  let* options =
    match J.member "options" json with
    | None -> Ok Core.Kway.Options.default
    | Some o -> options_of_json o
  in
  Ok { b_name = name; b_format = format; b_netlist = netlist; b_options = options }

and decode_request json =
  let* verb = field "verb" J.to_str json in
  match verb with
  | "submit" ->
      let* { b_name; b_format; b_netlist; b_options } =
        submit_body_of_json json
      in
      let* envelope = envelope_of_json json in
      Ok
        (Submit
           {
             name = b_name;
             format = b_format;
             netlist = b_netlist;
             options = b_options;
             envelope;
           })
  | "submit-batch" ->
      let* envelope = envelope_of_json json in
      let* items =
        match J.member "items" json with
        | Some (J.List l) ->
            let n = List.length l in
            if n = 0 then Error "field \"items\" must be non-empty"
            else if n > 1024 then
              Error
                (Printf.sprintf
                   "field \"items\" carries %d items (the limit is 1024)" n)
            else
              List.fold_left
                (fun acc item ->
                  let* acc = acc in
                  let* item = submit_body_of_json item in
                  Ok (item :: acc))
                (Ok []) l
              |> Result.map List.rev
        | _ -> Error "missing or ill-typed field \"items\""
      in
      Ok (Submit_batch { items; envelope })
  | "resubmit" ->
      let* name = field "name" J.to_str json in
      let* base =
        match (J.member "base_job" json, J.member "base_digest" json) with
        | Some j, None -> (
            match J.to_int j with
            | Some job -> Ok (`Job job)
            | None -> Error "ill-typed field \"base_job\"")
        | None, Some d -> (
            match J.to_str d with
            | Some dg -> Ok (`Digest dg)
            | None -> Error "ill-typed field \"base_digest\"")
        | Some _, Some _ ->
            Error "resubmit takes \"base_job\" or \"base_digest\", not both"
        | None, None ->
            Error "resubmit needs a \"base_job\" or \"base_digest\" field"
      in
      let* delta =
        match J.member "delta" json with
        | Some d -> delta_of_json d
        | None -> Error "missing field \"delta\""
      in
      let* options =
        match J.member "options" json with
        | None -> Ok None
        | Some o -> Result.map Option.some (options_of_json o)
      in
      Ok (Resubmit { name; base; delta; options })
  | "status" ->
      let* job = field "job" J.to_int json in
      Ok (Status job)
  | "result" ->
      let* job = field "job" J.to_int json in
      let* wait = opt_field "wait" J.to_bool ~default:false json in
      Ok (Result { job; wait })
  | "cancel" ->
      let* job = field "job" J.to_int json in
      Ok (Cancel job)
  | "stats" -> Ok Stats
  | "fleet-stats" -> Ok Fleet_stats
  | "metrics" -> Ok Metrics
  | "health" -> Ok Health
  | "shutdown" -> Ok Shutdown
  | verb -> Error (Printf.sprintf "unknown verb %S" verb)
