module J = Obs.Json

type format = Bench | Blif | Verilog

let format_to_string = function
  | Bench -> "bench"
  | Blif -> "blif"
  | Verilog -> "verilog"

let format_of_string = function
  | "bench" -> Some Bench
  | "blif" -> Some Blif
  | "verilog" -> Some Verilog
  | _ -> None

let parse_netlist format text =
  match format with
  | Bench -> Netlist.Bench_format.parse text
  | Blif -> Netlist.Blif.parse text
  | Verilog -> Netlist.Verilog.parse text

type request =
  | Submit of {
      name : string;
      format : format;
      netlist : string;
      options : Core.Kway.options;
    }
  | Status of int
  | Result of { job : int; wait : bool }
  | Cancel of int
  | Stats
  | Shutdown

let code_bad_request = "bad_request"
let code_overloaded = "overloaded"
let code_not_found = "not_found"
let code_pending = "pending"
let code_infeasible = "infeasible"
let code_cancelled = "cancelled"
let code_timeout = "timeout"
let code_shutting_down = "shutting_down"

let ok fields = J.Obj (("ok", J.Bool true) :: fields)

let error ~code msg =
  J.Obj
    [
      ("ok", J.Bool false);
      ("error", J.Obj [ ("code", J.String code); ("msg", J.String msg) ]);
    ]

let state_queued = "queued"
let state_running = "running"
let state_done = "done"
let state_failed = "failed"
let state_cancelled = "cancelled"

(* The options wire encoding is the stats-schema encoding
   (Obs_report.options_to_json), so a client can lift the "options"
   object straight out of a stats document and resubmit with it. *)
let request_to_json = function
  | Submit { name; format; netlist; options } ->
      J.Obj
        [
          ("v", J.Int 1);
          ("verb", J.String "submit");
          ("name", J.String name);
          ("format", J.String (format_to_string format));
          ("netlist", J.String netlist);
          ("options", Experiments.Obs_report.options_to_json options);
        ]
  | Status job ->
      J.Obj [ ("v", J.Int 1); ("verb", J.String "status"); ("job", J.Int job) ]
  | Result { job; wait } ->
      J.Obj
        [
          ("v", J.Int 1);
          ("verb", J.String "result");
          ("job", J.Int job);
          ("wait", J.Bool wait);
        ]
  | Cancel job ->
      J.Obj [ ("v", J.Int 1); ("verb", J.String "cancel"); ("job", J.Int job) ]
  | Stats -> J.Obj [ ("v", J.Int 1); ("verb", J.String "stats") ]
  | Shutdown -> J.Obj [ ("v", J.Int 1); ("verb", J.String "shutdown") ]

let ( let* ) = Result.bind

let field name conv json =
  match Option.bind (J.member name json) conv with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "missing or ill-typed field %S" name)

let opt_field name conv ~default json =
  match J.member name json with
  | None -> Ok default
  | Some v -> (
      match conv v with
      | Some v -> Ok v
      | None -> Error (Printf.sprintf "ill-typed field %S" name))

let replication_of_json = function
  | J.String "none" -> Ok `None
  | J.Obj _ as o -> (
      match Option.bind (J.member "functional_threshold" o) J.to_int with
      | Some t -> Ok (`Functional t)
      | None -> Error "ill-typed field \"replication\"")
  | _ -> Error "ill-typed field \"replication\""

let options_of_json json =
  let d = Core.Kway.Options.default in
  let* runs = opt_field "runs" J.to_int ~default:d.Core.Kway.runs json in
  let* seed = opt_field "seed" J.to_int ~default:d.Core.Kway.seed json in
  let* replication =
    match J.member "replication" json with
    | None -> Ok d.Core.Kway.replication
    | Some r -> replication_of_json r
  in
  let* max_passes =
    opt_field "max_passes" J.to_int ~default:d.Core.Kway.max_passes json
  in
  let* fm_attempts =
    opt_field "fm_attempts" J.to_int ~default:d.Core.Kway.fm_attempts json
  in
  let* refine_rounds =
    opt_field "refine_rounds" J.to_int ~default:d.Core.Kway.refine_rounds json
  in
  match
    Core.Kway.Options.make ~runs ~seed ~replication ~max_passes ~fm_attempts
      ~refine_rounds ()
  with
  | options -> Ok options
  | exception Invalid_argument msg -> Error msg

let request_of_json json =
  let* verb = field "verb" J.to_str json in
  match verb with
  | "submit" ->
      let* name = field "name" J.to_str json in
      let* format_s = field "format" J.to_str json in
      let* format =
        match format_of_string format_s with
        | Some f -> Ok f
        | None -> Error (Printf.sprintf "unknown netlist format %S" format_s)
      in
      let* netlist = field "netlist" J.to_str json in
      let* options =
        match J.member "options" json with
        | None -> Ok Core.Kway.Options.default
        | Some o -> options_of_json o
      in
      Ok (Submit { name; format; netlist; options })
  | "status" ->
      let* job = field "job" J.to_int json in
      Ok (Status job)
  | "result" ->
      let* job = field "job" J.to_int json in
      let* wait = opt_field "wait" J.to_bool ~default:false json in
      Ok (Result { job; wait })
  | "cancel" ->
      let* job = field "job" J.to_int json in
      Ok (Cancel job)
  | "stats" -> Ok Stats
  | "shutdown" -> Ok Shutdown
  | verb -> Error (Printf.sprintf "unknown verb %S" verb)
