(** A small reusable domain pool for deterministic fork/join fan-out on
    OCaml 5 domains.

    The engine's multi-start loops are embarrassingly parallel: [n]
    independent trials whose inputs are derived from the trial index alone.
    {!run} evaluates them on [min jobs n] domains and returns the results
    {e indexed by trial}, so a caller that folds over the returned array in
    index order observes exactly the sequence of outcomes the sequential
    loop would have produced — which is what makes byte-identical
    [jobs=1]/[jobs=N] telemetry possible upstream.

    No dependencies beyond the standard library and [obs] (the shared
    clock helper). *)

val run : ?chunk:int -> jobs:int -> int -> (int -> 'a) -> 'a array
(** [run ~jobs n f] is [[| f 0; …; f (n-1) |]].

    With [jobs <= 1] or [n <= 1] the calls happen in the calling domain, in
    index order, with no domain spawned. Otherwise [min jobs n] domains are
    spawned and indices are dispatched in chunks of [chunk] (default 1)
    through an atomic counter; every index runs exactly once, on exactly
    one domain.

    [f] must only share immutable (or index-private) state across calls —
    the pool provides no synchronisation beyond the final join.

    Exception marshalling: if any call raises, the pool still joins every
    domain, then re-raises the exception of the {e smallest} failing index
    (with its backtrace) in the caller — the same exception a sequential
    loop would have surfaced first. Results of other indices are
    discarded. *)

val wall_clock : unit -> float
(** {!Obs.Clock.wall}, kept here as an alias because the pool is where
    parallel callers already look for it. The engine's CPU figures
    ({!Obs.Clock.cpu}) sum over all domains and exceed elapsed time under
    parallelism; this is the companion clock for [wall_secs] fields. *)

val worker_id : unit -> int
(** Track id of the executing domain: [0] in the calling domain (and in
    any {!run} with [jobs <= 1] or [n <= 1], which runs inline), [1..jobs]
    inside a worker spawned by {!run}. Stable for the whole lifetime of
    the worker, so every trial it executes lands on the same trace track —
    this is the [tid] the engine passes to [Obs.fork ~track]. *)

val jobs_from_env : ?var:string -> unit -> int
(** Parallelism level requested by the environment: the value of [var]
    (default ["FPGAPART_JOBS"]) when set to a positive integer, else [1].
    Malformed values are ignored rather than fatal — an environment
    variable must never break a run. *)

val recommended_jobs : unit -> int
(** [Domain.recommended_domain_count ()], the runtime's estimate of how
    many domains this machine runs well. *)
