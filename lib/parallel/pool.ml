let wall_clock = Obs.Clock.wall

(* Worker track ids: 0 in the calling domain, 1..jobs in spawned workers.
   Domain-local, so nested pools reuse the same small id space rather than
   growing one per domain ever spawned. *)
let worker_key = Domain.DLS.new_key (fun () -> 0)
let worker_id () = Domain.DLS.get worker_key

let jobs_from_env ?(var = "FPGAPART_JOBS") () =
  match Sys.getenv_opt var with
  | None -> 1
  | Some s -> ( match int_of_string_opt (String.trim s) with
    | Some j when j >= 1 -> j
    | _ -> 1)

let recommended_jobs () = Domain.recommended_domain_count ()

let run_sequential n f =
  let results = Array.make n None in
  for i = 0 to n - 1 do
    results.(i) <- Some (f i)
  done;
  Array.map Option.get results

let run ?(chunk = 1) ~jobs n f =
  if n <= 0 then [||]
  else if jobs <= 1 || n <= 1 then run_sequential n f
  else begin
    let jobs = min jobs n in
    let chunk = max 1 chunk in
    let results = Array.make n None in
    let failures = Array.make n None in
    let next = Atomic.make 0 in
    let worker () =
      let continue = ref true in
      while !continue do
        let lo = Atomic.fetch_and_add next chunk in
        if lo >= n then continue := false
        else
          for i = lo to min (lo + chunk) n - 1 do
            match f i with
            | v -> results.(i) <- Some v
            | exception e ->
                failures.(i) <- Some (e, Printexc.get_raw_backtrace ())
          done
      done
    in
    let domains =
      Array.init jobs (fun w ->
          Domain.spawn (fun () ->
              Domain.DLS.set worker_key (w + 1);
              worker ()))
    in
    Array.iter Domain.join domains;
    (* The join is the synchronisation point: after it, every slot written
       by a worker is visible here. Surface the failure the sequential
       loop would have hit first. *)
    Array.iter
      (function
        | Some (e, bt) -> Printexc.raise_with_backtrace e bt | None -> ())
      failures;
    Array.map Option.get results
  end
