type setting = Baseline | Threshold of int

let setting_label = function
  | Baseline -> "base"
  | Threshold t -> Printf.sprintf "T=%d" t

type outcome = {
  feasible : bool;
  cost : float;
  clb_util : float;
  iob_util : float;
  replicated_pct : float;
  cpu_secs : float;
  k : int;
  devices : (string * int) list;
}

type row = {
  name : string;
  results : (setting * outcome) list;
}

let default_settings =
  [ Baseline; Threshold 0; Threshold 1; Threshold 2; Threshold 3 ]

let infeasible cpu_secs =
  {
    feasible = false;
    cost = nan;
    clb_util = nan;
    iob_util = nan;
    replicated_pct = nan;
    cpu_secs;
    k = 0;
    devices = [];
  }

let run ?(runs = 5) ?(seed = 1) ?(settings = default_settings)
    ?(library = Fpga.Library.xc3000) (e : Suite.entry) =
  let h = Lazy.force e.Suite.hypergraph in
  let one setting =
    let replication =
      match setting with
      | Baseline -> `None
      | Threshold t -> `Functional t
    in
    let options = Core.Kway.Options.make ~runs ~seed ~replication () in
    let t0 = Obs.Clock.cpu () in
    match Core.Kway.partition ~options ~library h with
    | Error _ -> (setting, infeasible (Obs.Clock.cpu () -. t0))
    | Ok r ->
        (match Core.Kway.check h r with
        | Ok () -> ()
        | Error msg ->
            invalid_arg ("Kway_campaign: unsound partition: " ^ msg));
        let s = r.Core.Kway.summary in
        ( setting,
          {
            feasible = true;
            cost = s.Fpga.Cost.total_cost;
            clb_util = s.Fpga.Cost.avg_clb_utilization;
            iob_util = s.Fpga.Cost.avg_iob_utilization;
            replicated_pct =
              100.0
              *. float_of_int r.Core.Kway.replicated_cells
              /. float_of_int (max 1 r.Core.Kway.total_cells);
            cpu_secs = r.Core.Kway.cpu_secs;
            k = s.Fpga.Cost.num_partitions;
            devices = s.Fpga.Cost.device_counts;
          } )
  in
  { name = e.Suite.display; results = List.map one settings }

let run_all ?runs ?seed ?settings ?library () =
  List.map (run ?runs ?seed ?settings ?library) (Suite.all ())

(* ------------------------------------------------------------------ *)
(* Rendering                                                          *)
(* ------------------------------------------------------------------ *)

let find_setting row s = List.assoc_opt s row.results

let thresholds rows =
  (* Threshold settings present in the campaign, ascending. *)
  match rows with
  | [] -> []
  | r :: _ ->
      List.filter_map
        (function Threshold t, _ -> Some t | Baseline, _ -> None)
        r.results
      |> List.sort_uniq compare

let fmt_pct fmt v = if Float.is_nan v then Format.fprintf fmt "%6s" "-" else Format.fprintf fmt "%5.1f%%" v

let mean l =
  match List.filter (fun v -> not (Float.is_nan v)) l with
  | [] -> nan
  | l -> List.fold_left ( +. ) 0.0 l /. float_of_int (List.length l)

let pp_table4 fmt rows =
  let ts = thresholds rows in
  Format.fprintf fmt "@[<v>%-10s |" "Circuit";
  List.iter (fun t -> Format.fprintf fmt " %6s" (Printf.sprintf "T=%d" t)) ts;
  Format.fprintf fmt " | %9s %9s@," "CPU base" "CPU T=3";
  List.iter
    (fun r ->
      Format.fprintf fmt "%-10s |" r.name;
      List.iter
        (fun t ->
          match find_setting r (Threshold t) with
          | Some o when o.feasible -> Format.fprintf fmt " %a" fmt_pct o.replicated_pct
          | _ -> Format.fprintf fmt " %6s" "-")
        ts;
      let cpu s =
        match find_setting r s with Some o -> o.cpu_secs | None -> nan
      in
      Format.fprintf fmt " | %8.1fs %8.1fs@," (cpu Baseline)
        (cpu (Threshold 3)))
    rows;
  Format.fprintf fmt "%-10s |" "Avg.";
  List.iter
    (fun t ->
      let vals =
        List.filter_map
          (fun r ->
            match find_setting r (Threshold t) with
            | Some o when o.feasible -> Some o.replicated_pct
            | _ -> None)
          rows
      in
      Format.fprintf fmt " %a" fmt_pct (mean vals))
    ts;
  Format.fprintf fmt " |@,(percentage of cells replicated per threshold; \
                      CPU is process CPU time of the full multi-start call)@]"

(* Shared layout of Tables V-VII: baseline column, then per-threshold value
   and delta columns. *)
let pp_value_table fmt rows ~header ~baseline_of ~value_of ~delta ~pp_value
    ~footer =
  let ts = thresholds rows in
  Format.fprintf fmt "@[<v>%-10s | %8s |" "Circuit" header;
  List.iter
    (fun t -> Format.fprintf fmt " %8s %7s |" (Printf.sprintf "T=%d" t) "chg")
    ts;
  Format.fprintf fmt "@,";
  List.iter
    (fun r ->
      let base =
        match find_setting r Baseline with
        | Some o when o.feasible -> baseline_of o
        | _ -> nan
      in
      Format.fprintf fmt "%-10s | %a |" r.name pp_value base;
      List.iter
        (fun t ->
          match find_setting r (Threshold t) with
          | Some o when o.feasible ->
              let v = value_of o in
              Format.fprintf fmt " %a %6.1f%% |" pp_value v (delta ~base ~v)
          | _ -> Format.fprintf fmt " %8s %7s |" "-" "-")
        ts;
      Format.fprintf fmt "@,")
    rows;
  (* Averages line over feasible entries. *)
  let base_vals =
    List.filter_map
      (fun r ->
        match find_setting r Baseline with
        | Some o when o.feasible -> Some (baseline_of o)
        | _ -> None)
      rows
  in
  Format.fprintf fmt "%-10s | %a |" "Avg." pp_value (mean base_vals);
  List.iter
    (fun t ->
      let vals =
        List.filter_map
          (fun r ->
            match find_setting r (Threshold t) with
            | Some o when o.feasible -> Some (value_of o)
            | _ -> None)
          rows
      in
      let deltas =
        List.filter_map
          (fun r ->
            match (find_setting r Baseline, find_setting r (Threshold t)) with
            | Some b, Some o when b.feasible && o.feasible ->
                Some (delta ~base:(baseline_of b) ~v:(value_of o))
            | _ -> None)
          rows
      in
      Format.fprintf fmt " %a %6.1f%% |" pp_value (mean vals) (mean deltas))
    ts;
  Format.fprintf fmt "@,%s@]" footer

let pp_pct fmt v =
  if Float.is_nan v then Format.fprintf fmt "%7s" "-"
  else Format.fprintf fmt "%6.1f%%" (100.0 *. v)

let pp_cost fmt v =
  if Float.is_nan v then Format.fprintf fmt "%8s" "-"
  else Format.fprintf fmt "%8.0f" v

let pp_table5 fmt rows =
  pp_value_table fmt rows ~header:"base"
    ~baseline_of:(fun o -> o.clb_util)
    ~value_of:(fun o -> o.clb_util)
    ~delta:(fun ~base ~v -> 100.0 *. (v -. base))
      (* percentage-point increase *)
    ~pp_value:pp_pct
    ~footer:
      "(average CLB utilization; chg = percentage-point increase over the \
       no-replication baseline)"

let pp_table6 fmt rows =
  pp_value_table fmt rows ~header:"base"
    ~baseline_of:(fun o -> o.cost)
    ~value_of:(fun o -> o.cost)
    ~delta:(fun ~base ~v -> 100.0 *. (base -. v) /. base)
    ~pp_value:pp_cost
    ~footer:
      "(total device cost, eq. (1); chg = percent cost reduction vs the \
       baseline)"

let pp_table7 fmt rows =
  pp_value_table fmt rows ~header:"base"
    ~baseline_of:(fun o -> o.iob_util)
    ~value_of:(fun o -> o.iob_util)
    ~delta:(fun ~base ~v -> 100.0 *. (base -. v) /. base)
    ~pp_value:pp_pct
    ~footer:
      "(average IOB utilization, eq. (2); chg = percent reduction vs the \
       baseline)"
