module J = Obs.Json

let schema_version = 2

let replication_to_json = function
  | `None -> J.String "none"
  | `Functional t -> J.Obj [ ("functional_threshold", J.Int t) ]

(* [jobs] is deliberately absent: it is an execution knob that never
   shapes the result, and omitting it is what lets the determinism gate
   diff documents produced under different --jobs settings. *)
let options_to_json (o : Core.Kway.options) =
  J.Obj
    [
      ("runs", J.Int o.Core.Kway.runs);
      ("seed", J.Int o.Core.Kway.seed);
      ("replication", replication_to_json o.Core.Kway.replication);
      ("max_passes", J.Int o.Core.Kway.max_passes);
      ("fm_attempts", J.Int o.Core.Kway.fm_attempts);
      ("refine_rounds", J.Int o.Core.Kway.refine_rounds);
    ]

let part_to_json (p : Core.Kway.part) =
  J.Obj
    [
      ("device", J.String p.Core.Kway.device.Fpga.Device.name);
      ("clbs", J.Int p.Core.Kway.clbs);
      ("iobs", J.Int p.Core.Kway.iobs);
    ]

let result_to_json (r : Core.Kway.result) =
  let s = r.Core.Kway.summary in
  J.Obj
    [
      ("num_partitions", J.Int s.Fpga.Cost.num_partitions);
      ("total_cost", J.Float s.Fpga.Cost.total_cost);
      ("avg_clb_utilization", J.Float s.Fpga.Cost.avg_clb_utilization);
      ("avg_iob_utilization", J.Float s.Fpga.Cost.avg_iob_utilization);
      ("total_clbs", J.Int s.Fpga.Cost.total_clbs);
      ("total_iobs", J.Int s.Fpga.Cost.total_iobs);
      ("replicated_cells", J.Int r.Core.Kway.replicated_cells);
      ("total_cells", J.Int r.Core.Kway.total_cells);
      ("runs", J.Int r.Core.Kway.runs);
      ("feasible_runs", J.Int r.Core.Kway.feasible_runs);
      ("wall_secs", J.Float r.Core.Kway.wall_secs);
      ("cpu_secs", J.Float r.Core.Kway.cpu_secs);
      ("parts", J.List (List.map part_to_json r.Core.Kway.parts));
    ]

let doc ~name ~options ~result ~snapshot =
  J.Obj
    [
      ("schema_version", J.Int schema_version);
      ("circuit", J.String name);
      ("seed", J.Int options.Core.Kway.seed);
      ("options", options_to_json options);
      ("result", result_to_json result);
      ("obs", Obs.Snapshot.to_json snapshot);
    ]

let partition_doc ?(options = Core.Kway.Options.default) ~library ~name hg =
  let obs = Obs.create () in
  match Core.Kway.partition ~obs ~options ~library hg with
  | Error _ as e -> e
  | Ok result -> Ok (doc ~name ~options ~result ~snapshot:(Obs.snapshot obs))

type speedup = {
  circuit : string;
  jobs : int;
  jobs1_wall : float;
  jobsn_wall : float;
}

(* Wall-clock of one partition call under a no-op sink (the collecting
   sink would tax both sides, but the comparison should measure the
   engine, not the telemetry). *)
let time_partition ~options ~library hg =
  match Core.Kway.partition ~options ~library hg with
  | Ok r -> Some r.Core.Kway.wall_secs
  | Error _ -> None

let speedup_to_json s =
  J.Obj
    [
      ("jobs", J.Int s.jobs);
      ("jobs1_wall_secs", J.Float s.jobs1_wall);
      ("jobsn_wall_secs", J.Float s.jobsn_wall);
    ]

let suite_doc ?(runs = 5) ?(seed = 1) ?(jobs = 1) () =
  let speedups = ref [] in
  let circuits =
    List.map
      (fun e ->
        let options = Core.Kway.Options.make ~runs ~seed ~jobs () in
        let hg = Lazy.force e.Suite.hypergraph in
        match
          partition_doc ~options ~library:Fpga.Library.xc3000 ~name:e.Suite.name
            hg
        with
        | Error msg ->
            J.Obj
              [ ("circuit", J.String e.Suite.name); ("error", J.String msg) ]
        | Ok (J.Obj fields) when jobs > 1 ->
            (* Per-circuit jobs=1 vs jobs=N wall clock, next to the paper's
               CPU-time tables. Only the two *_secs fields (scrubbed by the
               determinism gate) and the requested job count are stored;
               speedup is their ratio, computed by the reader. *)
            let t1 =
              time_partition
                ~options:(Core.Kway.Options.make ~runs ~seed ~jobs:1 ())
                ~library:Fpga.Library.xc3000 hg
            in
            let tn =
              time_partition ~options ~library:Fpga.Library.xc3000 hg
            in
            let fields =
              match (t1, tn) with
              | Some jobs1_wall, Some jobsn_wall ->
                  let s =
                    { circuit = e.Suite.name; jobs; jobs1_wall; jobsn_wall }
                  in
                  speedups := s :: !speedups;
                  fields @ [ ("parallel", speedup_to_json s) ]
              | _ -> fields
            in
            J.Obj fields
        | Ok j -> j)
      (Suite.all ())
  in
  let doc =
    J.Obj
      [
        ("schema_version", J.Int schema_version);
        ("artifact", J.String "partition");
        ("kway_runs", J.Int runs);
        ("seed", J.Int seed);
        ("circuits", J.List circuits);
      ]
  in
  (doc, List.rev !speedups)

let write ~path j = J.write_file ~path j
