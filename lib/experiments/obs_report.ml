module J = Obs.Json

let replication_to_json = function
  | `None -> J.String "none"
  | `Functional t -> J.Obj [ ("functional_threshold", J.Int t) ]

let options_to_json (o : Core.Kway.options) =
  J.Obj
    [
      ("runs", J.Int o.Core.Kway.runs);
      ("seed", J.Int o.Core.Kway.seed);
      ("replication", replication_to_json o.Core.Kway.replication);
      ("max_passes", J.Int o.Core.Kway.max_passes);
      ("fm_attempts", J.Int o.Core.Kway.fm_attempts);
      ("refine_rounds", J.Int o.Core.Kway.refine_rounds);
    ]

let part_to_json (p : Core.Kway.part) =
  J.Obj
    [
      ("device", J.String p.Core.Kway.device.Fpga.Device.name);
      ("clbs", J.Int p.Core.Kway.clbs);
      ("iobs", J.Int p.Core.Kway.iobs);
    ]

let result_to_json (r : Core.Kway.result) =
  let s = r.Core.Kway.summary in
  J.Obj
    [
      ("num_partitions", J.Int s.Fpga.Cost.num_partitions);
      ("total_cost", J.Float s.Fpga.Cost.total_cost);
      ("avg_clb_utilization", J.Float s.Fpga.Cost.avg_clb_utilization);
      ("avg_iob_utilization", J.Float s.Fpga.Cost.avg_iob_utilization);
      ("total_clbs", J.Int s.Fpga.Cost.total_clbs);
      ("total_iobs", J.Int s.Fpga.Cost.total_iobs);
      ("replicated_cells", J.Int r.Core.Kway.replicated_cells);
      ("total_cells", J.Int r.Core.Kway.total_cells);
      ("runs", J.Int r.Core.Kway.runs);
      ("feasible_runs", J.Int r.Core.Kway.feasible_runs);
      ("elapsed_secs", J.Float r.Core.Kway.elapsed);
      ("parts", J.List (List.map part_to_json r.Core.Kway.parts));
    ]

let doc ~name ~options ~result ~snapshot =
  J.Obj
    [
      ("schema_version", J.Int 1);
      ("circuit", J.String name);
      ("seed", J.Int options.Core.Kway.seed);
      ("options", options_to_json options);
      ("result", result_to_json result);
      ("obs", Obs.Snapshot.to_json snapshot);
    ]

let partition_doc ?(options = Core.Kway.default_options) ~library ~name hg =
  let obs = Obs.create () in
  match Core.Kway.partition ~obs ~options ~library hg with
  | Error _ as e -> e
  | Ok result -> Ok (doc ~name ~options ~result ~snapshot:(Obs.snapshot obs))

let suite_doc ?(runs = 5) ?(seed = 1) () =
  let circuits =
    List.map
      (fun e ->
        let options = { Core.Kway.default_options with runs; seed } in
        let hg = Lazy.force e.Suite.hypergraph in
        match
          partition_doc ~options ~library:Fpga.Library.xc3000 ~name:e.Suite.name
            hg
        with
        | Ok j -> j
        | Error msg ->
            J.Obj
              [ ("circuit", J.String e.Suite.name); ("error", J.String msg) ])
      (Suite.all ())
  in
  J.Obj
    [
      ("schema_version", J.Int 1);
      ("artifact", J.String "partition");
      ("kway_runs", J.Int runs);
      ("seed", J.Int seed);
      ("circuits", J.List circuits);
    ]

let write ~path j = J.write_file ~path j
