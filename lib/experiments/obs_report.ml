module J = Obs.Json

let schema_version = 6

let replication_to_json = function
  | `None -> J.String "none"
  | `Functional t -> J.Obj [ ("functional_threshold", J.Int t) ]

let strategy_to_json = function
  | Core.Kway.Flat -> J.String "flat"
  | Core.Kway.Multilevel m ->
      J.Obj
        [
          ("max_levels", J.Int m.Core.Kway.max_levels);
          ("coarsen_ratio", J.Float m.Core.Kway.coarsen_ratio);
          ("refine_passes", J.Int m.Core.Kway.refine_passes);
        ]

(* [jobs] is deliberately absent: it is an execution knob that never
   shapes the result, and omitting it is what lets the determinism gate
   diff documents produced under different --jobs settings. *)
let options_to_json (o : Core.Kway.options) =
  J.Obj
    [
      ("runs", J.Int o.Core.Kway.runs);
      ("seed", J.Int o.Core.Kway.seed);
      ("replication", replication_to_json o.Core.Kway.replication);
      ("max_passes", J.Int o.Core.Kway.max_passes);
      ("fm_attempts", J.Int o.Core.Kway.fm_attempts);
      ("refine_rounds", J.Int o.Core.Kway.refine_rounds);
      (* New in v5. Part of the result's identity (unlike [jobs]), so the
         service's options fingerprint — the md5 of this rendering —
         separates cache entries produced under different objectives. *)
      ("objective", J.String o.Core.Kway.objective.Fpga.Objective.name);
      (* New in v6: the partitioning strategy. "flat" or the multilevel
         knob object; part of the fingerprint for the same reason as
         [objective] — a flat and a multilevel run of one circuit are
         different results. *)
      ("strategy", strategy_to_json o.Core.Kway.strategy);
    ]

let part_to_json (p : Core.Kway.part) =
  J.Obj
    [
      ("device", J.String p.Core.Kway.device.Fpga.Device.name);
      ("clbs", J.Int p.Core.Kway.clbs);
      ("iobs", J.Int p.Core.Kway.iobs);
    ]

let result_to_json (r : Core.Kway.result) =
  let s = r.Core.Kway.summary in
  J.Obj
    [
      ("num_partitions", J.Int s.Fpga.Cost.num_partitions);
      ("total_cost", J.Float s.Fpga.Cost.total_cost);
      ("avg_clb_utilization", J.Float s.Fpga.Cost.avg_clb_utilization);
      ("avg_iob_utilization", J.Float s.Fpga.Cost.avg_iob_utilization);
      ("total_clbs", J.Int s.Fpga.Cost.total_clbs);
      ("total_iobs", J.Int s.Fpga.Cost.total_iobs);
      ("replicated_cells", J.Int r.Core.Kway.replicated_cells);
      ("total_cells", J.Int r.Core.Kway.total_cells);
      ("runs", J.Int r.Core.Kway.runs);
      ("feasible_runs", J.Int r.Core.Kway.feasible_runs);
      ("wall_secs", J.Float r.Core.Kway.wall_secs);
      ("cpu_secs", J.Float r.Core.Kway.cpu_secs);
      (* New in v5: per-axis aggregate utilization. Every key ends in
         [_util], so the determinism scrub masks the whole object the way
         it masks the [_secs] timers (the ratios are derived data). *)
      ( "resource_util",
        J.Obj
          (List.map
             (fun (k, v) -> (k, J.Float v))
             s.Fpga.Cost.resource_util) );
      ("parts", J.List (List.map part_to_json r.Core.Kway.parts));
    ]

let doc ~name ~options ~result ~snapshot =
  J.Obj
    [
      ("schema_version", J.Int schema_version);
      ("circuit", J.String name);
      ("seed", J.Int options.Core.Kway.seed);
      ("options", options_to_json options);
      ("result", result_to_json result);
      ("obs", Obs.Snapshot.to_json snapshot);
    ]

let partition_doc ?(options = Core.Kway.Options.default) ~library ~name hg =
  let obs = Obs.create () in
  match Core.Kway.partition ~obs ~options ~library hg with
  | Error _ as e -> e
  | Ok result -> Ok (doc ~name ~options ~result ~snapshot:(Obs.snapshot obs))

type speedup = {
  circuit : string;
  jobs : int;
  jobs1_wall : float;
  jobsn_wall : float;
}

(* Wall-clock of one partition call under a no-op sink (the collecting
   sink would tax both sides, but the comparison should measure the
   engine, not the telemetry). *)
let time_partition ~options ~library hg =
  match Core.Kway.partition ~options ~library hg with
  | Ok r -> Some r.Core.Kway.wall_secs
  | Error _ -> None

let speedup_to_json s =
  J.Obj
    [
      ("jobs", J.Int s.jobs);
      ("jobs1_wall_secs", J.Float s.jobs1_wall);
      ("jobsn_wall_secs", J.Float s.jobsn_wall);
    ]

let suite_doc ?(runs = 5) ?(seed = 1) ?(jobs = 1) () =
  let speedups = ref [] in
  let circuits =
    List.map
      (fun e ->
        let options = Core.Kway.Options.make ~runs ~seed ~jobs () in
        let hg = Lazy.force e.Suite.hypergraph in
        match
          partition_doc ~options ~library:Fpga.Library.xc3000 ~name:e.Suite.name
            hg
        with
        | Error msg ->
            J.Obj
              [ ("circuit", J.String e.Suite.name); ("error", J.String msg) ]
        | Ok (J.Obj fields) when jobs > 1 ->
            (* Per-circuit jobs=1 vs jobs=N wall clock, next to the paper's
               CPU-time tables. Only the two *_secs fields (scrubbed by the
               determinism gate) and the requested job count are stored;
               speedup is their ratio, computed by the reader. *)
            let t1 =
              time_partition
                ~options:(Core.Kway.Options.make ~runs ~seed ~jobs:1 ())
                ~library:Fpga.Library.xc3000 hg
            in
            let tn =
              time_partition ~options ~library:Fpga.Library.xc3000 hg
            in
            let fields =
              match (t1, tn) with
              | Some jobs1_wall, Some jobsn_wall ->
                  let s =
                    { circuit = e.Suite.name; jobs; jobs1_wall; jobsn_wall }
                  in
                  speedups := s :: !speedups;
                  fields @ [ ("parallel", speedup_to_json s) ]
              | _ -> fields
            in
            J.Obj fields
        | Ok j -> j)
      (Suite.all ())
  in
  let doc =
    J.Obj
      [
        ("schema_version", J.Int schema_version);
        ("artifact", J.String "partition");
        ("kway_runs", J.Int runs);
        ("seed", J.Int seed);
        ("circuits", J.List circuits);
      ]
  in
  (doc, List.rev !speedups)

let write ~path j = J.write_file ~path j

(* ------------------------------------------------------------------ *)
(* Convergence report                                                 *)
(* ------------------------------------------------------------------ *)

(* Interval-union busy time per trace track. Spans nest (a run span
   contains its splits contain their passes), so summing durations would
   multiply-count; merging the per-tid intervals measures each instant of
   domain activity exactly once. *)
let busy_by_tid spans =
  let by_tid = Hashtbl.create 8 in
  List.iter
    (fun (s : Obs.Trace.span) ->
      let l = try Hashtbl.find by_tid s.Obs.Trace.span_tid with Not_found -> [] in
      Hashtbl.replace by_tid s.Obs.Trace.span_tid
        ((s.Obs.Trace.begin_secs, s.Obs.Trace.end_secs) :: l))
    spans;
  Hashtbl.fold
    (fun tid intervals acc ->
      let sorted = List.sort compare intervals in
      let busy, last =
        List.fold_left
          (fun (busy, cur) (b, e) ->
            match cur with
            | None -> (busy, Some (b, e))
            | Some (cb, ce) ->
                if b <= ce then (busy, Some (cb, Float.max ce e))
                else (busy +. (ce -. cb), Some (b, e)))
          (0.0, None) sorted
      in
      let busy =
        match last with None -> busy | Some (cb, ce) -> busy +. (ce -. cb)
      in
      (tid, busy) :: acc)
    by_tid []
  |> List.sort compare

let int_field key e =
  match List.assoc_opt key e.Obs.Snapshot.fields with
  | Some (J.Int i) -> Some i
  | _ -> None

let bool_field key e =
  match List.assoc_opt key e.Obs.Snapshot.fields with
  | Some (J.Bool b) -> Some b
  | _ -> None

let pp_histogram fmt (name, (h : Obs.Snapshot.histogram)) =
  Format.fprintf fmt "  %-16s n=%-7d sum=%-9d@," name h.Obs.Snapshot.count
    h.Obs.Snapshot.sum;
  let peak =
    List.fold_left (fun acc (_, n) -> max acc n) 1 h.Obs.Snapshot.buckets
  in
  List.iter
    (fun (b, n) ->
      let bar = String.make (max 1 (n * 40 / peak)) '#' in
      Format.fprintf fmt "    %-24s %8d %s@," (Obs.bucket_label b) n bar)
    h.Obs.Snapshot.buckets

let pp_convergence ~snapshot ~trace ~wall_secs fmt =
  Format.fprintf fmt "@[<v>convergence@,";
  (* Pass-by-pass cutsize trajectory, aggregated over every F-M restart:
     how fast do passes stop paying? *)
  let per_pass = Hashtbl.create 16 in
  List.iter
    (fun e ->
      if e.Obs.Snapshot.name = "fm.pass" then
        match (int_field "pass" e, int_field "cut" e) with
        | Some pass, Some cut ->
            let n, total, best, improved =
              try Hashtbl.find per_pass pass with Not_found -> (0, 0, max_int, 0)
            in
            let imp =
              match bool_field "improved" e with Some true -> 1 | _ -> 0
            in
            Hashtbl.replace per_pass pass
              (n + 1, total + cut, min best cut, improved + imp)
        | _ -> ())
    snapshot.Obs.Snapshot.events;
  let passes =
    Hashtbl.fold (fun p v acc -> (p, v) :: acc) per_pass [] |> List.sort compare
  in
  if passes = [] then Format.fprintf fmt "  passes (none)@,"
  else begin
    Format.fprintf fmt "  %-6s %8s %10s %9s %9s@," "pass" "restarts" "mean cut"
      "min cut" "improved";
    List.iter
      (fun (p, (n, total, best, improved)) ->
        Format.fprintf fmt "  %-6d %8d %10.1f %9d %8.0f%%@," p n
          (float_of_int total /. float_of_int n)
          best
          (100.0 *. float_of_int improved /. float_of_int n))
      passes
  end;
  (* The recorded distributions: per-op F-M gains, bucket-scan lengths,
     per-attempt and per-split cuts. *)
  (match snapshot.Obs.Snapshot.histograms with
  | [] -> Format.fprintf fmt "  histograms (none)@,"
  | hs -> List.iter (pp_histogram fmt) hs);
  (* Per-domain utilization: busy wall time on each trace track over the
     run's wall clock — the honest denominator for any speedup claim. *)
  (match busy_by_tid trace with
  | [] -> Format.fprintf fmt "  domain utilization (none: trace empty)@,"
  | util ->
      Format.fprintf fmt "  %-8s %12s %12s@," "domain" "busy wall" "utilization";
      List.iter
        (fun (tid, busy) ->
          Format.fprintf fmt "  %-8d %11.3fs %11.1f%%@," tid busy
            (100.0 *. busy /. Float.max 1e-9 wall_secs))
        util;
      Format.fprintf fmt
        "  (utilization = busy wall per domain track / %.3fs run wall)@,"
        wall_secs);
  Format.fprintf fmt "@]"
