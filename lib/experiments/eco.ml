type report = {
  circuit : string;
  seed : int;
  frac : float;
  edits : int;
  base_cells : int;
  edited_cells : int;
  dirty_cells : int;
  seeded_cells : int;
  changed_nets : int;
  cold_wall_secs : float;
  warm_wall_secs : float;
  speedup : float;
  cold_cost : float;
  warm_cost : float;
  cost_ratio : float;
  warm_feasible : bool;
}

let run ?(options = Core.Kway.Options.default)
    ?(library = Fpga.Library.xc3000) ?(seed = 7) ?(frac = 0.01)
    (e : Suite.entry) =
  let ( let* ) = Result.bind in
  (* The base must be in canonical node order, like the service's cached
     basis: Delta.apply rebuilds canonically, so mapping a raw-order base
     against a canonical-order edit would repack CLBs wholesale and mark
     every net changed. The empty delta IS the canonicalisation. *)
  let* base_circuit =
    Result.map_error Netlist.Delta.error_to_string
      (Netlist.Delta.apply (Lazy.force e.Suite.circuit) [])
  in
  let base_hg = Techmap.Mapper.to_hypergraph (Techmap.Mapper.map base_circuit) in
  let delta = Netlist.Delta.random ~seed ~frac base_circuit in
  let* edited_circuit =
    Result.map_error Netlist.Delta.error_to_string
      (Netlist.Delta.apply base_circuit delta)
  in
  let edited_hg = Techmap.Mapper.to_hypergraph (Techmap.Mapper.map edited_circuit) in
  (* Cold run on the edited circuit, timed. *)
  let w0 = Obs.Clock.wall () in
  let* cold = Core.Kway.partition ~options ~library edited_hg in
  let cold_wall_secs = Obs.Clock.wall () -. w0 in
  (* Base partition (untimed context: a resubmit caller amortised this
     over the original submit), projected onto the edit. *)
  let* base = Core.Kway.partition ~options ~library base_hg in
  let base_labels, base_replicated =
    Core.Kway.labels_of_parts base_hg base.Core.Kway.parts
  in
  let proj =
    Projection.project ~base:base_hg ~base_labels ~base_dirty:base_replicated
      edited_hg
  in
  let warm =
    {
      Core.Kway.w_labels = proj.Projection.labels;
      w_dirty = proj.Projection.dirty;
      w_devices =
        Array.of_list
          (List.map (fun p -> p.Core.Kway.device) base.Core.Kway.parts);
    }
  in
  let w1 = Obs.Clock.wall () in
  let* warm_r = Core.Kway.warm_start ~options ~library ~warm edited_hg in
  let warm_wall_secs = Obs.Clock.wall () -. w1 in
  let* () =
    Result.map_error
      (fun msg -> "warm result unsound: " ^ msg)
      (Core.Kway.check edited_hg warm_r)
  in
  let cold_cost = cold.Core.Kway.summary.Fpga.Cost.total_cost in
  let warm_cost = warm_r.Core.Kway.summary.Fpga.Cost.total_cost in
  let dirty_cells =
    Array.fold_left (fun a d -> if d then a + 1 else a) 0 proj.Projection.dirty
  in
  Ok
    {
      circuit = e.Suite.name;
      seed;
      frac;
      edits = List.length delta;
      base_cells = Hypergraph.num_cells base_hg;
      edited_cells = Hypergraph.num_cells edited_hg;
      dirty_cells;
      seeded_cells = proj.Projection.added;
      changed_nets = proj.Projection.changed_nets;
      cold_wall_secs;
      warm_wall_secs;
      speedup = cold_wall_secs /. Float.max 1e-9 warm_wall_secs;
      cold_cost;
      warm_cost;
      cost_ratio = warm_cost /. Float.max 1e-9 cold_cost;
      warm_feasible = true;
    }

let to_json (r : report) =
  let module J = Obs.Json in
  J.Obj
    [
      ("circuit", J.String r.circuit);
      ("seed", J.Int r.seed);
      ("frac", J.Float r.frac);
      ("edits", J.Int r.edits);
      ("base_cells", J.Int r.base_cells);
      ("edited_cells", J.Int r.edited_cells);
      ("dirty_cells", J.Int r.dirty_cells);
      ("seeded_cells", J.Int r.seeded_cells);
      ("changed_nets", J.Int r.changed_nets);
      ("cold_wall_secs", J.Float r.cold_wall_secs);
      ("warm_wall_secs", J.Float r.warm_wall_secs);
      ("speedup", J.Float r.speedup);
      ("cold_cost", J.Float r.cold_cost);
      ("warm_cost", J.Float r.warm_cost);
      ("cost_ratio", J.Float r.cost_ratio);
      ("warm_feasible", J.Bool r.warm_feasible);
    ]
