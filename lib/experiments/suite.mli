(** The benchmark suite.

    The paper evaluates on four ISCAS'85 and five ISCAS'89 circuits mapped
    into the XC3000 family (Table II). Those netlists are not
    redistributable, so each entry here is a {e profile-matched synthetic
    reconstruction}: structural generators for the circuits whose function
    is documented (c6288 is a 16x16 array multiplier, c1355 a 32-bit
    single-error-correcting network, c5315 an ALU, c7552 an
    adder/comparator) and clustered sequential circuits reproducing the
    ISCAS'89 flip-flop counts and pad counts. All entries are deterministic.
    Names carry a [*] suffix in reports to mark the substitution. *)

type entry = {
  name : string;          (** e.g. ["c6288"] *)
  display : string;       (** e.g. ["c6288*"] *)
  description : string;
  sequential : bool;
  circuit : Netlist.Circuit.t Lazy.t;
  mapped : Techmap.Mapped.t Lazy.t;
  hypergraph : Hypergraph.t Lazy.t;
}

val all : unit -> entry list
(** The nine circuits, in the paper's Table II order. Construction and
    mapping are lazy and memoised, so repeated experiment runners share the
    work. *)

val find : string -> entry option
(** Look up by [name] (without the [*]). Beyond {!all}, two scale
    circuits resolve here by name only: [gen100k] and [gen1m],
    hierarchical Rent-profile circuits of ~100k and ~1M mapped cells
    ({!Netlist.Generator.scale}). They are deliberately not part of
    {!all} — suite-wide runners iterate it and would grow 100x — and
    exist for the multilevel perf gates and explicit CLI requests. *)
