(* Per-objective ablation: the same circuit partitioned under each
   builtin cost objective, tabulating what the objective changed. *)

module J = Obs.Json

type row = {
  circuit : string;
  objective : string;
  outcome : (Core.Kway.result, string) result;
}

let run ?(runs = 5) ?(seed = 1) ?(objectives = Fpga.Objective.builtins)
    (e : Suite.entry) =
  let hg = Lazy.force e.Suite.hypergraph in
  List.map
    (fun objective ->
      let options = Core.Kway.Options.make ~runs ~seed ~objective () in
      let outcome =
        Core.Kway.partition ~options ~library:Fpga.Library.xc3000 hg
      in
      { circuit = e.Suite.name; objective = objective.Fpga.Objective.name;
        outcome })
    objectives

let objective_total name (r : Core.Kway.result) =
  match Fpga.Objective.of_name name with
  | Error _ -> r.Core.Kway.summary.Fpga.Cost.total_cost
  | Ok obj ->
      Fpga.Objective.total_cost obj
        ~device_cost:r.Core.Kway.summary.Fpga.Cost.total_cost
        ~cut_nets:r.Core.Kway.summary.Fpga.Cost.total_iobs

let row_to_json row =
  let base =
    [
      ("circuit", J.String row.circuit);
      ("objective", J.String row.objective);
    ]
  in
  match row.outcome with
  | Error msg -> J.Obj (base @ [ ("error", J.String msg) ])
  | Ok r ->
      let s = r.Core.Kway.summary in
      J.Obj
        (base
        @ [
            ("num_partitions", J.Int s.Fpga.Cost.num_partitions);
            ("device_cost", J.Float s.Fpga.Cost.total_cost);
            ("objective_cost", J.Float (objective_total row.objective r));
            ("total_iobs", J.Int s.Fpga.Cost.total_iobs);
            ("avg_iob_utilization", J.Float s.Fpga.Cost.avg_iob_utilization);
            ("replicated_cells", J.Int r.Core.Kway.replicated_cells);
            ( "resource_util",
              J.Obj
                (List.map
                   (fun (k, v) -> (k, J.Float v))
                   s.Fpga.Cost.resource_util) );
          ])

let rows_to_json rows = J.List (List.map row_to_json rows)

let pp fmt rows =
  Format.fprintf fmt "@[<v>objective ablation@,";
  Format.fprintf fmt "  %-8s %-18s %5s %10s %10s %6s@," "circuit" "objective"
    "parts" "devices" "objective" "IOBs";
  List.iter
    (fun row ->
      match row.outcome with
      | Error msg ->
          Format.fprintf fmt "  %-8s %-18s (%s)@," row.circuit row.objective
            msg
      | Ok r ->
          let s = r.Core.Kway.summary in
          Format.fprintf fmt "  %-8s %-18s %5d %10.1f %10.1f %6d@," row.circuit
            row.objective s.Fpga.Cost.num_partitions s.Fpga.Cost.total_cost
            (objective_total row.objective r)
            s.Fpga.Cost.total_iobs)
    rows;
  Format.fprintf fmt "@]"
