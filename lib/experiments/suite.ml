type entry = {
  name : string;
  display : string;
  description : string;
  sequential : bool;
  circuit : Netlist.Circuit.t Lazy.t;
  mapped : Techmap.Mapped.t Lazy.t;
  hypergraph : Hypergraph.t Lazy.t;
}

let make ?(map_options = Techmap.Mapper.default_options) name ~sequential
    ~description gen =
  let circuit = lazy (gen ()) in
  let mapped =
    lazy (Techmap.Mapper.map ~options:map_options (Lazy.force circuit))
  in
  let hypergraph = lazy (Techmap.Mapper.to_hypergraph (Lazy.force mapped)) in
  {
    name;
    display = name ^ "*";
    description;
    sequential;
    circuit;
    mapped;
    hypergraph;
  }

let clustered ~clusters ~gates ~dffs ~seed name =
  Netlist.Generator.clustered ~name
    {
      Netlist.Generator.default_clustered with
      clusters;
      gates_per_cluster = gates;
      dffs_per_cluster = dffs;
      num_pi = 35;
      num_po = 49;
      seed;
    }

let suite =
  lazy
    [
      make "c1355" ~sequential:false
        ~description:"32-bit single-error-correcting network (ECC)"
        (fun () -> Netlist.Generator.ecc ~name:"c1355" ~data_bits:32 ());
      make "c5315" ~sequential:false
        ~description:"64-bit ALU with carry chain and zero detect" (fun () ->
          Netlist.Generator.alu ~name:"c5315" ~bits:64 ());
      make "c6288" ~sequential:false ~description:"16x16 array multiplier"
        (fun () -> Netlist.Generator.multiplier ~name:"c6288" ~bits:16 ());
      make "c7552" ~sequential:false
        ~description:"48-bit adder + magnitude comparator + parity" (fun () ->
          Netlist.Generator.adder_comparator ~name:"c7552" ~bits:48 ());
      make "s5378" ~sequential:true
        ~description:"clustered sequential logic, 180 flip-flops" (fun () ->
          clustered ~clusters:10 ~gates:90 ~dffs:18 ~seed:11 "s5378");
      make "s9234" ~sequential:true
        ~description:"clustered sequential logic, 216 flip-flops" (fun () ->
          clustered ~clusters:9 ~gates:80 ~dffs:24 ~seed:12 "s9234");
      make "s13207" ~sequential:true
        ~description:"clustered sequential logic, 644 flip-flops" (fun () ->
          clustered ~clusters:14 ~gates:100 ~dffs:46 ~seed:13 "s13207");
      make "s15850" ~sequential:true
        ~description:"clustered sequential logic, 544 flip-flops" (fun () ->
          clustered ~clusters:16 ~gates:110 ~dffs:34 ~seed:14 "s15850");
      make "s38584" ~sequential:true
        ~description:"clustered sequential logic, 1428 flip-flops" (fun () ->
          clustered ~clusters:28 ~gates:120 ~dffs:51 ~seed:15 "s38584");
    ]

(* Scale circuits live outside [all ()]: every suite-wide runner (bench
   partition rows, suite stats documents, ablations) iterates [all ()]
   and would silently grow 100x on these, so they are reachable only by
   name — the perf harness and the CLI ask for them explicitly. *)
let scale ~gates ~seed name =
  Netlist.Generator.scale ~name
    { Netlist.Generator.default_scale with sc_gates = gates; sc_seed = seed }

(* Disjoint pairing welds unrelated logic cones into shared CLBs — noise
   the tiny XC3000 windows absorb, but at 100k+ cells those random links
   dominate the min-cut and no partition can beat them. The scale
   entries keep the structural pairing only. *)
let scale_map_options =
  { Techmap.Mapper.default_options with pair_disjoint = false }

let scale_suite =
  lazy
    [
      make ~map_options:scale_map_options "gen100k" ~sequential:true
        ~description:
          "hierarchical Rent-profile circuit, ~100k mapped cells (perf \
           gate for the multilevel V-cycle)"
        (fun () -> scale ~gates:200_000 ~seed:7 "gen100k");
      make ~map_options:scale_map_options "gen1m" ~sequential:true
        ~description:
          "hierarchical Rent-profile circuit, ~1M mapped cells (extended \
           perf gate, FPGAPART_PERF_FULL)"
        (fun () -> scale ~gates:2_000_000 ~seed:7 "gen1m");
    ]

let all () = Lazy.force suite

let find name =
  List.find_opt
    (fun e -> String.equal e.name name)
    (all () @ Lazy.force scale_suite)
