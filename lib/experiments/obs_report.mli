(** Aggregation of partitioning telemetry into the stable JSON document
    behind [fpgapart partition --stats-json] and [BENCH_partition.json].

    Schema (version 1) of a per-circuit document:
    - ["schema_version"]: [1];
    - ["circuit"], ["seed"]: identification;
    - ["options"]: the {!Core.Kway.options} used ([runs], [seed],
      [replication], [max_passes], [fm_attempts], [refine_rounds]);
    - ["result"]: outcome summary — [num_partitions], [total_cost],
      [avg_clb_utilization], [avg_iob_utilization], [total_clbs],
      [total_iobs], [replicated_cells], [total_cells], [feasible_runs],
      [elapsed_secs], and a ["parts"] list of [{device, clbs, iobs}];
    - ["obs"]: the {!Obs.Snapshot} — ["counters"], ["timers"], and the
      ordered ["events"] stream (["fm.pass"], ["kway.device_attempt"],
      ["kway.split"], ["kway.refine_pair"], ...).

    Every elapsed-time field ends in ["_secs"]; after
    {!Obs.Snapshot.scrub_elapsed} two same-seed documents are
    byte-identical. *)

val options_to_json : Core.Kway.options -> Obs.Json.t

val result_to_json : Core.Kway.result -> Obs.Json.t

val doc :
  name:string ->
  options:Core.Kway.options ->
  result:Core.Kway.result ->
  snapshot:Obs.Snapshot.t ->
  Obs.Json.t
(** Assemble the per-circuit document from an already-finished run (the
    CLI path: it has the result and the sink in hand). *)

val partition_doc :
  ?options:Core.Kway.options ->
  library:Fpga.Library.t ->
  name:string ->
  Hypergraph.t ->
  (Obs.Json.t, string) result
(** Run {!Core.Kway.partition} under a fresh collecting sink and build the
    document. [Error] propagates the driver's failure. *)

val suite_doc : ?runs:int -> ?seed:int -> unit -> Obs.Json.t
(** The bench aggregate: one {!partition_doc} per built-in benchmark
    circuit (infeasible circuits degrade to [{"circuit", "error"}]
    entries), wrapped as [{"schema_version"; "artifact": "partition";
    "kway_runs"; "seed"; "circuits": [...]}]. This is what
    [bench/main.exe partition] writes to [BENCH_partition.json]. *)

val write : path:string -> Obs.Json.t -> unit
