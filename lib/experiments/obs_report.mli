(** Aggregation of partitioning telemetry into the stable JSON document
    behind [fpgapart partition --stats-json] and [BENCH_partition.json].

    Schema (version 6) of a per-circuit document:
    - ["schema_version"]: [6];
    - ["circuit"], ["seed"]: identification;
    - ["options"]: the {!Core.Kway.options} used ([runs], [seed],
      [replication], [max_passes], [fm_attempts], [refine_rounds],
      new in v5 ["objective"] — the {!Fpga.Objective} name — and new in
      v6 ["strategy"] — ["flat"] or the multilevel knob object
      [{max_levels; coarsen_ratio; refine_passes}]; both are part of
      the result's identity and therefore of the service's options
      fingerprint). [jobs] is deliberately omitted: it is an execution
      knob that never shapes the result, and its absence is what lets the
      determinism gate require byte-identical scrubbed documents across
      [--jobs] settings;
    - ["result"]: outcome summary — [num_partitions], [total_cost],
      [avg_clb_utilization], [avg_iob_utilization], [total_clbs],
      [total_iobs], [replicated_cells], [total_cells], [feasible_runs],
      [wall_secs], [cpu_secs] (wall-clock vs all-domain process CPU; v1's
      single [elapsed_secs] claimed CPU seconds, which parallelism made
      wrong), new in v5 a ["resource_util"] object of per-axis aggregate
      utilizations (every key ends in [_util] and is masked by the
      determinism scrub — derived ratios, like the timers), and a
      ["parts"] list of [{device, clbs, iobs}];
    - ["obs"]: the {!Obs.Snapshot} — ["counters"] (including, new in v4,
      ["fm.rescored_cells"] — best-op recomputations triggered by applied
      moves, the cost the criticality-filtered incremental rescoring is
      bounding), ["timers"], ["histograms"] (new in v3: name →
      [{"count"; "sum"; "buckets"}] with signed-log2 bucket labels, all
      integers — see {!Obs.observe}; new in v4: ["fm.moves_per_sec"], a
      wall-derived rate histogram masked by the determinism scrub), and
      the ordered ["events"] stream (["fm.pass"], ["kway.device_attempt"],
      ["kway.split"], ["kway.refine_pair"], ...).

    Every elapsed-time field ends in ["_secs"] and every wall-derived
    rate in ["_per_sec"]; after {!Obs.Snapshot.scrub_elapsed} two
    same-seed documents are byte-identical — whatever [jobs] each ran
    with. The wall-clock trace a
    tracing sink records ({!Obs.Trace}) is deliberately {e absent} from
    this document: begin/end timestamps, domain track ids and GC deltas
    are execution-dependent, so they live only in the separate [--trace]
    artifact. *)

val schema_version : int

val options_to_json : Core.Kway.options -> Obs.Json.t

val result_to_json : Core.Kway.result -> Obs.Json.t

val doc :
  name:string ->
  options:Core.Kway.options ->
  result:Core.Kway.result ->
  snapshot:Obs.Snapshot.t ->
  Obs.Json.t
(** Assemble the per-circuit document from an already-finished run (the
    CLI path: it has the result and the sink in hand). *)

val partition_doc :
  ?options:Core.Kway.options ->
  library:Fpga.Library.t ->
  name:string ->
  Hypergraph.t ->
  (Obs.Json.t, string) result
(** Run {!Core.Kway.partition} under a fresh collecting sink and build the
    document. [Error] propagates the driver's failure. *)

type speedup = {
  circuit : string;
  jobs : int;
  jobs1_wall : float;  (** wall-clock seconds of the [jobs = 1] run *)
  jobsn_wall : float;  (** wall-clock seconds of the [jobs = jobs] run *)
}
(** One per-circuit parallel measurement; the speedup is
    [jobs1_wall /. jobsn_wall]. *)

val suite_doc :
  ?runs:int -> ?seed:int -> ?jobs:int -> unit -> Obs.Json.t * speedup list
(** The bench aggregate: one {!partition_doc} per built-in benchmark
    circuit (infeasible circuits degrade to [{"circuit", "error"}]
    entries), wrapped as [{"schema_version"; "artifact": "partition";
    "kway_runs"; "seed"; "circuits": [...]}]. With [jobs > 1] (default 1)
    each feasible circuit additionally runs twice more under a no-op sink
    — once at [jobs = 1], once at [jobs] — and gains a ["parallel"] object
    [{"jobs"; "jobs1_wall_secs"; "jobsn_wall_secs"}]; those measurements
    are also returned as the {!speedup} list for rendering. This is what
    [bench/main.exe partition] writes to [BENCH_partition.json]. *)

val write : path:string -> Obs.Json.t -> unit

val pp_convergence :
  snapshot:Obs.Snapshot.t ->
  trace:Obs.Trace.span list ->
  wall_secs:float ->
  Format.formatter ->
  unit
(** Human-readable convergence report from one partitioning run:
    a pass-by-pass cutsize table aggregated over every F-M restart (from
    the ["fm.pass"] events), the recorded histograms rendered with
    {!Obs.bucket_label} bars, and — when [trace] is non-empty — per-domain
    utilization (interval-union busy wall time on each trace track divided
    by [wall_secs]). Printed by [fpgapart partition] when a sink is
    enabled. *)
