(** The k-way partitioning campaign behind Tables IV-VII.

    One campaign partitions every circuit with the baseline driver (ref.
    [3]: no replication) and with functional replication at thresholds
    T = 0, 1, 2, 3, recording for each setting the paper's four reported
    quantities: percentage of replicated cells and CPU cost (Table IV),
    average CLB utilization (Table V), total device cost (Table VI) and
    average IOB utilization (Table VII). *)

type setting = Baseline | Threshold of int

val setting_label : setting -> string

type outcome = {
  feasible : bool;
  cost : float;              (** eq. (1) *)
  clb_util : float;          (** fraction *)
  iob_util : float;          (** eq. (2), fraction *)
  replicated_pct : float;
  cpu_secs : float;          (** process CPU seconds ({!Obs.Clock.cpu}) for the multi-start call *)
  k : int;
  devices : (string * int) list;
}

type row = {
  name : string;
  results : (setting * outcome) list;
}

val default_settings : setting list
(** Baseline, then T = 0, 1, 2, 3. *)

val run :
  ?runs:int -> ?seed:int -> ?settings:setting list ->
  ?library:Fpga.Library.t -> Suite.entry -> row
(** [runs] is the paper's "5 feasible partitions per bipartitioning run"
    (default 5). *)

val run_all :
  ?runs:int -> ?seed:int -> ?settings:setting list ->
  ?library:Fpga.Library.t -> unit -> row list

(** {1 The paper's tables} *)

val pp_table4 : Format.formatter -> row list -> unit
(** Percentage of replicated cells per threshold, and CPU seconds. *)

val pp_table5 : Format.formatter -> row list -> unit
(** Average CLB utilization, baseline vs thresholds (percent + delta). *)

val pp_table6 : Format.formatter -> row list -> unit
(** Total device cost, baseline vs thresholds (cost + percent reduction). *)

val pp_table7 : Format.formatter -> row list -> unit
(** Average IOB utilization, baseline vs thresholds (percent + percent
    reduction). *)
