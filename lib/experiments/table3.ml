type row = {
  name : string;
  plain_best : int;
  plain_avg : float;
  repl_best : int;
  repl_avg : float;
  best_reduction : float;
  avg_reduction : float;
  plain_cpu_secs : float;
  repl_cpu_secs : float;
}

(* Best and average final cut over [runs] random starts with one F-M
   configuration. *)
let campaign ~runs ~seed cfg h =
  let t0 = Obs.Clock.cpu () in
  let best = ref max_int and sum = ref 0 in
  for r = 0 to runs - 1 do
    let rng = Netlist.Rng.create (seed + (r * 65537)) in
    let st = Core.Fm.random_state rng h in
    let _, cut, _ = Core.Fm.run_staged cfg st in
    best := min !best cut;
    sum := !sum + cut
  done;
  (!best, float_of_int !sum /. float_of_int runs, Obs.Clock.cpu () -. t0)

let run ?(runs = 20) ?(seed = 7) (e : Suite.entry) =
  let h = Lazy.force e.Suite.hypergraph in
  let total = Hypergraph.total_area h in
  let plain_cfg = Core.Fm.balance_config ~total_area:total () in
  let repl_cfg =
    Core.Fm.balance_config ~replication:(`Functional 0) ~total_area:total ()
  in
  let plain_best, plain_avg, plain_cpu_secs = campaign ~runs ~seed plain_cfg h in
  let repl_best, repl_avg, repl_cpu_secs = campaign ~runs ~seed repl_cfg h in
  let pct better base =
    if base = 0.0 then 0.0 else 100.0 *. (base -. better) /. base
  in
  {
    name = e.Suite.display;
    plain_best;
    plain_avg;
    repl_best;
    repl_avg;
    best_reduction = pct (float_of_int repl_best) (float_of_int plain_best);
    avg_reduction = pct repl_avg plain_avg;
    plain_cpu_secs;
    repl_cpu_secs;
  }

let run_all ?runs ?seed () = List.map (run ?runs ?seed) (Suite.all ())

let average rows =
  let n = float_of_int (max 1 (List.length rows)) in
  let favg f = List.fold_left (fun acc r -> acc +. f r) 0.0 rows /. n in
  {
    name = "Avg.";
    plain_best = 0;
    plain_avg = favg (fun r -> r.plain_avg);
    repl_best = 0;
    repl_avg = favg (fun r -> r.repl_avg);
    best_reduction = favg (fun r -> r.best_reduction);
    avg_reduction = favg (fun r -> r.avg_reduction);
    plain_cpu_secs = favg (fun r -> r.plain_cpu_secs);
    repl_cpu_secs = favg (fun r -> r.repl_cpu_secs);
  }

let pp fmt rows =
  Format.fprintf fmt
    "@[<v>%-10s | %9s %9s | %9s %9s | %9s %9s@," "Circuit" "best cut"
    "avg cut" "best cut" "avg cut" "best red." "avg red.";
  Format.fprintf fmt "%-10s | %-19s | %-19s |@," "" "F-M min-cut"
    "  + Func. Repl.";
  List.iter
    (fun r ->
      Format.fprintf fmt
        "%-10s | %9d %9.1f | %9d %9.1f | %8.1f%% %8.1f%%@," r.name
        r.plain_best r.plain_avg r.repl_best r.repl_avg r.best_reduction
        r.avg_reduction)
    rows;
  let a = average rows in
  Format.fprintf fmt "%-10s | %9s %9s | %9s %9s | %8.1f%% %8.1f%%@," a.name
    "" "" "" "" a.best_reduction a.avg_reduction;
  let cpu_ratio =
    let tp = List.fold_left (fun acc r -> acc +. r.plain_cpu_secs) 0.0 rows in
    let tr = List.fold_left (fun acc r -> acc +. r.repl_cpu_secs) 0.0 rows in
    if tp > 0.0 then 100.0 *. (tr -. tp) /. tp else 0.0
  in
  Format.fprintf fmt
    "(CPU overhead of functional replication over all runs: %+.0f%%; the \
     paper reports +34%%)@]"
    cpu_ratio
