(** Cold-versus-warm ECO experiment: the bench artifact behind the
    incremental-repartitioning ("resubmit") gate.

    One trial perturbs a suite circuit with a seeded random delta
    ({!Netlist.Delta.random}), partitions the edited circuit from scratch
    (cold), then rebuilds the same partition by projecting the base
    circuit's partition onto the edit and warm-starting
    ({!Core.Kway.warm_start}). The report records both wall-clocks, both
    costs, and the projection's shape — the tooling asserts the speedup
    and cost-ratio envelopes (ISSUE 6: ≥10x faster, within ε of the cold
    cost on a 1%-edit of s38584). *)

type report = {
  circuit : string;
  seed : int;
  frac : float;
  edits : int;  (** delta operations applied *)
  base_cells : int;  (** mapped CLBs of the base circuit *)
  edited_cells : int;  (** mapped CLBs of the edited circuit *)
  dirty_cells : int;  (** projection blast radius, edited coordinates *)
  seeded_cells : int;  (** edited cells with no base counterpart *)
  changed_nets : int;
  cold_wall_secs : float;
  warm_wall_secs : float;
  speedup : float;  (** [cold_wall_secs /. warm_wall_secs] *)
  cold_cost : float;
  warm_cost : float;
  cost_ratio : float;  (** [warm_cost /. cold_cost] *)
  warm_feasible : bool;
      (** warm result passed {!Core.Kway.check} (the run aborts loudly
          otherwise, so this is always [true] in a report that exists;
          kept in the schema for the artifact reader) *)
}

val run :
  ?options:Core.Kway.options ->
  ?library:Fpga.Library.t ->
  ?seed:int ->
  ?frac:float ->
  Suite.entry ->
  (report, string) result
(** Run one trial on a suite entry. [seed] (default 7) drives the delta;
    [frac] (default 0.01) is the edit rate as a fraction of the base
    cell count; [options] applies to both the cold and the warm run
    (default {!Core.Kway.Options.default}). [Error] when the delta fails
    to apply, either partition fails, or the warm result is unsound. *)

val to_json : report -> Obs.Json.t
(** Stable object for the BENCH_partition.json ["resubmit"] field. *)
