(** Table III — best and average cut-set size over repeated equal-size
    bipartitions: classic F-M min-cut versus F-M + functional replication
    (threshold T = 0, terminal constraints relaxed). The paper runs 20
    bipartitions per circuit and reports best/average cut and the
    percentage reductions. *)

type row = {
  name : string;
  plain_best : int;
  plain_avg : float;
  repl_best : int;
  repl_avg : float;
  best_reduction : float;   (** percent *)
  avg_reduction : float;    (** percent *)
  plain_cpu_secs : float;   (** process CPU seconds for all plain runs *)
  repl_cpu_secs : float;    (** process CPU seconds for all replication runs *)
}

val run : ?runs:int -> ?seed:int -> Suite.entry -> row
(** [runs] defaults to the paper's 20. *)

val run_all : ?runs:int -> ?seed:int -> unit -> row list

val average : row list -> row
(** The paper's "Avg." line: arithmetic means of the reduction columns
    (best/avg fields hold per-circuit means of the respective columns). *)

val pp : Format.formatter -> row list -> unit
(** Rows plus the averages line, in the paper's layout. *)
