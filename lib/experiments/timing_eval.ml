let crossing_nets hg (r : Core.Kway.result) =
  let crossing = Array.copy hg.Hypergraph.net_external in
  let touched_by = Array.make hg.Hypergraph.num_nets (-1) in
  List.iteri
    (fun j p ->
      List.iter
        (fun (c, m) ->
          Array.iter
            (fun n ->
              if touched_by.(n) < 0 then touched_by.(n) <- j
              else if touched_by.(n) <> j then crossing.(n) <- true)
            (Hypergraph.connected_nets (Hypergraph.cell hg c) ~out_mask:m))
        p.Core.Kway.members)
    r.Core.Kway.parts;
  crossing

let of_result ?model m (r : Core.Kway.result) =
  let hg = Techmap.Mapper.to_hypergraph m in
  let crossing = crossing_nets hg r in
  let expanded = Expand.to_mapped m r in
  Techmap.Timing.analyze ?model ~crossing:(fun n -> crossing.(n)) expanded

type row = {
  name : string;
  baseline_delay : float;
  baseline_crossings : int;
  repl_delay : float;
  repl_crossings : int;
}

let run ?(runs = 5) ?(seed = 1) ?(threshold = 1) (e : Suite.entry) =
  let m = Lazy.force e.Suite.mapped in
  let h = Lazy.force e.Suite.hypergraph in
  let partition replication =
    let options = Core.Kway.Options.make ~runs ~seed ~replication () in
    match Core.Kway.partition ~options ~library:Fpga.Library.xc3000 h with
    | Ok r -> Some (of_result m r)
    | Error _ -> None
  in
  match (partition `None, partition (`Functional threshold)) with
  | Some base, Some repl ->
      Some
        {
          name = e.Suite.display;
          baseline_delay = base.Techmap.Timing.critical_delay;
          baseline_crossings = base.Techmap.Timing.critical_crossings;
          repl_delay = repl.Techmap.Timing.critical_delay;
          repl_crossings = repl.Techmap.Timing.critical_crossings;
        }
  | _ -> None

let pp fmt rows =
  Format.fprintf fmt "@[<v>%-10s | %9s %6s | %9s %6s | %7s@," "Circuit"
    "base dly" "hops" "repl dly" "hops" "speedup";
  List.iter
    (fun r ->
      Format.fprintf fmt "%-10s | %9.1f %6d | %9.1f %6d | %6.2fx@," r.name
        r.baseline_delay r.baseline_crossings r.repl_delay r.repl_crossings
        (r.baseline_delay /. Float.max 1e-9 r.repl_delay))
    rows;
  Format.fprintf fmt
    "(static critical-path delay under the default model: CLB 1.0, \
     intra-device net 0.2, board net 8.0; hops = device crossings on one \
     critical path)@]"
