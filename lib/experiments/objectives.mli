(** Per-objective ablation (the cost-objective API's experiment): the
    same circuit partitioned under each builtin {!Fpga.Objective},
    tabulating device cost, objective total (devices plus interconnect),
    interconnect and resource utilization side by side.

    Under the paper objective the row reproduces the main campaign
    exactly (the objective is bit-identical to the scalar driver); the
    multi-personality row shows what per-axis feasibility costs, and the
    chiplet row what pricing cut signals buys back in interconnect. *)

type row = {
  circuit : string;
  objective : string;  (** {!Fpga.Objective.t.name} *)
  outcome : (Core.Kway.result, string) result;
}

val run :
  ?runs:int ->
  ?seed:int ->
  ?objectives:Fpga.Objective.t list ->
  Suite.entry ->
  row list
(** One row per objective (default {!Fpga.Objective.builtins}), same
    seed and multi-start budget for all of them. *)

val rows_to_json : row list -> Obs.Json.t
(** Rows for [BENCH_partition.json]: [{"circuit"; "objective";
    "num_partitions"; "device_cost"; "objective_cost"; "total_iobs";
    "avg_iob_utilization"; "replicated_cells"; "resource_util"}] (or
    [{"circuit"; "objective"; "error"}] for an infeasible combination).
    The ["resource_util"] keys all end in [_util], so the determinism
    scrub masks them like the timers. *)

val pp : Format.formatter -> row list -> unit
