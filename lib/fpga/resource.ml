type t = int array

let arity = 5
let demand_arity = 4
let clb = 0
let ff = 1
let bram = 2
let dsp = 3
let io = 4
let names = [| "clb"; "ff"; "bram"; "dsp"; "io" |]

let axis_name a =
  if a < 0 || a >= arity then invalid_arg "Resource.axis_name: bad axis"
  else names.(a)

let axis_of_name name =
  let rec find a = if a >= arity then None
    else if String.equal names.(a) name then Some a
    else find (a + 1)
  in
  find 0

let zero () = Array.make arity 0

let make ?(ffs = 0) ?(brams = 0) ?(dsps = 0) ~clbs ~iobs () =
  [| clbs; ffs; brams; dsps; iobs |]

let get v a = if a < Array.length v then v.(a) else 0

let add_into dst src =
  for a = 0 to Array.length dst - 1 do
    dst.(a) <- dst.(a) + get src a
  done

let sub_into dst src =
  for a = 0 to Array.length dst - 1 do
    dst.(a) <- dst.(a) - get src a
  done

let covers ~cap v =
  let n = max (Array.length cap) (Array.length v) in
  let rec ok a = a >= n || (get cap a >= get v a && ok (a + 1)) in
  ok 0

let pp fmt v =
  Format.fprintf fmt "@[<h>[";
  Array.iteri
    (fun a x ->
      if x <> 0 || a = clb then
        Format.fprintf fmt "%s%s:%d" (if a = 0 then "" else " ")
          (if a < arity then names.(a) else string_of_int a)
          x)
    v;
  Format.fprintf fmt "]@]"
