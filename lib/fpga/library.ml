type t = Device.t array

let make devices =
  match devices with
  | [] -> invalid_arg "Library.make: empty library"
  | _ ->
      let arr = Array.of_list devices in
      let names = List.map (fun d -> d.Device.name) devices in
      let sorted_names = List.sort_uniq compare names in
      if List.length sorted_names <> List.length names then
        invalid_arg "Library.make: duplicate device names";
      Array.sort
        (fun a b ->
          match compare a.Device.capacity b.Device.capacity with
          | 0 -> compare a.Device.name b.Device.name
          | c -> c)
        arr;
      arr

(* Capacities and terminal counts are the Xilinx XC3000 family data used by
   the paper; prices are reconstructed (see .mli). Utilization windows: the
   paper reports partitions at 70-90% CLB utilization, so feasible uses must
   land in [0.50, 0.95] of capacity except on the smallest device, which
   also mops up remainders. *)
let xc3000 =
  make
    [
      Device.make ~name:"XC3020" ~capacity:64 ~terminals:64 ~price:100.0
        ~util_low:0.0 ~util_high:0.95 ();
      Device.make ~name:"XC3030" ~capacity:100 ~terminals:80 ~price:150.0
        ~util_low:0.50 ~util_high:0.95 ();
      Device.make ~name:"XC3042" ~capacity:144 ~terminals:96 ~price:210.0
        ~util_low:0.50 ~util_high:0.95 ();
      Device.make ~name:"XC3064" ~capacity:224 ~terminals:120 ~price:315.0
        ~util_low:0.50 ~util_high:0.95 ();
      Device.make ~name:"XC3090" ~capacity:320 ~terminals:144 ~price:435.0
        ~util_low:0.50 ~util_high:0.95 ();
    ]

let xc4000 =
  make
    [
      Device.make ~name:"XC4003" ~capacity:100 ~terminals:80 ~price:160.0
        ~util_low:0.0 ~util_high:0.95 ();
      Device.make ~name:"XC4005" ~capacity:196 ~terminals:112 ~price:290.0
        ~util_low:0.50 ~util_high:0.95 ();
      Device.make ~name:"XC4008" ~capacity:324 ~terminals:144 ~price:450.0
        ~util_low:0.50 ~util_high:0.95 ();
      Device.make ~name:"XC4010" ~capacity:400 ~terminals:160 ~price:540.0
        ~util_low:0.50 ~util_high:0.95 ();
      Device.make ~name:"XC4013" ~capacity:576 ~terminals:192 ~price:750.0
        ~util_low:0.50 ~util_high:0.95 ();
    ]

let devices t = Array.to_list t

let find t name =
  Array.find_opt (fun d -> String.equal d.Device.name name) t

(* Deterministic "cheapest first" ordering: price, then capacity, then
   name — the name leg makes the choice independent of construction
   order when two devices tie on both price and capacity. *)
let by_cheapest a b =
  match compare a.Device.price b.Device.price with
  | 0 -> (
      match compare a.Device.capacity b.Device.capacity with
      | 0 -> compare a.Device.name b.Device.name
      | c -> c)
  | c -> c

let cheapest_matching t pred =
  Array.to_list t |> List.filter pred |> List.sort by_cheapest |> function
  | [] -> None
  | d :: _ -> Some d

let smallest_fitting ?relax_low t ~clbs ~iobs =
  cheapest_matching t (fun d -> Device.fits ?relax_low d ~clbs ~iobs)

let smallest_fitting_demand ?relax_low t ~demand ~iobs =
  cheapest_matching t (fun d -> Device.fits_demand ?relax_low d ~demand ~iobs)

let largest t = t.(Array.length t - 1)

let by_efficiency t =
  Array.to_list t
  |> List.sort (fun a b ->
         match compare (Device.price_per_clb a) (Device.price_per_clb b) with
         | 0 -> (
             match compare a.Device.capacity b.Device.capacity with
             | 0 -> compare a.Device.name b.Device.name
             | c -> c)
         | c -> c)

let min_feasible_cost t ~clbs =
  let cheapest =
    Array.fold_left (fun acc d -> min acc d.Device.price) infinity t
  in
  let best_rate =
    Array.fold_left (fun acc d -> min acc (Device.price_per_clb d)) infinity t
  in
  Float.max cheapest (best_rate *. float_of_int clbs)

(* ------------------------------------------------------------------ *)
(* JSON device libraries                                              *)
(* ------------------------------------------------------------------ *)

module J = Obs.Json

let num_field obj k =
  match J.member k obj with
  | Some (J.Int n) -> Some (float_of_int n)
  | Some (J.Float f) -> Some f
  | _ -> None

let axis_map ~who obj k ~default =
  let arr = Array.make Resource.arity default in
  (match J.member k obj with
  | None -> Ok ()
  | Some (J.Obj fields) ->
      List.fold_left
        (fun acc (axis, v) ->
          match acc with
          | Error _ -> acc
          | Ok () -> (
              match Resource.axis_of_name axis with
              | None ->
                  Error (Printf.sprintf "%s: unknown resource axis %S" who axis)
              | Some a -> (
                  match v with
                  | J.Int n -> arr.(a) <- float_of_int n; Ok ()
                  | J.Float f -> arr.(a) <- f; Ok ()
                  | _ ->
                      Error
                        (Printf.sprintf "%s: axis %S must be a number" who axis)
                  )))
        (Ok ()) fields
  | Some _ -> Error (Printf.sprintf "%s: %S must be an object" who k))
  |> Result.map (fun () -> arr)

let device_of_json j =
  match j with
  | J.Obj _ -> (
      let name =
        match J.member "name" j with Some (J.String s) -> s | _ -> ""
      in
      let who = Printf.sprintf "device %S" name in
      if name = "" then Error "device: missing \"name\""
      else
        match num_field j "price" with
        | None -> Error (who ^ ": missing numeric \"price\"")
        | Some price -> (
            match J.member "resources" j with
            | Some _ -> (
                let ( let* ) = Result.bind in
                let* res = axis_map ~who j "resources" ~default:0.0 in
                let* low = axis_map ~who j "res_low" ~default:0.0 in
                let* high = axis_map ~who j "res_high" ~default:1.0 in
                let resources = Array.map int_of_float res in
                try
                  Ok
                    (Device.make_vector ~name ~resources ~price ~res_low:low
                       ~res_high:high ())
                with Invalid_argument msg -> Error msg)
            | None -> (
                (* Scalar (paper Table I) form. *)
                match (num_field j "capacity", num_field j "terminals") with
                | Some c, Some t -> (
                    let util_low =
                      Option.value (num_field j "util_low") ~default:0.0
                    in
                    let util_high =
                      Option.value (num_field j "util_high") ~default:1.0
                    in
                    try
                      Ok
                        (Device.make ~name ~capacity:(int_of_float c)
                           ~terminals:(int_of_float t) ~price ~util_low
                           ~util_high ())
                    with Invalid_argument msg -> Error msg)
                | _ ->
                    Error
                      (who
                     ^ ": need either \"resources\" or \
                        \"capacity\"/\"terminals\""))))
  | _ -> Error "device: expected an object"

let of_json j =
  match J.member "devices" j with
  | Some (J.List entries) -> (
      let rec parse acc = function
        | [] -> Ok (List.rev acc)
        | e :: rest -> (
            match device_of_json e with
            | Ok d -> parse (d :: acc) rest
            | Error msg -> Error msg)
      in
      match parse [] entries with
      | Error _ as e -> e
      | Ok ds -> ( try Ok (make ds) with Invalid_argument msg -> Error msg))
  | _ -> Error "library: missing \"devices\" array"

let load path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | exception Sys_error msg -> Error msg
  | text -> (
      match J.of_string text with
      | Error msg -> Error (Printf.sprintf "%s: %s" path msg)
      | Ok j -> of_json j)

let pp fmt t =
  Format.fprintf fmt "@[<v>%-8s %5s %5s %7s %5s %5s %9s@,"
    "Device" "c_i" "t_i" "d_i" "l_i" "u_i" "d_i/c_i";
  Array.iter
    (fun d ->
      Format.fprintf fmt "%-8s %5d %5d %7.0f %5.2f %5.2f %9.2f@,"
        d.Device.name d.Device.capacity d.Device.terminals d.Device.price
        d.Device.util_low d.Device.util_high (Device.price_per_clb d))
    t;
  Format.fprintf fmt "@]"
