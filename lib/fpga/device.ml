type t = {
  name : string;
  capacity : int;
  terminals : int;
  price : float;
  util_low : float;
  util_high : float;
  resources : Resource.t;
  res_low : float array;
  res_high : float array;
}

let check_windows ~who low high =
  for a = 0 to Resource.arity - 1 do
    if not (0.0 <= low.(a) && low.(a) <= high.(a) && high.(a) <= 1.0) then
      invalid_arg (who ^ ": need 0 <= res_low <= res_high <= 1 on every axis")
  done

let make_vector ~name ~resources ~price ?res_low ?res_high () =
  if Array.length resources <> Resource.arity then
    invalid_arg "Device.make_vector: resources must have length Resource.arity";
  if resources.(Resource.clb) <= 0 then
    invalid_arg "Device.make_vector: CLB capacity must be positive";
  if resources.(Resource.io) <= 0 then
    invalid_arg "Device.make_vector: IO capacity must be positive";
  Array.iter
    (fun x ->
      if x < 0 then
        invalid_arg "Device.make_vector: capacities must be non-negative")
    resources;
  if price <= 0.0 then invalid_arg "Device.make_vector: price must be positive";
  let res_low =
    match res_low with
    | None -> Array.make Resource.arity 0.0
    | Some l ->
        if Array.length l <> Resource.arity then
          invalid_arg "Device.make_vector: res_low must have length Resource.arity";
        Array.copy l
  in
  let res_high =
    match res_high with
    | None -> Array.make Resource.arity 1.0
    | Some h ->
        if Array.length h <> Resource.arity then
          invalid_arg "Device.make_vector: res_high must have length Resource.arity";
        Array.copy h
  in
  check_windows ~who:"Device.make_vector" res_low res_high;
  {
    name;
    capacity = resources.(Resource.clb);
    terminals = resources.(Resource.io);
    price;
    util_low = res_low.(Resource.clb);
    util_high = res_high.(Resource.clb);
    resources = Array.copy resources;
    res_low;
    res_high;
  }

let make ~name ~capacity ~terminals ~price ?(util_low = 0.0) ?(util_high = 1.0)
    () =
  if capacity <= 0 then invalid_arg "Device.make: capacity must be positive";
  if terminals <= 0 then invalid_arg "Device.make: terminals must be positive";
  if price <= 0.0 then invalid_arg "Device.make: price must be positive";
  if not (0.0 <= util_low && util_low <= util_high && util_high <= 1.0) then
    invalid_arg "Device.make: need 0 <= util_low <= util_high <= 1";
  (* XC3000 shape: 2 flip-flops per CLB; no BRAM/DSP. Secondary windows
     [0, 1] keep these axes inert under the paper's scalar model. *)
  let resources = Array.make Resource.arity 0 in
  resources.(Resource.clb) <- capacity;
  resources.(Resource.ff) <- 2 * capacity;
  resources.(Resource.io) <- terminals;
  let res_low = Array.make Resource.arity 0.0 in
  let res_high = Array.make Resource.arity 1.0 in
  res_low.(Resource.clb) <- util_low;
  res_high.(Resource.clb) <- util_high;
  { name; capacity; terminals; price; util_low; util_high;
    resources; res_low; res_high }

let min_clbs d = int_of_float (ceil (d.util_low *. float_of_int d.capacity))
let max_clbs d = int_of_float (floor (d.util_high *. float_of_int d.capacity))

let axis_min d a =
  int_of_float (ceil (d.res_low.(a) *. float_of_int d.resources.(a)))

let axis_max d a =
  int_of_float (floor (d.res_high.(a) *. float_of_int d.resources.(a)))

let demand_caps d = Array.init Resource.demand_arity (fun a -> axis_max d a)

let fits ?(relax_low = false) d ~clbs ~iobs =
  clbs <= max_clbs d
  && (relax_low || clbs >= min_clbs d)
  && clbs >= 1
  && iobs <= d.terminals

let fits_demand ?(relax_low = false) d ~demand ~iobs =
  fits ~relax_low d ~clbs:(Resource.get demand Resource.clb) ~iobs
  &&
  let rec ok a =
    a >= Resource.demand_arity
    || (let x = Resource.get demand a in
        x <= axis_max d a && (relax_low || x >= axis_min d a) && ok (a + 1))
  in
  ok 1

let price_per_clb d = d.price /. float_of_int d.capacity

let clb_utilization d ~clbs = float_of_int clbs /. float_of_int d.capacity
let iob_utilization d ~iobs = float_of_int iobs /. float_of_int d.terminals

let pp fmt d =
  Format.fprintf fmt "%s (%d CLB, %d IOB, $%.0f, util %.2f-%.2f)" d.name
    d.capacity d.terminals d.price d.util_low d.util_high
