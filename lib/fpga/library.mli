(** Device libraries.

    A library is a set of device types a partition may be implemented with;
    any number of each type may be used. The XC3000 library reproduces
    Table I of the paper: capacities and terminal counts are the real
    Xilinx XC3000 values; the price column of the original table is not
    recoverable from the available copy, so prices are reconstructed with
    the qualitative structure the paper relies on (larger devices cheaper
    per CLB, poorer in terminals per CLB). *)

type t = private Device.t array
(** Sorted by ascending capacity. *)

val make : Device.t list -> t
(** Raises [Invalid_argument] on an empty list or duplicate device names. *)

val xc3000 : t
(** Table I: XC3020, XC3030, XC3042, XC3064, XC3090. *)

val xc4000 : t
(** The successor family (XC4003 … XC4013), offered as an alternative
    target for sensitivity studies. Capacities and terminal counts are the
    real XC4000 values; prices are reconstructed on the same principles as
    {!xc3000}. Note the CLB counts are not directly comparable with XC3000
    CLBs (the XC4000 CLB is larger), so use one family per experiment. *)

val devices : t -> Device.t list
val find : t -> string -> Device.t option

val smallest_fitting : ?relax_low:bool -> t -> clbs:int -> iobs:int -> Device.t option
(** Cheapest device that can host the given partition. Deterministic
    tie-breaking: ties on price go to the smaller capacity, and ties on
    both price and capacity to the lexicographically smaller name — so
    the choice never depends on library construction order. *)

val smallest_fitting_demand :
  ?relax_low:bool -> t -> demand:int array -> iobs:int -> Device.t option
(** {!smallest_fitting} under vector feasibility ({!Device.fits_demand}):
    every axis of [demand] must land in the device's per-axis utilization
    window. Same price/capacity/name tie-breaking. *)

val largest : t -> Device.t

val by_efficiency : t -> Device.t list
(** Devices sorted by ascending price per CLB (most cost-efficient
    first); ties on price per CLB break by ascending capacity, then name,
    so the order is deterministic regardless of construction order. *)

val min_feasible_cost : t -> clbs:int -> float
(** A lower bound on the cost of hosting [clbs] CLBs: fractional covering
    by the most cost-efficient device, but never below the cheapest single
    device. Used for reporting, and as an optimistic bound in search.
    Being a [Float.max] of two library-wide minima, the bound is
    insensitive to device order and needs no tie-breaking. *)

val of_json : Obs.Json.t -> (t, string) result
(** Parse a JSON device library. Expected shape:
    {v
    { "name": "my-lib",
      "devices": [
        { "name": "A", "price": 100.0,
          "resources": { "clb": 64, "ff": 128, "io": 64 },
          "res_low":  { "clb": 0.5 },
          "res_high": { "clb": 0.95 } } ] }
    v}
    Axes missing from ["resources"] default to 0 (["clb"] and ["io"]
    required positive); missing window entries default to 0 / 1. The
    scalar form [{ "name", "capacity", "terminals", "price", "util_low",
    "util_high" }] is also accepted and routed through {!Device.make}. *)

val load : string -> (t, string) result
(** Read and {!of_json} a file. *)

val pp : Format.formatter -> t -> unit
(** Renders the library as the paper's Table I. *)
