(** Pluggable cost objectives.

    The paper minimises total device cost (eq. 1) with average IOB
    utilization (eq. 2) as the interconnect tie-breaker; every other cost
    model the partitioner supports differs only in how a device and a cut
    net are priced and in which feasibility test a partition must pass.
    An objective packages those choices as a record of closures so the
    k-way driver stays objective-agnostic.

    The paper objective is the identity element of the design: its
    [net_cost] is the constant [0.0] and its feasibility mode is
    {!Primary}, so every total it contributes to is the same float the
    scalar code path computed ([x +. 0.0 = x] for the finite positive
    prices involved) — bit-identical results, enforced by the golden
    telemetry gate ([tools/check_objectives.sh]). *)

type fm_objective = [ `Cut | `Terminals ]
(** Which quantity the F-M engine minimises (mirrors [Fm.objective];
    [lib/fpga] sits below [lib/core] so the variant is structural). *)

type feasibility =
  | Primary
      (** The paper's scalar test: CLB window + terminal budget only
          ({!Device.fits}). Exactly the pre-redesign behaviour. *)
  | Vector
      (** Per-axis feasibility ({!Device.fits_demand}): every resource
          axis of a partition's demand must land in the device's window.
          During F-M the secondary axes are soft penalties (like the
          terminal budget already is), so the hot loop stays
          allocation-free. *)

type t = {
  name : string;
  description : string;
  device_cost : Device.t -> float;
      (** Price of using one instance of a device. *)
  net_cost : nets:int -> float;
      (** Interconnect cost of [nets] cut (partition-external) signals;
          added to device totals when ranking candidate devices and
          k-way solutions. *)
  split_objective : fm_objective;
      (** F-M objective while carving one partition out of the rest. *)
  refine_objective : fm_objective;
      (** F-M objective during pairwise post-refinement. *)
  feasibility : feasibility;
}

val paper : t
(** ["paper"]: eq. (1) device cost, zero net cost, cut-driven split,
    terminal-driven refinement, primary feasibility. The default, and
    bit-identical to the pre-objective scalar code path. *)

val multi_personality : t
(** ["multi-personality"]: Gregerson's heterogeneous-resource model —
    same device pricing as the paper, but {!Vector} feasibility so FF /
    BRAM / DSP demand constrains placement alongside CLBs. *)

val chiplet : t
(** ["chiplet"]: ChipletPart-style 2.5D model — every cut signal crosses
    the interposer and carries {!chiplet_net_cost}, so both F-M stages
    minimise terminals and solution ranking pays for interconnect. *)

val chiplet_net_cost : float
(** Interposer cost per crossing signal, in the same reconstructed
    dollars as the device prices (2.0). *)

val builtins : t list
(** [paper; multi_personality; chiplet]. *)

val names : string list

val of_name : string -> (t, string) result
(** Look up a builtin by [name]; the error lists valid names. *)

val total_cost : t -> device_cost:float -> cut_nets:int -> float
(** [device_cost +. net_cost ~nets:cut_nets] — the scalar a k-way
    solution is ranked by. *)

val pp : Format.formatter -> t -> unit
