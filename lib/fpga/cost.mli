(** The paper's two objective functions.

    Eq. (1): total device cost [$ _k = sum_i d_i n_i] over the devices used
    by a k-way partition. Eq. (2): average IOB utilization
    [lambda_k = sum_j t_{P_j} / sum_i t_i n_i], the paper's measure of
    inter-device interconnect.

    Placements additionally carry the partition's full resource demand
    vector, and summaries report per-axis aggregate utilization — the
    raw material of the vector objectives in {!Objective}. *)

type placement = {
  device : Device.t;
  clbs : int;  (** CLBs of the partition implemented on this device *)
  iobs : int;  (** terminals (used IOBs) of that partition *)
  used : int array;
      (** demand over the first [Resource.demand_arity] axes;
          [used.(Resource.clb) = clbs]. [[||]] means "primary axis only"
          (scalar-era placements). *)
}

val place : Device.t -> ?used:int array -> clbs:int -> iobs:int -> unit -> placement
(** The only way to build a placement ([used] defaults to [[||]]).
    Raises [Invalid_argument] if [used] is non-empty and
    [used.(Resource.clb) <> clbs]. *)

type summary = {
  num_partitions : int;             (** [k] *)
  total_cost : float;               (** eq. (1) *)
  avg_iob_utilization : float;      (** eq. (2) *)
  avg_clb_utilization : float;      (** aggregate: used CLBs / capacity *)
  total_clbs : int;
  total_iobs : int;
  device_counts : (string * int) list;  (** per device type, library order *)
  resource_util : (string * float) list;
      (** per-axis aggregate utilization, one [("<axis>_util", used/cap)]
          entry per {!Resource} axis in axis order; 0 when the device
          pool has no capacity on that axis. The [clb]/[io] entries
          restate [avg_clb_utilization]/[avg_iob_utilization]. *)
}

val summarize : placement list -> summary
(** Raises [Invalid_argument] on an empty placement list. *)

val placement_feasible : ?relax_low:bool -> placement -> bool
(** Size and terminal constraints of Section I. *)

val placement_feasible_demand : ?relax_low:bool -> placement -> bool
(** Vector feasibility ({!Device.fits_demand}) of one placement, using
    [used] (or just [clbs] when [used = [||]]). *)

val all_feasible : ?relax_low_last:bool -> placement list -> bool
(** Every placement feasible; [relax_low_last] relaxes the lower
    utilization bound on the final (remainder) placement only. *)

val pp_summary : Format.formatter -> summary -> unit
