type placement = {
  device : Device.t;
  clbs : int;
  iobs : int;
  used : int array;
}

let place device ?(used = [||]) ~clbs ~iobs () =
  if Array.length used > 0 && Resource.get used Resource.clb <> clbs then
    invalid_arg "Cost.place: used.(clb) must equal clbs";
  { device; clbs; iobs; used }

type summary = {
  num_partitions : int;
  total_cost : float;
  avg_iob_utilization : float;
  avg_clb_utilization : float;
  total_clbs : int;
  total_iobs : int;
  device_counts : (string * int) list;
  resource_util : (string * float) list;
}

let summarize placements =
  if placements = [] then invalid_arg "Cost.summarize: no placements";
  let total_cost =
    List.fold_left (fun acc p -> acc +. p.device.Device.price) 0.0 placements
  in
  let total_clbs = List.fold_left (fun acc p -> acc + p.clbs) 0 placements in
  let total_iobs = List.fold_left (fun acc p -> acc + p.iobs) 0 placements in
  let cap_clbs =
    List.fold_left (fun acc p -> acc + p.device.Device.capacity) 0 placements
  in
  let cap_iobs =
    List.fold_left (fun acc p -> acc + p.device.Device.terminals) 0 placements
  in
  let used_axes = Array.make Resource.arity 0 in
  let cap_axes = Array.make Resource.arity 0 in
  List.iter
    (fun p ->
      used_axes.(Resource.clb) <- used_axes.(Resource.clb) + p.clbs;
      used_axes.(Resource.io) <- used_axes.(Resource.io) + p.iobs;
      for a = 1 to Resource.demand_arity - 1 do
        used_axes.(a) <- used_axes.(a) + Resource.get p.used a
      done;
      Resource.add_into cap_axes p.device.Device.resources)
    placements;
  let counts = Hashtbl.create 8 in
  let order = ref [] in
  List.iter
    (fun p ->
      let name = p.device.Device.name in
      match Hashtbl.find_opt counts name with
      | Some n -> Hashtbl.replace counts name (n + 1)
      | None ->
          Hashtbl.add counts name 1;
          order := name :: !order)
    placements;
  {
    num_partitions = List.length placements;
    total_cost;
    avg_iob_utilization = float_of_int total_iobs /. float_of_int cap_iobs;
    avg_clb_utilization = float_of_int total_clbs /. float_of_int cap_clbs;
    total_clbs;
    total_iobs;
    device_counts =
      List.rev_map (fun name -> (name, Hashtbl.find counts name)) !order;
    resource_util =
      List.init Resource.arity (fun a ->
          ( Resource.axis_name a ^ "_util",
            if cap_axes.(a) = 0 then 0.0
            else float_of_int used_axes.(a) /. float_of_int cap_axes.(a) ));
  }

let placement_feasible ?relax_low p =
  Device.fits ?relax_low p.device ~clbs:p.clbs ~iobs:p.iobs

let placement_feasible_demand ?relax_low p =
  let demand = if Array.length p.used = 0 then [| p.clbs |] else p.used in
  Device.fits_demand ?relax_low p.device ~demand ~iobs:p.iobs

let all_feasible ?(relax_low_last = false) placements =
  let n = List.length placements in
  List.for_all2
    (fun i p -> placement_feasible ~relax_low:(relax_low_last && i = n - 1) p)
    (List.init n Fun.id) placements

let pp_summary fmt s =
  let devices =
    s.device_counts
    |> List.map (fun (name, n) -> Printf.sprintf "%dx %s" n name)
    |> String.concat ", "
  in
  Format.fprintf fmt
    "k=%d, cost $%.0f, CLB util %.0f%%, IOB util %.0f%% (%s)"
    s.num_partitions s.total_cost
    (100.0 *. s.avg_clb_utilization)
    (100.0 *. s.avg_iob_utilization)
    devices
