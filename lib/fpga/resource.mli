(** Fixed-arity resource vectors.

    A resource vector generalises the paper's scalar (CLB, IOB) pair to
    the heterogeneous-device setting (Gregerson's multi-personality
    model): one slot per on-chip resource class. The representation is a
    bare [int array] of length {!arity} so the partitioner's hot path can
    read and update totals allocation-free; every operation below that
    takes a destination array mutates in place.

    Axis conventions:
    - slot {!clb} is the {e primary} axis — it is the paper's CLB count
      and doubles as the cell "area" the balance condition is written
      against;
    - slot {!io} is net-derived (terminals of a partition), never part of
      a cell's demand;
    - cells therefore carry demand vectors over the first {!demand_arity}
      axes only ([clb], [ff], [bram], [dsp]).

    [demand_arity] must stay equal to [Hypergraph.demand_arity]
    (hypergraph_lib cannot depend on this library, so the constant is
    duplicated and pinned by a test). *)

type t = int array

val arity : int
(** Number of axes (5). *)

val demand_arity : int
(** Number of axes a cell demand vector may use (4: [clb], [ff], [bram],
    [dsp]); the [io] axis is derived from nets, not summed from cells. *)

val clb : int
val ff : int
val bram : int
val dsp : int
val io : int

val axis_name : int -> string
(** ["clb"], ["ff"], ["bram"], ["dsp"], ["io"]. *)

val axis_of_name : string -> int option

val zero : unit -> t
(** Fresh all-zero vector of length {!arity}. *)

val make : ?ffs:int -> ?brams:int -> ?dsps:int -> clbs:int -> iobs:int -> unit -> t
(** Full-arity vector; omitted axes default to 0. *)

val get : t -> int -> int
(** Zero-extended read: [get v a] is [v.(a)] when in range, else 0.
    Accepts vectors shorter than {!arity} (cell demands). *)

val add_into : t -> t -> unit
(** [add_into dst src]: [dst.(a) <- dst.(a) + get src a] for every axis
    of [dst]. Allocation-free. *)

val sub_into : t -> t -> unit
(** Pointwise subtraction, same conventions as {!add_into}. *)

val covers : cap:t -> t -> bool
(** [covers ~cap v]: [get cap a >= get v a] on every axis of either
    vector. Allocation-free. *)

val pp : Format.formatter -> t -> unit
