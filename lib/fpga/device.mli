(** FPGA device types.

    A device [D_i = (c_i, t_i, d_i, l_i, u_i)] as in Table I of the paper:
    CLB capacity, terminal (IOB) count, unit price, and lower/upper bounds
    on CLB utilization for a feasible assignment — generalised to a
    {!Resource} capacity vector with per-axis utilization windows. The
    paper's scalar model is the special case where only the primary (CLB)
    and IO axes are constrained; {!make} builds exactly that case.

    The record is [private]: construct through {!make} or {!make_vector}
    only (the {!Kway.Options.make} pattern from PR 2, enforced at the type
    level rather than by [[@@deprecated]] so stale literal construction is
    a compile error, not a warning). Field reads remain ordinary. *)

type t = private {
  name : string;
  capacity : int;     (** [c_i]: configurable logic blocks
                          (= [resources.(Resource.clb)], cached) *)
  terminals : int;    (** [t_i]: I/O blocks
                          (= [resources.(Resource.io)], cached) *)
  price : float;      (** [d_i]: unit cost (normalised dollars) *)
  util_low : float;   (** [l_i]: minimum CLB utilization of a feasible use
                          (= [res_low.(Resource.clb)], cached) *)
  util_high : float;  (** [u_i]: maximum CLB utilization
                          (= [res_high.(Resource.clb)], cached) *)
  resources : Resource.t;  (** per-axis capacities, length [Resource.arity] *)
  res_low : float array;   (** per-axis lower utilization bounds *)
  res_high : float array;  (** per-axis upper utilization bounds *)
}

val make :
  name:string -> capacity:int -> terminals:int -> price:float ->
  ?util_low:float -> ?util_high:float -> unit -> t
(** The paper's scalar device. Defaults: [util_low = 0.0],
    [util_high = 1.0]. Raises [Invalid_argument] on non-positive
    capacity/terminals/price or bounds outside [0 <= l <= u <= 1].
    Secondary axes get the XC3000 shape: FF capacity [2 * capacity]
    (two flip-flops per CLB), no BRAM/DSP; secondary windows are
    \[0, 1\] so they never constrain the scalar model. *)

val make_vector :
  name:string -> resources:Resource.t -> price:float ->
  ?res_low:float array -> ?res_high:float array -> unit -> t
(** A fully vector-specified device. [resources] must have length
    [Resource.arity] with positive CLB and IO capacities and non-negative
    others; [res_low]/[res_high] (defaults all-0 / all-1) must satisfy
    [0 <= low.(a) <= high.(a) <= 1] per axis. Raises [Invalid_argument]
    otherwise. *)

val min_clbs : t -> int
(** Smallest CLB count satisfying the lower utilization bound
    ([ceil (l_i * c_i)]). *)

val max_clbs : t -> int
(** Largest CLB count satisfying the upper bound ([floor (u_i * c_i)]). *)

val axis_min : t -> int -> int
(** Per-axis lower bound, [ceil (res_low.(a) * resources.(a))];
    [axis_min d Resource.clb = min_clbs d]. *)

val axis_max : t -> int -> int
(** Per-axis upper bound, [floor (res_high.(a) * resources.(a))]. *)

val demand_caps : t -> int array
(** The per-axis caps a partition's demand vector must respect, as an
    array of length [Resource.demand_arity]: [axis_max] on each demand
    axis. Used as [Fm]'s [res_max] bound under vector feasibility. *)

val fits : ?relax_low:bool -> t -> clbs:int -> iobs:int -> bool
(** Feasibility of one partition on this device under the paper's scalar
    model: CLB count within the utilization window and IOB count within
    the terminal budget. [relax_low] ignores the lower bound (used for
    the final remainder partition of a k-way decomposition). Secondary
    axes are not consulted. *)

val fits_demand : ?relax_low:bool -> t -> demand:int array -> iobs:int -> bool
(** Vector feasibility: {!fits} on the primary axis ([demand.(0)]) and
    IO, plus every other demand axis within its own utilization window.
    [demand] may be shorter than [Resource.demand_arity] (missing axes
    read as 0). *)

val price_per_clb : t -> float

val clb_utilization : t -> clbs:int -> float
val iob_utilization : t -> iobs:int -> float

val pp : Format.formatter -> t -> unit
