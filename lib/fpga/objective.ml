type fm_objective = [ `Cut | `Terminals ]
type feasibility = Primary | Vector

type t = {
  name : string;
  description : string;
  device_cost : Device.t -> float;
  net_cost : nets:int -> float;
  split_objective : fm_objective;
  refine_objective : fm_objective;
  feasibility : feasibility;
}

let paper =
  {
    name = "paper";
    description =
      "total device cost (eq. 1), avg IOB utilization tie-break (eq. 2)";
    device_cost = (fun d -> d.Device.price);
    net_cost = (fun ~nets:_ -> 0.0);
    split_objective = `Cut;
    refine_objective = `Terminals;
    feasibility = Primary;
  }

let multi_personality =
  {
    name = "multi-personality";
    description =
      "Gregerson heterogeneous resources: per-axis demand (CLB/FF/BRAM/DSP) \
       must fit each device's utilization windows";
    device_cost = (fun d -> d.Device.price);
    net_cost = (fun ~nets:_ -> 0.0);
    split_objective = `Cut;
    refine_objective = `Terminals;
    feasibility = Vector;
  }

let chiplet_net_cost = 2.0

let chiplet =
  {
    name = "chiplet";
    description =
      "ChipletPart-style 2.5D: cut signals price in interposer cost, both \
       F-M stages minimise crossings";
    device_cost = (fun d -> d.Device.price);
    net_cost = (fun ~nets -> chiplet_net_cost *. float_of_int nets);
    split_objective = `Terminals;
    refine_objective = `Terminals;
    feasibility = Primary;
  }

let builtins = [ paper; multi_personality; chiplet ]
let names = List.map (fun o -> o.name) builtins

let of_name name =
  match List.find_opt (fun o -> String.equal o.name name) builtins with
  | Some o -> Ok o
  | None ->
      Error
        (Printf.sprintf "unknown objective %S (choose from: %s)" name
           (String.concat ", " names))

let total_cost t ~device_cost ~cut_nets =
  device_cost +. t.net_cost ~nets:cut_nets

let pp fmt t = Format.fprintf fmt "%s (%s)" t.name t.description
