(** Projection of a partition onto an edited hypergraph.

    Incremental repartitioning starts from a finished partition of a
    {e base} hypergraph and an {e edited} hypergraph produced by applying
    a netlist delta and re-mapping. Cell and net names survive mapping
    (CLBs are named after the signals they drive, nets after their
    signals), so the projection matches by name: an edited cell inherits
    the part label of the base cell with the same name, and is marked
    {e dirty} when its neighbourhood is not provably identical to the
    base — it is new, its shape changed, or it touches a net whose
    incidence (member names or external flag) differs from the base net
    of the same name.

    The dirty set over-approximates the delta's blast radius at the
    mapped level: any cell whose F-M gains could differ from the base run
    touches a changed net and is therefore dirty, so restricting
    warm-start refinement to dirty cells loses nothing the base
    partition had already optimised (see DESIGN.md §8). *)

type t = {
  labels : int array;
      (** per edited cell: inherited part index, or [-1] for a cell with
          no base counterpart (the warm start seeds these) *)
  dirty : bool array;
      (** per edited cell: inside the edit's blast radius; always true
          when [labels] is [-1] *)
  matched : int;  (** edited cells with a base counterpart *)
  added : int;  (** edited cells without one *)
  dropped : int;  (** base cells without an edited counterpart *)
  changed_nets : int;
      (** edited nets that are new or differ from their base namesake *)
}

val project :
  base:Hypergraph.t ->
  base_labels:int array ->
  ?base_dirty:bool array ->
  Hypergraph.t ->
  t
(** [base_labels.(c)] is the part index of base cell [c] (use [-1] for a
    base cell that should not donate its label, e.g. when the caller could
    not attribute a replicated cell). [base_dirty] (default all-false)
    forces matched cells dirty — the caller marks replicated base cells
    here so the warm start may re-decide their replication.

    Projecting a partition onto an unedited hypergraph is the identity:
    every cell matches, keeps its label, and is dirty only where
    [base_dirty] says so. Raises [Invalid_argument] when [base_labels]
    (or [base_dirty]) does not cover [base]. *)
