(** Bipartition state with functional replication.

    Every cell's placement is a single bit mask [out_on_b]: the set of its
    outputs currently realised on side [B]. The three situations of the
    paper are all mask values:

    - mask empty: the cell lives entirely on side [A] (a {e single} cell);
    - mask full: entirely on side [B];
    - anything else: the cell is {e functionally replicated} — a copy on
      each side, each copy carrying its mask's outputs and connecting only
      the input nets those outputs depend on (their adjacency vectors).

    Moving a cell, creating a replica (one output migrates), adjusting a
    replica's output split, and un-replicating are all "change the mask"
    operations, so the unified gain model of Section III reduces to one
    primitive: {!eval} the exact cut/terminal/area deltas of a mask change,
    computed in O(cell degree) from per-net side-connection counts.

    Tracked quantities:
    - [cut]: nets with connections on both sides (external pins do not make
      a net cut — at bipartition level they are already paid for);
    - [terminals s]: nets that would consume an IOB on side [s]: incident to
      [s] and leaving it (to the other side or to an external pin);
    - [area s]: total CLB area of the copies on side [s] (a replicated
      cell pays area on both sides). *)

type side = A | B

val opposite : side -> side
val side_to_string : side -> string

type t

type model = Functional | Traditional
(** How a replicated copy connects to input nets: [Functional] uses the
    per-output adjacency vectors (the paper's contribution); [Traditional]
    connects every copy to all inputs (the Kring–Newton model the paper's
    eq. 8 scores), kept as an ablation baseline. With single cells the two
    models coincide. *)

val create :
  ?model:model -> Hypergraph.t -> init_on_b:(int -> bool) -> t
(** Fresh state with every cell single, on the side given by [init_on_b].
    [model] defaults to [Functional]. *)

val create_with_masks :
  ?model:model -> Hypergraph.t -> masks:(int -> Bitvec.t) -> t
(** Fresh state with an arbitrary initial output assignment: [masks c] is
    the set of cell [c]'s outputs starting on side [B] (so cells may start
    replicated). Raises [Invalid_argument] if a mask exceeds the cell's
    outputs. *)

val model : t -> model

val copy : t -> t
(** Deep copy (for snapshotting the best solution of a pass). *)

val hypergraph : t -> Hypergraph.t

(** {1 Observations} *)

val mask : t -> int -> Bitvec.t
(** Current [out_on_b] mask of a cell. *)

val full_mask : t -> int -> Bitvec.t
(** The all-outputs mask of a cell. *)

val is_replicated : t -> int -> bool
val num_replicated : t -> int
val cut : t -> int
val terminals : t -> side -> int
val area : t -> side -> int

val resource : t -> side -> int -> int
(** [resource t s a] — total demand on axis [a] (of
    [Hypergraph.demand_arity]) of the copies on side [s]; axis 0
    restates {!area}. Replication semantics match area: a replicated
    cell pays its full demand on both sides. O(1), allocation-free. *)

val resources : t -> side -> int array
(** All demand axes of a side as a fresh array of length
    [Hypergraph.demand_arity]. *)

val side_copies : t -> side -> (int * Bitvec.t) list
(** Cells present on a side with the output mask their copy carries there
    (relative to the cell's own output numbering). *)

val single_side : t -> int -> side option
(** [Some s] when the cell is entirely on [s]. *)

val connections : t -> side -> int -> int
(** [connections t s n] — number of cell copies connected to net [n] on
    side [s] (the per-net counters behind cut and terminal tracking). *)

val net_cut : t -> int -> bool
(** Whether a net currently has connections on both sides. *)

(** {1 Mask changes} *)

type delta = {
  d_cut : int;
  d_term_a : int;
  d_term_b : int;
  d_area_a : int;
  d_area_b : int;
}

val zero_delta : delta

val eval : t -> int -> Bitvec.t -> delta
(** [eval t c m] — exact effect of setting cell [c]'s mask to [m], without
    applying it. The paper's gains are recovered as [- d_cut]. Raises
    [Invalid_argument] if [m] is not a subset of {!full_mask}. *)

type scratch = {
  mutable sc_cut : int;
  mutable sc_term_a : int;
  mutable sc_term_b : int;
  mutable sc_area_a : int;
  mutable sc_area_b : int;
  sc_res_a : int array;
  sc_res_b : int array;
      (** per-axis demand deltas, length [Hypergraph.demand_arity];
          slot 0 restates [sc_area_a]/[sc_area_b] *)
}
(** A caller-owned mutable delta, for evaluation loops that must not
    allocate (the F-M hot path evaluates one candidate per affected
    neighbour per applied move). The resource slots are fixed arrays
    written in place, so vector-aware objectives ride the same
    allocation-free path. *)

val make_scratch : unit -> scratch

val eval_into : t -> int -> Bitvec.t -> scratch -> unit
(** [eval_into t c m out] — exactly {!eval}, but writing the delta into
    [out] instead of returning a fresh record. Allocation-free. *)

val apply : t -> int -> Bitvec.t -> delta
(** Commit a mask change and return its delta (equal to what {!eval} would
    have returned). Additionally records the set of {e state-changed} nets
    for {!iter_changed_nets}. *)

val num_changed_nets : t -> int

val iter_changed_nets : t -> (int -> unit) -> unit
(** The nets whose per-side connection category [min (count, 2)] changed
    in the last {!apply} — i.e. a side count crossed a critical boundary
    (0↔1 or 1↔2). Candidate deltas of a cell depend on an incident net's
    side counts only through these categories (any single-cell mask change
    shifts each count by at most one, and every per-net cut/terminal
    contribution tests counts against 0 over that ±1 neighbourhood), so a
    cell none of whose incident nets appear here keeps its best op
    verbatim. This is the completeness fact behind F-M's
    criticality-filtered incremental rescoring; the set is valid until the
    next {!apply} on the same state and iterates in ascending net order. *)

(** {1 Verification support} *)

val recompute : t -> int * int * int * int * int
(** [(cut, term_a, term_b, area_a, area_b)] recomputed from scratch. *)

val check_consistency : t -> (unit, string) result
(** Compare the incrementally maintained counters against {!recompute};
    used by the property-based tests after random operation sequences. *)
