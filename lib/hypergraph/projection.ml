type t = {
  labels : int array;
  dirty : bool array;
  matched : int;
  added : int;
  dropped : int;
  changed_nets : int;
}

(* A net's identity for change detection: the sorted names of its incident
   cells plus the external flag. Any membership or visibility change of
   the net shows up here, and a cell whose incident nets all carry
   unchanged signatures has exactly the base cell's connectivity. *)
let net_signature (h : Hypergraph.t) n =
  let members =
    Array.to_list h.Hypergraph.net_cells.(n)
    |> List.map (fun c -> (Hypergraph.cell h c).Hypergraph.name)
    |> List.sort String.compare
  in
  (h.Hypergraph.net_external.(n), members)

let project ~base ~base_labels ?base_dirty edited =
  let nb = Hypergraph.num_cells base in
  let ne = Hypergraph.num_cells edited in
  if Array.length base_labels <> nb then
    invalid_arg
      (Printf.sprintf
         "Projection.project: base_labels covers %d cells, base has %d"
         (Array.length base_labels) nb);
  let base_dirty =
    match base_dirty with
    | None -> Array.make nb false
    | Some d ->
        if Array.length d <> nb then
          invalid_arg
            (Printf.sprintf
               "Projection.project: base_dirty covers %d cells, base has %d"
               (Array.length d) nb)
        else d
  in
  let base_cell = Hashtbl.create (nb * 2) in
  Array.iter
    (fun (cell : Hypergraph.cell) ->
      Hashtbl.replace base_cell cell.Hypergraph.name cell.Hypergraph.id)
    base.Hypergraph.cells;
  let base_net = Hashtbl.create (base.Hypergraph.num_nets * 2) in
  Array.iteri
    (fun n name -> Hashtbl.replace base_net name (net_signature base n))
    base.Hypergraph.net_names;
  let changed = Array.make (max 1 edited.Hypergraph.num_nets) false in
  let changed_nets = ref 0 in
  for n = 0 to edited.Hypergraph.num_nets - 1 do
    let same =
      match Hashtbl.find_opt base_net edited.Hypergraph.net_names.(n) with
      | None -> false
      | Some sig_b -> sig_b = net_signature edited n
    in
    if not same then begin
      changed.(n) <- true;
      incr changed_nets
    end
  done;
  let labels = Array.make ne (-1) in
  let dirty = Array.make ne false in
  let matched = ref 0 in
  let added = ref 0 in
  Array.iter
    (fun (cell : Hypergraph.cell) ->
      let c = cell.Hypergraph.id in
      (match Hashtbl.find_opt base_cell cell.Hypergraph.name with
      | Some b ->
          incr matched;
          labels.(c) <- base_labels.(b);
          let base_shape = Hypergraph.cell base b in
          if
            base_dirty.(b)
            || base_labels.(b) < 0
            || base_shape.Hypergraph.area <> cell.Hypergraph.area
            || Array.length base_shape.Hypergraph.outputs
               <> Array.length cell.Hypergraph.outputs
          then dirty.(c) <- true
      | None ->
          incr added;
          dirty.(c) <- true);
      if not dirty.(c) then
        dirty.(c) <-
          Array.exists (fun n -> changed.(n)) (Hypergraph.cell_nets cell))
    edited.Hypergraph.cells;
  (* Unlabelled cells are necessarily part of the warm start's seeding
     work, label origin aside. *)
  Array.iteri (fun c l -> if l < 0 then dirty.(c) <- true) labels;
  let edited_names = Hashtbl.create (ne * 2) in
  Array.iter
    (fun (cell : Hypergraph.cell) ->
      Hashtbl.replace edited_names cell.Hypergraph.name ())
    edited.Hypergraph.cells;
  let dropped = ref 0 in
  Array.iter
    (fun (cell : Hypergraph.cell) ->
      if not (Hashtbl.mem edited_names cell.Hypergraph.name) then incr dropped)
    base.Hypergraph.cells;
  {
    labels;
    dirty;
    matched = !matched;
    added = !added;
    dropped = !dropped;
    changed_nets = !changed_nets;
  }
