let demand_arity = 4

type cell = {
  id : int;
  name : string;
  area : int;
  demand : int array;
  inputs : int array;
  outputs : int array;
  supports : Bitvec.t array;
  conn_cache : int array array;
  full_nets : int array;
}

type t = {
  cells : cell array;
  num_nets : int;
  net_cells : int array array;
  net_external : bool array;
  net_names : string array;
}

type cell_spec = {
  s_name : string;
  s_area : int;
  s_demand : int array;
  s_inputs : int array;
  s_outputs : int array;
  s_supports : Bitvec.t array;
}

let sort_dedup arr =
  let arr = Array.copy arr in
  Array.sort compare arr;
  let n = Array.length arr in
  if n <= 1 then arr
  else begin
    let out = ref [] and count = ref 0 in
    for i = n - 1 downto 0 do
      if i = 0 || arr.(i) <> arr.(i - 1) then begin
        out := arr.(i) :: !out;
        incr count
      end
    done;
    Array.of_list !out
  end

let cell_nets c = sort_dedup (Array.append c.inputs c.outputs)

let connected_nets_uncached c ~out_mask =
  if Bitvec.is_empty out_mask then [||]
  else begin
    let nets = Netlist.Vec.create () in
    let in_mask = ref Bitvec.empty in
    Bitvec.iter
      (fun o ->
        ignore (Netlist.Vec.push nets c.outputs.(o));
        in_mask := Bitvec.union !in_mask c.supports.(o))
      out_mask;
    Bitvec.iter (fun i -> ignore (Netlist.Vec.push nets c.inputs.(i))) !in_mask;
    sort_dedup (Netlist.Vec.to_array nets)
  end

let connected_nets c ~out_mask =
  if out_mask >= 0 && out_mask < Array.length c.conn_cache then
    c.conn_cache.(out_mask)
  else if Bitvec.equal out_mask (Bitvec.full (Array.length c.outputs)) then
    c.full_nets
  else connected_nets_uncached c ~out_mask

let connected_nets_traditional c ~out_mask =
  if Bitvec.is_empty out_mask then [||]
  else begin
    let nets = Netlist.Vec.create () in
    Bitvec.iter (fun o -> ignore (Netlist.Vec.push nets c.outputs.(o))) out_mask;
    Array.iter (fun n -> ignore (Netlist.Vec.push nets n)) c.inputs;
    sort_dedup (Netlist.Vec.to_array nets)
  end

(* Cells with few outputs (every mapped CLB) get a per-mask memo table;
   every cell gets the full-mask entry. *)
let fill_conn_cache c =
  let m = Array.length c.outputs in
  let c =
    { c with full_nets = connected_nets_uncached c ~out_mask:(Bitvec.full m) }
  in
  if m > 4 then c
  else begin
    let table =
      Array.init (1 lsl m) (fun mask -> connected_nets_uncached c ~out_mask:mask)
    in
    { c with conn_cache = table }
  end

let check_cell ~num_nets c =
  let n_in = Array.length c.inputs in
  let bad msg = Error (Printf.sprintf "cell %s: %s" c.name msg) in
  if c.area < 1 then bad "area must be >= 1"
  else if Array.length c.demand < 1 || Array.length c.demand > demand_arity
  then bad "demand must use 1..demand_arity axes"
  else if c.demand.(0) <> c.area then bad "demand.(0) must equal area"
  else if Array.exists (fun x -> x < 0) c.demand then
    bad "demand must be non-negative"
  else if Array.length c.outputs = 0 then bad "cell has no outputs"
  else if Array.length c.supports <> Array.length c.outputs then
    bad "one support mask per output required"
  else if
    Array.exists (fun n -> n < 0 || n >= num_nets) c.inputs
    || Array.exists (fun n -> n < 0 || n >= num_nets) c.outputs
  then bad "net id out of range"
  else if n_in > Bitvec.max_width then bad "too many input pins"
  else if
    Array.exists (fun s -> not (Bitvec.subset s (Bitvec.full n_in))) c.supports
  then bad "support refers to a missing input pin"
  else if
    n_in > 0
    && not
         (Bitvec.equal
            (Array.fold_left Bitvec.union Bitvec.empty c.supports)
            (Bitvec.full n_in))
  then bad "some input pin supports no output"
  else if n_in = 0 && Array.exists (fun s -> not (Bitvec.is_empty s)) c.supports
  then bad "support of an input-less cell must be empty"
  else Ok ()

let validate h =
  let num = Array.length h.cells in
  let rec check_cells i =
    if i >= num then Ok ()
    else if h.cells.(i).id <> i then Error "cell id mismatch"
    else
      match check_cell ~num_nets:h.num_nets h.cells.(i) with
      | Error _ as e -> e
      | Ok () -> check_cells (i + 1)
  in
  match check_cells 0 with
  | Error _ as e -> e
  | Ok () -> (
      (* Exactly one driver per net among the cells, unless external. *)
      let drivers = Array.make h.num_nets 0 in
      Array.iter
        (fun c -> Array.iter (fun n -> drivers.(n) <- drivers.(n) + 1) c.outputs)
        h.cells;
      let rec check_nets n =
        if n >= h.num_nets then Ok ()
        else if drivers.(n) > 1 then
          Error (Printf.sprintf "net %d has %d drivers" n drivers.(n))
        else if drivers.(n) = 0 && not h.net_external.(n) then
          Error (Printf.sprintf "net %d has no driver and is not external" n)
        else check_nets (n + 1)
      in
      check_nets 0)

let create ?net_names ~num_nets ~external_nets specs =
  let cells =
    List.mapi
      (fun id s ->
        fill_conn_cache
          {
            id;
            name = s.s_name;
            area = s.s_area;
            demand =
              (if Array.length s.s_demand = 0 then [| s.s_area |]
               else Array.copy s.s_demand);
            inputs = s.s_inputs;
            outputs = s.s_outputs;
            supports = s.s_supports;
            conn_cache = [||];
            full_nets = [||];
          })
      specs
    |> Array.of_list
  in
  let net_external = Array.make num_nets false in
  List.iter
    (fun n ->
      if n < 0 || n >= num_nets then
        invalid_arg "Hypergraph.create: external net id out of range";
      net_external.(n) <- true)
    external_nets;
  let net_cell_lists = Array.make num_nets [] in
  Array.iter
    (fun c ->
      Array.iter
        (fun n ->
          if n >= 0 && n < num_nets then
            match net_cell_lists.(n) with
            | x :: _ when x = c.id -> ()
            | l -> net_cell_lists.(n) <- c.id :: l)
        (cell_nets c))
    cells;
  let net_names =
    match net_names with
    | Some a ->
        if Array.length a <> num_nets then
          invalid_arg "Hypergraph.create: net_names length mismatch";
        a
    | None -> Array.init num_nets (fun n -> Printf.sprintf "net%d" n)
  in
  let h =
    {
      cells;
      num_nets;
      net_cells = Array.map (fun l -> Array.of_list (List.rev l)) net_cell_lists;
      net_external;
      net_names;
    }
  in
  match validate h with
  | Ok () -> h
  | Error msg -> invalid_arg ("Hypergraph.create: " ^ msg)

let num_cells h = Array.length h.cells
let cell h i = h.cells.(i)
let total_area h = Array.fold_left (fun acc c -> acc + c.area) 0 h.cells

let total_demand h =
  let acc = Array.make demand_arity 0 in
  Array.iter
    (fun c ->
      let d = c.demand in
      for a = 0 to Array.length d - 1 do
        acc.(a) <- acc.(a) + d.(a)
      done)
    h.cells;
  acc

let boundary h ~labels =
  if Array.length labels <> num_cells h then
    invalid_arg "Hypergraph.boundary: labels do not cover the cells";
  let flags = Array.make (num_cells h) false in
  Array.iter
    (fun cells ->
      if Array.length cells > 1 then begin
        let l0 = labels.(cells.(0)) in
        if Array.exists (fun c -> labels.(c) <> l0) cells then
          Array.iter (fun c -> flags.(c) <- true) cells
      end)
    h.net_cells;
  flags

let max_cell_degree h =
  Array.fold_left (fun acc c -> max acc (Array.length (cell_nets c))) 0 h.cells

let pins h =
  Array.fold_left
    (fun acc c -> acc + Array.length c.inputs + Array.length c.outputs)
    0 h.cells

(* Restrict to copies: each (cell id, out_mask) becomes a new cell carrying
   exactly those outputs and the inputs they depend on. A net becomes
   external when it was external before or when some incidence of the
   original hypergraph is not covered by the kept copies. *)
let induce_copies h specs =
  let kept_mask = Array.make (num_cells h) Bitvec.empty in
  List.iter
    (fun (id, m) ->
      if id < 0 || id >= num_cells h then
        invalid_arg "Hypergraph.induce_copies: cell id out of range";
      if Bitvec.is_empty m then
        invalid_arg "Hypergraph.induce_copies: empty output mask";
      if not (Bitvec.subset m (Bitvec.full (Array.length h.cells.(id).outputs)))
      then invalid_arg "Hypergraph.induce_copies: mask out of range";
      if not (Bitvec.is_empty kept_mask.(id)) then
        invalid_arg "Hypergraph.induce_copies: duplicate cell";
      kept_mask.(id) <- m)
    specs;
  (* Net renumbering: nets touched by kept copies survive. *)
  let net_map = Array.make h.num_nets (-1) in
  let new_nets = Netlist.Vec.create () in
  let map_net n =
    if net_map.(n) < 0 then
      net_map.(n) <- Netlist.Vec.push new_nets n;
    net_map.(n)
  in
  let specs = Array.of_list specs in
  Array.iter
    (fun (id, m) ->
      Array.iter
        (fun n -> ignore (map_net n))
        (connected_nets h.cells.(id) ~out_mask:m))
    specs;
  let num_new_nets = Netlist.Vec.length new_nets in
  (* External detection: walk original incidences. *)
  let external_flags = Array.make num_new_nets false in
  for n = 0 to h.num_nets - 1 do
    if net_map.(n) >= 0 then begin
      let ext = ref h.net_external.(n) in
      Array.iter
        (fun cid ->
          let cell = h.cells.(cid) in
          let kept = kept_mask.(cid) in
          let touches m =
            (not (Bitvec.is_empty m))
            && Array.exists (fun n' -> n' = n) (connected_nets cell ~out_mask:m)
          in
          (* The cell touches n (it is in net_cells). The net leaks outside
             when the kept copy does not cover that incidence, or when the
             dropped copy (the complement of the kept outputs, e.g. the
             other half of a replicated cell) also touches it. *)
          let dropped =
            Bitvec.diff (Bitvec.full (Array.length cell.outputs)) kept
          in
          if (not (touches kept)) || touches dropped then ext := true)
        h.net_cells.(n);
      external_flags.(net_map.(n)) <- !ext
    end
  done;
  let new_specs =
    Array.to_list specs
    |> List.map (fun (id, m) ->
           let c = h.cells.(id) in
           let in_mask =
             Bitvec.fold
               (fun o acc -> Bitvec.union acc c.supports.(o))
               m Bitvec.empty
           in
           let in_pins = Bitvec.to_list in_mask in
           let new_index = Hashtbl.create 8 in
           List.iteri (fun k p -> Hashtbl.add new_index p k) in_pins;
           let s_inputs =
             Array.of_list (List.map (fun p -> net_map.(c.inputs.(p))) in_pins)
           in
           let out_pins = Bitvec.to_list m in
           let s_outputs =
             Array.of_list (List.map (fun o -> net_map.(c.outputs.(o))) out_pins)
           in
           let s_supports =
             Array.of_list
               (List.map
                  (fun o ->
                    Bitvec.fold
                      (fun p acc -> Bitvec.add (Hashtbl.find new_index p) acc)
                      c.supports.(o) Bitvec.empty)
                  out_pins)
           in
           { s_name = c.name; s_area = c.area; s_demand = c.demand;
             s_inputs; s_outputs; s_supports })
  in
  let net_names =
    Array.init num_new_nets (fun k -> h.net_names.(Netlist.Vec.get new_nets k))
  in
  let externals = ref [] in
  Array.iteri (fun k e -> if e then externals := k :: !externals) external_flags;
  let h' =
    create ~net_names ~num_nets:num_new_nets ~external_nets:!externals new_specs
  in
  (h', specs)

let induce h ~keep =
  if Array.length keep <> num_cells h then
    invalid_arg "Hypergraph.induce: keep length mismatch";
  let specs = ref [] in
  for id = num_cells h - 1 downto 0 do
    if keep.(id) then
      specs :=
        (id, Bitvec.full (Array.length h.cells.(id).outputs)) :: !specs
  done;
  let h', spec_arr = induce_copies h !specs in
  (h', Array.map fst spec_arr)

let pp_summary fmt h =
  let n_ext =
    Array.fold_left (fun acc e -> if e then acc + 1 else acc) 0 h.net_external
  in
  Format.fprintf fmt "%d cells (area %d), %d nets (%d external), %d pins"
    (num_cells h) (total_area h) h.num_nets n_ext (pins h)
