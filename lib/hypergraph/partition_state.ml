type side = A | B

let opposite = function A -> B | B -> A
let side_to_string = function A -> "A" | B -> "B"

type model = Functional | Traditional

type t = {
  hg : Hypergraph.t;
  model : model;
  out_on_b : Bitvec.t array;
  conn_a : int array;  (* per net: copies connected on side A *)
  conn_b : int array;
  mutable cut : int;
  mutable term_a : int;
  mutable term_b : int;
  mutable area_a : int;
  mutable area_b : int;
  (* Per-side resource totals over the cells' demand vectors (slot 0
     restates area); fixed length [Hypergraph.demand_arity]. Same
     replication semantics as area: a replicated cell pays its full
     demand on both sides. *)
  res_a : int array;
  res_b : int array;
  (* Scratch buffers for the per-operation net deltas (F-M evaluates one
     candidate operation per neighbouring cell after every applied move, so
     this path must not allocate). s1/s2 hold the per-side delta streams
     (ascending net order); they are merged into s_nets/s_da/s_db. *)
  mutable s_nets : int array;
  mutable s_da : int array;
  mutable s_db : int array;
  mutable s_len : int;
  mutable s1_nets : int array;
  mutable s1_d : int array;
  mutable s1_len : int;
  mutable s2_nets : int array;
  mutable s2_d : int array;
  mutable s2_len : int;
  (* Nets whose per-side connection category (0 / 1 / >=2) changed in the
     last [apply] — exactly the nets that crossed a gain-relevant critical
     boundary (0<->1 or 1<->2 on a side). Kept separate from the s_* eval
     scratch so readers may interleave [eval]/[eval_into] calls with the
     iteration. *)
  mutable ch_nets : int array;
  mutable ch_len : int;
  sd : scratch; (* reusable target for the record-returning eval/apply *)
}

and delta = {
  d_cut : int;
  d_term_a : int;
  d_term_b : int;
  d_area_a : int;
  d_area_b : int;
}

and scratch = {
  mutable sc_cut : int;
  mutable sc_term_a : int;
  mutable sc_term_b : int;
  mutable sc_area_a : int;
  mutable sc_area_b : int;
  sc_res_a : int array;
  sc_res_b : int array;
}

let zero_delta = { d_cut = 0; d_term_a = 0; d_term_b = 0; d_area_a = 0; d_area_b = 0 }

let make_scratch () =
  {
    sc_cut = 0;
    sc_term_a = 0;
    sc_term_b = 0;
    sc_area_a = 0;
    sc_area_b = 0;
    sc_res_a = Array.make Hypergraph.demand_arity 0;
    sc_res_b = Array.make Hypergraph.demand_arity 0;
  }

let hypergraph t = t.hg
let model t = t.model

(* Nets a copy touches under the state's replication model. *)
let conn_nets t cell ~out_mask =
  match t.model with
  | Functional -> Hypergraph.connected_nets cell ~out_mask
  | Traditional -> Hypergraph.connected_nets_traditional cell ~out_mask

let full_mask t c = Bitvec.full (Array.length (Hypergraph.cell t.hg c).Hypergraph.outputs)
let mask t c = t.out_on_b.(c)

let is_replicated t c =
  let m = t.out_on_b.(c) in
  (not (Bitvec.is_empty m)) && not (Bitvec.equal m (full_mask t c))

let num_replicated t =
  let n = ref 0 in
  for c = 0 to Hypergraph.num_cells t.hg - 1 do
    if is_replicated t c then incr n
  done;
  !n

let cut t = t.cut
let terminals t = function A -> t.term_a | B -> t.term_b
let area t = function A -> t.area_a | B -> t.area_b
let resource t side a = match side with A -> t.res_a.(a) | B -> t.res_b.(a)
let resources t side =
  Array.copy (match side with A -> t.res_a | B -> t.res_b)

let single_side t c =
  let m = t.out_on_b.(c) in
  if Bitvec.is_empty m then Some A
  else if Bitvec.equal m (full_mask t c) then Some B
  else None

let connections t side n =
  match side with A -> t.conn_a.(n) | B -> t.conn_b.(n)

let net_cut t n = t.conn_a.(n) > 0 && t.conn_b.(n) > 0

let mask_on t c = function
  | B -> t.out_on_b.(c)
  | A -> Bitvec.diff (full_mask t c) t.out_on_b.(c)

let side_copies t side =
  let acc = ref [] in
  for c = Hypergraph.num_cells t.hg - 1 downto 0 do
    let m = mask_on t c side in
    if not (Bitvec.is_empty m) then acc := (c, m) :: !acc
  done;
  !acc

(* Per-net contributions to the tracked counters. *)
let cut_of ca cb = if ca > 0 && cb > 0 then 1 else 0

let term_of ~ext ca cb =
  let ta = if ca > 0 && (cb > 0 || ext) then 1 else 0 in
  let tb = if cb > 0 && (ca > 0 || ext) then 1 else 0 in
  (ta, tb)

let recompute t =
  let hg = t.hg in
  let ca = Array.make hg.Hypergraph.num_nets 0 in
  let cb = Array.make hg.Hypergraph.num_nets 0 in
  let area_a = ref 0 and area_b = ref 0 in
  for c = 0 to Hypergraph.num_cells hg - 1 do
    let cell = Hypergraph.cell hg c in
    let m_a = mask_on t c A and m_b = mask_on t c B in
    if not (Bitvec.is_empty m_a) then begin
      area_a := !area_a + cell.Hypergraph.area;
      Array.iter (fun n -> ca.(n) <- ca.(n) + 1) (conn_nets t cell ~out_mask:m_a)
    end;
    if not (Bitvec.is_empty m_b) then begin
      area_b := !area_b + cell.Hypergraph.area;
      Array.iter (fun n -> cb.(n) <- cb.(n) + 1) (conn_nets t cell ~out_mask:m_b)
    end
  done;
  let cut = ref 0 and term_a = ref 0 and term_b = ref 0 in
  for n = 0 to hg.Hypergraph.num_nets - 1 do
    cut := !cut + cut_of ca.(n) cb.(n);
    let ta, tb = term_of ~ext:hg.Hypergraph.net_external.(n) ca.(n) cb.(n) in
    term_a := !term_a + ta;
    term_b := !term_b + tb
  done;
  (!cut, !term_a, !term_b, !area_a, !area_b)

let create_with_masks ?(model = Functional) hg ~masks =
  let n_cells = Hypergraph.num_cells hg in
  let out_on_b =
    Array.init n_cells (fun c ->
        let full =
          Bitvec.full (Array.length (Hypergraph.cell hg c).Hypergraph.outputs)
        in
        let m = masks c in
        if not (Bitvec.subset m full) then
          invalid_arg "Partition_state.create_with_masks: mask out of range";
        m)
  in
  let t =
    {
      hg;
      model;
      out_on_b;
      conn_a = Array.make hg.Hypergraph.num_nets 0;
      conn_b = Array.make hg.Hypergraph.num_nets 0;
      cut = 0;
      term_a = 0;
      term_b = 0;
      area_a = 0;
      area_b = 0;
      res_a = Array.make Hypergraph.demand_arity 0;
      res_b = Array.make Hypergraph.demand_arity 0;
      s_nets = Array.make 32 0;
      s_da = Array.make 32 0;
      s_db = Array.make 32 0;
      s_len = 0;
      s1_nets = Array.make 32 0;
      s1_d = Array.make 32 0;
      s1_len = 0;
      s2_nets = Array.make 32 0;
      s2_d = Array.make 32 0;
      s2_len = 0;
      ch_nets = Array.make 32 0;
      ch_len = 0;
      sd = make_scratch ();
    }
  in
  (* Fill the connection counts from scratch. *)
  for c = 0 to n_cells - 1 do
    let cell = Hypergraph.cell hg c in
    let m_a = mask_on t c A and m_b = mask_on t c B in
    let dem = cell.Hypergraph.demand in
    if not (Bitvec.is_empty m_a) then begin
      t.area_a <- t.area_a + cell.Hypergraph.area;
      for a = 0 to Array.length dem - 1 do
        t.res_a.(a) <- t.res_a.(a) + dem.(a)
      done;
      Array.iter
        (fun n -> t.conn_a.(n) <- t.conn_a.(n) + 1)
        (conn_nets t cell ~out_mask:m_a)
    end;
    if not (Bitvec.is_empty m_b) then begin
      t.area_b <- t.area_b + cell.Hypergraph.area;
      for a = 0 to Array.length dem - 1 do
        t.res_b.(a) <- t.res_b.(a) + dem.(a)
      done;
      Array.iter
        (fun n -> t.conn_b.(n) <- t.conn_b.(n) + 1)
        (conn_nets t cell ~out_mask:m_b)
    end
  done;
  for n = 0 to hg.Hypergraph.num_nets - 1 do
    t.cut <- t.cut + cut_of t.conn_a.(n) t.conn_b.(n);
    let ta, tb =
      term_of ~ext:hg.Hypergraph.net_external.(n) t.conn_a.(n) t.conn_b.(n)
    in
    t.term_a <- t.term_a + ta;
    t.term_b <- t.term_b + tb
  done;
  t

let create ?model hg ~init_on_b =
  create_with_masks ?model hg ~masks:(fun c ->
      if init_on_b c then
        Bitvec.full (Array.length (Hypergraph.cell hg c).Hypergraph.outputs)
      else Bitvec.empty)

let copy t =
  {
    t with
    out_on_b = Array.copy t.out_on_b;
    conn_a = Array.copy t.conn_a;
    conn_b = Array.copy t.conn_b;
    res_a = Array.copy t.res_a;
    res_b = Array.copy t.res_b;
    s_nets = Array.make 32 0;
    s_da = Array.make 32 0;
    s_db = Array.make 32 0;
    s_len = 0;
    s1_nets = Array.make 32 0;
    s1_d = Array.make 32 0;
    s1_len = 0;
    s2_nets = Array.make 32 0;
    s2_d = Array.make 32 0;
    s2_len = 0;
    ch_nets = Array.make 32 0;
    ch_len = 0;
    sd = make_scratch ();
  }

(* Aggregate per-net connection deltas of a mask change into the scratch
   buffers: entries (net, da, db) with da/db in {-1, 0, +1}. Sorted-array
   merges over the old/new connected-net sets of each side; the handful of
   touched nets is scanned linearly. *)
let net_deltas t c new_mask =
  let cell = Hypergraph.cell t.hg c in
  let old_b = t.out_on_b.(c) in
  let full = full_mask t c in
  let old_a = Bitvec.diff full old_b and new_a = Bitvec.diff full new_mask in
  let nets_of m = conn_nets t cell ~out_mask:m in
  let old_na = nets_of old_a and new_na = nets_of new_a in
  let old_nb = nets_of old_b and new_nb = nets_of new_mask in
  let grow a = Array.append a (Array.make (max 32 (Array.length a)) 0) in
  t.s1_len <- 0;
  t.s2_len <- 0;
  let push1 n v =
    if t.s1_len = Array.length t.s1_nets then begin
      t.s1_nets <- grow t.s1_nets;
      t.s1_d <- grow t.s1_d
    end;
    t.s1_nets.(t.s1_len) <- n;
    t.s1_d.(t.s1_len) <- v;
    t.s1_len <- t.s1_len + 1
  in
  let push2 n v =
    if t.s2_len = Array.length t.s2_nets then begin
      t.s2_nets <- grow t.s2_nets;
      t.s2_d <- grow t.s2_d
    end;
    t.s2_nets.(t.s2_len) <- n;
    t.s2_d.(t.s2_len) <- v;
    t.s2_len <- t.s2_len + 1
  in
  let diff_sorted removed added on_removed on_added =
    (* Both arrays sorted ascending and deduplicated; emissions are in
       ascending net order. *)
    let i = ref 0 and j = ref 0 in
    let nr = Array.length removed and na = Array.length added in
    while !i < nr || !j < na do
      if !i >= nr then begin
        on_added added.(!j);
        incr j
      end
      else if !j >= na then begin
        on_removed removed.(!i);
        incr i
      end
      else if removed.(!i) = added.(!j) then begin
        incr i;
        incr j
      end
      else if removed.(!i) < added.(!j) then begin
        on_removed removed.(!i);
        incr i
      end
      else begin
        on_added added.(!j);
        incr j
      end
    done
  in
  diff_sorted old_na new_na (fun n -> push1 n (-1)) (fun n -> push1 n 1);
  diff_sorted old_nb new_nb (fun n -> push2 n (-1)) (fun n -> push2 n 1);
  (* Merge the two sorted streams into (net, da, db) triples. *)
  t.s_len <- 0;
  let need = t.s1_len + t.s2_len in
  if need > Array.length t.s_nets then begin
    let size = max 32 need in
    t.s_nets <- Array.make size 0;
    t.s_da <- Array.make size 0;
    t.s_db <- Array.make size 0
  end;
  let out n da db =
    t.s_nets.(t.s_len) <- n;
    t.s_da.(t.s_len) <- da;
    t.s_db.(t.s_len) <- db;
    t.s_len <- t.s_len + 1
  in
  let i = ref 0 and j = ref 0 in
  while !i < t.s1_len || !j < t.s2_len do
    if !i >= t.s1_len then begin
      out t.s2_nets.(!j) 0 t.s2_d.(!j);
      incr j
    end
    else if !j >= t.s2_len then begin
      out t.s1_nets.(!i) t.s1_d.(!i) 0;
      incr i
    end
    else if t.s1_nets.(!i) = t.s2_nets.(!j) then begin
      out t.s1_nets.(!i) t.s1_d.(!i) t.s2_d.(!j);
      incr i;
      incr j
    end
    else if t.s1_nets.(!i) < t.s2_nets.(!j) then begin
      out t.s1_nets.(!i) t.s1_d.(!i) 0;
      incr i
    end
    else begin
      out t.s2_nets.(!j) 0 t.s2_d.(!j);
      incr j
    end
  done

(* Fold the scratch net deltas into [out] (scratch must hold the deltas of
   changing cell [c] to [new_mask]). Writes fields in place — the F-M hot
   loop evaluates one candidate per affected neighbour per applied move, so
   this path allocates nothing. *)
let scratch_totals t c new_mask (out : scratch) =
  let cell = Hypergraph.cell t.hg c in
  let d_cut = ref 0 and d_ta = ref 0 and d_tb = ref 0 in
  for i = 0 to t.s_len - 1 do
    let n = t.s_nets.(i) and da = t.s_da.(i) and db = t.s_db.(i) in
    let ca = t.conn_a.(n) and cb = t.conn_b.(n) in
    let ext = t.hg.Hypergraph.net_external.(n) in
    let ta0, tb0 = term_of ~ext ca cb in
    let ta1, tb1 = term_of ~ext (ca + da) (cb + db) in
    d_cut := !d_cut + cut_of (ca + da) (cb + db) - cut_of ca cb;
    d_ta := !d_ta + ta1 - ta0;
    d_tb := !d_tb + tb1 - tb0
  done;
  let old_b = t.out_on_b.(c) in
  let full = full_mask t c in
  let exists m = if Bitvec.is_empty m then 0 else 1 in
  out.sc_cut <- !d_cut;
  out.sc_term_a <- !d_ta;
  out.sc_term_b <- !d_tb;
  let ma =
    exists (Bitvec.diff full new_mask) - exists (Bitvec.diff full old_b)
  in
  let mb = exists new_mask - exists old_b in
  out.sc_area_a <- cell.Hypergraph.area * ma;
  out.sc_area_b <- cell.Hypergraph.area * mb;
  let dem = cell.Hypergraph.demand in
  let dem_len = Array.length dem in
  for a = 0 to Hypergraph.demand_arity - 1 do
    let d = if a < dem_len then dem.(a) else 0 in
    out.sc_res_a.(a) <- d * ma;
    out.sc_res_b.(a) <- d * mb
  done

let reset_scratch (out : scratch) =
  out.sc_cut <- 0;
  out.sc_term_a <- 0;
  out.sc_term_b <- 0;
  out.sc_area_a <- 0;
  out.sc_area_b <- 0;
  Array.fill out.sc_res_a 0 Hypergraph.demand_arity 0;
  Array.fill out.sc_res_b 0 Hypergraph.demand_arity 0

let delta_of_sd t =
  {
    d_cut = t.sd.sc_cut;
    d_term_a = t.sd.sc_term_a;
    d_term_b = t.sd.sc_term_b;
    d_area_a = t.sd.sc_area_a;
    d_area_b = t.sd.sc_area_b;
  }

let check_mask t c m =
  if not (Bitvec.subset m (full_mask t c)) then
    invalid_arg "Partition_state: mask not a subset of the cell's outputs"

let eval_into t c new_mask (out : scratch) =
  check_mask t c new_mask;
  if Bitvec.equal new_mask t.out_on_b.(c) then reset_scratch out
  else begin
    net_deltas t c new_mask;
    scratch_totals t c new_mask out
  end

let eval t c new_mask =
  check_mask t c new_mask;
  if Bitvec.equal new_mask t.out_on_b.(c) then zero_delta
  else begin
    net_deltas t c new_mask;
    scratch_totals t c new_mask t.sd;
    delta_of_sd t
  end

(* Connection-count category: gains of candidate operations on a cell
   depend on an incident net's side counts only through min(count, 2),
   because any single-cell mask change shifts each side count by at most
   one and every per-net contribution (cut_of / term_of) tests counts
   against 0 over a +-1 neighbourhood. A net whose categories are
   unchanged on both sides therefore leaves every neighbour's candidate
   deltas — hence its best op — untouched. *)
let cat x = if x > 2 then 2 else x

let apply t c new_mask =
  check_mask t c new_mask;
  if Bitvec.equal new_mask t.out_on_b.(c) then begin
    t.ch_len <- 0;
    zero_delta
  end
  else begin
    net_deltas t c new_mask;
    scratch_totals t c new_mask t.sd;
    let d = delta_of_sd t in
    if t.s_len > Array.length t.ch_nets then
      t.ch_nets <- Array.make (max 32 t.s_len) 0;
    t.ch_len <- 0;
    for i = 0 to t.s_len - 1 do
      let n = t.s_nets.(i) in
      let ca = t.conn_a.(n) and cb = t.conn_b.(n) in
      let da = t.s_da.(i) and db = t.s_db.(i) in
      if cat ca <> cat (ca + da) || cat cb <> cat (cb + db) then begin
        t.ch_nets.(t.ch_len) <- n;
        t.ch_len <- t.ch_len + 1
      end;
      t.conn_a.(n) <- ca + da;
      t.conn_b.(n) <- cb + db
    done;
    t.out_on_b.(c) <- new_mask;
    t.cut <- t.cut + d.d_cut;
    t.term_a <- t.term_a + d.d_term_a;
    t.term_b <- t.term_b + d.d_term_b;
    t.area_a <- t.area_a + d.d_area_a;
    t.area_b <- t.area_b + d.d_area_b;
    for a = 0 to Hypergraph.demand_arity - 1 do
      t.res_a.(a) <- t.res_a.(a) + t.sd.sc_res_a.(a);
      t.res_b.(a) <- t.res_b.(a) + t.sd.sc_res_b.(a)
    done;
    d
  end

let num_changed_nets t = t.ch_len

let iter_changed_nets t f =
  for i = 0 to t.ch_len - 1 do
    f t.ch_nets.(i)
  done

let recompute_resources t =
  let ra = Array.make Hypergraph.demand_arity 0 in
  let rb = Array.make Hypergraph.demand_arity 0 in
  for c = 0 to Hypergraph.num_cells t.hg - 1 do
    let cell = Hypergraph.cell t.hg c in
    let dem = cell.Hypergraph.demand in
    if not (Bitvec.is_empty (mask_on t c A)) then
      for a = 0 to Array.length dem - 1 do
        ra.(a) <- ra.(a) + dem.(a)
      done;
    if not (Bitvec.is_empty (mask_on t c B)) then
      for a = 0 to Array.length dem - 1 do
        rb.(a) <- rb.(a) + dem.(a)
      done
  done;
  (ra, rb)

let check_consistency t =
  let cut, ta, tb, aa, ab = recompute t in
  let pair name got want =
    if got = want then Ok ()
    else Error (Printf.sprintf "%s: tracked %d, recomputed %d" name got want)
  in
  let ( >>= ) r f = match r with Ok () -> f () | Error _ as e -> e in
  pair "cut" t.cut cut >>= fun () ->
  pair "term_a" t.term_a ta >>= fun () ->
  pair "term_b" t.term_b tb >>= fun () ->
  pair "area_a" t.area_a aa >>= fun () ->
  pair "area_b" t.area_b ab >>= fun () ->
  let ra, rb = recompute_resources t in
  let rec axes a =
    if a >= Hypergraph.demand_arity then Ok ()
    else
      pair (Printf.sprintf "res_a.(%d)" a) t.res_a.(a) ra.(a) >>= fun () ->
      pair (Printf.sprintf "res_b.(%d)" a) t.res_b.(a) rb.(a) >>= fun () ->
      axes (a + 1)
  in
  axes 0
