(** Hypergraph model of a mapped circuit, following Section II of the paper:
    [H = ({X; Y}, E)] with interior cells [X], terminals [Y] and nets [E].

    Cells carry per-output {e adjacency vectors} (the input-pin support of
    each output), the information functional replication exploits. Nets
    record which cells touch them; terminals are not materialised as nodes —
    a net that reaches a chip-level I/O pad or, during recursive
    partitioning, a cell of an already-fixed partition, is flagged
    {e external}. *)

val demand_arity : int
(** Maximum length of a cell demand vector (4). Slot 0 is the primary
    (CLB/area) axis; further slots are opaque resource classes the
    [fpga] layer interprets (FF, BRAM, DSP — pinned to
    [Fpga.Resource.demand_arity] by a test, since that library sits
    above this one). *)

type cell = private {
  id : int;               (** dense index *)
  name : string;
  area : int;             (** CLBs one copy of this cell occupies
                              (= [demand.(0)], cached) *)
  demand : int array;
      (** per-resource demand of one copy; length in
          [1..demand_arity], [demand.(0) = area]. Missing axes read
          as 0. *)
  inputs : int array;     (** net id per input pin *)
  outputs : int array;    (** net id per output pin; the cell drives these *)
  supports : Bitvec.t array;
      (** [supports.(o)] = input pins output [o] depends on; the adjacency
          vector [A_{X_o}] of the paper *)
  conn_cache : int array array;
      (** memoised {!connected_nets} per output mask (empty for cells with
          many outputs); filled by {!create} *)
  full_nets : int array;
      (** memoised {!connected_nets} for the all-outputs mask (= all
          distinct incident nets); filled by {!create} for every cell, so
          whole-cell moves stay O(degree) even on wide cluster cells *)
}

type t = private {
  cells : cell array;
  num_nets : int;
  net_cells : int array array;
      (** [net_cells.(n)] = ids of cells touching net [n], deduplicated *)
  net_external : bool array;
      (** net reaches outside this hypergraph (chip pad or fixed partition) *)
  net_names : string array;
}

(** {1 Construction} *)

type cell_spec = {
  s_name : string;
  s_area : int;
  s_demand : int array;
      (** per-resource demand; [[||]] defaults to [[| s_area |]],
          otherwise [s_demand.(0)] must equal [s_area] and the length
          must not exceed {!demand_arity} *)
  s_inputs : int array;
  s_outputs : int array;
  s_supports : Bitvec.t array;
}

val create :
  ?net_names:string array ->
  num_nets:int ->
  external_nets:int list ->
  cell_spec list ->
  t
(** Build and validate a hypergraph. Raises [Invalid_argument] when a net id
    is out of range, a support mask refers to a missing input pin, two cells
    drive the same net, or a support is empty while the cell has inputs
    (every output must depend on at least one input unless the cell has no
    input pins at all). *)

(** {1 Accessors} *)

val num_cells : t -> int
val cell : t -> int -> cell
val total_area : t -> int

val total_demand : t -> int array
(** Element-wise sum of all cell demand vectors, zero-extended to length
    {!demand_arity}; [(total_demand h).(0) = total_area h]. *)

val max_cell_degree : t -> int
(** Maximum number of distinct nets incident to one cell. *)

val cell_nets : cell -> int array
(** Distinct nets incident to a full copy of the cell (inputs + outputs). *)

val connected_nets : cell -> out_mask:Bitvec.t -> int array
(** Distinct nets a {e partial} copy of the cell touches when it carries
    exactly the outputs in [out_mask]: those output nets plus the input nets
    in the union of their supports. [out_mask = empty] yields [\[||\]]. *)

val connected_nets_traditional : cell -> out_mask:Bitvec.t -> int array
(** The {e traditional replication} connection rule (Kring–Newton style,
    the model the paper's eq. 8 scores): a copy carrying any output
    connects {e all} of the cell's input nets, ignoring the per-output
    adjacency vectors. Used as an ablation baseline. *)

val pins : t -> int
(** Total pin count (all cell input and output pins). *)

val boundary : t -> labels:int array -> bool array
(** [boundary h ~labels] flags every cell incident to a net whose cells
    carry at least two distinct labels — the cells whose moves can change
    the cut of the labelling. Cells on single-label (internal) nets only
    are left unflagged, external or not: an external net touched by one
    part costs the same IOB wherever that part's cells sit. O(pins). *)

val validate : t -> (unit, string) result

(** {1 Derived hypergraphs} *)

val induce_copies : t -> (int * Bitvec.t) list -> t * (int * Bitvec.t) array
(** [induce_copies h specs] builds the hypergraph of the given cell
    {e copies}: each [(id, out_mask)] becomes a new cell carrying exactly
    the outputs in [out_mask] and the input pins their supports reference
    (pins renumbered densely). A net is external in the result when it was
    external in [h] or when any incidence of [h] is not covered by the kept
    copies (e.g. the other copy of a replicated cell). Returns the new
    hypergraph (cells in [specs] order) and the spec array. Raises
    [Invalid_argument] on empty masks or duplicate cells. *)

val induce : t -> keep:bool array -> t * int array
(** [induce h ~keep] restricts [h] to the cells with [keep.(id)] true.
    Nets touching a dropped cell or flagged external stay/become external;
    nets with no kept cell disappear. Returns the sub-hypergraph and the
    mapping from new cell ids to old ones. *)

val pp_summary : Format.formatter -> t -> unit
