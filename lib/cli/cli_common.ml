open Cmdliner

(* Budget knobs reject non-positive values at the parse layer, so both a
   flag and its environment default ([FPGAPART_JOBS=0]) fail with a
   proper Cmdliner error (naming the flag or variable) instead of
   surfacing later as Kway.Options.make's Invalid_argument. *)
let positive_int =
  let parse s =
    match Arg.conv_parser Arg.int s with
    | Ok n when n > 0 -> Ok n
    | Ok n -> Error (`Msg (Printf.sprintf "expected a positive integer, got %d" n))
    | Error _ as e -> e
  in
  Arg.conv ~docv:"N" (parse, Arg.conv_printer Arg.int)

let seed ?(default = 1) () =
  Arg.(
    value & opt int default
    & info [ "seed" ] ~docv:"N" ~doc:"Random seed.")

let runs ?(default = 5) ?(extra_names = []) () =
  Arg.(
    value & opt positive_int default
    & info ("runs" :: extra_names) ~docv:"N"
        ~doc:(Printf.sprintf "Multi-start runs (default %d)." default))

let replication_threshold () =
  Arg.(
    value
    & opt (some int) None
    & info [ "replicate"; "T" ] ~docv:"T"
        ~doc:
          "Enable functional replication with threshold replication \
           potential $(docv) (0 = replicate any multi-output cell).")

let replication_of_threshold = function
  | None -> `None
  | Some t -> `Functional t

let stats_json () =
  Arg.(
    value
    & opt (some string) None
    & info [ "stats-json" ] ~docv:"FILE"
        ~doc:
          "Write engine telemetry to $(docv) as JSON: the options and \
           result summary plus per-pass F-M events, per-split \
           device-window attempts, refinement deltas, counters and \
           span timers (see README, 'Observability'). Off by default; \
           partitioning runs with a no-op sink and records nothing.")

let trace () =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Write a wall-clock trace of the run to $(docv) as Chrome \
           trace-event JSON, viewable in Perfetto (ui.perfetto.dev) or \
           chrome://tracing. One complete event per span: pid is the \
           multi-start run index, tid the domain that executed it, and \
           args carry the span's GC deltas. Timestamps are wall-clock \
           and execution-dependent — the trace is never part of the \
           $(b,--stats-json) document.")

let jobs ?(default = 1) () =
  Arg.(
    value
    & opt positive_int default
    & info [ "jobs"; "j" ] ~docv:"N"
        ~env:(Cmd.Env.info "FPGAPART_JOBS")
        ~doc:
          "Run the multi-start search on $(docv) OCaml domains. The \
           partition, the telemetry event stream and every counter are \
           independent of $(docv) — only wall-clock time and the *_secs \
           timers change. Defaults to $(env), then 1.")

let socket () =
  Arg.(
    required
    & opt (some string) None
    & info [ "socket" ] ~docv:"PATH"
        ~env:(Cmd.Env.info "FPGAPART_SOCKET")
        ~doc:
          "Unix-domain socket path of the partitioning daemon ($(b,fpgapart \
           serve)). Defaults to $(env).")
