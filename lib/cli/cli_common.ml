open Cmdliner

(* Budget knobs reject non-positive values at the parse layer, so both a
   flag and its environment default ([FPGAPART_JOBS=0]) fail with a
   proper Cmdliner error (naming the flag or variable) instead of
   surfacing later as Kway.Options.make's Invalid_argument. *)
let positive_int =
  let parse s =
    match Arg.conv_parser Arg.int s with
    | Ok n when n > 0 -> Ok n
    | Ok n -> Error (`Msg (Printf.sprintf "expected a positive integer, got %d" n))
    | Error _ as e -> e
  in
  Arg.conv ~docv:"N" (parse, Arg.conv_printer Arg.int)

let seed ?(default = 1) () =
  Arg.(
    value & opt int default
    & info [ "seed" ] ~docv:"N" ~doc:"Random seed.")

let runs ?(default = 5) ?(extra_names = []) () =
  Arg.(
    value & opt positive_int default
    & info ("runs" :: extra_names) ~docv:"N"
        ~doc:(Printf.sprintf "Multi-start runs (default %d)." default))

let replication_threshold () =
  Arg.(
    value
    & opt (some int) None
    & info [ "replicate"; "T" ] ~docv:"T"
        ~doc:
          "Enable functional replication with threshold replication \
           potential $(docv) (0 = replicate any multi-output cell).")

let replication_of_threshold = function
  | None -> `None
  | Some t -> `Functional t

let stats_json () =
  Arg.(
    value
    & opt (some string) None
    & info [ "stats-json" ] ~docv:"FILE"
        ~doc:
          "Write engine telemetry to $(docv) as JSON: the options and \
           result summary plus per-pass F-M events, per-split \
           device-window attempts, refinement deltas, counters and \
           span timers (see README, 'Observability'). Off by default; \
           partitioning runs with a no-op sink and records nothing.")

let trace () =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Write a wall-clock trace of the run to $(docv) as Chrome \
           trace-event JSON, viewable in Perfetto (ui.perfetto.dev) or \
           chrome://tracing. One complete event per span: pid is the \
           multi-start run index, tid the domain that executed it, and \
           args carry the span's GC deltas. Timestamps are wall-clock \
           and execution-dependent — the trace is never part of the \
           $(b,--stats-json) document.")

let jobs ?(default = 1) () =
  Arg.(
    value
    & opt positive_int default
    & info [ "jobs"; "j" ] ~docv:"N"
        ~env:(Cmd.Env.info "FPGAPART_JOBS")
        ~doc:
          "Run the multi-start search on $(docv) OCaml domains. The \
           partition, the telemetry event stream and every counter are \
           independent of $(docv) — only wall-clock time and the *_secs \
           timers change. Defaults to $(env), then 1.")

(* The objective flag parses straight to the objective value via
   Objective.of_name, so the CLI error lists the valid names and a typo
   can never reach the driver. *)
let objective_conv =
  let parse s =
    match Fpga.Objective.of_name s with
    | Ok o -> Ok o
    | Error msg -> Error (`Msg msg)
  in
  let print fmt (o : Fpga.Objective.t) =
    Format.pp_print_string fmt o.Fpga.Objective.name
  in
  Arg.conv ~docv:"NAME" (parse, print)

let objective () =
  Arg.(
    value
    & opt objective_conv Fpga.Objective.paper
    & info [ "objective" ] ~docv:"NAME"
        ~doc:
          (Printf.sprintf
             "Cost objective driving device choice and ranking: %s. \
              $(b,paper) (the default) is the paper's total-device-cost \
              model and reproduces the scalar driver bit for bit; \
              $(b,multi-personality) adds per-resource (FF/BRAM/DSP) \
              feasibility; $(b,chiplet) prices every cut signal as an \
              interposer crossing."
             (String.concat ", " Fpga.Objective.names)))

(* The multilevel flags assemble straight into a Kway.strategy so both
   frontends share the validation (ratio range via a dedicated conv, the
   counts via positive_int) and the default knobs come from one place
   (Kway.Options.default_multilevel). The tuning flags are accepted but
   inert without --multilevel, like --replicate's threshold shape. *)
let ratio_conv =
  let parse s =
    match Arg.conv_parser Arg.float s with
    | Ok r when r > 0.0 && r < 1.0 -> Ok r
    | Ok r ->
        Error
          (`Msg (Printf.sprintf "expected a ratio in (0, 1), got %g" r))
    | Error _ as e -> e
  in
  Arg.conv ~docv:"R" (parse, Arg.conv_printer Arg.float)

let multilevel () =
  let default = Core.Kway.Options.default_multilevel in
  let flag =
    Arg.(
      value & flag
      & info [ "multilevel" ]
          ~doc:
            "Partition via the multilevel V-cycle: coarsen the netlist by \
             heavy-edge matching, run the k-way device-selection driver \
             on the coarsest graph, then uncoarsen level by level with \
             F-M refinement restricted to boundary cells. Orders of \
             magnitude faster on large (100k+ cell) circuits; without \
             this flag the classic flat driver runs and output is \
             byte-identical to previous releases.")
  in
  let max_levels =
    Arg.(
      value
      & opt positive_int default.Core.Kway.max_levels
      & info [ "ml-max-levels" ] ~docv:"N"
          ~doc:
            (Printf.sprintf
               "Coarsening depth cap for $(b,--multilevel) (default %d)."
               default.Core.Kway.max_levels))
  in
  let coarsen_ratio =
    Arg.(
      value
      & opt ratio_conv default.Core.Kway.coarsen_ratio
      & info [ "ml-coarsen-ratio" ] ~docv:"R"
          ~doc:
            (Printf.sprintf
               "Coarsening stall threshold in (0, 1) for \
                $(b,--multilevel): stop when a matching round keeps at \
                least $(docv) of the cells (default %g)."
               default.Core.Kway.coarsen_ratio))
  in
  let refine_passes =
    Arg.(
      value
      & opt positive_int default.Core.Kway.refine_passes
      & info [ "ml-refine-passes" ] ~docv:"N"
          ~doc:
            (Printf.sprintf
               "Boundary-restricted refinement sweeps per uncoarsening \
                level for $(b,--multilevel) (default %d)."
               default.Core.Kway.refine_passes))
  in
  let build enabled max_levels coarsen_ratio refine_passes =
    if enabled then
      Core.Kway.Multilevel { Core.Kway.max_levels; coarsen_ratio; refine_passes }
    else Core.Kway.Flat
  in
  Term.(const build $ flag $ max_levels $ coarsen_ratio $ refine_passes)

let device_lib () =
  Arg.(
    value
    & opt (some string) None
    & info [ "device-lib" ] ~docv:"FILE"
        ~doc:
          "Load the device library from $(docv) (JSON: {\"devices\": \
           [...]}, each device either the scalar form {name, capacity, \
           terminals, price, util_low?, util_high?} or the vector form \
           {name, price, resources: {clb, ff, bram, dsp, io}, res_low?, \
           res_high?}; see README, 'Objectives & device libraries'). \
           Defaults to the built-in XC3000 family.")

let library_of_path = function
  | None -> Ok Fpga.Library.xc3000
  | Some path -> Fpga.Library.load path

(* The log-level flag parses straight to Obs.Log.level so a typo is a
   Cmdliner error listing the valid names, mirroring --objective. *)
let log_level_conv =
  let parse s =
    match Obs.Log.level_of_string s with
    | Some l -> Ok l
    | None ->
        Error
          (`Msg
             (Printf.sprintf
                "unknown log level %S (expected debug, info, warn or error)"
                s))
  in
  let print fmt l = Format.pp_print_string fmt (Obs.Log.level_to_string l) in
  Arg.conv ~docv:"LEVEL" (parse, print)

let log_level () =
  Arg.(
    value
    & opt log_level_conv Obs.Log.Info
    & info [ "log-level" ] ~docv:"LEVEL"
        ~env:(Cmd.Env.info "FPGAPART_LOG")
        ~doc:
          "Structured-log threshold: $(b,debug), $(b,info), $(b,warn) or \
           $(b,error). Job lifecycle events (enqueue, dequeue, cache hit, \
           done/failed/timeout/cancelled, drain) log at info; per-frame \
           accept/decode chatter at debug. Defaults to $(env), then info.")

let log_file () =
  Arg.(
    value
    & opt (some string) None
    & info [ "log-file" ] ~docv:"FILE"
        ~doc:
          "Append structured JSON-lines logs to $(docv) instead of \
           stderr. One JSON object per line: {\"ts_secs\", \"level\", \
           \"event\", ...fields}, with a per-job correlation id \
           (\"corr\") on every lifecycle line.")

let log_scrub () =
  Arg.(
    value & flag
    & info [ "log-scrub" ]
        ~doc:
          "Null the timestamp and every wall-derived field (*_secs, \
           *_ms, *_per_sec, *_util — the stats scrub contract) in log \
           lines, making the info-level lifecycle stream byte-identical \
           across repeated identical serialized workloads and across \
           $(b,--jobs) values.")

let socket () =
  Arg.(
    required
    & opt (some string) None
    & info [ "socket" ] ~docv:"PATH"
        ~env:(Cmd.Env.info "FPGAPART_SOCKET")
        ~doc:
          "Unix-domain socket path of the partitioning daemon ($(b,fpgapart \
           serve)). Defaults to $(env).")
