(** Cmdliner terms shared by the [fpgapart] CLI and the bench harness
    ([bench/main.exe]), so the two frontends cannot drift on flag names,
    documentation, environment defaults, or parsing.

    Every term is a builder taking its default (and occasionally extra flag
    aliases), because the frontends legitimately differ there — the bench
    harness seeds with 7 and calls the multi-start knob [--kway-runs] — but
    must agree on everything else. *)

val seed : ?default:int -> unit -> int Cmdliner.Term.t
(** [--seed N] — random seed (default 1). *)

val runs : ?default:int -> ?extra_names:string list -> unit -> int Cmdliner.Term.t
(** [--runs N] — multi-start runs (default 5). [extra_names] adds flag
    aliases (the bench harness keeps its historical [--kway-runs]). *)

val replication_threshold : unit -> int option Cmdliner.Term.t
(** [--replicate T] / [-T T] — functional-replication threshold; absent
    means replication off. *)

val replication_of_threshold : int option -> [ `None | `Functional of int ]
(** The {!Core.Kway.options} view of {!replication_threshold}'s value. *)

val stats_json : unit -> string option Cmdliner.Term.t
(** [--stats-json FILE] — write engine telemetry as JSON. *)

val trace : unit -> string option Cmdliner.Term.t
(** [--trace FILE] — write a Chrome trace-event JSON wall-clock trace
    (Perfetto-loadable; pid = run index, tid = domain). Absent means no
    tracing. *)

val jobs : ?default:int -> unit -> int Cmdliner.Term.t
(** [--jobs N] / [-j N] — domains for the parallel multi-start search.
    When the flag is absent, the [FPGAPART_JOBS] environment variable
    supplies the value; when that is unset too, [default] (default 1)
    applies. The result never depends on it (see README,
    "Parallelism"). Non-integer and non-positive values — from the flag
    or from [FPGAPART_JOBS] — are rejected at parse time with a Cmdliner
    error naming the offending flag or variable ([--runs] validates the
    same way), so a bad budget never reaches
    {!Core.Kway.Options.make}. *)

val objective : unit -> Fpga.Objective.t Cmdliner.Term.t
(** [--objective NAME] — the cost objective (default
    {!Fpga.Objective.paper}). Parsed via {!Fpga.Objective.of_name}, so an
    unknown name is a Cmdliner parse error listing the valid names. *)

val multilevel : unit -> Core.Kway.strategy Cmdliner.Term.t
(** [--multilevel] plus its tuning flags [--ml-max-levels N],
    [--ml-coarsen-ratio R] and [--ml-refine-passes N] — the
    {!Core.Kway.strategy} for the run. Without [--multilevel] the term
    evaluates to [Flat] and the tuning flags are inert; with it,
    unspecified knobs come from {!Core.Kway.Options.default_multilevel}.
    The ratio is validated into (0, 1) and the counts positive at parse
    time, mirroring [--jobs]. *)

val device_lib : unit -> string option Cmdliner.Term.t
(** [--device-lib FILE] — JSON device library; absent means the built-in
    XC3000 family. *)

val library_of_path : string option -> (Fpga.Library.t, string) result
(** Resolve {!device_lib}'s value: [None] is {!Fpga.Library.xc3000},
    [Some path] loads and validates the JSON file
    ({!Fpga.Library.load}). *)

val log_level : unit -> Obs.Log.level Cmdliner.Term.t
(** [--log-level LEVEL] — structured-log threshold for [fpgapart serve]
    (debug | info | warn | error; default info). When the flag is
    absent the [FPGAPART_LOG] environment variable supplies the value.
    Unknown names are a Cmdliner parse error listing the valid
    levels. *)

val log_file : unit -> string option Cmdliner.Term.t
(** [--log-file FILE] — append JSON-lines structured logs to [FILE];
    absent logs to stderr. *)

val log_scrub : unit -> bool Cmdliner.Term.t
(** [--log-scrub] — null timestamps and wall-derived fields in log
    lines ({!Obs.Log} scrub mode), for byte-comparable log streams. *)

val socket : unit -> string Cmdliner.Term.t
(** [--socket PATH] — the daemon's Unix-domain socket, shared by
    [fpgapart serve] and every client subcommand. Required; the
    [FPGAPART_SOCKET] environment variable supplies the default. *)
