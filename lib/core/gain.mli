(** The unified gain model of Section III.

    For a single cell on one side of a bipartition the paper associates
    four binary vectors with the cell's pins:

    - [c_i] / [c_o]: which input / output nets are currently in the cut set;
    - [q_i] / [q_o]: which are {e critical} — one move changes their state
      (a cut net becomes uncut when the cell holds its side's only
      connection; an uncut net becomes cut when the other side has none).

    From these it derives closed forms for the gain of a single move
    (eq. 7), of traditional replication (eq. 8) and of functional
    replication per output (eqs. 9-10), taking the best output (eq. 11).

    The closed forms hold for internal nets (every connection counted by
    the partition state); {!Partition_state.eval} is the exact ground truth
    the partitioner uses, and the test suite checks that the two agree on
    the paper's Fig. 4 example and on random instances without external
    nets. *)

type vectors = {
  c_i : Bitvec.t;
  q_i : Bitvec.t;
  c_o : Bitvec.t;
  q_o : Bitvec.t;
  n_inputs : int;
  n_outputs : int;
}

val vectors : Partition_state.t -> int -> vectors
(** Cut/critical vectors of a cell that currently lives entirely on one
    side. Raises [Invalid_argument] if the cell is replicated (the paper
    defines the closed forms for single cells; replicated cells are scored
    through {!Partition_state.eval}). *)

val single_move : vectors -> int
(** Eq. (7): [G_m = (|c_i & q_i| + |c_o & q_o|) - (|~c_i & q_i| + |~c_o & q_o|)]. *)

val traditional_replication : vectors -> int
(** Eq. (8): [G_tr = (|c_i| + |c_o|) - n]. Traditional replication connects
    the replica to every input net: all output nets leave the cut, all [n]
    input nets end up in it. Implemented for the model comparison of
    Fig. 4; the partitioner itself performs only functional replication. *)

val functional_replication :
  Partition_state.t -> int -> threshold:int -> (int * int) option
(** Eq. (9)-(11) evaluated exactly: the best [(gain, output)] over single
    migrating outputs of a cell, or [None] when the cell may not replicate
    (single output, or [psi < threshold]). Gains are in cut reduction
    (positive = improvement), matching the paper's sign convention. *)

val iter_masks :
  Partition_state.t ->
  replication:[ `None | `Functional of int ] ->
  int ->
  f:(Bitvec.t -> unit) ->
  unit
(** Enumerate the candidate masks of a cell under the configured
    replication mode: whole-cell move; single-output migrations when the
    cell may replicate (threshold from [`Functional t]) or is already
    replicated; and full un-replication to either side when replicated.
    Every mask is produced {e exactly once} (structural collisions are
    excluded at generation, not deduplicated after the fact), the current
    mask is never produced, and the generation order is deterministic:
    complement first, then per-output flips ascending, then
    empty-then-full un-replication. The enumeration itself allocates
    nothing beyond the callback's own work — this is the F-M hot loop's
    candidate source, paired with {!Partition_state.eval_into}. *)

val best_mask_change :
  Partition_state.t ->
  replication:[ `None | `Functional of int ] ->
  int ->
  (Bitvec.t * Partition_state.delta) list
(** The {!iter_masks} candidates with their exact deltas, as a list
    (reverse generation order) — the allocating convenience used by tests
    and the engine's oracle mode. *)
