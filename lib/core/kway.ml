let log_src = Logs.Src.create "fpgapart.kway" ~doc:"heterogeneous k-way driver"

module Log = (val Logs.src_log log_src : Logs.LOG)

type part = {
  device : Fpga.Device.t;
  members : (int * Bitvec.t) list;
  clbs : int;
  iobs : int;
  used : int array;
}

type result = {
  parts : part list;
  summary : Fpga.Cost.summary;
  replicated_cells : int;
  total_cells : int;
  wall_secs : float;
  cpu_secs : float;
  runs : int;
  feasible_runs : int;
}

let never_stop () = false

type multilevel = {
  max_levels : int;
  coarsen_ratio : float;
  refine_passes : int;
}

type strategy = Flat | Multilevel of multilevel

type options = {
  runs : int;
  seed : int;
  replication : [ `None | `Functional of int ];
  max_passes : int;
  fm_attempts : int;
  refine_rounds : int;
  jobs : int;
  should_stop : unit -> bool;
  objective : Fpga.Objective.t;
  strategy : strategy;
}

(* The objective's F-M preferences are structural variants (lib/fpga sits
   below this library); map them onto the engine's own type. *)
let fm_obj_of : Fpga.Objective.fm_objective -> Fm.objective = function
  | `Cut -> Fm.Cut
  | `Terminals -> Fm.Terminals

(* Secondary-axis caps for the F-M penalty leg: none under the paper's
   scalar model, the device's per-axis maxima under vector feasibility. *)
let res_max_of (objective : Fpga.Objective.t) dev =
  match objective.Fpga.Objective.feasibility with
  | Fpga.Objective.Primary -> [||]
  | Fpga.Objective.Vector -> Fpga.Device.demand_caps dev

let cancelled = "cancelled"

module Options = struct
  type t = options

  let default_multilevel =
    { max_levels = 12; coarsen_ratio = 0.9; refine_passes = 2 }

  let default =
    {
      runs = 5;
      seed = 1;
      replication = `None;
      max_passes = 10;
      fm_attempts = 3;
      refine_rounds = 1;
      jobs = 1;
      should_stop = never_stop;
      objective = Fpga.Objective.paper;
      strategy = Flat;
    }

  let make ?(runs = default.runs) ?(seed = default.seed)
      ?(replication = default.replication) ?(max_passes = default.max_passes)
      ?(fm_attempts = default.fm_attempts)
      ?(refine_rounds = default.refine_rounds) ?(jobs = default.jobs)
      ?(should_stop = default.should_stop) ?(objective = default.objective)
      ?(strategy = default.strategy) () =
    (* Fail loudly at construction: a zero or negative budget otherwise
       surfaces far downstream as "no feasible partition" (runs = 0), an
       empty restart loop (fm_attempts = 0) or a pool that silently runs
       inline — all much harder to attribute than this. *)
    let positive what v =
      if v <= 0 then
        invalid_arg
          (Printf.sprintf "Kway.Options.make: %s must be positive (got %d)"
             what v)
    in
    positive "runs" runs;
    positive "max_passes" max_passes;
    positive "fm_attempts" fm_attempts;
    positive "jobs" jobs;
    if refine_rounds < 0 then
      invalid_arg
        (Printf.sprintf
           "Kway.Options.make: refine_rounds must be non-negative (got %d)"
           refine_rounds);
    (match strategy with
    | Flat -> ()
    | Multilevel m ->
        positive "max_levels" m.max_levels;
        positive "refine_passes" m.refine_passes;
        if not (m.coarsen_ratio > 0.0 && m.coarsen_ratio < 1.0) then
          invalid_arg
            (Printf.sprintf
               "Kway.Options.make: coarsen_ratio must be in (0, 1) (got %g)"
               m.coarsen_ratio));
    {
      runs;
      seed;
      replication;
      max_passes;
      fm_attempts;
      refine_rounds;
      jobs;
      should_stop;
      objective;
      strategy;
    }
end

let default_options = Options.default

(* External nets that actually consume an IOB: a net flagged external but
   incident to no cell (a dead primary after mapping) never has to enter
   the device. Counting it would overstate every part's terminal usage —
   the telemetry property tests caught exactly that on generated circuits
   with unused primary inputs. *)
let count_external (h : Hypergraph.t) =
  let acc = ref 0 in
  Array.iteri
    (fun n ext ->
      if ext && Array.length h.Hypergraph.net_cells.(n) > 0 then Stdlib.incr acc)
    h.Hypergraph.net_external;
  !acc

(* Translate copies expressed in a sub-hypergraph's coordinates back to the
   original hypergraph. [orig_of.(c)] = (original cell, per-output index
   map). *)
let translate orig_of members =
  List.map
    (fun (c, m) ->
      let orig, out_map = orig_of.(c) in
      let om =
        Bitvec.fold (fun o acc -> Bitvec.add out_map.(o) acc) m Bitvec.empty
      in
      (orig, om))
    members

(* One feasible split attempt: side A must fit the device window. Returns
   the best feasible state over [attempts] random restarts.

   The restarts are independent given their initial assignment, so with
   [attempt_jobs > 1] they run on the pool. Determinism: the initial
   assignments are drawn from the run RNG up front, in restart order, so
   the stream consumed is identical however the restarts then execute; each
   restart records F-M telemetry into a forked sink, merged back in restart
   order; and the winner fold applies the sequential first-best tie-break. *)
let try_device ~opts ~attempt_jobs ~rng ~obs rest (dev : Fpga.Device.t) =
  let area = Hypergraph.total_area rest in
  let min_clbs = max 1 (Fpga.Device.min_clbs dev) in
  let max_clbs = min (Fpga.Device.max_clbs dev) (area - 1) in
  if max_clbs < min_clbs then None
  else begin
    let bounds =
      Fm.bounds
        ~res_max:(res_max_of opts.objective dev)
        ~min_clbs ~max_clbs ~max_terminals:dev.Fpga.Device.terminals ()
    in
    let cfg =
      Fm.device_config
        ~objective:(fm_obj_of opts.objective.Fpga.Objective.split_objective)
        ~replication:opts.replication ~max_passes:opts.max_passes
        ~should_stop:opts.should_stop ~bounds ()
    in
    (* Aim near the top of the window: fuller devices mean fewer devices
       and lower total cost (objective 1). *)
    let target = max bounds.Fm.min_clbs (bounds.Fm.max_clbs * 9 / 10) in
    let p_a = float_of_int target /. float_of_int area in
    let n = Hypergraph.num_cells rest in
    let inits = Array.init opts.fm_attempts (fun _ -> Array.make n false) in
    for a = 0 to opts.fm_attempts - 1 do
      let init = inits.(a) in
      for c = 0 to n - 1 do
        init.(c) <- Netlist.Rng.float rng 1.0 >= p_a
      done
    done;
    let attempts =
      Parallel.Pool.run ~jobs:attempt_jobs opts.fm_attempts (fun a ->
          (* The fork runs on the executing domain, so the worker id read
             here is the trace track the restart's spans belong to. *)
          let child = Obs.fork ~track:(Parallel.Pool.worker_id ()) obs in
          let st =
            Partition_state.create rest ~init_on_b:(fun c -> inits.(a).(c))
          in
          let score = Fm.run_staged ~obs:child cfg st in
          (child, score, st))
    in
    let best = ref None in
    Array.iter
      (fun (child, score, st) ->
        Obs.merge_into ~into:obs child;
        match score with
        | 0, cut, neg_area -> (
            match !best with
            | Some (k, _) when k <= (cut, neg_area) -> ()
            | _ -> best := Some ((cut, neg_area), st))
        | _ -> ())
      attempts;
    Option.map snd !best
  end

let run_once ~library ~opts ~attempt_jobs ?device_limit ~rng ~obs hg =
  let obj = opts.objective in
  (* Cheapest device accepting a whole subcircuit: the paper's scalar
     test verbatim under [Primary], per-axis windows under [Vector]. *)
  let smallest_for ?relax_low ~demand ~iobs () =
    match obj.Fpga.Objective.feasibility with
    | Fpga.Objective.Primary ->
        Fpga.Library.smallest_fitting ?relax_low library
          ~clbs:(Fpga.Resource.get demand Fpga.Resource.clb)
          ~iobs
    | Fpga.Objective.Vector ->
        Fpga.Library.smallest_fitting_demand ?relax_low library ~demand ~iobs
  in
  let num_orig = Hypergraph.num_cells hg in
  let identity =
    Array.init num_orig (fun c ->
        ( c,
          Array.init
            (Array.length (Hypergraph.cell hg c).Hypergraph.outputs)
            Fun.id ))
  in
  let rec loop rest orig_of parts guard =
    if opts.should_stop () then Error cancelled
    else if guard > Hypergraph.total_area hg + 8 then
      Error "k-way driver failed to terminate (internal)"
    else if Hypergraph.num_cells rest = 0 then Ok (List.rev parts)
    else begin
      let area = Hypergraph.total_area rest in
      let ext = count_external rest in
      let rest_demand = Hypergraph.total_demand rest in
      match smallest_for ~relax_low:true ~demand:rest_demand ~iobs:ext () with
      | Some dev ->
          (* The whole remainder fits one device. *)
          Log.debug (fun m ->
              m "remainder fits %s: %d CLBs / %d IOBs" dev.Fpga.Device.name
                area ext);
          if Obs.enabled obs then
            Obs.event obs "kway.fit"
              [
                ("step", Obs.Json.Int (List.length parts));
                ("device", Obs.Json.String dev.Fpga.Device.name);
                ("clbs", Obs.Json.Int area);
                ("iobs", Obs.Json.Int ext);
              ];
          let members =
            translate orig_of
              (List.init (Hypergraph.num_cells rest) (fun c ->
                   ( c,
                     Bitvec.full
                       (Array.length
                          (Hypergraph.cell rest c).Hypergraph.outputs) )))
          in
          Ok
            (List.rev
               ({ device = dev; members; clbs = area; iobs = ext;
                  used = rest_demand }
               :: parts))
      | None -> (
          (* Split off one device: evaluate every candidate device and keep
             the split with the best local cost efficiency (price of the
             device actually used per CLB covered), ties by cut. *)
          let step = List.length parts in
          (* [device_limit] (multilevel coarse stage only): stop evaluating
             candidate devices once that many feasible splits exist. The
             list is in cost-efficiency order, so the first feasible
             candidates are the ones the rate ranking below would almost
             always pick anyway; on a ~k-device decomposition this turns
             k × |library| F-M searches into ~k × limit. [None] (the flat
             path) evaluates every device, byte-identical to before. *)
          let candidates =
            Obs.span obs (Printf.sprintf "split%d" step) (fun () ->
                let enough acc =
                  match device_limit with
                  | Some l -> List.length acc >= l
                  | None -> false
                in
                let consider =
                  (fun dev ->
                    let attempt =
                      Obs.span obs ("dev-" ^ dev.Fpga.Device.name) (fun () ->
                          try_device ~opts ~attempt_jobs ~rng ~obs rest dev)
                    in
                    if Obs.enabled obs then Obs.incr obs "kway.device_attempts";
                    match attempt with
                    | None ->
                        if Obs.enabled obs then
                          Obs.event obs "kway.device_attempt"
                            [
                              ("step", Obs.Json.Int step);
                              ("device", Obs.Json.String dev.Fpga.Device.name);
                              ("feasible", Obs.Json.Bool false);
                            ];
                        None
                    | Some st ->
                        if Obs.enabled obs then
                          Obs.observe obs "kway.attempt_cut"
                            (Partition_state.cut st);
                        let clbs = Partition_state.area st Partition_state.A in
                        let iobs =
                          Partition_state.terminals st Partition_state.A
                        in
                        let used =
                          Partition_state.resources st Partition_state.A
                        in
                        (* Right-size: the split was shaped for [dev], but a
                           cheaper device may accept the same subcircuit. *)
                        let dev =
                          match smallest_for ~demand:used ~iobs () with
                          | Some d
                            when obj.Fpga.Objective.device_cost d
                                 < obj.Fpga.Objective.device_cost dev ->
                              d
                          | _ -> dev
                        in
                        if Obs.enabled obs then
                          Obs.event obs "kway.device_attempt"
                            [
                              ("step", Obs.Json.Int step);
                              ("device", Obs.Json.String dev.Fpga.Device.name);
                              ("feasible", Obs.Json.Bool true);
                              ("clbs", Obs.Json.Int clbs);
                              ("iobs", Obs.Json.Int iobs);
                              ("cut", Obs.Json.Int (Partition_state.cut st));
                            ];
                        (* Local cost efficiency under the objective: what
                           this split spends (device plus interconnect) per
                           CLB covered. The paper's net cost is 0.0, so the
                           sum is bitwise the legacy price-per-CLB. *)
                        let rate =
                          (obj.Fpga.Objective.device_cost dev
                          +. obj.Fpga.Objective.net_cost
                               ~nets:(Partition_state.cut st))
                          /. float_of_int (max 1 clbs)
                        in
                        Some
                          ( (rate, Partition_state.cut st),
                            (dev, st, clbs, iobs, used) ))
                in
                let rec gather acc = function
                  | [] -> List.rev acc
                  | _ when enough acc -> List.rev acc
                  | dev :: devs -> (
                      match consider dev with
                      | None -> gather acc devs
                      | Some c -> gather (c :: acc) devs)
                in
                gather [] (Fpga.Library.by_efficiency library))
          in
          match
            List.sort (fun (ka, _) (kb, _) -> compare ka kb) candidates
          with
          | [] ->
              if Obs.enabled obs then
                Obs.event obs "kway.split_failed"
                  [ ("step", Obs.Json.Int step) ];
              Error "no feasible split for the remainder"
          | (_, (dev, st, clbs, iobs, used)) :: _ ->
              Log.debug (fun m ->
                  m "split: %s takes %d CLBs / %d IOBs; %d CLBs remain"
                    dev.Fpga.Device.name clbs iobs
                    (Partition_state.area st Partition_state.B));
              if Obs.enabled obs then begin
                Obs.incr obs "kway.splits";
                Obs.observe obs "kway.split_cut" (Partition_state.cut st);
                Obs.event obs "kway.split"
                  [
                    ("step", Obs.Json.Int step);
                    ("device", Obs.Json.String dev.Fpga.Device.name);
                    ("clbs", Obs.Json.Int clbs);
                    ("iobs", Obs.Json.Int iobs);
                    ("cut", Obs.Json.Int (Partition_state.cut st));
                    ( "remaining_clbs",
                      Obs.Json.Int (Partition_state.area st Partition_state.B)
                    );
                  ]
              end;
              let members_a =
                Partition_state.side_copies st Partition_state.A
              in
              let part =
                { device = dev; members = translate orig_of members_a;
                  clbs; iobs; used }
              in
              let specs_b = Partition_state.side_copies st Partition_state.B in
              let rest', spec_arr = Hypergraph.induce_copies rest specs_b in
              let orig_of' =
                Array.map
                  (fun (old_c, mask) ->
                    let orig, out_map = orig_of.(old_c) in
                    let out_map' =
                      Array.of_list
                        (List.map (fun o -> out_map.(o)) (Bitvec.to_list mask))
                    in
                    (orig, out_map'))
                  spec_arr
              in
              loop rest' orig_of' (part :: parts) (guard + 1))
    end
  in
  loop hg identity [] 0


(* ------------------------------------------------------------------ *)
(* Pairwise refinement                                                *)
(* ------------------------------------------------------------------ *)

(* Re-bipartition the union of two finished parts under both device
   windows, optimising total terminal usage (eq. 2 restricted to the
   pair). Cells of other parts appear as external context, so their IOB
   counts cannot change. [active] (original-cell coordinates) restricts
   which cells may move — the warm-start path passes the edit's dirty set
   so refinement costs O(blast radius). Returns the improved pair or
   [None]. *)
let refine_pair ~opts ~obs ?active hg library (pi : part) (pj : part) =
  let masks_of p =
    let tbl = Hashtbl.create 64 in
    List.iter (fun (c, m) -> Hashtbl.replace tbl c m) p.members;
    tbl
  in
  let mi = masks_of pi and mj = masks_of pj in
  let union = Hashtbl.create 128 in
  let add tbl =
    Hashtbl.iter
      (fun c m ->
        Hashtbl.replace union c
          (Bitvec.union m (try Hashtbl.find union c with Not_found -> Bitvec.empty)))
      tbl
  in
  add mi;
  add mj;
  let specs =
    Hashtbl.fold (fun c m acc -> (c, m) :: acc) union []
    |> List.sort compare
  in
  let hu, spec_arr = Hypergraph.induce_copies hg specs in
  (* Initial assignment: part j's share of each cell sits on side B. *)
  let init k =
    let orig, um = spec_arr.(k) in
    let mask_j = try Hashtbl.find mj orig with Not_found -> Bitvec.empty in
    let bit = ref 0 and acc = ref Bitvec.empty in
    Bitvec.iter
      (fun o ->
        if Bitvec.mem o mask_j then acc := Bitvec.add !bit !acc;
        incr bit)
      um;
    !acc
  in
  let st = Partition_state.create_with_masks hu ~masks:init in
  let obj = opts.objective in
  let bounds (p : part) =
    Fm.bounds
      ~res_max:(res_max_of obj p.device)
      ~min_clbs:1
      ~max_clbs:(Fpga.Device.max_clbs p.device)
      ~max_terminals:p.device.Fpga.Device.terminals ()
  in
  let sub_active =
    Option.map (fun act k -> act (fst spec_arr.(k))) active
  in
  let cfg =
    Fm.two_device_config
      ~objective:(fm_obj_of obj.Fpga.Objective.refine_objective)
      ~replication:opts.replication ~max_passes:opts.max_passes
      ~should_stop:opts.should_stop ?active:sub_active ~bounds_a:(bounds pi)
      ~bounds_b:(bounds pj) ()
  in
  let s0 = cfg.Fm.score st in
  let s1 = Fm.run_staged ~obs cfg st in
  let pen, _, _ = s1 in
  if pen <> 0 || s1 >= s0 then None
  else begin
    let translate_side side =
      Partition_state.side_copies st side
      |> List.map (fun (k, m) ->
             let orig, um = spec_arr.(k) in
             let outs = Bitvec.to_list um in
             let om =
               Bitvec.fold
                 (fun pos acc -> Bitvec.add (List.nth outs pos) acc)
                 m Bitvec.empty
             in
             (orig, om))
    in
    let rebuild side (p : part) =
      let clbs = Partition_state.area st side in
      let iobs = Partition_state.terminals st side in
      let used = Partition_state.resources st side in
      (* Keep the device unless a cheaper one now accepts the side. *)
      let candidate =
        match obj.Fpga.Objective.feasibility with
        | Fpga.Objective.Primary ->
            Fpga.Library.smallest_fitting ~relax_low:true library ~clbs ~iobs
        | Fpga.Objective.Vector ->
            Fpga.Library.smallest_fitting_demand ~relax_low:true library
              ~demand:used ~iobs
      in
      let device =
        match candidate with
        | Some d
          when obj.Fpga.Objective.device_cost d
               < obj.Fpga.Objective.device_cost p.device ->
            d
        | _ -> p.device
      in
      { device; members = translate_side side; clbs; iobs; used }
    in
    let _, t0, _ = s0 and _, t1, _ = s1 in
    Some (rebuild Partition_state.A pi, rebuild Partition_state.B pj, t0, t1)
  end

(* Refinement driver: repeatedly sweep the part pairs that share nets,
   most-connected first. With [dirty], only nets touching a dirty cell
   count towards pair selection (pairs coupled solely through clean nets
   have nothing movable between them) and only dirty cells may move. *)
let refine ~opts ~obs ?dirty hg library parts =
  let parts = Array.of_list parts in
  let k = Array.length parts in
  if k < 2 then Array.to_list parts
  else begin
    (* Each [refine_pair] hauls every net touching the pair into an
       induced subgraph, so on net-heavy graphs (coarse multilevel
       clusters retain most of the original nets) the per-pair F-M gets
       a tighter pass budget. Paper-suite graphs sit far below the
       threshold and keep the caller's budget. *)
    let opts =
      if hg.Hypergraph.num_nets > 16384 then
        { opts with max_passes = min opts.max_passes 4 }
      else opts
    in
    let net_counts =
      match dirty with
      | None -> None
      | Some d ->
          let dn = Array.make hg.Hypergraph.num_nets false in
          Array.iteri
            (fun c is_dirty ->
              if is_dirty then
                Array.iter
                  (fun n -> dn.(n) <- true)
                  (Hypergraph.cell_nets (Hypergraph.cell hg c)))
            d;
          Some dn
    in
    let active = Option.map (fun d c -> d.(c)) dirty in
    for round = 1 to opts.refine_rounds do
      (* Shared-net counts per pair. *)
      let touch = Array.make hg.Hypergraph.num_nets [] in
      Array.iteri
        (fun j p ->
          List.iter
            (fun (c, m) ->
              Array.iter
                (fun n ->
                  if
                    match net_counts with
                    | None -> true
                    | Some dn -> dn.(n)
                  then
                    match touch.(n) with
                    | x :: _ when x = j -> ()
                    | l -> touch.(n) <- j :: l)
                (Hypergraph.connected_nets (Hypergraph.cell hg c) ~out_mask:m))
            p.members)
        parts;
      let shared = Hashtbl.create 32 in
      Array.iter
        (fun l ->
          let l = List.sort_uniq compare l in
          List.iteri
            (fun a i ->
              List.iteri
                (fun b j ->
                  if b > a then
                    Hashtbl.replace shared (i, j)
                      (1 + try Hashtbl.find shared (i, j) with Not_found -> 0))
                l)
            l)
        touch;
      (* Most-connected pairs first; cap the sweep so refinement stays a
         small fraction of the driver's own cost on many-part results.
         Each [refine_pair] hauls every net touching the pair into an
         induced subgraph, so on net-heavy graphs (coarse multilevel
         clusters carry most of the original nets) the sweep narrows to
         the k best-connected pairs — the sorted order ensures those
         carry most of the recoverable gain. Paper-suite graphs stay
         far below the net threshold and keep the wide sweep. *)
      let pairs =
        Hashtbl.fold (fun p n acc -> (n, p) :: acc) shared []
        |> List.sort (fun a b -> compare b a)
        |> List.map snd
        |> List.filteri (fun i _ -> i < 4 * k)
      in
      let improved = ref 0 in
      let shed = ref 0 in
      Obs.span obs (Printf.sprintf "refine%d" round) (fun () ->
          List.iter
            (fun (i, j) ->
              if opts.should_stop () then ()
              else
              match
                refine_pair ~opts ~obs ?active hg library parts.(i) parts.(j)
              with
              | Some (pi, pj, t_before, t_after) ->
                  parts.(i) <- pi;
                  parts.(j) <- pj;
                  incr improved;
                  shed := !shed + (t_before - t_after);
                  if Obs.enabled obs then begin
                    Obs.incr obs "kway.refine_improved";
                    Obs.event obs "kway.refine_pair"
                      [
                        ("round", Obs.Json.Int round);
                        ("i", Obs.Json.Int i);
                        ("j", Obs.Json.Int j);
                        ("improved", Obs.Json.Bool true);
                        ("terminals_before", Obs.Json.Int t_before);
                        ("terminals_after", Obs.Json.Int t_after);
                      ]
                  end
              | None ->
                  if Obs.enabled obs then
                    Obs.event obs "kway.refine_pair"
                      [
                        ("round", Obs.Json.Int round);
                        ("i", Obs.Json.Int i);
                        ("j", Obs.Json.Int j);
                        ("improved", Obs.Json.Bool false);
                      ])
            pairs);
      if Obs.enabled obs then
        Obs.event obs "kway.refine_round"
          [
            ("round", Obs.Json.Int round);
            ("pairs", Obs.Json.Int (List.length pairs));
            ("improved", Obs.Json.Int !improved);
            ("terminals_shed", Obs.Json.Int !shed);
          ]
    done;
    Array.to_list parts
  end

(* ------------------------------------------------------------------ *)
(* Greedy boundary k-way refinement                                   *)
(* ------------------------------------------------------------------ *)

(* Deterministic greedy passes moving whole cells to the neighbouring
   part that most reduces total terminal usage (eq. 2), under the fixed
   per-part device windows. The multilevel walk uses this at scale:
   [refine_pair] builds an induced subgraph and runs multi-pass F-M per
   part pair, which is superlinear in level size, while a greedy sweep
   costs O(pins) per pass — the only refinement shape that survives
   100k-cell levels. Only [dirty] cells (the projected boundary) are
   candidates; cells whose outputs are split across parts (replication
   inherited from a coarser level) never move. Devices are kept as-is:
   cell moves cannot make a part outgrow its device (the windows are
   checked per move), and cheapening is the flat driver's job. *)
let greedy_refine ~opts ~obs ~dirty ~rounds hg parts =
  let parts = Array.of_list parts in
  let k = Array.length parts in
  if k < 2 then Array.to_list parts
  else begin
    let n = Hypergraph.num_cells hg in
    let nn = hg.Hypergraph.num_nets in
    let full_of c =
      Bitvec.full (Array.length (Hypergraph.cell hg c).Hypergraph.outputs)
    in
    (* cell -> owning part; -2 marks split outputs (immovable). *)
    let owner = Array.make n (-1) in
    Array.iteri
      (fun j p ->
        List.iter
          (fun (c, m) ->
            if Bitvec.equal m (full_of c) && owner.(c) = -1 then
              owner.(c) <- j
            else owner.(c) <- -2)
          p.members)
      parts;
    (* Per-part pin counts on every net, flattened [j * nn + net]. *)
    let cnt = Array.make (k * nn) 0 in
    Array.iteri
      (fun j p ->
        List.iter
          (fun (c, m) ->
            let cell = Hypergraph.cell hg c in
            let nets =
              if owner.(c) >= 0 then Hypergraph.cell_nets cell
              else Hypergraph.connected_nets cell ~out_mask:m
            in
            Array.iter
              (fun nt -> cnt.((j * nn) + nt) <- cnt.((j * nn) + nt) + 1)
              nets)
          p.members)
      parts;
    let touchers = Array.make nn 0 in
    for nt = 0 to nn - 1 do
      for j = 0 to k - 1 do
        if cnt.((j * nn) + nt) > 0 then touchers.(nt) <- touchers.(nt) + 1
      done
    done;
    let ext = hg.Hypergraph.net_external in
    (* Live terminal counts per part (kept in sync with every move). *)
    let terms = Array.make k 0 in
    for j = 0 to k - 1 do
      for nt = 0 to nn - 1 do
        if cnt.((j * nn) + nt) > 0 && (ext.(nt) || touchers.(nt) >= 2) then
          terms.(j) <- terms.(j) + 1
      done
    done;
    let clbs = Array.map (fun p -> p.clbs) parts in
    let used = Array.map (fun p -> Array.copy p.used) parts in
    let max_clbs = Array.map (fun p -> Fpga.Device.max_clbs p.device) parts in
    let res_max =
      Array.map (fun p -> res_max_of opts.objective p.device) parts
    in
    let max_terms =
      Array.map (fun p -> p.device.Fpga.Device.terminals) parts
    in
    (* Terminal delta for parts [i] (source) and [j] (target) when the
       full cell [c] moves. Every other part keeps its pins and at
       least as many co-touchers on each affected net, so only these
       two change. *)
    let deltas nets i j =
      let di = ref 0 and dj = ref 0 in
      Array.iter
        (fun nt ->
          let ci = cnt.((i * nn) + nt) and cj = cnt.((j * nn) + nt) in
          let tc = touchers.(nt) in
          let tc' =
            tc - (if ci = 1 then 1 else 0) + (if cj = 0 then 1 else 0)
          in
          let outside tc = ext.(nt) || tc >= 2 in
          if outside tc then Stdlib.decr di;
          if ci > 1 && outside tc' then Stdlib.incr di;
          if cj > 0 && outside tc then Stdlib.decr dj;
          if outside tc' then Stdlib.incr dj)
        nets;
      (!di, !dj)
    in
    let adjacent = Array.make k false in
    for round = 1 to rounds do
      let moved = ref 0 in
      let shed = ref 0 in
      Obs.span obs (Printf.sprintf "greedy%d" round) (fun () ->
          for c = 0 to n - 1 do
            let i = owner.(c) in
            if dirty.(c) && i >= 0 && not (opts.should_stop ()) then begin
              let cell = Hypergraph.cell hg c in
              let nets = Hypergraph.cell_nets cell in
              let cands = ref [] in
              Array.iter
                (fun nt ->
                  for j = 0 to k - 1 do
                    if (not adjacent.(j)) && cnt.((j * nn) + nt) > 0 then begin
                      adjacent.(j) <- true;
                      if j <> i then cands := j :: !cands
                    end
                  done)
                nets;
              Array.fill adjacent 0 k false;
              let a = cell.Hypergraph.area in
              let d = cell.Hypergraph.demand in
              let best = ref None in
              List.iter
                (fun j ->
                  let di, dj = deltas nets i j in
                  let fits =
                    clbs.(j) + a <= max_clbs.(j)
                    && clbs.(i) - a >= 1
                    && terms.(j) + dj <= max_terms.(j)
                    && terms.(i) + di <= max_terms.(i)
                    && (let caps = res_max.(j) in
                        let ok = ref true in
                        for ax = 0 to Array.length caps - 1 do
                          let dem = if ax < Array.length d then d.(ax) else 0 in
                          if used.(j).(ax) + dem > caps.(ax) then ok := false
                        done;
                        !ok)
                  in
                  if fits && di + dj < 0 then
                    match !best with
                    | Some (_, _, bsum) when bsum <= di + dj -> ()
                    | _ -> best := Some (j, (di, dj), di + dj))
                (List.rev !cands)
              ;
              match !best with
              | None -> ()
              | Some (j, (di, dj), sum) ->
                  owner.(c) <- j;
                  clbs.(i) <- clbs.(i) - a;
                  clbs.(j) <- clbs.(j) + a;
                  for ax = 0 to Array.length d - 1 do
                    used.(i).(ax) <- used.(i).(ax) - d.(ax);
                    used.(j).(ax) <- used.(j).(ax) + d.(ax)
                  done;
                  terms.(i) <- terms.(i) + di;
                  terms.(j) <- terms.(j) + dj;
                  Array.iter
                    (fun nt ->
                      let ii = (i * nn) + nt and jj = (j * nn) + nt in
                      cnt.(ii) <- cnt.(ii) - 1;
                      if cnt.(ii) = 0 then touchers.(nt) <- touchers.(nt) - 1;
                      if cnt.(jj) = 0 then touchers.(nt) <- touchers.(nt) + 1;
                      cnt.(jj) <- cnt.(jj) + 1)
                    nets;
                  Stdlib.incr moved;
                  shed := !shed - sum
            end
          done);
      if Obs.enabled obs then begin
        Obs.incr obs ~by:!moved "kway.greedy_moves";
        Obs.event obs "kway.greedy_round"
          [
            ("round", Obs.Json.Int round);
            ("moved", Obs.Json.Int !moved);
            ("terminals_shed", Obs.Json.Int !shed);
          ]
      end
    done;
    (* Split-output masks stay with their original parts. *)
    let split = Hashtbl.create 16 in
    Array.iteri
      (fun j p ->
        List.iter
          (fun (c, m) -> if owner.(c) = -2 then Hashtbl.replace split (j, c) m)
          p.members)
      parts;
    Array.to_list
      (Array.mapi
         (fun j p ->
           let members = ref [] in
           for c = n - 1 downto 0 do
             if owner.(c) = j then members := (c, full_of c) :: !members
             else if owner.(c) = -2 then
               match Hashtbl.find_opt split (j, c) with
               | Some m -> members := (c, m) :: !members
               | None -> ()
           done;
           {
             p with
             members = !members;
             clbs = clbs.(j);
             iobs = terms.(j);
             used = used.(j);
           })
         parts)
  end

let summarize_parts hg parts =
  let placements =
    List.map
      (fun p -> Fpga.Cost.place p.device ~used:p.used ~clbs:p.clbs ~iobs:p.iobs ())
      parts
  in
  let summary = Fpga.Cost.summarize placements in
  let appearances = Hashtbl.create 64 in
  List.iter
    (fun p ->
      List.iter
        (fun (c, _) ->
          Hashtbl.replace appearances c
            (1 + try Hashtbl.find appearances c with Not_found -> 0))
        p.members)
    parts;
  let replicated =
    Hashtbl.fold (fun _ n acc -> if n > 1 then acc + 1 else acc) appearances 0
  in
  (summary, replicated, Hypergraph.num_cells hg)

(* Package externally produced parts as a result (for [check]ing a
   partition built by hand, e.g. a projected labelling in the property
   tests). The clocks and run counters describe no search, so they are
   zero/one. *)
let result_of_parts hg parts =
  let summary, replicated, total = summarize_parts hg parts in
  {
    parts;
    summary;
    replicated_cells = replicated;
    total_cells = total;
    wall_secs = 0.0;
    cpu_secs = 0.0;
    runs = 1;
    feasible_runs = 1;
  }

(* One multi-start run, self-contained: its own RNG derived from
   (seed, run index) and a private forked sink, so runs can execute on any
   domain in any order. The returned sink holds the run's whole telemetry,
   the ["kway.run"] summary event included. *)
let run_trial ~library ~options ~attempt_jobs ?device_limit ~obs hg r =
  let child = Obs.fork ~pid:r ~track:(Parallel.Pool.worker_id ()) obs in
  let rng = Netlist.Rng.create (options.seed + (r * 7919)) in
  let outcome =
    Obs.span child (Printf.sprintf "run%d" r) (fun () ->
        run_once ~library ~opts:options ~attempt_jobs ?device_limit ~rng
          ~obs:child hg)
  in
  if Obs.enabled child then Obs.incr child "kway.runs";
  match outcome with
  | Error reason ->
      if Obs.enabled child then
        Obs.event child "kway.run"
          [
            ("run", Obs.Json.Int r);
            ("feasible", Obs.Json.Bool false);
            ("reason", Obs.Json.String reason);
          ];
      (child, None)
  | Ok parts ->
      let summary, replicated, total = summarize_parts hg parts in
      if Obs.enabled child then begin
        Obs.incr child "kway.feasible_runs";
        Obs.event child "kway.run"
          [
            ("run", Obs.Json.Int r);
            ("feasible", Obs.Json.Bool true);
            ("parts", Obs.Json.Int summary.Fpga.Cost.num_partitions);
            ("total_cost", Obs.Json.Float summary.Fpga.Cost.total_cost);
            ("total_iobs", Obs.Json.Int summary.Fpga.Cost.total_iobs);
            ("replicated_cells", Obs.Json.Int replicated);
          ]
      end;
      (child, Some (parts, summary, replicated, total))

let flat_partition ?device_limit ~obs ~options ~library hg =
  let w0 = Obs.Clock.wall () in
  let t0 = Obs.Clock.cpu () in
  let jobs = max 1 options.jobs in
  (* Spare parallelism flows down to the per-split restarts only when the
     run level cannot use it, so the domain count stays ~[jobs]. *)
  let attempt_jobs =
    if options.runs < jobs then max 1 (jobs / max 1 options.runs) else 1
  in
  let trials =
    Parallel.Pool.run ~jobs options.runs
      (run_trial ~library ~options ~attempt_jobs ?device_limit ~obs hg)
  in
  (* Merging the private sinks in run order reproduces the sequential event
     stream exactly; the winner fold below applies the sequential
     first-best tie-break. Both are independent of [jobs]. *)
  Array.iter (fun (child, _) -> Obs.merge_into ~into:obs child) trials;
  let feasible = ref 0 in
  let best = ref None in
  Array.iter
    (fun (_, payload) ->
      match payload with
      | None -> ()
      | Some ((_, summary, _, _) as v) ->
          incr feasible;
          (* Rank by the objective's total (devices plus interconnect; the
             paper's net cost is 0.0, so this is bitwise the legacy device
             total), IOB utilization as the paper's tie-break. *)
          let key =
            ( Fpga.Objective.total_cost options.objective
                ~device_cost:summary.Fpga.Cost.total_cost
                ~cut_nets:summary.Fpga.Cost.total_iobs,
              summary.Fpga.Cost.avg_iob_utilization )
          in
          let better =
            match !best with Some (k, _) -> key < k | None -> true
          in
          if better then best := Some (key, v))
    trials;
  (* Pairwise refinement is applied once, to the winning run (it never
     worsens a partition, so the winner stays at least as good). *)
  let best =
    match !best with
    | Some (_, (parts, _, _, _)) when options.refine_rounds > 0 ->
        let parts = refine ~opts:options ~obs hg library parts in
        let summary, replicated, total = summarize_parts hg parts in
        Some (parts, summary, replicated, total)
    | Some (_, v) -> Some v
    | None -> None
  in
  let wall_secs = Obs.Clock.wall () -. w0 in
  let cpu_secs = Obs.Clock.cpu () -. t0 in
  if options.should_stop () then Error cancelled
  else
  match best with
  | None -> Error "no feasible k-way partition found in any run"
  | Some (parts, summary, replicated, total) ->
      Log.info (fun m ->
          m "best of %d runs (%d feasible): %a" options.runs !feasible
            Fpga.Cost.pp_summary summary);
      Ok
        {
          parts;
          summary;
          replicated_cells = replicated;
          total_cells = total;
          wall_secs;
          cpu_secs;
          runs = options.runs;
          feasible_runs = !feasible;
        }

(* ------------------------------------------------------------------ *)
(* Warm start (incremental repartitioning)                            *)
(* ------------------------------------------------------------------ *)

(* Flatten a finished partition to one label per cell, for projection
   onto an edited hypergraph. A replicated cell appears in several parts;
   its label is the part driving the most outputs (first such part at
   ties), and the cell is flagged so the caller can mark it dirty — the
   warm start then re-decides its replication instead of trusting a
   single inherited label. *)
let labels_of_parts hg parts =
  let n = Hypergraph.num_cells hg in
  let labels = Array.make n (-1) in
  let best_norm = Array.make n (-1) in
  let appearances = Array.make n 0 in
  List.iteri
    (fun j p ->
      List.iter
        (fun (c, m) ->
          appearances.(c) <- appearances.(c) + 1;
          let norm = Bitvec.norm m in
          if norm > best_norm.(c) then begin
            best_norm.(c) <- norm;
            labels.(c) <- j
          end)
        p.members)
    parts;
  (labels, Array.map (fun k -> k > 1) appearances)

type warm = {
  w_labels : int array;
  w_dirty : bool array;
  w_devices : Fpga.Device.t array;
}

let warm_start ?(obs = Obs.noop) ?(options = Options.default) ~library ~warm hg
    =
  let err fmt = Printf.ksprintf (fun s -> Error s) fmt in
  let w0 = Obs.Clock.wall () in
  let t0 = Obs.Clock.cpu () in
  let n = Hypergraph.num_cells hg in
  let k = Array.length warm.w_devices in
  if Array.length warm.w_labels <> n then
    err "Kway.warm_start: labels cover %d cells, hypergraph has %d"
      (Array.length warm.w_labels) n
  else if Array.length warm.w_dirty <> n then
    err "Kway.warm_start: dirty flags cover %d cells, hypergraph has %d"
      (Array.length warm.w_dirty) n
  else if k = 0 then err "Kway.warm_start: empty device array"
  else if Array.exists (fun l -> l >= k) warm.w_labels then
    err "Kway.warm_start: label out of range (only %d devices)" k
  else begin
    let labels = Array.copy warm.w_labels in
    let dirty = Array.copy warm.w_dirty in
    (* Part presence per net and per-part areas, maintained as cells are
       placed. Presence lists are kept duplicate-free ([k] is tiny). *)
    let parts_on_net = Array.make hg.Hypergraph.num_nets [] in
    let clbs = Array.make k 0 in
    let used = Array.make_matrix k Hypergraph.demand_arity 0 in
    let note_cell c p =
      let cell = Hypergraph.cell hg c in
      clbs.(p) <- clbs.(p) + cell.Hypergraph.area;
      let d = cell.Hypergraph.demand in
      for a = 0 to Array.length d - 1 do
        used.(p).(a) <- used.(p).(a) + d.(a)
      done;
      Array.iter
        (fun nt ->
          if not (List.mem p parts_on_net.(nt)) then
            parts_on_net.(nt) <- p :: parts_on_net.(nt))
        (Hypergraph.cell_nets cell)
    in
    for c = 0 to n - 1 do
      if labels.(c) >= 0 then note_cell c labels.(c)
    done;
    (* Seed cells with no inherited label (new cells of the edit) where
       their connectivity pulls them: most incident nets already present,
       ties broken towards parts with capacity headroom, then towards the
       emptier part. Greedy in ascending id — deterministic, and the
       dirty-restricted refinement below cleans up any misplacement. *)
    let seeded = ref 0 in
    for c = 0 to n - 1 do
      if labels.(c) < 0 then begin
        let affinity = Array.make k 0 in
        Array.iter
          (fun nt ->
            List.iter
              (fun p -> affinity.(p) <- affinity.(p) + 1)
              parts_on_net.(nt))
          (Hypergraph.cell_nets (Hypergraph.cell hg c));
        let area = (Hypergraph.cell hg c).Hypergraph.area in
        let best = ref 0 in
        let best_key = ref (min_int, min_int, min_int) in
        for p = 0 to k - 1 do
          let fits =
            if clbs.(p) + area <= Fpga.Device.max_clbs warm.w_devices.(p) then 1
            else 0
          in
          let key = (affinity.(p), fits, -clbs.(p)) in
          if key > !best_key then begin
            best_key := key;
            best := p
          end
        done;
        labels.(c) <- !best;
        dirty.(c) <- true;
        note_cell c !best;
        incr seeded
      end
    done;
    (* Materialise parts. The warm start carries no replication: every
       cell sits whole in its labelled part (a replicated base cell was
       collapsed by labels_of_parts and marked dirty, so refinement may
       reintroduce copies where they pay). *)
    let members = Array.make k [] in
    for c = n - 1 downto 0 do
      let full =
        Bitvec.full (Array.length (Hypergraph.cell hg c).Hypergraph.outputs)
      in
      members.(labels.(c)) <- (c, full) :: members.(labels.(c))
    done;
    let iobs = Array.make k 0 in
    Array.iteri
      (fun nt touchers ->
        List.iter
          (fun j ->
            let outside =
              hg.Hypergraph.net_external.(nt)
              || List.exists (fun q -> q <> j) touchers
            in
            if outside then iobs.(j) <- iobs.(j) + 1)
          touchers)
      parts_on_net;
    let rec build p acc =
      if p < 0 then Ok acc
      else if members.(p) = [] then build (p - 1) acc
      else
        let cl = clbs.(p) and io = iobs.(p) in
        let dev =
          match options.objective.Fpga.Objective.feasibility with
          | Fpga.Objective.Primary ->
              if
                Fpga.Device.fits ~relax_low:true warm.w_devices.(p) ~clbs:cl
                  ~iobs:io
              then Some warm.w_devices.(p)
              else
                Fpga.Library.smallest_fitting ~relax_low:true library ~clbs:cl
                  ~iobs:io
          | Fpga.Objective.Vector ->
              if
                Fpga.Device.fits_demand ~relax_low:true warm.w_devices.(p)
                  ~demand:used.(p) ~iobs:io
              then Some warm.w_devices.(p)
              else
                Fpga.Library.smallest_fitting_demand ~relax_low:true library
                  ~demand:used.(p) ~iobs:io
        in
        match dev with
        | None ->
            err "warm start: no device accepts part %d (%d CLBs / %d IOBs)" p
              cl io
        | Some device ->
            build (p - 1)
              ({ device; members = members.(p); clbs = cl; iobs = io;
                 used = used.(p) }
              :: acc)
    in
    match build (k - 1) [] with
    | Error _ as e -> e
    | Ok parts ->
        let dirty_cells =
          Array.fold_left (fun a d -> if d then a + 1 else a) 0 dirty
        in
        (* Refine only inside the edit's blast radius: at least one round
           even when the options say zero, since refinement is the entire
           optimisation a warm start performs. *)
        let opts =
          { options with refine_rounds = max 1 options.refine_rounds }
        in
        let parts =
          Obs.span obs "warm" (fun () ->
              refine ~opts ~obs ~dirty hg library parts)
        in
        let summary, replicated, total = summarize_parts hg parts in
        if Obs.enabled obs then begin
          Obs.incr obs "kway.warm_starts";
          Obs.observe obs "kway.warm_seeded_cells" !seeded;
          Obs.observe obs "kway.warm_dirty_cells" dirty_cells;
          Obs.event obs "kway.warm"
            [
              ("seeded", Obs.Json.Int !seeded);
              ("dirty", Obs.Json.Int dirty_cells);
              ("parts", Obs.Json.Int summary.Fpga.Cost.num_partitions);
              ("total_cost", Obs.Json.Float summary.Fpga.Cost.total_cost);
              ("total_iobs", Obs.Json.Int summary.Fpga.Cost.total_iobs);
            ]
        end;
        let wall_secs = Obs.Clock.wall () -. w0 in
        let cpu_secs = Obs.Clock.cpu () -. t0 in
        if options.should_stop () then Error cancelled
        else
          Ok
            {
              parts;
              summary;
              replicated_cells = replicated;
              total_cells = total;
              wall_secs;
              cpu_secs;
              runs = 1;
              feasible_runs = 1;
            }
  end

(* ------------------------------------------------------------------ *)
(* Multilevel V-cycle                                                 *)
(* ------------------------------------------------------------------ *)

(* Materialise a whole-cell labelling into parts — the uncoarsening step
   of the V-cycle, also exported for the projection property tests. The
   accounting mirrors [warm_start]'s: per-part CLB/demand sums, IOBs
   recounted from net touchers, devices kept unless the part outgrew them
   (then the cheapest accepting device, lower window relaxed). Labels
   carry no replication: every cell sits whole in its labelled part. *)
let project_parts ?(options = Options.default) ~library ~labels
    ~(devices : Fpga.Device.t array) hg =
  let err fmt = Printf.ksprintf (fun s -> Error s) fmt in
  let n = Hypergraph.num_cells hg in
  let k = Array.length devices in
  if Array.length labels <> n then
    err "Kway.project_parts: labels cover %d cells, hypergraph has %d"
      (Array.length labels) n
  else if k = 0 then err "Kway.project_parts: empty device array"
  else if Array.exists (fun l -> l < 0 || l >= k) labels then
    err "Kway.project_parts: label out of range (only %d devices)" k
  else begin
    let parts_on_net = Array.make hg.Hypergraph.num_nets [] in
    let clbs = Array.make k 0 in
    let used = Array.make_matrix k Hypergraph.demand_arity 0 in
    for c = 0 to n - 1 do
      let cell = Hypergraph.cell hg c in
      let p = labels.(c) in
      clbs.(p) <- clbs.(p) + cell.Hypergraph.area;
      let d = cell.Hypergraph.demand in
      for a = 0 to Array.length d - 1 do
        used.(p).(a) <- used.(p).(a) + d.(a)
      done;
      Array.iter
        (fun nt ->
          match parts_on_net.(nt) with
          | q :: _ when q = p -> ()
          | l -> if not (List.mem p l) then parts_on_net.(nt) <- p :: l)
        (Hypergraph.cell_nets cell)
    done;
    let members = Array.make k [] in
    for c = n - 1 downto 0 do
      let full =
        Bitvec.full (Array.length (Hypergraph.cell hg c).Hypergraph.outputs)
      in
      members.(labels.(c)) <- (c, full) :: members.(labels.(c))
    done;
    let iobs = Array.make k 0 in
    Array.iteri
      (fun nt touchers ->
        List.iter
          (fun j ->
            let outside =
              hg.Hypergraph.net_external.(nt)
              || List.exists (fun q -> q <> j) touchers
            in
            if outside then iobs.(j) <- iobs.(j) + 1)
          touchers)
      parts_on_net;
    let rec build p acc =
      if p < 0 then Ok acc
      else if members.(p) = [] then build (p - 1) acc
      else
        let cl = clbs.(p) and io = iobs.(p) in
        let dev =
          match options.objective.Fpga.Objective.feasibility with
          | Fpga.Objective.Primary ->
              if Fpga.Device.fits ~relax_low:true devices.(p) ~clbs:cl ~iobs:io
              then Some devices.(p)
              else
                Fpga.Library.smallest_fitting ~relax_low:true library ~clbs:cl
                  ~iobs:io
          | Fpga.Objective.Vector ->
              if
                Fpga.Device.fits_demand ~relax_low:true devices.(p)
                  ~demand:used.(p) ~iobs:io
              then Some devices.(p)
              else
                Fpga.Library.smallest_fitting_demand ~relax_low:true library
                  ~demand:used.(p) ~iobs:io
        in
        match dev with
        | None ->
            err "Kway.project_parts: no device accepts part %d (%d CLBs / %d \
                 IOBs)"
              p cl io
        | Some device ->
            build (p - 1)
              ({ device; members = members.(p); clbs = cl; iobs = io;
                 used = used.(p) }
              :: acc)
    in
    build (k - 1) []
  end

(* Per-axis cluster weight caps for the coarsening: a fraction of the
   {e smallest} per-axis device window in the library, so even a part on
   the cheapest device is assembled from several clusters and the coarse
   F-M retains packing freedom — capping by the largest window lets one
   cluster swallow half an XC3090, which no XC3030-sized part can then
   accept, and the IOB windows become unreachable at that granularity.
   Under the paper's scalar feasibility only the CLB axis binds
   (secondary axes are never checked there, and capping them would refuse
   merges the model cannot reject); under vector feasibility every demand
   axis is capped so coarse clusters stay placeable. *)
let cluster_caps library (objective : Fpga.Objective.t) =
  let devices = Fpga.Library.devices library in
  let arity = Hypergraph.demand_arity in
  let caps = Array.make arity max_int in
  (* Devices without a resource (axis cap 0) don't constrain that axis:
     parts needing it simply never land there. *)
  let min_positive_axis f =
    List.fold_left
      (fun acc d ->
        let v = f d in
        if v > 0 then min acc v else acc)
      max_int devices
  in
  let cap_of v = if v = max_int then max_int else max 1 (v / 4) in
  caps.(0) <- cap_of (min_positive_axis Fpga.Device.max_clbs);
  (match objective.Fpga.Objective.feasibility with
  | Fpga.Objective.Primary -> ()
  | Fpga.Objective.Vector ->
      for a = 1 to arity - 1 do
        caps.(a) <-
          cap_of
            (min_positive_axis (fun d ->
                 let dc = Fpga.Device.demand_caps d in
                 if a < Array.length dc then dc.(a) else 0))
      done);
  caps

(* The V-cycle: coarsen under the weight caps, run the flat
   heterogeneous-device k-way on the coarsest graph, then project the
   labelling down level by level, refining each level with F-M restricted
   to the boundary cells (the warm-start [active] machinery). Functional
   replication only participates at the finest levels: coarse clusters
   are opaque (every output depends on every input), so replication above
   them has no adjacency slack to exploit — the RePart argument. *)
let repl_fine_levels = 2

(* Above this many cells in the finest graph, the V-cycle refines with
   the greedy boundary mover instead of pairwise F-M: the pairwise
   sweep costs an induced-subgraph F-M per part pair per level and
   stops being affordable somewhere past a few thousand cells. Every
   paper-suite circuit maps below the cap, so their refinement — and
   results — are untouched. *)
let pairwise_refine_cap = 4096

let multilevel_run ~obs ~(options : options) ~ml ~library hg =
  let w0 = Obs.Clock.wall () in
  let t0 = Obs.Clock.cpu () in
  let total = Hypergraph.total_area hg in
  let devices = Fpga.Library.devices library in
  let fold_windows op init =
    List.fold_left (fun acc d -> op acc (max 1 (Fpga.Device.max_clbs d))) init
      devices
  in
  let largest = fold_windows max 1 in
  let smallest = fold_windows min max_int in
  (* Lower bound on the part count (everything on the largest device):
     drives the budget switch below. *)
  let k_est = max 1 ((total + largest - 1) / largest) in
  (* Upper bound (everything on the smallest device): drives the coarsest
     size, because the driver may well choose many small devices (they are
     often the cost-efficient pick under tight IOB windows) and the coarse
     F-M needs ~8 movable clusters per part to hit device windows. *)
  let k_upper = max 1 ((total + smallest - 1) / smallest) in
  let coarsest_target = max 150 (8 * k_upper) in
  (* Net-surface cap: the library's smallest terminal budget bounds how
     much net surface a cluster may accumulate before coarse F-M strands
     outside every device's terminal window — a part assembled from
     clusters cannot cut fewer nets than its clusters' surfaces allow, so
     quality falls off a cliff (2-4x device cost) once surfaces pass
     roughly a tenth of the budget. The divisor is calibrated on the MCNC
     suite against the flat driver: /9 keeps every circuit within 5% of
     flat cost (most below it); /6 already tips s38584 over the cliff.
     Generous terminal budgets (modern multi-thousand-pin parts) leave the
     cap slack, letting coarsening run deep — which is exactly when deep
     coarsening is safe. *)
  let smallest_terminals =
    List.fold_left
      (fun acc (d : Fpga.Device.t) -> min acc d.Fpga.Device.terminals)
      max_int devices
  in
  let max_nets = max 4 (smallest_terminals / 9) in
  let rng = Netlist.Rng.create options.seed in
  let hier =
    Coarsen.hierarchy ~coarsest:coarsest_target ~max_levels:ml.max_levels
      ~stall_ratio:ml.coarsen_ratio
      ~max_weight:(cluster_caps library options.objective)
      ~max_nets
      ~wrap:(fun d f -> Obs.span obs (Printf.sprintf "coarsen%d" d) f)
      ~rng hg
  in
  if Obs.enabled obs then begin
    let rec emit depth = function
      | [] -> ()
      | (fine, _) :: rest ->
          let coarse =
            match rest with (nf, _) :: _ -> nf | [] -> hier.Coarsen.coarsest
          in
          let fc = Hypergraph.num_cells fine in
          let cc = Hypergraph.num_cells coarse in
          Obs.incr obs "ml.level";
          Obs.observe obs "ml.cells_per_level" fc;
          (* Percentage: the histogram buckets are integer-valued. *)
          Obs.observe obs "ml.coarsen_ratio" (100 * cc / max 1 fc);
          Obs.event obs "ml.coarsen"
            [
              ("level", Obs.Json.Int depth);
              ("fine_cells", Obs.Json.Int fc);
              ("coarse_cells", Obs.Json.Int cc);
            ];
          emit (depth + 1) rest
    in
    emit 0 (List.rev hier.Coarsen.levels);
    Obs.observe obs "ml.cells_per_level"
      (Hypergraph.num_cells hier.Coarsen.coarsest)
  end;
  if hier.Coarsen.levels = [] then
    (* Already at coarse scale: the V-cycle adds nothing, run flat. *)
    flat_partition ~obs ~options ~library hg
  else begin
    (* Coarse-stage budgets. At small k over a well-contracted graph the
       caller's budgets apply unchanged; when the decomposition is wide
       (large k) or coarsening stalled far from its target (many coarse
       cells per eventual part — dense graphs pin-bound by the cluster
       mask width), the split loop is O(k · n_coarse) per device per
       restart per run, so the search narrows (one run, one restart, two
       candidate devices per split, capped passes) and quality is
       recovered by the per-level refinement below. The switch depends
       only on the device library and the graph — deterministic. The 512
       threshold clears the paper-suite circuits by ~2x (their coarse
       graphs stay under ~260 cells per part), so their budgets — and
       results — are untouched. *)
    let cells_per_part =
      Hypergraph.num_cells hier.Coarsen.coarsest / max 1 k_est
    in
    let coarse_options, device_limit =
      if k_est <= 16 && cells_per_part <= 512 then
        ({ options with strategy = Flat; replication = `None }, None)
      else
        ( {
            options with
            strategy = Flat;
            replication = `None;
            runs = 1;
            fm_attempts = 1;
            max_passes = min options.max_passes 6;
            refine_rounds = min options.refine_rounds 1;
          },
          Some 2 )
    in
    match
      flat_partition ?device_limit ~obs ~options:coarse_options ~library
        hier.Coarsen.coarsest
    with
    | Error _ as e -> e
    | Ok coarse_res ->
        let nlev = List.length hier.Coarsen.levels in
        let rec walk idx cur_h cur_parts = function
          | [] -> Ok cur_parts
          | (fine, map) :: rest ->
              if options.should_stop () then Error cancelled
              else begin
                let coarse_labels, coarse_repl =
                  labels_of_parts cur_h cur_parts
                in
                let labels = Coarsen.project_labels ~map coarse_labels in
                let devices =
                  Array.of_list (List.map (fun p -> p.device) cur_parts)
                in
                match project_parts ~options ~library ~labels ~devices fine with
                | Error _ as e -> e
                | Ok parts ->
                    let dirty = Hypergraph.boundary fine ~labels in
                    (* A cluster replicated at the coarser level was
                       collapsed to its dominant part by labels_of_parts;
                       mark its cells dirty so refinement re-decides the
                       replication at this level's adjacency. *)
                    if Array.exists Fun.id coarse_repl then
                      Array.iteri
                        (fun c cl -> if coarse_repl.(cl) then dirty.(c) <- true)
                        map;
                    let level_repl =
                      if idx >= nlev - repl_fine_levels then options.replication
                      else `None
                    in
                    let opts =
                      {
                        options with
                        replication = level_repl;
                        refine_rounds = ml.refine_passes;
                      }
                    in
                    let parts =
                      Obs.span obs (Printf.sprintf "refine%d" idx) (fun () ->
                          if Hypergraph.num_cells hg <= pairwise_refine_cap
                          then refine ~opts ~obs ~dirty fine library parts
                          else
                            greedy_refine ~opts ~obs ~dirty
                              ~rounds:ml.refine_passes fine parts)
                    in
                    if Obs.enabled obs then
                      Obs.event obs "ml.refine"
                        [
                          ("level", Obs.Json.Int idx);
                          ("cells", Obs.Json.Int (Hypergraph.num_cells fine));
                          ( "dirty",
                            Obs.Json.Int
                              (Array.fold_left
                                 (fun a d -> if d then a + 1 else a)
                                 0 dirty) );
                          ("parts", Obs.Json.Int (List.length parts));
                        ];
                    walk (idx + 1) fine parts rest
              end
        in
        (match walk 0 hier.Coarsen.coarsest coarse_res.parts hier.Coarsen.levels with
        | Error _ as e -> e
        | Ok parts ->
            let summary, replicated, total_cells = summarize_parts hg parts in
            let wall_secs = Obs.Clock.wall () -. w0 in
            let cpu_secs = Obs.Clock.cpu () -. t0 in
            if options.should_stop () then Error cancelled
            else begin
              Log.info (fun m ->
                  m "multilevel (%d levels, %d coarse cells): %a" nlev
                    (Hypergraph.num_cells hier.Coarsen.coarsest)
                    Fpga.Cost.pp_summary summary);
              Ok
                {
                  parts;
                  summary;
                  replicated_cells = replicated;
                  total_cells;
                  wall_secs;
                  cpu_secs;
                  runs = coarse_options.runs;
                  feasible_runs = coarse_res.feasible_runs;
                }
            end)
  end

let partition ?(obs = Obs.noop) ?(options = Options.default) ~library hg =
  match options.strategy with
  | Flat -> flat_partition ~obs ~options ~library hg
  | Multilevel ml -> multilevel_run ~obs ~options ~ml ~library hg

let check hg result =
  let err fmt = Printf.ksprintf (fun s -> Error s) fmt in
  let num = Hypergraph.num_cells hg in
  (* 1. Output masks partition every cell's outputs. *)
  let seen = Array.make num Bitvec.empty in
  let overlap = ref None in
  List.iter
    (fun p ->
      List.iter
        (fun (c, m) ->
          if not (Bitvec.is_empty (Bitvec.inter seen.(c) m)) then
            overlap := Some c;
          seen.(c) <- Bitvec.union seen.(c) m)
        p.members)
    result.parts;
  match !overlap with
  | Some c -> err "cell %d: an output is driven by two parts" c
  | None -> (
      let missing = ref None in
      for c = 0 to num - 1 do
        let full =
          Bitvec.full (Array.length (Hypergraph.cell hg c).Hypergraph.outputs)
        in
        if not (Bitvec.equal seen.(c) full) then missing := Some c
      done;
      match !missing with
      | Some c -> err "cell %d: some output is driven by no part" c
      | None -> (
          (* 2. Per-part areas and terminal counts match the members, and
             fit the device. Terminals recomputed from the original
             hypergraph: a net consumes an IOB of a part iff the part
             touches it and it also lives outside the part. *)
          let net_touchers = Array.make hg.Hypergraph.num_nets [] in
          List.iteri
            (fun j p ->
              List.iter
                (fun (c, m) ->
                  Array.iter
                    (fun n ->
                      match net_touchers.(n) with
                      | k :: _ when k = j -> ()
                      | l -> net_touchers.(n) <- j :: l)
                    (Hypergraph.connected_nets (Hypergraph.cell hg c)
                       ~out_mask:m))
                p.members)
            result.parts;
          let rec check_parts j = function
            | [] -> Ok ()
            | p :: rest ->
                let clbs =
                  List.fold_left
                    (fun acc (c, _) -> acc + (Hypergraph.cell hg c).Hypergraph.area)
                    0 p.members
                in
                (* A member pays its whole demand vector wherever it
                   appears — the replication accounting the per-side
                   resource counters use. *)
                let demand = Array.make Hypergraph.demand_arity 0 in
                List.iter
                  (fun (c, _) ->
                    let d = (Hypergraph.cell hg c).Hypergraph.demand in
                    for a = 0 to Array.length d - 1 do
                      demand.(a) <- demand.(a) + d.(a)
                    done)
                  p.members;
                let iobs = ref 0 in
                Array.iteri
                  (fun n touchers ->
                    if List.mem j touchers then
                      let outside =
                        hg.Hypergraph.net_external.(n)
                        || List.exists (fun k -> k <> j) touchers
                      in
                      if outside then incr iobs)
                  net_touchers;
                if clbs <> p.clbs then
                  err "part %d: recorded %d CLBs, members sum to %d" j p.clbs
                    clbs
                else if !iobs <> p.iobs then
                  err "part %d: recorded %d IOBs, recomputed %d" j p.iobs !iobs
                else if Array.length p.used <> Hypergraph.demand_arity then
                  err "part %d: used vector has %d axes, expected %d" j
                    (Array.length p.used) Hypergraph.demand_arity
                else if p.used <> demand then
                  err "part %d: recorded resource vector %s, members sum to %s"
                    j
                    (String.concat ","
                       (Array.to_list (Array.map string_of_int p.used)))
                    (String.concat ","
                       (Array.to_list (Array.map string_of_int demand)))
                else if
                  not
                    (Fpga.Device.fits ~relax_low:true p.device ~clbs
                       ~iobs:!iobs)
                then err "part %d: violates device %s" j p.device.Fpga.Device.name
                else check_parts (j + 1) rest
          in
          match check_parts 0 result.parts with
          | Error _ as e -> e
          | Ok () ->
              (* 3. The recorded summary and replication figures must agree
                 with what the members imply — a result cannot claim a cost
                 or interconnect it does not have. *)
              let summary, replicated, total = summarize_parts hg result.parts in
              let r = result.summary in
              if r.Fpga.Cost.num_partitions <> summary.Fpga.Cost.num_partitions
              then
                err "summary: %d partitions recorded, %d parts present"
                  r.Fpga.Cost.num_partitions summary.Fpga.Cost.num_partitions
              else if r.Fpga.Cost.total_cost <> summary.Fpga.Cost.total_cost
              then
                err "summary: recorded cost %.2f, devices sum to %.2f"
                  r.Fpga.Cost.total_cost summary.Fpga.Cost.total_cost
              else if r.Fpga.Cost.total_clbs <> summary.Fpga.Cost.total_clbs
              then
                err "summary: recorded %d CLBs, parts sum to %d"
                  r.Fpga.Cost.total_clbs summary.Fpga.Cost.total_clbs
              else if r.Fpga.Cost.total_iobs <> summary.Fpga.Cost.total_iobs
              then
                err "summary: recorded %d IOBs, parts sum to %d"
                  r.Fpga.Cost.total_iobs summary.Fpga.Cost.total_iobs
              else if result.replicated_cells <> replicated then
                err "recorded %d replicated cells, members imply %d"
                  result.replicated_cells replicated
              else if result.total_cells <> total then
                err "recorded %d total cells, hypergraph has %d"
                  result.total_cells total
              else Ok ()))

let pp_result fmt r =
  Format.fprintf fmt
    "@[<v>%a@,replicated cells: %d / %d (%.1f%%)@,runs: %d (%d feasible), %.2fs wall (%.2fs CPU)@,"
    Fpga.Cost.pp_summary r.summary r.replicated_cells r.total_cells
    (100.0 *. float_of_int r.replicated_cells /. float_of_int (max 1 r.total_cells))
    r.runs r.feasible_runs r.wall_secs r.cpu_secs;
  List.iteri
    (fun j p ->
      Format.fprintf fmt "  part %d: %-8s %4d CLBs (%3.0f%%), %3d IOBs (%3.0f%%)@,"
        j p.device.Fpga.Device.name p.clbs
        (100.0 *. Fpga.Device.clb_utilization p.device ~clbs:p.clbs)
        p.iobs
        (100.0 *. Fpga.Device.iob_utilization p.device ~iobs:p.iobs))
    r.parts;
  Format.fprintf fmt "@]"
