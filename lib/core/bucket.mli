(** Gain buckets — the Fiduccia–Mattheyses selection structure.

    A doubly-linked list per gain value plus a moving maximum pointer gives
    O(1) insert/remove/update and near-O(1) extraction of the best
    candidate. Items are dense integers (cell ids). Gains outside the
    declared range are clamped (safe because selection only needs the
    ordering at the top). *)

type t

val create : num_items:int -> max_gain:int -> t
(** Gains live in [\[-max_gain, +max_gain\]]. *)

val insert : t -> int -> int -> unit
(** [insert t item gain]. Raises [Invalid_argument] if present. *)

val remove : t -> int -> unit
(** No-op when absent. *)

val update : t -> int -> int -> unit
(** Change an item's gain (inserts when absent). When the clamped gain is
    unchanged the item keeps its position within its slot (no unlink /
    relink), so an update that does not move an item does not refresh its
    tie-break recency either — see {!find_best}. *)

val mem : t -> int -> bool
val gain : t -> int -> int
(** Raises [Not_found] when absent. *)

val cardinal : t -> int

val find_best : t -> (int -> bool) -> int option
(** Highest-gain item satisfying the predicate; scans downward, so a
    prefix of rejections at the top costs O(rejections). Ties broken by
    most-recently-{e moved-into-the-slot} (LIFO within a gain level, the
    classic F-M choice; an {!update} that leaves the clamped gain
    unchanged does not count as moving). *)

val clear : t -> unit
