type objective = Cut | Terminals

let objective_value obj st =
  match obj with
  | Cut -> Partition_state.cut st
  | Terminals ->
      Partition_state.terminals st Partition_state.A
      + Partition_state.terminals st Partition_state.B

type score = int * int * int

let never_stop () = false

let every_cell _ = true

type config = {
  objective : objective;
  replication : [ `None | `Functional of int ];
  max_passes : int;
  area_ok : int -> int -> bool;
  score : Partition_state.t -> score;
  should_stop : unit -> bool;
  gain_mode : [ `Eager | `Lazy ];
  oracle : bool;
  active : int -> bool;
}

module Config = struct
  type t = config

  let make ?(objective = Cut) ?(replication = `None) ?(max_passes = 12)
      ?(should_stop = never_stop) ?(gain_mode = `Eager) ?(oracle = false)
      ?(active = every_cell) ~area_ok ~score () =
    if max_passes <= 0 then
      invalid_arg
        (Printf.sprintf "Fm.Config.make: max_passes must be positive (got %d)"
           max_passes);
    {
      objective;
      replication;
      max_passes;
      area_ok;
      score;
      should_stop;
      gain_mode;
      oracle;
      active;
    }
end

(* FPGAPART_FM_ORACLE=1 turns on the oracle cross-check in every run of the
   process — the tooling's way to prove the incremental engine right
   without threading a flag through every CLI. *)
let env_oracle =
  lazy
    (match Sys.getenv_opt "FPGAPART_FM_ORACLE" with
    | Some ("1" | "true" | "yes") -> true
    | _ -> false)

let balance_config ?(objective = Cut) ?(replication = `None) ?(max_passes = 12)
    ?(gain_mode = `Eager) ?(slack = 0.10) ~total_area () =
  let cap =
    int_of_float (ceil ((1.0 +. slack) *. float_of_int total_area /. 2.0))
  in
  Config.make ~objective ~replication ~max_passes ~gain_mode
    ~area_ok:(fun a b -> a <= cap && b <= cap)
    ~score:(fun st ->
      let a = Partition_state.area st Partition_state.A in
      let b = Partition_state.area st Partition_state.B in
      (max 0 (max a b - cap), objective_value objective st, 0))
    ()

type device_bounds = {
  min_clbs : int;
  max_clbs : int;
  max_terminals : int;
  res_max : int array;
}

let bounds ?(res_max = [||]) ~min_clbs ~max_clbs ~max_terminals () =
  if min_clbs < 0 || max_clbs < min_clbs then
    invalid_arg "Fm.bounds: need 0 <= min_clbs <= max_clbs";
  if max_terminals < 0 then
    invalid_arg "Fm.bounds: max_terminals must be non-negative";
  if
    Array.length res_max <> 0
    && Array.length res_max <> Hypergraph.demand_arity
  then
    invalid_arg "Fm.bounds: res_max must be empty or demand_arity long";
  { min_clbs; max_clbs; max_terminals; res_max }

(* Secondary-axis overflow, as a soft penalty like the terminal budget
   already is (never part of area_ok, so the hot loop's legality check
   stays two integer compares). [res_max = [||]] — the scalar objectives —
   skips the loop entirely and adds a literal 0 to the score, keeping the
   legacy formula bit-identical. *)
let res_pen st side res_max =
  if Array.length res_max = 0 then 0
  else begin
    let p = ref 0 in
    for a = 1 to Array.length res_max - 1 do
      p := !p + max 0 (Partition_state.resource st side a - res_max.(a))
    done;
    !p
  end

let device_config ?(objective = Cut) ?(replication = `None) ?(max_passes = 12)
    ?(should_stop = never_stop) ~bounds () =
  Config.make ~objective ~replication ~max_passes ~should_stop
    (* Hard cap keeps side A from overshooting the device wildly; the rest
       of the feasibility hunt happens through the penalty. *)
    ~area_ok:(fun a _b -> a <= bounds.max_clbs + (bounds.max_clbs / 4) + 1)
    ~score:(fun st ->
      let a = Partition_state.area st Partition_state.A in
      let ta = Partition_state.terminals st Partition_state.A in
      let pen =
        max 0 (bounds.min_clbs - a)
        + max 0 (a - bounds.max_clbs)
        + max 0 (ta - bounds.max_terminals)
        + res_pen st Partition_state.A bounds.res_max
      in
      (* Prefer a smaller remainder at equal cut: it fills the split-off
         device (fewer, better-used devices cost less — objective 1)
         without rewarding gratuitous replication into side A. *)
      (pen, objective_value objective st, Partition_state.area st Partition_state.B))
    ()

let two_device_config ?(objective = Terminals) ?(replication = `None)
    ?(max_passes = 12) ?(should_stop = never_stop) ?(active = every_cell)
    ~bounds_a ~bounds_b () =
  let slack bounds = bounds.max_clbs + (bounds.max_clbs / 4) + 1 in
  Config.make ~objective ~replication ~max_passes ~should_stop ~active
    ~area_ok:(fun a b -> a <= slack bounds_a && b <= slack bounds_b)
    ~score:(fun st ->
      let a = Partition_state.area st Partition_state.A in
      let b = Partition_state.area st Partition_state.B in
      let ta = Partition_state.terminals st Partition_state.A in
      let tb = Partition_state.terminals st Partition_state.B in
      let pen_of bounds side clbs terms =
        max 0 (bounds.min_clbs - clbs)
        + max 0 (clbs - bounds.max_clbs)
        + max 0 (terms - bounds.max_terminals)
        + res_pen st side bounds.res_max
      in
      ( pen_of bounds_a Partition_state.A a ta
        + pen_of bounds_b Partition_state.B b tb,
        objective_value objective st,
        a + b (* prefer shedding replicas at equal objective *) ))
    ()

let random_state rng hg =
  let n = Hypergraph.num_cells hg in
  let order = Array.init n Fun.id in
  Netlist.Rng.shuffle rng order;
  let on_b = Array.make n false in
  Array.iteri (fun k c -> if k < n / 2 then on_b.(c) <- true) order;
  Partition_state.create hg ~init_on_b:(fun c -> on_b.(c))

(* Whole-cell moves are the classic F-M operation; every other mask change
   (output migration, split adjustment, un-replication) belongs to the
   replication extension. Telemetry attributes ops to the two families. *)
let is_replication_op ~old_mask ~new_mask ~full =
  not
    ((Bitvec.is_empty old_mask && Bitvec.equal new_mask full)
    || (Bitvec.equal old_mask full && Bitvec.is_empty new_mask))

(* Raised (and caught) inside find_best when a lazy rescore moved the
   inspected item to another slot: the intrusive lists were relinked under
   the scan, so the scan restarts from the top. A constant exception —
   raising it allocates nothing. *)
exception Relocated

let run ?(obs = Obs.noop) cfg st =
  let hg = Partition_state.hypergraph st in
  let n = Hypergraph.num_cells hg in
  let max_gain = (2 * Hypergraph.max_cell_degree hg) + 2 in
  let bucket = Bucket.create ~num_items:n ~max_gain in
  let observing = Obs.enabled obs in
  let oracle = cfg.oracle || Lazy.force env_oracle in
  let lazy_gains = cfg.gain_mode = `Lazy in
  let pass_idx = ref 0 in
  (* The chosen op per cell, unpacked into int arrays (Bitvec.t = int;
     masks are >= 0, so op_mask = -1 encodes "no candidate"): rescoring in
     the hot loop must not allocate. op_gain is the bucket key (-delta of
     the objective), op_tie the area tie-break, op_da/op_db the area
     deltas legality needs. *)
  let op_mask = Array.make n (-1) in
  let op_gain = Array.make n 0 in
  let op_tie = Array.make n 0 in
  let op_da = Array.make n 0 in
  let op_db = Array.make n 0 in
  let locked = Array.make n false in
  (* Epoch stamps dedupe the per-move dirty set: a neighbour shared by
     several state-changed nets of the moved cell is visited once per
     move, not once per shared net. *)
  let stamp = Array.make n (-1) in
  let epoch = ref 0 in
  let dirty = Array.make n false in
  let sc = Partition_state.make_scratch () in
  (* Best-candidate registers written by [consider]; hoisting the closure
     out of the loop keeps candidate evaluation allocation-free. *)
  let cur = ref 0 in
  let found = ref false in
  let bm = ref (-1) and bg = ref 0 and bt = ref 0 in
  let bda = ref 0 and bdb = ref 0 in
  let scratch_obj () =
    match cfg.objective with
    | Cut -> sc.Partition_state.sc_cut
    | Terminals -> sc.Partition_state.sc_term_a + sc.Partition_state.sc_term_b
  in
  (* Maximise gain, tie-break on the smallest area growth (prefer plain
     moves over creating replicas when equal). First generated wins
     further ties, and iter_masks generates deterministically. *)
  let consider mask =
    Partition_state.eval_into st !cur mask sc;
    let g = -scratch_obj () in
    let tie =
      -(sc.Partition_state.sc_area_a + sc.Partition_state.sc_area_b)
    in
    if (not !found) || g > !bg || (g = !bg && tie > !bt) then begin
      found := true;
      bm := mask;
      bg := g;
      bt := tie;
      bda := sc.Partition_state.sc_area_a;
      bdb := sc.Partition_state.sc_area_b
    end
  in
  let compute_best cell =
    cur := cell;
    found := false;
    Gain.iter_masks st ~replication:cfg.replication cell ~f:consider
  in
  let rescored = ref 0 in
  let rescore cell =
    compute_best cell;
    if not !found then begin
      op_mask.(cell) <- -1;
      Bucket.remove bucket cell
    end
    else begin
      op_mask.(cell) <- !bm;
      op_gain.(cell) <- !bg;
      op_tie.(cell) <- !bt;
      op_da.(cell) <- !bda;
      op_db.(cell) <- !bdb;
      Bucket.update bucket cell !bg
    end
  in
  let legal cell =
    op_mask.(cell) >= 0
    && cfg.area_ok
         (Partition_state.area st Partition_state.A + op_da.(cell))
         (Partition_state.area st Partition_state.B + op_db.(cell))
  in
  let clamp g =
    if g > max_gain then max_gain else if g < -max_gain then -max_gain else g
  in
  (* Bucket-scan length: how many candidates find_best inspected before
     one passed the legality predicate (accumulated across lazy-rescore
     restarts). Observed into a histogram only when a sink listens. *)
  let scanned = ref 0 in
  let select_pred cell =
    Stdlib.incr scanned;
    if lazy_gains && dirty.(cell) then begin
      dirty.(cell) <- false;
      let old_slot = clamp op_gain.(cell) in
      Stdlib.incr rescored;
      rescore cell;
      if op_mask.(cell) < 0 || clamp op_gain.(cell) <> old_slot then
        raise Relocated
    end;
    legal cell
  in
  let rec scan_best () =
    match Bucket.find_best bucket select_pred with
    | r -> r
    | exception Relocated -> scan_best ()
  in
  let find_best () =
    if observing then begin
      scanned := 0;
      let r = scan_best () in
      Obs.observe obs "fm.scan_len" !scanned;
      r
    end
    else scan_best ()
  in
  (* Visit one cell of a state-changed net: rescore now (eager) or mark
     dirty for a pop-time rescore in select_pred (lazy). *)
  let visit_cell cell =
    if (not locked.(cell)) && stamp.(cell) <> !epoch then begin
      stamp.(cell) <- !epoch;
      if lazy_gains && Bucket.mem bucket cell then dirty.(cell) <- true
      else begin
        Stdlib.incr rescored;
        rescore cell
      end
    end
  in
  let visit_net net =
    let cells = hg.Hypergraph.net_cells.(net) in
    for k = 0 to Array.length cells - 1 do
      visit_cell cells.(k)
    done
  in
  (* Oracle mode: after each move, recompute the best op of every unlocked
     cell sharing a net with the moved cell — the complete set whose gains
     could have changed (apply only touches counts of the moved cell's
     incident nets) — and compare against the cached op. The sweep only
     reads state, so an oracle run makes byte-identical decisions; it can
     only abort. Cells marked dirty by the lazy mode are deliberately
     stale and skipped. *)
  let oracle_check moved =
    let seen = Hashtbl.create 64 in
    let check cell =
      if
        (not locked.(cell))
        && (not dirty.(cell))
        && not (Hashtbl.mem seen cell)
      then begin
        Hashtbl.add seen cell ();
        let had = op_mask.(cell) >= 0 in
        let cm = op_mask.(cell)
        and cg = op_gain.(cell)
        and ct = op_tie.(cell)
        and cda = op_da.(cell)
        and cdb = op_db.(cell) in
        compute_best cell;
        let ok =
          if not !found then not had
          else had && cm = !bm && cg = !bg && ct = !bt && cda = !bda
               && cdb = !bdb
        in
        if not ok then
          failwith
            (Printf.sprintf
               "Fm oracle: stale cached op for cell %d after moving cell %d \
                (cached mask=%d gain=%d tie=%d da=%d db=%d; fresh %s mask=%d \
                gain=%d tie=%d da=%d db=%d)"
               cell moved cm cg ct cda cdb
               (if !found then "found" else "none")
               !bm !bg !bt !bda !bdb)
      end
    in
    let c = Hypergraph.cell hg moved in
    Array.iter
      (fun net -> Array.iter check hg.Hypergraph.net_cells.(net))
      (Hypergraph.cell_nets c)
  in
  (* Trail of (cell, pre-move mask), preallocated: each cell is applied at
     most once per pass. *)
  let trail_cell = Array.make n 0 in
  let trail_old = Array.make n 0 in
  let one_pass () =
    Bucket.clear bucket;
    Array.fill locked 0 n false;
    if lazy_gains then Array.fill dirty 0 n false;
    (* Inactive cells are pre-locked: they never enter the bucket, are
       never rescored (pass initialisation included) and never move, so a
       warm start pays per pass only for the blast radius it declared.
       With the default predicate the branch is always taken and the pass
       is byte-identical to the unrestricted engine. *)
    for cell = 0 to n - 1 do
      if cfg.active cell then rescore cell
      else begin
        locked.(cell) <- true;
        op_mask.(cell) <- -1
      end
    done;
    let trail_len = ref 0 in
    let repl_attempted = ref 0 in
    let pass_rescored0 = !rescored in
    let t_wall0 = if observing then Obs.Clock.wall () else 0.0 in
    let start_score = cfg.score st in
    let best = ref start_score in
    let best_prefix = ref 0 in
    let continue = ref true in
    while !continue do
      match find_best () with
      | None -> continue := false
      | Some cell ->
          let mask = op_mask.(cell) in
          let old_mask = Partition_state.mask st cell in
          if observing then begin
            Obs.observe obs "fm.gain" op_gain.(cell);
            if
              is_replication_op ~old_mask ~new_mask:mask
                ~full:(Partition_state.full_mask st cell)
            then incr repl_attempted
          end;
          ignore (Partition_state.apply st cell mask);
          locked.(cell) <- true;
          Bucket.remove bucket cell;
          trail_cell.(!trail_len) <- cell;
          trail_old.(!trail_len) <- old_mask;
          incr trail_len;
          (* Criticality-filtered incremental rescoring: only cells on
             nets whose side-connection category crossed a critical
             boundary (as reported by apply) can have a different best op;
             everyone else's cached op — and bucket position — is still
             exact. *)
          incr epoch;
          Partition_state.iter_changed_nets st visit_net;
          if oracle then oracle_check cell;
          let s = cfg.score st in
          if s < !best then begin
            best := s;
            best_prefix := !trail_len
          end
    done;
    (* Roll back to the best prefix. Each cell is applied at most once per
       pass, so while undoing, the cell's current mask is exactly the mask
       the pass applied — enough to re-classify the discarded ops. *)
    let to_undo = !trail_len - !best_prefix in
    let repl_undone = ref 0 in
    for i = !trail_len - 1 downto !best_prefix do
      let cell = trail_cell.(i) and old_mask = trail_old.(i) in
      if
        observing
        && is_replication_op ~old_mask
             ~new_mask:(Partition_state.mask st cell)
             ~full:(Partition_state.full_mask st cell)
      then incr repl_undone;
      ignore (Partition_state.apply st cell old_mask)
    done;
    let improved = !best < start_score in
    if observing then begin
      Obs.incr obs "fm.passes";
      Obs.incr obs ~by:!trail_len "fm.applied_ops";
      Obs.incr obs ~by:to_undo "fm.rolled_back_ops";
      Obs.incr obs ~by:(!rescored - pass_rescored0) "fm.rescored_cells";
      (if !trail_len > 0 then
         let dt = Obs.Clock.wall () -. t_wall0 in
         Obs.observe obs "fm.moves_per_sec"
           (int_of_float (float_of_int !trail_len /. Float.max dt 1e-9)));
      Obs.event obs "fm.pass"
        [
          ("pass", Obs.Json.Int !pass_idx);
          ("applied", Obs.Json.Int !trail_len);
          ("rolled_back", Obs.Json.Int to_undo);
          ("repl_attempted", Obs.Json.Int !repl_attempted);
          ("repl_accepted", Obs.Json.Int (!repl_attempted - !repl_undone));
          ("cut", Obs.Json.Int (Partition_state.cut st));
          ( "terminals",
            Obs.Json.Int
              (Partition_state.terminals st Partition_state.A
              + Partition_state.terminals st Partition_state.B) );
          ("area_a", Obs.Json.Int (Partition_state.area st Partition_state.A));
          ("area_b", Obs.Json.Int (Partition_state.area st Partition_state.B));
          ("improved", Obs.Json.Bool improved);
        ];
      incr pass_idx
    end;
    improved
  in
  (* Each pass runs inside its own span so a tracing sink gets one
     wall-clock span (and GC delta) per F-M pass; without a sink no name
     is even built. *)
  let timed_pass () =
    if observing then
      Obs.span obs ("pass" ^ string_of_int !pass_idx) one_pass
    else one_pass ()
  in
  (* The stop hook is polled only between passes: a pass either completes
     (and rolls back to its best prefix) or never starts, so cancellation
     can not leave the state mid-pass — the score contract ("never
     worsens") survives an abort. With the default hook the polls are
     no-ops and the pass sequence is byte-identical to the unhooked
     engine. *)
  let passes = ref 0 in
  while (not (cfg.should_stop ())) && !passes < cfg.max_passes && timed_pass ()
  do
    incr passes
  done;
  cfg.score st

let run_staged ?(obs = Obs.noop) cfg st =
  match cfg.replication with
  | `None -> run ~obs cfg st
  | `Functional _ ->
      if Obs.enabled obs then
        Obs.event obs "fm.stage" [ ("stage", Obs.Json.String "plain") ];
      ignore (run ~obs { cfg with replication = `None } st);
      if Obs.enabled obs then
        Obs.event obs "fm.stage" [ ("stage", Obs.Json.String "replication") ];
      run ~obs cfg st
