type objective = Cut | Terminals

let objective_value obj st =
  match obj with
  | Cut -> Partition_state.cut st
  | Terminals ->
      Partition_state.terminals st Partition_state.A
      + Partition_state.terminals st Partition_state.B

type score = int * int * int

let never_stop () = false

type config = {
  objective : objective;
  replication : [ `None | `Functional of int ];
  max_passes : int;
  area_ok : int -> int -> bool;
  score : Partition_state.t -> score;
  should_stop : unit -> bool;
}

module Config = struct
  type t = config

  let make ?(objective = Cut) ?(replication = `None) ?(max_passes = 12)
      ?(should_stop = never_stop) ~area_ok ~score () =
    if max_passes <= 0 then
      invalid_arg
        (Printf.sprintf "Fm.Config.make: max_passes must be positive (got %d)"
           max_passes);
    { objective; replication; max_passes; area_ok; score; should_stop }
end

let balance_config ?(objective = Cut) ?(replication = `None) ?(max_passes = 12)
    ?(slack = 0.10) ~total_area () =
  let cap =
    int_of_float (ceil ((1.0 +. slack) *. float_of_int total_area /. 2.0))
  in
  Config.make ~objective ~replication ~max_passes
    ~area_ok:(fun a b -> a <= cap && b <= cap)
    ~score:(fun st ->
      let a = Partition_state.area st Partition_state.A in
      let b = Partition_state.area st Partition_state.B in
      (max 0 (max a b - cap), objective_value objective st, 0))
    ()

type device_bounds = {
  min_clbs : int;
  max_clbs : int;
  max_terminals : int;
}

let device_config ?(objective = Cut) ?(replication = `None) ?(max_passes = 12)
    ?(should_stop = never_stop) ~bounds () =
  Config.make ~objective ~replication ~max_passes ~should_stop
    (* Hard cap keeps side A from overshooting the device wildly; the rest
       of the feasibility hunt happens through the penalty. *)
    ~area_ok:(fun a _b -> a <= bounds.max_clbs + (bounds.max_clbs / 4) + 1)
    ~score:(fun st ->
      let a = Partition_state.area st Partition_state.A in
      let ta = Partition_state.terminals st Partition_state.A in
      let pen =
        max 0 (bounds.min_clbs - a)
        + max 0 (a - bounds.max_clbs)
        + max 0 (ta - bounds.max_terminals)
      in
      (* Prefer a smaller remainder at equal cut: it fills the split-off
         device (fewer, better-used devices cost less — objective 1)
         without rewarding gratuitous replication into side A. *)
      (pen, objective_value objective st, Partition_state.area st Partition_state.B))
    ()

let two_device_config ?(objective = Terminals) ?(replication = `None)
    ?(max_passes = 12) ?(should_stop = never_stop) ~bounds_a ~bounds_b () =
  let slack bounds = bounds.max_clbs + (bounds.max_clbs / 4) + 1 in
  Config.make ~objective ~replication ~max_passes ~should_stop
    ~area_ok:(fun a b -> a <= slack bounds_a && b <= slack bounds_b)
    ~score:(fun st ->
      let a = Partition_state.area st Partition_state.A in
      let b = Partition_state.area st Partition_state.B in
      let ta = Partition_state.terminals st Partition_state.A in
      let tb = Partition_state.terminals st Partition_state.B in
      let pen_of bounds clbs terms =
        max 0 (bounds.min_clbs - clbs)
        + max 0 (clbs - bounds.max_clbs)
        + max 0 (terms - bounds.max_terminals)
      in
      ( pen_of bounds_a a ta + pen_of bounds_b b tb,
        objective_value objective st,
        a + b (* prefer shedding replicas at equal objective *) ))
    ()

let random_state rng hg =
  let n = Hypergraph.num_cells hg in
  let order = Array.init n Fun.id in
  Netlist.Rng.shuffle rng order;
  let on_b = Array.make n false in
  Array.iteri (fun k c -> if k < n / 2 then on_b.(c) <- true) order;
  Partition_state.create hg ~init_on_b:(fun c -> on_b.(c))

(* The objective component of a delta. *)
let delta_obj obj (d : Partition_state.delta) =
  match obj with
  | Cut -> d.Partition_state.d_cut
  | Terminals -> d.Partition_state.d_term_a + d.Partition_state.d_term_b

(* Best candidate operation for a cell: maximise gain, tie-break on the
   smallest area growth (prefer plain moves over creating replicas when
   equal), then on un-replication. *)
let best_op cfg st cell =
  let candidates = Gain.best_mask_change st ~replication:cfg.replication cell in
  let key (_, d) =
    ( -delta_obj cfg.objective d,
      -(d.Partition_state.d_area_a + d.Partition_state.d_area_b) )
  in
  match candidates with
  | [] -> None
  | first :: rest ->
      let best =
        List.fold_left
          (fun acc c -> if key c > key acc then c else acc)
          first rest
      in
      Some best

(* Whole-cell moves are the classic F-M operation; every other mask change
   (output migration, split adjustment, un-replication) belongs to the
   replication extension. Telemetry attributes ops to the two families. *)
let is_replication_op ~old_mask ~new_mask ~full =
  not
    ((Bitvec.is_empty old_mask && Bitvec.equal new_mask full)
    || (Bitvec.equal old_mask full && Bitvec.is_empty new_mask))

let run ?(obs = Obs.noop) cfg st =
  let hg = Partition_state.hypergraph st in
  let n = Hypergraph.num_cells hg in
  let max_gain = (2 * Hypergraph.max_cell_degree hg) + 2 in
  let bucket = Bucket.create ~num_items:n ~max_gain in
  let observing = Obs.enabled obs in
  let pass_idx = ref 0 in
  let ops : (Bitvec.t * Partition_state.delta) option array = Array.make n None in
  let locked = Array.make n false in
  let rescore cell =
    if not locked.(cell) then begin
      ops.(cell) <- best_op cfg st cell;
      match ops.(cell) with
      | None -> Bucket.remove bucket cell
      | Some (_, d) -> Bucket.update bucket cell (-delta_obj cfg.objective d)
    end
  in
  let legal cell =
    match ops.(cell) with
    | None -> false
    | Some (_, d) ->
        cfg.area_ok
          (Partition_state.area st Partition_state.A + d.Partition_state.d_area_a)
          (Partition_state.area st Partition_state.B + d.Partition_state.d_area_b)
  in
  (* Bucket-scan length: how many candidates find_best inspected before
     one passed the legality predicate. Observed into a histogram only
     when a sink listens; the noop path keeps the bare call. *)
  let find_best () =
    if observing then begin
      let scanned = ref 0 in
      let r =
        Bucket.find_best bucket (fun cell ->
            Stdlib.incr scanned;
            legal cell)
      in
      Obs.observe obs "fm.scan_len" !scanned;
      r
    end
    else Bucket.find_best bucket legal
  in
  let one_pass () =
    Bucket.clear bucket;
    Array.fill locked 0 n false;
    for cell = 0 to n - 1 do
      rescore cell
    done;
    let trail = ref [] in
    let trail_len = ref 0 in
    let repl_attempted = ref 0 in
    let start_score = cfg.score st in
    let best = ref start_score in
    let best_prefix = ref 0 in
    let continue = ref true in
    while !continue do
      match find_best () with
      | None -> continue := false
      | Some cell ->
          let mask, d = Option.get ops.(cell) in
          let old_mask = Partition_state.mask st cell in
          if observing then begin
            Obs.observe obs "fm.gain" (-delta_obj cfg.objective d);
            if
              is_replication_op ~old_mask ~new_mask:mask
                ~full:(Partition_state.full_mask st cell)
            then incr repl_attempted
          end;
          ignore (Partition_state.apply st cell mask);
          locked.(cell) <- true;
          Bucket.remove bucket cell;
          trail := (cell, old_mask) :: !trail;
          incr trail_len;
          (* Re-score neighbours whose nets may have changed state. *)
          let c = Hypergraph.cell hg cell in
          Array.iter
            (fun net ->
              Array.iter rescore hg.Hypergraph.net_cells.(net))
            (Hypergraph.cell_nets c);
          let s = cfg.score st in
          if s < !best then begin
            best := s;
            best_prefix := !trail_len
          end
    done;
    (* Roll back to the best prefix. Each cell is applied at most once per
       pass, so while undoing, the cell's current mask is exactly the mask
       the pass applied — enough to re-classify the discarded ops. *)
    let to_undo = !trail_len - !best_prefix in
    let repl_undone = ref 0 in
    let rec undo k = function
      | (cell, old_mask) :: rest when k > 0 ->
          if
            observing
            && is_replication_op ~old_mask
                 ~new_mask:(Partition_state.mask st cell)
                 ~full:(Partition_state.full_mask st cell)
          then incr repl_undone;
          ignore (Partition_state.apply st cell old_mask);
          undo (k - 1) rest
      | _ -> ()
    in
    undo to_undo !trail;
    let improved = !best < start_score in
    if observing then begin
      Obs.incr obs "fm.passes";
      Obs.incr obs ~by:!trail_len "fm.applied_ops";
      Obs.incr obs ~by:to_undo "fm.rolled_back_ops";
      Obs.event obs "fm.pass"
        [
          ("pass", Obs.Json.Int !pass_idx);
          ("applied", Obs.Json.Int !trail_len);
          ("rolled_back", Obs.Json.Int to_undo);
          ("repl_attempted", Obs.Json.Int !repl_attempted);
          ("repl_accepted", Obs.Json.Int (!repl_attempted - !repl_undone));
          ("cut", Obs.Json.Int (Partition_state.cut st));
          ( "terminals",
            Obs.Json.Int
              (Partition_state.terminals st Partition_state.A
              + Partition_state.terminals st Partition_state.B) );
          ("area_a", Obs.Json.Int (Partition_state.area st Partition_state.A));
          ("area_b", Obs.Json.Int (Partition_state.area st Partition_state.B));
          ("improved", Obs.Json.Bool improved);
        ];
      incr pass_idx
    end;
    improved
  in
  (* Each pass runs inside its own span so a tracing sink gets one
     wall-clock span (and GC delta) per F-M pass; without a sink no name
     is even built. *)
  let timed_pass () =
    if observing then
      Obs.span obs ("pass" ^ string_of_int !pass_idx) one_pass
    else one_pass ()
  in
  (* The stop hook is polled only between passes: a pass either completes
     (and rolls back to its best prefix) or never starts, so cancellation
     can not leave the state mid-pass — the score contract ("never
     worsens") survives an abort. With the default hook the polls are
     no-ops and the pass sequence is byte-identical to the unhooked
     engine. *)
  let passes = ref 0 in
  while (not (cfg.should_stop ())) && !passes < cfg.max_passes && timed_pass ()
  do
    incr passes
  done;
  cfg.score st

let run_staged ?(obs = Obs.noop) cfg st =
  match cfg.replication with
  | `None -> run ~obs cfg st
  | `Functional _ ->
      if Obs.enabled obs then
        Obs.event obs "fm.stage" [ ("stage", Obs.Json.String "plain") ];
      ignore (run ~obs { cfg with replication = `None } st);
      if Obs.enabled obs then
        Obs.event obs "fm.stage" [ ("stage", Obs.Json.String "replication") ];
      run ~obs cfg st
