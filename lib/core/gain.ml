type vectors = {
  c_i : Bitvec.t;
  q_i : Bitvec.t;
  c_o : Bitvec.t;
  q_o : Bitvec.t;
  n_inputs : int;
  n_outputs : int;
}

let vectors st cell =
  let side =
    match Partition_state.single_side st cell with
    | Some s -> s
    | None -> invalid_arg "Gain.vectors: cell is replicated"
  in
  let hg = Partition_state.hypergraph st in
  let c = Hypergraph.cell hg cell in
  let conn s n =
    (* Connections on a side, read through the public counters: recompute
       via recompute would be wasteful; expose through eval of identity is
       impossible -- so Partition_state exports conn counts. *)
    Partition_state.connections st s n
  in
  let here = side and there = Partition_state.opposite side in
  let classify n =
    (* "A net is critical if one move changes its state": a cut net leaves
       the cut when the cell holds its side's only connection; an uncut
       net (necessarily all on the cell's side) enters the cut when some
       other connection stays behind. *)
    let ch = conn here n and ct = conn there n in
    let cut = ch > 0 && ct > 0 in
    let critical = if cut then ch = 1 else ch >= 2 in
    (cut, critical)
  in
  let build nets =
    Array.to_list nets
    |> List.mapi (fun pin n -> (pin, classify n))
    |> List.fold_left
         (fun (cv, qv) (pin, (cut, critical)) ->
           ( (if cut then Bitvec.add pin cv else cv),
             if critical then Bitvec.add pin qv else qv ))
         (Bitvec.empty, Bitvec.empty)
  in
  let c_i, q_i = build c.Hypergraph.inputs in
  let c_o, q_o = build c.Hypergraph.outputs in
  {
    c_i;
    q_i;
    c_o;
    q_o;
    n_inputs = Array.length c.Hypergraph.inputs;
    n_outputs = Array.length c.Hypergraph.outputs;
  }

let single_move v =
  let norm = Bitvec.norm in
  let notw w x = Bitvec.complement w x in
  norm (Bitvec.inter v.c_i v.q_i)
  + norm (Bitvec.inter v.c_o v.q_o)
  - norm (Bitvec.inter (notw v.n_inputs v.c_i) v.q_i)
  - norm (Bitvec.inter (notw v.n_outputs v.c_o) v.q_o)

let traditional_replication v =
  Bitvec.norm v.c_i + Bitvec.norm v.c_o - v.n_inputs

let functional_replication st cell ~threshold =
  let hg = Partition_state.hypergraph st in
  let c = Hypergraph.cell hg cell in
  if not (Replication_potential.replicable ~threshold c) then None
  else begin
    let current = Partition_state.mask st cell in
    let m = Array.length c.Hypergraph.outputs in
    let best = ref None in
    for o = 0 to m - 1 do
      (* Migrate output o to the other side (flip its bit). *)
      let mask =
        if Bitvec.mem o current then Bitvec.remove o current
        else Bitvec.add o current
      in
      let d = Partition_state.eval st cell mask in
      let gain = -d.Partition_state.d_cut in
      match !best with
      | Some (g, _) when g >= gain -> ()
      | _ -> best := Some (gain, o)
    done;
    !best
  end

(* Candidate masks are generated each exactly once, so no dedupe pass (or
   allocation) is needed downstream. The collisions the old List.exists
   dedupe absorbed are structural and excluded at the source:
   - a single-output cell's one "migration" flip IS the whole-cell
     complement (never generated twice: replication is gated on m > 1, and
     the replicated branch requires m >= 2);
   - for a replicated cell, flipping its only B-output regenerates [empty]
     and flipping its only A-output regenerates [full], so the explicit
     un-replication masks are emitted only when no flip produced them.
   The complement of a replicated mask differs from the current mask in
   every one of the m >= 2 output positions, so it never collides with a
   single-bit flip; and [empty]/[full] equal the complement only when the
   cell is single-sided, in which case the replicated branch is dead. *)
let iter_masks st ~replication cell ~f =
  let hg = Partition_state.hypergraph st in
  let c = Hypergraph.cell hg cell in
  let m = Array.length c.Hypergraph.outputs in
  let current = Partition_state.mask st cell in
  let flip o =
    if Bitvec.mem o current then Bitvec.remove o current
    else Bitvec.add o current
  in
  (* Whole-cell move / side swap of all outputs. *)
  let comp = Bitvec.complement m current in
  if not (Bitvec.equal comp current) then f comp;
  if Partition_state.is_replicated st cell then begin
    (* Already replicated: adjust the split or un-replicate. Split
       adjustment and un-replication are always allowed -- the threshold
       gates creating replicas, not removing them. *)
    for o = 0 to m - 1 do
      f (flip o)
    done;
    if Bitvec.norm current <> 1 then f Bitvec.empty;
    if Bitvec.norm current <> m - 1 then f (Bitvec.full m)
  end
  else
    (* Replication creation: migrate one output. *)
    match replication with
    | `None -> ()
    | `Functional threshold ->
        if m > 1 && Replication_potential.replicable ~threshold c then
          for o = 0 to m - 1 do
            f (flip o)
          done

let best_mask_change st ~replication cell =
  let candidates = ref [] in
  iter_masks st ~replication cell ~f:(fun mask ->
      candidates := (mask, Partition_state.eval st cell mask) :: !candidates);
  !candidates
