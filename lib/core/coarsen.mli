(** Heavy-edge matching coarsening and coarse-graph hierarchies.

    The paper's 1994 flat F-M struggles on the largest circuits; the
    multilevel scheme that later became standard (coarsen by heavy-edge
    matching, partition the small graph, project and refine level by
    level) is implemented here. Two consumers exist: {!multilevel_init}
    keeps the historical role of seeding a single bipartition (the bench
    ablation baseline), and {!hierarchy} feeds the k-way V-cycle driver
    ([Kway] with [~strategy:(Multilevel _)]).

    Coarse cells are clusters: their area and demand vector are the
    per-axis sums over their members and their per-output supports are
    widened to all inputs. Clusters are therefore {e opaque} — every
    output depends on every input — which is why functional replication
    is only ever re-derived at the finest levels, where the real
    adjacency vectors live. *)

val coarsen :
  ?max_weight:int array ->
  ?max_nets:int ->
  rng:Netlist.Rng.t ->
  Hypergraph.t ->
  Hypergraph.t * int array
(** One level of heavy-edge matching: each cell merges with its most
    connected unmatched neighbour (connectivity = sum over shared nets of
    [1 / (pins - 1)]). Returns the coarse hypergraph and the fine-to-coarse
    cell map. The coarse graph has at least half as many... at most the
    same number of cells; callers should stop when the reduction stalls.

    [max_weight] caps cluster growth {e per demand axis}: a merge is
    refused when any axis of the summed demand vectors (zero-extended to
    the cap's length) would exceed the cap. Because cluster demand vectors
    are themselves per-axis sums, the cap bounds clusters across repeated
    coarsening levels, not just one matching round.

    [max_nets] caps a cluster's {e net surface}: a merge is refused when
    the union of the pair's distinct incident nets exceeds the cap. This
    is the knob that keeps coarse graphs partitionable under tight
    terminal budgets — a part assembled from clusters can never cut fewer
    nets than its clusters' surfaces allow, so once cluster surfaces
    approach the device terminal window, F-M on the coarse graph strands
    outside feasibility however many clusters a part gets. Across levels
    the cap steers matching towards high net-sharing merges (the union
    shrinks only through shared nets), compounding the heavy-edge bias.

    Without either cap (the default) only the pin budget limits
    matching. *)

type hierarchy = {
  coarsest : Hypergraph.t;
  levels : (Hypergraph.t * int array) list;
      (** [(fine, map)] pairs ordered coarsest-side first: the head pair's
          [map] sends cells of its [fine] graph into clusters of
          [coarsest], each later pair refines the previous one, and the
          last pair's [fine] is the original input graph. Empty when the
          input was already at or below the [coarsest] threshold. *)
}

val hierarchy :
  ?coarsest:int ->
  ?max_levels:int ->
  ?stall_ratio:float ->
  ?max_weight:int array ->
  ?max_nets:int ->
  ?wrap:(int -> (unit -> Hypergraph.t * int array) -> Hypergraph.t * int array) ->
  rng:Netlist.Rng.t ->
  Hypergraph.t ->
  hierarchy
(** Repeated {!coarsen} until the graph has at most [coarsest] cells
    (default 150), [max_levels] levels exist (default 12), or matching
    stalls (the coarse graph keeps at least [stall_ratio] of the fine
    cells, default 0.9). [wrap] is called around each coarsening step with
    the 0-based level index — the k-way driver passes an [Obs.span] so
    per-level [coarsenN] timings land in the trace. *)

val num_levels : hierarchy -> int

val project_labels : map:int array -> int array -> int array
(** [project_labels ~map coarse_labels] pulls a per-cluster labelling down
    one level: fine cell [c] gets [coarse_labels.(map.(c))]. Projection
    preserves per-label areas, demand vectors and cut exactly — coarsening
    drops only nets internal to one cluster, which are internal to one
    label by construction. *)

val multilevel_init :
  ?coarsest:int ->
  ?max_levels:int ->
  rng:Netlist.Rng.t ->
  Fm.config ->
  Hypergraph.t ->
  Partition_state.t
(** Build an initial bipartition of the fine hypergraph by the multilevel
    scheme: coarsen until at most [coarsest] cells (default 150) or
    [max_levels] (default 12) levels, random-partition and F-M the
    coarsest graph, then project and F-M-refine upward. The given config's
    [score]/[area_ok] are reused at every level (areas are preserved by
    the cluster weights); replication is disabled during the multilevel
    phase regardless of the config. The returned state belongs to the
    original hypergraph and is ready for {!Fm.run} or {!Fm.run_staged}. *)
