type t = {
  max_gain : int;
  heads : int array;      (* per gain slot: first item or -1 *)
  next : int array;       (* per item *)
  prev : int array;       (* per item; -(slot+2) when head of its list *)
  gain_of : int array;    (* per item; min_int when absent *)
  mutable top : int;      (* upper bound on the best occupied slot *)
  mutable count : int;
}

let absent = min_int

let create ~num_items ~max_gain =
  if max_gain < 0 then invalid_arg "Bucket.create: negative max_gain";
  {
    max_gain;
    heads = Array.make ((2 * max_gain) + 1) (-1);
    next = Array.make num_items (-1);
    prev = Array.make num_items (-1);
    gain_of = Array.make num_items absent;
    top = -1;
    count = 0;
  }

let clamp t g = if g > t.max_gain then t.max_gain else if g < -t.max_gain then -t.max_gain else g

let slot t g = clamp t g + t.max_gain

let mem t item = t.gain_of.(item) <> absent

let gain t item =
  let g = t.gain_of.(item) in
  if g = absent then raise Not_found else g

let cardinal t = t.count

let insert t item g =
  if mem t item then invalid_arg "Bucket.insert: item already present";
  let s = slot t g in
  let head = t.heads.(s) in
  t.next.(item) <- head;
  t.prev.(item) <- -(s + 2);
  if head >= 0 then t.prev.(head) <- item;
  t.heads.(s) <- item;
  t.gain_of.(item) <- g;
  if s > t.top then t.top <- s;
  t.count <- t.count + 1

let remove t item =
  if mem t item then begin
    let s = slot t t.gain_of.(item) in
    let nx = t.next.(item) and pv = t.prev.(item) in
    if pv < -1 then begin
      (* head of its list *)
      t.heads.(s) <- nx;
      if nx >= 0 then t.prev.(nx) <- -(s + 2)
    end
    else begin
      t.next.(pv) <- nx;
      if nx >= 0 then t.prev.(nx) <- pv
    end;
    t.gain_of.(item) <- absent;
    t.count <- t.count - 1
  end

let update t item g =
  (* Fast path: same clamped gain means the item stays in its slot, so
     skip the unlink/relink entirely and only refresh the stored
     (unclamped) gain. Beyond saving pointer churn this preserves the
     item's position within the slot, which keeps find_best's tie-breaking
     stable under rescores that do not change the gain. *)
  let old = t.gain_of.(item) in
  if old <> absent && slot t old = slot t g then t.gain_of.(item) <- g
  else begin
    remove t item;
    insert t item g
  end

let find_best t pred =
  (* Lower the top pointer past empty slots lazily. *)
  while t.top >= 0 && t.heads.(t.top) < 0 do
    t.top <- t.top - 1
  done;
  let rec scan s =
    if s < 0 then None
    else begin
      let rec walk item =
        if item < 0 then scan (s - 1)
        else if pred item then Some item
        else walk t.next.(item)
      in
      walk t.heads.(s)
    end
  in
  scan t.top

let clear t =
  Array.fill t.heads 0 (Array.length t.heads) (-1);
  Array.fill t.gain_of 0 (Array.length t.gain_of) absent;
  t.top <- -1;
  t.count <- 0
