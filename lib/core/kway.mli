(** k-way partitioning into a heterogeneous FPGA library (Sections I and
    IV; the recursive-bipartitioning driver of ref. [3] extended with
    functional replication).

    The driver repeatedly splits off one feasible single-device subcircuit:
    at each step it either places the whole remainder on the cheapest
    device that accepts it, or runs device-window F-M bipartitions
    (candidate devices in cost-efficiency order, multi-start) until a
    feasible split emerges, then recurses on the remainder. A multi-start
    outer loop collects several feasible k-way partitions and keeps the
    best by (total cost, then average IOB utilization) — the paper's twin
    objectives (1) and (2).

    The multi-start runs are independent trials; with [jobs > 1] they
    execute on OCaml 5 domains (see {!Parallel.Pool}) with {e no} effect on
    the outcome or the telemetry: each run derives its RNG from
    [(seed, run index)] and records into a private forked sink, the sinks
    merge back in run order, and the winner is selected with the exact
    sequential tie-break — so [jobs=N] produces byte-identical scrubbed
    telemetry to [jobs=1]. *)

type part = {
  device : Fpga.Device.t;
  members : (int * Bitvec.t) list;
      (** cells of the original hypergraph in this partition, with the
          output mask their copy carries (whole mask when not
          replicated) *)
  clbs : int;
  iobs : int;  (** terminals used: nets leaving this device *)
  used : int array;
      (** per-axis resource consumption ([Hypergraph.demand_arity] long;
          [used.(0) = clbs]); a replicated member pays its whole demand
          vector in every part it appears in, matching the CLB
          accounting *)
}

type result = {
  parts : part list;
  summary : Fpga.Cost.summary;
  replicated_cells : int;  (** original cells present in more than one part *)
  total_cells : int;
  wall_secs : float;
      (** wall-clock seconds for the whole multi-start call, refinement
          included *)
  cpu_secs : float;
      (** process CPU seconds over the same interval, all domains summed —
          equals [wall_secs] (up to noise) at [jobs = 1] and exceeds it
          under parallelism *)
  runs : int;
  feasible_runs : int;
}

type multilevel = {
  max_levels : int;     (** coarsening depth cap (levels of the hierarchy) *)
  coarsen_ratio : float;
      (** stall threshold in (0, 1): coarsening stops when one matching
          round keeps at least this fraction of the cells *)
  refine_passes : int;
      (** boundary-restricted refinement sweeps per uncoarsening level
          (becomes [refine_rounds] for the per-level pairwise F-M) *)
}

type strategy =
  | Flat  (** the classic driver: device-window F-M splits on the full
              hypergraph — the default, byte-identical to the
              pre-multilevel code path *)
  | Multilevel of multilevel
      (** V-cycle: coarsen by heavy-edge matching under per-axis cluster
          weight caps, run the flat driver on the coarsest graph, then
          project labels down level by level, refining each level with
          F-M restricted to boundary cells. Functional replication is
          applied only at the finest {!repl_fine_levels} levels. *)

type options = {
  runs : int;          (** multi-start count (the paper generates 5
                           feasible partitions per run) *)
  seed : int;
  replication : [ `None | `Functional of int ];
  max_passes : int;    (** F-M passes per bipartition *)
  fm_attempts : int;   (** random restarts per split step and device *)
  refine_rounds : int;
      (** pairwise-refinement sweeps applied to the winning run's parts:
          each sweep re-bipartitions the most net-sharing part pairs (up to
          4k of them) under both device windows to shed terminals (and
          possibly shrink devices); refinement never worsens a partition;
          0 disables *)
  jobs : int;
      (** domains used for the multi-start runs (and, when [runs < jobs],
          for the per-split [fm_attempts] restarts); [1] runs everything in
          the calling domain. Never affects the result. *)
  should_stop : unit -> bool;
      (** cooperative-cancellation hook, polled at the split-step and
          F-M pass boundaries (see {!Fm.config}); when it returns [true]
          the driver abandons the search and {!partition} returns
          [Error] {!cancelled}. Defaults to [fun () -> false] — the
          default hook never changes behaviour or telemetry. The service
          daemon points it at the job's cancel flag and deadline; the CLI
          points it at the SIGINT/SIGTERM flag. Like [jobs], it is an
          execution knob: it is never serialised into the stats schema. *)
  objective : Fpga.Objective.t;
      (** the cost model driving every pricing and feasibility decision:
          device choice, split-efficiency ranking, F-M objectives, run
          ranking. Defaults to {!Fpga.Objective.paper}, which is
          bit-identical to the pre-objective scalar driver (its net cost
          is the constant [0.0] and its feasibility mode keeps the scalar
          device test). Unlike [jobs]/[should_stop] it {e is} part of the
          result's identity, so the service serialises its [name] into
          options fingerprints and digests. *)
  strategy : strategy;
      (** {!Flat} (default) or {!Multilevel}. Like [objective] it is part
          of the result's identity and is serialised (only when not
          [Flat], so existing flat stats and digests stay
          byte-identical). *)
}
(** @deprecated Constructing this record literally is deprecated: every new
    knob (like [jobs] or [should_stop]) is a breaking change for literal
    builders. Use {!Options.make} (or functional update of
    {!Options.default}), which defaults every field. The record stays
    exposed for field access and functional update. *)

val cancelled : string
(** The exact [Error] payload {!partition} returns when [should_stop]
    aborted the search — callers distinguish cancellation from a genuine
    "no feasible partition" by comparing against this string. *)

(** Labelled constructors for {!options}. *)
module Options : sig
  type t = options

  val default : t
  (** 5 runs, seed 1, no replication, 10 passes, 3 attempts, 1 refinement
      sweep, 1 job, flat strategy. *)

  val default_multilevel : multilevel
  (** 12 levels, stall ratio 0.9, 2 refinement passes per level — the
      knobs [Multilevel default_multilevel] enables when the caller gives
      no numbers (the CLI's bare [--multilevel]). *)

  val make :
    ?runs:int ->
    ?seed:int ->
    ?replication:[ `None | `Functional of int ] ->
    ?max_passes:int ->
    ?fm_attempts:int ->
    ?refine_rounds:int ->
    ?jobs:int ->
    ?should_stop:(unit -> bool) ->
    ?objective:Fpga.Objective.t ->
    ?strategy:strategy ->
    unit ->
    t
  (** Every argument defaults to its {!default} value, so adding future
      knobs never breaks a caller.

      Raises [Invalid_argument] when [runs], [max_passes], [fm_attempts]
      or [jobs] is non-positive, or [refine_rounds] is negative: a bad
      budget otherwise fails far downstream ([runs = 0] surfaces as "no
      feasible partition", [fm_attempts = 0] as an empty restart loop)
      where the cause is unrecoverable from the symptom. A [Multilevel]
      strategy additionally requires positive [max_levels] and
      [refine_passes] and a [coarsen_ratio] strictly inside [(0, 1)]. *)
end

val default_options : options
  [@@ocaml.deprecated "Use Kway.Options.default (or Kway.Options.make)."]

val partition :
  ?obs:Obs.t ->
  ?options:options ->
  library:Fpga.Library.t ->
  Hypergraph.t ->
  (result, string) Stdlib.result
(** [Error] when no run produces a fully feasible k-way partition.

    Dispatches on [options.strategy]: [Flat] runs the classic driver
    described above; [Multilevel] coarsens first ({!Coarsen.hierarchy}
    under per-axis cluster weight caps of half the largest device
    window), runs the flat driver on the coarsest graph (with narrowed
    search budgets when the estimated device count exceeds 16), then
    uncoarsens V-cycle style — {!project_parts} per level, then pairwise
    F-M refinement restricted to the labelling's boundary cells (the
    warm-start [active] machinery), with [refine_passes] sweeps per
    level. Multilevel telemetry adds counter ["ml.level"], histograms
    ["ml.cells_per_level"] / ["ml.coarsen_ratio"] (percent), events
    ["ml.coarsen"] / ["ml.refine"], and spans ["coarsen<l>"] /
    ["refine<l>"]; the flat path emits none of these, and its event
    stream is byte-identical to the pre-multilevel driver.

    With a collecting [obs] (default {!Obs.noop}: record nothing, cost
    nothing), the driver emits its full telemetry: each multi-start run
    lives in a span ["run<r>"] and ends with a ["kway.run"] event; each
    split step spans ["split<s>"] with one ["kway.device_attempt"] event
    per candidate device (fields [step], [device], [feasible], and when
    feasible [clbs]/[iobs]/[cut]) and a closing ["kway.split"] (or
    ["kway.fit"] when the remainder fits a single device, or
    ["kway.split_failed"]); the inner F-M emits its per-pass events under
    those spans (see {!Fm.run}); pairwise refinement spans ["refine<n>"]
    and emits ["kway.refine_pair"] and ["kway.refine_round"] events with
    terminal deltas. Histograms ["kway.attempt_cut"] (cut of every
    feasible device attempt) and ["kway.split_cut"] (cut of each chosen
    split) accumulate alongside the F-M ["fm.gain"]/["fm.scan_len"]
    distributions. Identical options yield an identical event stream —
    [jobs] included: runs (and restarts) record into {!Obs.fork}ed sinks
    merged back in index order, so only the ["_secs"]-keyed timers vary
    between runs or across [jobs] settings.

    When [obs] traces ({!Obs.create} with [trace:true]), every span also
    lands on a trace lane: [pid] is the multi-start run index (runs fork
    with [Obs.fork ~pid]) and [tid] the {!Parallel.Pool.worker_id} of the
    domain that executed it — lanes shape the trace only, never the
    scrubbed stats. *)

val repl_fine_levels : int
(** Number of finest uncoarsening levels (2) at which a [Multilevel] run
    honours [options.replication]; every coarser level refines with
    replication forced off, because coarse clusters are opaque (every
    output depends on every input — see {!Coarsen}) and so offer
    functional replication no adjacency slack to exploit. *)

val result_of_parts : Hypergraph.t -> part list -> result
(** Wrap a part list into a {!result} by recounting the summary and
    replication figures from the members ([wall_secs]/[cpu_secs] zero,
    [runs = feasible_runs = 1]) — the shape {!check} expects. Used by the
    projection tests and the multilevel driver's level hand-offs. *)

val project_parts :
  ?options:options ->
  library:Fpga.Library.t ->
  labels:int array ->
  devices:Fpga.Device.t array ->
  Hypergraph.t ->
  (part list, string) Stdlib.result
(** Materialise a whole-cell labelling into parts — the uncoarsening step
    of the V-cycle. [labels.(c)] indexes [devices]; every cell joins its
    labelled part with its full output mask (no replication). Per-part
    CLB/demand sums and IOBs are recounted from scratch; each part keeps
    its given device when that still fits (lower utilisation window
    relaxed, as {!check} allows) and otherwise takes the cheapest
    accepting device under [options.objective]'s feasibility mode.
    [Error] on a malformed labelling or when some part fits no library
    device. *)

val labels_of_parts : Hypergraph.t -> part list -> int array * bool array
(** Flatten a finished partition to per-cell form for projection onto an
    edited hypergraph: [(labels, replicated)] where [labels.(c)] is the
    index (within the given part list) of the part driving most of cell
    [c]'s outputs (first such part at ties) and [replicated.(c)] is true
    when the cell appears in more than one part. Callers feed [replicated]
    into the projection's [base_dirty] so the warm start re-decides those
    cells' replication rather than trusting a single collapsed label. *)

type warm = {
  w_labels : int array;
      (** per-cell part index into [w_devices], or [-1] for a cell the
          warm start must seed (typically a cell added by the edit) *)
  w_dirty : bool array;
      (** per-cell: inside the edit's blast radius — only these cells may
          move during warm refinement (see {!Projection.project}) *)
  w_devices : Fpga.Device.t array;
      (** the base partition's devices, in label order *)
}
(** A warm-start seed: the base partition projected onto the edited
    hypergraph (see [Projection.project] in the hypergraph library). *)

val warm_start :
  ?obs:Obs.t ->
  ?options:options ->
  library:Fpga.Library.t ->
  warm:warm ->
  Hypergraph.t ->
  (result, string) Stdlib.result
(** Incremental repartitioning: rebuild a k-way partition of the (edited)
    hypergraph from a projected base partition instead of from scratch.
    Unlabelled cells are seeded greedily onto the part with the most
    incident-net affinity (ties towards capacity headroom, then the
    emptier part) and marked dirty; parts keep their base device when it
    still fits ([relax_low], as {!check} allows) and otherwise take the
    cheapest fitting device; then pairwise refinement runs restricted to
    the dirty set — only pairs sharing a dirty net are swept and only
    dirty cells may move (clean cells are pre-locked via {!Fm.config}'s
    [active]), so the whole call costs O(blast radius), not O(circuit).
    At least one refinement round runs even when [options.refine_rounds]
    is [0], since refinement is the only optimisation a warm start
    performs. The result has [runs = feasible_runs = 1].

    [Error] when the seed is malformed (label out of range, length
    mismatch, no devices), when some part no longer fits any library
    device, or when [options.should_stop] fired ({!cancelled}) — callers
    (the service daemon) fall back to a cold {!partition} run.

    With a collecting [obs], the refinement telemetry lands under a span
    named ["warm"], counter ["kway.warm_starts"] increments, histograms
    ["kway.warm_seeded_cells"] / ["kway.warm_dirty_cells"] record the
    seed's shape, and one ["kway.warm"] event summarises the call. *)

val check : Hypergraph.t -> result -> (unit, string) Stdlib.result
(** Soundness of a result: every output of every original cell is driven
    by exactly one part (masks partition each cell's outputs), every part
    obeys its device's size and terminal constraints, the recorded per-part
    CLB/IOB numbers match a recount from the members (IOBs: nets leaving
    the device, recounted on the original hypergraph), and the summary's
    partition count, total cost, total CLBs/IOBs and the replication
    figures agree with what the members imply. Used by tests and
    assertions. *)

val pp_result : Format.formatter -> result -> unit
