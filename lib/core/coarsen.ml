(* Heavy-edge matching coarsening and the multilevel V-cycle. *)

(* Per-axis weight guard for a candidate merge. Cluster demand vectors are
   the per-axis sums of their members' vectors (zero-extended), so checking
   every axis of [cap] — not just the scalar CLB weight — keeps coarse
   clusters packable on vector devices: a BRAM-heavy pair whose CLB sum is
   tiny must still refuse to merge past the BRAM cap. *)
let weight_ok ~cap (h : Hypergraph.t) c0 c1 =
  let d0 = (Hypergraph.cell h c0).Hypergraph.demand in
  let d1 = (Hypergraph.cell h c1).Hypergraph.demand in
  let axis d a = if a < Array.length d then d.(a) else 0 in
  let ok = ref true in
  for a = 0 to Array.length cap - 1 do
    if axis d0 a + axis d1 a > cap.(a) then ok := false
  done;
  !ok

(* Exact pin counts of a candidate merge: what the merged cluster's
   surface will be. Driven nets whose every pin sits inside the pair
   internalise (a net touches at most two distinct cells when all its
   pins are in the pair, so the check is O(1)); inputs are the distinct
   union of both cells' input nets minus anything driven inside the
   pair. Far tighter than the per-cell pin-count sums when the pair
   shares support or feeds itself — exactly the high-affinity case
   heavy-edge matching favours. Without this, coarsening of
   region-structured circuits stalls an order of magnitude above the
   target: the sums hit the bit-mask width while the true surfaces are
   still small. Uses two stamps from [seen]: [stamp] marks driven
   nets, [stamp + 1] counted inputs. *)
let merged_pin_counts (h : Hypergraph.t) seen stamp c0 c1 =
  let pair_internal net =
    (not h.Hypergraph.net_external.(net))
    &&
    let cells = h.Hypergraph.net_cells.(net) in
    Array.length cells <= 2
    && Array.for_all (fun c -> c = c0 || c = c1) cells
  in
  let outs = ref 0 in
  let visit_out c =
    Array.iter
      (fun net ->
        if seen.(net) <> stamp then begin
          seen.(net) <- stamp;
          if not (pair_internal net) then Stdlib.incr outs
        end)
      (Hypergraph.cell h c).Hypergraph.outputs
  in
  visit_out c0;
  visit_out c1;
  let ins = ref 0 in
  let in_stamp = stamp + 1 in
  let visit_in c =
    Array.iter
      (fun net ->
        if seen.(net) <> stamp && seen.(net) <> in_stamp then begin
          seen.(net) <- in_stamp;
          Stdlib.incr ins
        end)
      (Hypergraph.cell h c).Hypergraph.inputs
  in
  visit_in c0;
  visit_in c1;
  (!ins, !outs)

(* Distinct-net count of a candidate merge: |nets(c0) ∪ nets(c1)|. Both
   full-net arrays are memoised on the cells, so this is O(degree). *)
let merged_net_count (h : Hypergraph.t) seen stamp c0 c1 =
  let count = ref 0 in
  let visit c =
    Array.iter
      (fun net ->
        if seen.(net) <> stamp then begin
          seen.(net) <- stamp;
          Stdlib.incr count
        end)
      (Hypergraph.cell_nets (Hypergraph.cell h c))
  in
  visit c0;
  visit c1;
  !count

let coarsen ?max_weight ?max_nets ~rng (h : Hypergraph.t) =
  let n = Hypergraph.num_cells h in
  (* Scratch for merged_net_count, stamped per query so it never needs
     clearing. *)
  let seen = Array.make h.Hypergraph.num_nets (-1) in
  let stamp = ref 0 in
  (* Connectivity scores between cells sharing nets: the classic
     1/(pins-1) weighting so huge nets contribute little. Scratch
     arrays instead of a per-cell hash table — scoring runs once per
     cell per level and is the coarsening hot loop at 100k cells. *)
  let score_arr = Array.make n 0.0 in
  let touched = Array.make n (-1) in
  let touched_len = ref 0 in
  let score_with cell =
    Array.iter
      (fun net ->
        let others = h.Hypergraph.net_cells.(net) in
        let pins = Array.length others in
        if pins > 1 then begin
          let w = 1.0 /. float_of_int (pins - 1) in
          Array.iter
            (fun o ->
              if o <> cell then begin
                if score_arr.(o) = 0.0 then begin
                  touched.(!touched_len) <- o;
                  Stdlib.incr touched_len
                end;
                score_arr.(o) <- score_arr.(o) +. w
              end)
            others
        end)
      (Hypergraph.cell_nets (Hypergraph.cell h cell))
  in
  let clear_scores () =
    for t = 0 to !touched_len - 1 do
      score_arr.(touched.(t)) <- 0.0
    done;
    touched_len := 0
  in
  let cluster_of = Array.make n (-1) in
  let order = Array.init n Fun.id in
  Netlist.Rng.shuffle rng order;
  let next_cluster = ref 0 in
  Array.iter
    (fun cell ->
      if cluster_of.(cell) < 0 then begin
        score_with cell;
        let pins c =
          let cc = Hypergraph.cell h c in
          ( Array.length cc.Hypergraph.inputs,
            Array.length cc.Hypergraph.outputs )
        in
        let in0, out0 = pins cell in
        let deg0 =
          Array.length (Hypergraph.cell_nets (Hypergraph.cell h cell))
        in
        let best = ref None in
        for t = 0 to !touched_len - 1 do
          let other = touched.(t) in
          let w = score_arr.(other) in
          (* The score comparison runs first: guards are only evaluated
             on candidates that would displace the incumbent, which
             turns the O(degree) net-union count from per-candidate into
             per-improvement. The winner is the highest-scoring
             candidate passing every guard; equal scores keep the
             earliest candidate in discovery order. *)
          let improves =
            match !best with Some (_, bw) -> w > bw | None -> true
          in
          if improves && cluster_of.(other) < 0 then begin
              (* Merged clusters must stay within the bit-mask pin
                 budget. The pin-count sums are a cheap sufficient
                 check; when they overflow the exact distinct unions
                 decide (shared support and internally-driven inputs
                 both shrink the true surface well below the sums). *)
              let in1, out1 = pins other in
              if
                (in0 + in1 <= Bitvec.max_width
                 && out0 + out1 <= Bitvec.max_width
                || (stamp := !stamp + 2;
                    let ins, outs =
                      merged_pin_counts h seen !stamp cell other
                    in
                    ins <= Bitvec.max_width && outs <= Bitvec.max_width))
                && (match max_weight with
                   | None -> true
                   | Some cap -> weight_ok ~cap h cell other)
                && (match max_nets with
                   | None -> true
                   | Some cap ->
                       (* Bounds before the exact count: the union is at
                          least max(deg0, deg1) and at most their sum. *)
                       let deg1 =
                         Array.length
                           (Hypergraph.cell_nets (Hypergraph.cell h other))
                       in
                       deg0 + deg1 <= cap
                       || max deg0 deg1 <= cap
                          && ((* advance past both stamps a preceding
                                [merged_pin_counts] may have used *)
                              stamp := !stamp + 2;
                              merged_net_count h seen !stamp cell other <= cap))
              then best := Some (other, w)
          end
        done;
        clear_scores ();
        let id = !next_cluster in
        incr next_cluster;
        cluster_of.(cell) <- id;
        match !best with
        | Some (mate, _) -> cluster_of.(mate) <- id
        | None -> ()
      end)
    order;
  let num_clusters = !next_cluster in
  (* Nets falling entirely inside one cluster vanish from the coarse
     graph: they can never be cut again, and dropping them keeps cluster
     pin counts (and F-M gain evaluation) small. *)
  let internal net =
    (not h.Hypergraph.net_external.(net))
    &&
    match h.Hypergraph.net_cells.(net) with
    | [||] -> true
    | cells ->
        let k = cluster_of.(cells.(0)) in
        Array.for_all (fun c -> cluster_of.(c) = k) cells
  in
  (* Build cluster cells; surviving nets are renumbered densely. *)
  let members = Array.make num_clusters [] in
  for cell = n - 1 downto 0 do
    members.(cluster_of.(cell)) <- cell :: members.(cluster_of.(cell))
  done;
  let net_map = Array.make h.Hypergraph.num_nets (-1) in
  let new_names = Netlist.Vec.create () in
  let map_net net =
    if net_map.(net) < 0 then
      net_map.(net) <-
        Netlist.Vec.push new_names h.Hypergraph.net_names.(net);
    net_map.(net)
  in
  let specs =
    Array.to_list
      (Array.mapi
         (fun k cells ->
           let outputs = Netlist.Vec.create () in
           let driven = Hashtbl.create 8 in
           List.iter
             (fun c ->
               Array.iter
                 (fun net ->
                   Hashtbl.replace driven net ();
                   if not (internal net) then
                     ignore (Netlist.Vec.push outputs (map_net net)))
                 (Hypergraph.cell h c).Hypergraph.outputs)
             cells;
           (* A cluster whose driven nets are all internal still needs one
              output pin to be a well-formed cell; an internal net touches
              only this cluster, so exposing it cannot create cut. *)
           if Netlist.Vec.length outputs = 0 then
             (match Hashtbl.fold (fun net () _ -> Some net) driven None with
             | Some net -> ignore (Netlist.Vec.push outputs (map_net net))
             | None -> ());
           let inputs = Netlist.Vec.create () in
           let seen = Hashtbl.create 8 in
           List.iter
             (fun c ->
               Array.iter
                 (fun net ->
                   if not (Hashtbl.mem driven net || Hashtbl.mem seen net)
                   then begin
                     Hashtbl.add seen net ();
                     ignore (Netlist.Vec.push inputs (map_net net))
                   end)
                 (Hypergraph.cell h c).Hypergraph.inputs)
             cells;
           let n_in = Netlist.Vec.length inputs in
           let area =
             List.fold_left
               (fun acc c -> acc + (Hypergraph.cell h c).Hypergraph.area)
               0 cells
           in
           let demand = Array.make Hypergraph.demand_arity 0 in
           List.iter
             (fun c ->
               let d = (Hypergraph.cell h c).Hypergraph.demand in
               for a = 0 to Array.length d - 1 do
                 demand.(a) <- demand.(a) + d.(a)
               done)
             cells;
           {
             Hypergraph.s_name = Printf.sprintf "cl%d" k;
             s_area = area;
             s_demand = demand;
             s_inputs = Netlist.Vec.to_array inputs;
             s_outputs = Netlist.Vec.to_array outputs;
             (* Clusters are opaque: every output depends on every input. *)
             s_supports =
               Array.make (Netlist.Vec.length outputs) (Bitvec.full n_in);
           })
         members)
  in
  let externals = ref [] in
  Array.iteri
    (fun net ext ->
      (* External nets always survive: every cell pin on them was kept
         (external nets are never internal). Only externals actually
         touched by cells exist in the coarse graph. *)
      if ext && net_map.(net) >= 0 then externals := net_map.(net) :: !externals)
    h.Hypergraph.net_external;
  let coarse =
    Hypergraph.create
      ~net_names:(Netlist.Vec.to_array new_names)
      ~num_nets:(Netlist.Vec.length new_names)
      ~external_nets:!externals specs
  in
  (coarse, cluster_of)

type hierarchy = {
  coarsest : Hypergraph.t;
  levels : (Hypergraph.t * int array) list;
}

let num_levels hier = List.length hier.levels

let project_labels ~map labels =
  Array.init (Array.length map) (fun c -> labels.(map.(c)))

let hierarchy ?(coarsest = 150) ?(max_levels = 12) ?(stall_ratio = 0.9)
    ?max_weight ?max_nets ?(wrap = fun _ f -> f ()) ~rng h =
  (* [levels] accumulates coarsest-side-first: the head pair's map sends
     its (fine) graph's cells into the coarsest graph's clusters, and the
     last pair's graph is the original [h] — exactly the order an
     uncoarsening walk consumes. *)
  let rec build levels h_cur depth =
    if Hypergraph.num_cells h_cur <= coarsest || depth >= max_levels then
      (levels, h_cur)
    else begin
      let coarse, map =
        wrap depth (fun () -> coarsen ?max_weight ?max_nets ~rng h_cur)
      in
      if
        float_of_int (Hypergraph.num_cells coarse)
        >= stall_ratio *. float_of_int (Hypergraph.num_cells h_cur)
      then (levels, h_cur) (* matching stalled *)
      else build ((h_cur, map) :: levels) coarse (depth + 1)
    end
  in
  let levels, coarsest_h = build [] h 0 in
  { coarsest = coarsest_h; levels }

let multilevel_init ?(coarsest = 150) ?(max_levels = 12) ~rng cfg h =
  let plain_cfg = { cfg with Fm.replication = `None } in
  let hier = hierarchy ~coarsest ~max_levels ~rng h in
  (* Initial partition of the coarsest graph: random halves + F-M. *)
  let st = Fm.random_state rng hier.coarsest in
  ignore (Fm.run plain_cfg st);
  (* Uncoarsening: project the assignment, refine at each level. *)
  let rec project st_coarse = function
    | [] -> st_coarse
    | (h_fine, map) :: rest ->
        let st_fine =
          Partition_state.create h_fine ~init_on_b:(fun c ->
              match Partition_state.single_side st_coarse map.(c) with
              | Some Partition_state.B -> true
              | _ -> false)
        in
        ignore (Fm.run plain_cfg st_fine);
        project st_fine rest
  in
  project st hier.levels
