(* Heavy-edge matching coarsening and the multilevel V-cycle. *)

let coarsen ~rng (h : Hypergraph.t) =
  let n = Hypergraph.num_cells h in
  (* Connectivity scores between cells sharing nets: the classic
     1/(pins-1) weighting so huge nets contribute little. *)
  let score_with cell =
    let scores = Hashtbl.create 16 in
    Array.iter
      (fun net ->
        let others = h.Hypergraph.net_cells.(net) in
        let pins = Array.length others in
        if pins > 1 then begin
          let w = 1.0 /. float_of_int (pins - 1) in
          Array.iter
            (fun o ->
              if o <> cell then
                Hashtbl.replace scores o
                  (w +. try Hashtbl.find scores o with Not_found -> 0.0))
            others
        end)
      (Hypergraph.cell_nets (Hypergraph.cell h cell));
    scores
  in
  let cluster_of = Array.make n (-1) in
  let order = Array.init n Fun.id in
  Netlist.Rng.shuffle rng order;
  let next_cluster = ref 0 in
  Array.iter
    (fun cell ->
      if cluster_of.(cell) < 0 then begin
        let scores = score_with cell in
        let pins c =
          let cc = Hypergraph.cell h c in
          ( Array.length cc.Hypergraph.inputs,
            Array.length cc.Hypergraph.outputs )
        in
        let in0, out0 = pins cell in
        let best = ref None in
        Hashtbl.iter
          (fun other w ->
            (* Merged clusters must stay within the bit-mask pin budget
               (inputs can only shrink from the sum when nets are shared,
               so the sum is a safe over-approximation). *)
            let in1, out1 = pins other in
            if
              cluster_of.(other) < 0
              && in0 + in1 <= Bitvec.max_width
              && out0 + out1 <= Bitvec.max_width
            then
              match !best with
              | Some (_, bw) when bw >= w -> ()
              | _ -> best := Some (other, w))
          scores;
        let id = !next_cluster in
        incr next_cluster;
        cluster_of.(cell) <- id;
        match !best with
        | Some (mate, _) -> cluster_of.(mate) <- id
        | None -> ()
      end)
    order;
  let num_clusters = !next_cluster in
  (* Nets falling entirely inside one cluster vanish from the coarse
     graph: they can never be cut again, and dropping them keeps cluster
     pin counts (and F-M gain evaluation) small. *)
  let internal net =
    (not h.Hypergraph.net_external.(net))
    &&
    match h.Hypergraph.net_cells.(net) with
    | [||] -> true
    | cells ->
        let k = cluster_of.(cells.(0)) in
        Array.for_all (fun c -> cluster_of.(c) = k) cells
  in
  (* Build cluster cells; surviving nets are renumbered densely. *)
  let members = Array.make num_clusters [] in
  for cell = n - 1 downto 0 do
    members.(cluster_of.(cell)) <- cell :: members.(cluster_of.(cell))
  done;
  let net_map = Array.make h.Hypergraph.num_nets (-1) in
  let new_names = Netlist.Vec.create () in
  let map_net net =
    if net_map.(net) < 0 then
      net_map.(net) <-
        Netlist.Vec.push new_names h.Hypergraph.net_names.(net);
    net_map.(net)
  in
  let specs =
    Array.to_list
      (Array.mapi
         (fun k cells ->
           let outputs = Netlist.Vec.create () in
           let driven = Hashtbl.create 8 in
           List.iter
             (fun c ->
               Array.iter
                 (fun net ->
                   Hashtbl.replace driven net ();
                   if not (internal net) then
                     ignore (Netlist.Vec.push outputs (map_net net)))
                 (Hypergraph.cell h c).Hypergraph.outputs)
             cells;
           (* A cluster whose driven nets are all internal still needs one
              output pin to be a well-formed cell; an internal net touches
              only this cluster, so exposing it cannot create cut. *)
           if Netlist.Vec.length outputs = 0 then
             (match Hashtbl.fold (fun net () _ -> Some net) driven None with
             | Some net -> ignore (Netlist.Vec.push outputs (map_net net))
             | None -> ());
           let inputs = Netlist.Vec.create () in
           let seen = Hashtbl.create 8 in
           List.iter
             (fun c ->
               Array.iter
                 (fun net ->
                   if not (Hashtbl.mem driven net || Hashtbl.mem seen net)
                   then begin
                     Hashtbl.add seen net ();
                     ignore (Netlist.Vec.push inputs (map_net net))
                   end)
                 (Hypergraph.cell h c).Hypergraph.inputs)
             cells;
           let n_in = Netlist.Vec.length inputs in
           let area =
             List.fold_left
               (fun acc c -> acc + (Hypergraph.cell h c).Hypergraph.area)
               0 cells
           in
           let demand = Array.make Hypergraph.demand_arity 0 in
           List.iter
             (fun c ->
               let d = (Hypergraph.cell h c).Hypergraph.demand in
               for a = 0 to Array.length d - 1 do
                 demand.(a) <- demand.(a) + d.(a)
               done)
             cells;
           {
             Hypergraph.s_name = Printf.sprintf "cl%d" k;
             s_area = area;
             s_demand = demand;
             s_inputs = Netlist.Vec.to_array inputs;
             s_outputs = Netlist.Vec.to_array outputs;
             (* Clusters are opaque: every output depends on every input. *)
             s_supports =
               Array.make (Netlist.Vec.length outputs) (Bitvec.full n_in);
           })
         members)
  in
  let externals = ref [] in
  Array.iteri
    (fun net ext ->
      (* External nets always survive: every cell pin on them was kept
         (external nets are never internal). Only externals actually
         touched by cells exist in the coarse graph. *)
      if ext && net_map.(net) >= 0 then externals := net_map.(net) :: !externals)
    h.Hypergraph.net_external;
  let coarse =
    Hypergraph.create
      ~net_names:(Netlist.Vec.to_array new_names)
      ~num_nets:(Netlist.Vec.length new_names)
      ~external_nets:!externals specs
  in
  (coarse, cluster_of)

let multilevel_init ?(coarsest = 150) ?(max_levels = 12) ~rng cfg h =
  let plain_cfg = { cfg with Fm.replication = `None } in
  (* Coarsening phase. *)
  let rec build levels h_cur depth =
    if Hypergraph.num_cells h_cur <= coarsest || depth >= max_levels then
      (levels, h_cur)
    else begin
      let coarse, map = coarsen ~rng h_cur in
      if Hypergraph.num_cells coarse >= Hypergraph.num_cells h_cur * 9 / 10
      then (levels, h_cur) (* matching stalled *)
      else build ((h_cur, map) :: levels) coarse (depth + 1)
    end
  in
  let levels, coarsest_h = build [] h 0 in
  (* Initial partition of the coarsest graph: random halves + F-M. *)
  let st = Fm.random_state rng coarsest_h in
  ignore (Fm.run plain_cfg st);
  (* Uncoarsening: project the assignment, refine at each level. *)
  let rec project st_coarse = function
    | [] -> st_coarse
    | (h_fine, map) :: rest ->
        let st_fine =
          Partition_state.create h_fine ~init_on_b:(fun c ->
              match Partition_state.single_side st_coarse map.(c) with
              | Some Partition_state.B -> true
              | _ -> false)
        in
        ignore (Fm.run plain_cfg st_fine);
        project st_fine rest
  in
  project st levels
