(** Fiduccia–Mattheyses bipartitioning, with optional functional
    replication (Section III.D of the paper).

    The engine runs F-M passes over a {!Partition_state}: each pass
    tentatively applies the best legal operation per cell at most once
    (operations are mask changes: moves, output migrations,
    un-replications — see {!Gain.best_mask_change}), then rolls back to the
    best prefix. Gains are exact deltas from {!Partition_state.eval}; after
    each applied operation only the cells sharing a net with the moved cell
    are re-scored, preserving the F-M cost profile (the paper reports a
    34% CPU surcharge for replication; this implementation is in the same
    regime).

    With [replication = `None] and [objective = Cut] this is the classic
    min-cut F-M of the paper's first experiment; [`Functional T] enables
    replication for cells with [psi >= T]. *)

type objective = Cut | Terminals

val objective_value : objective -> Partition_state.t -> int
(** [Cut]: nets spanning both sides. [Terminals]: total IOBs consumed by
    the two sides ([terminals A + terminals B]), the k-way driver's view of
    eq. (2). *)

type score = int * int * int
(** [(penalty, objective, preference)]; lexicographically smaller is
    better. A prefix with penalty 0 satisfies the caller's feasibility
    constraints; [preference] breaks ties between equally good prefixes
    (the device-window config uses it to prefer fuller devices, which
    lowers total cost). *)

(** The engine keeps every unlocked cell's best operation cached (gain
    buckets) and, after each applied move, refreshes only the cells on
    nets reported state-changed by {!Partition_state.apply} — the
    criticality-filtered incremental rescoring that makes per-move cost
    proportional to the move's actual blast radius instead of the moved
    cell's whole neighbourhood. Epoch stamps deduplicate the per-move
    dirty set; candidate evaluation runs through
    {!Gain.iter_masks} + {!Partition_state.eval_into} into preallocated
    scratch, so the steady-state loop does not allocate per candidate. *)

type config = {
  objective : objective;
  replication : [ `None | `Functional of int ];
  max_passes : int;
  area_ok : int -> int -> bool;
      (** hard legality of intermediate states: [area_ok area_a area_b] *)
  score : Partition_state.t -> score;
      (** prefix quality; the pass rolls back to the best-scoring prefix *)
  should_stop : unit -> bool;
      (** cooperative-cancellation hook, polled between passes (never
          mid-pass, so an abort still leaves the state at a best prefix
          and the "score never worsens" contract holds). Defaults to
          [fun () -> false]; the default never changes behaviour. The
          service daemon points it at a cancel flag / deadline check. *)
  gain_mode : [ `Eager | `Lazy ];
      (** When to refresh the gains of cells invalidated by a move.
          [`Eager] (the default) rescores each affected cell once per move
          (epoch-deduplicated), keeping every bucket entry exact.
          [`Lazy] defers: affected cells are only marked dirty and
          rescored when the bucket scan first inspects them, which skips
          rescoring cells that are never considered — at the price of an
          inexact pick order (a dirty cell whose true gain {e rose} can be
          passed over until inspected). Both modes are deterministic and
          keep the per-pass rollback contract; only [`Eager] satisfies the
          oracle invariant below. *)
  oracle : bool;
      (** Debugging mode: after every applied move, recompute from scratch
          the best op of every unlocked cell sharing a net with the moved
          cell (the complete set whose gains can change — see
          {!Partition_state.iter_changed_nets}) and compare with the
          incrementally maintained op, failing loudly on any mismatch.
          Decisions are byte-identical to a non-oracle run; only the cost
          changes (roughly the pre-filtering engine's). Also forced
          process-wide by the environment variable [FPGAPART_FM_ORACLE=1].
          Meaningful with [`Eager] gains (lazy-dirty cells are stale by
          design and skipped). *)
  active : int -> bool;
      (** Move eligibility per cell. Cells for which it returns [false]
          are pre-locked at the start of every pass: never rescored, never
          bucketed, never moved — they participate only as fixed context.
          The warm-start path points this at the edit's dirty-cell set so
          an incremental pass costs O(blast radius), not O(cells). The
          default accepts every cell and is provably inert: the pre-lock
          branch is never taken and the pass sequence is byte-identical to
          the unrestricted engine (the oracle identity gate in
          [tools/check_perf.sh] enforces exactly this). *)
}
(** @deprecated Constructing this record literally is deprecated — new
    knobs would break literal builders. Use {!Config.make} or one of the
    scenario builders ({!balance_config}, {!device_config},
    {!two_device_config}), which default everything defaultable. The
    record stays exposed for field access and functional update. *)

(** Labelled constructor for {!config}. *)
module Config : sig
  type t = config

  val make :
    ?objective:objective ->
    ?replication:[ `None | `Functional of int ] ->
    ?max_passes:int ->
    ?should_stop:(unit -> bool) ->
    ?gain_mode:[ `Eager | `Lazy ] ->
    ?oracle:bool ->
    ?active:(int -> bool) ->
    area_ok:(int -> int -> bool) ->
    score:(Partition_state.t -> score) ->
    unit ->
    t
  (** Defaults: [Cut], [`None], 12 passes, never stop, [`Eager] gains, no
      oracle, every cell active. [area_ok] and [score] have no meaningful
      default — pick a scenario builder if you don't want to write them.

      Raises [Invalid_argument] on a non-positive [max_passes]: a budget
      of zero passes silently degrades every caller to "return the initial
      state", which is never what was meant. *)
end

val balance_config :
  ?objective:objective ->
  ?replication:[ `None | `Functional of int ] ->
  ?max_passes:int ->
  ?gain_mode:[ `Eager | `Lazy ] ->
  ?slack:float ->
  total_area:int ->
  unit ->
  config
(** The paper's first experiment: minimise [objective] subject to
    [max (area A) (area B) <= ceil ((1 + slack) * total_area / 2)]
    (slack defaults to 0.10; replication can grow the total, so exact
    halves are not attainable in general). *)

type device_bounds = {
  min_clbs : int;
  max_clbs : int;
  max_terminals : int;
  res_max : int array;
      (** per-axis caps over the demand axes ([Hypergraph.demand_arity]
          long, axis 0 ignored — the CLB window already covers it), or
          [[||]] for "primary axis only" (the paper's scalar model).
          Violations are charged to the penalty leg of the score exactly
          like the terminal budget, never to [area_ok], so the hot loop's
          legality check stays scalar. *)
}
(** @deprecated Constructing this record literally is deprecated — new
    bound axes would break literal builders (this redesign did exactly
    that). Use {!bounds}. The record stays exposed for field access. *)

val bounds :
  ?res_max:int array ->
  min_clbs:int ->
  max_clbs:int ->
  max_terminals:int ->
  unit ->
  device_bounds
(** Labelled constructor for {!device_bounds}; [res_max] defaults to
    [[||]]. Raises [Invalid_argument] on a negative or inverted CLB
    window, a negative terminal budget, or a [res_max] that is neither
    empty nor [Hypergraph.demand_arity] long. *)

val device_config :
  ?objective:objective ->
  ?replication:[ `None | `Functional of int ] ->
  ?max_passes:int ->
  ?should_stop:(unit -> bool) ->
  bounds:device_bounds ->
  unit ->
  config
(** k-way inner bipartition: side [A] must fit a device window
    ([min_clbs <= area A <= max_clbs], [terminals A <= max_terminals]);
    penalty measures the violation, so passes hill-climb into
    feasibility. *)

val two_device_config :
  ?objective:objective ->
  ?replication:[ `None | `Functional of int ] ->
  ?max_passes:int ->
  ?should_stop:(unit -> bool) ->
  ?active:(int -> bool) ->
  bounds_a:device_bounds ->
  bounds_b:device_bounds ->
  unit ->
  config
(** Pairwise refinement between two already-assigned devices: both sides
    must stay inside their device windows. Defaults the objective to
    [Terminals] — with the devices fixed, total IOB usage is exactly what
    eq. (2) charges for the pair. [active] restricts the movable cells
    (see the {!config} field); the warm-start refinement passes the dirty
    predicate here. *)

val run : ?obs:Obs.t -> config -> Partition_state.t -> score
(** Improve the state in place until a pass brings no improvement (or
    [max_passes]); returns the final score. The state is left at the best
    prefix found. Each pass rolls back to its best prefix, so the score
    never worsens.

    When [obs] is a collecting sink (default {!Obs.noop}, which records
    nothing and costs nothing), every pass — including the final
    non-improving one — emits one ["fm.pass"] event with fields [pass]
    (0-based index), [applied] (ops tentatively applied, at most one per
    cell so ≤ the cell count), [rolled_back] (ops undone, ≤ [applied]),
    [repl_attempted]/[repl_accepted] (replication-family ops applied /
    surviving rollback), the post-rollback [cut], [terminals], [area_a],
    [area_b] trajectory, and [improved]. Counters [fm.passes],
    [fm.applied_ops] and [fm.rolled_back_ops] accumulate across passes.

    Each pass additionally runs inside a span named ["passN"], so a
    tracing sink records one wall-clock span (with GC delta) per F-M pass;
    and three histograms accumulate: ["fm.gain"] (the gain of every
    applied operation), ["fm.scan_len"] (candidates inspected per bucket
    scan before one passed the legality test) and ["fm.moves_per_sec"]
    (per non-empty pass, applied ops over the pass's wall time — a
    wall-derived quantity, masked by {!Obs.Snapshot.scrub_elapsed} like
    the [_secs] timers). The counter ["fm.rescored_cells"] accumulates the
    number of best-op recomputations triggered by applied moves (pass
    initialisation excluded) — the direct measure of what incremental
    rescoring saves, and deterministic for a given seed. *)

val run_staged : ?obs:Obs.t -> config -> Partition_state.t -> score
(** Replication as the paper deploys it: an {e extension} of the
    traditional F-M heuristic. First converge with plain moves
    ([replication = `None]), then continue with the configured replication
    operations from that solution. Since passes never worsen the score,
    the staged result is never worse than plain F-M alone. Equivalent to
    {!run} when the config has no replication. With a collecting [obs], a
    ["fm.stage"] event separates the plain and replication stages. *)

val random_state : Netlist.Rng.t -> Hypergraph.t -> Partition_state.t
(** Fresh state with a uniformly random half/half assignment (by cell
    count), the multi-start initialisation of the paper's 20-run
    experiments. *)
