open Netlist

(* One future CLB output: the signal of [out_node], computed as [table]
   over [support_nodes], optionally through a flip-flop. *)
type slot = {
  out_node : int;
  support_nodes : int array;
  table : int;
  registered : bool;
}

let identity_table = 0b10 (* f(x) = x *)

let run ?(pair = true) ?(pair_disjoint = true) c cover =
  let num = Circuit.num_nodes c in
  let is_po = Array.make num false in
  Array.iter (fun o -> is_po.(o) <- true) c.Circuit.outputs;
  let lut_consumed = Array.make (Array.length cover.Cover.luts) false in
  let slots = Vec.create () in
  let const_needed = Array.make num false in
  let note_const f =
    match (Circuit.node c f).Circuit.kind with
    | Gate.Const0 | Gate.Const1 -> const_needed.(f) <- true
    | _ -> ()
  in
  (* Flip-flops first: fuse with their D-driver LUT when legal. *)
  for q = 0 to num - 1 do
    let nd = Circuit.node c q in
    if Gate.equal nd.Circuit.kind Gate.Dff then begin
      let d = nd.Circuit.fanins.(0) in
      let lut_idx =
        if Gate.is_combinational (Circuit.node c d).Circuit.kind then
          cover.Cover.lut_of_root.(d)
        else -1
      in
      let fusible =
        lut_idx >= 0
        && (not is_po.(d))
        && Array.length c.Circuit.fanouts.(d) = 1
      in
      if fusible then begin
        let lut = cover.Cover.luts.(lut_idx) in
        lut_consumed.(lut_idx) <- true;
        Array.iter note_const lut.Cover.support;
        ignore
          (Vec.push slots
             {
               out_node = q;
               support_nodes = lut.Cover.support;
               table = lut.Cover.table;
               registered = true;
             })
      end
      else begin
        note_const d;
        ignore
          (Vec.push slots
             {
               out_node = q;
               support_nodes = [| d |];
               table = identity_table;
               registered = true;
             })
      end
    end
  done;
  (* Remaining LUTs are plain combinational outputs. *)
  Array.iteri
    (fun idx lut ->
      if not lut_consumed.(idx) then begin
        Array.iter note_const lut.Cover.support;
        ignore
          (Vec.push slots
             {
               out_node = lut.Cover.root;
               support_nodes = lut.Cover.support;
               table = lut.Cover.table;
               registered = false;
             })
      end)
    cover.Cover.luts;
  (* Constants referenced as signals (support pins, PO drivers, FF data)
     get a zero-input generator CLB output. *)
  Array.iter
    (fun o ->
      match (Circuit.node c o).Circuit.kind with
      | Gate.Const0 | Gate.Const1 -> const_needed.(o) <- true
      | _ -> ())
    c.Circuit.outputs;
  for f = 0 to num - 1 do
    if const_needed.(f) then begin
      let table =
        match (Circuit.node c f).Circuit.kind with
        | Gate.Const1 -> 1
        | _ -> 0
      in
      ignore
        (Vec.push slots
           { out_node = f; support_nodes = [||]; table; registered = false })
    end
  done;
  (* Net numbering: primary inputs first, then one net per slot output. *)
  let net_of_node = Array.make num (-1) in
  let net_names = Vec.create () in
  let fresh_net node =
    if net_of_node.(node) < 0 then
      net_of_node.(node) <-
        Vec.push net_names (Circuit.node c node).Circuit.name
  in
  Array.iter fresh_net c.Circuit.inputs;
  Vec.iter (fun s -> fresh_net s.out_node) slots;
  let pi_nets = Array.map (fun i -> net_of_node.(i)) c.Circuit.inputs in
  let po_nets =
    Array.map
      (fun o ->
        if net_of_node.(o) < 0 then
          invalid_arg
            ("Pack.run: primary output "
            ^ (Circuit.node c o).Circuit.name
            ^ " has no mapped net");
        net_of_node.(o))
      c.Circuit.outputs
  in
  (* Pair slots into CLBs. *)
  let slot_nets s =
    let nets = Array.map (fun f -> net_of_node.(f)) s.support_nodes in
    Array.iter
      (fun n -> if n < 0 then invalid_arg "Pack.run: unmapped support net")
      nets;
    nets
  in
  let n_slots = Vec.length slots in
  let partner = Array.make n_slots (-1) in
  if pair then begin
    (* Sorted distinct input-net arrays per slot; shared count by merge. *)
    let sorted_nets =
      Array.init n_slots (fun i ->
          let nets = slot_nets (Vec.get slots i) in
          let nets = Array.copy nets in
          Array.sort compare nets;
          nets)
    in
    let shared_count a b =
      let i = ref 0 and j = ref 0 and s = ref 0 in
      let na = Array.length a and nb = Array.length b in
      while !i < na && !j < nb do
        if a.(!i) = b.(!j) then begin
          incr s;
          incr i;
          incr j
        end
        else if a.(!i) < b.(!j) then incr i
        else incr j
      done;
      !s
    in
    (* Candidate restriction: a feasible partner either shares a net with us
       or has few enough inputs that the disjoint union fits. Index slots by
       net for the first kind; scan a small-input bucket for the second. *)
    let by_net = Hashtbl.create 256 in
    for i = 0 to n_slots - 1 do
      Array.iter
        (fun n ->
          Hashtbl.replace by_net n
            (i :: (try Hashtbl.find by_net n with Not_found -> [])))
        sorted_nets.(i)
    done;
    (* Small slots (≤ 2 inputs) bucketed by input count, ascending slot
       index, with a lazily advancing cursor per bucket. Scanning every
       small slot for every candidate (the obvious formulation) is
       O(slots x small-slots) — the pairing then dominates the whole
       mapping at 100k+ cells. Only a bucket's first live member can ever
       win from this pool, so considering just the heads is exact: a
       candidate sharing a net with the current slot is already reached
       through [by_net] (repeat consideration of the same slot cannot
       displace an equal (shared, union) incumbent), and among the
       zero-shared remainder the union size depends only on the bucket, so
       the earliest live member beats every deeper one under the
       keep-first tie-break. *)
    let small_buckets =
      let buckets = Array.make 3 [] in
      for i = n_slots - 1 downto 0 do
        let ni = Array.length sorted_nets.(i) in
        if ni <= 2 then buckets.(ni) <- i :: buckets.(ni)
      done;
      Array.map Array.of_list buckets
    in
    let cursors = Array.make 3 0 in
    for i = 0 to n_slots - 1 do
      if partner.(i) = -1 then begin
        let nets_i = sorted_nets.(i) in
        let ni = Array.length nets_i in
        let best = ref None in
        let consider j =
          if j <> i && partner.(j) = -1 then begin
            let nets_j = sorted_nets.(j) in
            let shared = shared_count nets_i nets_j in
            let u = ni + Array.length nets_j - shared in
            if u <= Mapped.max_inputs then
              match !best with
              | Some (_, s, u') when s > shared || (s = shared && u' <= u) -> ()
              | _ -> best := Some (j, shared, u)
          end
        in
        Array.iter
          (fun n -> List.iter consider (Hashtbl.find by_net n))
          nets_i;
        if pair_disjoint && ni + 2 <= Mapped.max_inputs then
          for b = 0 to 2 do
            let arr = small_buckets.(b) in
            let len = Array.length arr in
            (* Matched slots never revive, so the cursor only moves
               forward; the scans below are amortised O(1). *)
            while
              cursors.(b) < len && partner.(arr.(cursors.(b))) <> -1
            do
              cursors.(b) <- cursors.(b) + 1
            done;
            if cursors.(b) < len then begin
              let head = arr.(cursors.(b)) in
              if head <> i then consider head
              else begin
                (* The head is the slot being matched: its first live
                   successor stands in (without moving the cursor — [i]
                   itself is still live). *)
                let k = ref (cursors.(b) + 1) in
                while !k < len && partner.(arr.(!k)) <> -1 do incr k done;
                if !k < len then consider arr.(!k)
              end
            end
          done;
        match !best with
        | Some (j, _, _) ->
            partner.(i) <- j;
            partner.(j) <- i
        | None -> partner.(i) <- -2 (* stays single *)
      end
    done
  end;
  (* Materialise CLBs. *)
  let clbs = Vec.create () in
  let emit members =
    let input_set = Hashtbl.create 8 in
    let inputs = Vec.create () in
    List.iter
      (fun s ->
        Array.iter
          (fun n ->
            if not (Hashtbl.mem input_set n) then
              Hashtbl.add input_set n (Vec.push inputs n))
          (slot_nets s))
      members;
    let inputs = Vec.to_array inputs in
    let outputs =
      List.map
        (fun s ->
          {
            Mapped.net = net_of_node.(s.out_node);
            table = s.table;
            pins =
              Array.map (fun f -> Hashtbl.find input_set net_of_node.(f))
                s.support_nodes;
            registered = s.registered;
          })
        members
      |> Array.of_list
    in
    let name =
      members
      |> List.map (fun s -> (Circuit.node c s.out_node).Circuit.name)
      |> String.concat "+"
    in
    ignore (Vec.push clbs { Mapped.name; inputs; outputs })
  in
  for i = 0 to n_slots - 1 do
    if partner.(i) < 0 then emit [ Vec.get slots i ]
    else if partner.(i) > i then emit [ Vec.get slots i; Vec.get slots partner.(i) ]
  done;
  {
    Mapped.clbs = Vec.to_array clbs;
    num_nets = Vec.length net_names;
    net_names = Vec.to_array net_names;
    pi_nets;
    po_nets;
    name = c.Circuit.name;
  }
