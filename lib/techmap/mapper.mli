(** Technology mapping pipeline: gate-level circuit to XC3000 CLBs.

    [Decompose] (fanin reduction) → [Cover] (4-LUT covering) → [Pack]
    (FF absorption + CLB pairing). The result plays the role of the
    XACT-mapped netlists of the paper's Table II. *)

type options = {
  lut_inputs : int;   (** LUT input budget; 4 for XC3000 *)
  pair : bool;        (** pack two outputs per CLB when they fit *)
  pair_disjoint : bool;
      (** let the pairing fall back to slots sharing {e no} input nets
          when nothing better fits. Saves CLBs (the paper's device sizes
          reward every saved cell) but each such CLB welds two unrelated
          logic cones together; the scale suite turns it off because tens
          of thousands of random welds erase the Rent profile the
          partitioner is being measured on. *)
}

val default_options : options

val map : ?options:options -> Netlist.Circuit.t -> Mapped.t
(** Map a circuit. The output is validated ({!Mapped.validate}) before
    being returned; a failure here is a bug and raises [Invalid_argument].
    Functional equivalence with the source is NOT checked here (it costs
    simulation time); use {!Mapped.equivalent} in tests. *)

val to_hypergraph : Mapped.t -> Hypergraph.t
(** The partitioning view of a mapped netlist: one unit-area cell per CLB
    with per-output adjacency vectors; chip-pad nets (primary inputs and
    outputs) are external. *)
