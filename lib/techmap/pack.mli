(** CLB packing: assemble covered LUTs and flip-flops into XC3000 CLBs.

    Two packing steps follow LUT covering:
    - {e FF absorption}: a flip-flop whose [D] is computed by a LUT read by
      nothing else is fused with it into one registered CLB output; other
      flip-flops become pass-through registered outputs;
    - {e pairing}: two outputs share a CLB when their combined distinct
      input nets fit the CLB's five input pins, greedily maximising shared
      inputs. Pairing produces the two-output cells whose per-output
      supports drive functional replication. *)

val run :
  ?pair:bool -> ?pair_disjoint:bool -> Netlist.Circuit.t -> Cover.cover ->
  Mapped.t
(** [run c cover] packs the cover of the (decomposed) circuit [c].
    [pair] defaults to [true]; with [false] every output gets its own CLB
    (ablation baseline). [pair_disjoint] (default [true]) additionally
    allows pairing slots that share no input nets when their pin counts
    fit; see {!Mapper.options}. *)
