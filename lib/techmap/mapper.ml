type options = {
  lut_inputs : int;
  pair : bool;
  pair_disjoint : bool;
}

let default_options = { lut_inputs = 4; pair = true; pair_disjoint = true }

let map ?(options = default_options) c =
  let decomposed = Decompose.run c in
  let cover = Cover.run ~k:options.lut_inputs decomposed in
  let mapped =
    Pack.run ~pair:options.pair ~pair_disjoint:options.pair_disjoint
      decomposed cover
  in
  match Mapped.validate mapped with
  | Ok () -> mapped
  | Error msg -> invalid_arg ("Mapper.map: produced an illegal netlist: " ^ msg)

let to_hypergraph (m : Mapped.t) =
  let externals =
    Array.to_list m.Mapped.pi_nets @ Array.to_list m.Mapped.po_nets
    |> List.sort_uniq compare
  in
  let specs =
    Array.to_list m.Mapped.clbs
    |> List.map (fun (clb : Mapped.clb) ->
           (* Demand vector: 1 CLB plus one FF per registered output (the
              XC3000 CLB hosts two). Purely combinational CLBs keep the
              1-ary vector, so the scalar objectives see the same shape
              as before. *)
           let ffs =
             Array.fold_left
               (fun acc (o : Mapped.output) ->
                 if o.Mapped.registered then acc + 1 else acc)
               0 clb.Mapped.outputs
           in
           {
             Hypergraph.s_name = clb.Mapped.name;
             s_area = 1;
             s_demand = (if ffs = 0 then [||] else [| 1; ffs |]);
             s_inputs = clb.Mapped.inputs;
             s_outputs = Array.map (fun o -> o.Mapped.net) clb.Mapped.outputs;
             s_supports =
               Array.mapi (fun o _ -> Mapped.support_mask clb o)
                 clb.Mapped.outputs;
           })
  in
  Hypergraph.create ~net_names:m.Mapped.net_names ~num_nets:m.Mapped.num_nets
    ~external_nets:externals specs
