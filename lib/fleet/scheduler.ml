module J = Obs.Json
module P = Service.Protocol
module C = Service.Client
module Log = Obs.Log
module ME = Obs.Metrics_export

type config = {
  socket_path : string;
  workers : int;
  worker_exe : string;
  queue_cap : int;
  tenant_weights : (string * int) list;
  cache_cap : int;
  cache_dir : string option;
  timeout : float option;
  jobs : int;
  log : Log.t;
}

let default_config ~socket_path ~workers ~worker_exe =
  {
    socket_path;
    workers;
    worker_exe;
    queue_cap = 64;
    tenant_weights = [];
    cache_cap = 64;
    cache_dir = None;
    timeout = None;
    jobs = 1;
    log = Log.null;
  }

(* ------------------------------------------------------------------ *)
(* State                                                              *)
(* ------------------------------------------------------------------ *)

type wstate = W_starting | W_idle | W_busy | W_dead

type worker = {
  w_id : int;
  w_socket : string;
  mutable w_pid : int;  (* -1 once reaped *)
  mutable w_state : wstate;
  mutable w_job : int option;  (* scheduler job id in flight *)
  mutable w_restarts : int;
  mutable w_backoff : float;  (* next respawn delay, seconds *)
  mutable w_not_before : float;  (* wall clock gating the respawn *)
}

(* One leg of a portfolio race. *)
type racer = {
  rc_worker : int;
  mutable rc_wjob : int option;  (* worker-side job id, for cancels *)
  mutable rc_outcome :
    [ `Pending | `Doc of J.t | `Err of string * string | `Lost ];
}

type jstate =
  | Queued
  | Dispatched
  | JDone of J.t
  | JFailed of { code : string; msg : string }
  | JCancelled

type sjob = {
  id : int;
  name : string;
  mutable key : string;  (* rewritten to the reply digest for resubmits *)
  format : P.format;
  netlist : string;
  options : Core.Kway.options;
  envelope : P.envelope;
  received_at : float;
  decode_ms : int;
  mutable enqueued_at : float;
  mutable queue_wait_ms : int;
  mutable dispatched_at : float;
  mutable run_ms : int;
  mutable total_ms : int;
  mutable requeued : bool;
  mutable cancel_requested : bool;
  mutable worker_ref : (int * int) option;  (* (worker id, worker job id) *)
  mutable racers : racer list;  (* non-empty only for portfolio jobs *)
  mutable state : jstate;
}

type t = {
  cfg : config;
  mutex : Mutex.t;
  cond : Condition.t;
  obs : Obs.t;
  log : Log.t;
  slo_queue_wait : ME.Slo.t;
  slo_e2e : ME.Slo.t;
  started_at : float;
  fq : sjob Fair_queue.t;
  jobs_tbl : (int, sjob) Hashtbl.t;
  cache : J.t Service.Lru.t;
  disk : Disk_cache.t option;
  affinity : (string, int) Hashtbl.t;  (* digest -> worker that computed it *)
  workers : worker array;
  mutable next_id : int;
  mutable stopping : bool;
  mutable supervising : bool;
  mutable open_conns : Unix.file_descr list;
}

let with_lock t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let ms_since t0 =
  int_of_float (Float.round ((Obs.Clock.wall () -. t0) *. 1000.))

let state_string = function
  | Queued -> P.state_queued
  | Dispatched -> P.state_running
  | JDone _ -> P.state_done
  | JFailed _ -> P.state_failed
  | JCancelled -> P.state_cancelled

let corr (job : sjob) =
  let d =
    if String.length job.key > 12 then String.sub job.key 0 12 else job.key
  in
  Printf.sprintf "%s:%d" d job.id

let job_fields (job : sjob) =
  [ ("job", J.Int job.id); ("corr", J.String (corr job)) ]

let timings_json (job : sjob) =
  J.Obj
    [
      ("decode_ms", J.Int job.decode_ms);
      ("queue_wait_ms", J.Int job.queue_wait_ms);
      ("run_ms", J.Int job.run_ms);
      ("encode_ms", J.Int 0);
      ("total_ms", J.Int job.total_ms);
    ]

(* Caller holds the lock. *)
let finish_job t (job : sjob) =
  job.total_ms <- ms_since job.received_at;
  Obs.observe t.obs "service.e2e_ms" job.total_ms;
  ME.Slo.observe t.slo_e2e job.total_ms

let register_job t ~name ~key ~format ~netlist ~options ~envelope
    ~received_at ~decode_ms state =
  let id = t.next_id in
  t.next_id <- id + 1;
  let job =
    {
      id;
      name;
      key;
      format;
      netlist;
      options;
      envelope;
      received_at;
      decode_ms;
      enqueued_at = received_at;
      queue_wait_ms = 0;
      dispatched_at = received_at;
      run_ms = 0;
      total_ms = 0;
      requeued = false;
      cancel_requested = false;
      worker_ref = None;
      racers = [];
      state;
    }
  in
  Hashtbl.replace t.jobs_tbl id job;
  job

let cached_reply t (job : sjob) doc =
  finish_job t job;
  Log.info t.log "job.cache_hit"
    (job_fields job @ [ ("digest", J.String job.key) ]);
  P.ok
    [
      ("job", J.Int job.id);
      ("state", J.String P.state_done);
      ("cached", J.Bool true);
      ("digest", J.String job.key);
      ("timings", timings_json job);
      ("result", doc);
    ]

(* ------------------------------------------------------------------ *)
(* Worker lifecycle                                                   *)
(* ------------------------------------------------------------------ *)

let devnull =
  lazy (Unix.openfile "/dev/null" [ Unix.O_RDWR ] 0)

let wstate_string = function
  | W_starting -> "starting"
  | W_idle -> "idle"
  | W_busy -> "busy"
  | W_dead -> "dead"

let spawn_args t w =
  [ t.cfg.worker_exe; "serve"; "--socket"; w.w_socket; "--queue-cap"; "8" ]
  @ [ "--cache-cap"; string_of_int (max 8 t.cfg.cache_cap) ]
  @ [ "--jobs"; string_of_int t.cfg.jobs ]
  @ [ "--log-level"; "error" ]
  @ (match t.cfg.timeout with
    | None -> []
    | Some s -> [ "--timeout"; string_of_float s ])

(* Forward declarations would be needed for the requeue path, so job
   loss handling lives above the relay/supervisor code that calls it. *)

(* The exactly-once requeue. Caller holds the lock; [job] was in flight
   on a worker that died. The first loss re-enqueues the job (its single
   credit); a second loss — or a loss during drain, when the queue no
   longer accepts work — fails it with the typed [worker_lost] code so
   the waiting client still gets exactly one terminal reply. *)
let job_lost_locked t (job : sjob) =
  job.worker_ref <- None;
  (match job.state with
  | Dispatched ->
      if job.cancel_requested then begin
        job.state <- JCancelled;
        Obs.incr t.obs "service.cancelled";
        finish_job t job;
        Log.info t.log "job.cancelled" (job_fields job)
      end
      else if job.requeued || t.stopping then begin
        job.state <-
          JFailed
            {
              code = P.code_worker_lost;
              msg =
                (if t.stopping then
                   "worker died while draining; job not requeued"
                 else "worker died twice while running this job");
            };
        Obs.incr t.obs "service.failed";
        finish_job t job;
        Log.warn t.log "job.worker_lost" (job_fields job)
      end
      else begin
        job.requeued <- true;
        Obs.incr t.obs "service.requeues";
        match
          Fair_queue.push t.fq ~tenant:job.envelope.P.tenant
            ~priority:job.envelope.P.priority job
        with
        | Ok () ->
            job.state <- Queued;
            job.enqueued_at <- Obs.Clock.wall ();
            Log.warn t.log "job.requeue" (job_fields job)
        | Error (`Tenant_full _) ->
            job.state <-
              JFailed
                {
                  code = P.code_worker_lost;
                  msg = "worker died and the tenant queue is full";
                };
            Obs.incr t.obs "service.failed";
            finish_job t job;
            Log.warn t.log "job.worker_lost" (job_fields job)
      end
  | _ -> ());
  Condition.broadcast t.cond

(* Pick the cheapest feasible racer once every leg is terminal. Caller
   holds the lock. *)
let finalize_portfolio_locked t (job : sjob) =
  if
    job.state = Dispatched
    && List.for_all (fun r -> r.rc_outcome <> `Pending) job.racers
  then begin
    let cost doc =
      match
        Option.bind
          (Option.bind (J.member "result" doc) (J.member "total_cost"))
          J.to_float
      with
      | Some c -> c
      | None -> Float.max_float
    in
    let best =
      List.fold_left
        (fun acc r ->
          match (r.rc_outcome, acc) with
          | `Doc doc, None -> Some doc
          | `Doc doc, Some prev when cost doc < cost prev -> Some doc
          | _ -> acc)
        None job.racers
    in
    (match best with
    | Some doc ->
        job.run_ms <- ms_since job.dispatched_at;
        Obs.observe t.obs "service.run_ms" job.run_ms;
        job.state <- JDone doc;
        Obs.incr t.obs "service.completed";
        Obs.incr t.obs "fleet.portfolio_won";
        finish_job t job;
        Log.info t.log "job.portfolio_done"
          (job_fields job @ [ ("racers", J.Int (List.length job.racers)) ])
    | None ->
        let first_err =
          List.find_map
            (fun r ->
              match r.rc_outcome with `Err (c, m) -> Some (c, m) | _ -> None)
            job.racers
        in
        (match first_err with
        | Some (code, _) when String.equal code P.code_cancelled ->
            job.state <- JCancelled;
            Obs.incr t.obs "service.cancelled"
        | Some (code, msg) ->
            job.state <- JFailed { code; msg };
            Obs.incr t.obs "service.failed"
        | None ->
            (* Every leg lost its worker. Portfolio jobs spend their
               requeue credit on the race itself — fail typed. *)
            job.state <-
              JFailed
                {
                  code = P.code_worker_lost;
                  msg = "every portfolio worker died while racing this job";
                };
            Obs.incr t.obs "service.failed");
        finish_job t job;
        Log.warn t.log "job.portfolio_failed" (job_fields job));
    Condition.broadcast t.cond
  end

(* A worker stopped answering: SIGKILL it (idempotent; [kill = false]
   when [waitpid] already reaped it), mark it dead and deal with its
   in-flight job. Caller holds the lock. *)
let worker_down_locked t (w : worker) ~kill =
  if w.w_state <> W_dead then begin
    if kill && w.w_pid > 0 then
      (try Unix.kill w.w_pid Sys.sigkill with Unix.Unix_error _ -> ());
    w.w_state <- W_dead;
    w.w_not_before <- Obs.Clock.wall () +. w.w_backoff;
    w.w_backoff <- Float.min 8.0 (w.w_backoff *. 2.0);
    Log.warn t.log "worker.down" [ ("worker", J.Int w.w_id) ];
    (match w.w_job with
    | None -> ()
    | Some jid -> (
        w.w_job <- None;
        match Hashtbl.find_opt t.jobs_tbl jid with
        | None -> ()
        | Some job ->
            if job.racers <> [] then begin
              List.iter
                (fun r ->
                  if r.rc_worker = w.w_id && r.rc_outcome = `Pending then
                    r.rc_outcome <- `Lost)
                job.racers;
              finalize_portfolio_locked t job
            end
            else job_lost_locked t job));
    Condition.broadcast t.cond
  end

let spawn_worker_locked t w =
  let args = Array.of_list (spawn_args t w) in
  match
    Unix.create_process t.cfg.worker_exe args Unix.stdin
      (Lazy.force devnull) Unix.stderr
  with
  | pid ->
      w.w_pid <- pid;
      w.w_state <- W_starting;
      w.w_job <- None;
      Log.info t.log "worker.spawn"
        [ ("worker", J.Int w.w_id); ("pid", J.Int pid) ];
      true
  | exception Unix.Unix_error (e, _, _) ->
      w.w_state <- W_dead;
      w.w_pid <- -1;
      w.w_not_before <- Obs.Clock.wall () +. w.w_backoff;
      w.w_backoff <- Float.min 8.0 (w.w_backoff *. 2.0);
      Log.error t.log "worker.spawn_failed"
        [
          ("worker", J.Int w.w_id);
          ("error", J.String (Unix.error_message e));
        ];
      false

let healthy reply =
  match C.ok_or_error reply with Ok _ -> true | Error _ -> false

(* Probe a freshly spawned worker until its health verb answers, then
   mark it idle. Runs in its own thread; [pid] guards against the
   worker having been restarted again underneath us. *)
let probe_ready t (w : worker) ~pid =
  let deadline = Obs.Clock.wall () +. 15.0 in
  let rec loop () =
    if Obs.Clock.wall () > deadline then false
    else
      match C.rpc ~socket:w.w_socket P.Health with
      | Ok reply when healthy reply -> true
      | _ ->
          Thread.delay 0.05;
          loop ()
  in
  let up = loop () in
  with_lock t (fun () ->
      if w.w_pid = pid && w.w_state = W_starting then
        if up then begin
          w.w_state <- W_idle;
          w.w_backoff <- 0.5;
          Log.info t.log "worker.up" [ ("worker", J.Int w.w_id) ];
          Condition.broadcast t.cond
        end
        else worker_down_locked t w ~kill:true)

let start_worker_locked t w ~restart =
  if spawn_worker_locked t w then begin
    if restart then begin
      w.w_restarts <- w.w_restarts + 1;
      Obs.incr t.obs "service.worker_restarts"
    end;
    let pid = w.w_pid in
    ignore (Thread.create (fun () -> probe_ready t w ~pid) ())
  end

(* Supervisor: reap exited workers, respawn dead ones after their
   backoff, and health-probe idle ones so a wedged (but not exited)
   worker is detected and recycled. *)
let supervisor t =
  let tick = ref 0 in
  let rec loop () =
    let continue =
      with_lock t (fun () ->
          if not t.supervising then false
          else begin
            Array.iter
              (fun w ->
                if w.w_pid > 0 then
                  match Unix.waitpid [ Unix.WNOHANG ] w.w_pid with
                  | 0, _ -> ()
                  | _, _ ->
                      worker_down_locked t w ~kill:false;
                      w.w_pid <- -1
                  | exception Unix.Unix_error _ ->
                      worker_down_locked t w ~kill:false;
                      w.w_pid <- -1)
              t.workers;
            if not t.stopping then
              Array.iter
                (fun w ->
                  if
                    w.w_state = W_dead && w.w_pid = -1
                    && Obs.Clock.wall () >= w.w_not_before
                  then start_worker_locked t w ~restart:true)
                t.workers;
            true
          end)
    in
    if continue then begin
      (* Probe idle workers outside the lock, every ~2s. *)
      incr tick;
      if !tick mod 8 = 0 then begin
        let idle =
          with_lock t (fun () ->
              Array.to_list t.workers
              |> List.filter_map (fun w ->
                     if w.w_state = W_idle then Some (w, w.w_pid) else None))
        in
        List.iter
          (fun ((w : worker), pid) ->
            let ok =
              match C.rpc ~socket:w.w_socket P.Health with
              | Ok reply -> healthy reply
              | Error _ -> false
            in
            if not ok then
              with_lock t (fun () ->
                  if w.w_pid = pid && w.w_state = W_idle then
                    worker_down_locked t w ~kill:true))
          idle
      end;
      Thread.delay 0.25;
      loop ()
    end
  in
  loop ()

(* ------------------------------------------------------------------ *)
(* Relays: one thread per dispatched job (or racer leg)               *)
(* ------------------------------------------------------------------ *)

let free_worker_locked t (w : worker) =
  if w.w_state = W_busy then begin
    w.w_state <- W_idle;
    w.w_job <- None;
    Condition.broadcast t.cond
  end

let record_affinity t key (w : worker) = Hashtbl.replace t.affinity key w.w_id

(* Run one job on one worker: submit, then block on its result. Returns
   the terminal outcome; `Lost means the worker transport failed. *)
let run_on_worker (w : worker) ~name ~format ~netlist ~options
    ~(on_worker_job : int -> unit) =
  match C.connect w.w_socket with
  | Error _ -> `Lost
  | Ok conn ->
      Fun.protect
        ~finally:(fun () -> C.close conn)
        (fun () ->
          let req =
            P.Submit
              {
                name;
                format;
                netlist;
                options;
                envelope = P.default_envelope;
              }
          in
          match C.request conn req with
          | Error _ -> `Lost
          | Ok reply -> (
              match C.ok_or_error reply with
              | Error (code, msg) -> `Err (code, msg)
              | Ok reply -> (
                  let cached =
                    Option.value ~default:false
                      (Option.bind (J.member "cached" reply) J.to_bool)
                  in
                  match (cached, J.member "result" reply) with
                  | true, Some doc -> `Doc doc
                  | _ -> (
                      match
                        Option.bind (J.member "job" reply) J.to_int
                      with
                      | None -> `Err (P.code_bad_request, "malformed worker reply")
                      | Some wj -> (
                          on_worker_job wj;
                          match
                            C.request conn (P.Result { job = wj; wait = true })
                          with
                          | Error _ -> `Lost
                          | Ok reply -> (
                              match C.ok_or_error reply with
                              | Error (code, msg) -> `Err (code, msg)
                              | Ok reply -> (
                                  match J.member "result" reply with
                                  | Some doc -> `Doc doc
                                  | None ->
                                      `Err
                                        ( P.code_bad_request,
                                          "worker reply lacks a result" ))))))))

(* Forward a cancel to the worker-side job, best effort. *)
let forward_cancel socket wj =
  match C.rpc ~socket (P.Cancel wj) with Ok _ | Error _ -> ()

let relay t (w : worker) (job : sjob) =
  let outcome =
    run_on_worker w ~name:job.name ~format:job.format ~netlist:job.netlist
      ~options:job.options ~on_worker_job:(fun wj ->
        let cancel_now =
          with_lock t (fun () ->
              job.worker_ref <- Some (w.w_id, wj);
              job.cancel_requested)
        in
        if cancel_now then forward_cancel w.w_socket wj)
  in
  with_lock t (fun () ->
      (match outcome with
      | `Lost ->
          (* worker_down requeues (or fails) the job and frees nothing:
             the worker slot stays dead until the supervisor respawns
             it. *)
          worker_down_locked t w ~kill:true
      | `Doc doc ->
          job.worker_ref <- None;
          job.run_ms <- ms_since job.dispatched_at;
          Obs.observe t.obs "service.run_ms" job.run_ms;
          job.state <- JDone doc;
          Service.Lru.add t.cache job.key doc;
          Obs.incr t.obs "service.completed";
          record_affinity t job.key w;
          finish_job t job;
          Log.info t.log "job.done"
            (job_fields job
            @ [
                ("worker", J.Int w.w_id);
                ("run_ms", J.Int job.run_ms);
                ("total_ms", J.Int job.total_ms);
              ]);
          free_worker_locked t w
      | `Err (code, msg) ->
          job.worker_ref <- None;
          job.run_ms <- ms_since job.dispatched_at;
          if String.equal code P.code_cancelled then begin
            job.state <- JCancelled;
            Obs.incr t.obs "service.cancelled";
            Log.info t.log "job.cancelled" (job_fields job)
          end
          else begin
            job.state <- JFailed { code; msg };
            (if String.equal code P.code_timeout then
               Obs.incr t.obs "service.timeouts"
             else Obs.incr t.obs "service.failed");
            Log.warn t.log "job.failed"
              (job_fields job @ [ ("code", J.String code) ])
          end;
          finish_job t job;
          free_worker_locked t w);
      Condition.broadcast t.cond);
  (* The disk write happens outside the scheduler lock; Disk_cache has
     its own. Portfolio docs never reach here. *)
  match outcome with
  | `Doc doc -> (
      match t.disk with Some d -> Disk_cache.add d job.key doc | None -> ())
  | _ -> ()

let relay_racer t (w : worker) (job : sjob) (r : racer) ~idx =
  let options =
    { job.options with Core.Kway.seed = job.options.Core.Kway.seed + (idx * 65537) }
  in
  let outcome =
    run_on_worker w ~name:job.name ~format:job.format ~netlist:job.netlist
      ~options ~on_worker_job:(fun wj ->
        let cancel_now =
          with_lock t (fun () ->
              r.rc_wjob <- Some wj;
              job.cancel_requested
              || (match job.state with Dispatched -> false | _ -> true))
        in
        if cancel_now then forward_cancel w.w_socket wj)
  in
  let to_cancel =
    with_lock t (fun () ->
        (match outcome with
        | `Lost -> worker_down_locked t w ~kill:true
        | `Doc doc ->
            r.rc_outcome <- `Doc doc;
            free_worker_locked t w
        | `Err (code, msg) ->
            r.rc_outcome <- `Err (code, msg);
            free_worker_locked t w);
        (* First feasible leg: cancel the rest cooperatively. *)
        let cancels =
          match (outcome, job.state) with
          | `Doc _, Dispatched ->
              List.filter_map
                (fun r' ->
                  match (r'.rc_outcome, r'.rc_wjob) with
                  | `Pending, Some wj when r'.rc_worker <> w.w_id ->
                      Some (t.workers.(r'.rc_worker).w_socket, wj)
                  | _ -> None)
                job.racers
          | _ -> []
        in
        finalize_portfolio_locked t job;
        cancels)
  in
  if to_cancel <> [] then Obs.incr t.obs "fleet.portfolio_cancelled"
    ~by:(List.length to_cancel);
  List.iter (fun (socket, wj) -> forward_cancel socket wj) to_cancel

(* ------------------------------------------------------------------ *)
(* Dispatcher                                                         *)
(* ------------------------------------------------------------------ *)

let idle_workers t =
  Array.to_list t.workers |> List.filter (fun w -> w.w_state = W_idle)

let rec dispatcher t =
  let action =
    with_lock t (fun () ->
        let rec wait () =
          if Fair_queue.length t.fq = 0 then
            if t.stopping then `Exit
            else begin
              Condition.wait t.cond t.mutex;
              wait ()
            end
          else
            match idle_workers t with
            | [] ->
                Condition.wait t.cond t.mutex;
                wait ()
            | idle -> (
                match Fair_queue.pop t.fq with
                | None -> wait ()
                | Some job ->
                    let dequeued = Obs.Clock.wall () in
                    job.queue_wait_ms <- ms_since job.enqueued_at;
                    Obs.observe t.obs "service.queue_wait_ms"
                      job.queue_wait_ms;
                    ME.Slo.observe t.slo_queue_wait job.queue_wait_ms;
                    if job.cancel_requested then begin
                      job.state <- JCancelled;
                      Obs.incr t.obs "service.cancelled";
                      finish_job t job;
                      Log.info t.log "job.cancelled" (job_fields job);
                      Condition.broadcast t.cond;
                      `Loop
                    end
                    else begin
                      job.state <- Dispatched;
                      job.dispatched_at <- dequeued;
                      if job.envelope.P.portfolio then begin
                        let racers =
                          List.map
                            (fun (w : worker) ->
                              { rc_worker = w.w_id; rc_wjob = None;
                                rc_outcome = `Pending })
                            idle
                        in
                        job.racers <- racers;
                        Obs.incr t.obs "fleet.portfolio_races";
                        Obs.observe t.obs "fleet.portfolio_width"
                          (List.length racers);
                        Log.info t.log "job.dispatch"
                          (job_fields job
                          @ [
                              ("portfolio", J.Bool true);
                              ("racers", J.Int (List.length racers));
                            ]);
                        let thunks =
                          List.mapi
                            (fun idx ((w : worker), r) ->
                              w.w_state <- W_busy;
                              w.w_job <- Some job.id;
                              fun () -> relay_racer t w job r ~idx)
                            (List.combine idle racers)
                        in
                        `Dispatch thunks
                      end
                      else begin
                        let w = List.hd idle in
                        w.w_state <- W_busy;
                        w.w_job <- Some job.id;
                        Obs.incr t.obs "fleet.dispatched";
                        Log.info t.log "job.dispatch"
                          (job_fields job
                          @ [
                              ("worker", J.Int w.w_id);
                              ("queue_wait_ms", J.Int job.queue_wait_ms);
                            ]);
                        `Dispatch [ (fun () -> relay t w job) ]
                      end
                    end)
        in
        wait ())
  in
  match action with
  | `Exit -> ()
  | `Loop -> dispatcher t
  | `Dispatch thunks ->
      List.iter (fun f -> ignore (Thread.create f ())) thunks;
      dispatcher t

(* ------------------------------------------------------------------ *)
(* Request handling                                                   *)
(* ------------------------------------------------------------------ *)

let job_not_found id =
  P.error ~code:P.code_not_found (Printf.sprintf "no such job: %d" id)

(* Deterministic preprocessing only: parse, canonicalise, digest. The
   k-way computation happens in a worker — that is the scheduler's
   determinism argument (DESIGN §11). *)
let digest_submission ~format ~netlist ~options =
  match P.parse_netlist format netlist with
  | Error msg -> Error msg
  | Ok circuit ->
      let canonical = Service.Digest.canonical_circuit circuit in
      let h = Techmap.Mapper.to_hypergraph (Techmap.Mapper.map canonical) in
      Ok (Service.Digest.job_key ~library:Fpga.Library.xc3000 ~options h)

let handle_submit t ~name ~format ~netlist ~options ~envelope =
  let received_at = Obs.Clock.wall () in
  match digest_submission ~format ~netlist ~options with
  | Error msg ->
      with_lock t (fun () ->
          Log.warn t.log "job.decode_failed" [ ("name", J.String name) ]);
      P.error ~code:P.code_bad_request ("netlist: " ^ msg)
  | Ok key -> (
      let decode_ms = ms_since received_at in
      let disk_doc =
        (* Disk lookups do their own locking; keep the read outside the
           scheduler lock. Checked only on LRU miss below — the probe
           here is cheap (an index lookup) and avoids lock inversion. *)
        match t.disk with
        | Some d when Disk_cache.mem d key -> Disk_cache.find d key
        | _ -> None
      in
      with_lock t (fun () ->
          let fresh_job state =
            register_job t ~name ~key ~format ~netlist ~options ~envelope
              ~received_at ~decode_ms state
          in
          match Service.Lru.find t.cache key with
          | Some doc ->
              Obs.incr t.obs "service.cache_hit";
              cached_reply t (fresh_job (JDone doc)) doc
          | None -> (
              match disk_doc with
              | Some doc ->
                  Obs.incr t.obs "service.cache_hit";
                  Obs.incr t.obs "fleet.disk_cache_hit";
                  Service.Lru.add t.cache key doc;
                  cached_reply t (fresh_job (JDone doc)) doc
              | None ->
                  Obs.incr t.obs "service.cache_miss";
                  if Option.is_some t.disk then
                    Obs.incr t.obs "fleet.disk_cache_miss";
                  if t.stopping then begin
                    Log.warn t.log "job.refused_draining"
                      [ ("digest", J.String key) ];
                    P.error ~code:P.code_shutting_down
                      "scheduler is draining; not accepting new jobs"
                  end
                  else begin
                    let job = fresh_job Queued in
                    match
                      Fair_queue.push t.fq ~tenant:envelope.P.tenant
                        ~priority:envelope.P.priority job
                    with
                    | Error (`Tenant_full depth) ->
                        Hashtbl.remove t.jobs_tbl job.id;
                        Obs.incr t.obs "service.rejected";
                        Log.warn t.log "job.rejected"
                          [
                            ("digest", J.String key);
                            ("tenant", J.String envelope.P.tenant);
                            ("queue_depth", J.Int depth);
                          ];
                        P.error ~code:P.code_overloaded
                          (Printf.sprintf
                             "tenant %s queue is full (%d queued); resubmit \
                              later"
                             envelope.P.tenant depth)
                    | Ok () ->
                        job.enqueued_at <- Obs.Clock.wall ();
                        let position =
                          Fair_queue.depth t.fq envelope.P.tenant - 1
                        in
                        Log.info t.log "job.enqueue"
                          (job_fields job
                          @ [
                              ("name", J.String name);
                              ("digest", J.String key);
                              ("tenant", J.String envelope.P.tenant);
                              ("position", J.Int position);
                            ]);
                        Condition.broadcast t.cond;
                        P.ok
                          [
                            ("job", J.Int job.id);
                            ("state", J.String P.state_queued);
                            ("cached", J.Bool false);
                            ("digest", J.String key);
                            ("position", J.Int position);
                          ]
                  end)))

let handle_submit_batch t ~items ~envelope =
  let replies =
    List.map
      (fun { P.b_name; b_format; b_netlist; b_options } ->
        match
          handle_submit t ~name:b_name ~format:b_format ~netlist:b_netlist
            ~options:b_options ~envelope
        with
        | J.Obj (("ok", J.Bool _) :: fields) -> J.Obj fields
        | other -> other)
      items
  in
  with_lock t (fun () ->
      Obs.incr t.obs "service.batches";
      Obs.observe t.obs "service.batch_size" (List.length items));
  P.ok [ ("items", J.List replies) ]

(* ------------------------------------------------------------------ *)
(* Resubmit: digest-affinity forwarding                               *)
(* ------------------------------------------------------------------ *)

(* The warm context of a base partition lives in the memory of the
   worker that computed it, so a resubmit is forwarded there (falling
   back to any idle worker — the target then cold-falls-back or answers
   not_found if it never saw the base). The relay is synchronous: the
   client's reply is the terminal one, with the worker-side job id
   rewritten to the scheduler's. A worker lost mid-resubmit fails with
   [worker_lost] — its warm context died with it, so a requeue could not
   preserve warm semantics. *)
let acquire_resubmit_worker t ~base_key =
  with_lock t (fun () ->
      let preferred = Hashtbl.find_opt t.affinity base_key in
      let pick () =
        let by_id id =
          let w = t.workers.(id) in
          if w.w_state = W_idle then Some w else None
        in
        match Option.bind preferred by_id with
        | Some w -> Some w
        | None -> (
            match idle_workers t with w :: _ -> Some w | [] -> None)
      in
      let rec wait () =
        if t.stopping then None
        else
          match pick () with
          | Some w ->
              w.w_state <- W_busy;
              Some w
          | None ->
              Condition.wait t.cond t.mutex;
              wait ()
      in
      wait ())

let handle_resubmit t ~name ~base ~delta ~options =
  let received_at = Obs.Clock.wall () in
  let resolved =
    with_lock t (fun () ->
        Obs.incr t.obs "service.resubmit_requests";
        match base with
        | `Digest key -> Ok key
        | `Job id -> (
            match Hashtbl.find_opt t.jobs_tbl id with
            | Some j -> Ok j.key
            | None -> Error (job_not_found id)))
  in
  match resolved with
  | Error reply -> reply
  | Ok base_key -> (
      if with_lock t (fun () -> t.stopping) then
        P.error ~code:P.code_shutting_down
          "scheduler is draining; not accepting new jobs"
      else
        match acquire_resubmit_worker t ~base_key with
        | None ->
            P.error ~code:P.code_shutting_down
              "scheduler is draining; not accepting new jobs"
        | Some w -> (
            let job =
              with_lock t (fun () ->
                  Obs.incr t.obs "fleet.resubmit_forwarded";
                  let job =
                    register_job t ~name ~key:base_key ~format:P.Bench
                      ~netlist:"" ~options:(Option.value options
                        ~default:Core.Kway.Options.default)
                      ~envelope:P.default_envelope ~received_at
                      ~decode_ms:0 Dispatched
                  in
                  job.dispatched_at <- received_at;
                  w.w_job <- Some job.id;
                  job)
            in
            let outcome =
              match C.connect w.w_socket with
              | Error _ -> `Lost
              | Ok conn ->
                  Fun.protect
                    ~finally:(fun () -> C.close conn)
                    (fun () ->
                      let req =
                        P.Resubmit
                          { name; base = `Digest base_key; delta; options }
                      in
                      match C.request conn req with
                      | Error _ -> `Lost
                      | Ok reply -> (
                          match C.ok_or_error reply with
                          | Error (code, msg) -> `Err (code, msg)
                          | Ok reply -> (
                              let fields =
                                match reply with J.Obj f -> f | _ -> []
                              in
                              let extra =
                                List.filter
                                  (fun (k, _) ->
                                    String.equal k "cold_fallback")
                                  fields
                              in
                              match J.member "result" reply with
                              | Some _ -> `Reply (reply, extra)
                              | None -> (
                                  match
                                    Option.bind (J.member "job" reply)
                                      J.to_int
                                  with
                                  | None ->
                                      `Err
                                        ( P.code_bad_request,
                                          "malformed worker reply" )
                                  | Some wj -> (
                                      with_lock t (fun () ->
                                          job.worker_ref <-
                                            Some (w.w_id, wj));
                                      match
                                        C.request conn
                                          (P.Result
                                             { job = wj; wait = true })
                                      with
                                      | Error _ -> `Lost
                                      | Ok reply -> (
                                          match C.ok_or_error reply with
                                          | Error (code, msg) ->
                                              `Err (code, msg)
                                          | Ok reply ->
                                              `Reply (reply, extra)))))))
            in
            match outcome with
            | `Lost ->
                with_lock t (fun () ->
                    job.state <-
                      JFailed
                        {
                          code = P.code_worker_lost;
                          msg =
                            "worker died mid-resubmit; its warm context is \
                             gone (submit cold to recompute)";
                        };
                    Obs.incr t.obs "service.failed";
                    finish_job t job;
                    worker_down_locked t w ~kill:true);
                P.error ~code:P.code_worker_lost
                  "worker died mid-resubmit; its warm context is gone \
                   (submit cold to recompute)"
            | `Err (code, msg) ->
                with_lock t (fun () ->
                    job.worker_ref <- None;
                    (if String.equal code P.code_cancelled then
                       job.state <- JCancelled
                     else job.state <- JFailed { code; msg });
                    finish_job t job;
                    free_worker_locked t w);
                P.error ~code msg
            | `Reply (reply, extra) ->
                let fields = match reply with J.Obj f -> f | _ -> [] in
                let digest =
                  Option.bind (J.member "digest" reply) J.to_str
                in
                let doc = J.member "result" reply in
                with_lock t (fun () ->
                    job.worker_ref <- None;
                    (match digest with
                    | Some d ->
                        job.key <- d;
                        record_affinity t d w
                    | None -> ());
                    (match doc with
                    | Some doc -> job.state <- JDone doc
                    | None -> ());
                    job.run_ms <- ms_since job.dispatched_at;
                    Obs.incr t.obs "service.completed";
                    finish_job t job;
                    free_worker_locked t w);
                let fields =
                  List.map
                    (fun (k, v) ->
                      if String.equal k "job" then (k, J.Int job.id)
                      else (k, v))
                    fields
                in
                let fields =
                  fields
                  @ List.filter
                      (fun (k, _) -> not (List.mem_assoc k fields))
                      extra
                in
                J.Obj fields))

(* ------------------------------------------------------------------ *)
(* Introspection verbs                                                *)
(* ------------------------------------------------------------------ *)

let handle_status t id =
  with_lock t (fun () ->
      match Hashtbl.find_opt t.jobs_tbl id with
      | None -> job_not_found id
      | Some job ->
          let fields =
            [ ("job", J.Int id); ("state", J.String (state_string job.state)) ]
          in
          let fields =
            match job.state with
            | Queued -> (
                match
                  Fair_queue.position t.fq ~tenant:job.envelope.P.tenant
                    (fun (j : sjob) -> j.id = id)
                with
                | Some p -> fields @ [ ("position", J.Int p) ]
                | None -> fields)
            | _ -> fields
          in
          P.ok fields)

let handle_result t ~id ~wait =
  with_lock t (fun () ->
      match Hashtbl.find_opt t.jobs_tbl id with
      | None -> job_not_found id
      | Some job ->
          if wait then
            while
              match job.state with
              | Queued | Dispatched -> true
              | _ -> false
            do
              Condition.wait t.cond t.mutex
            done;
          (match job.state with
          | Queued | Dispatched ->
              P.error ~code:P.code_pending
                (Printf.sprintf "job %d is %s" id (state_string job.state))
          | JDone doc ->
              P.ok
                [
                  ("job", J.Int id);
                  ("state", J.String P.state_done);
                  ("timings", timings_json job);
                  ("result", doc);
                ]
          | JFailed { code; msg } -> P.error ~code msg
          | JCancelled ->
              P.error ~code:P.code_cancelled
                (Printf.sprintf "job %d was cancelled" id)))

let handle_cancel t id =
  let reply, cancels =
    with_lock t (fun () ->
        match Hashtbl.find_opt t.jobs_tbl id with
        | None -> (job_not_found id, [])
        | Some job ->
            let cancelling =
              match job.state with
              | Queued | Dispatched -> true
              | _ -> false
            in
            let cancels =
              if cancelling then begin
                job.cancel_requested <- true;
                Log.info t.log "job.cancel" (job_fields job);
                Condition.broadcast t.cond;
                if job.racers <> [] then
                  List.filter_map
                    (fun r ->
                      match (r.rc_outcome, r.rc_wjob) with
                      | `Pending, Some wj ->
                          Some (t.workers.(r.rc_worker).w_socket, wj)
                      | _ -> None)
                    job.racers
                else
                  match job.worker_ref with
                  | Some (wid, wj) -> [ (t.workers.(wid).w_socket, wj) ]
                  | None -> []
              end
              else []
            in
            ( P.ok
                [
                  ("job", J.Int id);
                  ("state", J.String (state_string job.state));
                  ("cancelling", J.Bool cancelling);
                ],
              cancels ))
  in
  List.iter (fun (socket, wj) -> forward_cancel socket wj) cancels;
  reply

let handle_stats t =
  with_lock t (fun () ->
      P.ok
        [
          ( "stats",
            J.Obj
              [
                ( "schema_version",
                  J.Int Experiments.Obs_report.schema_version );
                ("artifact", J.String "service.stats");
                ("queue_len", J.Int (Fair_queue.length t.fq));
                ("queue_cap", J.Int t.cfg.queue_cap);
                ( "cache",
                  J.Obj
                    [
                      ("len", J.Int (Service.Lru.length t.cache));
                      ("cap", J.Int (Service.Lru.cap t.cache));
                    ] );
                ("obs", Obs.Snapshot.to_json (Obs.snapshot t.obs));
              ] );
        ])

let inflight t =
  Hashtbl.fold
    (fun _ (j : sjob) acc ->
      match j.state with Dispatched -> acc + 1 | _ -> acc)
    t.jobs_tbl 0

let disk_stats_json t =
  match t.disk with
  | None -> J.Null
  | Some d ->
      J.Obj
        [
          ("len", J.Int (Disk_cache.length d));
          ("segments", J.Int (Disk_cache.segments d));
          ("corrupt_skipped", J.Int (Disk_cache.corrupt_skipped d));
        ]

let handle_fleet_stats t =
  with_lock t (fun () ->
      let workers =
        Array.to_list t.workers
        |> List.map (fun w ->
               J.Obj
                 [
                   ("id", J.Int w.w_id);
                   ("state", J.String (wstate_string w.w_state));
                   ("pid", J.Int w.w_pid);
                   ("restarts", J.Int w.w_restarts);
                   ("socket", J.String w.w_socket);
                 ])
      in
      let tenants =
        Fair_queue.tenants t.fq
        |> List.map (fun (tenant, depth) ->
               J.Obj
                 [
                   ("tenant", J.String tenant);
                   ("depth", J.Int depth);
                   ("weight", J.Int (Fair_queue.weight t.fq tenant));
                 ])
      in
      P.ok
        [
          ( "fleet",
            J.Obj
              [
                ( "schema_version",
                  J.Int Experiments.Obs_report.schema_version );
                ("artifact", J.String "service.fleet_stats");
                ("workers", J.List workers);
                ("tenants", J.List tenants);
                ("queue_len", J.Int (Fair_queue.length t.fq));
                ("tenant_cap", J.Int t.cfg.queue_cap);
                ("inflight", J.Int (inflight t));
                ( "cache",
                  J.Obj
                    [
                      ("len", J.Int (Service.Lru.length t.cache));
                      ("cap", J.Int (Service.Lru.cap t.cache));
                    ] );
                ("disk_cache", disk_stats_json t);
                ("obs", Obs.Snapshot.to_json (Obs.snapshot t.obs));
              ] );
        ])

let handle_metrics t =
  with_lock t (fun () ->
      let snap = Obs.snapshot t.obs in
      let gauge ?(labels = []) g_name g_help g_value =
        { ME.g_name; g_help; g_value; g_labels = labels }
      in
      let worker_gauges =
        Array.to_list t.workers
        |> List.map (fun w ->
               gauge
                 ~labels:[ ("worker", string_of_int w.w_id) ]
                 "fleet_worker_up" "1 when the worker answers, 0 otherwise."
                 (match w.w_state with
                 | W_idle | W_busy -> 1.0
                 | W_starting | W_dead -> 0.0))
      in
      let restart_gauges =
        Array.to_list t.workers
        |> List.map (fun w ->
               gauge
                 ~labels:[ ("worker", string_of_int w.w_id) ]
                 "fleet_worker_restarts" "Times this worker was respawned."
                 (float_of_int w.w_restarts))
      in
      let tenant_gauges =
        Fair_queue.tenants t.fq
        |> List.map (fun (tenant, depth) ->
               gauge
                 ~labels:[ ("tenant", tenant) ]
                 "fleet_tenant_queue_depth" "Jobs queued per tenant."
                 (float_of_int depth))
      in
      let disk_gauges =
        match t.disk with
        | None -> []
        | Some d ->
            [
              gauge "fleet_disk_cache_entries"
                "Result documents indexed in the persistent cache."
                (float_of_int (Disk_cache.length d));
              gauge "fleet_disk_cache_segments"
                "Segment files in the persistent cache."
                (float_of_int (Disk_cache.segments d));
              gauge "fleet_disk_cache_corrupt_skipped"
                "Corrupt records skipped since startup."
                (float_of_int (Disk_cache.corrupt_skipped d));
            ]
      in
      let gauges =
        [
          gauge "queue_depth" "Jobs queued and not yet dispatched."
            (float_of_int (Fair_queue.length t.fq));
          gauge "queue_capacity" "Per-tenant queue bound."
            (float_of_int t.cfg.queue_cap);
          gauge "inflight_jobs" "Jobs currently running on workers."
            (float_of_int (inflight t));
          gauge "cache_entries" "Result documents held by the LRU cache."
            (float_of_int (Service.Lru.length t.cache));
          gauge "cache_capacity" "LRU cache bound."
            (float_of_int (Service.Lru.cap t.cache));
          gauge "fleet_workers" "Configured worker pool size."
            (float_of_int t.cfg.workers);
          gauge "jobs_registered" "Jobs accepted since startup."
            (float_of_int (t.next_id - 1));
          gauge "uptime_seconds" "Wall-clock seconds since startup."
            (Obs.Clock.wall () -. t.started_at);
        ]
        @ worker_gauges @ restart_gauges @ tenant_gauges @ disk_gauges
      in
      let slos =
        [
          ( "service_queue_wait_seconds",
            "Time from enqueue to dispatch per job.",
            t.slo_queue_wait );
          ( "service_e2e_seconds",
            "Request decode to terminal job state, end to end.",
            t.slo_e2e );
        ]
      in
      P.ok [ ("metrics", J.String (ME.render ~gauges ~slos snap)) ])

let handle_health t =
  with_lock t (fun () ->
      let up =
        Array.fold_left
          (fun acc w ->
            match w.w_state with
            | W_idle | W_busy -> acc + 1
            | W_starting | W_dead -> acc)
          0 t.workers
      in
      P.ok
        [
          ( "health",
            J.Obj
              [
                ( "state",
                  J.String (if t.stopping then "draining" else "accepting") );
                ("protocol_version", J.Int P.protocol_version);
                ( "stats_schema_version",
                  J.Int Experiments.Obs_report.schema_version );
                ("uptime_secs", J.Float (Obs.Clock.wall () -. t.started_at));
                ("queue_depth", J.Int (Fair_queue.length t.fq));
                ("queue_cap", J.Int t.cfg.queue_cap);
                ("inflight", J.Int (inflight t));
                ( "cache",
                  J.Obj
                    [
                      ("len", J.Int (Service.Lru.length t.cache));
                      ("cap", J.Int (Service.Lru.cap t.cache));
                    ] );
                ("jobs_total", J.Int (t.next_id - 1));
                ("workers", J.Int t.cfg.workers);
                ("workers_up", J.Int up);
              ] );
        ])

let handle_shutdown t =
  with_lock t (fun () ->
      t.stopping <- true;
      Log.info t.log "scheduler.drain"
        [ ("queue_depth", J.Int (Fair_queue.length t.fq)) ];
      Condition.broadcast t.cond;
      P.ok [ ("stopping", J.Bool true) ])

let dispatch t = function
  | P.Submit { name; format; netlist; options; envelope } ->
      handle_submit t ~name ~format ~netlist ~options ~envelope
  | P.Submit_batch { items; envelope } ->
      handle_submit_batch t ~items ~envelope
  | P.Resubmit { name; base; delta; options } ->
      handle_resubmit t ~name ~base ~delta ~options
  | P.Status id -> handle_status t id
  | P.Result { job; wait } -> handle_result t ~id:job ~wait
  | P.Cancel id -> handle_cancel t id
  | P.Stats -> handle_stats t
  | P.Fleet_stats -> handle_fleet_stats t
  | P.Metrics -> handle_metrics t
  | P.Health -> handle_health t
  | P.Shutdown -> handle_shutdown t

(* ------------------------------------------------------------------ *)
(* Connections, accept loop, lifecycle                                *)
(* ------------------------------------------------------------------ *)

let forget_conn t fd =
  with_lock t (fun () ->
      t.open_conns <- List.filter (fun fd' -> fd' <> fd) t.open_conns);
  try Unix.close fd with Unix.Unix_error _ -> ()

let rec handle_conn t fd =
  match Service.Codec.read_frame fd with
  | Error `Eof -> forget_conn t fd
  | Error err ->
      with_lock t (fun () ->
          Obs.incr t.obs "service.bad_requests";
          Log.warn t.log "request.bad_frame" []);
      (try
         Service.Codec.write_frame fd
           (P.error ~code:P.code_bad_request
              (Service.Codec.read_error_to_string err))
       with Unix.Unix_error _ -> ());
      forget_conn t fd
  | Ok json -> (
      with_lock t (fun () -> Obs.incr t.obs "service.requests");
      let reply =
        match P.request_of_json json with
        | Error (code, msg) ->
            with_lock t (fun () ->
                Obs.incr t.obs "service.bad_requests";
                Log.warn t.log "request.bad" [ ("code", J.String code) ]);
            P.error ~code msg
        | Ok req -> dispatch t req
      in
      match Service.Codec.write_frame fd reply with
      | () -> handle_conn t fd
      | exception Unix.Unix_error _ -> forget_conn t fd)

let shutdown_workers t =
  (* Graceful first: the shutdown verb drains each worker. Stragglers
     get SIGKILL after a grace period — their jobs are already terminal
     (the drain above waited for every relay). *)
  Array.iter
    (fun (w : worker) ->
      if w.w_pid > 0 then
        match C.rpc ~socket:w.w_socket P.Shutdown with Ok _ | Error _ -> ())
    t.workers;
  let deadline = Obs.Clock.wall () +. 5.0 in
  Array.iter
    (fun (w : worker) ->
      if w.w_pid > 0 then begin
        let rec reap () =
          match Unix.waitpid [ Unix.WNOHANG ] w.w_pid with
          | 0, _ ->
              if Obs.Clock.wall () > deadline then begin
                (try Unix.kill w.w_pid Sys.sigkill
                 with Unix.Unix_error _ -> ());
                ignore (Unix.waitpid [] w.w_pid)
              end
              else begin
                Thread.delay 0.05;
                reap ()
              end
          | _ -> ()
          | exception Unix.Unix_error _ -> ()
        in
        reap ();
        w.w_pid <- -1
      end;
      (* A SIGKILLed worker leaves its socket file; clean it up so the
         next fleet start has nothing stale to probe. *)
      try Unix.unlink w.w_socket with Unix.Unix_error _ -> ())
    t.workers

let run ?(on_ready = fun () -> ()) ?(external_stop = fun () -> false)
    (cfg : config) =
  ignore (Sys.signal Sys.sigpipe Sys.Signal_ignore);
  if cfg.workers < 1 then Error "fleet: --workers must be >= 1"
  else
    let disk =
      match cfg.cache_dir with
      | None -> Ok None
      | Some dir -> (
          match Disk_cache.open_dir ~log:cfg.log dir with
          | Ok d -> Ok (Some d)
          | Error e -> Error e)
    in
    match disk with
    | Error e -> Error e
    | Ok disk -> (
        let t =
          {
            cfg;
            mutex = Mutex.create ();
            cond = Condition.create ();
            obs = Obs.create ();
            log = cfg.log;
            slo_queue_wait = ME.Slo.create ();
            slo_e2e = ME.Slo.create ();
            started_at = Obs.Clock.wall ();
            fq =
              Fair_queue.create ~weights:cfg.tenant_weights
                ~cap:cfg.queue_cap ();
            jobs_tbl = Hashtbl.create 64;
            cache = Service.Lru.create ~cap:cfg.cache_cap;
            disk;
            affinity = Hashtbl.create 64;
            workers =
              Array.init cfg.workers (fun i ->
                  {
                    w_id = i;
                    w_socket =
                      Printf.sprintf "%s.worker%d" cfg.socket_path i;
                    w_pid = -1;
                    w_state = W_dead;
                    w_job = None;
                    w_restarts = 0;
                    w_backoff = 0.5;
                    w_not_before = 0.0;
                  });
            next_id = 1;
            stopping = false;
            supervising = true;
            open_conns = [];
          }
        in
        match Service.Server.bind_socket cfg.socket_path with
        | Error e ->
            (match t.disk with Some d -> Disk_cache.close d | None -> ());
            Error e
        | Ok sock ->
            with_lock t (fun () ->
                Log.info t.log "scheduler.start"
                  [
                    ("protocol_version", J.Int P.protocol_version);
                    ("workers", J.Int cfg.workers);
                    ("tenant_cap", J.Int cfg.queue_cap);
                  ];
                Array.iter
                  (fun w -> start_worker_locked t w ~restart:false)
                  t.workers);
            let dispatcher_thread = Thread.create dispatcher t in
            let supervisor_thread = Thread.create supervisor t in
            let conn_threads = ref [] in
            on_ready ();
            let rec accept_loop () =
              if external_stop () then
                with_lock t (fun () ->
                    t.stopping <- true;
                    Log.info t.log "scheduler.drain"
                      [ ("queue_depth", J.Int (Fair_queue.length t.fq)) ];
                    Condition.broadcast t.cond)
              else if with_lock t (fun () -> t.stopping) then ()
              else
                match Unix.select [ sock ] [] [] 0.2 with
                | [], _, _ -> accept_loop ()
                | _ -> (
                    match Unix.accept sock with
                    | fd, _ ->
                        with_lock t (fun () ->
                            t.open_conns <- fd :: t.open_conns);
                        conn_threads :=
                          Thread.create (handle_conn t) fd :: !conn_threads;
                        accept_loop ()
                    | exception Unix.Unix_error (Unix.EINTR, _, _) ->
                        accept_loop ())
                | exception Unix.Unix_error (Unix.EINTR, _, _) ->
                    accept_loop ()
            in
            accept_loop ();
            with_lock t (fun () ->
                t.stopping <- true;
                Condition.broadcast t.cond);
            (* Drain: the dispatcher exits once the queue is empty; then
               wait for every in-flight relay to reach a terminal state
               (a worker death during drain fails its job typed, so this
               terminates). *)
            Thread.join dispatcher_thread;
            with_lock t (fun () ->
                while inflight t > 0 do
                  Condition.wait t.cond t.mutex
                done);
            with_lock t (fun () -> t.supervising <- false);
            Thread.join supervisor_thread;
            shutdown_workers t;
            with_lock t (fun () -> t.open_conns)
            |> List.iter (fun fd ->
                   try Unix.shutdown fd Unix.SHUTDOWN_ALL
                   with Unix.Unix_error _ -> ());
            List.iter Thread.join !conn_threads;
            (try Unix.close sock with Unix.Unix_error _ -> ());
            (try Unix.unlink cfg.socket_path with Unix.Unix_error _ -> ());
            (match t.disk with Some d -> Disk_cache.close d | None -> ());
            with_lock t (fun () ->
                Log.info t.log "scheduler.stopped"
                  [ ("jobs_total", J.Int (t.next_id - 1)) ]);
            Ok ())
