(** Per-tenant weighted fair queue — the fleet scheduler's admission
    structure.

    Each tenant owns a bounded priority queue (higher [priority] first,
    FIFO within a priority). Across tenants, {!pop} serves in weighted
    round-robin order: when a tenant's turn comes it may dequeue up to
    [weight] jobs before the turn rotates — the unit-cost special case
    of deficit round robin, where every job has size 1 and the quantum
    is the weight. A tenant that drains leaves the rotation and rejoins
    at the back on its next {!push}, so idle tenants cost nothing and a
    newly active tenant cannot jump an in-progress turn.

    Fairness statement: over any interval in which tenants A and B are
    both continuously backlogged, the number of jobs served from A and
    from B differ from the ratio [weight A : weight B] by at most one
    turn's quantum — regardless of how many jobs either tenant has
    queued. Backpressure is per tenant: one tenant hitting its [cap]
    refuses only that tenant's submissions.

    Not thread-safe; the scheduler calls it under its state mutex. *)

type 'a t

val create :
  ?default_weight:int -> ?weights:(string * int) list -> cap:int -> unit ->
  'a t
(** [cap] bounds each tenant's queue (not the total). [weights] pins
    per-tenant weights; unlisted tenants get [default_weight] (default
    1). Raises [Invalid_argument] on a non-positive cap or weight. *)

val push :
  'a t -> tenant:string -> priority:int -> 'a -> (unit, [ `Tenant_full of int ]) result
(** Enqueue for a tenant, creating its queue on first use.
    [`Tenant_full depth] when the tenant is at its cap. *)

val pop : 'a t -> 'a option
(** Next job in weighted round-robin order; [None] when empty. *)

val length : 'a t -> int
(** Total queued jobs across all tenants. *)

val depth : 'a t -> string -> int
(** Queued jobs for one tenant (0 for an unknown tenant). *)

val cap : 'a t -> int

val weight : 'a t -> string -> int
(** The weight a tenant has (or would get). *)

val tenants : 'a t -> (string * int) list
(** [(tenant, depth)] for every tenant seen so far, sorted by name —
    deterministic for fleet-stats documents. *)

val position : 'a t -> tenant:string -> ('a -> bool) -> int option
(** 0-based position of the first matching job {e within its tenant's
    queue} (cross-tenant order is a property of the rotation, not of the
    queue state). [None] when no queued job matches. *)

val drain : 'a t -> 'a list
(** Remove and return everything, in {!pop} order. *)
