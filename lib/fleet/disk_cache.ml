module J = Obs.Json
module Log = Obs.Log

(* u32 LE key_len | u32 LE doc_len | 16B MD5(key ^ doc) | key | doc *)
let header_bytes = 4 + 4 + 16
let max_record = 64 * 1024 * 1024  (* sanity bound on either length field *)

type location = { seg : int; off : int; key_len : int; doc_len : int }

type t = {
  dir : string;
  segment_bytes : int;
  log : Log.t;
  mutex : Mutex.t;
  index : (string, location) Hashtbl.t;
  read_fds : (int, Unix.file_descr) Hashtbl.t;
  mutable write_seg : int;
  mutable write_fd : Unix.file_descr option;  (* open lazily, O_APPEND *)
  mutable write_off : int;
  mutable corrupt : int;
  mutable closed : bool;
}

let with_lock t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let segment_path t seg = Filename.concat t.dir (Printf.sprintf "cache-%d.seg" seg)

let checksum key doc = Stdlib.Digest.string (key ^ doc)

let put_u32 b off v =
  Bytes.set b off (Char.chr (v land 0xff));
  Bytes.set b (off + 1) (Char.chr ((v lsr 8) land 0xff));
  Bytes.set b (off + 2) (Char.chr ((v lsr 16) land 0xff));
  Bytes.set b (off + 3) (Char.chr ((v lsr 24) land 0xff))

let get_u32 b off =
  Char.code (Bytes.get b off)
  lor (Char.code (Bytes.get b (off + 1)) lsl 8)
  lor (Char.code (Bytes.get b (off + 2)) lsl 16)
  lor (Char.code (Bytes.get b (off + 3)) lsl 24)

let really_read fd buf off len =
  let rec go off len =
    if len > 0 then begin
      let n = Unix.read fd buf off len in
      if n = 0 then raise End_of_file;
      go (off + n) (len - n)
    end
  in
  go off len

(* Scan one segment, indexing sound records. Returns the offset past the
   last whole record (the resume point if this becomes the write
   segment). A bad checksum skips just that record — the length fields
   still frame it; an unreadable header or a length running past EOF is
   a torn tail and stops the scan. *)
let scan_segment t seg =
  let path = segment_path t seg in
  let fd = Unix.openfile path [ Unix.O_RDONLY ] 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      let size = (Unix.fstat fd).Unix.st_size in
      let header = Bytes.create header_bytes in
      let rec go off =
        if off + header_bytes > size then begin
          if off <> size then begin
            t.corrupt <- t.corrupt + 1;
            Log.warn t.log "disk_cache.torn_tail"
              [ ("segment", J.String path); ("offset", J.Int off) ]
          end;
          off
        end
        else begin
          really_read fd header 0 header_bytes;
          let key_len = get_u32 header 0 and doc_len = get_u32 header 4 in
          if
            key_len <= 0 || doc_len <= 0 || key_len > max_record
            || doc_len > max_record
            || off + header_bytes + key_len + doc_len > size
          then begin
            t.corrupt <- t.corrupt + 1;
            Log.warn t.log "disk_cache.torn_tail"
              [ ("segment", J.String path); ("offset", J.Int off) ];
            off
          end
          else begin
            let body = Bytes.create (key_len + doc_len) in
            really_read fd body 0 (key_len + doc_len);
            let key = Bytes.sub_string body 0 key_len in
            let doc = Bytes.sub_string body key_len doc_len in
            let stored = Bytes.sub_string header 8 16 in
            let next = off + header_bytes + key_len + doc_len in
            if not (String.equal stored (checksum key doc)) then begin
              t.corrupt <- t.corrupt + 1;
              Log.warn t.log "disk_cache.bad_checksum"
                [ ("segment", J.String path); ("offset", J.Int off) ]
            end
            else if not (Hashtbl.mem t.index key) then
              Hashtbl.replace t.index key { seg; off; key_len; doc_len };
            go next
          end
        end
      in
      go 0)

let list_segments dir =
  Sys.readdir dir |> Array.to_list
  |> List.filter_map (fun name ->
         match Scanf.sscanf_opt name "cache-%d.seg%!" Fun.id with
         | Some n when n >= 0 -> Some n
         | _ -> None)
  |> List.sort compare

let open_dir ?(log = Log.null) ?(segment_bytes = 64 * 1024 * 1024) dir =
  match
    if Sys.file_exists dir then
      if Sys.is_directory dir then Ok ()
      else Error (dir ^ " exists and is not a directory")
    else
      match Unix.mkdir dir 0o755 with
      | () -> Ok ()
      | exception Unix.Unix_error (e, _, _) ->
          Error
            (Printf.sprintf "cannot create %s: %s" dir (Unix.error_message e))
  with
  | Error _ as e -> e
  | Ok () ->
      let t =
        {
          dir;
          segment_bytes;
          log;
          mutex = Mutex.create ();
          index = Hashtbl.create 256;
          read_fds = Hashtbl.create 4;
          write_seg = 0;
          write_fd = None;
          write_off = 0;
          corrupt = 0;
          closed = false;
        }
      in
      let segs = list_segments dir in
      (* Scan ascending (first record for a key wins); appends resume at
         the end of the last whole record of the newest segment. *)
      let seg, off =
        List.fold_left
          (fun _ s ->
            match scan_segment t s with
            | e -> (s, e)
            | exception Unix.Unix_error (e, _, _) ->
                t.corrupt <- t.corrupt + 1;
                Log.warn t.log "disk_cache.unreadable_segment"
                  [
                    ("segment", J.String (segment_path t s));
                    ("error", J.String (Unix.error_message e));
                  ];
                (s, 0))
          (0, 0) segs
      in
      (* Appends must land exactly at the indexed offsets. A segment
         with a torn or unreadable tail ends before its file does, so
         writing there (O_APPEND goes to the true end) would skew every
         future index entry — rotate to a fresh segment instead. *)
      let seg, off =
        if segs = [] then (0, 0)
        else
          let size =
            match Unix.stat (segment_path t seg) with
            | st -> st.Unix.st_size
            | exception Unix.Unix_error _ -> -1
          in
          if off = size then (seg, off) else (seg + 1, 0)
      in
      t.write_seg <- seg;
      t.write_off <- off;
      Log.info log "disk_cache.loaded"
        [
          ("dir", J.String dir);
          ("keys", J.Int (Hashtbl.length t.index));
          ("segments", J.Int (List.length segs));
          ("corrupt_skipped", J.Int t.corrupt);
        ];
      Ok t

let read_fd t seg =
  match Hashtbl.find_opt t.read_fds seg with
  | Some fd -> fd
  | None ->
      let fd = Unix.openfile (segment_path t seg) [ Unix.O_RDONLY ] 0 in
      Hashtbl.replace t.read_fds seg fd;
      fd

let find t key =
  with_lock t (fun () ->
      match Hashtbl.find_opt t.index key with
      | None -> None
      | Some loc -> (
          match
            let fd = read_fd t loc.seg in
            ignore (Unix.lseek fd (loc.off + header_bytes) Unix.SEEK_SET);
            let body = Bytes.create (loc.key_len + loc.doc_len) in
            really_read fd body 0 (loc.key_len + loc.doc_len);
            let stored_key = Bytes.sub_string body 0 loc.key_len in
            let doc = Bytes.sub_string body loc.key_len loc.doc_len in
            if String.equal stored_key key then Some doc else None
          with
          | Some doc -> (
              match J.of_string doc with
              | Ok j -> Some j
              | Error _ ->
                  t.corrupt <- t.corrupt + 1;
                  Hashtbl.remove t.index key;
                  Log.warn t.log "disk_cache.bad_record"
                    [ ("key", J.String key) ];
                  None)
          | None | (exception End_of_file) | (exception Unix.Unix_error _) ->
              t.corrupt <- t.corrupt + 1;
              Hashtbl.remove t.index key;
              Log.warn t.log "disk_cache.bad_record" [ ("key", J.String key) ];
              None))

let mem t key = with_lock t (fun () -> Hashtbl.mem t.index key)

let writer t =
  match t.write_fd with
  | Some fd -> fd
  | None ->
      let fd =
        Unix.openfile
          (segment_path t t.write_seg)
          [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_APPEND ]
          0o644
      in
      t.write_fd <- Some fd;
      fd

let really_write fd buf =
  let len = Bytes.length buf in
  let rec go off =
    if off < len then go (off + Unix.write fd buf off (len - off))
  in
  go 0

let add t key doc =
  with_lock t (fun () ->
      if not (t.closed || Hashtbl.mem t.index key) then begin
        let doc_s = J.to_compact_string doc in
        let key_len = String.length key and doc_len = String.length doc_s in
        if t.write_off > 0 && t.write_off + header_bytes + key_len + doc_len
                              > t.segment_bytes
        then begin
          (match t.write_fd with
          | Some fd ->
              (try Unix.close fd with Unix.Unix_error _ -> ());
              t.write_fd <- None
          | None -> ());
          t.write_seg <- t.write_seg + 1;
          t.write_off <- 0
        end;
        let buf = Bytes.create (header_bytes + key_len + doc_len) in
        put_u32 buf 0 key_len;
        put_u32 buf 4 doc_len;
        Bytes.blit_string (checksum key doc_s) 0 buf 8 16;
        Bytes.blit_string key 0 buf header_bytes key_len;
        Bytes.blit_string doc_s 0 buf (header_bytes + key_len) doc_len;
        really_write (writer t) buf;
        Hashtbl.replace t.index key
          { seg = t.write_seg; off = t.write_off; key_len; doc_len };
        t.write_off <- t.write_off + Bytes.length buf
      end)

let length t = with_lock t (fun () -> Hashtbl.length t.index)

let segments t =
  with_lock t (fun () ->
      let segs = Hashtbl.create 4 in
      Hashtbl.iter (fun _ loc -> Hashtbl.replace segs loc.seg ()) t.index;
      (* The write segment counts even before its first indexed record
         lands in it. *)
      if t.write_off > 0 || t.write_fd <> None then
        Hashtbl.replace segs t.write_seg ();
      Hashtbl.length segs)

let corrupt_skipped t = with_lock t (fun () -> t.corrupt)

let close t =
  with_lock t (fun () ->
      t.closed <- true;
      (match t.write_fd with
      | Some fd ->
          (try Unix.close fd with Unix.Unix_error _ -> ());
          t.write_fd <- None
      | None -> ());
      Hashtbl.iter
        (fun _ fd -> try Unix.close fd with Unix.Unix_error _ -> ())
        t.read_fds;
      Hashtbl.reset t.read_fds)
