(* Unit-cost deficit round robin. Every job costs 1, so the classic
   byte-quantum DRR collapses to: a tenant at the head of the rotation
   holds a deficit recharged to its weight when its turn starts, spends
   1 per pop, and rotates to the back when the deficit is exhausted or
   its queue drains. *)

type 'a tenant_q = {
  weight : int;
  mutable deficit : int;
  mutable in_ring : bool;
  (* (priority, seq, item), sorted priority desc then seq asc; seq
     breaks ties FIFO. Caps are small (hundreds), so O(depth) insertion
     beats a heap on obviousness. *)
  mutable items : (int * int * 'a) list;
  mutable depth : int;
}

type 'a t = {
  cap : int;
  default_weight : int;
  pinned : (string * int) list;
  tbl : (string, 'a tenant_q) Hashtbl.t;
  ring : string Queue.t;  (* active (non-empty) tenants, rotation order *)
  mutable total : int;
  mutable seq : int;
}

let create ?(default_weight = 1) ?(weights = []) ~cap () =
  if cap <= 0 then invalid_arg "Fair_queue.create: cap must be positive";
  if default_weight <= 0 then
    invalid_arg "Fair_queue.create: default_weight must be positive";
  List.iter
    (fun (tenant, w) ->
      if w <= 0 then
        invalid_arg
          (Printf.sprintf "Fair_queue.create: weight for %S must be positive"
             tenant))
    weights;
  {
    cap;
    default_weight;
    pinned = weights;
    tbl = Hashtbl.create 8;
    ring = Queue.create ();
    total = 0;
    seq = 0;
  }

let weight_for t tenant =
  match List.assoc_opt tenant t.pinned with
  | Some w -> w
  | None -> t.default_weight

let tenant_q t tenant =
  match Hashtbl.find_opt t.tbl tenant with
  | Some tq -> tq
  | None ->
      let tq =
        {
          weight = weight_for t tenant;
          deficit = 0;
          in_ring = false;
          items = [];
          depth = 0;
        }
      in
      Hashtbl.replace t.tbl tenant tq;
      tq

let push t ~tenant ~priority v =
  let tq = tenant_q t tenant in
  if tq.depth >= t.cap then Error (`Tenant_full tq.depth)
  else begin
    let seq = t.seq in
    t.seq <- seq + 1;
    let rec insert = function
      | [] -> [ (priority, seq, v) ]
      | ((p, _, _) as hd) :: tl when p >= priority -> hd :: insert tl
      | tl -> (priority, seq, v) :: tl
    in
    tq.items <- insert tq.items;
    tq.depth <- tq.depth + 1;
    t.total <- t.total + 1;
    if not tq.in_ring then begin
      (* Rejoining at the back with a fresh quantum: an idle tenant
         cannot barge into the turn in progress. *)
      tq.in_ring <- true;
      tq.deficit <- tq.weight;
      Queue.push tenant t.ring
    end;
    Ok ()
  end

let pop_item tq =
  match tq.items with
  | [] -> None
  | (_, _, v) :: tl ->
      tq.items <- tl;
      tq.depth <- tq.depth - 1;
      Some v

let rec pop t =
  if t.total = 0 then None
  else
    let tenant = Queue.peek t.ring in
    let tq = Hashtbl.find t.tbl tenant in
    if tq.depth = 0 then begin
      ignore (Queue.pop t.ring);
      tq.in_ring <- false;
      pop t
    end
    else if tq.deficit <= 0 then begin
      ignore (Queue.pop t.ring);
      Queue.push tenant t.ring;
      tq.deficit <- tq.weight;
      pop t
    end
    else begin
      tq.deficit <- tq.deficit - 1;
      let v = pop_item tq in
      t.total <- t.total - 1;
      if tq.depth = 0 then begin
        ignore (Queue.pop t.ring);
        tq.in_ring <- false
      end;
      v
    end

let length t = t.total

let depth t tenant =
  match Hashtbl.find_opt t.tbl tenant with Some tq -> tq.depth | None -> 0

let cap t = t.cap
let weight t tenant = weight_for t tenant

let tenants t =
  Hashtbl.fold (fun name tq acc -> (name, tq.depth) :: acc) t.tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let position t ~tenant pred =
  match Hashtbl.find_opt t.tbl tenant with
  | None -> None
  | Some tq ->
      let rec go i = function
        | [] -> None
        | (_, _, v) :: tl -> if pred v then Some i else go (i + 1) tl
      in
      go 0 tq.items

let drain t =
  let rec go acc =
    match pop t with None -> List.rev acc | Some v -> go (v :: acc)
  in
  go []
