(** Persistent result cache: append-only checksummed segment files,
    layered under the scheduler's in-memory LRU so a restarted fleet
    keeps its hit ratio.

    On-disk record format (little-endian), appended to [cache-<n>.seg]
    files in the cache directory:

    {v
    u32 key_len | u32 doc_len | 16B MD5(key ^ doc) | key | doc
    v}

    where [key] is the {!Service.Digest.job_key} and [doc] the compact
    JSON of the cached (scrubbed) result document. Startup scans every
    segment in numeric order and indexes [key -> (segment, offset)]; a
    record whose checksum does not match is skipped with a warning (and
    counted), a record whose length fields run past the segment's end —
    a torn final write — truncates the scan of that segment. Loading
    never crashes on a corrupt file. Documents are re-read (and
    re-verified) on {!find}, so the index stays O(keys), not O(bytes).

    A duplicate key keeps the {e first} record: the cache stores
    deterministic documents, so any later append for the same key is
    byte-identical by contract and there is nothing to replace.

    Single-process, single-writer; calls are serialized by an internal
    mutex (the scheduler's handler threads share one [t]). *)

type t

val open_dir :
  ?log:Obs.Log.t -> ?segment_bytes:int -> string -> (t, string) result
(** Open (creating the directory if needed) and index every existing
    segment. [segment_bytes] (default 64 MiB) bounds a segment before
    appends rotate to a fresh file. [Error] only on unusable
    directories; corrupt records are a warning, not an error. *)

val find : t -> string -> Obs.Json.t option
(** Read the document for a key back from disk, verifying the checksum
    again; a record that rotted since indexing returns [None]. *)

val mem : t -> string -> bool

val add : t -> string -> Obs.Json.t -> unit
(** Append a record and index it; no-op when the key is present. *)

val length : t -> int
(** Indexed keys. *)

val segments : t -> int
(** Segment files in use. *)

val corrupt_skipped : t -> int
(** Records dropped by checksum/framing failures since {!open_dir}. *)

val close : t -> unit
(** Flush and close descriptors; the [t] must not be used afterwards. *)
