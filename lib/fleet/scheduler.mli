(** The fleet scheduler: one process owning the public Unix socket,
    fanning jobs out to a pool of forked/exec'd worker processes, each a
    full single-process service engine ({!Service.Server}) on its own
    private socket ([<socket>.worker<i>]).

    The scheduler itself is I/O-only: it parses, canonicalises and
    digests submissions (deterministic preprocessing — the same code
    path the workers run, so a single-worker fleet replies
    byte-identically to the single-process daemon), but every k-way
    computation happens inside a worker. What the scheduler adds on
    top of the PR 4–8 engine:

    - {b Batched submission}: the [submit-batch] verb carries up to
      1024 circuits in one frame and replies per item.
    - {b Weighted fair queuing}: jobs queue per tenant
      ({!Fair_queue}); backpressure ([overloaded]) is per tenant, so
      one noisy tenant cannot starve or lock out the others.
    - {b Persistent result cache}: an in-memory LRU over a
      {!Disk_cache}; a restart reloads the disk index, keeping the hit
      ratio (and its byte-identical replies) across fleet restarts.
    - {b Portfolio racing}: a submission with [portfolio = true] misses
      the cache onto {e all currently idle} workers at dispatch time,
      each with a derived seed ([seed + i * 65537]); the first feasible
      result cooperatively cancels the rest and the cheapest feasible
      one wins. Portfolio results are not cached — the winner depends
      on racing, not only on the key.
    - {b Supervision}: dead workers (detected by [waitpid] and by
      health probes of idle workers) are respawned with bounded
      exponential backoff; a job in flight on a dead worker is requeued
      {e exactly once} — a second loss fails it with the typed
      [worker_lost] error, so a poison job cannot crash-loop the fleet
      while the client always gets exactly one reply.

    [resubmit] is forwarded to the worker that computed the base
    (digest affinity); its warm context lives in that worker's memory,
    so a worker lost mid-resubmit fails with [worker_lost] rather than
    requeueing cold under warm-lineage semantics. *)

type config = {
  socket_path : string;  (** public socket; workers get [.worker<i>] *)
  workers : int;  (** pool size, >= 1 *)
  worker_exe : string;
      (** binary spawned as [<exe> serve --socket <private> ...] — the
          CLI passes its own [Sys.executable_name] *)
  queue_cap : int;  (** {e per-tenant} queue bound *)
  tenant_weights : (string * int) list;
      (** fair-share weights; unlisted tenants weigh 1 *)
  cache_cap : int;  (** in-memory LRU entries *)
  cache_dir : string option;  (** persistent cache directory; [None] = off *)
  timeout : float option;  (** per-job budget, enforced by the workers *)
  jobs : int;  (** engine domains per worker *)
  log : Obs.Log.t;
}

val default_config :
  socket_path:string -> workers:int -> worker_exe:string -> config
(** [queue_cap = 64] per tenant, no pinned weights, [cache_cap = 64],
    no disk cache, no timeout, [jobs = 1], no log. *)

val run :
  ?on_ready:(unit -> unit) ->
  ?external_stop:(unit -> bool) ->
  config ->
  (unit, string) result
(** Bind the public socket ({!Service.Server.bind_socket} semantics),
    spawn the workers, serve until shutdown (verb or [external_stop]),
    then drain: finish queued and in-flight jobs, shut the workers down
    gracefully (SIGKILL stragglers), close the disk cache, unlink the
    sockets. [on_ready] fires once the public socket listens — workers
    may still be starting; jobs queue until they come up. *)
