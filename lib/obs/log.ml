type level = Debug | Info | Warn | Error

let level_to_string = function
  | Debug -> "debug"
  | Info -> "info"
  | Warn -> "warn"
  | Error -> "error"

let level_of_string s =
  match String.lowercase_ascii s with
  | "debug" -> Some Debug
  | "info" -> Some Info
  | "warn" | "warning" -> Some Warn
  | "error" -> Some Error
  | _ -> None

let severity = function Debug -> 0 | Info -> 1 | Warn -> 2 | Error -> 3

type sink = { emit : string -> unit; min_level : level; scrub : bool }
type t = sink option

let null = None

(* The log scrub contract is the stats contract (_secs/_per_sec/_util,
   Snapshot.scrub_elapsed) extended with "_ms": service latency fields are
   integer milliseconds precisely so they survive in stats documents, but
   on a log line they are wall-derived per-record values, so a
   byte-deterministic log must null them too. *)
let is_volatile_key k =
  let ends_with suf =
    let n = String.length k and m = String.length suf in
    n >= m && String.sub k (n - m) m = suf
  in
  ends_with "_secs" || ends_with "_ms" || ends_with "_per_sec"
  || ends_with "_util"

let rec scrub_value = function
  | Json.Obj fields ->
      Json.Obj
        (List.map
           (fun (k, v) ->
             if is_volatile_key k then (k, Json.Null) else (k, scrub_value v))
           fields)
  | Json.List items -> Json.List (List.map scrub_value items)
  | j -> j

let scrub_fields fields =
  List.map
    (fun (k, v) ->
      if is_volatile_key k then (k, Json.Null) else (k, scrub_value v))
    fields

(* One global mutex keeps concurrently emitted lines whole. Ordering
   across threads is the caller's concern: the service emits every
   info-level lifecycle line under its own state mutex, which is what
   makes scrubbed logs byte-deterministic for a serialized workload. *)
let emit_mutex = Mutex.create ()

let make ?(level = Info) ?(scrub = false) emit =
  Some { emit; min_level = level; scrub }

let to_channel ?level ?scrub oc =
  make ?level ?scrub (fun line ->
      output_string oc line;
      output_char oc '\n';
      flush oc)

let to_buffer ?level ?scrub buf =
  make ?level ?scrub (fun line ->
      Buffer.add_string buf line;
      Buffer.add_char buf '\n')

let enabled t lvl =
  match t with
  | None -> false
  | Some s -> severity lvl >= severity s.min_level

let line ~scrub lvl event fields =
  let fields = if scrub then scrub_fields fields else fields in
  (* Obs.Clock.wall without the cycle (Obs re-exports this module). *)
  let ts = if scrub then Json.Null else Json.Float (Unix.gettimeofday ()) in
  Json.to_compact_string
    (Json.Obj
       (("ts_secs", ts)
        :: ("level", Json.String (level_to_string lvl))
        :: ("event", Json.String event)
        :: fields))

let log t lvl event fields =
  match t with
  | None -> ()
  | Some s ->
      if severity lvl >= severity s.min_level then begin
        let l = line ~scrub:s.scrub lvl event fields in
        Mutex.lock emit_mutex;
        Fun.protect ~finally:(fun () -> Mutex.unlock emit_mutex) (fun () ->
            s.emit l)
      end

let debug t event fields = log t Debug event fields
let info t event fields = log t Info event fields
let warn t event fields = log t Warn event fields
let error t event fields = log t Error event fields
