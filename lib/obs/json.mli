(** Minimal JSON document values with a deterministic emitter.

    The observability layer needs a stable on-disk representation (two runs
    with the same seed must serialise byte-identically, elapsed-time fields
    aside), so the emitter is hand-rolled: object fields keep their
    construction order, floats render through one fixed format, and there
    are no dependencies beyond the standard library. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Pretty-printed (two-space indent) UTF-8 JSON, ending without a
    newline. Strings are escaped per RFC 8259; non-finite floats render as
    [null]. *)

val to_compact_string : t -> string
(** Single-line rendering (no whitespace, no interior newlines) with the
    same escaping and float format as {!to_string}. This is the JSON-lines
    form: one {!Obs.Log} record per line stays greppable and parseable. *)

val pp : Format.formatter -> t -> unit
(** Same rendering as {!to_string}. *)

val write_file : path:string -> t -> unit
(** {!to_string} plus a trailing newline, written atomically enough for our
    purposes (single [output_string]). *)

val of_string : string -> (t, string) result
(** Parse one RFC 8259 JSON document (the whole string must be consumed,
    whitespace aside). Numbers without a fraction or exponent that fit an
    OCaml [int] parse as [Int], everything else numeric as [Float]; object
    fields keep their textual order, so [of_string (to_string j) = Ok j]
    for any [j] free of non-finite floats and duplicate keys. Errors carry
    the byte offset of the failure. The service protocol
    ({!Service.Codec}) depends on this parser — it is the only JSON reader
    in the system. *)

(** {1 Accessors} — small conveniences for tests and schema checks. *)

val member : string -> t -> t option
(** Field lookup in an [Obj]; [None] on missing fields or non-objects. *)

val to_int : t -> int option
val to_float : t -> float option
val to_bool : t -> bool option
val to_str : t -> string option
