(** Observability sink for the partitioning engine: named counters,
    span-scoped timers, and a structured event stream.

    A sink is either the shared {!noop} (the default everywhere — recording
    into it is a single tag test, so instrumented hot paths cost nothing
    when nobody is listening) or a collecting sink from {!create}. The
    engine records into whichever sink the caller passed; the caller reads
    everything back through one canonical path, {!Snapshot}.

    Conventions that the rest of the system relies on:
    - every wall-time quantity lives under a key ending in ["_secs"]
      (timer entries, elapsed fields of reports). This is what makes
      {!Snapshot.scrub_elapsed} a complete and minimal mask: two runs with
      the same seed serialise byte-identically after scrubbing, and the
      ["_secs"] keys are the only ones scrubbed;
    - events record the active span path (["kway/run0/split2"]) in a
      ["span"] field, so a flat event list stays attributable. *)

type t

val noop : t
(** The do-nothing sink; recording into it is free. *)

val create : unit -> t
(** A fresh collecting sink. A sink must only be written from one domain
    at a time; parallel recording goes through {!fork}/{!merge_into}. *)

val fork : t -> t
(** A private sink for one parallel trial: collecting iff the parent is,
    and starting with the parent's {e current} span path, so events and
    timers recorded in the child carry the same span context they would
    have carried if recorded in the parent at the fork point. The child
    shares no mutable state with the parent — recording into it from
    another domain is safe. *)

val merge_into : into:t -> t -> unit
(** [merge_into ~into child] appends everything the child recorded:
    counters and timers add into the parent's, events append after the
    parent's existing events, preserving the child's recording order. A
    driver that forks one child per trial and merges them back in trial
    order reproduces the exact event stream of the sequential loop —
    that is the determinism contract of the parallel engine. No-op when
    either sink is {!noop}. The child must be quiescent (its writing
    domain joined) before merging. *)

val enabled : t -> bool
(** [false] exactly for {!noop}. Hot paths use this to skip building event
    payloads entirely. *)

val incr : ?by:int -> t -> string -> unit
(** Add [by] (default 1) to a named counter. *)

val span : t -> string -> (unit -> 'a) -> 'a
(** [span t name f] runs [f] inside a named span: the span stack gains
    [name], the CPU time of [f] (via [Sys.time], like every elapsed figure
    this system reports) accumulates in a timer keyed
    ["<path>/<name>_secs"], and the stack pops even if [f] raises. On
    {!noop} it is just [f ()]. *)

val current_span : t -> string
(** Current span path, ["/"]-joined, [""] at top level or on {!noop}. *)

val event : t -> string -> (string * Json.t) list -> unit
(** Append a structured event. The current span path, when non-empty, is
    prepended to the fields as ["span"]. Callers guard payload construction
    with {!enabled} when the fields are costly to build. *)

(** {1 Reading a sink} *)

module Snapshot : sig
  type event = { name : string; fields : (string * Json.t) list }

  type t = {
    counters : (string * int) list;  (** sorted by name *)
    timers : (string * float) list;  (** accumulated seconds, sorted by key *)
    events : event list;             (** in recording order *)
  }

  val to_json : t -> Json.t
  (** [{"counters": {...}, "timers": {...}, "events": [...]}]. Each event
      becomes an object with its ["event"] name first, then its fields.
      Deterministic for deterministic recording — only ["_secs"] keyed
      values vary between identical runs. *)

  val scrub_elapsed : Json.t -> Json.t
  (** Replace the value of every object field whose key ends in ["_secs"]
      with [Null], recursively, and nothing else. Two same-seed runs must
      agree byte-for-byte after this. *)

  val pp : Format.formatter -> t -> unit
  (** Human summary: counters, timers, event count by name. *)
end

val snapshot : t -> Snapshot.t
(** Read everything recorded so far ({!noop} snapshots empty). The sink
    keeps recording; snapshots are cheap copies. *)

(** Re-export so users of the sink need only one library dependency. *)
module Json = Json
