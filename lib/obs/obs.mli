(** Observability sink for the partitioning engine: named counters,
    span-scoped timers, log2-bucket histograms, a structured event stream,
    and (optionally) a wall-clock trace with per-domain tracks.

    A sink is either the shared {!noop} (the default everywhere — recording
    into it is a single tag test, so instrumented hot paths cost nothing
    when nobody is listening) or a collecting sink from {!create}. The
    engine records into whichever sink the caller passed; the caller reads
    aggregates back through one canonical path, {!Snapshot}, and the
    recorded trace through {!Trace}.

    Conventions that the rest of the system relies on:
    - every wall-time quantity lives under a key ending in ["_secs"]
      (timer entries, elapsed fields of reports), and every wall-derived
      rate under a key ending in ["_per_sec"] (e.g. the
      ["fm.moves_per_sec"] histogram). This is what makes
      {!Snapshot.scrub_elapsed} a complete and minimal mask: two runs with
      the same seed serialise byte-identically after scrubbing, and the
      ["_secs"]/["_per_sec"] keys are the only ones scrubbed;
    - events record the active span path (["kway/run0/split2"]) in a
      ["span"] field, so a flat event list stays attributable;
    - the trace never enters {!Snapshot.to_json}: wall-clock timestamps,
      track ids and GC deltas are intrinsically execution-dependent, so
      they live in their own artifact ({!Trace.write}) and the stats
      document stays byte-identical across [jobs] settings. *)

type t

val noop : t
(** The do-nothing sink; recording into it is free. *)

val create : ?trace:bool -> unit -> t
(** A fresh collecting sink. With [trace = true] (default [false]) every
    {!span} additionally records begin/end wall-clock timestamps —
    monotonic within the sink, measured relative to the sink's creation
    instant so documents never embed absolute dates — and the GC delta
    ({!Trace.gc_delta}) over the span body. A sink must only be written
    from one domain at a time; parallel recording goes through
    {!fork}/{!merge_into}. *)

(** The two clocks every elapsed figure in this system comes from. Route
    all timing through here — ad-hoc [Sys.time]/[Unix.gettimeofday] calls
    are how CPU seconds end up labelled as wall clock. *)
module Clock : sig
  val wall : unit -> float
  (** Wall-clock seconds since the epoch ([Unix.gettimeofday]). Under
      parallelism this is the "how long did I wait" clock. *)

  val cpu : unit -> float
  (** Process CPU seconds ([Sys.time]), summed over all domains. Under
      parallelism it exceeds elapsed time. *)
end

val fork : ?pid:int -> ?track:int -> t -> t
(** A private sink for one parallel trial: collecting iff the parent is,
    and starting with the parent's {e current} span path, so events and
    timers recorded in the child carry the same span context they would
    have carried if recorded in the parent at the fork point. The child
    shares no mutable state with the parent — recording into it from
    another domain is safe.

    When the parent traces, the child traces too, against the same epoch;
    [pid] (trace process lane, by convention the run index) and [track]
    (trace thread lane, by convention the {!Parallel.Pool} worker id)
    default to the parent's. They shape only the trace — aggregates and
    events are lane-blind, which is what keeps scrubbed stats independent
    of how trials were scheduled. *)

val merge_into : into:t -> t -> unit
(** [merge_into ~into child] appends everything the child recorded:
    counters, timers and histogram buckets add into the parent's, events
    append after the parent's existing events (preserving the child's
    recording order), trace spans likewise. A driver that forks one child
    per trial and merges them back in trial order reproduces the exact
    event stream of the sequential loop — that is the determinism contract
    of the parallel engine. No-op when either sink is {!noop}. The child
    must be quiescent (its writing domain joined) before merging. *)

val enabled : t -> bool
(** [false] exactly for {!noop}. Hot paths use this to skip building event
    payloads entirely. *)

val incr : ?by:int -> t -> string -> unit
(** Add [by] (default 1) to a named counter. *)

val observe : t -> string -> int -> unit
(** Record one observation into the named histogram. Buckets are fixed
    signed log2 ranges (see {!bucket_of}), so histograms from any two
    sinks merge exactly and the JSON form is deterministic — counts and
    integer sums only, no floats. *)

val span : t -> string -> (unit -> 'a) -> 'a
(** [span t name f] runs [f] inside a named span: the span stack gains
    [name], the CPU time of [f] (via {!Clock.cpu}, like every elapsed
    figure this system reports) accumulates in a timer keyed
    ["<path>/<name>_secs"], and the stack pops even if [f] raises. On a
    tracing sink the span also records its wall-clock begin/end and GC
    delta as a {!Trace.span}. On {!noop} it is just [f ()]. *)

val current_span : t -> string
(** Current span path, ["/"]-joined, [""] at top level or on {!noop}. *)

val add_span :
  ?pid:int -> ?tid:int -> t -> string -> begin_wall:float -> end_wall:float ->
  unit
(** Append a trace span with explicit bounds, for lifetimes no single call
    scope covers (a queued job's wait spans two threads; its decode happens
    before the job id that names its trace lane exists). The bounds are
    absolute {!Clock.wall} stamps; they are stored relative to the sink's
    epoch like {!span}'s. [pid]/[tid] default to the sink's lane; the GC
    delta is zero (nobody ran "inside" the span). No-op on a non-tracing
    sink. *)

val event : t -> string -> (string * Json.t) list -> unit
(** Append a structured event. The current span path, when non-empty, is
    prepended to the fields as ["span"]. Callers guard payload construction
    with {!enabled} when the fields are costly to build. *)

(** {1 Histogram buckets} *)

val bucket_of : int -> int
(** Total map from observation to bucket index: [0] for 0, [b > 0] for
    [v] with [2^(b-1) <= v <= 2^b - 1], and [-b] for the mirrored negative
    range. Every int lands in exactly one bucket. *)

val bucket_bounds : int -> int * int
(** Inclusive [(lo, hi)] range of a bucket index, clamped to the int
    range at the extremes. [bucket_bounds (bucket_of v)] contains [v],
    and distinct indices in {!bucket_of}'s image ([-63] to [62] on 63-bit
    ints) have disjoint ranges; indices beyond the image clamp to the
    extreme buckets. *)

val bucket_label : int -> string
(** Human/JSON label: ["0"], ["[1,1]"], ["[4,7]"], ["[-7,-4]"], … *)

(** {1 Reading a sink} *)

module Snapshot : sig
  type event = { name : string; fields : (string * Json.t) list }

  type histogram = {
    count : int;  (** observations *)
    sum : int;    (** sum of observed values *)
    buckets : (int * int) list;
        (** (bucket index, count), sorted by index; counts sum to [count] *)
  }

  type t = {
    counters : (string * int) list;  (** sorted by name *)
    timers : (string * float) list;  (** accumulated seconds, sorted by key *)
    histograms : (string * histogram) list;  (** sorted by name *)
    events : event list;             (** in recording order *)
  }

  val to_json : t -> Json.t
  (** [{"counters": {...}, "timers": {...}, "histograms": {...},
      "events": [...]}]. Each histogram serialises as
      [{"count", "sum", "buckets": {"[lo,hi]": n, ...}}]; each event
      becomes an object with its ["event"] name first, then its fields.
      Deterministic for deterministic recording — only ["_secs"] and
      ["_per_sec"] keyed values vary between identical runs. The trace is
      deliberately absent (see {!Trace}). *)

  val scrub_elapsed : Json.t -> Json.t
  (** Replace the value of every object field whose key ends in ["_secs"],
      ["_per_sec"] or ["_util"] with [Null], recursively, and nothing else
      (a ["_per_sec"]-named histogram is masked whole — its count, sum and
      buckets are all wall-derived). ["_secs"]/["_per_sec"] mask
      wall-derived variance; ["_util"] masks derived utilization ratios
      (schema v5) whose integral inputs are already in the document, so
      scrubbed comparisons are float-formatting-independent. Two same-seed
      runs must agree byte-for-byte after this. *)

  val pp : Format.formatter -> t -> unit
  (** Human summary: counters, timers, histograms, event count by name.
      Every section prints at least one line — an explicit ["(none)"]
      when empty — so piped output has a stable shape. *)
end

val snapshot : t -> Snapshot.t
(** Read everything recorded so far ({!noop} snapshots empty). The sink
    keeps recording; snapshots are cheap copies. *)

(** {1 Wall-clock tracing}

    Spans recorded by a tracing sink ({!create} with [trace:true]) carry
    wall-clock begin/end timestamps relative to the sink's epoch, a
    [(pid, tid)] lane (by convention: multi-start run, pool worker
    domain), and the GC delta over the span body. {!Trace.write} emits
    them as Chrome trace-event JSON ([ph = "X"] complete events plus
    process/thread name metadata) loadable in Perfetto or
    [chrome://tracing]. *)
module Trace : sig
  type gc_delta = {
    minor_words : float;
    major_words : float;
    minor_collections : int;
    major_collections : int;
  }

  type span = {
    span_name : string;  (** full span path, ["run0/split1/dev-XC3042"] *)
    span_pid : int;      (** trace process lane: the multi-start run *)
    span_tid : int;      (** trace thread lane: the pool worker domain *)
    begin_secs : float;  (** wall clock, relative to the sink epoch *)
    end_secs : float;
    gc : gc_delta;       (** GC activity of the span body *)
  }

  val tracing : t -> bool
  (** Whether the sink records trace spans. *)

  val spans : t -> span list
  (** All recorded spans, sorted by begin time (enclosing span first on
      ties) — so the per-tid timestamp stream is non-decreasing. *)

  val to_json : t -> Json.t
  (** The Chrome trace-event document: [{"displayTimeUnit": "ms",
      "traceEvents": [...]}] with one metadata pair per (pid, tid) lane
      and one ["X"] event per span ([ts]/[dur] in microseconds, GC delta
      in [args]). *)

  val write : path:string -> t -> unit
end

(** {1 OpenMetrics export}

    Renders a {!Snapshot} — plus caller-supplied gauges and explicit-bound
    SLO histograms — as OpenMetrics/Prometheus text exposition format. The
    daemon's [metrics] verb serves this; [fpgapart svc-metrics] dumps it.
    Unlike the stats document, the exported text is wall-clock-honest and
    carries no determinism contract: it exists to be scraped, not
    diffed. *)
module Metrics_export : sig
  (** Cumulative latency histograms over a fixed set of explicit
      millisecond bounds — the shape OpenMetrics expects, kept directly
      (observe is O(#buckets)). The signed-log2 {!observe} histograms
      stay the merge-exact internal representation; these exist for
      human-meaningful SLO bounds at the scrape endpoint. Not
      thread-safe; the daemon observes into them under its state
      mutex. *)
  module Slo : sig
    type t

    val default_buckets_ms : int list
    (** [1ms … 30s], a generic latency ladder. *)

    val create : ?buckets_ms:int list -> unit -> t
    (** Bounds are sorted and deduplicated; counts start at zero. *)

    val observe : t -> int -> unit
    (** Record one latency in ms (incrementing every bucket whose bound
        it fits under, plus the implicit [+Inf]). *)

    val count : t -> int
    val sum_ms : t -> int

    val buckets : t -> (int * int) list
    (** [(upper bound ms, cumulative count)] in ascending bound order;
        the implicit [+Inf] bucket is {!count}. *)
  end

  type gauge = {
    g_name : string;
    g_help : string;
    g_value : float;
    g_labels : (string * string) list;
        (** rendered as [{k="v",...}] after the family name; label names
            are sanitized, values escaped. Samples of one family (same
            [g_name], different labels) must be listed consecutively —
            they share a single HELP/TYPE header. *)
  }
  (** A point-in-time sample (queue depth, heap words…). Integral values
      render without a decimal point. *)

  val sanitize : string -> string
  (** Map an Obs key to the Prometheus name charset: every character
      outside [[a-zA-Z0-9_]] becomes ['_'], with a leading ['_'] if the
      name starts with a digit. *)

  val render :
    ?prefix:string ->
    ?gauges:gauge list ->
    ?slos:(string * string * Slo.t) list ->
    Snapshot.t ->
    string
  (** The full exposition document, ["# EOF\n"]-terminated. Every family
      name is [prefix ^ "_" ^ sanitize key] ([prefix] defaults to
      ["fpgapart"]). Gauges render first, then [slos] as [(name, help,
      histogram)] triples — recorded in ms, exported in seconds (base
      units) — then the snapshot: counters as [<family>_total], timers as
      gauges, signed-log2 histograms as native-bound histograms with
      cumulative bucket counts. HELP text and label values are escaped
      per the exposition format. *)
end

(** Re-export so users of the sink need only one library dependency. *)
module Json = Json

(** Leveled JSON-lines logging (see {!Log.t}); re-exported like {!Json}
    so [Obs.Log] is the one logging surface. *)
module Log = Log
