type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let escape buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

(* One fixed float format: shortest %.12g form, forced to contain a '.' or
   an exponent so it reads back as a float. Non-finite values have no JSON
   number form; emit null. *)
let float_repr f =
  match Float.classify_float f with
  | FP_nan | FP_infinite -> "null"
  | _ ->
      let s = Printf.sprintf "%.12g" f in
      if String.exists (fun c -> c = '.' || c = 'e') s then s else s ^ ".0"

let rec emit buf indent j =
  let pad n = Buffer.add_string buf (String.make n ' ') in
  match j with
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> Buffer.add_string buf (float_repr f)
  | String s -> escape buf s
  | List [] -> Buffer.add_string buf "[]"
  | List items ->
      Buffer.add_string buf "[\n";
      List.iteri
        (fun k item ->
          if k > 0 then Buffer.add_string buf ",\n";
          pad (indent + 2);
          emit buf (indent + 2) item)
        items;
      Buffer.add_char buf '\n';
      pad indent;
      Buffer.add_char buf ']'
  | Obj [] -> Buffer.add_string buf "{}"
  | Obj fields ->
      Buffer.add_string buf "{\n";
      List.iteri
        (fun k (key, v) ->
          if k > 0 then Buffer.add_string buf ",\n";
          pad (indent + 2);
          escape buf key;
          Buffer.add_string buf ": ";
          emit buf (indent + 2) v)
        fields;
      Buffer.add_char buf '\n';
      pad indent;
      Buffer.add_char buf '}'

let to_string j =
  let buf = Buffer.create 1024 in
  emit buf 0 j;
  Buffer.contents buf

(* Single-line rendering for JSON-lines streams (one document per line,
   no interior newlines). Same escaping and float format as [to_string]. *)
let rec emit_compact buf j =
  match j with
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> Buffer.add_string buf (float_repr f)
  | String s -> escape buf s
  | List items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun k item ->
          if k > 0 then Buffer.add_char buf ',';
          emit_compact buf item)
        items;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun k (key, v) ->
          if k > 0 then Buffer.add_char buf ',';
          escape buf key;
          Buffer.add_char buf ':';
          emit_compact buf v)
        fields;
      Buffer.add_char buf '}'

let to_compact_string j =
  let buf = Buffer.create 256 in
  emit_compact buf j;
  Buffer.contents buf

let pp fmt j = Format.pp_print_string fmt (to_string j)

let write_file ~path j =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (to_string j);
      output_char oc '\n')

(* ------------------------------------------------------------------ *)
(* Parsing                                                            *)
(* ------------------------------------------------------------------ *)

exception Parse_error of int * string

let of_string text =
  let len = String.length text in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (!pos, msg)) in
  let peek () = if !pos < len then Some text.[!pos] else None in
  let advance () = Stdlib.incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect ch =
    match peek () with
    | Some c when c = ch -> advance ()
    | Some c -> fail (Printf.sprintf "expected '%c', found '%c'" ch c)
    | None -> fail (Printf.sprintf "expected '%c', found end of input" ch)
  in
  let literal word value =
    let n = String.length word in
    if !pos + n <= len && String.sub text !pos n = word then begin
      pos := !pos + n;
      value
    end
    else fail ("expected " ^ word)
  in
  let utf8_of_code buf u =
    (* RFC 3629 encoding of one scalar value (surrogates handled by the
       caller). *)
    if u < 0x80 then Buffer.add_char buf (Char.chr u)
    else if u < 0x800 then begin
      Buffer.add_char buf (Char.chr (0xC0 lor (u lsr 6)));
      Buffer.add_char buf (Char.chr (0x80 lor (u land 0x3F)))
    end
    else if u < 0x10000 then begin
      Buffer.add_char buf (Char.chr (0xE0 lor (u lsr 12)));
      Buffer.add_char buf (Char.chr (0x80 lor ((u lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (u land 0x3F)))
    end
    else begin
      Buffer.add_char buf (Char.chr (0xF0 lor (u lsr 18)));
      Buffer.add_char buf (Char.chr (0x80 lor ((u lsr 12) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor ((u lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (u land 0x3F)))
    end
  in
  let hex4 () =
    if !pos + 4 > len then fail "truncated \\u escape";
    let v = int_of_string ("0x" ^ String.sub text !pos 4) in
    pos := !pos + 4;
    v
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec loop () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> (
          advance ();
          match peek () with
          | None -> fail "unterminated escape"
          | Some c ->
              advance ();
              (match c with
              | '"' -> Buffer.add_char buf '"'
              | '\\' -> Buffer.add_char buf '\\'
              | '/' -> Buffer.add_char buf '/'
              | 'b' -> Buffer.add_char buf '\b'
              | 'f' -> Buffer.add_char buf '\012'
              | 'n' -> Buffer.add_char buf '\n'
              | 'r' -> Buffer.add_char buf '\r'
              | 't' -> Buffer.add_char buf '\t'
              | 'u' -> (
                  match hex4 () with
                  | exception _ -> fail "bad \\u escape"
                  | hi when hi >= 0xD800 && hi <= 0xDBFF ->
                      (* Surrogate pair. *)
                      if
                        !pos + 2 <= len
                        && text.[!pos] = '\\'
                        && text.[!pos + 1] = 'u'
                      then begin
                        pos := !pos + 2;
                        match hex4 () with
                        | exception _ -> fail "bad \\u escape"
                        | lo when lo >= 0xDC00 && lo <= 0xDFFF ->
                            utf8_of_code buf
                              (0x10000
                              + ((hi - 0xD800) lsl 10)
                              + (lo - 0xDC00))
                        | _ -> fail "unpaired surrogate"
                      end
                      else fail "unpaired surrogate"
                  | u when u >= 0xDC00 && u <= 0xDFFF ->
                      fail "unpaired surrogate"
                  | u -> utf8_of_code buf u)
              | c -> fail (Printf.sprintf "bad escape '\\%c'" c));
              loop ())
      | Some c when Char.code c < 0x20 -> fail "control character in string"
      | Some c ->
          advance ();
          Buffer.add_char buf c;
          loop ()
    in
    loop ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_num_char = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < len && is_num_char text.[!pos] do
      advance ()
    done;
    let s = String.sub text start (!pos - start) in
    if String.exists (fun c -> c = '.' || c = 'e' || c = 'E') s then
      match float_of_string_opt s with
      | Some f -> Float f
      | None -> fail ("bad number: " ^ s)
    else
      match int_of_string_opt s with
      | Some i -> Int i
      | None -> (
          (* Integer syntax too large for an int: fall back to float. *)
          match float_of_string_opt s with
          | Some f -> Float f
          | None -> fail ("bad number: " ^ s))
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some 'n' -> literal "null" Null
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some '"' -> String (parse_string ())
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else begin
          let items = ref [ parse_value () ] in
          let continue = ref true in
          while !continue do
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                items := parse_value () :: !items
            | Some ']' ->
                advance ();
                continue := false
            | _ -> fail "expected ',' or ']'"
          done;
          List (List.rev !items)
        end
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let field () =
            skip_ws ();
            let key = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            (key, v)
          in
          let fields = ref [ field () ] in
          let continue = ref true in
          while !continue do
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                fields := field () :: !fields
            | Some '}' ->
                advance ();
                continue := false
            | _ -> fail "expected ',' or '}'"
          done;
          Obj (List.rev !fields)
        end
    | Some c -> fail (Printf.sprintf "unexpected character '%c'" c)
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> len then fail "trailing garbage after document";
    v
  with
  | v -> Ok v
  | exception Parse_error (at, msg) ->
      Error (Printf.sprintf "JSON parse error at offset %d: %s" at msg)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_int = function Int i -> Some i | _ -> None
let to_float = function Float f -> Some f | Int i -> Some (float_of_int i) | _ -> None
let to_bool = function Bool b -> Some b | _ -> None
let to_str = function String s -> Some s | _ -> None
