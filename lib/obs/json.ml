type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let escape buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

(* One fixed float format: shortest %.12g form, forced to contain a '.' or
   an exponent so it reads back as a float. Non-finite values have no JSON
   number form; emit null. *)
let float_repr f =
  match Float.classify_float f with
  | FP_nan | FP_infinite -> "null"
  | _ ->
      let s = Printf.sprintf "%.12g" f in
      if String.exists (fun c -> c = '.' || c = 'e') s then s else s ^ ".0"

let rec emit buf indent j =
  let pad n = Buffer.add_string buf (String.make n ' ') in
  match j with
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> Buffer.add_string buf (float_repr f)
  | String s -> escape buf s
  | List [] -> Buffer.add_string buf "[]"
  | List items ->
      Buffer.add_string buf "[\n";
      List.iteri
        (fun k item ->
          if k > 0 then Buffer.add_string buf ",\n";
          pad (indent + 2);
          emit buf (indent + 2) item)
        items;
      Buffer.add_char buf '\n';
      pad indent;
      Buffer.add_char buf ']'
  | Obj [] -> Buffer.add_string buf "{}"
  | Obj fields ->
      Buffer.add_string buf "{\n";
      List.iteri
        (fun k (key, v) ->
          if k > 0 then Buffer.add_string buf ",\n";
          pad (indent + 2);
          escape buf key;
          Buffer.add_string buf ": ";
          emit buf (indent + 2) v)
        fields;
      Buffer.add_char buf '\n';
      pad indent;
      Buffer.add_char buf '}'

let to_string j =
  let buf = Buffer.create 1024 in
  emit buf 0 j;
  Buffer.contents buf

let pp fmt j = Format.pp_print_string fmt (to_string j)

let write_file ~path j =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (to_string j);
      output_char oc '\n')

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_int = function Int i -> Some i | _ -> None
let to_float = function Float f -> Some f | Int i -> Some (float_of_int i) | _ -> None
let to_bool = function Bool b -> Some b | _ -> None
let to_str = function String s -> Some s | _ -> None
