(** Leveled structured logging as JSON lines.

    One log record per line, compact JSON ({!Json.to_compact_string}),
    with three fixed leading fields — ["ts_secs"] (wall clock), ["level"],
    ["event"] — followed by the caller's fields. The service daemon logs
    its job lifecycle through this module with a per-job correlation id on
    every line.

    {b Scrub mode} extends the stats determinism contract
    ({!Snapshot.scrub_elapsed}: ["_secs"]/["_per_sec"]/["_util"]) with
    ["_ms"]: service latency fields are integer milliseconds precisely so
    they survive inside stats documents, but on a log line they are
    per-record wall-clock measurements, so a scrubbed log nulls them
    (together with ["ts_secs"] itself). Two identical serialized runs must
    then produce byte-identical logs — `tools/check_metrics.sh` enforces
    exactly that against the live daemon. *)

type level = Debug | Info | Warn | Error

val level_to_string : level -> string
(** ["debug"], ["info"], ["warn"], ["error"] — the wire form used on
    every line and accepted by [--log-level] / [FPGAPART_LOG]. *)

val level_of_string : string -> level option
(** Case-insensitive inverse of {!level_to_string} (accepts ["warning"]
    for [Warn]). [None] on anything else. *)

type t
(** A logger: either {!null} or an emitting sink with a minimum level and
    a scrub flag. Like {!Obs.t}, pass it by value; logging to {!null} is
    free. *)

val null : t
(** Drops everything. The default wherever a logger is optional. *)

val make : ?level:level -> ?scrub:bool -> (string -> unit) -> t
(** [make emit] builds a logger calling [emit] with one complete line
    (no trailing newline) per record at or above [level] (default
    [Info]). With [scrub = true] (default [false]) volatile fields render
    as [null] (see the scrub contract above). Lines are emitted under a
    module-wide mutex, so records from concurrent threads never
    interleave mid-line. *)

val to_channel : ?level:level -> ?scrub:bool -> out_channel -> t
(** {!make} writing [line ^ "\n"] to the channel and flushing per record,
    so `tail -f` of a log file always sees whole records. *)

val to_buffer : ?level:level -> ?scrub:bool -> Buffer.t -> t
(** {!make} appending [line ^ "\n"] to a buffer — the test harness's way
    of capturing a daemon's log for byte-comparison. *)

val enabled : t -> level -> bool
(** Whether a record at this level would be emitted. Guard costly field
    construction with it, as with {!Obs.enabled}. *)

val log : t -> level -> string -> (string * Json.t) list -> unit
(** [log t lvl event fields] emits one record. [event] is a stable
    dot-separated name (["job.enqueue"], ["server.drain"]); [fields]
    follow the scrub naming contract (wall-derived values under
    ["_ms"]/["_secs"] keys). *)

val debug : t -> string -> (string * Json.t) list -> unit
val info : t -> string -> (string * Json.t) list -> unit
val warn : t -> string -> (string * Json.t) list -> unit
val error : t -> string -> (string * Json.t) list -> unit

val scrub_fields : (string * Json.t) list -> (string * Json.t) list
(** The scrub mask on its own (exposed for tests): every field whose key
    ends in ["_secs"], ["_ms"], ["_per_sec"] or ["_util"] becomes [Null],
    recursively through nested objects and lists. *)
