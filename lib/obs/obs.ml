module Json = Json

type collector = {
  counters : (string, int) Hashtbl.t;
  timers : (string, float) Hashtbl.t;
  mutable events_rev : (string * (string * Json.t) list) list;
  mutable stack : string list; (* innermost span first *)
}

type t = Noop | Active of collector

let noop = Noop

let create () =
  Active
    {
      counters = Hashtbl.create 32;
      timers = Hashtbl.create 32;
      events_rev = [];
      stack = [];
    }

let enabled = function Noop -> false | Active _ -> true

let incr ?(by = 1) t name =
  match t with
  | Noop -> ()
  | Active c ->
      Hashtbl.replace c.counters name
        (by + (try Hashtbl.find c.counters name with Not_found -> 0))

let path c = String.concat "/" (List.rev c.stack)

let current_span = function Noop -> "" | Active c -> path c

let event t name fields =
  match t with
  | Noop -> ()
  | Active c ->
      let fields =
        match c.stack with
        | [] -> fields
        | _ -> ("span", Json.String (path c)) :: fields
      in
      c.events_rev <- (name, fields) :: c.events_rev

let fork = function
  | Noop -> Noop
  | Active c ->
      Active
        {
          counters = Hashtbl.create 8;
          timers = Hashtbl.create 8;
          events_rev = [];
          stack = c.stack;
        }

let merge_into ~into child =
  match (into, child) with
  | Active parent, Active c ->
      Hashtbl.iter
        (fun k v ->
          Hashtbl.replace parent.counters k
            (v + (try Hashtbl.find parent.counters k with Not_found -> 0)))
        c.counters;
      Hashtbl.iter
        (fun k v ->
          Hashtbl.replace parent.timers k
            (v +. (try Hashtbl.find parent.timers k with Not_found -> 0.0)))
        c.timers;
      (* Both lists are newest-first; prepending the child's keeps the
         parent's existing events before the child's, and the child's in
         their recording order. *)
      parent.events_rev <- c.events_rev @ parent.events_rev
  | _ -> ()

let span t name f =
  match t with
  | Noop -> f ()
  | Active c ->
      c.stack <- name :: c.stack;
      let t0 = Sys.time () in
      Fun.protect
        ~finally:(fun () ->
          let key = path c ^ "_secs" in
          let dt = Sys.time () -. t0 in
          Hashtbl.replace c.timers key
            (dt +. (try Hashtbl.find c.timers key with Not_found -> 0.0));
          match c.stack with [] -> () | _ :: rest -> c.stack <- rest)
        f

module Snapshot = struct
  type event = { name : string; fields : (string * Json.t) list }

  type t = {
    counters : (string * int) list;
    timers : (string * float) list;
    events : event list;
  }

  let of_sink = function
    | Noop -> { counters = []; timers = []; events = [] }
    | Active c ->
        {
          counters =
            Hashtbl.fold (fun k v acc -> (k, v) :: acc) c.counters []
            |> List.sort compare;
          timers =
            Hashtbl.fold (fun k v acc -> (k, v) :: acc) c.timers []
            |> List.sort compare;
          events =
            List.rev_map
              (fun (name, fields) -> { name; fields })
              c.events_rev;
        }

  let to_json s =
    Json.Obj
      [
        ( "counters",
          Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) s.counters) );
        ( "timers",
          Json.Obj (List.map (fun (k, v) -> (k, Json.Float v)) s.timers) );
        ( "events",
          Json.List
            (List.map
               (fun e -> Json.Obj (("event", Json.String e.name) :: e.fields))
               s.events) );
      ]

  let is_elapsed_key k =
    let n = String.length k in
    n >= 5 && String.sub k (n - 5) 5 = "_secs"

  let rec scrub_elapsed = function
    | Json.Obj fields ->
        Json.Obj
          (List.map
             (fun (k, v) ->
               if is_elapsed_key k then (k, Json.Null) else (k, scrub_elapsed v))
             fields)
    | Json.List items -> Json.List (List.map scrub_elapsed items)
    | j -> j

  let pp fmt s =
    Format.fprintf fmt "@[<v>";
    List.iter
      (fun (k, v) -> Format.fprintf fmt "counter %-32s %d@," k v)
      s.counters;
    List.iter
      (fun (k, v) -> Format.fprintf fmt "timer   %-32s %.6f@," k v)
      s.timers;
    let by_name = Hashtbl.create 8 in
    List.iter
      (fun e ->
        Hashtbl.replace by_name e.name
          (1 + (try Hashtbl.find by_name e.name with Not_found -> 0)))
      s.events;
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) by_name []
    |> List.sort compare
    |> List.iter (fun (k, v) -> Format.fprintf fmt "events  %-32s %d@," k v);
    Format.fprintf fmt "@]"
end

let snapshot = Snapshot.of_sink
