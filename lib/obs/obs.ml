module Json = Json
module Log = Log

module Clock = struct
  let wall = Unix.gettimeofday
  let cpu = Sys.time
end

(* ------------------------------------------------------------------ *)
(* Histogram buckets                                                  *)
(* ------------------------------------------------------------------ *)

(* Fixed signed log2 buckets: 0 alone, then [2^(b-1), 2^b - 1] per
   positive bucket b and its mirror image for negatives. The scheme is
   total over the int range and needs no configuration, so two sinks can
   always merge bucket-by-bucket. *)
let bucket_of v =
  if v = 0 then 0
  else if v = min_int then -63 (* abs would overflow; |min_int| = 2^62 *)
  else begin
    let mag = abs v in
    let rec log2 n acc = if n <= 1 then acc else log2 (n lsr 1) (acc + 1) in
    let b = 1 + log2 mag 0 in
    if v > 0 then b else -b
  end

let bucket_bounds b =
  (* bucket_of's image is [-63, 62] on 63-bit ints; indices beyond it
     clamp to the extreme buckets (1 lsl 62 would wrap). *)
  let b = if b > 62 then 62 else if b < -63 then -63 else b in
  if b = 0 then (0, 0)
  else if b > 0 then
    let lo = 1 lsl (b - 1) in
    let hi = if b >= 62 then max_int else (1 lsl b) - 1 in
    (lo, hi)
  else
    let b = -b in
    if b >= 63 then (min_int, min_int)
    else
      let lo = if b >= 62 then min_int + 1 else -((1 lsl b) - 1) in
      let hi = -(1 lsl (b - 1)) in
      (lo, hi)

let bucket_label b =
  let lo, hi = bucket_bounds b in
  if lo = hi then string_of_int lo else Printf.sprintf "[%d,%d]" lo hi

(* ------------------------------------------------------------------ *)
(* The collecting sink                                                *)
(* ------------------------------------------------------------------ *)

type hist = {
  mutable h_count : int;
  mutable h_sum : int;
  h_buckets : (int, int) Hashtbl.t; (* bucket index -> observation count *)
}

type gc_delta = {
  minor_words : float;
  major_words : float;
  minor_collections : int;
  major_collections : int;
}

type trace_span = {
  span_name : string;
  span_pid : int;
  span_tid : int;
  begin_secs : float;
  end_secs : float;
  gc : gc_delta;
}

type tracer = {
  epoch : float; (* wall-clock origin shared by every fork of the sink *)
  t_pid : int;
  t_tid : int;
  mutable spans_rev : trace_span list;
}

type collector = {
  counters : (string, int) Hashtbl.t;
  timers : (string, float) Hashtbl.t;
  histograms : (string, hist) Hashtbl.t;
  mutable events_rev : (string * (string * Json.t) list) list;
  mutable stack : string list; (* innermost span first *)
  tracer : tracer option;
}

type t = Noop | Active of collector

let noop = Noop

let create ?(trace = false) () =
  Active
    {
      counters = Hashtbl.create 32;
      timers = Hashtbl.create 32;
      histograms = Hashtbl.create 8;
      events_rev = [];
      stack = [];
      tracer =
        (if trace then
           Some { epoch = Clock.wall (); t_pid = 0; t_tid = 0; spans_rev = [] }
         else None);
    }

let enabled = function Noop -> false | Active _ -> true

let incr ?(by = 1) t name =
  match t with
  | Noop -> ()
  | Active c ->
      Hashtbl.replace c.counters name
        (by + (try Hashtbl.find c.counters name with Not_found -> 0))

let observe t name v =
  match t with
  | Noop -> ()
  | Active c ->
      let h =
        match Hashtbl.find_opt c.histograms name with
        | Some h -> h
        | None ->
            let h = { h_count = 0; h_sum = 0; h_buckets = Hashtbl.create 8 } in
            Hashtbl.add c.histograms name h;
            h
      in
      h.h_count <- h.h_count + 1;
      h.h_sum <- h.h_sum + v;
      let b = bucket_of v in
      Hashtbl.replace h.h_buckets b
        (1 + (try Hashtbl.find h.h_buckets b with Not_found -> 0))

let path c = String.concat "/" (List.rev c.stack)

let current_span = function Noop -> "" | Active c -> path c

let event t name fields =
  match t with
  | Noop -> ()
  | Active c ->
      let fields =
        match c.stack with
        | [] -> fields
        | _ -> ("span", Json.String (path c)) :: fields
      in
      c.events_rev <- (name, fields) :: c.events_rev

let fork ?pid ?track = function
  | Noop -> Noop
  | Active c ->
      Active
        {
          counters = Hashtbl.create 8;
          timers = Hashtbl.create 8;
          histograms = Hashtbl.create 8;
          events_rev = [];
          stack = c.stack;
          tracer =
            Option.map
              (fun tr ->
                {
                  tr with
                  t_pid = Option.value pid ~default:tr.t_pid;
                  t_tid = Option.value track ~default:tr.t_tid;
                  spans_rev = [];
                })
              c.tracer;
        }

let merge_into ~into child =
  match (into, child) with
  | Active parent, Active c ->
      Hashtbl.iter
        (fun k v ->
          Hashtbl.replace parent.counters k
            (v + (try Hashtbl.find parent.counters k with Not_found -> 0)))
        c.counters;
      Hashtbl.iter
        (fun k v ->
          Hashtbl.replace parent.timers k
            (v +. (try Hashtbl.find parent.timers k with Not_found -> 0.0)))
        c.timers;
      Hashtbl.iter
        (fun name h ->
          let ph =
            match Hashtbl.find_opt parent.histograms name with
            | Some ph -> ph
            | None ->
                let ph =
                  { h_count = 0; h_sum = 0; h_buckets = Hashtbl.create 8 }
                in
                Hashtbl.add parent.histograms name ph;
                ph
          in
          ph.h_count <- ph.h_count + h.h_count;
          ph.h_sum <- ph.h_sum + h.h_sum;
          Hashtbl.iter
            (fun b n ->
              Hashtbl.replace ph.h_buckets b
                (n + (try Hashtbl.find ph.h_buckets b with Not_found -> 0)))
            h.h_buckets)
        c.histograms;
      (* Both lists are newest-first; prepending the child's keeps the
         parent's existing events before the child's, and the child's in
         their recording order. *)
      parent.events_rev <- c.events_rev @ parent.events_rev;
      (match (parent.tracer, c.tracer) with
      | Some ptr, Some ctr -> ptr.spans_rev <- ctr.spans_rev @ ptr.spans_rev
      | _ -> ())
  | _ -> ()

let span t name f =
  match t with
  | Noop -> f ()
  | Active c ->
      c.stack <- name :: c.stack;
      let full = path c in
      let t0 = Sys.time () in
      (* Wall timestamps and GC readings exist only when tracing; the
         CPU-only sink keeps its original cost. *)
      let tr_state =
        match c.tracer with
        | None -> None
        | Some tr -> Some (tr, Clock.wall () -. tr.epoch, Gc.quick_stat ())
      in
      Fun.protect
        ~finally:(fun () ->
          let key = full ^ "_secs" in
          let dt = Sys.time () -. t0 in
          Hashtbl.replace c.timers key
            (dt +. (try Hashtbl.find c.timers key with Not_found -> 0.0));
          (match tr_state with
          | None -> ()
          | Some (tr, begin_secs, g0) ->
              let g1 = Gc.quick_stat () in
              tr.spans_rev <-
                {
                  span_name = full;
                  span_pid = tr.t_pid;
                  span_tid = tr.t_tid;
                  begin_secs;
                  end_secs = Clock.wall () -. tr.epoch;
                  gc =
                    {
                      minor_words = g1.Gc.minor_words -. g0.Gc.minor_words;
                      major_words = g1.Gc.major_words -. g0.Gc.major_words;
                      minor_collections =
                        g1.Gc.minor_collections - g0.Gc.minor_collections;
                      major_collections =
                        g1.Gc.major_collections - g0.Gc.major_collections;
                    };
                }
                :: tr.spans_rev);
          match c.stack with [] -> () | _ :: rest -> c.stack <- rest)
        f

(* Spans with explicit bounds, for lifetimes that no single call scope
   covers (a job's queue wait spans two threads; its decode happens before
   the job id that names its trace lane exists). Absolute Clock.wall
   stamps come in; epoch-relative spans come out, like [span]'s. *)
let add_span ?pid ?tid t name ~begin_wall ~end_wall =
  match t with
  | Noop -> ()
  | Active c -> (
      match c.tracer with
      | None -> ()
      | Some tr ->
          tr.spans_rev <-
            {
              span_name = name;
              span_pid = Option.value pid ~default:tr.t_pid;
              span_tid = Option.value tid ~default:tr.t_tid;
              begin_secs = begin_wall -. tr.epoch;
              end_secs = end_wall -. tr.epoch;
              gc =
                {
                  minor_words = 0.0;
                  major_words = 0.0;
                  minor_collections = 0;
                  major_collections = 0;
                };
            }
            :: tr.spans_rev)

module Snapshot = struct
  type event = { name : string; fields : (string * Json.t) list }

  type histogram = {
    count : int;
    sum : int;
    buckets : (int * int) list; (* (bucket index, count), sorted by index *)
  }

  type t = {
    counters : (string * int) list;
    timers : (string * float) list;
    histograms : (string * histogram) list;
    events : event list;
  }

  let of_sink = function
    | Noop -> { counters = []; timers = []; histograms = []; events = [] }
    | Active c ->
        {
          counters =
            Hashtbl.fold (fun k v acc -> (k, v) :: acc) c.counters []
            |> List.sort compare;
          timers =
            Hashtbl.fold (fun k v acc -> (k, v) :: acc) c.timers []
            |> List.sort compare;
          histograms =
            Hashtbl.fold
              (fun k h acc ->
                ( k,
                  {
                    count = h.h_count;
                    sum = h.h_sum;
                    buckets =
                      Hashtbl.fold (fun b n acc -> (b, n) :: acc) h.h_buckets []
                      |> List.sort compare;
                  } )
                :: acc)
              c.histograms []
            |> List.sort compare;
          events =
            List.rev_map
              (fun (name, fields) -> { name; fields })
              c.events_rev;
        }

  let histogram_to_json h =
    Json.Obj
      [
        ("count", Json.Int h.count);
        ("sum", Json.Int h.sum);
        ( "buckets",
          Json.Obj
            (List.map (fun (b, n) -> (bucket_label b, Json.Int n)) h.buckets)
        );
      ]

  let to_json s =
    Json.Obj
      [
        ( "counters",
          Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) s.counters) );
        ( "timers",
          Json.Obj (List.map (fun (k, v) -> (k, Json.Float v)) s.timers) );
        ( "histograms",
          Json.Obj
            (List.map (fun (k, h) -> (k, histogram_to_json h)) s.histograms) );
        ( "events",
          Json.List
            (List.map
               (fun e -> Json.Obj (("event", Json.String e.name) :: e.fields))
               s.events) );
      ]

  let is_elapsed_key k =
    let ends_with suf =
      let n = String.length k and m = String.length suf in
      n >= m && String.sub k (n - m) m = suf
    in
    (* Wall-derived quantities: absolute times under "_secs" and rates
       under "_per_sec" (e.g. the fm.moves_per_sec histogram name) vary
       between identical runs. "_util" keys (per-axis utilization ratios,
       schema v5) are deterministic but derived — float renderings of
       used/capacity whose integral inputs are already in the document —
       so the mask drops them too and scrubbed comparisons stay about
       decisions, not float formatting. *)
    ends_with "_secs" || ends_with "_per_sec" || ends_with "_util"

  let rec scrub_elapsed = function
    | Json.Obj fields ->
        Json.Obj
          (List.map
             (fun (k, v) ->
               if is_elapsed_key k then (k, Json.Null) else (k, scrub_elapsed v))
             fields)
    | Json.List items -> Json.List (List.map scrub_elapsed items)
    | j -> j

  (* Every section prints at least one line — an explicit "(none)" when
     empty — so piped summaries are stable whatever the sink recorded. *)
  let pp fmt s =
    Format.fprintf fmt "@[<v>";
    (match s.counters with
    | [] -> Format.fprintf fmt "counters  (none)@,"
    | l ->
        List.iter
          (fun (k, v) -> Format.fprintf fmt "counter %-32s %d@," k v)
          l);
    (match s.timers with
    | [] -> Format.fprintf fmt "timers  (none)@,"
    | l ->
        List.iter
          (fun (k, v) -> Format.fprintf fmt "timer   %-32s %.6f@," k v)
          l);
    (match s.histograms with
    | [] -> Format.fprintf fmt "histograms  (none)@,"
    | l ->
        List.iter
          (fun (k, h) ->
            Format.fprintf fmt "histo   %-32s n=%d sum=%d%s@," k h.count h.sum
              (String.concat ""
                 (List.map
                    (fun (b, n) ->
                      Printf.sprintf " %s:%d" (bucket_label b) n)
                    h.buckets)))
          l);
    (match s.events with
    | [] -> Format.fprintf fmt "events  (none)@,"
    | events ->
        let by_name = Hashtbl.create 8 in
        List.iter
          (fun e ->
            Hashtbl.replace by_name e.name
              (1 + (try Hashtbl.find by_name e.name with Not_found -> 0)))
          events;
        Hashtbl.fold (fun k v acc -> (k, v) :: acc) by_name []
        |> List.sort compare
        |> List.iter (fun (k, v) -> Format.fprintf fmt "events  %-32s %d@," k v));
    Format.fprintf fmt "@]"
end

let snapshot = Snapshot.of_sink

(* ------------------------------------------------------------------ *)
(* Trace export                                                       *)
(* ------------------------------------------------------------------ *)

module Trace = struct
  type nonrec gc_delta = gc_delta = {
    minor_words : float;
    major_words : float;
    minor_collections : int;
    major_collections : int;
  }

  type span = trace_span = {
    span_name : string;
    span_pid : int;
    span_tid : int;
    begin_secs : float;
    end_secs : float;
    gc : gc_delta;
  }

  let tracing = function Noop -> false | Active c -> c.tracer <> None

  let spans = function
    | Noop -> []
    | Active c -> (
        match c.tracer with
        | None -> []
        | Some tr ->
            (* Global begin-time order makes the per-tid timestamp stream
               non-decreasing (what tools/check_trace.sh validates); on
               equal begins the longer (enclosing) span comes first so
               viewers nest children correctly. *)
            List.rev tr.spans_rev
            |> List.stable_sort (fun a b ->
                   let c = compare a.begin_secs b.begin_secs in
                   if c <> 0 then c
                   else
                     compare
                       (b.end_secs -. b.begin_secs)
                       (a.end_secs -. a.begin_secs)))

  let to_json t =
    let sp = spans t in
    let pids = List.sort_uniq compare (List.map (fun s -> s.span_pid) sp) in
    let lanes =
      List.sort_uniq compare (List.map (fun s -> (s.span_pid, s.span_tid)) sp)
    in
    let meta name pid tid label =
      Json.Obj
        [
          ("name", Json.String name);
          ("ph", Json.String "M");
          ("pid", Json.Int pid);
          ("tid", Json.Int tid);
          ("args", Json.Obj [ ("name", Json.String label) ]);
        ]
    in
    let metadata =
      List.map
        (fun pid ->
          meta "process_name" pid 0 (Printf.sprintf "run %d" pid))
        pids
      @ List.map
          (fun (pid, tid) ->
            meta "thread_name" pid tid (Printf.sprintf "domain %d" tid))
          lanes
    in
    let complete s =
      Json.Obj
        [
          ("name", Json.String s.span_name);
          ("cat", Json.String "fpgapart");
          ("ph", Json.String "X");
          ("ts", Json.Float (s.begin_secs *. 1e6));
          ("dur", Json.Float ((s.end_secs -. s.begin_secs) *. 1e6));
          ("pid", Json.Int s.span_pid);
          ("tid", Json.Int s.span_tid);
          ( "args",
            Json.Obj
              [
                ("gc_minor_words", Json.Float s.gc.minor_words);
                ("gc_major_words", Json.Float s.gc.major_words);
                ("gc_minor_collections", Json.Int s.gc.minor_collections);
                ("gc_major_collections", Json.Int s.gc.major_collections);
              ] );
        ]
    in
    Json.Obj
      [
        ("displayTimeUnit", Json.String "ms");
        ("traceEvents", Json.List (metadata @ List.map complete sp));
      ]

  let write ~path t = Json.write_file ~path (to_json t)
end

(* ------------------------------------------------------------------ *)
(* OpenMetrics export                                                 *)
(* ------------------------------------------------------------------ *)

module Metrics_export = struct
  (* Explicit-bound latency histograms for SLO reporting. The signed-log2
     histograms above are built for exact cross-sink merging; a scrape
     endpoint instead wants a small fixed set of human-meaningful bounds,
     so these keep cumulative counts per bound directly (the OpenMetrics
     representation) and observe in O(#buckets). *)
  module Slo = struct
    type t = {
      bounds : int array; (* upper bounds, ms, strictly increasing *)
      cumulative : int array; (* observations <= bounds.(i) *)
      mutable count : int;
      mutable sum_ms : int;
    }

    let default_buckets_ms =
      [ 1; 5; 10; 25; 50; 100; 250; 500; 1000; 2500; 5000; 10000; 30000 ]

    let create ?(buckets_ms = default_buckets_ms) () =
      let bounds = Array.of_list (List.sort_uniq compare buckets_ms) in
      {
        bounds;
        cumulative = Array.make (Array.length bounds) 0;
        count = 0;
        sum_ms = 0;
      }

    let observe t ms =
      t.count <- t.count + 1;
      t.sum_ms <- t.sum_ms + ms;
      Array.iteri
        (fun i b -> if ms <= b then t.cumulative.(i) <- t.cumulative.(i) + 1)
        t.bounds

    let count t = t.count
    let sum_ms t = t.sum_ms

    let buckets t =
      Array.to_list (Array.mapi (fun i b -> (b, t.cumulative.(i))) t.bounds)
  end

  type gauge = {
    g_name : string;
    g_help : string;
    g_value : float;
    g_labels : (string * string) list;
  }

  (* Prometheus metric names are [a-zA-Z_:][a-zA-Z0-9_:]*; our keys use
     '.', '/' and '-' as separators. *)
  let sanitize name =
    let b = Buffer.create (String.length name) in
    String.iteri
      (fun i c ->
        match c with
        | 'a' .. 'z' | 'A' .. 'Z' | '_' -> Buffer.add_char b c
        | '0' .. '9' ->
            if i = 0 then Buffer.add_char b '_';
            Buffer.add_char b c
        | _ -> Buffer.add_char b '_')
      name;
    Buffer.contents b

  let escape_help s =
    let b = Buffer.create (String.length s) in
    String.iter
      (fun c ->
        match c with
        | '\\' -> Buffer.add_string b "\\\\"
        | '\n' -> Buffer.add_string b "\\n"
        | c -> Buffer.add_char b c)
      s;
    Buffer.contents b

  let escape_label s =
    let b = Buffer.create (String.length s) in
    String.iter
      (fun c ->
        match c with
        | '\\' -> Buffer.add_string b "\\\\"
        | '"' -> Buffer.add_string b "\\\""
        | '\n' -> Buffer.add_string b "\\n"
        | c -> Buffer.add_char b c)
      s;
    Buffer.contents b

  let number f =
    if Float.is_integer f && Float.abs f < 1e15 then
      Printf.sprintf "%.0f" f
    else Printf.sprintf "%.9g" f

  let render ?(prefix = "fpgapart") ?(gauges = []) ?(slos = []) snapshot =
    let buf = Buffer.create 4096 in
    let pr fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
    let family n = prefix ^ "_" ^ sanitize n in
    let header n typ help =
      pr "# HELP %s %s\n" n (escape_help help);
      pr "# TYPE %s %s\n" n typ
    in
    (* Labeled samples of one family share one HELP/TYPE header, so
       callers list them consecutively (fleet per-worker/per-tenant
       gauges do). *)
    let last_family = ref "" in
    List.iter
      (fun g ->
        let n = family g.g_name in
        if not (String.equal !last_family n) then begin
          header n "gauge" g.g_help;
          last_family := n
        end;
        let labels =
          match g.g_labels with
          | [] -> ""
          | ls ->
              "{"
              ^ String.concat ","
                  (List.map
                     (fun (k, v) ->
                       Printf.sprintf "%s=\"%s\"" (sanitize k)
                         (escape_label v))
                     ls)
              ^ "}"
        in
        pr "%s%s %s\n" n labels (number g.g_value))
      gauges;
    (* SLO histograms are recorded in integer ms but exported in base
       units (seconds), as the exposition format prescribes. *)
    List.iter
      (fun (name, help, slo) ->
        let n = family name in
        header n "histogram" help;
        List.iter
          (fun (ub_ms, c) ->
            pr "%s_bucket{le=\"%s\"} %d\n" n
              (escape_label (number (float_of_int ub_ms /. 1000.0)))
              c)
          (Slo.buckets slo);
        pr "%s_bucket{le=\"+Inf\"} %d\n" n (Slo.count slo);
        pr "%s_sum %s\n" n (number (float_of_int (Slo.sum_ms slo) /. 1000.0));
        pr "%s_count %d\n" n (Slo.count slo))
      slos;
    List.iter
      (fun (k, v) ->
        let n = family k in
        header n "counter" (Printf.sprintf "Obs counter %s." k);
        pr "%s_total %d\n" n v)
      snapshot.Snapshot.counters;
    List.iter
      (fun (k, v) ->
        let n = family k in
        header n "gauge"
          (Printf.sprintf "Obs timer %s (accumulated CPU seconds)." k);
        pr "%s %s\n" n (number v))
      snapshot.Snapshot.timers;
    (* Signed-log2 histograms export with their native bucket upper
       bounds as [le] labels; buckets are stored per-index, so the
       cumulative sums are rebuilt here in ascending index order. *)
    List.iter
      (fun (k, h) ->
        let n = family k in
        header n "histogram" (Printf.sprintf "Obs histogram %s." k);
        let running = ref 0 in
        List.iter
          (fun (b, c) ->
            running := !running + c;
            let _, hi = bucket_bounds b in
            pr "%s_bucket{le=\"%d\"} %d\n" n hi !running)
          h.Snapshot.buckets;
        pr "%s_bucket{le=\"+Inf\"} %d\n" n h.Snapshot.count;
        pr "%s_sum %d\n" n h.Snapshot.sum;
        pr "%s_count %d\n" n h.Snapshot.count)
      snapshot.Snapshot.histograms;
    Buffer.add_string buf "# EOF\n";
    Buffer.contents buf
end
