let strip s = String.trim s

let is_ident_char ch =
  (ch >= 'a' && ch <= 'z')
  || (ch >= 'A' && ch <= 'Z')
  || (ch >= '0' && ch <= '9')
  || ch = '_' || ch = '.' || ch = '[' || ch = ']' || ch = '$'

let is_ident s = String.length s > 0 && String.for_all is_ident_char s

(* A parsed statement, before name resolution. *)
type stmt =
  | Input_decl of string
  | Output_decl of string
  | Assign of string * Gate.kind * string list

let parse_line lineno line =
  let line =
    match String.index_opt line '#' with
    | Some i -> String.sub line 0 i
    | None -> line
  in
  let line = strip line in
  if String.length line = 0 then Ok None
  else
    let err msg = Error (Printf.sprintf "line %d: %s" lineno msg) in
    let parse_call s =
      match String.index_opt s '(' with
      | None -> err "expected '('"
      | Some lp ->
          if s.[String.length s - 1] <> ')' then err "expected ')'"
          else
            let head = strip (String.sub s 0 lp) in
            let inner = String.sub s (lp + 1) (String.length s - lp - 2) in
            let args =
              String.split_on_char ',' inner
              |> List.map strip
              |> List.filter (fun a -> String.length a > 0)
            in
            Ok (head, args)
    in
    match String.index_opt line '=' with
    | Some eq -> (
        let target = strip (String.sub line 0 eq) in
        let rhs = strip (String.sub line (eq + 1) (String.length line - eq - 1)) in
        if not (is_ident target) then err ("bad signal name: " ^ target)
        else
          match parse_call rhs with
          | Error _ as e -> e
          | Ok (g, args) -> (
              if not (List.for_all is_ident args) then err "bad argument name"
              else
                match Gate.of_string g with
                | None -> err ("unknown gate type: " ^ g)
                | Some kind -> Ok (Some (Assign (target, kind, args)))))
    | None -> (
        match parse_call line with
        | Error _ as e -> e
        | Ok (head, args) -> (
            match (String.uppercase_ascii head, args) with
            | "INPUT", [ a ] -> Ok (Some (Input_decl a))
            | "OUTPUT", [ a ] -> Ok (Some (Output_decl a))
            | ("INPUT" | "OUTPUT"), _ -> err "INPUT/OUTPUT take one argument"
            | _ -> err ("unknown statement: " ^ head)))

(* Name resolution. Signals may be used before their defining line, and a
   flip-flop's D cone may read its own Q (sequential feedback), so gates are
   resolved by depth-first search and DFFs get placeholder nodes wired at
   the end. Statements arrive paired with their source line so resolution
   errors (duplicates, undefined signals, cycles) name a line too. *)
let build stmts =
  let decls = Hashtbl.create 256 in
  (* name -> lineno * kind * args *)
  let order = Vec.create () in
  (* declaration order of names *)
  let outputs = Vec.create () in
  let declare lineno name kind args =
    match Hashtbl.find_opt decls name with
    | Some (first, _, _) ->
        Error
          (Printf.sprintf "line %d: duplicate definition of %s (first at line %d)"
             lineno name first)
    | None ->
        Hashtbl.add decls name (lineno, kind, args);
        ignore (Vec.push order name);
        Ok ()
  in
  let rec scan = function
    | [] -> Ok ()
    | (lineno, Input_decl n) :: rest -> (
        match declare lineno n Gate.Input [] with
        | Error _ as e -> e
        | Ok () -> scan rest)
    | (lineno, Output_decl n) :: rest ->
        ignore (Vec.push outputs (lineno, n));
        scan rest
    | (lineno, Assign (target, kind, args)) :: rest -> (
        match declare lineno target kind args with
        | Error _ as e -> e
        | Ok () -> scan rest)
  in
  match scan stmts with
  | Error _ as e -> e
  | Ok () -> (
      let b = Circuit.Builder.create ~name:"bench" () in
      let ids = Hashtbl.create 256 in
      let visiting = Hashtbl.create 16 in
      let exception Fail of string in
      (* [at] is the line of the statement whose fanin list we are
         resolving — the best source position for a dangling name. *)
      let rec resolve ~at name =
        match Hashtbl.find_opt ids name with
        | Some id -> id
        | None -> (
            if Hashtbl.mem visiting name then
              raise
                (Fail
                   (Printf.sprintf "line %d: combinational cycle at %s" at name));
            match Hashtbl.find_opt decls name with
            | None ->
                raise
                  (Fail (Printf.sprintf "line %d: undefined signal: %s" at name))
            | Some (lineno, kind, args) ->
                let id =
                  match kind with
                  | Gate.Input -> Circuit.Builder.input b name
                  | Gate.Dff ->
                      (* Q is a sequential source; D wired after the pass. *)
                      Circuit.Builder.dff_placeholder b name
                  | _ ->
                      Hashtbl.replace visiting name ();
                      let fanins = List.map (resolve ~at:lineno) args in
                      Hashtbl.remove visiting name;
                      Circuit.Builder.gate b ~name kind fanins
                in
                Hashtbl.replace ids name id;
                id)
      in
      try
        Vec.iter
          (fun name ->
            let at, _, _ = Hashtbl.find decls name in
            ignore (resolve ~at name))
          order;
        (* Wire flip-flop D pins. *)
        Vec.iter
          (fun name ->
            match Hashtbl.find_opt decls name with
            | Some (lineno, Gate.Dff, [ d ]) ->
                Circuit.Builder.connect_dff b (Hashtbl.find ids name)
                  (resolve ~at:lineno d)
            | Some (lineno, Gate.Dff, _) ->
                raise
                  (Fail
                     (Printf.sprintf "line %d: DFF %s needs one fanin" lineno
                        name))
            | _ -> ())
          order;
        Vec.iter
          (fun (lineno, name) ->
            match Hashtbl.find_opt ids name with
            | Some id -> Circuit.Builder.mark_output b id
            | None ->
                raise
                  (Fail
                     (Printf.sprintf "line %d: undefined output signal: %s"
                        lineno name)))
          outputs;
        Ok (Circuit.Builder.finish b)
      with
      | Fail msg -> Error msg
      | Invalid_argument msg -> Error msg)

let parse text =
  let lines = String.split_on_char '\n' text in
  let rec collect lineno acc = function
    | [] -> Ok (List.rev acc)
    | line :: rest -> (
        match parse_line lineno line with
        | Error _ as e -> e
        | Ok None -> collect (lineno + 1) acc rest
        | Ok (Some s) -> collect (lineno + 1) ((lineno, s) :: acc) rest)
  in
  match collect 1 [] lines with Error _ as e -> e | Ok stmts -> build stmts

let parse_file path =
  match In_channel.with_open_text path In_channel.input_all with
  | exception Sys_error msg -> Error msg
  | text -> parse text

let to_string c =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf (Printf.sprintf "# %s\n" c.Circuit.name);
  Array.iter
    (fun i ->
      Buffer.add_string buf
        (Printf.sprintf "INPUT(%s)\n" (Circuit.node c i).Circuit.name))
    c.Circuit.inputs;
  Array.iter
    (fun i ->
      Buffer.add_string buf
        (Printf.sprintf "OUTPUT(%s)\n" (Circuit.node c i).Circuit.name))
    c.Circuit.outputs;
  let emit i =
    let nd = Circuit.node c i in
    match nd.Circuit.kind with
    | Gate.Input -> ()
    | kind ->
        let args =
          Array.to_list nd.Circuit.fanins
          |> List.map (fun f -> (Circuit.node c f).Circuit.name)
          |> String.concat ", "
        in
        Buffer.add_string buf
          (Printf.sprintf "%s = %s(%s)\n" nd.Circuit.name (Gate.to_string kind)
             args)
  in
  let order = Circuit.topological_order c in
  (* Topological order lists DFFs among sources; emit them last for
     readability. *)
  Array.iter
    (fun i ->
      if not (Gate.equal (Circuit.node c i).Circuit.kind Gate.Dff) then emit i)
    order;
  Array.iter
    (fun i ->
      if Gate.equal (Circuit.node c i).Circuit.kind Gate.Dff then emit i)
    order;
  Buffer.contents buf

let write_file path c =
  Out_channel.with_open_text path (fun oc ->
      Out_channel.output_string oc (to_string c))
