module B = Circuit.Builder

(* ------------------------------------------------------------------ *)
(* Lexing: comments, '\' line continuations, whitespace splitting.    *)
(* ------------------------------------------------------------------ *)

let logical_lines text =
  let raw = String.split_on_char '\n' text in
  let rec join acc pending lineno start = function
    | [] -> List.rev (if pending = "" then acc else (start, pending) :: acc)
    | line :: rest ->
        let line =
          match String.index_opt line '#' with
          | Some i -> String.sub line 0 i
          | None -> line
        in
        let line = String.trim line in
        let continued = String.length line > 0 && line.[String.length line - 1] = '\\' in
        let body =
          if continued then String.sub line 0 (String.length line - 1) else line
        in
        let pending' = if pending = "" then body else pending ^ " " ^ body in
        let start' = if pending = "" then lineno else start in
        if continued then join acc pending' (lineno + 1) start' rest
        else if String.trim pending' = "" then join acc "" (lineno + 1) 0 rest
        else join ((start', String.trim pending') :: acc) "" (lineno + 1) 0 rest
  in
  join [] "" 1 0 raw

let words s =
  String.split_on_char ' ' s |> List.filter (fun w -> String.length w > 0)

(* ------------------------------------------------------------------ *)
(* Parsing into statements                                            *)
(* ------------------------------------------------------------------ *)

(* Statements stay paired with their source line so the elaboration
   phase can report duplicates and dangling references by line. *)
type stmt =
  | Model of string
  | Inputs of string list
  | Outputs of string list
  | Names of string list * string * (string * char) list
      (** input signals, output signal, cover rows (pattern, value) *)
  | Latch of string * string  (* d, q *)

let parse_stmts lines =
  let err lineno msg = Error (Printf.sprintf "line %d: %s" lineno msg) in
  let rec loop acc = function
    | [] -> Ok (List.rev acc)
    | (lineno, line) :: rest -> (
        match words line with
        | ".model" :: name :: _ -> loop ((lineno, Model name) :: acc) rest
        | ".inputs" :: ins -> loop ((lineno, Inputs ins) :: acc) rest
        | ".outputs" :: outs -> loop ((lineno, Outputs outs) :: acc) rest
        | ".latch" :: args -> (
            (* .latch input output [type control] [init] *)
            match args with
            | d :: q :: _ -> loop ((lineno, Latch (d, q)) :: acc) rest
            | _ -> err lineno ".latch needs input and output")
        | ".names" :: signals -> (
            match List.rev signals with
            | [] -> err lineno ".names needs at least an output"
            | out :: rev_ins ->
                let ins = List.rev rev_ins in
                (* Collect cover rows until the next dot-directive. *)
                let rec rows acc_rows = function
                  | (rl, row) :: more when String.length row > 0 && row.[0] <> '.'
                    -> (
                      match words row with
                      | [ pattern; value ]
                        when List.length ins > 0
                             && String.length pattern = List.length ins
                             && String.length value = 1
                             && String.for_all
                                  (fun ch -> ch = '0' || ch = '1' || ch = '-')
                                  pattern
                             && (value.[0] = '0' || value.[0] = '1') ->
                          rows ((pattern, value.[0]) :: acc_rows) more
                      | [ value ]
                        when ins = [] && String.length value = 1
                             && (value.[0] = '0' || value.[0] = '1') ->
                          rows (("", value.[0]) :: acc_rows) more
                      | _ -> err rl ("bad cover row: " ^ row))
                  | more ->
                      loop ((lineno, Names (ins, out, List.rev acc_rows)) :: acc)
                        more
                and err rl msg = Error (Printf.sprintf "line %d: %s" rl msg) in
                rows [] rest)
        | ".end" :: _ -> loop acc rest
        | ".exdc" :: _ -> err lineno "external don't-cares are not supported"
        | dir :: _ when String.length dir > 0 && dir.[0] = '.' ->
            err lineno ("unsupported directive: " ^ dir)
        | _ -> err lineno ("unexpected line: " ^ line))
  in
  loop [] lines

(* ------------------------------------------------------------------ *)
(* Elaboration                                                        *)
(* ------------------------------------------------------------------ *)

type decl =
  | D_input
  | D_latch of string  (* data signal *)
  | D_names of string list * (string * char) list

let build stmts =
  let model = ref "blif" in
  let decls = Hashtbl.create 256 in
  (* name -> lineno * decl *)
  let order = Vec.create () in
  let outputs = Vec.create () in
  let declare lineno name d =
    match Hashtbl.find_opt decls name with
    | Some (first, _) ->
        Error
          (Printf.sprintf "line %d: duplicate definition of %s (first at line %d)"
             lineno name first)
    | None ->
        Hashtbl.add decls name (lineno, d);
        ignore (Vec.push order name);
        Ok ()
  in
  let rec scan = function
    | [] -> Ok ()
    | (_, Model name) :: rest ->
        model := name;
        scan rest
    | (lineno, Inputs ins) :: rest -> (
        let rec each = function
          | [] -> scan rest
          | i :: more -> (
              match declare lineno i D_input with
              | Error _ as e -> e
              | Ok () -> each more)
        in
        each ins)
    | (lineno, Outputs outs) :: rest ->
        List.iter (fun o -> ignore (Vec.push outputs (lineno, o))) outs;
        scan rest
    | (lineno, Latch (d, q)) :: rest -> (
        match declare lineno q (D_latch d) with
        | Error _ as e -> e
        | Ok () -> scan rest)
    | (lineno, Names (ins, out, rows)) :: rest -> (
        match declare lineno out (D_names (ins, rows)) with
        | Error _ as e -> e
        | Ok () -> scan rest)
  in
  match scan stmts with
  | Error _ as e -> e
  | Ok () -> (
      let b = B.create ~name:!model () in
      (* Fresh names for synthesised cover terms. *)
      let clashes p =
        Vec.fold_left
          (fun acc name -> acc || String.starts_with ~prefix:p name)
          false order
      in
      let prefix =
        let rec search p = if clashes p then search ("$" ^ p) else p in
        search "$b"
      in
      let counter = ref 0 in
      let fresh () =
        let name = Printf.sprintf "%s%d" prefix !counter in
        incr counter;
        name
      in
      let ids = Hashtbl.create 256 in
      let visiting = Hashtbl.create 16 in
      let exception Fail of string in
      (* [at] is the line whose fanin list is being resolved — the best
         source position for a dangling reference. *)
      let rec resolve ~at name =
        match Hashtbl.find_opt ids name with
        | Some id -> id
        | None -> (
            if Hashtbl.mem visiting name then
              raise
                (Fail
                   (Printf.sprintf "line %d: combinational cycle at %s" at name));
            match Hashtbl.find_opt decls name with
            | None ->
                raise
                  (Fail (Printf.sprintf "line %d: undefined signal: %s" at name))
            | Some (lineno, d) ->
                let id =
                  match d with
                  | D_input -> B.input b name
                  | D_latch _ -> B.dff_placeholder b name
                  | D_names (ins, rows) ->
                      Hashtbl.replace visiting name ();
                      let in_ids = List.map (resolve ~at:lineno) ins in
                      Hashtbl.remove visiting name;
                      synthesize_cover b ~fresh ~name in_ids rows
                in
                Hashtbl.replace ids name id;
                id)
      and synthesize_cover b ~fresh ~name in_ids rows =
        (* All rows must agree on the output value: on-set (1) or
           off-set (0). *)
        let values = List.map snd rows |> List.sort_uniq compare in
        (match values with
        | [] | [ _ ] -> ()
        | _ -> raise (Fail ("mixed cover polarity for " ^ name)));
        let on_set = match values with [ '0' ] -> false | _ -> true in
        let term pattern =
          (* AND of the literals one row requires; None = always true. *)
          let literals =
            List.filteri (fun _ _ -> true) in_ids
            |> List.mapi (fun k id -> (pattern.[k], id))
            |> List.filter_map (fun (ch, id) ->
                   match ch with
                   | '1' -> Some id
                   | '0' -> Some (B.gate b ~name:(fresh ()) Gate.Not [ id ])
                   | _ -> None)
          in
          match literals with
          | [] -> None
          | [ x ] -> Some x
          | xs -> Some (B.gate b ~name:(fresh ()) Gate.And xs)
        in
        let terms = List.map (fun (p, _) -> term p) rows in
        if List.exists Option.is_none terms then
          (* Some row accepts everything: the cover is constant. *)
          B.gate b ~name (if on_set then Gate.Const1 else Gate.Const0) []
        else
          let terms = List.map Option.get terms in
          match (terms, on_set) with
          | [], true -> B.gate b ~name Gate.Const0 []
          | [], false -> B.gate b ~name Gate.Const1 []
          | [ x ], true -> B.gate b ~name Gate.Buf [ x ]
          | [ x ], false -> B.gate b ~name Gate.Not [ x ]
          | xs, true -> B.gate b ~name Gate.Or xs
          | xs, false -> B.gate b ~name Gate.Nor xs
      in
      try
        Vec.iter
          (fun name ->
            let at, _ = Hashtbl.find decls name in
            ignore (resolve ~at name))
          order;
        Vec.iter
          (fun name ->
            match Hashtbl.find_opt decls name with
            | Some (lineno, D_latch d) ->
                B.connect_dff b (Hashtbl.find ids name) (resolve ~at:lineno d)
            | _ -> ())
          order;
        Vec.iter
          (fun (lineno, name) ->
            match Hashtbl.find_opt ids name with
            | Some id -> B.mark_output b id
            | None ->
                raise
                  (Fail
                     (Printf.sprintf "line %d: undefined output signal: %s"
                        lineno name)))
          outputs;
        Ok (B.finish b)
      with
      | Fail msg -> Error msg
      | Invalid_argument msg -> Error msg)

let parse text =
  match parse_stmts (logical_lines text) with
  | Error _ as e -> e
  | Ok stmts -> build stmts

let parse_file path =
  match In_channel.with_open_text path In_channel.input_all with
  | exception Sys_error msg -> Error msg
  | text -> parse text

(* ------------------------------------------------------------------ *)
(* Writing                                                            *)
(* ------------------------------------------------------------------ *)

let to_string c =
  let buf = Buffer.create 4096 in
  let name_of i = (Circuit.node c i).Circuit.name in
  Buffer.add_string buf (Printf.sprintf ".model %s\n" c.Circuit.name);
  let emit_signals dir ids =
    if Array.length ids > 0 then begin
      Buffer.add_string buf dir;
      Array.iter
        (fun i ->
          Buffer.add_char buf ' ';
          Buffer.add_string buf (name_of i))
        ids;
      Buffer.add_char buf '\n'
    end
  in
  emit_signals ".inputs" c.Circuit.inputs;
  emit_signals ".outputs" c.Circuit.outputs;
  let emit_names i =
    let nd = Circuit.node c i in
    let ins = nd.Circuit.fanins in
    let header () =
      Buffer.add_string buf ".names";
      Array.iter
        (fun f ->
          Buffer.add_char buf ' ';
          Buffer.add_string buf (name_of f))
        ins;
      Buffer.add_char buf ' ';
      Buffer.add_string buf nd.Circuit.name;
      Buffer.add_char buf '\n'
    in
    let n = Array.length ins in
    let row pattern v = Buffer.add_string buf (pattern ^ " " ^ v ^ "\n") in
    match nd.Circuit.kind with
    | Gate.Input | Gate.Dff -> ()
    | Gate.Const0 -> header ()
    | Gate.Const1 ->
        header ();
        Buffer.add_string buf "1\n"
    | Gate.Buf ->
        header ();
        row "1" "1"
    | Gate.Not ->
        header ();
        row "0" "1"
    | Gate.And ->
        header ();
        row (String.make n '1') "1"
    | Gate.Nand ->
        header ();
        row (String.make n '1') "0"
    | Gate.Or ->
        header ();
        row (String.make n '0') "0"
    | Gate.Nor ->
        header ();
        row (String.make n '0') "1"
    | Gate.Xor | Gate.Xnor ->
        if n > 12 then
          invalid_arg
            ("Blif.to_string: " ^ Gate.to_string nd.Circuit.kind
           ^ " wider than 12 inputs; decompose first");
        header ();
        let want_odd = Gate.equal nd.Circuit.kind Gate.Xor in
        for v = 0 to (1 lsl n) - 1 do
          let ones = ref 0 in
          let pattern =
            String.init n (fun k ->
                if v land (1 lsl k) <> 0 then begin
                  incr ones;
                  '1'
                end
                else '0')
          in
          if !ones mod 2 = if want_odd then 1 else 0 then row pattern "1"
        done
  in
  let order = Circuit.topological_order c in
  Array.iter emit_names order;
  Array.iter
    (fun i ->
      let nd = Circuit.node c i in
      if Gate.equal nd.Circuit.kind Gate.Dff then
        Buffer.add_string buf
          (Printf.sprintf ".latch %s %s 0\n" (name_of nd.Circuit.fanins.(0))
             nd.Circuit.name))
    order;
  Buffer.add_string buf ".end\n";
  Buffer.contents buf

let write_file path c =
  Out_channel.with_open_text path (fun oc ->
      Out_channel.output_string oc (to_string c))
