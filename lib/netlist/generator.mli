(** Structural and statistical circuit generators.

    The paper evaluates on the ISCAS'85/'89 suites mapped into XC3000
    devices. Those netlists are not redistributable here, so the benchmark
    suite is regenerated: structural generators reproduce the circuits whose
    function is documented (c6288 is a 16x16 array multiplier, c1355 a
    32-bit single-error-correcting network, c7552 an adder/comparator,
    c5315 an ALU), and a clustered sequential generator reproduces the
    ISCAS'89 profile (gate count, flip-flop count, clustering) that the
    paper credits for the larger replication gains. All generators are
    deterministic in their parameters and seed. *)

(** {1 Structural generators} *)

val c17 : unit -> Circuit.t
(** The classic 6-NAND ISCAS'85 toy circuit, reproduced exactly. *)

val ripple_adder : ?name:string -> bits:int -> unit -> Circuit.t
(** [bits]-wide ripple-carry adder: inputs [a0..], [b0..], [cin]; outputs
    [s0..], [cout]. *)

val multiplier : ?name:string -> bits:int -> unit -> Circuit.t
(** [bits] x [bits] array multiplier built from AND partial products and
    carry-save full-adder rows — the c6288 structure ([bits = 16]). *)

val alu : ?name:string -> bits:int -> unit -> Circuit.t
(** A [bits]-wide ALU slice array: AND / OR / XOR / ADD selected by two
    control inputs through per-bit multiplexers, with a carry chain and
    zero-detect — the c5315 flavour of logic. *)

val ecc : ?name:string -> data_bits:int -> unit -> Circuit.t
(** Single-error-correcting network over [data_bits] data inputs and the
    corresponding Hamming check inputs: syndrome XOR trees plus per-bit
    correction — the c1355 structure ([data_bits = 32]). *)

val adder_comparator : ?name:string -> bits:int -> unit -> Circuit.t
(** Adder + magnitude comparator + input parity network — the c7552
    flavour. *)

(** {1 Statistical generators} *)

type clustered_params = {
  clusters : int;           (** number of tightly-connected clusters *)
  gates_per_cluster : int;  (** combinational gates per cluster (mean) *)
  dffs_per_cluster : int;   (** flip-flops per cluster *)
  cluster_inputs : int;     (** signals imported into each cluster's pool *)
  foreign_fraction : float; (** share of imports taken from other clusters *)
  num_pi : int;
  num_po : int;
  seed : int;
}

val default_clustered : clustered_params
(** A mid-sized starting point (8 clusters x 64 gates). *)

val clustered : ?name:string -> clustered_params -> Circuit.t
(** Random clustered sequential circuit: every cluster is a local random
    DAG over its imports and its own flip-flop outputs; sequential feedback
    (including cross-cluster feedback) flows through flip-flop [D] pins, so
    the result is always combinationally acyclic. Every primary input is
    used and every declared output is driven. *)

type scale_params = {
  sc_gates : int;             (** total combinational gates (the knob that
                                  sets circuit size; mapped CLB-cell count
                                  comes out at roughly half of
                                  [gates + flip-flops]) *)
  sc_block_gates : int;       (** gates per leaf block *)
  sc_blocks_per_region : int; (** leaf blocks per region *)
  sc_dffs_per_block : int;    (** flip-flops per leaf block *)
  sc_region_imports : int;    (** signals imported into each block's pool *)
  sc_global_fraction : float; (** share of imports from the global pool
                                  (the rest come from the block's region) *)
  sc_rent_exponent : float;   (** Rent exponent [r] of the pad count *)
  sc_rent_coeff : float;      (** Rent coefficient [c]:
                                  [pads = c * gates^r] each way *)
  sc_seed : int;
}

val default_scale : scale_params
(** 200k gates in 56-gate blocks, 24 blocks per region, Rent pads
    [1.6 * gates^0.5] — the gen100k profile (~100k mapped cells). *)

val scale : ?name:string -> scale_params -> Circuit.t
(** Two-level hierarchical random circuit for the 100k-1M cell range:
    leaf blocks (local random DAGs over imports and their own flip-flop
    outputs, as in {!clustered}) grouped into regions; block imports are
    mostly region-local with a [sc_global_fraction] minority from a global
    export pool, and pad counts follow Rent's rule, so the connectivity
    profile tracks the paper's Table II shape as size scales. Sequential
    feedback flows through flip-flop [D] pins only (combinationally
    acyclic); every primary input is read and every output driven.
    Deterministic in the parameters and O([sc_gates]). *)

val random : rng:Rng.t -> ?name:string -> num_inputs:int -> num_gates:int ->
  num_dff:int -> num_outputs:int -> unit -> Circuit.t
(** Unstructured random circuit for property-based tests: arbitrary gate
    kinds and arities 1-4, combinationally acyclic by construction. *)
