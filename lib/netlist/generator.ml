module B = Circuit.Builder

(* Shared small combinational building blocks. *)

let full_adder b a bb cin =
  let axb = B.gate b Gate.Xor [ a; bb ] in
  let sum = B.gate b Gate.Xor [ axb; cin ] in
  let t1 = B.gate b Gate.And [ a; bb ] in
  let t2 = B.gate b Gate.And [ axb; cin ] in
  let cout = B.gate b Gate.Or [ t1; t2 ] in
  (sum, cout)

let half_adder b a bb =
  let sum = B.gate b Gate.Xor [ a; bb ] in
  let cout = B.gate b Gate.And [ a; bb ] in
  (sum, cout)

(* 2-to-1 multiplexer: [s] = 0 picks [a]. *)
let mux2 b s a bb =
  let ns = B.gate b Gate.Not [ s ] in
  let ta = B.gate b Gate.And [ ns; a ] in
  let tb = B.gate b Gate.And [ s; bb ] in
  B.gate b Gate.Or [ ta; tb ]

(* Balanced gate tree over [ids] (arity folded to 2). *)
let rec tree b kind ids =
  match ids with
  | [] -> invalid_arg "Generator.tree: empty"
  | [ x ] -> x
  | _ ->
      let rec pair = function
        | x :: y :: rest -> B.gate b kind [ x; y ] :: pair rest
        | rest -> rest
      in
      tree b kind (pair ids)

let c17 () =
  let b = B.create ~name:"c17" () in
  let g1 = B.input b "1" in
  let g2 = B.input b "2" in
  let g3 = B.input b "3" in
  let g6 = B.input b "6" in
  let g7 = B.input b "7" in
  let g10 = B.gate b ~name:"10" Gate.Nand [ g1; g3 ] in
  let g11 = B.gate b ~name:"11" Gate.Nand [ g3; g6 ] in
  let g16 = B.gate b ~name:"16" Gate.Nand [ g2; g11 ] in
  let g19 = B.gate b ~name:"19" Gate.Nand [ g11; g7 ] in
  let g22 = B.gate b ~name:"22" Gate.Nand [ g10; g16 ] in
  let g23 = B.gate b ~name:"23" Gate.Nand [ g16; g19 ] in
  B.mark_output b g22;
  B.mark_output b g23;
  B.finish b

let ripple_adder ?(name = "adder") ~bits () =
  if bits < 1 then invalid_arg "Generator.ripple_adder: bits >= 1";
  let b = B.create ~name () in
  let a = Array.init bits (fun i -> B.input b (Printf.sprintf "a%d" i)) in
  let bb = Array.init bits (fun i -> B.input b (Printf.sprintf "b%d" i)) in
  let cin = B.input b "cin" in
  let carry = ref cin in
  for i = 0 to bits - 1 do
    let s, c = full_adder b a.(i) bb.(i) !carry in
    B.mark_output b s;
    carry := c
  done;
  B.mark_output b !carry;
  B.finish b

let multiplier ?(name = "multiplier") ~bits () =
  if bits < 2 then invalid_arg "Generator.multiplier: bits >= 2";
  let b = B.create ~name () in
  let a = Array.init bits (fun i -> B.input b (Printf.sprintf "a%d" i)) in
  let bb = Array.init bits (fun i -> B.input b (Printf.sprintf "b%d" i)) in
  (* Array multiplier: partial-product row i is a_j AND b_i shifted left by
     i; rows are accumulated into [acc] with ripple-carry adder rows, the
     same adder-array structure as c6288. *)
  let pp i j = B.gate b Gate.And [ a.(j); bb.(i) ] in
  let width = 2 * bits in
  let acc = Array.make width None in
  for j = 0 to bits - 1 do
    acc.(j) <- Some (pp 0 j)
  done;
  for i = 1 to bits - 1 do
    let carry = ref None in
    for j = 0 to bits - 1 do
      let pos = i + j in
      let bit = pp i j in
      match (acc.(pos), !carry) with
      | None, None -> acc.(pos) <- Some bit
      | Some x, None ->
          let s, c = half_adder b bit x in
          acc.(pos) <- Some s;
          carry := Some c
      | None, Some cy ->
          let s, c = half_adder b bit cy in
          acc.(pos) <- Some s;
          carry := Some c
      | Some x, Some cy ->
          let s, c = full_adder b bit x cy in
          acc.(pos) <- Some s;
          carry := Some c
    done;
    (* Propagate the row's final carry into the upper accumulator bits. *)
    (* The product fits in [width] bits, so any carry signal generated out
       of the top position is identically 0 and may be dropped. *)
    let pos = ref (i + bits) in
    while !carry <> None && !pos < width do
      let cy = Option.get !carry in
      (match acc.(!pos) with
      | None ->
          acc.(!pos) <- Some cy;
          carry := None
      | Some x ->
          let s, c = half_adder b x cy in
          acc.(!pos) <- Some s;
          carry := Some c);
      incr pos
    done
  done;
  Array.iter (function Some s -> B.mark_output b s | None -> ()) acc;
  B.finish b

let alu ?(name = "alu") ~bits () =
  if bits < 1 then invalid_arg "Generator.alu: bits >= 1";
  let b = B.create ~name () in
  let a = Array.init bits (fun i -> B.input b (Printf.sprintf "a%d" i)) in
  let bb = Array.init bits (fun i -> B.input b (Printf.sprintf "b%d" i)) in
  let s0 = B.input b "s0" in
  let s1 = B.input b "s1" in
  let cin = B.input b "cin" in
  let carry = ref cin in
  let outs = ref [] in
  for i = 0 to bits - 1 do
    let f_and = B.gate b Gate.And [ a.(i); bb.(i) ] in
    let f_or = B.gate b Gate.Or [ a.(i); bb.(i) ] in
    let f_xor = B.gate b Gate.Xor [ a.(i); bb.(i) ] in
    let f_sum, c = full_adder b a.(i) bb.(i) !carry in
    carry := c;
    let lo = mux2 b s0 f_and f_or in
    let hi = mux2 b s0 f_xor f_sum in
    let out = mux2 b s1 lo hi in
    B.mark_output b out;
    outs := out :: !outs
  done;
  B.mark_output b !carry;
  (* Zero detect over the selected outputs. *)
  let zero = B.gate b Gate.Nor !outs in
  B.mark_output b zero;
  B.finish b

(* Number of Hamming check bits needed to cover [data_bits] data bits. *)
let check_bits_for data_bits =
  let rec loop r = if (1 lsl r) - r - 1 >= data_bits then r else loop (r + 1) in
  loop 2

let ecc ?(name = "ecc") ~data_bits () =
  if data_bits < 4 then invalid_arg "Generator.ecc: data_bits >= 4";
  let r = check_bits_for data_bits in
  let b = B.create ~name () in
  let data = Array.init data_bits (fun i -> B.input b (Printf.sprintf "d%d" i)) in
  let check = Array.init r (fun i -> B.input b (Printf.sprintf "c%d" i)) in
  (* Hamming positions: data bit i sits at the i-th non-power-of-two code
     position (1-based); check bit j guards positions with bit j set. *)
  let positions = Array.make data_bits 0 in
  let pos = ref 1 and k = ref 0 in
  while !k < data_bits do
    let p = !pos in
    if p land (p - 1) <> 0 then begin
      positions.(!k) <- p;
      incr k
    end;
    incr pos
  done;
  (* Syndrome bit j = received check bit XOR parity of guarded data bits. *)
  let syndrome =
    Array.init r (fun j ->
        let guarded =
          Array.to_list
            (Array.of_seq
               (Seq.filter_map
                  (fun i ->
                    if positions.(i) land (1 lsl j) <> 0 then Some data.(i)
                    else None)
                  (Seq.init data_bits Fun.id)))
        in
        tree b Gate.Xor (check.(j) :: guarded))
  in
  Array.iter (fun s -> B.mark_output b s) syndrome;
  let not_syndrome = Array.map (fun s -> B.gate b Gate.Not [ s ]) syndrome in
  (* Corrected data bit i = data_i XOR (syndrome == position_i). *)
  for i = 0 to data_bits - 1 do
    let literals =
      List.init r (fun j ->
          if positions.(i) land (1 lsl j) <> 0 then syndrome.(j)
          else not_syndrome.(j))
    in
    let hit = tree b Gate.And literals in
    let corrected = B.gate b Gate.Xor [ data.(i); hit ] in
    B.mark_output b corrected
  done;
  B.finish b

let adder_comparator ?(name = "addcmp") ~bits () =
  if bits < 2 then invalid_arg "Generator.adder_comparator: bits >= 2";
  let b = B.create ~name () in
  let a = Array.init bits (fun i -> B.input b (Printf.sprintf "a%d" i)) in
  let bb = Array.init bits (fun i -> B.input b (Printf.sprintf "b%d" i)) in
  let cin = B.input b "cin" in
  (* Sum. *)
  let carry = ref cin in
  for i = 0 to bits - 1 do
    let s, c = full_adder b a.(i) bb.(i) !carry in
    B.mark_output b s;
    carry := c
  done;
  B.mark_output b !carry;
  (* Magnitude comparator: gt_i = a_i AND NOT b_i; eq_i = XNOR. *)
  let eq = Array.init bits (fun i -> B.gate b Gate.Xnor [ a.(i); bb.(i) ]) in
  let gt_terms =
    List.init bits (fun i ->
        let nb = B.gate b Gate.Not [ bb.(i) ] in
        let head = B.gate b Gate.And [ a.(i); nb ] in
        (* ANDed with equality of all higher bits. *)
        let highers = List.init (bits - 1 - i) (fun k -> eq.(i + 1 + k)) in
        match highers with
        | [] -> head
        | _ -> B.gate b Gate.And (head :: highers))
  in
  let gt = tree b Gate.Or gt_terms in
  let all_eq = tree b Gate.And (Array.to_list eq) in
  B.mark_output b gt;
  B.mark_output b all_eq;
  (* Parity of each operand. *)
  B.mark_output b (tree b Gate.Xor (Array.to_list a));
  B.mark_output b (tree b Gate.Xor (Array.to_list bb));
  B.finish b

type clustered_params = {
  clusters : int;
  gates_per_cluster : int;
  dffs_per_cluster : int;
  cluster_inputs : int;
  foreign_fraction : float;
  num_pi : int;
  num_po : int;
  seed : int;
}

let default_clustered =
  {
    clusters = 8;
    gates_per_cluster = 64;
    dffs_per_cluster = 8;
    cluster_inputs = 10;
    foreign_fraction = 0.25;
    num_pi = 24;
    num_po = 24;
    seed = 1;
  }

let comb_kinds = [| Gate.And; Gate.Nand; Gate.Or; Gate.Nor; Gate.Xor; Gate.Xnor |]

let clustered ?(name = "clustered") p =
  if p.clusters < 1 || p.num_pi < 2 || p.num_po < 1 then
    invalid_arg "Generator.clustered: bad parameters";
  let rng = Rng.create p.seed in
  let b = B.create ~name () in
  let pis = Array.init p.num_pi (fun i -> B.input b (Printf.sprintf "pi%d" i)) in
  (* All flip-flops exist up front so any cluster can read any Q, giving
     cross-cluster sequential feedback without combinational cycles. *)
  let dffs =
    Array.init p.clusters (fun c ->
        Array.init p.dffs_per_cluster (fun k ->
            B.dff_placeholder b (Printf.sprintf "q_%d_%d" c k)))
  in
  let exported = Vec.create () in
  (* combinational signals visible to later clusters *)
  let used = Hashtbl.create 256 in
  let cluster_signals = Array.make p.clusters [||] in
  for c = 0 to p.clusters - 1 do
    (* Import pool: own flip-flops, a slice of the primary inputs, and a few
       foreign signals (earlier clusters' exports or other clusters' Qs). *)
    let pool = Vec.create () in
    Array.iter (fun q -> ignore (Vec.push pool q)) dffs.(c);
    let pi_share = max 2 (p.num_pi / p.clusters) in
    for _ = 1 to pi_share do
      ignore (Vec.push pool (Rng.pick rng pis))
    done;
    for _ = 1 to p.cluster_inputs do
      let foreign =
        Rng.float rng 1.0 < p.foreign_fraction
        && (Vec.length exported > 0 || p.clusters > 1)
      in
      let s =
        if foreign && Vec.length exported > 0 then
          Vec.get exported (Rng.int rng (Vec.length exported))
        else if foreign then
          (* no exports yet: read a foreign flip-flop *)
          let oc = Rng.int rng p.clusters in
          if Array.length dffs.(oc) > 0 then Rng.pick rng dffs.(oc)
          else Rng.pick rng pis
        else Rng.pick rng pis
      in
      ignore (Vec.push pool s)
    done;
    (* Local random DAG with a bias toward recent signals (locality). *)
    let gates = Vec.create () in
    let pick_operand () =
      let n_pool = Vec.length pool and n_gates = Vec.length gates in
      let total = n_pool + n_gates in
      (* Quadratic bias toward the most recently created signals. *)
      let r = Rng.int rng total in
      let r2 = Rng.int rng total in
      let idx = max r r2 in
      let s = if idx < n_pool then Vec.get pool idx else Vec.get gates (idx - n_pool) in
      Hashtbl.replace used s ();
      s
    in
    for _ = 1 to p.gates_per_cluster do
      let kind = Rng.pick rng comb_kinds in
      let arity = Rng.int_in rng 2 4 in
      let fanins = List.init arity (fun _ -> pick_operand ()) in
      let g = B.gate b kind fanins in
      ignore (Vec.push gates g)
    done;
    (* Wire flip-flop D pins to local signals; fold any still-unused pool
       imports into the first D so that every import is genuinely read. *)
    let unused =
      Vec.fold_left
        (fun acc s -> if Hashtbl.mem used s then acc else s :: acc)
        [] pool
    in
    List.iter (fun s -> Hashtbl.replace used s ()) unused;
    Array.iteri
      (fun k q ->
        let local =
          if Vec.length gates > 0 then Vec.get gates (Rng.int rng (Vec.length gates))
          else Rng.pick rng pis
        in
        let d =
          if k = 0 && unused <> [] then tree b Gate.Xor (local :: unused) else local
        in
        B.connect_dff b q d)
      dffs.(c);
    let signals = Vec.to_array gates in
    cluster_signals.(c) <- signals;
    (* Export a handful of signals for later clusters. *)
    let n_export = max 1 (Array.length signals / 8) in
    for _ = 1 to n_export do
      if Array.length signals > 0 then
        ignore (Vec.push exported signals.(Rng.int rng (Array.length signals)))
    done
  done;
  (* Primary outputs: spread across clusters. *)
  let all_gates = Array.concat (Array.to_list cluster_signals) in
  if Array.length all_gates = 0 then invalid_arg "Generator.clustered: no gates";
  for k = 0 to p.num_po - 1 do
    let g = all_gates.(Rng.int rng (Array.length all_gates)) in
    ignore k;
    B.mark_output b g;
    Hashtbl.replace used g ()
  done;
  (* Guarantee every primary input is read: fold strays into one extra
     parity output. *)
  let stray = Array.to_list (Array.of_seq (Seq.filter (fun pi -> not (Hashtbl.mem used pi)) (Array.to_seq pis))) in
  (match stray with
  | [] -> ()
  | [ s ] -> B.mark_output b (B.gate b Gate.Buf [ s ])
  | _ -> B.mark_output b (tree b Gate.Xor stray));
  B.finish b

type scale_params = {
  sc_gates : int;
  sc_block_gates : int;
  sc_blocks_per_region : int;
  sc_dffs_per_block : int;
  sc_region_imports : int;
  sc_global_fraction : float;
  sc_rent_exponent : float;
  sc_rent_coeff : float;
  sc_seed : int;
}

let default_scale =
  {
    sc_gates = 200_000;
    sc_block_gates = 56;
    sc_blocks_per_region = 24;
    sc_dffs_per_block = 10;
    sc_region_imports = 12;
    (* Global coupling sets the circuit's min-cut almost directly: every
       block exports one signal to the global pool, and a fraction of
       every block's imports come back out of it, so cross-region nets
       number about [global_fraction x imports x blocks]. 0.05 keeps a
       100k-cell circuit k-way partitionable under terminal budgets a few
       thousand wide — the regime the paper's cost minimization operates
       in — while still forcing real cut optimisation. *)
    sc_global_fraction = 0.05;
    sc_rent_exponent = 0.5;
    sc_rent_coeff = 1.6;
    sc_seed = 1;
  }

(* Two-level hierarchical generator for the 100k-1M cell range: leaf
   blocks of a few dozen gates (the [clustered] recipe) grouped into
   regions, with block imports drawn mostly from the surrounding region
   and only a small fraction from the global export pool. The two-level
   locality is what gives large real netlists their Rent-style wire-length
   distribution — and what makes them partitionable at all; a flat random
   graph of this size has no cut structure worth finding. Pad counts
   follow Rent's rule [IO = c * gates^r] instead of a fixed number, so the
   profile matches the paper's Table II shape as the size scales.
   Everything is deterministic in the seed and O(gates). *)
let scale ?(name = "scale") p =
  if
    p.sc_gates < 1 || p.sc_block_gates < 1 || p.sc_blocks_per_region < 1
    || p.sc_dffs_per_block < 1 || p.sc_region_imports < 0
    || p.sc_global_fraction < 0.0
    || p.sc_global_fraction > 1.0
    || p.sc_rent_exponent <= 0.0
    || p.sc_rent_exponent >= 1.0
    || p.sc_rent_coeff <= 0.0
  then invalid_arg "Generator.scale: bad parameters";
  let rng = Rng.create p.sc_seed in
  let b = B.create ~name () in
  let rent n =
    max 4
      (int_of_float
         (Float.round (p.sc_rent_coeff *. (float_of_int n ** p.sc_rent_exponent))))
  in
  let num_pi = rent p.sc_gates in
  let num_po = rent p.sc_gates in
  let pis = Array.init num_pi (fun i -> B.input b (Printf.sprintf "pi%d" i)) in
  let num_blocks = max 1 ((p.sc_gates + p.sc_block_gates - 1) / p.sc_block_gates) in
  let num_regions =
    (num_blocks + p.sc_blocks_per_region - 1) / p.sc_blocks_per_region
  in
  let region_of bi = bi / p.sc_blocks_per_region in
  (* All flip-flops exist up front so any block can read any Q: sequential
     feedback (cross-region included) flows through D pins only, keeping
     the circuit combinationally acyclic. *)
  let dffs =
    Array.init num_blocks (fun bi ->
        Array.init p.sc_dffs_per_block (fun k ->
            B.dff_placeholder b (Printf.sprintf "q_%d_%d" bi k)))
  in
  let region_exports = Array.init num_regions (fun _ -> Vec.create ()) in
  let global_exports = Vec.create () in
  let used = Hashtbl.create (4 * p.sc_gates) in
  let po_pool = Vec.create () in
  for bi = 0 to num_blocks - 1 do
    let r = region_of bi in
    let pool = Vec.create () in
    Array.iter (fun q -> ignore (Vec.push pool q)) dffs.(bi);
    (* A couple of primary inputs reach every block directly; the rest of
       the import budget is regional with a global minority. *)
    for _ = 1 to 2 do
      ignore (Vec.push pool (Rng.pick rng pis))
    done;
    let regional = region_exports.(r) in
    for _ = 1 to p.sc_region_imports do
      let global = Rng.float rng 1.0 < p.sc_global_fraction in
      let s =
        if global && Vec.length global_exports > 0 then
          Vec.get global_exports (Rng.int rng (Vec.length global_exports))
        else if global then
          (* nothing exported yet: read a foreign flip-flop *)
          Rng.pick rng dffs.(Rng.int rng num_blocks)
        else if Vec.length regional > 0 then
          Vec.get regional (Rng.int rng (Vec.length regional))
        else Rng.pick rng pis
      in
      ignore (Vec.push pool s)
    done;
    (* Local random DAG, quadratic recency bias as in [clustered]: the
       bias concentrates fanout on a few recent signals, giving the
       long-tailed fanout distribution of real logic. *)
    let gates = Vec.create () in
    let pick_operand () =
      let n_pool = Vec.length pool and n_gates = Vec.length gates in
      let total = n_pool + n_gates in
      let r1 = Rng.int rng total in
      let r2 = Rng.int rng total in
      let idx = max r1 r2 in
      let s =
        if idx < n_pool then Vec.get pool idx else Vec.get gates (idx - n_pool)
      in
      Hashtbl.replace used s ();
      s
    in
    for _ = 1 to p.sc_block_gates do
      let kind = Rng.pick rng comb_kinds in
      let arity = Rng.int_in rng 2 4 in
      let fanins = List.init arity (fun _ -> pick_operand ()) in
      ignore (Vec.push gates (B.gate b kind fanins))
    done;
    (* Wire the block's D pins locally; fold unread imports into the first
       D so every import is genuinely consumed. *)
    let unused =
      Vec.fold_left
        (fun acc s -> if Hashtbl.mem used s then acc else s :: acc)
        [] pool
    in
    List.iter (fun s -> Hashtbl.replace used s ()) unused;
    Array.iteri
      (fun k q ->
        let local = Vec.get gates (Rng.int rng (Vec.length gates)) in
        let d =
          if k = 0 && unused <> [] then tree b Gate.Xor (local :: unused)
          else
            (* A dedicated fanout-1 driver per D pin, never exported and
               never a PO, so technology mapping fuses every flip-flop
               with its input cone into one cell. Reusing a shared local
               gate here leaves the flip-flop as a 1-input identity cell,
               and the packer then pairs those leftovers with whatever
               unrelated cell is available — tens of thousands of random
               cross-region links that erase the Rent profile this
               generator exists to produce. *)
            B.gate b (Rng.pick rng comb_kinds)
              [ local; Vec.get gates (Rng.int rng (Vec.length gates)) ]
        in
        B.connect_dff b q d)
      dffs.(bi);
    (* Exports: a slice of the block's signals feeds the region, a trickle
       feeds the global pool. *)
    let n = Vec.length gates in
    for _ = 1 to max 1 (n / 8) do
      ignore (Vec.push regional (Vec.get gates (Rng.int rng n)))
    done;
    ignore (Vec.push global_exports (Vec.get gates (Rng.int rng n)));
    ignore (Vec.push po_pool (Vec.get gates (Rng.int rng n)))
  done;
  for _ = 1 to num_po do
    let g = Vec.get po_pool (Rng.int rng (Vec.length po_pool)) in
    B.mark_output b g;
    Hashtbl.replace used g ()
  done;
  (* Every primary input must be read: fold strays into a parity output. *)
  let stray =
    Array.to_list
      (Array.of_seq
         (Seq.filter (fun pi -> not (Hashtbl.mem used pi)) (Array.to_seq pis)))
  in
  (match stray with
  | [] -> ()
  | [ s ] -> B.mark_output b (B.gate b Gate.Buf [ s ])
  | _ -> B.mark_output b (tree b Gate.Xor stray));
  B.finish b

let random ~rng ?(name = "random") ~num_inputs ~num_gates ~num_dff ~num_outputs () =
  if num_inputs < 1 || num_gates < 1 || num_outputs < 1 || num_dff < 0 then
    invalid_arg "Generator.random: bad parameters";
  let b = B.create ~name () in
  let pis = Array.init num_inputs (fun i -> B.input b (Printf.sprintf "pi%d" i)) in
  let dffs = Array.init num_dff (fun k -> B.dff_placeholder b (Printf.sprintf "q%d" k)) in
  let pool = Vec.create () in
  Array.iter (fun s -> ignore (Vec.push pool s)) pis;
  Array.iter (fun s -> ignore (Vec.push pool s)) dffs;
  let gates = Vec.create () in
  for _ = 1 to num_gates do
    let kind = Rng.pick rng comb_kinds in
    let arity = Rng.int_in rng 1 4 in
    let kind = if arity = 1 then (if Rng.bool rng then Gate.Not else Gate.Buf) else kind in
    let fanins = List.init arity (fun _ -> Vec.get pool (Rng.int rng (Vec.length pool))) in
    let g = B.gate b kind fanins in
    ignore (Vec.push pool g);
    ignore (Vec.push gates g)
  done;
  Array.iter
    (fun q ->
      B.connect_dff b q (Vec.get pool (Rng.int rng (Vec.length pool))))
    dffs;
  for _ = 1 to num_outputs do
    B.mark_output b (Vec.get gates (Rng.int rng (Vec.length gates)))
  done;
  B.finish b
