type op =
  | Add_cell of { name : string; kind : Gate.kind; fanins : string list }
  | Remove_cell of string
  | Rewire of { cell : string; pin : int; net : string }
  | Set_output of { net : string; output : bool }

type t = op list

type error =
  | Duplicate_cell of string
  | Unknown_cell of string
  | Unknown_net of { cell : string; net : string }
  | Still_referenced of { removed : string; by : string }
  | Bad_pin of { cell : string; pin : int }
  | Invalid of string

let error_to_string = function
  | Duplicate_cell name -> Printf.sprintf "duplicate cell name %S" name
  | Unknown_cell name -> Printf.sprintf "no such cell %S" name
  | Unknown_net { cell; net } ->
      Printf.sprintf "cell %S reads unknown signal %S" cell net
  | Still_referenced { removed; by } ->
      Printf.sprintf "removed cell %S is still read by %S" removed by
  | Bad_pin { cell; pin } ->
      Printf.sprintf "cell %S has no fanin pin %d" cell pin
  | Invalid msg -> msg

let is_empty = function [] -> true | _ :: _ -> false

type def = { kind : Gate.kind; fanins : string array }

(* ------------------------------------------------------------------ *)
(* Apply                                                              *)
(* ------------------------------------------------------------------ *)

let ( let* ) = Result.bind

(* Edits run against a name-keyed view of the circuit; cross-references
   (fanins of surviving cells, the removed set) are validated only after
   the last op so a delta may add cells in any order and a flip-flop's D
   may read forward. The edited circuit is then rebuilt in sorted-name DFS
   order — the canonical order of the service digest — so equal edited
   circuits are equal values regardless of op order or base node order. *)
let apply (c : Circuit.t) (ops : t) =
  let defs = Hashtbl.create (Array.length c.Circuit.nodes * 2) in
  let removed = Hashtbl.create 8 in
  let outputs = Hashtbl.create (Array.length c.Circuit.outputs * 2) in
  Array.iter
    (fun (node : Circuit.node) ->
      Hashtbl.replace defs node.Circuit.name
        {
          kind = node.Circuit.kind;
          fanins =
            Array.map
              (fun id -> (Circuit.node c id).Circuit.name)
              node.Circuit.fanins;
        })
    c.Circuit.nodes;
  Array.iter
    (fun id -> Hashtbl.replace outputs (Circuit.node c id).Circuit.name ())
    c.Circuit.outputs;
  let step = function
    | Add_cell { name; kind; fanins } ->
        if Hashtbl.mem defs name then Error (Duplicate_cell name)
        else if not (Gate.arity_ok kind (List.length fanins)) then
          Error
            (Invalid
               (Printf.sprintf "cell %S: %s cannot take %d fanins" name
                  (Gate.to_string kind) (List.length fanins)))
        else begin
          Hashtbl.replace defs name { kind; fanins = Array.of_list fanins };
          Hashtbl.remove removed name;
          Ok ()
        end
    | Remove_cell name ->
        if not (Hashtbl.mem defs name) then Error (Unknown_cell name)
        else begin
          Hashtbl.remove defs name;
          Hashtbl.replace removed name ();
          Hashtbl.remove outputs name;
          Ok ()
        end
    | Rewire { cell; pin; net } -> (
        match Hashtbl.find_opt defs cell with
        | None -> Error (Unknown_cell cell)
        | Some def ->
            if pin < 0 || pin >= Array.length def.fanins then
              Error (Bad_pin { cell; pin })
            else begin
              let fanins = Array.copy def.fanins in
              fanins.(pin) <- net;
              Hashtbl.replace defs cell { def with fanins };
              Ok ()
            end)
    | Set_output { net; output } ->
        if not (Hashtbl.mem defs net) then Error (Unknown_cell net)
        else begin
          if output then Hashtbl.replace outputs net ()
          else Hashtbl.remove outputs net;
          Ok ()
        end
  in
  let rec steps = function
    | [] -> Ok ()
    | op :: rest ->
        let* () = step op in
        steps rest
  in
  let* () = steps ops in
  let names =
    Hashtbl.fold (fun name _ acc -> name :: acc) defs []
    |> List.sort String.compare
  in
  (* Reference check, in sorted-name order so the reported error is a pure
     function of the edited circuit. *)
  let rec check_refs = function
    | [] -> Ok ()
    | name :: rest -> (
        let def = Hashtbl.find defs name in
        let bad =
          Array.fold_left
            (fun acc f ->
              match acc with
              | Some _ -> acc
              | None -> if Hashtbl.mem defs f then None else Some f)
            None def.fanins
        in
        match bad with
        | Some f when Hashtbl.mem removed f ->
            Error (Still_referenced { removed = f; by = name })
        | Some f -> Error (Unknown_net { cell = name; net = f })
        | None -> check_refs rest)
  in
  let* () = check_refs names in
  (* Canonical rebuild: sorted-name DFS with DFF placeholders (a
     flip-flop's D cone may read its own Q). *)
  match
    let b = Circuit.Builder.create ~name:c.Circuit.name () in
    let ids = Hashtbl.create (List.length names) in
    (* Grey set for the DFS: an edit can close a combinational cycle,
       which must surface as [Invalid], not unbounded recursion. Cycles
       through a flip-flop are fine — its Q resolves as a placeholder
       without visiting the D cone. *)
    let visiting = Hashtbl.create 16 in
    let rec resolve name =
      match Hashtbl.find_opt ids name with
      | Some id -> id
      | None ->
          if Hashtbl.mem visiting name then
            invalid_arg
              (Printf.sprintf "combinational cycle through [%s]" name);
          Hashtbl.replace visiting name ();
          let def = Hashtbl.find defs name in
          let id =
            match def.kind with
            | Gate.Input -> Circuit.Builder.input b name
            | Gate.Dff -> Circuit.Builder.dff_placeholder b name
            | kind ->
                Circuit.Builder.gate b ~name kind
                  (Array.to_list (Array.map resolve def.fanins))
          in
          Hashtbl.remove visiting name;
          Hashtbl.replace ids name id;
          id
    in
    List.iter (fun name -> ignore (resolve name)) names;
    List.iter
      (fun name ->
        let def = Hashtbl.find defs name in
        if Gate.equal def.kind Gate.Dff then
          Circuit.Builder.connect_dff b (Hashtbl.find ids name)
            (resolve def.fanins.(0)))
      names;
    Hashtbl.fold (fun name _ acc -> name :: acc) outputs []
    |> List.sort String.compare
    |> List.iter (fun name ->
           Circuit.Builder.mark_output b (Hashtbl.find ids name));
    Circuit.Builder.finish b
  with
  | circuit -> Ok circuit
  | exception Invalid_argument msg -> Error (Invalid msg)

(* ------------------------------------------------------------------ *)
(* Random deltas                                                      *)
(* ------------------------------------------------------------------ *)

(* Cycle safety by construction: every signal carries a float position,
   initially its index in the base topological order; every combinational
   fanin edge the generator creates points from a strictly smaller
   position to a larger one (inserted gates sit just below their consumer,
   between their sources and it). A combinational cycle would need a
   non-increasing edge, so none can appear, whatever the op mix. D-pin
   edges of flip-flops are exempt in the base order but the generator
   applies the same conservative rule to them. *)
let random ~seed ~frac (c : Circuit.t) =
  let rng = Rng.create seed in
  let n = Circuit.num_nodes c in
  let order = Circuit.topological_order c in
  let pos = Hashtbl.create (n * 2) in
  let kind_of = Hashtbl.create (n * 2) in
  let fanins_of = Hashtbl.create (n * 2) in
  let refcount = Hashtbl.create (n * 2) in
  let is_po = Hashtbl.create 16 in
  Array.iteri
    (fun i id ->
      Hashtbl.replace pos (Circuit.node c id).Circuit.name (float_of_int i))
    order;
  Array.iter
    (fun (node : Circuit.node) ->
      Hashtbl.replace kind_of node.Circuit.name node.Circuit.kind;
      Hashtbl.replace fanins_of node.Circuit.name
        (Array.map (fun id -> (Circuit.node c id).Circuit.name) node.Circuit.fanins))
    c.Circuit.nodes;
  let bump name by =
    let v = try Hashtbl.find refcount name with Not_found -> 0 in
    Hashtbl.replace refcount name (v + by)
  in
  Array.iter
    (fun (node : Circuit.node) ->
      Array.iter
        (fun id -> bump (Circuit.node c id).Circuit.name 1)
        node.Circuit.fanins)
    c.Circuit.nodes;
  Array.iter
    (fun id -> Hashtbl.replace is_po (Circuit.node c id).Circuit.name ())
    c.Circuit.outputs;
  let names =
    ref (Array.map (fun (node : Circuit.node) -> node.Circuit.name) c.Circuit.nodes)
  in
  let drop_name name =
    names := Array.of_list (List.filter (( <> ) name) (Array.to_list !names))
  in
  let push_name name =
    names := Array.append !names [| name |]
  in
  let fresh =
    let k = ref 0 in
    fun () ->
      let rec next () =
        let cand = Printf.sprintf "eco%d" !k in
        incr k;
        if Hashtbl.mem pos cand then next () else cand
      in
      next ()
  in
  (* A random signal strictly below [limit]; None after bounded retries. *)
  let source_below limit =
    let rec go tries =
      if tries = 0 then None
      else
        let s = Rng.pick rng !names in
        if Hashtbl.find pos s < limit then Some s else go (tries - 1)
    in
    go 24
  in
  let victim_with_pins () =
    let rec go tries =
      if tries = 0 then None
      else
        let g = Rng.pick rng !names in
        if Array.length (Hashtbl.find fanins_of g) > 0 then Some g
        else go (tries - 1)
    in
    go 24
  in
  let gate_kinds = [| Gate.And; Gate.Or; Gate.Nand; Gate.Nor; Gate.Xor |] in
  let target = max 1 (int_of_float ((frac *. float_of_int n) +. 0.5)) in
  let ops = ref [] in
  let emitted = ref 0 in
  let emit op =
    ops := op :: !ops;
    incr emitted
  in
  let attempts = ref (target * 24) in
  while !emitted < target && !attempts > 0 do
    decr attempts;
    let roll = Rng.int rng 100 in
    if roll < 55 then begin
      (* Insert a fresh gate on one pin of a victim: the classic ECO. *)
      match victim_with_pins () with
      | None -> ()
      | Some g -> (
          let gpos = Hashtbl.find pos g in
          let gfan = Hashtbl.find fanins_of g in
          let p = Rng.int rng (Array.length gfan) in
          let old = gfan.(p) in
          let unary = Rng.int rng 100 < 25 in
          let kind =
            if unary then if Rng.bool rng then Gate.Not else Gate.Buf
            else Rng.pick rng gate_kinds
          in
          let want = if unary then 1 else 2 in
          let srcs = ref [] in
          if Hashtbl.find pos old < gpos then srcs := [ old ];
          let missing = want - List.length !srcs in
          let filled = ref true in
          for _ = 1 to missing do
            match source_below gpos with
            | Some s -> srcs := s :: !srcs
            | None -> filled := false
          done;
          match !filled with
          | false -> ()
          | true ->
              let srcs = List.rev !srcs in
              let name = fresh () in
              let vpos =
                let below =
                  List.fold_left
                    (fun acc s -> Float.max acc (Hashtbl.find pos s))
                    (-1.0) srcs
                in
                (below +. gpos) /. 2.0
              in
              emit (Add_cell { name; kind; fanins = srcs });
              emit (Rewire { cell = g; pin = p; net = name });
              Hashtbl.replace pos name vpos;
              Hashtbl.replace kind_of name kind;
              Hashtbl.replace fanins_of name (Array.of_list srcs);
              List.iter (fun s -> bump s 1) srcs;
              bump name 1;
              bump old (-1);
              gfan.(p) <- name;
              push_name name)
    end
    else if roll < 78 then begin
      (* Rewire one pin of a victim to an earlier signal. *)
      match victim_with_pins () with
      | None -> ()
      | Some g -> (
          let gpos = Hashtbl.find pos g in
          let gfan = Hashtbl.find fanins_of g in
          let p = Rng.int rng (Array.length gfan) in
          match source_below gpos with
          | Some s when s <> gfan.(p) && s <> g ->
              emit (Rewire { cell = g; pin = p; net = s });
              bump gfan.(p) (-1);
              bump s 1;
              gfan.(p) <- s
          | _ -> ())
    end
    else if roll < 90 then begin
      (* Toggle an observation point. *)
      let s = Rng.pick rng !names in
      if Hashtbl.mem is_po s then begin
        (* Unmark only while other outputs remain. *)
        if Hashtbl.length is_po > 1 then begin
          emit (Set_output { net = s; output = false });
          Hashtbl.remove is_po s
        end
      end
      else if not (Gate.equal (Hashtbl.find kind_of s) Gate.Input) then begin
        emit (Set_output { net = s; output = true });
        Hashtbl.replace is_po s ()
      end
    end
    else begin
      (* Remove a dead cell, when the edits so far produced one. *)
      let rec hunt tries =
        if tries = 0 then None
        else
          let s = Rng.pick rng !names in
          let reads = try Hashtbl.find refcount s with Not_found -> 0 in
          if
            reads = 0
            && (not (Hashtbl.mem is_po s))
            && not (Gate.equal (Hashtbl.find kind_of s) Gate.Input)
          then Some s
          else hunt (tries - 1)
      in
      match hunt 24 with
      | None -> ()
      | Some s ->
          emit (Remove_cell s);
          Array.iter (fun f -> bump f (-1)) (Hashtbl.find fanins_of s);
          Hashtbl.remove fanins_of s;
          Hashtbl.remove kind_of s;
          Hashtbl.remove pos s;
          Hashtbl.remove refcount s;
          drop_name s
    end
  done;
  List.rev !ops
