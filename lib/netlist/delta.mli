(** Incremental circuit edits (engineering change orders).

    A delta is an ordered list of edit operations against a base
    {!Circuit.t}: add a cell, remove a cell, rewire one fanin pin, or
    change a signal's primary-output mark. {!apply} validates the edits
    and rebuilds the edited circuit in {e canonical} (sorted-signal-name)
    node order — the same order the service layer's content digest uses —
    so applying the empty delta to an already-canonical circuit is the
    identity, and two textual permutations of the same edit sequence
    produce byte-identical canonical circuits.

    Errors are typed and carry the offending names, mirroring the parser's
    line-numbered diagnostics: a resubmit client gets "removing [g12]
    breaks [g47]" rather than a generic failure. *)

type op =
  | Add_cell of { name : string; kind : Gate.kind; fanins : string list }
      (** Add a gate (or input / flip-flop) defining signal [name],
          reading the named signals in pin order. Fanins may reference
          signals added later in the same delta (and a flip-flop's [D]
          may read its own cone); references resolve after all ops. *)
  | Remove_cell of string
      (** Delete the cell defining this signal. Every surviving cell that
          still reads the signal after the whole delta is applied is an
          error ({!Still_referenced}). Removing a primary output unmarks
          it. *)
  | Rewire of { cell : string; pin : int; net : string }
      (** Point fanin pin [pin] (0-based) of [cell] at signal [net]. *)
  | Set_output of { net : string; output : bool }
      (** Mark or unmark a signal as a primary output. *)

type t = op list
(** Ops apply in list order; validation of cross-references happens after
    the last op, so order only matters for ops touching the same cell. *)

type error =
  | Duplicate_cell of string
      (** {!Add_cell} of a signal name that already exists. *)
  | Unknown_cell of string
      (** {!Remove_cell}, {!Rewire} or {!Set_output} naming a signal that
          does not exist (or was already removed). *)
  | Unknown_net of { cell : string; net : string }
      (** After all ops, [cell] reads signal [net] which never existed. *)
  | Still_referenced of { removed : string; by : string }
      (** After all ops, the surviving cell [by] still reads the removed
          signal [removed]. *)
  | Bad_pin of { cell : string; pin : int }
      (** {!Rewire} pin index out of the cell's fanin range. *)
  | Invalid of string
      (** Structural rejection by the circuit builder: bad arity, a
          combinational cycle introduced by the edits, … *)

val error_to_string : error -> string

val is_empty : t -> bool

val apply : Circuit.t -> t -> (Circuit.t, error) result
(** Apply the delta and rebuild canonically. The base circuit is not
    modified. The result satisfies every {!Circuit.Builder} invariant or
    the apply fails — no partially edited circuit escapes. *)

val random : seed:int -> frac:float -> Circuit.t -> t
(** A seeded pseudo-random delta editing roughly [frac] of the base
    circuit's nodes (at least one op), built so that {!apply} always
    succeeds: inserted gates read only signals topologically no later
    than their consumer, rewires never create combinational cycles, and
    removals only target signals nothing reads any more. The op mix
    imitates a typical ECO: gate insertions on existing pins, pin
    rewires, occasional new observation points and dead-cell removals. *)
