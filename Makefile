.PHONY: all build test bench lint schema ci clean

all: build

build:
	dune build @all

test:
	dune runtest

bench:
	dune exec bench/main.exe

lint:
	sh tools/lint.sh

# Regenerates a stats document and fails on schema-key drift or loss of
# same-seed determinism (see tools/check_schema.sh).
schema: build
	sh tools/check_schema.sh

ci: build test lint schema

clean:
	dune clean
