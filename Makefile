.PHONY: all build test bench lint schema trace service metrics fleet perf objectives ci clean

all: build

build:
	dune build @all

test:
	dune runtest

bench:
	dune exec bench/main.exe

lint:
	sh tools/lint.sh

# Regenerates a stats document and fails on schema-key drift or loss of
# same-seed determinism (see tools/check_schema.sh).
schema: build
	sh tools/check_schema.sh

# Produces a --trace artifact from a traced parallel partition and
# validates the Chrome trace-event JSON Perfetto will load (see
# tools/check_trace.sh).
trace: build
	sh tools/check_trace.sh

# Boots the partitioning daemon on a scratch socket and exercises the
# whole client surface: canonical-hash cache hits must be byte-identical,
# in-flight jobs cancellable, garbage frames survivable, shutdown clean
# (see tools/check_service.sh).
service: build
	sh tools/check_service.sh

# Observability gate: the daemon's svc-metrics exposition must parse as
# valid OpenMetrics (cumulative buckets, +Inf == count, # EOF), health
# must answer, result replies must carry a consistent timings breakdown,
# scrubbed structured logs must be byte-identical across two identical
# runs, and the per-job trace must hold the full lifecycle span set
# (see tools/check_metrics.sh).
metrics: build
	sh tools/check_metrics.sh

# Fleet gate: boots a 4-worker scheduler on a scratch socket, pushes
# 1000 concurrent jobs across 4 tenants through it with the load
# generator (zero lost / zero duplicated replies, p99 budget), SIGKILLs
# a busy worker (exactly-once requeue, respawn), bounces the fleet to
# prove the disk cache survives restarts, and byte-compares a
# single-worker fleet reply against the plain daemon
# (see tools/check_fleet.sh).
fleet: build
	sh tools/check_fleet.sh

# Perf-regression smoke gate for the incremental F-M engine: the
# hot-loop microbenchmark must run and report moves/sec plus
# allocations/move, the stats JSON must export the v4 rescoring
# telemetry, and an FPGAPART_FM_ORACLE=1 rerun (every cached gain
# cross-checked from scratch) must scrub byte-identical to the normal
# run. FPGAPART_PERF_FULL=1 widens the oracle sweep to every bundled
# circuit (see tools/check_perf.sh). Then the bench harness regenerates
# BENCH_partition.json (fixed seeds; only *_secs fields vary run to
# run), including the end-to-end service latency row, so the perf
# trajectory accrues with every perf run.
perf: build
	sh tools/check_perf.sh
	dune exec --no-print-directory bench/main.exe -- partition

# Objective-API gate: --objective paper must reproduce the scalar
# partitioner's decisions byte-for-byte against test/golden/ on all
# bundled circuits, and the multi-personality / chiplet objectives must
# run end-to-end (see tools/check_objectives.sh).
objectives: build
	sh tools/check_objectives.sh

# CI runs the suite and the schema gate under both FPGAPART_JOBS=1 and
# FPGAPART_JOBS=4 (the tests read the variable to size the domain pool),
# then diffs the two scrubbed telemetry documents: the parallel search
# must be invisible in everything but the *_secs timers.
ci: build lint
	FPGAPART_JOBS=1 dune runtest --force
	FPGAPART_JOBS=4 dune runtest --force
	FPGAPART_JOBS=1 SCRUB_OUT=_build/schema.jobs1.json sh tools/check_schema.sh
	FPGAPART_JOBS=4 SCRUB_OUT=_build/schema.jobs4.json sh tools/check_schema.sh
	cmp _build/schema.jobs1.json _build/schema.jobs4.json
	sh tools/check_trace.sh
	sh tools/check_service.sh
	sh tools/check_metrics.sh
	sh tools/check_fleet.sh
	sh tools/check_perf.sh
	sh tools/check_objectives.sh
	@echo "ci: scrubbed telemetry identical across FPGAPART_JOBS=1/4"

clean:
	dune clean
