(* fpgapart: command-line front end for the partitioning library.

   Subcommands:
     stats      circuit statistics before and after technology mapping
     map        write the mapped-CLB view of a circuit
     bipartition   equal-halves min-cut bipartition (Table III style)
     partition  k-way partitioning into the XC3000 library (the paper's
                main flow), with optional functional replication
     psi        replication-potential distribution (Figure 3 style)

   Circuits come from an ISCAS .bench file (--bench FILE) or from a named
   built-in benchmark (--circuit NAME, see `fpgapart list`). *)

open Cmdliner

(* Netlist format, usually inferred from a file extension. *)
type format = Bench | Blif | Verilog

let format_of_path path =
  match Filename.extension path with
  | ".bench" -> Ok Bench
  | ".blif" -> Ok Blif
  | ".v" | ".verilog" -> Ok Verilog
  | ext -> Error ("cannot infer netlist format from extension '" ^ ext ^ "'")

let read_netlist path =
  match format_of_path path with
  | Error _ as e -> e
  | Ok Bench -> Netlist.Bench_format.parse_file path
  | Ok Blif -> Netlist.Blif.parse_file path
  | Ok Verilog -> Netlist.Verilog.parse_file path

let write_netlist path c =
  match format_of_path path with
  | Error _ as e -> e
  | Ok Bench -> Ok (Netlist.Bench_format.write_file path c)
  | Ok Blif -> Ok (Netlist.Blif.write_file path c)
  | Ok Verilog -> Ok (Netlist.Verilog.write_file path c)

(* ------------------------------------------------------------------ *)
(* Circuit sources                                                    *)
(* ------------------------------------------------------------------ *)

let load_circuit bench_file builtin =
  match (bench_file, builtin) with
  | Some path, None -> (
      match read_netlist path with
      | Ok c -> Ok c
      | Error msg -> Error (path ^ ": " ^ msg))
  | None, Some name -> (
      match Experiments.Suite.find name with
      | Some e -> Ok (Lazy.force e.Experiments.Suite.circuit)
      | None -> Error ("unknown built-in circuit: " ^ name))
  | None, None -> Error "need --bench FILE or --circuit NAME"
  | Some _, Some _ -> Error "--bench and --circuit are mutually exclusive"

(* Built-in circuits map through their suite entry, which carries
   per-entry mapper options (the scale circuits disable disjoint CLB
   pairing) and memoises the result; file-loaded netlists use the default
   mapper. *)
let load_circuit_mapped bench_file builtin =
  match (bench_file, builtin) with
  | None, Some name -> (
      match Experiments.Suite.find name with
      | Some e ->
          Ok
            ( Lazy.force e.Experiments.Suite.circuit,
              Lazy.force e.Experiments.Suite.mapped )
      | None -> Error ("unknown built-in circuit: " ^ name))
  | _ ->
      Result.map
        (fun c -> (c, Techmap.Mapper.map c))
        (load_circuit bench_file builtin)

let bench_arg =
  Arg.(
    value
    & opt (some file) None
    & info [ "bench"; "netlist" ] ~docv:"FILE"
        ~doc:
          "Read a netlist file; the format is inferred from the extension \
           (.bench, .blif, .v).")

let circuit_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "circuit" ] ~docv:"NAME"
        ~doc:"Use a built-in benchmark circuit (see $(b,fpgapart list).)")

(* Knobs shared with the bench harness live in Cli_common so the two
   frontends cannot drift. *)
let seed_arg = Cli_common.seed ()
let threshold_arg = Cli_common.replication_threshold ()
let runs_arg = Cli_common.runs ()
let stats_json_arg = Cli_common.stats_json ()
let trace_arg = Cli_common.trace ()
let jobs_arg = Cli_common.jobs ()
let objective_arg = Cli_common.objective ()
let device_lib_arg = Cli_common.device_lib ()
let multilevel_arg = Cli_common.multilevel ()

let verbose_arg =
  Arg.(
    value & flag
    & info [ "verbose"; "v" ] ~doc:"Print driver progress (Logs debug level).")

let setup_logs verbose =
  Logs.set_reporter (Logs.format_reporter ());
  Logs.set_level (Some (if verbose then Logs.Debug else Logs.Warning))

let or_die = function
  | Ok v -> v
  | Error msg ->
      prerr_endline ("fpgapart: " ^ msg);
      exit 1

(* ------------------------------------------------------------------ *)
(* Subcommands                                                        *)
(* ------------------------------------------------------------------ *)

let list_cmd =
  let doc = "List built-in benchmark circuits." in
  let run () =
    List.iter
      (fun e ->
        Format.printf "%-8s  %s@." e.Experiments.Suite.name
          e.Experiments.Suite.description)
      (Experiments.Suite.all ())
  in
  Cmd.v (Cmd.info "list" ~doc) Term.(const run $ const ())

let stats_cmd =
  let doc = "Circuit statistics before and after XC3000 mapping." in
  let run bench builtin =
    let c, m = or_die (load_circuit_mapped bench builtin) in
    Format.printf "%a@." Netlist.Stats.pp (Netlist.Stats.compute c);
    Format.printf "after mapping: %a@." Techmap.Mapped.pp_stats
      (Techmap.Mapped.stats m)
  in
  Cmd.v (Cmd.info "stats" ~doc) Term.(const run $ bench_arg $ circuit_arg)

let map_cmd =
  let doc = "Map a circuit into XC3000 CLBs and describe every CLB." in
  let run bench builtin =
    let _, m = or_die (load_circuit_mapped bench builtin) in
    Format.printf "%a@." Techmap.Mapped.pp_stats (Techmap.Mapped.stats m);
    Array.iter
      (fun clb ->
        let outs =
          Array.to_list clb.Techmap.Mapped.outputs
          |> List.map (fun o ->
                 Printf.sprintf "%s%s"
                   m.Techmap.Mapped.net_names.(o.Techmap.Mapped.net)
                   (if o.Techmap.Mapped.registered then " (reg)" else ""))
          |> String.concat ", "
        in
        let ins =
          Array.to_list clb.Techmap.Mapped.inputs
          |> List.map (fun n -> m.Techmap.Mapped.net_names.(n))
          |> String.concat ", "
        in
        Format.printf "CLB %-24s in: %-40s out: %s@." clb.Techmap.Mapped.name
          ins outs)
      m.Techmap.Mapped.clbs
  in
  Cmd.v (Cmd.info "map" ~doc) Term.(const run $ bench_arg $ circuit_arg)

let psi_cmd =
  let doc = "Replication-potential (psi) distribution of the mapped cells." in
  let run bench builtin =
    let _, m = or_die (load_circuit_mapped bench builtin) in
    let h = Techmap.Mapper.to_hypergraph m in
    Format.printf "%a@." Core.Replication_potential.pp_distribution
      (Core.Replication_potential.distribution h)
  in
  Cmd.v (Cmd.info "psi" ~doc) Term.(const run $ bench_arg $ circuit_arg)

let bipartition_cmd =
  let doc =
    "Equal-halves min-cut bipartition, optionally with functional \
     replication (the paper's first experiment)."
  in
  let run bench builtin seed threshold runs =
    let _, m = or_die (load_circuit_mapped bench builtin) in
    let h = Techmap.Mapper.to_hypergraph m in
    let total = Hypergraph.total_area h in
    let replication = Cli_common.replication_of_threshold threshold in
    let cfg = Core.Fm.balance_config ~replication ~total_area:total () in
    let best = ref None in
    for r = 0 to runs - 1 do
      let st =
        Core.Fm.random_state (Netlist.Rng.create (seed + (r * 65537))) h
      in
      let _, cut, _ = Core.Fm.run_staged cfg st in
      match !best with
      | Some (c, _) when c <= cut -> ()
      | _ -> best := Some (cut, st)
    done;
    match !best with
    | None -> prerr_endline "no bipartition found"
    | Some (cut, st) ->
        Format.printf "cut: %d nets (best of %d runs)@." cut runs;
        Format.printf "side A: %d CLBs, side B: %d CLBs, %d replicated cells@."
          (Partition_state.area st Partition_state.A)
          (Partition_state.area st Partition_state.B)
          (Partition_state.num_replicated st)
  in
  Cmd.v
    (Cmd.info "bipartition" ~doc)
    Term.(
      const run $ bench_arg $ circuit_arg $ seed_arg $ threshold_arg $ runs_arg)

let partition_cmd =
  let doc =
    "Partition a circuit into a heterogeneous XC3000 set minimising total \
     device cost and interconnect (the paper's main flow)."
  in
  let run bench builtin seed threshold runs jobs verbose stats_json trace
      objective device_lib strategy =
    setup_logs verbose;
    let library = or_die (Cli_common.library_of_path device_lib) in
    let _, m = or_die (load_circuit_mapped bench builtin) in
    let name =
      match (builtin, bench) with
      | Some n, _ -> n
      | None, Some path -> Filename.remove_extension (Filename.basename path)
      | None, None -> "circuit"
    in
    let h = Techmap.Mapper.to_hypergraph m in
    let replication = Cli_common.replication_of_threshold threshold in
    (* SIGINT/SIGTERM raise a flag the engine polls between passes: the
       run aborts at the next boundary and the artifacts below are still
       flushed (marked "interrupted") instead of dying mid-write. *)
    let should_stop = Service.Signals.install_stop_flag () in
    let options =
      Core.Kway.Options.make ~runs ~seed ~replication ~jobs ~should_stop
        ~objective ~strategy ()
    in
    (* One sink serves both artifacts; tracing is enabled only when a trace
       file was requested, so --stats-json alone pays no wall-clock or GC
       sampling cost. *)
    let obs =
      match (stats_json, trace) with
      | None, None -> Obs.noop
      | _ -> Obs.create ~trace:(trace <> None) ()
    in
    let flush_trace () =
      match trace with
      | None -> ()
      | Some path ->
          (try Obs.Trace.write ~path obs
           with Sys_error msg ->
             prerr_endline ("fpgapart: cannot write trace: " ^ msg);
             exit 1);
          Format.printf "trace: %s (open in ui.perfetto.dev)@." path
    in
    match Core.Kway.partition ~obs ~options ~library h with
    | Error msg when String.equal msg Core.Kway.cancelled ->
        (match stats_json with
        | None -> ()
        | Some path ->
            (try
               Experiments.Obs_report.write ~path
                 (Obs.Json.Obj
                    [
                      ( "schema_version",
                        Obs.Json.Int Experiments.Obs_report.schema_version );
                      ("circuit", Obs.Json.String name);
                      ("seed", Obs.Json.Int seed);
                      ( "options",
                        Experiments.Obs_report.options_to_json options );
                      ("interrupted", Obs.Json.Bool true);
                      ( "obs",
                        Obs.Snapshot.to_json (Obs.snapshot obs) );
                    ])
             with Sys_error msg ->
               prerr_endline ("fpgapart: cannot write stats: " ^ msg));
            Format.printf "telemetry (partial): %s@." path);
        flush_trace ();
        prerr_endline "fpgapart: interrupted";
        exit 130
    | Error msg ->
        prerr_endline ("fpgapart: " ^ msg);
        exit 1
    | Ok r ->
        (match Core.Kway.check h r with
        | Ok () -> ()
        | Error msg ->
            prerr_endline ("fpgapart: internal: unsound partition: " ^ msg);
            exit 2);
        (match stats_json with
        | None -> ()
        | Some path ->
            (try
               Experiments.Obs_report.write ~path
                 (Experiments.Obs_report.doc ~name ~options ~result:r
                    ~snapshot:(Obs.snapshot obs))
             with Sys_error msg ->
               prerr_endline ("fpgapart: cannot write stats: " ^ msg);
               exit 1);
            Format.printf "telemetry: %s@." path);
        flush_trace ();
        if Obs.enabled obs then
          Format.printf "%t@."
            (Experiments.Obs_report.pp_convergence
               ~snapshot:(Obs.snapshot obs) ~trace:(Obs.Trace.spans obs)
               ~wall_secs:r.Core.Kway.wall_secs);
        Format.printf "%a@." Core.Kway.pp_result r
  in
  Cmd.v
    (Cmd.info "partition" ~doc)
    Term.(
      const run $ bench_arg $ circuit_arg $ seed_arg $ threshold_arg $ runs_arg
      $ jobs_arg $ verbose_arg $ stats_json_arg $ trace_arg $ objective_arg
      $ device_lib_arg $ multilevel_arg)


let convert_cmd =
  let doc =
    "Convert a netlist between the supported formats (.bench, .blif, .v); \
     the formats are inferred from the file extensions."
  in
  let input_pos =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"INPUT")
  in
  let output_pos =
    Arg.(required & pos 1 (some string) None & info [] ~docv:"OUTPUT")
  in
  let opt_flag =
    Arg.(
      value & flag
      & info [ "optimize" ]
          ~doc:"Run the clean-up transforms (constants, buffers, structural \
                hashing, dead sweep) before writing.")
  in
  let run input output optimize =
    let c = or_die (Result.map_error (fun m -> input ^ ": " ^ m) (read_netlist input)) in
    let c = if optimize then Netlist.Transform.optimize c else c in
    or_die (write_netlist output c);
    Format.printf "%a -> %s@." Netlist.Circuit.pp_summary c output
  in
  Cmd.v (Cmd.info "convert" ~doc)
    Term.(const run $ input_pos $ output_pos $ opt_flag)

let generate_cmd =
  let doc = "Write a built-in benchmark circuit to a netlist file." in
  let circuit_pos =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"CIRCUIT")
  in
  let output_pos =
    Arg.(required & pos 1 (some string) None & info [] ~docv:"OUTPUT")
  in
  let run name output =
    match Experiments.Suite.find name with
    | None ->
        prerr_endline ("fpgapart: unknown circuit " ^ name ^ " (see 'fpgapart list')");
        exit 1
    | Some e ->
        let c = Lazy.force e.Experiments.Suite.circuit in
        or_die (write_netlist output c);
        Format.printf "%a -> %s@." Netlist.Circuit.pp_summary c output
  in
  Cmd.v (Cmd.info "generate" ~doc) Term.(const run $ circuit_pos $ output_pos)

let optimize_cmd =
  let doc = "Report the effect of the netlist clean-up transforms." in
  let run bench builtin =
    let c = or_die (load_circuit bench builtin) in
    let c' = Netlist.Transform.optimize c in
    Format.printf "before: %a@.after:  %a@." Netlist.Circuit.pp_summary c
      Netlist.Circuit.pp_summary c'
  in
  Cmd.v (Cmd.info "optimize" ~doc) Term.(const run $ bench_arg $ circuit_arg)

let timing_cmd =
  let doc =
    "Partition a circuit and report the partition-aware static critical \
     path, with and without functional replication."
  in
  let run bench builtin seed threshold runs jobs =
    let _, m = or_die (load_circuit_mapped bench builtin) in
    let h = Techmap.Mapper.to_hypergraph m in
    let analyze label replication =
      let options = Core.Kway.Options.make ~runs ~seed ~replication ~jobs () in
      match Core.Kway.partition ~options ~library:Fpga.Library.xc3000 h with
      | Error msg -> Format.printf "%-26s: failed (%s)@." label msg
      | Ok r ->
          let report = Experiments.Timing_eval.of_result m r in
          Format.printf "%-26s: delay %6.1f, %2d device hops (k=%d, $%.0f)@."
            label report.Techmap.Timing.critical_delay
            report.Techmap.Timing.critical_crossings
            r.Core.Kway.summary.Fpga.Cost.num_partitions
            r.Core.Kway.summary.Fpga.Cost.total_cost
    in
    analyze "baseline" `None;
    let t = Option.value threshold ~default:1 in
    analyze (Printf.sprintf "functional replication T=%d" t) (`Functional t)
  in
  Cmd.v (Cmd.info "timing" ~doc)
    Term.(
      const run $ bench_arg $ circuit_arg $ seed_arg $ threshold_arg $ runs_arg
      $ jobs_arg)

(* ------------------------------------------------------------------ *)
(* Service: daemon and clients                                        *)
(* ------------------------------------------------------------------ *)

let socket_arg = Cli_common.socket ()

(* One RPC round trip; protocol-level errors become exit-1 messages
   carrying the typed error code. *)
let svc_rpc socket req =
  match Service.Client.rpc ~socket req with
  | Error msg -> Error msg
  | Ok reply -> (
      match Service.Client.ok_or_error reply with
      | Ok reply -> Ok reply
      | Error (code, msg) -> Error (Printf.sprintf "%s [%s]" msg code))

let serve_cmd =
  let doc =
    "Run the partitioning daemon: accept jobs over a Unix-domain socket, \
     execute them in FIFO order, cache results by content digest (see \
     README, 'Service'). SIGINT/SIGTERM or the shutdown verb drain the \
     queue and exit."
  in
  let queue_cap_arg =
    Arg.(
      value & opt int 16
      & info [ "queue-cap" ] ~docv:"N"
          ~doc:
            "Bound on queued (not yet running) jobs; submissions past it \
             are refused with the $(b,overloaded) error.")
  in
  let cache_cap_arg =
    Arg.(
      value & opt int 64
      & info [ "cache-cap" ] ~docv:"N"
          ~doc:"Result documents kept in the LRU cache.")
  in
  let timeout_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "timeout" ] ~docv:"SECS"
          ~doc:
            "Per-job wall-clock budget; a job past it is stopped \
             cooperatively and fails with the $(b,timeout) error code.")
  in
  let workers_arg =
    Arg.(
      value & opt int 0
      & info [ "workers" ] ~docv:"N"
          ~doc:
            "Run a fleet: a scheduler on the public socket fanning jobs out \
             to $(docv) worker processes (each a full daemon on a private \
             socket). 0 (the default) keeps the single-process daemon. \
             With a fleet, $(b,--queue-cap) bounds each tenant's queue \
             rather than the global one.")
  in
  let cache_dir_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "cache-dir" ] ~docv:"DIR"
          ~doc:
            "Fleet only: persist results to append-only segment files in \
             $(docv) and reload them on startup, so cache hits (and their \
             byte-identical replies) survive restarts.")
  in
  let tenant_weight_arg =
    Arg.(
      value
      & opt_all (pair ~sep:'=' string int) []
      & info [ "tenant-weight" ] ~docv:"TENANT=W"
          ~doc:
            "Fleet only: weighted fair-share for a tenant (repeatable). A \
             tenant's turn serves up to W jobs before rotating; unlisted \
             tenants weigh 1.")
  in
  let log_level_arg = Cli_common.log_level () in
  let log_file_arg = Cli_common.log_file () in
  let log_scrub_arg = Cli_common.log_scrub () in
  let trace_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:
            "Write a per-job lifecycle trace to $(docv) at shutdown as \
             Chrome trace-event JSON (Perfetto-loadable): one track per \
             job id with its decode, canonicalise, queue_wait, partition \
             and encode_reply spans.")
  in
  let run socket queue_cap cache_cap timeout jobs workers cache_dir
      tenant_weights log_level log_file log_scrub trace_path verbose =
    setup_logs verbose;
    if queue_cap <= 0 || cache_cap <= 0 then (
      prerr_endline "fpgapart: --queue-cap and --cache-cap must be positive";
      exit 1);
    if workers < 0 then (
      prerr_endline "fpgapart: --workers must be >= 0";
      exit 1);
    if workers = 0 && (cache_dir <> None || tenant_weights <> []) then (
      prerr_endline
        "fpgapart: --cache-dir and --tenant-weight need a fleet (--workers N)";
      exit 1);
    List.iter
      (fun (tenant, w) ->
        if w <= 0 || String.length tenant = 0 then (
          prerr_endline "fpgapart: --tenant-weight wants TENANT=W with W >= 1";
          exit 1))
      tenant_weights;
    let stop = Service.Signals.install_stop_flag () in
    (* The log channel outlives Server.run (the final server.stopped line
       lands after the drain), so it is closed on the way out, not
       per-request. *)
    let log_oc =
      match log_file with
      | None -> None
      | Some path -> Some (open_out_gen [ Open_append; Open_creat ] 0o644 path)
    in
    let log =
      Obs.Log.to_channel ~level:log_level ~scrub:log_scrub
        (Option.value log_oc ~default:stderr)
    in
    let outcome =
      if workers = 0 then begin
        let cfg =
          {
            Service.Server.socket_path = socket;
            queue_cap;
            cache_cap;
            timeout;
            jobs;
            log;
            trace_path;
          }
        in
        let on_ready () =
          Format.printf
            "fpgapart: listening on %s (queue %d, cache %d, jobs %d)@." socket
            queue_cap cache_cap jobs
        in
        Service.Server.run ~on_ready ~external_stop:stop cfg
      end
      else begin
        let cfg =
          {
            Fleet.Scheduler.socket_path = socket;
            workers;
            worker_exe = Sys.executable_name;
            queue_cap;
            tenant_weights;
            cache_cap;
            cache_dir;
            timeout;
            jobs;
            log;
          }
        in
        let on_ready () =
          Format.printf
            "fpgapart: fleet listening on %s (%d workers, tenant queue %d, \
             cache %d%s)@."
            socket workers queue_cap cache_cap
            (match cache_dir with
            | Some d -> Printf.sprintf ", disk %s" d
            | None -> "")
        in
        Fleet.Scheduler.run ~on_ready ~external_stop:stop cfg
      end
    in
    Option.iter close_out log_oc;
    or_die outcome;
    Format.printf "fpgapart: daemon stopped@."
  in
  Cmd.v
    (Cmd.info "serve" ~doc)
    Term.(
      const run $ socket_arg $ queue_cap_arg $ cache_cap_arg $ timeout_arg
      $ jobs_arg $ workers_arg $ cache_dir_arg $ tenant_weight_arg
      $ log_level_arg $ log_file_arg $ log_scrub_arg $ trace_arg $ verbose_arg)

let submit_cmd =
  let doc =
    "Submit a circuit to a running daemon ($(b,fpgapart serve)) and, by \
     default, wait for the result document (printed to stdout as JSON; \
     status goes to stderr, so stdout is byte-comparable across \
     submissions)."
  in
  let no_wait_arg =
    Arg.(
      value & flag
      & info [ "no-wait" ]
          ~doc:
            "Print the bare job id on stdout and return instead of \
             waiting for the result.")
  in
  (* The daemon wants netlist text: a file is passed through verbatim, a
     built-in circuit is rendered to .bench. *)
  let load_netlist_text bench builtin =
    match (bench, builtin) with
    | Some path, None -> (
        match format_of_path path with
        | Error _ as e -> e
        | Ok fmt ->
            let fmt =
              match fmt with
              | Bench -> Service.Protocol.Bench
              | Blif -> Service.Protocol.Blif
              | Verilog -> Service.Protocol.Verilog
            in
            let ic = open_in_bin path in
            let text =
              Fun.protect
                ~finally:(fun () -> close_in_noerr ic)
                (fun () -> really_input_string ic (in_channel_length ic))
            in
            let name =
              Filename.remove_extension (Filename.basename path)
            in
            Ok (name, fmt, text))
    | None, Some name -> (
        match Experiments.Suite.find name with
        | Some e ->
            Ok
              ( name,
                Service.Protocol.Bench,
                Netlist.Bench_format.to_string
                  (Lazy.force e.Experiments.Suite.circuit) )
        | None -> Error ("unknown built-in circuit: " ^ name))
    | None, None -> Error "need --bench FILE or --circuit NAME"
    | Some _, Some _ -> Error "--bench and --circuit are mutually exclusive"
  in
  let tenant_arg =
    Arg.(
      value & opt string "default"
      & info [ "tenant" ] ~docv:"ID"
          ~doc:
            "Fair-queue tenant id (1-64 chars); a fleet scheduler \
             ($(b,serve --workers)) shares capacity fairly across \
             tenants, a single-process daemon ignores it.")
  in
  let priority_arg =
    Arg.(
      value & opt int 0
      & info [ "priority" ] ~docv:"N"
          ~doc:"Higher-priority jobs dequeue first within the tenant.")
  in
  let portfolio_arg =
    Arg.(
      value & flag
      & info [ "portfolio" ]
          ~doc:
            "Ask a fleet scheduler to race the job across idle workers \
             with derived seeds; the first feasible-and-cheapest result \
             wins and the losers are cancelled.")
  in
  let retries_arg =
    Arg.(
      value & opt int 0
      & info [ "retries" ] ~docv:"N"
          ~doc:
            "Retry up to $(docv) times, with jittered exponential \
             backoff, when the daemon refuses the connection or replies \
             $(b,overloaded) (default 0: fail fast).")
  in
  let run socket bench builtin seed threshold runs no_wait tenant priority
      portfolio retries strategy =
    let name, format, netlist = or_die (load_netlist_text bench builtin) in
    let replication = Cli_common.replication_of_threshold threshold in
    let options =
      Core.Kway.Options.make ~runs ~seed ~replication ~strategy ()
    in
    let envelope = { Service.Protocol.tenant; priority; portfolio } in
    let rpc req =
      let raw =
        if retries <= 0 then Service.Client.rpc ~socket req
        else
          Service.Client.rpc_retry
            ~backoff:
              { Service.Client.Backoff.default with attempts = retries + 1 }
            ~socket req
      in
      match raw with
      | Error msg -> Error msg
      | Ok reply -> (
          match Service.Client.ok_or_error reply with
          | Ok reply -> Ok reply
          | Error (code, msg) -> Error (Printf.sprintf "%s [%s]" msg code))
    in
    let reply =
      or_die
        (rpc
           (Service.Protocol.Submit { name; format; netlist; options; envelope }))
    in
    let int_field f = Option.bind (Obs.Json.member f reply) Obs.Json.to_int in
    let job =
      match int_field "job" with
      | Some id -> id
      | None ->
          prerr_endline "fpgapart: malformed reply (no job id)";
          exit 1
    in
    let cached =
      Option.value ~default:false
        (Option.bind (Obs.Json.member "cached" reply) Obs.Json.to_bool)
    in
    if cached then (
      Format.eprintf "job %d: cache hit@." job;
      match Obs.Json.member "result" reply with
      | Some doc -> print_endline (Obs.Json.to_string doc)
      | None ->
          prerr_endline "fpgapart: malformed reply (no result)";
          exit 1)
    else if no_wait then (
      (* Bare id on stdout so scripts can capture it. *)
      Format.eprintf "job %d queued@." job;
      Format.printf "%d@." job)
    else (
      Format.eprintf "job %d queued; waiting@." job;
      let reply = or_die (rpc (Service.Protocol.Result { job; wait = true })) in
      match Obs.Json.member "result" reply with
      | Some doc -> print_endline (Obs.Json.to_string doc)
      | None ->
          prerr_endline "fpgapart: malformed reply (no result)";
          exit 1)
  in
  Cmd.v
    (Cmd.info "submit" ~doc)
    Term.(
      const run $ socket_arg $ bench_arg $ circuit_arg $ seed_arg
      $ threshold_arg $ runs_arg $ no_wait_arg $ tenant_arg $ priority_arg
      $ portfolio_arg $ retries_arg $ multilevel_arg)

let perturb_cmd =
  let doc =
    "Generate a seeded pseudo-random ECO delta for a circuit and write \
     the delta (JSON, for $(b,fpgapart resubmit)) and/or the edited \
     netlist (for a cold run of the same edit)."
  in
  let frac_arg =
    Arg.(
      value & opt float 0.01
      & info [ "frac" ] ~docv:"F"
          ~doc:"Edit roughly F of the circuit's nodes (default 0.01).")
  in
  let delta_out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "delta-out" ] ~docv:"FILE"
          ~doc:"Write the delta as JSON ({\"ops\": [...]}).")
  in
  let edited_out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "edited-out" ] ~docv:"FILE"
          ~doc:
            "Write the edited circuit as a netlist (format from the \
             extension).")
  in
  let run bench builtin seed frac delta_out edited_out =
    let c = or_die (load_circuit bench builtin) in
    let delta = Netlist.Delta.random ~seed ~frac c in
    let edited =
      or_die
        (Result.map_error Netlist.Delta.error_to_string
           (Netlist.Delta.apply c delta))
    in
    (match delta_out with
    | None -> ()
    | Some path ->
        Obs.Json.write_file ~path (Service.Protocol.delta_to_json delta));
    (match edited_out with
    | None -> ()
    | Some path -> or_die (write_netlist path edited));
    Format.printf "%d ops (seed %d, frac %g): %a@." (List.length delta) seed
      frac Netlist.Circuit.pp_summary edited
  in
  Cmd.v (Cmd.info "perturb" ~doc)
    Term.(
      const run $ bench_arg $ circuit_arg $ seed_arg $ frac_arg
      $ delta_out_arg $ edited_out_arg)

let resubmit_cmd =
  let doc =
    "Resubmit an edited design to a running daemon: apply a delta (see \
     $(b,fpgapart perturb)) to a finished base job's circuit and \
     repartition incrementally, warm-started from the base's cached \
     partition (cold fallback when the cache evicted it). The result \
     document prints to stdout like $(b,fpgapart submit)."
  in
  let base_job_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "base-job" ] ~docv:"JOB" ~doc:"Base job id.")
  in
  let base_digest_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "base-digest" ] ~docv:"DIGEST"
          ~doc:"Base content digest (the \"digest\" field of a reply).")
  in
  let delta_arg =
    Arg.(
      required
      & opt (some file) None
      & info [ "delta" ] ~docv:"FILE" ~doc:"Delta JSON file.")
  in
  let name_arg =
    Arg.(
      value & opt string "resubmit"
      & info [ "name" ] ~docv:"NAME" ~doc:"Job name for the result document.")
  in
  let no_wait_arg =
    Arg.(
      value & flag
      & info [ "no-wait" ]
          ~doc:
            "Print the bare job id on stdout and return instead of waiting \
             for the result.")
  in
  let run socket base_job base_digest delta_file name no_wait =
    let base =
      match (base_job, base_digest) with
      | Some id, None -> `Job id
      | None, Some d -> `Digest d
      | None, None ->
          prerr_endline "fpgapart: need --base-job or --base-digest";
          exit 1
      | Some _, Some _ ->
          prerr_endline
            "fpgapart: --base-job and --base-digest are mutually exclusive";
          exit 1
    in
    let delta =
      let ic = open_in_bin delta_file in
      let text =
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      match
        Result.bind
          (Obs.Json.of_string text)
          Service.Protocol.delta_of_json
      with
      | Ok d -> d
      | Error msg ->
          prerr_endline ("fpgapart: " ^ delta_file ^ ": " ^ msg);
          exit 1
    in
    let conn = or_die (Service.Client.connect socket) in
    Fun.protect
      ~finally:(fun () -> Service.Client.close conn)
      (fun () ->
        let rpc req =
          match Service.Client.request conn req with
          | Error msg -> Error msg
          | Ok reply -> (
              match Service.Client.ok_or_error reply with
              | Ok reply -> Ok reply
              | Error (code, msg) ->
                  Error (Printf.sprintf "%s [%s]" msg code))
        in
        let reply =
          or_die
            (rpc
               (Service.Protocol.Resubmit { name; base; delta; options = None }))
        in
        let job =
          match
            Option.bind (Obs.Json.member "job" reply) Obs.Json.to_int
          with
          | Some id -> id
          | None ->
              prerr_endline "fpgapart: malformed reply (no job id)";
              exit 1
        in
        let flag f =
          Option.value ~default:false
            (Option.bind (Obs.Json.member f reply) Obs.Json.to_bool)
        in
        if flag "cold_fallback" then
          Format.eprintf "job %d: base context evicted; running cold@." job;
        if flag "cached" then (
          Format.eprintf "job %d: cache hit@." job;
          match Obs.Json.member "result" reply with
          | Some doc -> print_endline (Obs.Json.to_string doc)
          | None ->
              prerr_endline "fpgapart: malformed reply (no result)";
              exit 1)
        else if no_wait then (
          Format.eprintf "job %d queued@." job;
          Format.printf "%d@." job)
        else (
          Format.eprintf "job %d queued; waiting@." job;
          let reply =
            or_die (rpc (Service.Protocol.Result { job; wait = true }))
          in
          match Obs.Json.member "result" reply with
          | Some doc -> print_endline (Obs.Json.to_string doc)
          | None ->
              prerr_endline "fpgapart: malformed reply (no result)";
              exit 1))
  in
  Cmd.v
    (Cmd.info "resubmit" ~doc)
    Term.(
      const run $ socket_arg $ base_job_arg $ base_digest_arg $ delta_arg
      $ name_arg $ no_wait_arg)

let svc_stats_cmd =
  let doc =
    "Print a running daemon's counters, queue depth and cache state as \
     JSON (requests, cache hits/misses, rejections, cancellations, \
     queue-wait and run-time histograms)."
  in
  let run socket =
    let reply = or_die (svc_rpc socket Service.Protocol.Stats) in
    match Obs.Json.member "stats" reply with
    | Some stats -> print_endline (Obs.Json.to_string stats)
    | None ->
        prerr_endline "fpgapart: malformed reply (no stats)";
        exit 1
  in
  Cmd.v (Cmd.info "svc-stats" ~doc) Term.(const run $ socket_arg)

let fleet_stats_cmd =
  let doc =
    "Print a running fleet's topology and queue state as JSON: per-worker \
     state/pid/restarts, per-tenant queue depth and weight, in-flight \
     count, LRU and disk-cache occupancy, and the scheduler's counters. \
     Fails against a single-process daemon."
  in
  let run socket =
    let reply = or_die (svc_rpc socket Service.Protocol.Fleet_stats) in
    match Obs.Json.member "fleet" reply with
    | Some fleet -> print_endline (Obs.Json.to_string fleet)
    | None ->
        prerr_endline "fpgapart: malformed reply (no fleet)";
        exit 1
  in
  Cmd.v (Cmd.info "fleet-stats" ~doc) Term.(const run $ socket_arg)

let svc_metrics_cmd =
  let doc =
    "Dump a running daemon's OpenMetrics/Prometheus text exposition to \
     stdout: live gauges (queue depth, inflight jobs, cache occupancy \
     and hit ratio, GC), SLO latency histograms (queue-wait, run, \
     end-to-end) and every service counter and histogram."
  in
  let run socket =
    let reply = or_die (svc_rpc socket Service.Protocol.Metrics) in
    match Option.bind (Obs.Json.member "metrics" reply) Obs.Json.to_str with
    | Some text -> print_string text
    | None ->
        prerr_endline "fpgapart: malformed reply (no metrics)";
        exit 1
  in
  Cmd.v (Cmd.info "svc-metrics" ~doc) Term.(const run $ socket_arg)

let svc_health_cmd =
  let doc =
    "Probe a running daemon's health: accepting|draining state, protocol \
     and stats schema versions, uptime, queue depth/capacity, inflight \
     jobs and cache occupancy, printed as JSON. Exits non-zero when the \
     daemon is unreachable."
  in
  let run socket =
    let reply = or_die (svc_rpc socket Service.Protocol.Health) in
    match Obs.Json.member "health" reply with
    | Some health -> print_endline (Obs.Json.to_string health)
    | None ->
        prerr_endline "fpgapart: malformed reply (no health)";
        exit 1
  in
  Cmd.v (Cmd.info "svc-health" ~doc) Term.(const run $ socket_arg)

let svc_cancel_cmd =
  let doc = "Request cooperative cancellation of a job on the daemon." in
  let job_pos =
    Arg.(required & pos 0 (some int) None & info [] ~docv:"JOB")
  in
  let run socket job =
    let reply = or_die (svc_rpc socket (Service.Protocol.Cancel job)) in
    let state =
      Option.value ~default:"?"
        (Option.bind (Obs.Json.member "state" reply) Obs.Json.to_str)
    in
    Format.printf "job %d: %s@." job state
  in
  Cmd.v (Cmd.info "svc-cancel" ~doc) Term.(const run $ socket_arg $ job_pos)

let svc_shutdown_cmd =
  let doc =
    "Ask the daemon to drain its queue and exit (queued jobs still run; \
     new submissions are refused)."
  in
  let run socket =
    ignore (or_die (svc_rpc socket Service.Protocol.Shutdown));
    Format.printf "daemon draining@."
  in
  Cmd.v (Cmd.info "svc-shutdown" ~doc) Term.(const run $ socket_arg)

let main =
  let doc =
    "Multi-way netlist partitioning into heterogeneous FPGAs with \
     functional replication (Kuznar-Brglez-Zajc, DAC 1994)"
  in
  Cmd.group (Cmd.info "fpgapart" ~doc)
    [
      list_cmd; stats_cmd; map_cmd; psi_cmd; bipartition_cmd; partition_cmd;
      convert_cmd; generate_cmd; optimize_cmd; timing_cmd; serve_cmd;
      submit_cmd; perturb_cmd; resubmit_cmd; svc_stats_cmd; fleet_stats_cmd;
      svc_metrics_cmd; svc_health_cmd; svc_cancel_cmd; svc_shutdown_cmd;
    ]

let () = exit (Cmd.eval main)
