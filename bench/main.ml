(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation section, plus Bechamel micro-benchmarks of the algorithmic
   kernels behind each table.

   Usage:
     dune exec bench/main.exe                          # everything
     dune exec bench/main.exe -- table3 fig3 timing    # selected artifacts
     dune exec bench/main.exe -- --cut-runs 5 all      # faster Table III
   Options: --cut-runs N (Table III bipartitions per circuit, default 20),
            --runs/--kway-runs N (k-way multi-starts, default 5),
            --seed N, --jobs N (parallel-speedup measurement of the
            partition artifact, default 4, env FPGAPART_JOBS),
            --trace FILE (partition artifact only: additionally run one
            traced c6288 partition and write a Perfetto-loadable
            Chrome trace-event JSON).
   The option terms are shared with the fpgapart CLI (Cli_common), so the
   two frontends cannot drift. *)

open Cmdliner

let cut_runs = ref 20
let kway_runs = ref 5
let seed = ref 7
let jobs = ref 4
let trace_path = ref None
let hotloop_circuit = ref "s38584"
let hotloop_runs = ref 3

let progress fmt =
  Format.kfprintf
    (fun f -> Format.pp_print_newline f ())
    Format.err_formatter fmt

let section title = Format.printf "@.=== %s ===@.@." title

(* The k-way campaign feeds Tables IV-VII; run it once. *)
let campaign =
  lazy
    (List.map
       (fun e ->
         progress "k-way campaign: %s..." e.Experiments.Suite.display;
         Experiments.Kway_campaign.run ~runs:!kway_runs ~seed:!seed e)
       (Experiments.Suite.all ()))

let table1 () =
  section "Table I: the XC3000 device library";
  Format.printf "%a@." Fpga.Library.pp Fpga.Library.xc3000;
  Format.printf
    "(capacities and terminals are the real XC3000 values; prices are \
     reconstructed - see DESIGN.md)@."

let table2 () =
  section "Table II: benchmark circuit characteristics (after mapping)";
  Format.printf "%a@." Experiments.Table2.pp (Experiments.Table2.run_all ());
  Format.printf
    "(* = profile-matched synthetic reconstructions of the ISCAS circuits)@."

let fig3 () =
  section "Figure 3: cell distribution vs replication potential";
  Format.printf "%a@." Experiments.Fig3.pp (Experiments.Fig3.run_all ())

let table3 () =
  section
    (Printf.sprintf
       "Table III: best/average cut, F-M min-cut vs + functional replication \
        (%d runs/circuit)"
       !cut_runs);
  let rows =
    List.map
      (fun e ->
        progress "Table III: %s..." e.Experiments.Suite.display;
        Experiments.Table3.run ~runs:!cut_runs ~seed:!seed e)
      (Experiments.Suite.all ())
  in
  Format.printf "%a@." Experiments.Table3.pp rows

let table4 () =
  section "Table IV: percentage of replicated cells and CPU cost";
  Format.printf "%a@." Experiments.Kway_campaign.pp_table4 (Lazy.force campaign)

let table5 () =
  section "Table V: average CLB utilization after partitioning";
  Format.printf "%a@." Experiments.Kway_campaign.pp_table5 (Lazy.force campaign)

let table6 () =
  section "Table VI: total design cost after partitioning";
  Format.printf "%a@." Experiments.Kway_campaign.pp_table6 (Lazy.force campaign)

let table7 () =
  section "Table VII: average IOB utilization after partitioning";
  Format.printf "%a@." Experiments.Kway_campaign.pp_table7 (Lazy.force campaign)

(* ------------------------------------------------------------------ *)
(* Hot-loop microbenchmark                                            *)
(* ------------------------------------------------------------------ *)

(* Pure [Fm.run] throughput — no technology mapping, no k-way driver, no
   multi-start pool — on one circuit at a fixed seed, for both gain
   modes. Two sweeps per mode over identical fresh states: a counting
   sweep under a collecting sink reads the deterministic op counts
   (telemetry never steers the engine, so the timed sweep applies exactly
   the same ops), then a timed sweep under the no-op sink measures wall
   clock and, via [Gc.quick_stat] deltas, words allocated per applied
   move — the perf-regression gate's two numbers. *)
let hotloop_measure ~gain_mode ~runs ~seed hg ~total_area =
  let module J = Obs.Json in
  let states () =
    List.init runs (fun r ->
        Core.Fm.random_state (Netlist.Rng.create (seed + r)) hg)
  in
  let cfg =
    Core.Fm.balance_config ~replication:(`Functional 0) ~gain_mode ~total_area
      ()
  in
  let obs = Obs.create () in
  List.iter (fun st -> ignore (Core.Fm.run ~obs cfg st)) (states ());
  let snap = Obs.snapshot obs in
  let counter k =
    try List.assoc k snap.Obs.Snapshot.counters with Not_found -> 0
  in
  let applied = counter "fm.applied_ops" in
  let rescored = counter "fm.rescored_cells" in
  let passes = counter "fm.passes" in
  let sts = states () in
  Gc.full_major ();
  let g0 = Gc.quick_stat () in
  let t0 = Obs.Clock.wall () in
  List.iter (fun st -> ignore (Core.Fm.run cfg st)) sts;
  let wall = Obs.Clock.wall () -. t0 in
  let g1 = Gc.quick_stat () in
  (* Words the timed sweep allocated: minor + direct-to-major (promoted
     words would be double-counted). *)
  let alloc_words =
    g1.Gc.minor_words -. g0.Gc.minor_words
    +. (g1.Gc.major_words -. g0.Gc.major_words)
    -. (g1.Gc.promoted_words -. g0.Gc.promoted_words)
  in
  let per_move d = d /. float_of_int (max 1 applied) in
  J.Obj
    [
      ("applied_ops", J.Int applied);
      ("rescored_cells", J.Int rescored);
      ("rescored_per_move", J.Float (per_move (float_of_int rescored)));
      ("passes", J.Int passes);
      ("wall_secs", J.Float wall);
      ("moves_per_sec", J.Float (float_of_int applied /. Float.max wall 1e-9));
      ("alloc_words_per_move", J.Float (per_move alloc_words));
      ( "minor_collections",
        J.Int (g1.Gc.minor_collections - g0.Gc.minor_collections) );
      ( "major_collections",
        J.Int (g1.Gc.major_collections - g0.Gc.major_collections) );
    ]

let hotloop_doc () =
  let module J = Obs.Json in
  let name = !hotloop_circuit in
  match Experiments.Suite.find name with
  | None -> Error (Printf.sprintf "unknown hotloop circuit %S" name)
  | Some e ->
      let hg = Lazy.force e.Experiments.Suite.hypergraph in
      let total_area = Hypergraph.total_area hg in
      let runs = !hotloop_runs and seed = !seed in
      progress "hotloop: %s, %d F-M runs/mode, seed %d..." name runs seed;
      let eager = hotloop_measure ~gain_mode:`Eager ~runs ~seed hg ~total_area in
      let lzy = hotloop_measure ~gain_mode:`Lazy ~runs ~seed hg ~total_area in
      Ok
        (J.Obj
           [
             ("circuit", J.String name);
             ("seed", J.Int seed);
             ("fm_runs", J.Int runs);
             ("replication", J.String "functional(0)");
             ("modes", J.Obj [ ("eager", eager); ("lazy", lzy) ]);
           ])

let pp_hotloop j =
  let module J = Obs.Json in
  let fstr get k o =
    match Option.bind (J.member k o) get with
    | Some v -> v
    | None -> nan
  in
  match J.member "modes" j with
  | Some (J.Obj modes) ->
      Format.printf "%-8s %12s %14s %12s %12s@." "mode" "applied"
        "moves/sec" "resc/move" "words/move";
      List.iter
        (fun (mode, o) ->
          Format.printf "%-8s %12.0f %14.0f %12.2f %12.1f@." mode
            (fstr J.to_float "applied_ops" o)
            (fstr J.to_float "moves_per_sec" o)
            (fstr J.to_float "rescored_per_move" o)
            (fstr J.to_float "alloc_words_per_move" o))
        modes
  | _ -> ()

let hotloop () =
  section
    (Printf.sprintf "Hot-loop microbenchmark: pure F-M throughput (%s)"
       !hotloop_circuit);
  match hotloop_doc () with
  | Error msg -> prerr_endline ("bench: " ^ msg)
  | Ok j ->
      Format.printf "%s@." (Obs.Json.to_string j);
      pp_hotloop j

(* End-to-end service latency: boot an in-process daemon on a scratch
   socket, time one cold submit -> result round trip and one cache-hit
   round trip. This is the row behind the service SLO histograms: what a
   client actually waits, transport and queueing included, next to the
   bare engine wall-clock the suite rows report. Keys are *_secs — the
   values are wall-derived and scrub away like every other timer. *)
let service_row () =
  let name = "c1355" in
  match Experiments.Suite.find name with
  | None -> Error ("suite lacks " ^ name)
  | Some e -> (
      let sock = Filename.temp_file "fpgapart_bench" ".sock" in
      Sys.remove sock;
      let cfg = Service.Server.default_config ~socket_path:sock in
      let ready = Atomic.make false in
      let server =
        Thread.create
          (fun () ->
            match
              Service.Server.run
                ~on_ready:(fun () -> Atomic.set ready true)
                cfg
            with
            | Ok () -> ()
            | Error msg -> prerr_endline ("bench: service: " ^ msg))
          ()
      in
      while not (Atomic.get ready) do
        Thread.yield ()
      done;
      let finish () =
        (match Service.Client.rpc ~socket:sock Service.Protocol.Shutdown with
        | Ok _ | Error _ -> ());
        Thread.join server
      in
      Fun.protect ~finally:finish (fun () ->
          let text =
            Netlist.Bench_format.to_string
              (Lazy.force e.Experiments.Suite.circuit)
          in
          let options = Core.Kway.Options.make ~runs:!kway_runs ~seed:1 () in
          let rpc req =
            match Service.Client.rpc ~socket:sock req with
            | Error msg -> Error msg
            | Ok reply -> (
                match Service.Client.ok_or_error reply with
                | Ok reply -> Ok reply
                | Error (_, msg) -> Error msg)
          in
          let submit () =
            rpc
              (Service.Protocol.Submit
                 {
                   name;
                   format = Service.Protocol.Bench;
                   netlist = text;
                   options;
                   envelope = Service.Protocol.default_envelope;
                 })
          in
          let ( let* ) = Result.bind in
          let t0 = Obs.Clock.wall () in
          let* reply = submit () in
          let* job =
            match
              Option.bind (Obs.Json.member "job" reply) Obs.Json.to_int
            with
            | Some id -> Ok id
            | None -> Error "submit reply lacks a job id"
          in
          let* _ =
            rpc (Service.Protocol.Result { job; wait = true })
          in
          let cold = Obs.Clock.wall () -. t0 in
          let t1 = Obs.Clock.wall () in
          let* hit_reply = submit () in
          let hit = Obs.Clock.wall () -. t1 in
          let* () =
            if
              Option.bind (Obs.Json.member "cached" hit_reply)
                Obs.Json.to_bool
              = Some true
            then Ok ()
            else Error "second submission missed the cache"
          in
          Ok
            ( cold,
              hit,
              Obs.Json.Obj
                [
                  ("circuit", Obs.Json.String name);
                  ("runs", Obs.Json.Int !kway_runs);
                  ("cold_e2e_secs", Obs.Json.Float cold);
                  ("cache_hit_e2e_secs", Obs.Json.Float hit);
                ] )))

(* Fleet end-to-end latency at 1/2/4 workers: cold submit, cache hit,
   and a portfolio race, each through a real scheduler fanning out to
   forked worker processes. Needs the fpgapart binary (workers are
   exec'd); resolved from FPGAPART_BIN or the default build path, and
   the row is skipped when neither exists. All keys are *_secs. *)
let fleet_worker_exe () =
  match Sys.getenv_opt "FPGAPART_BIN" with
  | Some p when Sys.file_exists p -> Some p
  | _ ->
      let guess = "_build/default/bin/fpgapart.exe" in
      if Sys.file_exists guess then Some guess else None

let fleet_row () =
  let name = "c1355" in
  match (Experiments.Suite.find name, fleet_worker_exe ()) with
  | None, _ -> Error ("suite lacks " ^ name)
  | _, None -> Error "fpgapart binary not built (workers are exec'd)"
  | Some e, Some exe ->
      let text =
        Netlist.Bench_format.to_string (Lazy.force e.Experiments.Suite.circuit)
      in
      let measure workers =
        let sock = Filename.temp_file "fpgapart_fleet_bench" ".sock" in
        Sys.remove sock;
        let cfg =
          Fleet.Scheduler.default_config ~socket_path:sock ~workers
            ~worker_exe:exe
        in
        let ready = Atomic.make false in
        let sched =
          Thread.create
            (fun () ->
              match
                Fleet.Scheduler.run
                  ~on_ready:(fun () -> Atomic.set ready true)
                  cfg
              with
              | Ok () -> ()
              | Error msg -> prerr_endline ("bench: fleet: " ^ msg))
            ()
        in
        while not (Atomic.get ready) do
          Thread.yield ()
        done;
        let finish () =
          (match Service.Client.rpc ~socket:sock Service.Protocol.Shutdown with
          | Ok _ | Error _ -> ());
          Thread.join sched
        in
        Fun.protect ~finally:finish (fun () ->
            let rpc req =
              match Service.Client.rpc ~socket:sock req with
              | Error msg -> Error msg
              | Ok reply -> (
                  match Service.Client.ok_or_error reply with
                  | Ok reply -> Ok reply
                  | Error (_, msg) -> Error msg)
            in
            (* Wait for the worker pool before timing anything, so the
               cold number measures the job, not the fork+exec. *)
            let deadline = Obs.Clock.wall () +. 30.0 in
            let rec wait_up () =
              let up =
                match rpc Service.Protocol.Health with
                | Error _ -> 0
                | Ok reply -> (
                    match
                      Option.bind
                        (Option.bind
                           (Obs.Json.member "health" reply)
                           (Obs.Json.member "workers_up"))
                        Obs.Json.to_int
                    with
                    | Some n -> n
                    | None -> 0)
              in
              if up >= workers then Ok ()
              else if Obs.Clock.wall () > deadline then
                Error "fleet workers never came up"
              else begin
                Thread.delay 0.05;
                wait_up ()
              end
            in
            let submit ~seed ~portfolio =
              rpc
                (Service.Protocol.Submit
                   {
                     name;
                     format = Service.Protocol.Bench;
                     netlist = text;
                     options = Core.Kway.Options.make ~runs:!kway_runs ~seed ();
                     envelope =
                       {
                         Service.Protocol.tenant = "bench";
                         priority = 0;
                         portfolio;
                       };
                   })
            in
            let ( let* ) = Result.bind in
            let* () = wait_up () in
            let round ~seed ~portfolio =
              let t0 = Obs.Clock.wall () in
              let* reply = submit ~seed ~portfolio in
              let* () =
                if
                  Option.bind
                    (Obs.Json.member "result" reply)
                    (fun _ -> Some ())
                  = Some ()
                then Ok ()
                else
                  let* job =
                    match
                      Option.bind (Obs.Json.member "job" reply) Obs.Json.to_int
                    with
                    | Some id -> Ok id
                    | None -> Error "submit reply lacks a job id"
                  in
                  let* _ =
                    rpc (Service.Protocol.Result { job; wait = true })
                  in
                  Ok ()
              in
              Ok (Obs.Clock.wall () -. t0)
            in
            let* cold = round ~seed:1 ~portfolio:false in
            let* hit = round ~seed:1 ~portfolio:false in
            let* folio = round ~seed:2 ~portfolio:true in
            Ok
              ( cold,
                hit,
                folio,
                Obs.Json.Obj
                  [
                    ("workers", Obs.Json.Int workers);
                    ("cold_e2e_secs", Obs.Json.Float cold);
                    ("cache_hit_e2e_secs", Obs.Json.Float hit);
                    ("portfolio_e2e_secs", Obs.Json.Float folio);
                  ] ))
      in
      let ( let* ) = Result.bind in
      let* rows =
        List.fold_left
          (fun acc workers ->
            let* acc = acc in
            let* cold, hit, folio, row = measure workers in
            Format.printf
              "fleet %d worker%s: cold %.3fs / hit %.4fs / portfolio %.3fs@."
              workers
              (if workers = 1 then "" else "s")
              cold hit folio;
            Ok (row :: acc))
          (Ok []) [ 1; 2; 4 ]
      in
      Ok
        (Obs.Json.Obj
           [
             ("circuit", Obs.Json.String name);
             ("runs", Obs.Json.Int !kway_runs);
             ("scales", Obs.Json.List (List.rev rows));
           ])

let partition_stats () =
  section "BENCH_partition.json: k-way engine telemetry aggregate";
  progress
    "partition telemetry: running the suite under a collecting sink \
     (plus jobs=1 vs jobs=%d wall-clock runs)..."
    !jobs;
  let doc, speedups =
    Experiments.Obs_report.suite_doc ~runs:!kway_runs ~seed:1 ~jobs:!jobs ()
  in
  (* The hot-loop microbenchmark rides in the same artifact: the per-move
     numbers (moves/sec, words/move) sit next to the end-to-end telemetry
     they explain. *)
  let doc =
    match hotloop_doc () with
    | Ok h -> (
        match doc with
        | Obs.Json.Obj fields -> Obs.Json.Obj (fields @ [ ("hotloop", h) ])
        | other -> other)
    | Error msg ->
        prerr_endline ("bench: " ^ msg);
        doc
  in
  (* The incremental-repartitioning (ECO) measurement rides along too:
     cold vs warm wall-clock and cost on a seeded 1%-edit of the hotloop
     circuit — the artifact behind the resubmit speedup gate. *)
  let doc =
    let name = !hotloop_circuit in
    match Experiments.Suite.find name with
    | None -> doc
    | Some e -> (
        progress "resubmit: %s, seed %d, 1%% edit (cold vs warm)..." name
          !seed;
        let options = Core.Kway.Options.make ~runs:!kway_runs ~seed:1 () in
        match Experiments.Eco.run ~options ~seed:!seed ~frac:0.01 e with
        | Error msg ->
            prerr_endline ("bench: resubmit: " ^ msg);
            doc
        | Ok report -> (
            let row = Experiments.Eco.to_json report in
            Format.printf
              "resubmit %s: cold %.2fs / warm %.2fs (%.1fx), cost %.0f -> \
               %.0f (ratio %.3f), dirty %d/%d@."
              name report.Experiments.Eco.cold_wall_secs
              report.Experiments.Eco.warm_wall_secs
              report.Experiments.Eco.speedup report.Experiments.Eco.cold_cost
              report.Experiments.Eco.warm_cost
              report.Experiments.Eco.cost_ratio
              report.Experiments.Eco.dirty_cells
              report.Experiments.Eco.edited_cells;
            match doc with
            | Obs.Json.Obj fields ->
                Obs.Json.Obj (fields @ [ ("resubmit", row) ])
            | other -> other))
  in
  (* The end-to-end service latency rides along: what a client of the
     daemon waits for a cold job and for a cache hit, transport and
     queueing included. *)
  let doc =
    progress "service: in-process daemon, cold + cache-hit round trip...";
    match service_row () with
    | Error msg ->
        prerr_endline ("bench: service: " ^ msg);
        doc
    | Ok (cold, hit, row) -> (
        Format.printf "service e2e: cold %.3fs / cache hit %.4fs@." cold hit;
        match doc with
        | Obs.Json.Obj fields -> Obs.Json.Obj (fields @ [ ("service", row) ])
        | other -> other)
  in
  (* Fleet scaling rides along: the same round trips through a real
     multi-process scheduler at 1, 2 and 4 workers, plus a portfolio
     race — the numbers behind the fleet SLOs. *)
  let doc =
    progress "fleet: scheduler + worker processes at 1/2/4 workers...";
    match fleet_row () with
    | Error msg ->
        prerr_endline ("bench: fleet: " ^ msg);
        doc
    | Ok row -> (
        match doc with
        | Obs.Json.Obj fields -> Obs.Json.Obj (fields @ [ ("fleet", row) ])
        | other -> other)
  in
  (* Per-objective ablation rides along: every builtin cost objective on
     every suite circuit, so the paper / multi-personality / chiplet
     numbers sit next to the main campaign they vary. *)
  let doc =
    progress "objectives: %d circuits x %d objectives..."
      (List.length (Experiments.Suite.all ()))
      (List.length Fpga.Objective.builtins);
    let rows =
      List.concat_map
        (Experiments.Objectives.run ~runs:!kway_runs ~seed:1)
        (Experiments.Suite.all ())
    in
    Format.printf "%a@." Experiments.Objectives.pp rows;
    match doc with
    | Obs.Json.Obj fields ->
        Obs.Json.Obj
          (fields @ [ ("objectives", Experiments.Objectives.rows_to_json rows) ])
    | other -> other
  in
  (* Flat vs multilevel rides along: the V-cycle next to the flat driver
     on the largest bundled circuit (the quality gate — multilevel must
     land within a few percent), plus the seeded 100k-cell Rent-profile
     circuit only the multilevel backbone can take in seconds.
     FPGAPART_PERF_FULL=1 widens to the million-cell profile. *)
  let doc =
    let module J = Obs.Json in
    let ml = Core.Kway.Multilevel Core.Kway.Options.default_multilevel in
    let strategy_name = function
      | Core.Kway.Flat -> "flat"
      | Core.Kway.Multilevel _ -> "multilevel"
    in
    let row ~name ~library ~strategy =
      match Experiments.Suite.find name with
      | None ->
          J.Obj
            [
              ("circuit", J.String name);
              ("error", J.String "unknown circuit");
            ]
      | Some e -> (
          progress "multilevel row: %s (%s)..." name (strategy_name strategy);
          let hg = Lazy.force e.Experiments.Suite.hypergraph in
          let options = Core.Kway.Options.make ~runs:1 ~seed:1 ~strategy () in
          match Core.Kway.partition ~options ~library hg with
          | Error msg ->
              J.Obj [ ("circuit", J.String name); ("error", J.String msg) ]
          | Ok r ->
              let s = r.Core.Kway.summary in
              Format.printf
                "multilevel row %s (%s): %d devices, cost %.0f, %.2fs@." name
                (strategy_name strategy) s.Fpga.Cost.num_partitions
                s.Fpga.Cost.total_cost r.Core.Kway.wall_secs;
              J.Obj
                [
                  ("circuit", J.String name);
                  ("options", Experiments.Obs_report.options_to_json options);
                  ("result", Experiments.Obs_report.result_to_json r);
                ])
    in
    let rows =
      [
        row ~name:"s38584" ~library:Fpga.Library.xc3000
          ~strategy:Core.Kway.Flat;
        row ~name:"s38584" ~library:Fpga.Library.xc3000 ~strategy:ml;
      ]
    in
    let rows =
      match Fpga.Library.load "bench/scale_devices.json" with
      | Error msg ->
          prerr_endline ("bench: multilevel: scale_devices: " ^ msg);
          rows
      | Ok scale ->
          let rows = rows @ [ row ~name:"gen100k" ~library:scale ~strategy:ml ] in
          if Sys.getenv_opt "FPGAPART_PERF_FULL" <> None then
            rows @ [ row ~name:"gen1m" ~library:scale ~strategy:ml ]
          else rows
    in
    match doc with
    | Obs.Json.Obj fields -> Obs.Json.Obj (fields @ [ ("multilevel", J.List rows) ])
    | other -> other
  in
  Experiments.Obs_report.write ~path:"BENCH_partition.json" doc;
  (match speedups with
  | [] -> ()
  | l ->
      Format.printf "%-10s %12s %12s %9s@." "circuit" "jobs=1 wall"
        (Printf.sprintf "jobs=%d wall" !jobs)
        "speedup";
      let sum1 = ref 0.0 and sumn = ref 0.0 in
      List.iter
        (fun (s : Experiments.Obs_report.speedup) ->
          sum1 := !sum1 +. s.Experiments.Obs_report.jobs1_wall;
          sumn := !sumn +. s.Experiments.Obs_report.jobsn_wall;
          Format.printf "%-10s %11.2fs %11.2fs %8.2fx@."
            s.Experiments.Obs_report.circuit s.Experiments.Obs_report.jobs1_wall
            s.Experiments.Obs_report.jobsn_wall
            (s.Experiments.Obs_report.jobs1_wall
            /. Float.max 1e-9 s.Experiments.Obs_report.jobsn_wall))
        l;
      Format.printf "%-10s %11.2fs %11.2fs %8.2fx  (aggregate)@." "total" !sum1
        !sumn
        (!sum1 /. Float.max 1e-9 !sumn));
  Format.printf
    "wrote BENCH_partition.json (schema v%d: per-circuit options/result, \
     fm.pass and kway.* event streams, per-circuit jobs=1 vs jobs=%d \
     wall-clock)@."
    Experiments.Obs_report.schema_version !jobs;
  (* One traced partition of the largest default circuit: the Perfetto
     artifact showing how the multi-start runs spread over the domains. *)
  match !trace_path with
  | None -> ()
  | Some path -> (
      progress "trace: c6288 at jobs=%d -> %s..." !jobs path;
      match Experiments.Suite.find "c6288" with
      | None -> prerr_endline "bench: c6288 missing from the suite"
      | Some e ->
          let h = Lazy.force e.Experiments.Suite.hypergraph in
          let obs = Obs.create ~trace:true () in
          let options =
            Core.Kway.Options.make ~runs:!kway_runs ~seed:1 ~jobs:!jobs ()
          in
          (match
             Core.Kway.partition ~obs ~options ~library:Fpga.Library.xc3000 h
           with
          | Ok _ -> ()
          | Error msg -> prerr_endline ("bench: traced partition failed: " ^ msg));
          Obs.Trace.write ~path obs;
          Format.printf "wrote %s (Chrome trace-event JSON; open in \
                         ui.perfetto.dev)@."
            path)

let timing () =
  section "Extension: partition-aware static timing (baseline vs T=1)";
  let rows =
    List.filter_map
      (fun e ->
        progress "timing: %s..." e.Experiments.Suite.display;
        Experiments.Timing_eval.run ~runs:!kway_runs ~seed:!seed e)
      (Experiments.Suite.all ())
  in
  Format.printf "%a@." Experiments.Timing_eval.pp rows

let ablation () =
  section "Ablation A: functional vs traditional replication (min-cut)";
  let rows =
    List.map
      (fun e ->
        progress "ablation A: %s..." e.Experiments.Suite.display;
        Experiments.Ablation.replication_model ~runs:10 ~seed:!seed e)
      (Experiments.Suite.all ())
  in
  Format.printf "%a@." Experiments.Ablation.pp_replication_model rows;
  section "Ablation B: CLB output pairing on/off";
  let rows =
    List.map
      (fun e ->
        progress "ablation B: %s..." e.Experiments.Suite.display;
        Experiments.Ablation.pairing ~runs:10 ~seed:!seed e)
      (Experiments.Suite.all ())
  in
  Format.printf "%a@." Experiments.Ablation.pp_pairing rows;
  section "Ablation C: flat vs multilevel initial solutions";
  let rows =
    List.map
      (fun e ->
        progress "ablation C: %s..." e.Experiments.Suite.display;
        Experiments.Ablation.multilevel ~runs:5 ~seed:!seed e)
      (Experiments.Suite.all ())
  in
  Format.printf "%a@." Experiments.Ablation.pp_multilevel rows

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks                                          *)
(* ------------------------------------------------------------------ *)

let perf_tests () =
  let open Bechamel in
  let entry name =
    match Experiments.Suite.find name with
    | Some e -> e
    | None -> assert false
  in
  let h_mid = Lazy.force (entry "s9234").Experiments.Suite.hypergraph in
  let total_mid = Hypergraph.total_area h_mid in
  let circuit_small = Lazy.force (entry "c1355").Experiments.Suite.circuit in
  (* Pre-built state for kernel benches. *)
  let st = Partition_state.create h_mid ~init_on_b:(fun c -> c mod 2 = 0) in
  let kernel_eval =
    Test.make ~name:"kernel/gain-eval"
      (Staged.stage (fun () ->
           let acc = ref 0 in
           for c = 0 to 99 do
             let d =
               Partition_state.eval st c
                 (Bitvec.complement
                    (Bitvec.norm (Partition_state.full_mask st c))
                    (Partition_state.mask st c))
             in
             acc := !acc + d.Partition_state.d_cut
           done;
           !acc))
  in
  let kernel_apply =
    Test.make ~name:"kernel/apply-undo"
      (Staged.stage (fun () ->
           for c = 0 to 99 do
             let old_mask = Partition_state.mask st c in
             let flip =
               Bitvec.complement
                 (Bitvec.norm (Partition_state.full_mask st c))
                 old_mask
             in
             ignore (Partition_state.apply st c flip);
             ignore (Partition_state.apply st c old_mask)
           done))
  in
  let t2_mapping =
    Test.make ~name:"table2/technology-mapping"
      (Staged.stage (fun () -> Techmap.Mapper.map circuit_small))
  in
  let f3_distribution =
    Test.make ~name:"fig3/psi-distribution"
      (Staged.stage (fun () -> Core.Replication_potential.distribution h_mid))
  in
  let t3_plain =
    let cfg = Core.Fm.balance_config ~total_area:total_mid () in
    Test.make ~name:"table3/fm-mincut"
      (Staged.stage (fun () ->
           let st = Core.Fm.random_state (Netlist.Rng.create 1) h_mid in
           Core.Fm.run cfg st))
  in
  let t3_repl =
    let cfg =
      Core.Fm.balance_config ~replication:(`Functional 0) ~total_area:total_mid
        ()
    in
    Test.make ~name:"table3/fm-mincut+func-repl"
      (Staged.stage (fun () ->
           let st = Core.Fm.random_state (Netlist.Rng.create 1) h_mid in
           Core.Fm.run cfg st))
  in
  let kway options name =
    Test.make ~name
      (Staged.stage (fun () ->
           match
             Core.Kway.partition ~options ~library:Fpga.Library.xc3000 h_mid
           with
           | Ok r -> r.Core.Kway.summary.Fpga.Cost.total_cost
           | Error _ -> nan))
  in
  let t4567_base =
    kway (Core.Kway.Options.make ~runs:1 ()) "table4-7/kway-baseline"
  in
  let t4567_repl =
    kway
      (Core.Kway.Options.make ~runs:1 ~replication:(`Functional 0) ())
      "table4-7/kway+func-repl(T=0)"
  in
  [
    kernel_eval;
    kernel_apply;
    t2_mapping;
    f3_distribution;
    t3_plain;
    t3_repl;
    t4567_base;
    t4567_repl;
  ]

let perf () =
  section "Bechamel micro-benchmarks (one kernel per table)";
  let open Bechamel in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 1.0) () in
  let grouped = Test.make_grouped ~name:"paper" (perf_tests ()) in
  let raw = Benchmark.all cfg [ instance ] grouped in
  let results = Analyze.all ols instance raw in
  let rows =
    Hashtbl.fold
      (fun name ols acc ->
        let t =
          match Analyze.OLS.estimates ols with Some (t :: _) -> t | _ -> nan
        in
        (name, t) :: acc)
      results []
    |> List.sort compare
  in
  Format.printf "%-42s %16s@." "kernel" "time/run";
  List.iter
    (fun (name, t) ->
      let pretty =
        if Float.is_nan t then "-"
        else if t > 1e9 then Printf.sprintf "%.2f s" (t /. 1e9)
        else if t > 1e6 then Printf.sprintf "%.2f ms" (t /. 1e6)
        else if t > 1e3 then Printf.sprintf "%.2f us" (t /. 1e3)
        else Printf.sprintf "%.0f ns" t
      in
      Format.printf "%-42s %16s@." name pretty)
    rows

(* ------------------------------------------------------------------ *)

let artifacts =
  [
    ("table1", table1);
    ("table2", table2);
    ("fig3", fig3);
    ("table3", table3);
    ("table4", table4);
    ("table5", table5);
    ("table6", table6);
    ("table7", table7);
    ("ablation", ablation);
    ("timing", timing);
    ("partition", partition_stats);
    ("hotloop", hotloop);
    ("perf", perf);
  ]

let run selected cut_runs' kway_runs' seed' jobs' trace' hl_circuit' hl_runs' =
  cut_runs := cut_runs';
  kway_runs := kway_runs';
  seed := seed';
  jobs := jobs';
  trace_path := trace';
  hotloop_circuit := hl_circuit';
  hotloop_runs := hl_runs';
  let names =
    selected
    |> List.concat_map (fun name ->
           if name = "all" then List.map fst artifacts else [ name ])
  in
  match List.find_opt (fun n -> not (List.mem_assoc n artifacts)) names with
  | Some unknown ->
      Format.eprintf "bench: unknown artifact %S (choose from: all %s)@."
        unknown
        (String.concat " " (List.map fst artifacts));
      exit 2
  | None ->
      let names = if names = [] then List.map fst artifacts else names in
      let t0 = Obs.Clock.cpu () in
      List.iter (fun name -> (List.assoc name artifacts) ()) names;
      progress "total CPU time: %.1fs" (Obs.Clock.cpu () -. t0)

let main =
  let doc =
    "Regenerate the paper's tables, figures, telemetry aggregate and \
     micro-benchmarks"
  in
  let artifacts_arg =
    Arg.(
      value & pos_all string []
      & info [] ~docv:"ARTIFACT"
          ~doc:
            "Artifacts to produce (default: all): all, table1..table7, \
             fig3, ablation, timing, partition, hotloop, perf.")
  in
  let cut_runs_arg =
    Arg.(
      value & opt int 20
      & info [ "cut-runs" ] ~docv:"N"
          ~doc:"Table III bipartitions per circuit (default 20).")
  in
  let hotloop_circuit_arg =
    Arg.(
      value & opt string "s38584"
      & info [ "hotloop-circuit" ] ~docv:"NAME"
          ~doc:
            "Circuit for the hot-loop microbenchmark (default s38584, the \
             largest bundled circuit).")
  in
  let hotloop_runs_arg =
    Arg.(
      value & opt int 3
      & info [ "hotloop-runs" ] ~docv:"N"
          ~doc:"F-M runs per gain mode in the hot-loop microbenchmark \
                (default 3).")
  in
  Cmd.v (Cmd.info "bench" ~doc)
    Term.(
      const run $ artifacts_arg $ cut_runs_arg
      $ Cli_common.runs ~extra_names:[ "kway-runs" ] ()
      $ Cli_common.seed ~default:7 ()
      $ Cli_common.jobs ~default:4 ()
      $ Cli_common.trace () $ hotloop_circuit_arg $ hotloop_runs_arg)

let () = exit (Cmd.eval main)
