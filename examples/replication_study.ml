(* Threshold study: how the threshold replication potential T (eq. 6)
   trades circuit expansion against interconnect, on a clustered sequential
   circuit of the kind where the paper reports the largest gains.

   For each T the example reports: how many cells are allowed to replicate
   (r_T), the best equal-halves cut, and the k-way cost / CLB / IOB
   figures. T = none is the ref. [3] baseline; T = 0 is maximum
   replication.

   Run with: dune exec examples/replication_study.exe *)

let () =
  let circuit =
    Netlist.Generator.clustered
      {
        Netlist.Generator.default_clustered with
        clusters = 12;
        gates_per_cluster = 110;
        dffs_per_cluster = 26;
        num_pi = 34;
        num_po = 45;
        seed = 5;
      }
  in
  Format.printf "circuit: %a@." Netlist.Circuit.pp_summary circuit;
  let h = Techmap.Mapper.to_hypergraph (Techmap.Mapper.map circuit) in
  let dist = Core.Replication_potential.distribution h in
  Format.printf "@.cell distribution over psi (Fig. 3 for this circuit):@.%a@."
    Core.Replication_potential.pp_distribution dist;

  let total = Hypergraph.total_area h in
  let best_cut replication =
    let cfg = Core.Fm.balance_config ~replication ~total_area:total () in
    let best = ref max_int in
    for seed = 1 to 10 do
      let st = Core.Fm.random_state (Netlist.Rng.create seed) h in
      let _, cut, _ = Core.Fm.run_staged cfg st in
      best := min !best cut
    done;
    !best
  in
  let kway replication =
    let options = Core.Kway.Options.make ~replication () in
    Core.Kway.partition ~options ~library:Fpga.Library.xc3000 h
  in
  Format.printf "@.%-8s %6s %10s %10s %10s %10s %8s@." "T" "r_T" "best cut"
    "cost $" "CLB util" "IOB util" "repl";
  List.iter
    (fun setting ->
      let label, replication =
        match setting with
        | None -> ("none", `None)
        | Some t -> (Printf.sprintf "%d" t, `Functional t)
      in
      let r_t =
        match setting with
        | None -> 0
        | Some t ->
            Core.Replication_potential.max_replication_factor dist ~threshold:t
      in
      let cut = best_cut replication in
      match kway replication with
      | Error msg -> Format.printf "%-8s %6d %10d   (k-way failed: %s)@." label r_t cut msg
      | Ok r ->
          let s = r.Core.Kway.summary in
          Format.printf "%-8s %6d %10d %10.0f %9.0f%% %9.0f%% %7.1f%%@." label
            r_t cut s.Fpga.Cost.total_cost
            (100.0 *. s.Fpga.Cost.avg_clb_utilization)
            (100.0 *. s.Fpga.Cost.avg_iob_utilization)
            (100.0
            *. float_of_int r.Core.Kway.replicated_cells
            /. float_of_int r.Core.Kway.total_cells))
    [ None; Some 0; Some 1; Some 2; Some 3; Some 4 ];
  Format.printf
    "@.(r_T = cells allowed to replicate, eq. 6; cut = best of 10 \
     equal-halves bipartitions; the k-way columns use the XC3000 library)@."
