(* The paper's c6288 scenario: a 16x16 array multiplier is too large for
   any single XC3000 device, so it must be partitioned across several.
   This example runs the heterogeneous k-way driver with and without
   functional replication and compares the paper's two objectives: total
   device cost (eq. 1) and average IOB utilization (eq. 2).

   Run with: dune exec examples/multiplier_partition.exe *)

let () =
  let circuit = Netlist.Generator.multiplier ~name:"c6288" ~bits:16 () in
  Format.printf "circuit: %a@." Netlist.Circuit.pp_summary circuit;
  let mapped = Techmap.Mapper.map circuit in
  Format.printf "mapped:  %a@." Techmap.Mapped.pp_stats
    (Techmap.Mapped.stats mapped);
  let h = Techmap.Mapper.to_hypergraph mapped in
  let largest = Fpga.Library.largest Fpga.Library.xc3000 in
  Format.printf "largest device holds %d CLBs -> %d CLBs need k >= %d@.@."
    (Fpga.Device.max_clbs largest)
    (Hypergraph.total_area h)
    ((Hypergraph.total_area h + Fpga.Device.max_clbs largest - 1)
    / Fpga.Device.max_clbs largest);

  let run label replication =
    let options = Core.Kway.Options.make ~replication ~runs:5 () in
    match Core.Kway.partition ~options ~library:Fpga.Library.xc3000 h with
    | Error msg ->
        Format.printf "%s: failed (%s)@." label msg;
        None
    | Ok r ->
        (* Every partition is re-validated against the original netlist:
           output coverage, device windows, recomputed IOB counts. *)
        (match Core.Kway.check h r with
        | Ok () -> ()
        | Error e -> failwith ("unsound partition: " ^ e));
        Format.printf "--- %s ---@.%a@." label Core.Kway.pp_result r;
        Some r.Core.Kway.summary
  in
  let run_with_result label replication =
    let options = Core.Kway.Options.make ~replication ~runs:5 () in
    match Core.Kway.partition ~options ~library:Fpga.Library.xc3000 h with
    | Error _ -> None
    | Ok r -> Some (label, r)
  in
  let base = run "baseline (no replication, ref. [3] style)" `None in
  let repl = run "functional replication, T = 1" (`Functional 1) in
  (match (base, repl) with
  | Some b, Some r ->
      let pct f b r = 100.0 *. (f b -. f r) /. f b in
      Format.printf
        "@.replication changed cost by %+.1f%% and IOB utilization by \
         %+.1f%% (negative = reduction)@."
        (-.pct (fun s -> s.Fpga.Cost.total_cost) b r)
        (-.pct (fun s -> s.Fpga.Cost.avg_iob_utilization) b r)
  | _ -> ());
  (* Performance view (extension): board-level nets dominate path delay,
     so the interconnect gains translate into critical-path gains. *)
  Format.printf "@.static timing (CLB 1.0 / local net 0.2 / board net 8.0):@.";
  List.iter
    (fun entry ->
      match entry with
      | None -> ()
      | Some (label, r) ->
          let report = Experiments.Timing_eval.of_result mapped r in
          Format.printf "  %-40s delay %6.1f, %d device hops on the path@."
            label report.Techmap.Timing.critical_delay
            report.Techmap.Timing.critical_crossings)
    [
      run_with_result "baseline" `None;
      run_with_result "functional replication, T = 1" (`Functional 1);
    ]
