(* Partitioning against a user-defined heterogeneous device library.

   The library model is not tied to the XC3000 family: any set of
   (capacity, terminals, price, utilization window) devices works. This
   example invents a three-member family with a deliberately steep price
   curve and partitions a 64-bit ALU into it, showing how the driver's
   device mix responds to the economics.

   Run with: dune exec examples/custom_library.exe *)

let acme_library =
  Fpga.Library.make
    [
      (* A terminal-rich small part... *)
      Fpga.Device.make ~name:"ACME-S" ~capacity:80 ~terminals:100 ~price:90.0
        ~util_high:0.95 ();
      (* ...a balanced mid part... *)
      Fpga.Device.make ~name:"ACME-M" ~capacity:200 ~terminals:140 ~price:190.0
        ~util_low:0.40 ~util_high:0.95 ();
      (* ...and a big part that is cheap per CLB but terminal-poor. *)
      Fpga.Device.make ~name:"ACME-L" ~capacity:420 ~terminals:170 ~price:340.0
        ~util_low:0.40 ~util_high:0.95 ();
    ]

let () =
  Format.printf "the ACME library:@.%a@." Fpga.Library.pp acme_library;
  let circuit = Netlist.Generator.alu ~bits:64 () in
  let h = Techmap.Mapper.to_hypergraph (Techmap.Mapper.map circuit) in
  Format.printf "circuit: %a -> %d CLBs@.@." Netlist.Circuit.pp_summary circuit
    (Hypergraph.total_area h);
  List.iter
    (fun (label, replication) ->
      let options = Core.Kway.Options.make ~replication () in
      match Core.Kway.partition ~options ~library:acme_library h with
      | Error msg -> Format.printf "%s: failed (%s)@." label msg
      | Ok r ->
          (match Core.Kway.check h r with
          | Ok () -> ()
          | Error e -> failwith ("unsound partition: " ^ e));
          Format.printf "--- %s ---@.%a@." label Core.Kway.pp_result r)
    [ ("baseline", `None); ("functional replication, T = 1", `Functional 1) ];
  (* A lower bound for context: fractional covering by the most
     cost-efficient device. *)
  Format.printf "cost lower bound (fractional): $%.0f@."
    (Fpga.Library.min_feasible_cost acme_library
       ~clbs:(Hypergraph.total_area h))
