(* Tests for the XC3000 technology mapper: decomposition, LUT covering, CLB
   packing, mapped-netlist legality, and functional equivalence with the
   source circuit. *)

open Netlist
open Techmap

let checki = Alcotest.check Alcotest.int
let checkb = Alcotest.check Alcotest.bool

let equivalent ?(vectors = 48) c =
  (* Run both representations on identical stimulus. *)
  let rng = Rng.create 7 in
  let vecs = Simulate.random_vectors rng c vectors in
  fun c' -> Simulate.run c vecs = Simulate.run c' vecs

(* ------------------------------------------------------------------ *)
(* Decompose                                                          *)
(* ------------------------------------------------------------------ *)

let test_decompose_reduces_fanin () =
  let c = Generator.ecc ~data_bits:16 () in
  let d = Decompose.run c in
  let s = Stats.compute d in
  checkb "fanin <= 2" true (s.Stats.max_fanin <= 2);
  checkb "equivalent" true (equivalent c d)

let test_decompose_wide_gates () =
  (* One wide gate of each inverted kind. *)
  let b = Circuit.Builder.create () in
  let ins = List.init 7 (fun i -> Circuit.Builder.input b (Printf.sprintf "i%d" i)) in
  List.iter
    (fun kind -> Circuit.Builder.mark_output b (Circuit.Builder.gate b kind ins))
    [ Gate.And; Gate.Nand; Gate.Or; Gate.Nor; Gate.Xor; Gate.Xnor ];
  let c = Circuit.Builder.finish b in
  let d = Decompose.run c in
  checkb "fanin <= 2" true ((Stats.compute d).Stats.max_fanin <= 2);
  checkb "equivalent" true (equivalent c d)

let test_decompose_preserves_dffs () =
  let c =
    Generator.clustered
      { Generator.default_clustered with clusters = 3; gates_per_cluster = 30 }
  in
  let d = Decompose.run c in
  checki "same flip-flop count" (Circuit.num_dff c) (Circuit.num_dff d);
  checkb "equivalent" true (equivalent c d)

let test_decompose_name_collision_safe () =
  (* Source names that look like generated names must not clash with the
     decomposition's fresh tree nodes. *)
  let b = Circuit.Builder.create () in
  let ins = List.init 5 (fun i -> Circuit.Builder.input b (Printf.sprintf "$d%d" i)) in
  let g = Circuit.Builder.gate b ~name:"$d99" Gate.And ins in
  Circuit.Builder.mark_output b g;
  let c = Circuit.Builder.finish b in
  let d = Decompose.run c in
  checkb "equivalent" true (equivalent c d)

let qcheck_decompose_equivalence =
  QCheck.Test.make ~name:"decompose preserves behaviour" ~count:30
    QCheck.small_int
    (fun seed ->
      let rng = Rng.create seed in
      let c =
        Generator.random ~rng ~num_inputs:6 ~num_gates:40 ~num_dff:4
          ~num_outputs:5 ()
      in
      let d = Decompose.run c in
      (Stats.compute d).Stats.max_fanin <= 2 && equivalent c d)

(* ------------------------------------------------------------------ *)
(* Cover                                                              *)
(* ------------------------------------------------------------------ *)


let test_cover_basic () =
  let c = Decompose.run (Generator.c17 ()) in
  let cover = Cover.run c in
  (* Every LUT obeys the input budget and covers a live root. *)
  Array.iter
    (fun lut ->
      checkb "support <= 4" true (Array.length lut.Cover.support <= 4);
      checkb "registered root" true (cover.Cover.lut_of_root.(lut.Cover.root) >= 0))
    cover.Cover.luts;
  (* c17 fits in very few 4-LUTs: 2 outputs, 5 inputs -> at most 4. *)
  checkb "compresses" true (Array.length cover.Cover.luts <= 4)

let test_cover_rejects_wide () =
  let b = Circuit.Builder.create () in
  let ins = List.init 6 (fun i -> Circuit.Builder.input b (Printf.sprintf "i%d" i)) in
  let g = Circuit.Builder.gate b Gate.And ins in
  Circuit.Builder.mark_output b g;
  let c = Circuit.Builder.finish b in
  Alcotest.check_raises "wide gate"
    (Invalid_argument "Cover.run: gate fanin exceeds k (run Decompose first)")
    (fun () -> ignore (Cover.run c))

let test_cover_lut_tables () =
  (* A LUT covering XOR(AND(a,b), c) must reproduce that function. *)
  let b = Circuit.Builder.create () in
  let a = Circuit.Builder.input b "a" in
  let bb = Circuit.Builder.input b "b" in
  let cc = Circuit.Builder.input b "c" in
  let g1 = Circuit.Builder.gate b Gate.And [ a; bb ] in
  let g2 = Circuit.Builder.gate b Gate.Xor [ g1; cc ] in
  Circuit.Builder.mark_output b g2;
  let c = Circuit.Builder.finish b in
  let cover = Cover.run c in
  checki "single LUT" 1 (Array.length cover.Cover.luts);
  let lut = cover.Cover.luts.(0) in
  checki "3 pins" 3 (Array.length lut.Cover.support);
  (* Exhaustive functional check through eval_lut. *)
  for v = 0 to 7 do
    let value_of node =
      (* support is sorted by node id = a, b, c creation order *)
      let idx = ref (-1) in
      Array.iteri (fun k s -> if s = node then idx := k) lut.Cover.support;
      v land (1 lsl !idx) <> 0
    in
    let expect = (value_of a && value_of bb) <> value_of cc in
    let pins = Array.map (fun s -> value_of s) lut.Cover.support in
    checkb "table" expect (Cover.eval_lut lut pins)
  done

let test_cover_dead_logic_vanishes () =
  let b = Circuit.Builder.create () in
  let a = Circuit.Builder.input b "a" in
  let live = Circuit.Builder.gate b Gate.Not [ a ] in
  let _dead = Circuit.Builder.gate b Gate.Not [ live ] in
  Circuit.Builder.mark_output b live;
  let c = Circuit.Builder.finish b in
  let cover = Cover.run c in
  checki "only the live LUT" 1 (Array.length cover.Cover.luts)

(* ------------------------------------------------------------------ *)
(* Full mapping                                                       *)
(* ------------------------------------------------------------------ *)

let map_ok c =
  let m = Mapper.map c in
  (match Mapped.validate m with
  | Ok () -> ()
  | Error e -> Alcotest.fail ("mapped netlist invalid: " ^ e));
  m

let test_map_c17 () =
  let c = Generator.c17 () in
  let m = map_ok c in
  checkb "equivalent" true (Mapped.equivalent c m);
  let s = Mapped.stats m in
  checki "IOBs = pads" 7 s.Mapped.iobs;
  checkb "tiny CLB count" true (s.Mapped.clbs <= 2)

let test_map_structural_generators () =
  List.iter
    (fun c ->
      let m = map_ok c in
      checkb (c.Circuit.name ^ " equivalent") true (Mapped.equivalent c m))
    [
      Generator.ripple_adder ~bits:8 ();
      Generator.multiplier ~bits:6 ();
      Generator.alu ~bits:4 ();
      Generator.ecc ~data_bits:16 ();
      Generator.adder_comparator ~bits:6 ();
    ]

let test_map_sequential () =
  let c =
    Generator.clustered
      { Generator.default_clustered with clusters = 4; gates_per_cluster = 40 }
  in
  let m = map_ok c in
  checkb "sequential equivalence over 64 cycles" true
    (Mapped.equivalent ~vectors:64 c m);
  let s = Mapped.stats m in
  checkb "flip-flops survive" true (s.Mapped.dffs >= Circuit.num_dff c);
  checki "flip-flops exactly preserved" (Circuit.num_dff c) s.Mapped.dffs

let test_map_produces_multi_output_cells () =
  (* The whole point: pairing yields two-output CLBs with distinct
     per-output supports, i.e. cells with replication potential. *)
  let c = Generator.multiplier ~bits:8 () in
  let m = map_ok c in
  let multi =
    Array.fold_left
      (fun acc clb -> if Array.length clb.Mapped.outputs = 2 then acc + 1 else acc)
      0 m.Mapped.clbs
  in
  checkb "some paired CLBs" true (multi > 0);
  (* And at least one has an input private to one output (psi > 0). *)
  let has_private =
    Array.exists
      (fun clb ->
        Array.length clb.Mapped.outputs = 2
        &&
        let s0 = Mapped.support_mask clb 0 and s1 = Mapped.support_mask clb 1 in
        (not (Bitvec.is_empty (Bitvec.diff s0 s1)))
        || not (Bitvec.is_empty (Bitvec.diff s1 s0)))
      m.Mapped.clbs
  in
  checkb "some cell with private inputs" true has_private

let test_map_no_pairing_option () =
  let c = Generator.ripple_adder ~bits:8 () in
  let paired = Mapper.map c in
  let single =
    Mapper.map ~options:{ Mapper.default_options with pair = false } c
  in
  checkb "pairing reduces CLB count" true
    ((Mapped.stats paired).Mapped.clbs < (Mapped.stats single).Mapped.clbs);
  Array.iter
    (fun clb -> checki "single output" 1 (Array.length clb.Mapped.outputs))
    single.Mapped.clbs;
  checkb "unpaired still equivalent" true (Mapped.equivalent c single)

let test_map_pass_through_ff () =
  (* A flip-flop fed directly by a primary input must become a
     pass-through registered CLB. *)
  let b = Circuit.Builder.create () in
  let a = Circuit.Builder.input b "a" in
  let q = Circuit.Builder.dff_placeholder b "q" in
  Circuit.Builder.connect_dff b q a;
  Circuit.Builder.mark_output b q;
  let c = Circuit.Builder.finish b in
  let m = map_ok c in
  checkb "equivalent" true (Mapped.equivalent c m);
  checki "one CLB" 1 (Array.length m.Mapped.clbs)

let test_map_ff_fusion () =
  (* q = DFF(XOR(a,b)): the XOR LUT fuses into the FF -> one CLB, and the
     intermediate net disappears. *)
  let b = Circuit.Builder.create () in
  let a = Circuit.Builder.input b "a" in
  let bb = Circuit.Builder.input b "b" in
  let d = Circuit.Builder.gate b Gate.Xor [ a; bb ] in
  let q = Circuit.Builder.dff_placeholder b "q" in
  Circuit.Builder.connect_dff b q d;
  Circuit.Builder.mark_output b q;
  let c = Circuit.Builder.finish b in
  let m = map_ok c in
  checki "one CLB" 1 (Array.length m.Mapped.clbs);
  checki "nets: a, b, q only" 3 m.Mapped.num_nets;
  checkb "equivalent" true (Mapped.equivalent c m)

let test_map_shared_d_not_fused () =
  (* The D driver feeds two FFs: it must stay a visible net. *)
  let b = Circuit.Builder.create () in
  let a = Circuit.Builder.input b "a" in
  let bb = Circuit.Builder.input b "b" in
  let d = Circuit.Builder.gate b Gate.And [ a; bb ] in
  let q1 = Circuit.Builder.dff_placeholder b "q1" in
  let q2 = Circuit.Builder.dff_placeholder b "q2" in
  Circuit.Builder.connect_dff b q1 d;
  Circuit.Builder.connect_dff b q2 d;
  Circuit.Builder.mark_output b q1;
  Circuit.Builder.mark_output b q2;
  let c = Circuit.Builder.finish b in
  let m = map_ok c in
  checkb "equivalent" true (Mapped.equivalent c m);
  let s = Mapped.stats m in
  checki "two FFs" 2 s.Mapped.dffs

let test_map_po_driver_not_fused () =
  (* The D driver is also a primary output: fusing it away would lose the
     PO net. *)
  let b = Circuit.Builder.create () in
  let a = Circuit.Builder.input b "a" in
  let d = Circuit.Builder.gate b ~name:"d" Gate.Not [ a ] in
  let q = Circuit.Builder.dff_placeholder b "q" in
  Circuit.Builder.connect_dff b q d;
  Circuit.Builder.mark_output b d;
  Circuit.Builder.mark_output b q;
  let c = Circuit.Builder.finish b in
  let m = map_ok c in
  checkb "equivalent" true (Mapped.equivalent c m)

let qcheck_map_equivalence =
  QCheck.Test.make ~name:"mapping preserves behaviour (random circuits)"
    ~count:25 QCheck.small_int
    (fun seed ->
      let rng = Rng.create (seed * 13 + 1) in
      let c =
        Generator.random ~rng ~num_inputs:6 ~num_gates:60 ~num_dff:5
          ~num_outputs:6 ()
      in
      let m = Mapper.map c in
      Result.is_ok (Mapped.validate m) && Mapped.equivalent ~vectors:32 c m)

let qcheck_map_legality =
  QCheck.Test.make ~name:"mapped CLBs obey XC3000 limits" ~count:25
    QCheck.small_int
    (fun seed ->
      let rng = Rng.create (seed * 17 + 5) in
      let c =
        Generator.random ~rng ~num_inputs:8 ~num_gates:80 ~num_dff:6
          ~num_outputs:8 ()
      in
      let m = Mapper.map c in
      Array.for_all
        (fun clb ->
          Array.length clb.Mapped.inputs <= Mapped.max_inputs
          && Array.length clb.Mapped.outputs <= Mapped.max_outputs)
        m.Mapped.clbs)

(* ------------------------------------------------------------------ *)
(* Hypergraph bridge                                                  *)
(* ------------------------------------------------------------------ *)

let test_to_hypergraph () =
  let c = Generator.alu ~bits:4 () in
  let m = map_ok c in
  let h = Mapper.to_hypergraph m in
  checkb "valid hypergraph" true (Result.is_ok (Hypergraph.validate h));
  checki "one cell per CLB" (Array.length m.Mapped.clbs) (Hypergraph.num_cells h);
  checki "area = CLB count" (Array.length m.Mapped.clbs) (Hypergraph.total_area h);
  (* Pads are external. *)
  Array.iter
    (fun n -> checkb "PI external" true h.Hypergraph.net_external.(n))
    m.Mapped.pi_nets;
  Array.iter
    (fun n -> checkb "PO external" true h.Hypergraph.net_external.(n))
    m.Mapped.po_nets

let test_stats_plausibility () =
  let c = Generator.multiplier ~bits:8 () in
  let m = map_ok c in
  let s = Mapped.stats m in
  let src = Stats.compute c in
  checkb "mapping compresses gates into CLBs" true
    (s.Mapped.clbs < src.Stats.num_gates);
  checki "IOBs = PI + PO" (src.Stats.num_inputs + src.Stats.num_outputs)
    s.Mapped.iobs

(* ------------------------------------------------------------------ *)
(* Timing                                                             *)
(* ------------------------------------------------------------------ *)

let no_crossing _ = false

let test_timing_single_lut () =
  (* PI -> one CLB -> PO: wire + LUT + wire. *)
  let b = Circuit.Builder.create () in
  let a = Circuit.Builder.input b "a" in
  let bb = Circuit.Builder.input b "b" in
  let z = Circuit.Builder.gate b ~name:"z" Gate.And [ a; bb ] in
  Circuit.Builder.mark_output b z;
  let m = Mapper.map (Circuit.Builder.finish b) in
  let r = Timing.analyze ~crossing:no_crossing m in
  Alcotest.check (Alcotest.float 1e-9) "0.2 + 1.0 + 0.2"
    1.4 r.Timing.critical_delay;
  checki "no crossings" 0 r.Timing.critical_crossings;
  checki "path has two nets" 2 (List.length r.Timing.critical_path)

let test_timing_chain_depth () =
  (* A chain of XORs deep enough to span several LUT levels. *)
  let b = Circuit.Builder.create () in
  let x0 = Circuit.Builder.input b "x0" in
  let acc = ref x0 in
  for i = 1 to 12 do
    let xi = Circuit.Builder.input b (Printf.sprintf "x%d" i) in
    acc := Circuit.Builder.gate b Gate.Xor [ !acc; xi ]
  done;
  Circuit.Builder.mark_output b !acc;
  let m = Mapper.map (Circuit.Builder.finish b) in
  let r = Timing.analyze ~crossing:no_crossing m in
  (* 12 XOR2s fit in ceil(12/3) = 4+ LUT levels; at least 3 CLB hops. *)
  checkb "multi-level" true (r.Timing.critical_delay >= 3.0);
  (* Arrival times are monotone along the reported path. *)
  let rec monotone = function
    | a :: (b :: _ as rest) ->
        checkb "arrival increases" true
          (r.Timing.arrival.(a) <= r.Timing.arrival.(b));
        monotone rest
    | _ -> ()
  in
  monotone r.Timing.critical_path

let test_timing_crossing_penalty () =
  let c = Netlist.Generator.ripple_adder ~bits:8 () in
  let m = Mapper.map c in
  let local = Timing.analyze ~crossing:no_crossing m in
  let board = Timing.analyze ~crossing:(fun _ -> true) m in
  checkb "crossing nets slow the path" true
    (board.Timing.critical_delay > local.Timing.critical_delay);
  checkb "crossings counted" true (board.Timing.critical_crossings > 0)

let test_timing_registered_endpoint () =
  (* Logic that only feeds a flip-flop still defines the critical path. *)
  let b = Circuit.Builder.create () in
  let a = Circuit.Builder.input b "a" in
  let n1 = Circuit.Builder.gate b Gate.Not [ a ] in
  let q = Circuit.Builder.dff_placeholder b "q" in
  (* Deep-ish cone into the FF, shallow path to the PO. *)
  let n2 = Circuit.Builder.gate b Gate.Not [ n1 ] in
  let n3 = Circuit.Builder.gate b Gate.Xor [ n2; q ] in
  Circuit.Builder.connect_dff b q n3;
  Circuit.Builder.mark_output b q;
  let m = Mapper.map (Circuit.Builder.finish b) in
  let r = Timing.analyze ~crossing:no_crossing m in
  checkb "nonzero delay through FF cone" true (r.Timing.critical_delay > 0.0)

let test_timing_custom_model () =
  let c = Netlist.Generator.ripple_adder ~bits:4 () in
  let m = Mapper.map c in
  let model =
    { Timing.clb_delay = 2.0; local_net_delay = 0.0; board_net_delay = 0.0 }
  in
  let r = Timing.analyze ~model ~crossing:no_crossing m in
  (* With zero wire delay the critical delay is 2 x (LUT levels). *)
  checkb "integral multiple of 2" true
    (Float.rem r.Timing.critical_delay 2.0 < 1e-9);
  checkb "positive" true (r.Timing.critical_delay > 0.0)

let qc t = QCheck_alcotest.to_alcotest t

let () =
  Alcotest.run "techmap"
    [
      ( "decompose",
        [
          Alcotest.test_case "reduces fanin" `Quick test_decompose_reduces_fanin;
          Alcotest.test_case "wide inverted gates" `Quick test_decompose_wide_gates;
          Alcotest.test_case "preserves flip-flops" `Quick
            test_decompose_preserves_dffs;
          Alcotest.test_case "name collision safe" `Quick
            test_decompose_name_collision_safe;
          qc qcheck_decompose_equivalence;
        ] );
      ( "cover",
        [
          Alcotest.test_case "basic covering" `Quick test_cover_basic;
          Alcotest.test_case "rejects wide gates" `Quick test_cover_rejects_wide;
          Alcotest.test_case "truth tables" `Quick test_cover_lut_tables;
          Alcotest.test_case "dead logic vanishes" `Quick
            test_cover_dead_logic_vanishes;
        ] );
      ( "mapper",
        [
          Alcotest.test_case "c17" `Quick test_map_c17;
          Alcotest.test_case "structural generators" `Quick
            test_map_structural_generators;
          Alcotest.test_case "sequential circuits" `Quick test_map_sequential;
          Alcotest.test_case "multi-output cells appear" `Quick
            test_map_produces_multi_output_cells;
          Alcotest.test_case "pairing ablation" `Quick test_map_no_pairing_option;
          Alcotest.test_case "pass-through FF" `Quick test_map_pass_through_ff;
          Alcotest.test_case "FF fusion" `Quick test_map_ff_fusion;
          Alcotest.test_case "shared D not fused" `Quick test_map_shared_d_not_fused;
          Alcotest.test_case "PO driver not fused" `Quick
            test_map_po_driver_not_fused;
          qc qcheck_map_equivalence;
          qc qcheck_map_legality;
        ] );
      ( "timing",
        [
          Alcotest.test_case "single LUT" `Quick test_timing_single_lut;
          Alcotest.test_case "chain depth" `Quick test_timing_chain_depth;
          Alcotest.test_case "crossing penalty" `Quick test_timing_crossing_penalty;
          Alcotest.test_case "registered endpoint" `Quick
            test_timing_registered_endpoint;
          Alcotest.test_case "custom model" `Quick test_timing_custom_model;
        ] );
      ( "hypergraph bridge",
        [
          Alcotest.test_case "to_hypergraph" `Quick test_to_hypergraph;
          Alcotest.test_case "stats plausibility" `Quick test_stats_plausibility;
        ] );
    ]
