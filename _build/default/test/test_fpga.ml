(* Tests for the device library and the paper's cost model (eq. 1, eq. 2). *)

let checki = Alcotest.check Alcotest.int
let checkb = Alcotest.check Alcotest.bool
let checkf = Alcotest.check (Alcotest.float 1e-9)

open Fpga

let sample = Device.make ~name:"D" ~capacity:100 ~terminals:50 ~price:120.0
    ~util_low:0.5 ~util_high:0.9 ()

let test_device_bounds () =
  checki "min_clbs" 50 (Device.min_clbs sample);
  checki "max_clbs" 90 (Device.max_clbs sample);
  checkf "price per clb" 1.2 (Device.price_per_clb sample);
  checkf "clb util" 0.75 (Device.clb_utilization sample ~clbs:75);
  checkf "iob util" 0.5 (Device.iob_utilization sample ~iobs:25)

let test_device_fits () =
  checkb "in window" true (Device.fits sample ~clbs:70 ~iobs:30);
  checkb "below low" false (Device.fits sample ~clbs:40 ~iobs:30);
  checkb "below low relaxed" true (Device.fits ~relax_low:true sample ~clbs:40 ~iobs:30);
  checkb "above high" false (Device.fits sample ~clbs:95 ~iobs:30);
  checkb "too many terminals" false (Device.fits sample ~clbs:70 ~iobs:51);
  checkb "zero clbs never fits" false (Device.fits ~relax_low:true sample ~clbs:0 ~iobs:0)

let test_device_rejects_bad () =
  let reject f =
    match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.fail "expected rejection"
  in
  reject (fun () -> Device.make ~name:"x" ~capacity:0 ~terminals:1 ~price:1.0 ());
  reject (fun () -> Device.make ~name:"x" ~capacity:1 ~terminals:0 ~price:1.0 ());
  reject (fun () -> Device.make ~name:"x" ~capacity:1 ~terminals:1 ~price:0.0 ());
  reject (fun () ->
      Device.make ~name:"x" ~capacity:1 ~terminals:1 ~price:1.0 ~util_low:0.9
        ~util_high:0.5 ())

let test_xc3000_table1 () =
  (* The real XC3000 capacities and terminal counts of Table I. *)
  let expect = [ ("XC3020", 64, 64); ("XC3030", 100, 80); ("XC3042", 144, 96);
                 ("XC3064", 224, 120); ("XC3090", 320, 144) ] in
  List.iter
    (fun (name, cap, term) ->
      match Library.find Library.xc3000 name with
      | None -> Alcotest.fail ("missing device " ^ name)
      | Some d ->
          checki (name ^ " capacity") cap d.Device.capacity;
          checki (name ^ " terminals") term d.Device.terminals)
    expect;
  (* The reconstructed price curve must make bigger devices cheaper per
     CLB (the economics the paper's cost/interconnect tension relies on). *)
  let rec monotone = function
    | a :: (b :: _ as rest) ->
        checkb "price/CLB decreasing with size" true
          (Device.price_per_clb b < Device.price_per_clb a);
        monotone rest
    | _ -> ()
  in
  monotone (Library.devices Library.xc3000)

let test_library_lookup () =
  checkb "find missing" true (Library.find Library.xc3000 "XC9999" = None);
  let l = Library.largest Library.xc3000 in
  Alcotest.check Alcotest.string "largest" "XC3090" l.Device.name;
  (match Library.by_efficiency Library.xc3000 with
  | first :: _ -> Alcotest.check Alcotest.string "most efficient" "XC3090" first.Device.name
  | [] -> Alcotest.fail "empty library");
  (match Library.smallest_fitting Library.xc3000 ~clbs:60 ~iobs:60 with
  | Some d -> Alcotest.check Alcotest.string "smallest fitting" "XC3020" d.Device.name
  | None -> Alcotest.fail "expected a fit");
  (* 60 CLBs but 70 terminals: XC3020 runs out of IOBs. *)
  (match Library.smallest_fitting ~relax_low:true Library.xc3000 ~clbs:60 ~iobs:70 with
  | Some d -> Alcotest.check Alcotest.string "terminal driven" "XC3030" d.Device.name
  | None -> Alcotest.fail "expected a fit");
  (match Library.smallest_fitting Library.xc3000 ~clbs:1000 ~iobs:10 with
  | Some _ -> Alcotest.fail "nothing should fit 1000 CLBs"
  | None -> ())

let test_library_rejects_bad () =
  (match Library.make [] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "empty library accepted");
  match
    Library.make [ sample; Device.make ~name:"D" ~capacity:10 ~terminals:10 ~price:1.0 () ]
  with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "duplicate names accepted"

let test_cost_eq1_eq2 () =
  let d1 = Device.make ~name:"A" ~capacity:100 ~terminals:50 ~price:100.0 () in
  let d2 = Device.make ~name:"B" ~capacity:200 ~terminals:80 ~price:150.0 () in
  let placements =
    [
      { Cost.device = d1; clbs = 80; iobs = 25 };
      { Cost.device = d1; clbs = 60; iobs = 40 };
      { Cost.device = d2; clbs = 150; iobs = 65 };
    ]
  in
  let s = Cost.summarize placements in
  checki "k" 3 s.Cost.num_partitions;
  checkf "eq. 1 total cost" 350.0 s.Cost.total_cost;
  (* eq. 2: (25+40+65) / (50+50+80) = 130/180 *)
  checkf "eq. 2 avg IOB util" (130.0 /. 180.0) s.Cost.avg_iob_utilization;
  checkf "avg CLB util" (290.0 /. 400.0) s.Cost.avg_clb_utilization;
  Alcotest.check
    Alcotest.(list (pair string int))
    "device counts" [ ("A", 2); ("B", 1) ] s.Cost.device_counts

let test_cost_feasibility () =
  let p_ok = { Cost.device = sample; clbs = 70; iobs = 30 } in
  let p_low = { Cost.device = sample; clbs = 30; iobs = 30 } in
  checkb "feasible" true (Cost.placement_feasible p_ok);
  checkb "below window" false (Cost.placement_feasible p_low);
  checkb "all feasible" true (Cost.all_feasible [ p_ok; p_ok ]);
  checkb "relax last only" true
    (Cost.all_feasible ~relax_low_last:true [ p_ok; p_low ]);
  checkb "relax last does not cover first" false
    (Cost.all_feasible ~relax_low_last:true [ p_low; p_ok ])

let test_xc4000 () =
  let l = Library.xc4000 in
  checki "five members" 5 (List.length (Library.devices l));
  (match Library.largest l with
  | d ->
      Alcotest.check Alcotest.string "largest" "XC4013" d.Device.name;
      checki "capacity" 576 d.Device.capacity);
  (* Same economics as the paper's family: bigger devices cheaper per CLB. *)
  let rec monotone = function
    | a :: (b :: _ as rest) ->
        checkb "price/CLB decreasing" true
          (Device.price_per_clb b < Device.price_per_clb a);
        monotone rest
    | _ -> ()
  in
  monotone (Library.devices l)

let test_min_feasible_cost () =
  (* 400 CLBs at the XC3090 rate (435/320) = 543.75; never below the
     cheapest single device. *)
  checkf "fractional bound" 543.75 (Library.min_feasible_cost Library.xc3000 ~clbs:400);
  checkf "floor at cheapest device" 100.0 (Library.min_feasible_cost Library.xc3000 ~clbs:1)

let () =
  Alcotest.run "fpga"
    [
      ( "device",
        [
          Alcotest.test_case "utilization window" `Quick test_device_bounds;
          Alcotest.test_case "fits" `Quick test_device_fits;
          Alcotest.test_case "rejects malformed" `Quick test_device_rejects_bad;
        ] );
      ( "library",
        [
          Alcotest.test_case "Table I data" `Quick test_xc3000_table1;
          Alcotest.test_case "lookup and ordering" `Quick test_library_lookup;
          Alcotest.test_case "rejects malformed" `Quick test_library_rejects_bad;
          Alcotest.test_case "xc4000 family" `Quick test_xc4000;
          Alcotest.test_case "fractional lower bound" `Quick test_min_feasible_cost;
        ] );
      ( "cost",
        [
          Alcotest.test_case "eq. 1 and eq. 2" `Quick test_cost_eq1_eq2;
          Alcotest.test_case "feasibility" `Quick test_cost_feasibility;
        ] );
    ]
