lib/techmap/timing.mli: Format Mapped
