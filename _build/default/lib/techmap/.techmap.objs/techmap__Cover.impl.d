lib/techmap/cover.ml: Array Circuit Gate Hashtbl List Netlist Vec
