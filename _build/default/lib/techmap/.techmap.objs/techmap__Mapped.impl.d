lib/techmap/mapped.ml: Array Bitvec Circuit Format Hashtbl List Netlist Printf Rng Simulate Vec
