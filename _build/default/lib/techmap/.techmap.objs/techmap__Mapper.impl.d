lib/techmap/mapper.ml: Array Cover Decompose Hypergraph List Mapped Pack
