lib/techmap/mapper.mli: Hypergraph Mapped Netlist
