lib/techmap/decompose.ml: Array Circuit Gate List Netlist Printf String
