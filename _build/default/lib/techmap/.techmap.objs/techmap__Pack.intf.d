lib/techmap/pack.mli: Cover Mapped Netlist
