lib/techmap/timing.ml: Array Format List Mapped String
