lib/techmap/mapped.mli: Bitvec Format Netlist
