lib/techmap/decompose.mli: Netlist
