lib/techmap/cover.mli: Netlist
