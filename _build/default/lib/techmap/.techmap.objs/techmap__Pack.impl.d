lib/techmap/pack.ml: Array Circuit Cover Fun Gate Hashtbl List Mapped Netlist String Vec
