(** Mapped netlists: circuits as arrays of XC3000 CLBs.

    A CLB has at most five distinct input nets and up to two outputs; each
    output is a lookup table over a subset of the CLB inputs, optionally
    registered through one of the CLB's two flip-flops. The per-output
    input subset is the output's {e adjacency vector} — the information the
    paper's functional replication consumes. *)

type output = {
  net : int;              (** the net this output drives *)
  table : int;            (** LUT truth table over [pins] *)
  pins : int array;       (** indices into the CLB's [inputs] *)
  registered : bool;      (** output goes through a flip-flop *)
}

type clb = {
  name : string;
  inputs : int array;     (** distinct input nets (<= 5) *)
  outputs : output array; (** 1 or 2 *)
}

type t = {
  clbs : clb array;
  num_nets : int;
  net_names : string array;
  pi_nets : int array;    (** nets driven by chip input pads *)
  po_nets : int array;    (** nets observed at chip output pads *)
  name : string;
}

val support_mask : clb -> int -> Bitvec.t
(** [support_mask clb o] — adjacency vector of output [o] as a bit mask
    over the CLB's input pins. *)

val max_inputs : int
(** 5 — distinct input nets per XC3000 CLB. *)

val max_outputs : int
(** 2 — outputs (and flip-flops) per XC3000 CLB. *)

val validate : t -> (unit, string) result
(** CLB legality (pin/output/FF limits), single driver per net, every net
    driven (by a CLB or an input pad), combinational acyclicity. *)

(** {1 Statistics (the paper's Table II columns)} *)

type stats = {
  clbs : int;
  iobs : int;    (** chip pads: distinct PI nets + PO pads *)
  dffs : int;    (** registered CLB outputs *)
  nets : int;
  pins : int;    (** CLB input pins + output pins + chip pads *)
}

val stats : t -> stats
val pp_stats : Format.formatter -> stats -> unit

(** {1 Simulation} *)

type state

val initial_state : t -> state
val step : t -> state -> bool array -> bool array * state
(** One clock cycle: primary-output values before the edge, then the
    post-edge state. Input values follow [pi_nets] order. *)

val run : t -> bool array array -> bool array array

val comb_plan : t -> (int * int) array option
(** Dependency order over the combinational (CLB, output) pairs —
    registered outputs and pads are sources. [None] on a combinational
    cycle. Exposed for static analyses (e.g. {!Timing}). *)

val equivalent : ?vectors:int -> ?seed:int -> Netlist.Circuit.t -> t -> bool
(** Compare against a source circuit on random stimulus: same
    primary-input count and order (by name), same outputs each cycle.
    Flip-flops power up at 0 on both sides. *)
