(** 4-input LUT covering.

    Covers a decomposed circuit (gates of fanin <= 2) with lookup tables of
    at most [k] inputs, using greedy maximal fanout-free cone packing: a
    gate is absorbed into its reader's cone when all of its fanouts lie
    inside the cone and the cone support stays within [k]. No logic is
    duplicated; unreferenced (dead) logic disappears. *)

type lut = {
  root : int;            (** node id in the decomposed circuit *)
  support : int array;   (** source node ids the table reads, in pin order;
                             each is a primary input, flip-flop, constant
                             node, or another LUT's root *)
  table : int;           (** truth table: bit [sum_i v_i 2^i] = output *)
  cone_size : int;       (** gates folded into this LUT *)
}

val eval_lut : lut -> bool array -> bool
(** Evaluate a table on pin values (in [support] order). *)

type cover = {
  luts : lut array;
  lut_of_root : int array;  (** node id -> index into [luts], or -1 *)
}

val run : ?k:int -> Netlist.Circuit.t -> cover
(** [k] defaults to 4 (XC3000). Raises [Invalid_argument] if the circuit
    has a combinational gate with more than [k] fanins (decompose first) —
    such a gate could not be covered. *)
