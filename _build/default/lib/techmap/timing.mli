(** Partition-aware static timing analysis of mapped netlists.

    A simple but standard delay model: every CLB lookup adds [clb_delay];
    every net adds [local_net_delay] inside a device or [board_net_delay]
    when it crosses between devices (which net crosses is the caller's
    predicate, typically derived from a k-way partition). Paths start at
    chip input pads and flip-flop outputs and end at chip output pads and
    flip-flop data inputs.

    This is an extension beyond the paper's tables: the paper motivates
    partitioning quality by performance, and this module quantifies it —
    inter-device hops dominate path delay, so cuts and IOB counts translate
    directly into critical-path estimates. *)

type delay_model = {
  clb_delay : float;
  local_net_delay : float;
  board_net_delay : float;
}

val default_model : delay_model
(** 1.0 / 0.2 / 8.0 — board-level nets an order of magnitude slower than
    intra-device routing, the regime of the paper's era. *)

type report = {
  critical_delay : float;
  critical_crossings : int;
      (** device-boundary hops along one critical path *)
  critical_path : int list;
      (** the nets along that path, source to endpoint *)
  arrival : float array;  (** settle time per net id *)
}

val analyze :
  ?model:delay_model -> crossing:(int -> bool) -> Mapped.t -> report
(** Raises [Invalid_argument] on a combinational cycle. *)

val pp_report : Mapped.t -> Format.formatter -> report -> unit
