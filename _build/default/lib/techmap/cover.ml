open Netlist

type lut = {
  root : int;
  support : int array;
  table : int;
  cone_size : int;
}

let eval_lut lut pins =
  let idx = ref 0 in
  Array.iteri (fun i v -> if v then idx := !idx lor (1 lsl i)) pins;
  lut.table land (1 lsl !idx) <> 0

type cover = {
  luts : lut array;
  lut_of_root : int array;
}

let is_source c i =
  match (Circuit.node c i).Circuit.kind with
  | Gate.Input | Gate.Dff | Gate.Const0 | Gate.Const1 -> true
  | _ -> false

(* Truth table of the cone rooted at [root] with the given support, by
   exhaustive evaluation. [in_cone] marks cone members. *)
let cone_table c ~root ~support ~in_cone =
  let topo_pos = ref [] in
  (* Gather cone nodes in topological order by DFS from the root. *)
  let visited = Hashtbl.create 16 in
  let rec visit i =
    if not (Hashtbl.mem visited i) then begin
      Hashtbl.add visited i ();
      if Hashtbl.mem in_cone i then begin
        Array.iter visit (Circuit.node c i).Circuit.fanins;
        topo_pos := i :: !topo_pos
      end
    end
  in
  visit root;
  let cone_order = List.rev !topo_pos in
  let n_sup = Array.length support in
  let values = Hashtbl.create 16 in
  let table = ref 0 in
  for assignment = 0 to (1 lsl n_sup) - 1 do
    Hashtbl.reset values;
    Array.iteri
      (fun pin node ->
        Hashtbl.replace values node (assignment land (1 lsl pin) <> 0))
      support;
    (* Constants inside the support are still sources; give them their
       fixed value (overriding the assignment makes those table entries
       don't-cares, which is harmless). *)
    List.iter
      (fun i ->
        let nd = Circuit.node c i in
        let ins =
          Array.map
            (fun f ->
              match Hashtbl.find_opt values f with
              | Some v -> v
              | None -> (
                  match (Circuit.node c f).Circuit.kind with
                  | Gate.Const0 -> false
                  | Gate.Const1 -> true
                  | _ -> assert false))
            nd.Circuit.fanins
        in
        Hashtbl.replace values i (Gate.eval nd.Circuit.kind ins))
      cone_order;
    if Hashtbl.find values root then table := !table lor (1 lsl assignment)
  done;
  !table

let run ?(k = 4) c =
  let num = Circuit.num_nodes c in
  for i = 0 to num - 1 do
    let nd = Circuit.node c i in
    if
      Gate.is_combinational nd.Circuit.kind
      && Array.length nd.Circuit.fanins > k
    then invalid_arg "Cover.run: gate fanin exceeds k (run Decompose first)"
  done;
  (* Nodes that must remain visible as signals: primary-output drivers and
     flip-flop D drivers. *)
  let must_root = Array.make num false in
  Array.iter (fun o -> if not (is_source c o) then must_root.(o) <- true)
    c.Circuit.outputs;
  for i = 0 to num - 1 do
    let nd = Circuit.node c i in
    if Gate.equal nd.Circuit.kind Gate.Dff then begin
      let d = nd.Circuit.fanins.(0) in
      if not (is_source c d) then must_root.(d) <- true
    end
  done;
  let referenced = Array.copy must_root in
  let order = Circuit.topological_order c in
  let luts = Vec.create () in
  let lut_of_root = Array.make num (-1) in
  (* Reverse topological order: a root's support marks deeper nodes
     referenced before they are themselves considered. *)
  for idx = Array.length order - 1 downto 0 do
    let r = order.(idx) in
    if referenced.(r) && not (is_source c r) then begin
      (* Grow the cone greedily. *)
      let in_cone = Hashtbl.create 16 in
      Hashtbl.add in_cone r ();
      let support = Hashtbl.create 8 in
      let add_support f = Hashtbl.replace support f () in
      Array.iter add_support (Circuit.node c r).Circuit.fanins;
      let absorbable f =
        (not (is_source c f))
        && (not must_root.(f))
        && Array.for_all
             (fun reader -> Hashtbl.mem in_cone reader)
             c.Circuit.fanouts.(f)
      in
      let try_absorb () =
        (* Candidate minimising the resulting support size. *)
        let best = ref None in
        Hashtbl.iter
          (fun f () ->
            if absorbable f then begin
              let gain_support =
                Array.fold_left
                  (fun acc g ->
                    if Hashtbl.mem support g || Hashtbl.mem in_cone g then acc
                    else acc + 1)
                  0
                  (Circuit.node c f).Circuit.fanins
              in
              let new_size = Hashtbl.length support - 1 + gain_support in
              if new_size <= k then
                match !best with
                | Some (_, s) when s <= new_size -> ()
                | _ -> best := Some (f, new_size)
            end)
          support;
        match !best with
        | None -> false
        | Some (f, _) ->
            Hashtbl.remove support f;
            Hashtbl.add in_cone f ();
            Array.iter
              (fun g -> if not (Hashtbl.mem in_cone g) then add_support g)
              (Circuit.node c f).Circuit.fanins;
            true
      in
      while try_absorb () do
        ()
      done;
      (* Split support into constants (folded) and real pins. *)
      let pins = ref [] in
      Hashtbl.iter
        (fun f () ->
          match (Circuit.node c f).Circuit.kind with
          | Gate.Const0 | Gate.Const1 -> Hashtbl.add in_cone f ()
          | _ -> pins := f :: !pins)
        support;
      let support_arr = Array.of_list (List.sort compare !pins) in
      assert (Array.length support_arr <= k);
      let table = cone_table c ~root:r ~support:support_arr ~in_cone in
      let lut =
        {
          root = r;
          support = support_arr;
          table;
          cone_size = Hashtbl.length in_cone;
        }
      in
      lut_of_root.(r) <- Vec.push luts lut;
      Array.iter (fun f -> referenced.(f) <- true) support_arr
    end
  done;
  { luts = Vec.to_array luts; lut_of_root }
