(** Gate decomposition.

    Rewrites a circuit so that every combinational gate has at most two
    fanins (wide AND/OR/XOR and their inverted forms become balanced binary
    trees with the inversion folded into the tree root). This is the
    canonical front end of LUT covering: the covering step then only merges
    nodes, never needs to split them. *)

val run : Netlist.Circuit.t -> Netlist.Circuit.t
(** Functionally equivalent circuit with [max_fanin <= 2]. Primary
    input/output names are preserved; flip-flops are preserved 1:1. *)
