type delay_model = {
  clb_delay : float;
  local_net_delay : float;
  board_net_delay : float;
}

let default_model =
  { clb_delay = 1.0; local_net_delay = 0.2; board_net_delay = 8.0 }

type report = {
  critical_delay : float;
  critical_crossings : int;
  critical_path : int list;
  arrival : float array;
}

let analyze ?(model = default_model) ~crossing (m : Mapped.t) =
  let net_delay n =
    if crossing n then model.board_net_delay else model.local_net_delay
  in
  let arrival = Array.make m.Mapped.num_nets 0.0 in
  let pred = Array.make m.Mapped.num_nets (-1) in
  (* worst predecessor net *)
  (* Evaluate combinational outputs in dependency order. *)
  let plan =
    match Mapped.comb_plan m with
    | Some plan -> plan
    | None -> invalid_arg "Timing.analyze: combinational cycle"
  in
  let input_arrival clb (out : Mapped.output) =
    (* Worst (arrival + wire delay) over the pins this output reads. *)
    Array.fold_left
      (fun (best, best_net) pin ->
        let n = clb.Mapped.inputs.(pin) in
        let t = arrival.(n) +. net_delay n in
        if t > best then (t, n) else (best, best_net))
      (0.0, -1) out.Mapped.pins
  in
  Array.iter
    (fun (ci, oi) ->
      let clb = m.Mapped.clbs.(ci) in
      let out = clb.Mapped.outputs.(oi) in
      let t, from = input_arrival clb out in
      arrival.(out.Mapped.net) <- t +. model.clb_delay;
      pred.(out.Mapped.net) <- from)
    plan;
  (* Path endpoints: chip output pads, and flip-flop data lookups (the
     capture happens inside the CLB, after the input wire and the LUT). *)
  let best = ref (0.0, -1, -1) in
  (* delay, endpoint net, pred net *)
  let consider t endpoint from =
    let b, _, _ = !best in
    if t > b then best := (t, endpoint, from)
  in
  Array.iter
    (fun n -> consider (arrival.(n) +. net_delay n) n pred.(n))
    m.Mapped.po_nets;
  Array.iter
    (fun clb ->
      Array.iter
        (fun (out : Mapped.output) ->
          if out.Mapped.registered then begin
            let t, from = input_arrival clb out in
            consider (t +. model.clb_delay) out.Mapped.net from
          end)
        clb.Mapped.outputs)
    m.Mapped.clbs;
  let delay, endpoint, from = !best in
  (* Reconstruct one critical path through the predecessor chain. *)
  let rec walk acc n = if n < 0 then acc else walk (n :: acc) pred.(n) in
  let path =
    if endpoint < 0 then []
    else
      let upstream = if from >= 0 then walk [ from ] pred.(from) else [] in
      upstream @ [ endpoint ]
  in
  let crossings = List.length (List.filter crossing path) in
  {
    critical_delay = delay;
    critical_crossings = crossings;
    critical_path = path;
    arrival;
  }

let pp_report (m : Mapped.t) fmt r =
  Format.fprintf fmt "critical delay %.1f with %d device crossings: %s"
    r.critical_delay r.critical_crossings
    (r.critical_path
    |> List.map (fun n -> m.Mapped.net_names.(n))
    |> String.concat " -> ")
