open Netlist

module B = Circuit.Builder

(* Balanced binary tree over [ids] using [mk] to create nodes; the final
   combining step uses [root_kind] so that NAND(a,b,c,d) becomes
   NAND(AND(a,b), AND(c,d)), folding the inversion into the root. *)
let rec build_tree mk kind root_kind ids =
  match ids with
  | [] -> invalid_arg "Decompose.build_tree: empty"
  | [ x ] -> x
  | [ x; y ] -> mk root_kind [ x; y ]
  | _ ->
      let n = List.length ids in
      let rec split k acc = function
        | rest when k = 0 -> (List.rev acc, rest)
        | x :: rest -> split (k - 1) (x :: acc) rest
        | [] -> assert false
      in
      let left, right = split (n / 2) [] ids in
      let l = build_tree mk kind kind left in
      let r = build_tree mk kind kind right in
      mk root_kind [ l; r ]

(* The positive-tree kind corresponding to each wide gate. *)
let tree_kinds = function
  | Gate.And -> Some Gate.And
  | Gate.Nand -> Some Gate.And
  | Gate.Or -> Some Gate.Or
  | Gate.Nor -> Some Gate.Or
  | Gate.Xor -> Some Gate.Xor
  | Gate.Xnor -> Some Gate.Xor
  | Gate.Input | Gate.Not | Gate.Buf | Gate.Dff | Gate.Const0 | Gate.Const1 ->
      None

let run c =
  let b = B.create ~name:c.Circuit.name () in
  let num = Circuit.num_nodes c in
  (* A name prefix no source signal starts with, so invented tree-node
     names can never collide with source names emitted later. *)
  let prefix =
    let rec search p =
      let clash = ref false in
      for i = 0 to num - 1 do
        if String.starts_with ~prefix:p (Circuit.node c i).Circuit.name then
          clash := true
      done;
      if !clash then search ("$" ^ p) else p
    in
    search "$d"
  in
  let counter = ref 0 in
  let mk kind fanins =
    let name = Printf.sprintf "%s%d" prefix !counter in
    incr counter;
    B.gate b ~name kind fanins
  in
  let new_id = Array.make num (-1) in
  (* Inputs and flip-flop placeholders first so any gate can read them. *)
  Array.iter
    (fun i -> new_id.(i) <- B.input b (Circuit.node c i).Circuit.name)
    c.Circuit.inputs;
  for i = 0 to num - 1 do
    let nd = Circuit.node c i in
    if Gate.equal nd.Circuit.kind Gate.Dff then
      new_id.(i) <- B.dff_placeholder b nd.Circuit.name
  done;
  let order = Circuit.topological_order c in
  Array.iter
    (fun i ->
      let nd = Circuit.node c i in
      match nd.Circuit.kind with
      | Gate.Input | Gate.Dff -> ()
      | kind ->
          let fanins =
            Array.to_list (Array.map (fun f -> new_id.(f)) nd.Circuit.fanins)
          in
          let id =
            match (tree_kinds kind, fanins) with
            | _, [ x ] ->
                (* Degenerate 1-input instance of a wide gate, or NOT/BUF. *)
                let k =
                  match kind with
                  | Gate.Nand | Gate.Nor | Gate.Xnor | Gate.Not -> Gate.Not
                  | Gate.And | Gate.Or | Gate.Xor | Gate.Buf -> Gate.Buf
                  | Gate.Input | Gate.Dff | Gate.Const0 | Gate.Const1 ->
                      assert false
                in
                B.gate b ~name:nd.Circuit.name k [ x ]
            | Some _, [ x; y ] -> B.gate b ~name:nd.Circuit.name kind [ x; y ]
            | Some tree_kind, ids ->
                (* Inner tree nodes are anonymous; the root keeps the
                   original signal name (readers reference it). *)
                let n = List.length ids in
                let rec split k acc = function
                  | rest when k = 0 -> (List.rev acc, rest)
                  | x :: rest -> split (k - 1) (x :: acc) rest
                  | [] -> assert false
                in
                let left, right = split (n / 2) [] ids in
                let l = build_tree mk tree_kind tree_kind left in
                let r = build_tree mk tree_kind tree_kind right in
                B.gate b ~name:nd.Circuit.name kind [ l; r ]
            | None, ids -> B.gate b ~name:nd.Circuit.name kind ids
          in
          new_id.(i) <- id)
    order;
  (* Wire flip-flops and outputs. *)
  for i = 0 to num - 1 do
    let nd = Circuit.node c i in
    if Gate.equal nd.Circuit.kind Gate.Dff then
      B.connect_dff b new_id.(i) new_id.(nd.Circuit.fanins.(0))
  done;
  Array.iter (fun o -> B.mark_output b new_id.(o)) c.Circuit.outputs;
  B.finish b
