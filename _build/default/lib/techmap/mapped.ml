open Netlist

type output = {
  net : int;
  table : int;
  pins : int array;
  registered : bool;
}

type clb = {
  name : string;
  inputs : int array;
  outputs : output array;
}

type t = {
  clbs : clb array;
  num_nets : int;
  net_names : string array;
  pi_nets : int array;
  po_nets : int array;
  name : string;
}

let support_mask clb o =
  Array.fold_left
    (fun acc pin -> Bitvec.add pin acc)
    Bitvec.empty clb.outputs.(o).pins

let max_inputs = 5
let max_outputs = 2

let eval_output clb o net_value =
  let out = clb.outputs.(o) in
  let idx = ref 0 in
  Array.iteri
    (fun i pin -> if net_value clb.inputs.(pin) then idx := !idx lor (1 lsl i))
    out.pins;
  out.table land (1 lsl !idx) <> 0

let validate t =
  let err fmt = Printf.ksprintf (fun s -> Error s) fmt in
  let driver = Array.make t.num_nets (-1) in
  let rec check_clbs i =
    if i >= Array.length t.clbs then Ok ()
    else begin
      let c = t.clbs.(i) in
      let n_in = Array.length c.inputs in
      let distinct arr =
        let l = Array.to_list arr in
        List.length (List.sort_uniq compare l) = List.length l
      in
      if n_in > max_inputs then err "CLB %s: %d inputs" c.name n_in
      else if not (distinct c.inputs) then err "CLB %s: duplicate input nets" c.name
      else if Array.length c.outputs = 0 || Array.length c.outputs > max_outputs
      then err "CLB %s: %d outputs" c.name (Array.length c.outputs)
      else if
        Array.exists
          (fun o -> Array.exists (fun p -> p < 0 || p >= n_in) o.pins)
          c.outputs
      then err "CLB %s: pin index out of range" c.name
      else if Array.exists (fun o -> not (distinct o.pins)) c.outputs then
        err "CLB %s: duplicate pins in one output" c.name
      else if
        n_in > 0
        &&
        let union =
          Array.to_list c.outputs
          |> List.mapi (fun o _ -> support_mask c o)
          |> List.fold_left Bitvec.union Bitvec.empty
        in
        not (Bitvec.equal union (Bitvec.full n_in))
      then err "CLB %s: unused input pin" c.name
      else begin
        let dup = ref None in
        Array.iter
          (fun o ->
            if o.net < 0 || o.net >= t.num_nets then dup := Some "net range"
            else if driver.(o.net) >= 0 then dup := Some "double driver"
            else driver.(o.net) <- i)
          c.outputs;
        match !dup with
        | Some msg -> err "CLB %s: %s" c.name msg
        | None -> check_clbs (i + 1)
      end
    end
  in
  match check_clbs 0 with
  | Error _ as e -> e
  | Ok () -> (
      let bad = ref None in
      Array.iter
        (fun n ->
          if driver.(n) >= 0 then bad := Some n else driver.(n) <- -2)
        t.pi_nets;
      match !bad with
      | Some n -> err "net %s driven by both a pad and a CLB" t.net_names.(n)
      | None ->
          let rec check_driven n =
            if n >= t.num_nets then Ok ()
            else if driver.(n) = -1 then err "net %s has no driver" t.net_names.(n)
            else check_driven (n + 1)
          in
          check_driven 0)

(* Topological order of combinational (clb, output) pairs; registered
   outputs and pads are sources. Returns None on a combinational cycle. *)
let comb_plan t =
  let pairs = Vec.create () in
  Array.iteri
    (fun ci c ->
      Array.iteri
        (fun oi o -> if not o.registered then ignore (Vec.push pairs (ci, oi)))
        c.outputs)
    t.clbs;
  let n = Vec.length pairs in
  let index = Hashtbl.create 64 in
  Vec.iteri (fun k (ci, oi) -> Hashtbl.add index (ci, oi) k) pairs;
  (* Net -> producing comb pair (if any). *)
  let producer = Array.make t.num_nets (-1) in
  Vec.iteri
    (fun k (ci, oi) -> producer.(t.clbs.(ci).outputs.(oi).net) <- k)
    pairs;
  let indeg = Array.make n 0 in
  let succs = Array.make n [] in
  Vec.iteri
    (fun k (ci, oi) ->
      let c = t.clbs.(ci) in
      Array.iter
        (fun pin ->
          let p = producer.(c.inputs.(pin)) in
          if p >= 0 then begin
            indeg.(k) <- indeg.(k) + 1;
            succs.(p) <- k :: succs.(p)
          end)
        c.outputs.(oi).pins)
    pairs;
  let order = Array.make n (-1) in
  let head = ref 0 and tail = ref 0 in
  for k = 0 to n - 1 do
    if indeg.(k) = 0 then begin
      order.(!tail) <- k;
      incr tail
    end
  done;
  while !head < !tail do
    let u = order.(!head) in
    incr head;
    List.iter
      (fun v ->
        indeg.(v) <- indeg.(v) - 1;
        if indeg.(v) = 0 then begin
          order.(!tail) <- v;
          incr tail
        end)
      succs.(u)
  done;
  if !tail <> n then None
  else Some (Array.map (fun k -> Vec.get pairs k) order)

type stats = {
  clbs : int;
  iobs : int;
  dffs : int;
  nets : int;
  pins : int;
}

let stats (t : t) =
  let dffs =
    Array.fold_left
      (fun acc c ->
        acc
        + Array.fold_left
            (fun a o -> if o.registered then a + 1 else a)
            0 c.outputs)
      0 t.clbs
  in
  let clb_pins =
    Array.fold_left
      (fun acc c -> acc + Array.length c.inputs + Array.length c.outputs)
      0 t.clbs
  in
  {
    clbs = Array.length t.clbs;
    iobs = Array.length t.pi_nets + Array.length t.po_nets;
    dffs;
    nets = t.num_nets;
    pins = clb_pins + Array.length t.pi_nets + Array.length t.po_nets;
  }

let pp_stats fmt s =
  Format.fprintf fmt "%d CLBs, %d IOBs, %d DFF, %d nets, %d pins" s.clbs
    s.iobs s.dffs s.nets s.pins

type state = bool array
(* Indexed by net id; meaningful at registered-output nets. *)

let initial_state t = Array.make t.num_nets false

let step_with_plan t plan st pi =
  if Array.length pi <> Array.length t.pi_nets then
    invalid_arg "Mapped.step: wrong input vector length";
  let value = Array.make t.num_nets false in
  Array.iteri (fun k n -> value.(n) <- pi.(k)) t.pi_nets;
  Array.iter
    (fun c ->
      Array.iter
        (fun o -> if o.registered then value.(o.net) <- st.(o.net))
        c.outputs)
    t.clbs;
  Array.iter
    (fun (ci, oi) ->
      let c = t.clbs.(ci) in
      value.(c.outputs.(oi).net) <- eval_output c oi (fun n -> value.(n)))
    plan;
  let outs = Array.map (fun n -> value.(n)) t.po_nets in
  let st' = Array.copy st in
  Array.iter
    (fun c ->
      Array.iteri
        (fun oi o ->
          if o.registered then
            (* The FF captures the LUT value computed from current nets. *)
            st'.(o.net) <- eval_output c oi (fun n -> value.(n)))
        c.outputs)
    t.clbs;
  (outs, st')

let plan_exn t =
  match comb_plan t with
  | Some plan -> plan
  | None -> invalid_arg "Mapped.step: combinational cycle"

let step t st pi = step_with_plan t (plan_exn t) st pi

let run t vectors =
  let plan = plan_exn t in
  let st = ref (initial_state t) in
  Array.map
    (fun pi ->
      let outs, st' = step_with_plan t plan !st pi in
      st := st';
      outs)
    vectors

let equivalent ?(vectors = 64) ?(seed = 2024) circuit t =
  Array.length circuit.Circuit.inputs = Array.length t.pi_nets
  && Array.length circuit.Circuit.outputs = Array.length t.po_nets
  &&
  let rng = Rng.create seed in
  let vecs = Simulate.random_vectors rng circuit vectors in
  let expect = Simulate.run circuit vecs in
  let got = run t vecs in
  expect = got
