module B = Circuit.Builder

(* A name prefix no signal of [c] starts with: invented nodes (materialised
   constants, for instance) can then never collide with source names. *)
let fresh_prefix c base =
  let num = Circuit.num_nodes c in
  let rec search p =
    let clash = ref false in
    for i = 0 to num - 1 do
      if String.starts_with ~prefix:p (Circuit.node c i).Circuit.name then
        clash := true
    done;
    if !clash then search ("$" ^ p) else p
  in
  search base

(* Replacement of an original node in the rebuilt circuit. *)
type repl =
  | Const of bool
  | Id of int  (* node id in the new builder *)

(* Shared rebuild machinery: walks the circuit in topological order, asks
   [simplify] what each combinational node becomes, and takes care of
   inputs, flip-flops, output marks and name preservation. [simplify]
   receives the original node and its fanin replacements; [Id] results it
   returns must be nodes it created through the builder, named after the
   original node when a node of the same role is emitted. *)
let rebuild c simplify =
  let b = B.create ~name:c.Circuit.name () in
  let num = Circuit.num_nodes c in
  let prefix = fresh_prefix c "$k" in
  let counter = ref 0 in
  let fresh_name () =
    let name = Printf.sprintf "%s%d" prefix !counter in
    incr counter;
    name
  in
  let repl = Array.make num (Const false) in
  Array.iter
    (fun i -> repl.(i) <- Id (B.input b (Circuit.node c i).Circuit.name))
    c.Circuit.inputs;
  for i = 0 to num - 1 do
    let nd = Circuit.node c i in
    if Gate.equal nd.Circuit.kind Gate.Dff then
      repl.(i) <- Id (B.dff_placeholder b nd.Circuit.name)
  done;
  let const_cache = Hashtbl.create 2 in
  let materialise_const v =
    match Hashtbl.find_opt const_cache v with
    | Some id -> id
    | None ->
        let kind = if v then Gate.Const1 else Gate.Const0 in
        let id = B.gate b ~name:(fresh_name ()) kind [] in
        Hashtbl.add const_cache v id;
        id
  in
  let as_id = function Const v -> materialise_const v | Id id -> id in
  let order = Circuit.topological_order c in
  Array.iter
    (fun i ->
      let nd = Circuit.node c i in
      match nd.Circuit.kind with
      | Gate.Input | Gate.Dff -> ()
      | _ ->
          let fanins = Array.map (fun f -> repl.(f)) nd.Circuit.fanins in
          repl.(i) <- simplify b nd fanins)
    order;
  (* Flip-flop data pins. *)
  for i = 0 to num - 1 do
    let nd = Circuit.node c i in
    if Gate.equal nd.Circuit.kind Gate.Dff then
      match repl.(i) with
      | Id q -> B.connect_dff b q (as_id repl.(nd.Circuit.fanins.(0)))
      | Const _ -> assert false
  done;
  (* Primary outputs keep their signal names: when a driver was simplified
     away (alias or constant), re-emit it under the original name. *)
  Array.iter
    (fun o ->
      let name = (Circuit.node c o).Circuit.name in
      let id =
        match repl.(o) with
        | Const v ->
            B.gate b ~name (if v then Gate.Const1 else Gate.Const0) []
        | Id id ->
            if String.equal (B.name_of b id) name then id
            else B.gate b ~name Gate.Buf [ id ]
      in
      B.mark_output b id)
    c.Circuit.outputs;
  B.finish b

(* ------------------------------------------------------------------ *)
(* Constant propagation                                               *)
(* ------------------------------------------------------------------ *)

let propagate_constants c =
  let simplify b (nd : Circuit.node) fanins =
    let name = nd.Circuit.name in
    let consts, ids =
      Array.fold_right
        (fun r (cs, ids) ->
          match r with Const v -> (v :: cs, ids) | Id id -> (cs, id :: ids))
        fanins ([], [])
    in
    let gate kind ids = Id (B.gate b ~name kind ids) in
    match nd.Circuit.kind with
    | Gate.Const0 -> Const false
    | Gate.Const1 -> Const true
    | Gate.Buf -> (
        match fanins.(0) with Const v -> Const v | Id id -> Id id)
    | Gate.Not -> (
        match fanins.(0) with
        | Const v -> Const (not v)
        | Id id -> gate Gate.Not [ id ])
    | Gate.And ->
        if List.exists not consts then Const false
        else begin
          match ids with
          | [] -> Const true
          | [ x ] -> Id x
          | _ -> gate Gate.And ids
        end
    | Gate.Nand ->
        if List.exists not consts then Const true
        else begin
          match ids with
          | [] -> Const false
          | [ x ] -> gate Gate.Not [ x ]
          | _ -> gate Gate.Nand ids
        end
    | Gate.Or ->
        if List.exists Fun.id consts then Const true
        else begin
          match ids with
          | [] -> Const false
          | [ x ] -> Id x
          | _ -> gate Gate.Or ids
        end
    | Gate.Nor ->
        if List.exists Fun.id consts then Const false
        else begin
          match ids with
          | [] -> Const true
          | [ x ] -> gate Gate.Not [ x ]
          | _ -> gate Gate.Nor ids
        end
    | Gate.Xor | Gate.Xnor ->
        let flip0 = Gate.equal nd.Circuit.kind Gate.Xnor in
        let flip =
          List.fold_left (fun acc v -> if v then not acc else acc) flip0 consts
        in
        begin
          match ids with
          | [] -> Const flip
          | [ x ] -> if flip then gate Gate.Not [ x ] else Id x
          | _ -> gate (if flip then Gate.Xnor else Gate.Xor) ids
        end
    | Gate.Input | Gate.Dff -> assert false
  in
  rebuild c simplify

(* ------------------------------------------------------------------ *)
(* Buffer / double-inverter collapsing                                *)
(* ------------------------------------------------------------------ *)

let collapse_buffers c =
  (* Track, per rebuilt node, which new node is its inverter source so
     NOT(NOT(x)) can alias x. *)
  let inverter_of = Hashtbl.create 64 in
  let simplify b (nd : Circuit.node) fanins =
    let name = nd.Circuit.name in
    match (nd.Circuit.kind, fanins) with
    | Gate.Buf, [| Id id |] -> Id id
    | Gate.Not, [| Id id |] -> (
        match Hashtbl.find_opt inverter_of id with
        | Some src -> Id src
        | None ->
            let g = B.gate b ~name Gate.Not [ id ] in
            Hashtbl.replace inverter_of g id;
            Id g)
    | kind, _ ->
        let ids =
          Array.to_list fanins
          |> List.map (function Id id -> id | Const _ -> assert false)
        in
        Id (B.gate b ~name kind ids)
  in
  rebuild c simplify

(* ------------------------------------------------------------------ *)
(* Structural hashing                                                 *)
(* ------------------------------------------------------------------ *)

let commutative = function
  | Gate.And | Gate.Nand | Gate.Or | Gate.Nor | Gate.Xor | Gate.Xnor -> true
  | Gate.Not | Gate.Buf | Gate.Input | Gate.Dff | Gate.Const0 | Gate.Const1 ->
      false

let strash c =
  let table = Hashtbl.create 256 in
  let simplify b (nd : Circuit.node) fanins =
    let ids =
      Array.to_list fanins
      |> List.map (function Id id -> id | Const _ -> assert false)
    in
    let key =
      ( nd.Circuit.kind,
        if commutative nd.Circuit.kind then List.sort compare ids else ids )
    in
    match Hashtbl.find_opt table key with
    | Some id -> Id id
    | None ->
        let id = B.gate b ~name:nd.Circuit.name nd.Circuit.kind ids in
        Hashtbl.add table key id;
        Id id
  in
  rebuild c simplify

(* ------------------------------------------------------------------ *)
(* Dead-logic sweep                                                   *)
(* ------------------------------------------------------------------ *)

let sweep c =
  let num = Circuit.num_nodes c in
  let live = Array.make num false in
  let rec mark i =
    if not live.(i) then begin
      live.(i) <- true;
      Array.iter mark (Circuit.node c i).Circuit.fanins
    end
  in
  Array.iter mark c.Circuit.outputs;
  (* Primary inputs always survive (the chip interface is part of the
     specification even when a pin is unused). *)
  let b = B.create ~name:c.Circuit.name () in
  let new_id = Array.make num (-1) in
  Array.iter
    (fun i -> new_id.(i) <- B.input b (Circuit.node c i).Circuit.name)
    c.Circuit.inputs;
  for i = 0 to num - 1 do
    let nd = Circuit.node c i in
    if live.(i) && Gate.equal nd.Circuit.kind Gate.Dff then
      new_id.(i) <- B.dff_placeholder b nd.Circuit.name
  done;
  let order = Circuit.topological_order c in
  Array.iter
    (fun i ->
      let nd = Circuit.node c i in
      match nd.Circuit.kind with
      | Gate.Input | Gate.Dff -> ()
      | kind ->
          if live.(i) then
            new_id.(i) <-
              B.gate b ~name:nd.Circuit.name kind
                (Array.to_list (Array.map (fun f -> new_id.(f)) nd.Circuit.fanins)))
    order;
  for i = 0 to num - 1 do
    let nd = Circuit.node c i in
    if live.(i) && Gate.equal nd.Circuit.kind Gate.Dff then
      B.connect_dff b new_id.(i) new_id.(nd.Circuit.fanins.(0))
  done;
  Array.iter (fun o -> B.mark_output b new_id.(o)) c.Circuit.outputs;
  B.finish b

(* ------------------------------------------------------------------ *)
(* Fixpoint                                                           *)
(* ------------------------------------------------------------------ *)

let optimize c =
  let step c = sweep (strash (collapse_buffers (propagate_constants c))) in
  let rec loop c n =
    let c' = step c in
    if n = 0 || Circuit.num_nodes c' = Circuit.num_nodes c then c'
    else loop c' (n - 1)
  in
  loop c 8
