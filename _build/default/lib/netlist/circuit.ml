type node = {
  id : int;
  name : string;
  kind : Gate.kind;
  fanins : int array;
}

type t = {
  nodes : node array;
  fanouts : int array array;
  inputs : int array;
  outputs : int array;
  name : string;
}

(* Shared by the builder and by [validate]. *)
let check_node ~num_nodes n =
  if not (Gate.arity_ok n.kind (Array.length n.fanins)) then
    Error (Printf.sprintf "node %s: kind %s cannot have %d fanins" n.name
             (Gate.to_string n.kind) (Array.length n.fanins))
  else if Array.exists (fun f -> f < 0 || f >= num_nodes) n.fanins then
    Error (Printf.sprintf "node %s: fanin id out of range" n.name)
  else Ok ()

(* Kahn's algorithm over combinational dependencies only: Input, Dff and
   constant nodes are sources; a Dff's fanin is not a dependency of its
   output. Returns [Error names_on_cycle] when a combinational cycle
   exists. *)
let topo_or_cycle nodes =
  let n = Array.length nodes in
  let indeg = Array.make n 0 in
  let is_source nd =
    match nd.kind with
    | Gate.Input | Gate.Dff | Gate.Const0 | Gate.Const1 -> true
    | _ -> false
  in
  Array.iter
    (fun nd -> if not (is_source nd) then indeg.(nd.id) <- Array.length nd.fanins)
    nodes;
  let order = Array.make n (-1) in
  let head = ref 0 and tail = ref 0 in
  Array.iter
    (fun nd ->
      if indeg.(nd.id) = 0 then begin
        order.(!tail) <- nd.id;
        incr tail
      end)
    nodes;
  (* Successor lists restricted to combinational consumers. *)
  let succs = Array.make n [] in
  Array.iter
    (fun nd ->
      if not (is_source nd) then
        Array.iter (fun f -> succs.(f) <- nd.id :: succs.(f)) nd.fanins)
    nodes;
  while !head < !tail do
    let u = order.(!head) in
    incr head;
    List.iter
      (fun v ->
        indeg.(v) <- indeg.(v) - 1;
        if indeg.(v) = 0 then begin
          order.(!tail) <- v;
          incr tail
        end)
      succs.(u)
  done;
  if !tail = n then Ok order
  else begin
    let stuck = ref [] in
    Array.iter (fun nd -> if indeg.(nd.id) > 0 then stuck := nd.name :: !stuck) nodes;
    Error !stuck
  end

module Builder = struct
  type t = {
    nodes : node Vec.t;
    by_name : (string, int) Hashtbl.t;
    inputs : int Vec.t;
    outputs : int Vec.t;
    mutable fresh : int;
    circuit_name : string;
  }

  let create ?(name = "circuit") () =
    {
      nodes = Vec.create ();
      by_name = Hashtbl.create 64;
      inputs = Vec.create ();
      outputs = Vec.create ();
      fresh = 0;
      circuit_name = name;
    }

  let add b name kind fanins =
    if Hashtbl.mem b.by_name name then
      invalid_arg ("Circuit.Builder: duplicate signal name " ^ name);
    let id = Vec.length b.nodes in
    let n = { id; name; kind; fanins } in
    let placeholder_dff = Gate.equal kind Gate.Dff && Array.length fanins = 0 in
    (if not placeholder_dff then
       match check_node ~num_nodes:(id + 1) n with
       | Ok () -> ()
       | Error msg -> invalid_arg ("Circuit.Builder: " ^ msg));
    ignore (Vec.push b.nodes n);
    Hashtbl.add b.by_name name id;
    id

  let input b name =
    let id = add b name Gate.Input [||] in
    ignore (Vec.push b.inputs id);
    id

  let fresh_name b =
    let rec loop () =
      let name = Printf.sprintf "n%d" b.fresh in
      b.fresh <- b.fresh + 1;
      if Hashtbl.mem b.by_name name then loop () else name
    in
    loop ()

  let gate b ?name kind fanins =
    let name = match name with Some n -> n | None -> fresh_name b in
    add b name kind (Array.of_list fanins)

  let mark_output b id =
    if id < 0 || id >= Vec.length b.nodes then
      invalid_arg "Circuit.Builder.mark_output: no such node";
    if not (Vec.exists (fun o -> o = id) b.outputs) then
      ignore (Vec.push b.outputs id)

  (* Placeholder DFFs carry an empty fanin array until connected. *)
  let dff_placeholder b name = add b name Gate.Dff [||]

  let connect_dff b dff d =
    if dff < 0 || dff >= Vec.length b.nodes then
      invalid_arg "Circuit.Builder.connect_dff: no such node";
    if d < 0 || d >= Vec.length b.nodes then
      invalid_arg "Circuit.Builder.connect_dff: no such D node";
    let nd = Vec.get b.nodes dff in
    if not (Gate.equal nd.kind Gate.Dff) then
      invalid_arg "Circuit.Builder.connect_dff: not a flip-flop";
    if Array.length nd.fanins <> 0 then
      invalid_arg "Circuit.Builder.connect_dff: already connected";
    Vec.set b.nodes dff { nd with fanins = [| d |] }

  let name_of b id =
    if id < 0 || id >= Vec.length b.nodes then
      invalid_arg "Circuit.Builder.name_of: no such node";
    (Vec.get b.nodes id).name

  let finish b =
    let nodes = Vec.to_array b.nodes in
    Array.iter
      (fun nd ->
        if Gate.equal nd.kind Gate.Dff && Array.length nd.fanins = 0 then
          invalid_arg
            ("Circuit.Builder.finish: flip-flop " ^ nd.name ^ " never connected"))
      nodes;
    (match topo_or_cycle nodes with
    | Ok _ -> ()
    | Error names ->
        invalid_arg
          ("Circuit.Builder.finish: combinational cycle through "
          ^ String.concat ", " (List.filteri (fun i _ -> i < 5) names)));
    let fanout_lists = Array.make (Array.length nodes) [] in
    Array.iter
      (fun nd ->
        Array.iter (fun f -> fanout_lists.(f) <- nd.id :: fanout_lists.(f)) nd.fanins)
      nodes;
    {
      nodes;
      fanouts = Array.map (fun l -> Array.of_list (List.rev l)) fanout_lists;
      inputs = Vec.to_array b.inputs;
      outputs = Vec.to_array b.outputs;
      name = b.circuit_name;
    }
end

let node c i = c.nodes.(i)
let num_nodes c = Array.length c.nodes
let num_gates c =
  Array.fold_left
    (fun acc n -> if Gate.equal n.kind Gate.Input then acc else acc + 1)
    0 c.nodes

let num_dff c =
  Array.fold_left
    (fun acc n -> if Gate.equal n.kind Gate.Dff then acc + 1 else acc)
    0 c.nodes

let find c name =
  (* Circuits are immutable; build the index lazily would complicate the
     type, and circuits are consulted by name only in tests and parsers, so
     a scan is acceptable. *)
  let n = Array.length c.nodes in
  let rec loop i =
    if i >= n then None
    else if String.equal c.nodes.(i).name name then Some i
    else loop (i + 1)
  in
  loop 0

let is_output c i = Array.exists (fun o -> o = i) c.outputs

let topological_order c =
  match topo_or_cycle c.nodes with
  | Ok order -> order
  | Error _ -> assert false (* established by Builder.finish *)

let levels c =
  let order = topological_order c in
  let lv = Array.make (num_nodes c) 0 in
  Array.iter
    (fun i ->
      let nd = c.nodes.(i) in
      match nd.kind with
      | Gate.Input | Gate.Dff | Gate.Const0 | Gate.Const1 -> lv.(i) <- 0
      | _ ->
          lv.(i) <-
            1 + Array.fold_left (fun acc f -> max acc lv.(f)) (-1) nd.fanins)
    order;
  lv

let depth c = Array.fold_left max 0 (levels c)

let validate c =
  let num = num_nodes c in
  let rec check_all i =
    if i >= num then Ok ()
    else
      match check_node ~num_nodes:num c.nodes.(i) with
      | Error _ as e -> e
      | Ok () -> if c.nodes.(i).id <> i then Error "node id mismatch" else check_all (i + 1)
  in
  match check_all 0 with
  | Error _ as e -> e
  | Ok () -> (
      if Array.exists (fun o -> o < 0 || o >= num) c.outputs then
        Error "output id out of range"
      else
        match topo_or_cycle c.nodes with
        | Ok _ -> Ok ()
        | Error names ->
            Error ("combinational cycle through " ^ String.concat ", " names))

let pp_summary fmt c =
  Format.fprintf fmt "%s: %d PI, %d PO, %d gates (%d DFF), depth %d" c.name
    (Array.length c.inputs) (Array.length c.outputs) (num_gates c) (num_dff c)
    (depth c)
