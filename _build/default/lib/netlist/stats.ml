type t = {
  name : string;
  num_inputs : int;
  num_outputs : int;
  num_gates : int;
  num_dff : int;
  num_nets : int;
  num_pins : int;
  depth : int;
  max_fanin : int;
  max_fanout : int;
}

let compute c =
  let num = Circuit.num_nodes c in
  let nets = ref 0 and pins = ref 0 and max_fi = ref 0 and max_fo = ref 0 in
  for i = 0 to num - 1 do
    let nd = Circuit.node c i in
    let fo = Array.length c.Circuit.fanouts.(i) in
    let fi = Array.length nd.Circuit.fanins in
    if fo > 0 || Circuit.is_output c i then incr nets;
    (* A net's pins: its driver plus each reader; chip-level I/O pins are
       counted once each, matching how IOBs consume pins after mapping. *)
    pins := !pins + fi;
    max_fi := max !max_fi fi;
    max_fo := max !max_fo fo
  done;
  pins := !pins + Array.length c.Circuit.inputs + Array.length c.Circuit.outputs;
  {
    name = c.Circuit.name;
    num_inputs = Array.length c.Circuit.inputs;
    num_outputs = Array.length c.Circuit.outputs;
    num_gates = Circuit.num_gates c;
    num_dff = Circuit.num_dff c;
    num_nets = !nets;
    num_pins = !pins;
    depth = Circuit.depth c;
    max_fanin = !max_fi;
    max_fanout = !max_fo;
  }

let pp fmt s =
  Format.fprintf fmt
    "@[<v>circuit %s@,  inputs  %d@,  outputs %d@,  gates   %d (%d DFF)@,\
    \  nets    %d@,  pins    %d@,  depth   %d@,  max fanin %d, max fanout %d@]"
    s.name s.num_inputs s.num_outputs s.num_gates s.num_dff s.num_nets
    s.num_pins s.depth s.max_fanin s.max_fanout

let pp_row fmt s =
  Format.fprintf fmt "%-10s %6d %6d %6d %6d %6d %6d" s.name s.num_inputs
    s.num_outputs s.num_gates s.num_dff s.num_nets s.num_pins
