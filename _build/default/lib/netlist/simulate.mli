(** Cycle-accurate logic simulation.

    Used to validate the technology mapper (the mapped netlist must be
    functionally equivalent to the source circuit) and to sanity-check the
    structural circuit generators. Flip-flops power up at 0. *)

type state
(** Flip-flop contents for one circuit. *)

val initial_state : Circuit.t -> state
(** All flip-flops at 0. *)

val eval : Circuit.t -> state -> bool array -> bool array
(** [eval c st pi] computes the value of every node combinationally from
    primary-input values [pi] (in the order of [c.inputs]) and current
    flip-flop values, without clocking. Result is indexed by node id.
    Raises [Invalid_argument] if [pi] has the wrong length. *)

val step : Circuit.t -> state -> bool array -> bool array * state
(** [step c st pi] evaluates one clock cycle: returns the primary-output
    values (in the order of [c.outputs]) observed before the edge, and the
    post-edge state. *)

val run : Circuit.t -> bool array array -> bool array array
(** [run c vectors] clocks the circuit through [vectors] from the initial
    state; element [i] of the result is the output vector of cycle [i]. *)

val random_vectors : Rng.t -> Circuit.t -> int -> bool array array
(** [random_vectors rng c n] draws [n] uniformly random input vectors. *)
