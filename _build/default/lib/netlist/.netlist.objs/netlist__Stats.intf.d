lib/netlist/stats.mli: Circuit Format
