lib/netlist/stats.ml: Array Circuit Format
