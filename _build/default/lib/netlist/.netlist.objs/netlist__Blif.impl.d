lib/netlist/blif.ml: Array Buffer Circuit Gate Hashtbl In_channel List Option Out_channel Printf String Vec
