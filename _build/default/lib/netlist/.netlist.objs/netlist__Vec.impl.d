lib/netlist/vec.ml: Array
