lib/netlist/blif.mli: Circuit
