lib/netlist/gate.ml: Array Format String
