lib/netlist/transform.ml: Array Circuit Fun Gate Hashtbl List Printf String
