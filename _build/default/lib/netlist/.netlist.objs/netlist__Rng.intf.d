lib/netlist/rng.mli:
