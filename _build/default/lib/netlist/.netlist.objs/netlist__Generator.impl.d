lib/netlist/generator.ml: Array Circuit Fun Gate Hashtbl List Option Printf Rng Seq Vec
