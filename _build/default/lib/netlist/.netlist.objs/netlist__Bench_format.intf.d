lib/netlist/bench_format.mli: Circuit
