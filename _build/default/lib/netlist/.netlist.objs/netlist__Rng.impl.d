lib/netlist/rng.ml: Array Int64
