lib/netlist/simulate.mli: Circuit Rng
