lib/netlist/gate.mli: Format
