lib/netlist/generator.mli: Circuit Rng
