lib/netlist/circuit.ml: Array Format Gate Hashtbl List Printf String Vec
