lib/netlist/verilog.mli: Circuit
