lib/netlist/transform.mli: Circuit
