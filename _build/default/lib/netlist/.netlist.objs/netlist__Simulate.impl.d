lib/netlist/simulate.ml: Array Circuit Gate Rng
