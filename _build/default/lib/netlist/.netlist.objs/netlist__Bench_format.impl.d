lib/netlist/bench_format.ml: Array Buffer Circuit Gate Hashtbl In_channel List Out_channel Printf String Vec
