lib/netlist/circuit.mli: Format Gate
