lib/netlist/vec.mli:
