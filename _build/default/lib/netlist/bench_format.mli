(** Reader and writer for the ISCAS [.bench] netlist format.

    This is the textual format of the ISCAS'85/'89 benchmark suites the
    paper evaluates on. Grammar (comments start with [#]):
    {v
      INPUT(a)
      OUTPUT(z)
      g = NAND(a, b)
      q = DFF(g)
    v} *)

val parse : string -> (Circuit.t, string) result
(** Parse from the contents of a [.bench] file. The error message carries a
    line number. *)

val parse_file : string -> (Circuit.t, string) result
(** Read and parse a file; errors include I/O failures. *)

val to_string : Circuit.t -> string
(** Render a circuit back to [.bench] text, inputs first, then gates in
    topological order. [parse (to_string c)] is structurally identical to
    [c] up to node numbering. *)

val write_file : string -> Circuit.t -> unit
