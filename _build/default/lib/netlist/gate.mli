(** Gate-level primitives.

    The gate alphabet matches the ISCAS [.bench] netlist format (the format
    of the benchmark suites used in the paper): simple logic gates of
    arbitrary arity plus D flip-flops. *)

type kind =
  | Input        (** primary input; no fanins *)
  | And
  | Nand
  | Or
  | Nor
  | Xor
  | Xnor
  | Not          (** exactly one fanin *)
  | Buf          (** exactly one fanin *)
  | Dff          (** D flip-flop; one fanin (D), output is Q *)
  | Const0       (** constant 0; no fanins *)
  | Const1       (** constant 1; no fanins *)

val equal : kind -> kind -> bool

val to_string : kind -> string
(** Upper-case [.bench] spelling, e.g. ["NAND"]. *)

val of_string : string -> kind option
(** Case-insensitive inverse of {!to_string}. *)

val is_combinational : kind -> bool
(** True for every kind except [Input] and [Dff]. *)

val arity_ok : kind -> int -> bool
(** [arity_ok k n] tells whether a gate of kind [k] may have [n] fanins. *)

val eval : kind -> bool array -> bool
(** [eval k ins] evaluates a combinational gate on its fanin values. Raises
    [Invalid_argument] for [Input] and [Dff] (which have no combinational
    semantics) or when the arity is illegal. *)

val pp : Format.formatter -> kind -> unit
