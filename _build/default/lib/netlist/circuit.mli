(** Gate-level circuit intermediate representation.

    A circuit is a set of nodes (one per signal, as in the ISCAS [.bench]
    format: every gate defines exactly one named signal), a subset of which
    are primary inputs, plus a list of primary-output signals. D flip-flops
    are nodes like any other; their fanin is the [D] pin and their signal is
    the [Q] pin, so they break combinational cycles. *)

type node = private {
  id : int;            (** dense index in [nodes] *)
  name : string;       (** unique signal name *)
  kind : Gate.kind;
  fanins : int array;  (** node ids feeding this gate, in pin order *)
}

type t = private {
  nodes : node array;
  fanouts : int array array;  (** [fanouts.(i)] = ids reading node [i] *)
  inputs : int array;         (** ids of [Input] nodes, in creation order *)
  outputs : int array;        (** ids of primary-output driver nodes *)
  name : string;              (** circuit name, e.g. ["c6288"] *)
}

(** {1 Construction} *)

module Builder : sig
  type circuit := t
  type t

  val create : ?name:string -> unit -> t

  val input : t -> string -> int
  (** Declare a primary input signal; returns its node id. *)

  val gate : t -> ?name:string -> Gate.kind -> int list -> int
  (** [gate b kind fanins] adds a gate reading the given node ids; returns
      the new node id. A fresh name is invented when [name] is omitted.
      Raises [Invalid_argument] on a bad arity, an unknown fanin id, or a
      duplicate name. *)

  val mark_output : t -> int -> unit
  (** Mark a node's signal as a primary output (idempotent). *)

  val dff_placeholder : t -> string -> int
  (** Declare a D flip-flop whose [D] pin will be wired later with
      {!connect_dff}. Needed because a flip-flop's [Q] may feed the very
      cone that computes its [D] (sequential feedback), so [D] can be a
      forward reference. *)

  val connect_dff : t -> int -> int -> unit
  (** [connect_dff b dff d] wires the [D] pin of a placeholder flip-flop.
      Raises [Invalid_argument] if [dff] is not a placeholder created by
      {!dff_placeholder} or was already connected. *)

  val name_of : t -> int -> string
  (** Name of an already-created node. *)

  val finish : t -> circuit
  (** Freeze the builder. Raises [Invalid_argument] if any combinational
      cycle exists or a placeholder flip-flop was never connected. *)
end

(** {1 Accessors} *)

val node : t -> int -> node
val num_nodes : t -> int
val num_gates : t -> int
(** Count of non-[Input] nodes (flip-flops included). *)

val num_dff : t -> int
val find : t -> string -> int option
(** Look a node up by signal name (linear scan is avoided; O(1) expected). *)

val is_output : t -> int -> bool

(** {1 Structure} *)

val topological_order : t -> int array
(** Every node, combinational sources ([Input], [Dff], constants) first,
    then gates in dependency order. DFF fanins are not dependencies (the
    [D] pin is consumed at the clock edge). *)

val levels : t -> int array
(** [levels.(i)] = length of the longest combinational path from a source
    to node [i]; sources are level 0. *)

val depth : t -> int
(** Maximum over {!levels}. *)

val validate : t -> (unit, string) result
(** Re-check all structural invariants (arity, fanin bounds, acyclicity,
    output marks). The builder establishes these; [validate] exists to
    check circuits after hand-modification in tests and as a qcheck
    property target. *)

val pp_summary : Format.formatter -> t -> unit
(** One-line summary: name, #inputs, #outputs, #gates, #DFF, depth. *)
