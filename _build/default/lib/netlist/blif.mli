(** Reader and writer for the Berkeley Logic Interchange Format (BLIF).

    The subset implemented covers combinational logic ([.names] with
    on-set or off-set single-output covers) and flip-flops ([.latch]),
    which is what logic-synthesis flows exchange netlists with:
    {v
      .model adder
      .inputs a b
      .outputs s
      .names a b s
      10 1
      01 1
      .latch d q 0
      .end
    v}

    Parsing synthesises each cover into AND/OR/NOT gates; latch initial
    values other than 0 are not representable (the simulator powers up at
    0) and are accepted but treated as 0. Writing emits one [.names] per
    gate (XOR/XNOR as explicit minterm covers) and one [.latch] per
    flip-flop, so [parse (to_string c)] is functionally equivalent to
    [c]. *)

val parse : string -> (Circuit.t, string) result
val parse_file : string -> (Circuit.t, string) result

val to_string : Circuit.t -> string
(** Raises [Invalid_argument] on an XOR/XNOR gate wider than 12 inputs
    (decompose first; the minterm cover would be excessive). *)

val write_file : string -> Circuit.t -> unit
