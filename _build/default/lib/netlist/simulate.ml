type state = bool array
(* Indexed by node id; meaningful only at DFF nodes. *)

let initial_state c = Array.make (Circuit.num_nodes c) false

let eval c st pi =
  let num_inputs = Array.length c.Circuit.inputs in
  if Array.length pi <> num_inputs then
    invalid_arg "Simulate.eval: wrong input vector length";
  let values = Array.make (Circuit.num_nodes c) false in
  Array.iteri (fun k i -> values.(i) <- pi.(k)) c.Circuit.inputs;
  let order = Circuit.topological_order c in
  Array.iter
    (fun i ->
      let nd = Circuit.node c i in
      match nd.Circuit.kind with
      | Gate.Input -> ()
      | Gate.Dff -> values.(i) <- st.(i)
      | kind ->
          let ins = Array.map (fun f -> values.(f)) nd.Circuit.fanins in
          values.(i) <- Gate.eval kind ins)
    order;
  values

let step c st pi =
  let values = eval c st pi in
  let outs = Array.map (fun o -> values.(o)) c.Circuit.outputs in
  let st' = Array.copy st in
  for i = 0 to Circuit.num_nodes c - 1 do
    let nd = Circuit.node c i in
    if Gate.equal nd.Circuit.kind Gate.Dff then
      st'.(i) <- values.(nd.Circuit.fanins.(0))
  done;
  (outs, st')

let run c vectors =
  let st = ref (initial_state c) in
  Array.map
    (fun pi ->
      let outs, st' = step c !st pi in
      st := st';
      outs)
    vectors

let random_vectors rng c n =
  let width = Array.length c.Circuit.inputs in
  Array.init n (fun _ -> Array.init width (fun _ -> Rng.bool rng))
