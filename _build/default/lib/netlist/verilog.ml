module B = Circuit.Builder

(* ------------------------------------------------------------------ *)
(* Tokenizer                                                          *)
(* ------------------------------------------------------------------ *)

type token =
  | Ident of string
  | Punct of char   (* ( ) , ; = *)
  | Op of char      (* ~ & | ^ *)
  | Const of bool   (* 1'b0 / 1'b1 *)

let is_ident_char ch =
  (ch >= 'a' && ch <= 'z')
  || (ch >= 'A' && ch <= 'Z')
  || (ch >= '0' && ch <= '9')
  || ch = '_' || ch = '$' || ch = '.' || ch = '[' || ch = ']'

let tokenize text =
  let n = String.length text in
  let tokens = Vec.create () in
  let line = ref 1 in
  let error msg = Error (Printf.sprintf "line %d: %s" !line msg) in
  let rec loop i =
    if i >= n then Ok (Vec.to_array tokens)
    else
      let ch = text.[i] in
      if ch = '\n' then begin
        incr line;
        loop (i + 1)
      end
      else if ch = ' ' || ch = '\t' || ch = '\r' then loop (i + 1)
      else if ch = '/' && i + 1 < n && text.[i + 1] = '/' then begin
        let rec skip j = if j < n && text.[j] <> '\n' then skip (j + 1) else j in
        loop (skip i)
      end
      else if ch = '/' && i + 1 < n && text.[i + 1] = '*' then begin
        let rec skip j =
          if j + 1 >= n then n
          else if text.[j] = '*' && text.[j + 1] = '/' then j + 2
          else begin
            if text.[j] = '\n' then incr line;
            skip (j + 1)
          end
        in
        loop (skip (i + 2))
      end
      else if ch = '1' && i + 3 < n && text.[i + 1] = '\'' && (text.[i + 2] = 'b' || text.[i + 2] = 'B')
      then begin
        match text.[i + 3] with
        | '0' ->
            ignore (Vec.push tokens (!line, Const false));
            loop (i + 4)
        | '1' ->
            ignore (Vec.push tokens (!line, Const true));
            loop (i + 4)
        | _ -> error "bad constant literal"
      end
      else if is_ident_char ch then begin
        let rec stop j = if j < n && is_ident_char text.[j] then stop (j + 1) else j in
        let j = stop i in
        ignore (Vec.push tokens (!line, Ident (String.sub text i (j - i))));
        loop j
      end
      else
        match ch with
        | '(' | ')' | ',' | ';' | '=' ->
            ignore (Vec.push tokens (!line, Punct ch));
            loop (i + 1)
        | '~' | '&' | '|' | '^' ->
            ignore (Vec.push tokens (!line, Op ch));
            loop (i + 1)
        | _ -> error (Printf.sprintf "unexpected character %C" ch)
  in
  loop 0

(* ------------------------------------------------------------------ *)
(* Statements                                                         *)
(* ------------------------------------------------------------------ *)

(* Expression AST for [assign] right-hand sides. *)
type expr =
  | E_sig of string
  | E_const of bool
  | E_not of expr
  | E_bin of Gate.kind * expr * expr

type stmt =
  | S_ports of [ `Input | `Output | `Wire ] * string list
  | S_gate of Gate.kind * string * string list  (* output, inputs *)
  | S_dff of string * string                    (* q, d *)
  | S_assign of string * expr

exception Parse_error of string

let parse_tokens tokens =
  let pos = ref 0 in
  let len = Array.length tokens in
  let peek () = if !pos < len then Some (snd tokens.(!pos)) else None in
  let here () = if !pos < len then fst tokens.(!pos) else -1 in
  let fail msg = raise (Parse_error (Printf.sprintf "line %d: %s" (here ()) msg)) in
  let next () =
    if !pos >= len then fail "unexpected end of input"
    else begin
      let t = snd tokens.(!pos) in
      incr pos;
      t
    end
  in
  let expect_punct ch =
    match next () with
    | Punct c when c = ch -> ()
    | _ -> fail (Printf.sprintf "expected %C" ch)
  in
  let ident () =
    match next () with Ident s -> s | _ -> fail "expected an identifier"
  in
  let ident_list stop =
    let rec loop acc =
      let id = ident () in
      match next () with
      | Punct ',' -> loop (id :: acc)
      | Punct c when c = stop -> List.rev (id :: acc)
      | _ -> fail "expected ',' in list"
    in
    loop []
  in
  (* Expression grammar: or-expr := xor-expr ('|' xor-expr)*;
     xor-expr := and-expr ('^' and-expr)*;
     and-expr := unary ('&' unary)*;
     unary := '~' unary | '(' or-expr ')' | ident | const. *)
  let rec parse_or () =
    let rec loop lhs =
      match peek () with
      | Some (Op '|') ->
          ignore (next ());
          loop (E_bin (Gate.Or, lhs, parse_xor ()))
      | _ -> lhs
    in
    loop (parse_xor ())
  and parse_xor () =
    let rec loop lhs =
      match peek () with
      | Some (Op '^') ->
          ignore (next ());
          loop (E_bin (Gate.Xor, lhs, parse_and ()))
      | _ -> lhs
    in
    loop (parse_and ())
  and parse_and () =
    let rec loop lhs =
      match peek () with
      | Some (Op '&') ->
          ignore (next ());
          loop (E_bin (Gate.And, lhs, parse_unary ()))
      | _ -> lhs
    in
    loop (parse_unary ())
  and parse_unary () =
    match next () with
    | Op '~' -> E_not (parse_unary ())
    | Punct '(' ->
        let e = parse_or () in
        expect_punct ')';
        e
    | Ident s -> E_sig s
    | Const v -> E_const v
    | _ -> fail "expected an expression"
  in
  let stmts = Vec.create () in
  let module_name = ref "verilog" in
  (* module header *)
  (match next () with
  | Ident "module" -> ()
  | _ -> fail "expected 'module'");
  module_name := ident ();
  (match peek () with
  | Some (Punct '(') ->
      ignore (next ());
      (* The port list repeats the input/output declarations; skip it. *)
      (match peek () with
      | Some (Punct ')') -> ignore (next ())
      | _ -> ignore (ident_list ')'));
      expect_punct ';'
  | Some (Punct ';') -> ignore (next ())
  | _ -> fail "expected port list or ';'");
  let rec body () =
    match next () with
    | Ident "endmodule" -> ()
    | Ident "input" ->
        ignore (Vec.push stmts (S_ports (`Input, ident_list ';')));
        body ()
    | Ident "output" ->
        ignore (Vec.push stmts (S_ports (`Output, ident_list ';')));
        body ()
    | Ident "wire" ->
        ignore (Vec.push stmts (S_ports (`Wire, ident_list ';')));
        body ()
    | Ident "assign" ->
        let lhs = ident () in
        expect_punct '=';
        let e = parse_or () in
        expect_punct ';';
        ignore (Vec.push stmts (S_assign (lhs, e)));
        body ()
    | Ident ("dff" | "DFF" | "dff_1" | "FD1") ->
        (* Optional instance name, then the port list. *)
        (match peek () with
        | Some (Ident _) -> ignore (next ())
        | _ -> ());
        expect_punct '(';
        let ports = ident_list ')' in
        expect_punct ';';
        (match ports with
        | [ q; d ] -> ignore (Vec.push stmts (S_dff (q, d)))
        | [ _clk; q; d ] -> ignore (Vec.push stmts (S_dff (q, d)))
        | _ -> fail "dff takes (Q, D) or (CK, Q, D)");
        body ()
    | Ident prim -> (
        match Gate.of_string prim with
        | Some kind when Gate.is_combinational kind ->
            (match peek () with
            | Some (Ident _) -> ignore (next ())
            | _ -> ());
            expect_punct '(';
            let ports = ident_list ')' in
            expect_punct ';';
            (match ports with
            | out :: ins when ins <> [] ->
                ignore (Vec.push stmts (S_gate (kind, out, ins)))
            | _ -> fail (prim ^ " needs an output and at least one input"));
            body ()
        | _ -> fail ("unsupported construct: " ^ prim))
    | _ -> fail "unexpected token"
  in
  body ();
  (!module_name, Vec.to_array stmts)

(* ------------------------------------------------------------------ *)
(* Elaboration                                                        *)
(* ------------------------------------------------------------------ *)

type decl =
  | D_input
  | D_gate of Gate.kind * string list
  | D_dff of string
  | D_assign of expr

let build (module_name, stmts) =
  let decls = Hashtbl.create 256 in
  let order = Vec.create () in
  let outputs = Vec.create () in
  let fail msg = raise (Parse_error msg) in
  let declare name d =
    if Hashtbl.mem decls name then fail ("duplicate driver for " ^ name)
    else begin
      Hashtbl.add decls name d;
      ignore (Vec.push order name)
    end
  in
  Array.iter
    (function
      | S_ports (`Input, names) -> List.iter (fun n -> declare n D_input) names
      | S_ports (`Output, names) ->
          List.iter (fun n -> ignore (Vec.push outputs n)) names
      | S_ports (`Wire, _) -> () (* wires exist through their drivers *)
      | S_gate (kind, out, ins) -> declare out (D_gate (kind, ins))
      | S_dff (q, d) -> declare q (D_dff d)
      | S_assign (lhs, e) -> declare lhs (D_assign e))
    stmts;
  let b = B.create ~name:module_name () in
  let prefix =
    let clashes p =
      Vec.fold_left
        (fun acc name -> acc || String.starts_with ~prefix:p name)
        false order
    in
    let rec search p = if clashes p then search ("$" ^ p) else p in
    search "$v"
  in
  let counter = ref 0 in
  let fresh () =
    let name = Printf.sprintf "%s%d" prefix !counter in
    incr counter;
    name
  in
  let ids = Hashtbl.create 256 in
  let visiting = Hashtbl.create 16 in
  let rec resolve name =
    match Hashtbl.find_opt ids name with
    | Some id -> id
    | None -> (
        if Hashtbl.mem visiting name then
          fail ("combinational cycle at " ^ name);
        match Hashtbl.find_opt decls name with
        | None -> fail ("undriven signal: " ^ name)
        | Some d ->
            let id =
              match d with
              | D_input -> B.input b name
              | D_dff _ -> B.dff_placeholder b name
              | D_gate (kind, ins) ->
                  Hashtbl.replace visiting name ();
                  let in_ids = List.map resolve ins in
                  Hashtbl.remove visiting name;
                  B.gate b ~name kind in_ids
              | D_assign e ->
                  Hashtbl.replace visiting name ();
                  let id = elaborate_expr ~name e in
                  Hashtbl.remove visiting name;
                  id
            in
            Hashtbl.replace ids name id;
            id)
  and elaborate_expr ?name e =
    (* Build anonymous subexpressions; the top node carries [name]. *)
    let mk kind ins =
      match name with
      | Some n -> B.gate b ~name:n kind ins
      | None -> B.gate b ~name:(fresh ()) kind ins
    in
    match e with
    | E_sig s -> (
        let id = resolve s in
        match name with Some n -> B.gate b ~name:n Gate.Buf [ id ] | None -> id)
    | E_const v -> mk (if v then Gate.Const1 else Gate.Const0) []
    | E_not e1 -> mk Gate.Not [ elaborate_expr e1 ]
    | E_bin (kind, e1, e2) ->
        let a = elaborate_expr e1 in
        let c = elaborate_expr e2 in
        mk kind [ a; c ]
  in
  Vec.iter (fun name -> ignore (resolve name)) order;
  Vec.iter
    (fun name ->
      match Hashtbl.find_opt decls name with
      | Some (D_dff d) -> B.connect_dff b (Hashtbl.find ids name) (resolve d)
      | _ -> ())
    order;
  Vec.iter
    (fun name ->
      match Hashtbl.find_opt ids name with
      | Some id -> B.mark_output b id
      | None -> fail ("undriven output port: " ^ name))
    outputs;
  B.finish b

let parse text =
  match tokenize text with
  | Error msg -> Error msg
  | Ok tokens -> (
      try Ok (build (parse_tokens tokens)) with
      | Parse_error msg -> Error msg
      | Invalid_argument msg -> Error msg)

let parse_file path =
  match In_channel.with_open_text path In_channel.input_all with
  | exception Sys_error msg -> Error msg
  | text -> parse text

(* ------------------------------------------------------------------ *)
(* Writing                                                            *)
(* ------------------------------------------------------------------ *)

let to_string c =
  let buf = Buffer.create 4096 in
  let name_of i = (Circuit.node c i).Circuit.name in
  let ports =
    Array.to_list (Array.map name_of c.Circuit.inputs)
    @ Array.to_list (Array.map name_of c.Circuit.outputs)
  in
  Buffer.add_string buf
    (Printf.sprintf "module %s (%s);\n" c.Circuit.name (String.concat ", " ports));
  let decl_line kw names =
    if names <> [] then
      Buffer.add_string buf
        (Printf.sprintf "  %s %s;\n" kw (String.concat ", " names))
  in
  decl_line "input" (Array.to_list (Array.map name_of c.Circuit.inputs));
  decl_line "output" (Array.to_list (Array.map name_of c.Circuit.outputs));
  let is_output = Array.make (Circuit.num_nodes c) false in
  Array.iter (fun o -> is_output.(o) <- true) c.Circuit.outputs;
  let wires = ref [] in
  for i = Circuit.num_nodes c - 1 downto 0 do
    let nd = Circuit.node c i in
    if not (Gate.equal nd.Circuit.kind Gate.Input) && not is_output.(i) then
      wires := nd.Circuit.name :: !wires
  done;
  decl_line "wire" !wires;
  let order = Circuit.topological_order c in
  let instance = ref 0 in
  let emit i =
    let nd = Circuit.node c i in
    let args =
      nd.Circuit.name
      :: (Array.to_list nd.Circuit.fanins |> List.map name_of)
    in
    let prim =
      match nd.Circuit.kind with
      | Gate.Input | Gate.Dff -> None
      | Gate.Const0 ->
          Buffer.add_string buf
            (Printf.sprintf "  assign %s = 1'b0;\n" nd.Circuit.name);
          None
      | Gate.Const1 ->
          Buffer.add_string buf
            (Printf.sprintf "  assign %s = 1'b1;\n" nd.Circuit.name);
          None
      | k -> Some (String.lowercase_ascii (Gate.to_string k))
    in
    match prim with
    | None -> ()
    | Some prim ->
        incr instance;
        Buffer.add_string buf
          (Printf.sprintf "  %s g%d (%s);\n" prim !instance
             (String.concat ", " args))
  in
  Array.iter
    (fun i ->
      if not (Gate.equal (Circuit.node c i).Circuit.kind Gate.Dff) then emit i)
    order;
  Array.iter
    (fun i ->
      let nd = Circuit.node c i in
      if Gate.equal nd.Circuit.kind Gate.Dff then begin
        incr instance;
        Buffer.add_string buf
          (Printf.sprintf "  dff g%d (%s, %s);\n" !instance nd.Circuit.name
             (name_of nd.Circuit.fanins.(0)))
      end)
    order;
  Buffer.add_string buf "endmodule\n";
  Buffer.contents buf

let write_file path c =
  Out_channel.with_open_text path (fun oc ->
      Out_channel.output_string oc (to_string c))
