type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

(* SplitMix64 output function (Steele, Lea & Flood 2014). *)
let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let next_int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let split t = { state = next_int64 t }

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Keep 62 bits so the value fits OCaml's native int and stays
     non-negative; modulo bias is negligible for bounds << 2^62. *)
  let raw = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2) in
  raw mod bound

let int_in t lo hi =
  if hi < lo then invalid_arg "Rng.int_in: empty range";
  lo + int t (hi - lo + 1)

let bool t = Int64.logand (next_int64 t) 1L = 1L

let float t x =
  let raw = Int64.to_float (Int64.shift_right_logical (next_int64 t) 11) in
  x *. (raw /. 9007199254740992.0 (* 2^53 *))

let pick t arr =
  if Array.length arr = 0 then invalid_arg "Rng.pick: empty array";
  arr.(int t (Array.length arr))

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let sample t n bound =
  if n > bound then invalid_arg "Rng.sample: n > bound";
  (* Partial Fisher-Yates over an index table; O(bound) space, O(bound+n)
     time, which is fine at netlist scale. *)
  let table = Array.init bound (fun i -> i) in
  for i = 0 to n - 1 do
    let j = int_in t i (bound - 1) in
    let tmp = table.(i) in
    table.(i) <- table.(j);
    table.(j) <- tmp
  done;
  Array.sub table 0 n
