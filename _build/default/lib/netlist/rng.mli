(** Deterministic pseudo-random number generator (SplitMix64).

    Every randomized component of the library (circuit generators, partition
    multi-starts, property tests that need auxiliary randomness) draws from
    this generator so that experiments are reproducible bit-for-bit from a
    seed, independently of the OCaml runtime's [Random] state. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] returns a fresh generator. Equal seeds yield equal
    streams. *)

val copy : t -> t
(** [copy t] is an independent generator that will produce the same future
    stream as [t]. *)

val split : t -> t
(** [split t] derives a statistically independent generator from [t],
    advancing [t]. Useful for giving sub-components their own streams. *)

val next_int64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. Raises [Invalid_argument] if
    [bound <= 0]. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in [\[lo, hi\]] inclusive. Raises
    [Invalid_argument] if [hi < lo]. *)

val bool : t -> bool
(** Uniform coin flip. *)

val float : t -> float -> float
(** [float t x] is uniform in [\[0, x)]. *)

val pick : t -> 'a array -> 'a
(** [pick t arr] is a uniformly random element. Raises [Invalid_argument] on
    an empty array. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val sample : t -> int -> int -> int array
(** [sample t n bound] draws [n] distinct integers from [\[0, bound)] in
    random order. Raises [Invalid_argument] if [n > bound]. *)
