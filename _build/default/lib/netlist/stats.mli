(** Circuit statistics, as reported in Table II of the paper (before
    technology mapping; the mapped-cell counts come from [Techmap]). *)

type t = {
  name : string;
  num_inputs : int;
  num_outputs : int;
  num_gates : int;   (** non-input nodes, flip-flops included *)
  num_dff : int;
  num_nets : int;    (** signals with at least one reader or output mark *)
  num_pins : int;    (** total fanin connections + I/O pins *)
  depth : int;       (** longest combinational path *)
  max_fanin : int;
  max_fanout : int;
}

val compute : Circuit.t -> t

val pp : Format.formatter -> t -> unit
(** Multi-line human-readable rendering. *)

val pp_row : Format.formatter -> t -> unit
(** One fixed-width table row: name, gates, DFF, nets, pins. *)
