type 'a t = {
  mutable data : 'a array;
  mutable len : int;
}

let create () = { data = [||]; len = 0 }

let make n x = { data = Array.make n x; len = n }

let length v = v.len

let check v i name =
  if i < 0 || i >= v.len then invalid_arg ("Vec." ^ name ^ ": index out of bounds")

let get v i =
  check v i "get";
  v.data.(i)

let set v i x =
  check v i "set";
  v.data.(i) <- x

let grow v x =
  let cap = Array.length v.data in
  let cap' = if cap = 0 then 8 else 2 * cap in
  let data' = Array.make cap' x in
  Array.blit v.data 0 data' 0 v.len;
  v.data <- data'

let push v x =
  if v.len = Array.length v.data then grow v x;
  v.data.(v.len) <- x;
  v.len <- v.len + 1;
  v.len - 1

let iter f v =
  for i = 0 to v.len - 1 do
    f v.data.(i)
  done

let iteri f v =
  for i = 0 to v.len - 1 do
    f i v.data.(i)
  done

let fold_left f acc v =
  let acc = ref acc in
  for i = 0 to v.len - 1 do
    acc := f !acc v.data.(i)
  done;
  !acc

let to_array v = Array.sub v.data 0 v.len

let of_array arr = { data = Array.copy arr; len = Array.length arr }

let exists p v =
  let rec loop i = i < v.len && (p v.data.(i) || loop (i + 1)) in
  loop 0
