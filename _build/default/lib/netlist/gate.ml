type kind =
  | Input
  | And
  | Nand
  | Or
  | Nor
  | Xor
  | Xnor
  | Not
  | Buf
  | Dff
  | Const0
  | Const1

let equal (a : kind) (b : kind) = a = b

let to_string = function
  | Input -> "INPUT"
  | And -> "AND"
  | Nand -> "NAND"
  | Or -> "OR"
  | Nor -> "NOR"
  | Xor -> "XOR"
  | Xnor -> "XNOR"
  | Not -> "NOT"
  | Buf -> "BUF"
  | Dff -> "DFF"
  | Const0 -> "CONST0"
  | Const1 -> "CONST1"

let of_string s =
  match String.uppercase_ascii s with
  | "INPUT" -> Some Input
  | "AND" -> Some And
  | "NAND" -> Some Nand
  | "OR" -> Some Or
  | "NOR" -> Some Nor
  | "XOR" -> Some Xor
  | "XNOR" -> Some Xnor
  | "NOT" | "INV" -> Some Not
  | "BUF" | "BUFF" -> Some Buf
  | "DFF" -> Some Dff
  | "CONST0" -> Some Const0
  | "CONST1" -> Some Const1
  | _ -> None

let is_combinational = function
  | Input | Dff -> false
  | And | Nand | Or | Nor | Xor | Xnor | Not | Buf | Const0 | Const1 -> true

let arity_ok kind n =
  match kind with
  | Input | Const0 | Const1 -> n = 0
  | Not | Buf | Dff -> n = 1
  | And | Nand | Or | Nor | Xor | Xnor -> n >= 1

let eval kind ins =
  let n = Array.length ins in
  if not (arity_ok kind n) then
    invalid_arg ("Gate.eval: bad arity for " ^ to_string kind);
  let for_all v = Array.for_all (fun x -> x = v) ins in
  let exists v = Array.exists (fun x -> x = v) ins in
  let parity () = Array.fold_left (fun acc x -> if x then not acc else acc) false ins in
  match kind with
  | And -> for_all true
  | Nand -> not (for_all true)
  | Or -> exists true
  | Nor -> not (exists true)
  | Xor -> parity ()
  | Xnor -> not (parity ())
  | Not -> not ins.(0)
  | Buf -> ins.(0)
  | Const0 -> false
  | Const1 -> true
  | Input | Dff -> invalid_arg "Gate.eval: not a combinational gate"

let pp fmt kind = Format.pp_print_string fmt (to_string kind)
