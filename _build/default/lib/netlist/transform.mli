(** Netlist clean-up transforms.

    Standard structural optimizations applied before technology mapping.
    Every transform preserves the circuit's function (checked by the
    property-based tests), never touches primary input/output names, and
    keeps flip-flop count except where a flip-flop is provably dead.

    [optimize] composes them to a fixpoint:
    constants → buffers → structural hashing → dead sweep. *)

val propagate_constants : Circuit.t -> Circuit.t
(** Fold [Const0]/[Const1] through gates: an AND with a 0 input becomes
    constant 0, an XOR with a 1 input becomes an inverter of the rest, a
    gate whose fanins are all constants becomes a constant, etc.
    Constants feeding primary outputs or flip-flops survive as constant
    nodes. *)

val collapse_buffers : Circuit.t -> Circuit.t
(** Re-wire readers of [Buf] gates (and of double inverters) to the
    underlying signal. A buffer that drives a primary output is kept so the
    output name survives. *)

val strash : Circuit.t -> Circuit.t
(** Structural hashing: merge gates of equal kind and identical (ordered)
    fanin lists. Commutative kinds are matched up to fanin order. *)

val sweep : Circuit.t -> Circuit.t
(** Remove logic (including flip-flops) from which no primary output is
    reachable. *)

val optimize : Circuit.t -> Circuit.t
(** Fixpoint of the transforms above. *)
