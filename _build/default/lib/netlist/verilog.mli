(** Reader and writer for gate-level structural Verilog.

    The subset covers the style the ISCAS benchmark distributions use —
    one module, scalar ports and wires, primitive gate instantiations, and
    D flip-flop instances — plus [assign] with bitwise expressions:
    {v
      module c17 (N1, N2, N3, N6, N7, N22, N23);
        input N1, N2, N3, N6, N7;
        output N22, N23;
        wire N10, N11, N16, N19;
        nand g1 (N10, N1, N3);
        nand g2 (N11, N3, N6);
        assign N16 = ~(N2 & N11);
        nand g4 (N19, N11, N7);
        nand g5 (N22, N10, N16);
        nand g6 (N23, N16, N19);
      endmodule
    v}

    Primitives: [and], [nand], [or], [nor], [xor], [xnor], [not], [buf]
    (first port drives, the rest read). Flip-flops: [dff (Q, D)] or the
    ISCAS'89 three-port form [dff (CK, Q, D)] (the clock is implicit in
    the circuit model). [assign] right-hand sides may use [~ & | ^],
    parentheses, identifiers and the constants [1'b0] / [1'b1]. Comments
    ([//] and [/* */]) are ignored. *)

val parse : string -> (Circuit.t, string) result
val parse_file : string -> (Circuit.t, string) result

val to_string : Circuit.t -> string
(** Emits one module with primitive instances and [dff] flip-flops.
    [parse (to_string c)] is functionally equivalent to [c]. *)

val write_file : string -> Circuit.t -> unit
