(** Growable arrays.

    OCaml 5.1's standard library has no dynamic array (it appears in 5.2 as
    [Dynarray]); this is the small subset the library needs: amortized O(1)
    push, O(1) random access, and conversion to a plain array. *)

type 'a t

val create : unit -> 'a t
(** A fresh empty vector. *)

val make : int -> 'a -> 'a t
(** [make n x] is a vector of length [n] filled with [x]. *)

val length : 'a t -> int

val get : 'a t -> int -> 'a
(** Raises [Invalid_argument] when out of bounds. *)

val set : 'a t -> int -> 'a -> unit
(** Raises [Invalid_argument] when out of bounds. *)

val push : 'a t -> 'a -> int
(** [push v x] appends [x] and returns its index. *)

val iter : ('a -> unit) -> 'a t -> unit

val iteri : (int -> 'a -> unit) -> 'a t -> unit

val fold_left : ('acc -> 'a -> 'acc) -> 'acc -> 'a t -> 'acc

val to_array : 'a t -> 'a array
(** A fresh array holding the current contents. *)

val of_array : 'a array -> 'a t

val exists : ('a -> bool) -> 'a t -> bool
