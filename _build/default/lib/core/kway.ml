let log_src = Logs.Src.create "fpgapart.kway" ~doc:"heterogeneous k-way driver"

module Log = (val Logs.src_log log_src : Logs.LOG)

type part = {
  device : Fpga.Device.t;
  members : (int * Bitvec.t) list;
  clbs : int;
  iobs : int;
}

type result = {
  parts : part list;
  summary : Fpga.Cost.summary;
  replicated_cells : int;
  total_cells : int;
  elapsed : float;
  runs : int;
  feasible_runs : int;
}

type options = {
  runs : int;
  seed : int;
  replication : [ `None | `Functional of int ];
  max_passes : int;
  fm_attempts : int;
  refine_rounds : int;
}

let default_options =
  {
    runs = 5;
    seed = 1;
    replication = `None;
    max_passes = 10;
    fm_attempts = 3;
    refine_rounds = 1;
  }

let count_external (h : Hypergraph.t) =
  Array.fold_left (fun acc e -> if e then acc + 1 else acc) 0 h.Hypergraph.net_external

(* Translate copies expressed in a sub-hypergraph's coordinates back to the
   original hypergraph. [orig_of.(c)] = (original cell, per-output index
   map). *)
let translate orig_of members =
  List.map
    (fun (c, m) ->
      let orig, out_map = orig_of.(c) in
      let om =
        Bitvec.fold (fun o acc -> Bitvec.add out_map.(o) acc) m Bitvec.empty
      in
      (orig, om))
    members

(* One feasible split attempt: side A must fit the device window. Returns
   the best feasible state over [attempts] random restarts. *)
let try_device ~opts ~rng rest (dev : Fpga.Device.t) =
  let area = Hypergraph.total_area rest in
  let bounds =
    {
      Fm.min_clbs = max 1 (Fpga.Device.min_clbs dev);
      max_clbs = min (Fpga.Device.max_clbs dev) (area - 1);
      max_terminals = dev.Fpga.Device.terminals;
    }
  in
  if bounds.Fm.max_clbs < bounds.Fm.min_clbs then None
  else begin
    let cfg =
      Fm.device_config ~objective:Fm.Cut ~replication:opts.replication
        ~max_passes:opts.max_passes ~bounds ()
    in
    (* Aim near the top of the window: fuller devices mean fewer devices
       and lower total cost (objective 1). *)
    let target = max bounds.Fm.min_clbs (bounds.Fm.max_clbs * 9 / 10) in
    let p_a = float_of_int target /. float_of_int area in
    let best = ref None in
    for _ = 1 to opts.fm_attempts do
      let st =
        Partition_state.create rest ~init_on_b:(fun _ ->
            Netlist.Rng.float rng 1.0 >= p_a)
      in
      match Fm.run_staged cfg st with
      | 0, cut, neg_area -> (
          match !best with
          | Some (k, _) when k <= (cut, neg_area) -> ()
          | _ -> best := Some ((cut, neg_area), st))
      | _ -> ()
    done;
    Option.map snd !best
  end

let run_once ~library ~opts ~rng hg =
  let num_orig = Hypergraph.num_cells hg in
  let identity =
    Array.init num_orig (fun c ->
        ( c,
          Array.init
            (Array.length (Hypergraph.cell hg c).Hypergraph.outputs)
            Fun.id ))
  in
  let rec loop rest orig_of parts guard =
    if guard > Hypergraph.total_area hg + 8 then
      Error "k-way driver failed to terminate (internal)"
    else if Hypergraph.num_cells rest = 0 then Ok (List.rev parts)
    else begin
      let area = Hypergraph.total_area rest in
      let ext = count_external rest in
      match
        Fpga.Library.smallest_fitting ~relax_low:true library ~clbs:area
          ~iobs:ext
      with
      | Some dev ->
          (* The whole remainder fits one device. *)
          Log.debug (fun m ->
              m "remainder fits %s: %d CLBs / %d IOBs" dev.Fpga.Device.name
                area ext);
          let members =
            translate orig_of
              (List.init (Hypergraph.num_cells rest) (fun c ->
                   ( c,
                     Bitvec.full
                       (Array.length
                          (Hypergraph.cell rest c).Hypergraph.outputs) )))
          in
          Ok (List.rev ({ device = dev; members; clbs = area; iobs = ext } :: parts))
      | None -> (
          (* Split off one device: evaluate every candidate device and keep
             the split with the best local cost efficiency (price of the
             device actually used per CLB covered), ties by cut. *)
          let candidates =
            List.filter_map
              (fun dev ->
                match try_device ~opts ~rng rest dev with
                | None -> None
                | Some st ->
                    let clbs = Partition_state.area st Partition_state.A in
                    let iobs =
                      Partition_state.terminals st Partition_state.A
                    in
                    (* Right-size: the split was shaped for [dev], but a
                       cheaper device may accept the same subcircuit. *)
                    let dev =
                      match
                        Fpga.Library.smallest_fitting library ~clbs ~iobs
                      with
                      | Some d
                        when d.Fpga.Device.price < dev.Fpga.Device.price ->
                          d
                      | _ -> dev
                    in
                    let rate =
                      dev.Fpga.Device.price /. float_of_int (max 1 clbs)
                    in
                    Some ((rate, Partition_state.cut st), (dev, st, clbs, iobs)))
              (Fpga.Library.by_efficiency library)
          in
          match
            List.sort (fun (ka, _) (kb, _) -> compare ka kb) candidates
          with
          | [] -> Error "no feasible split for the remainder"
          | (_, (dev, st, clbs, iobs)) :: _ ->
              Log.debug (fun m ->
                  m "split: %s takes %d CLBs / %d IOBs; %d CLBs remain"
                    dev.Fpga.Device.name clbs iobs
                    (Partition_state.area st Partition_state.B));
              let members_a =
                Partition_state.side_copies st Partition_state.A
              in
              let part =
                { device = dev; members = translate orig_of members_a; clbs; iobs }
              in
              let specs_b = Partition_state.side_copies st Partition_state.B in
              let rest', spec_arr = Hypergraph.induce_copies rest specs_b in
              let orig_of' =
                Array.map
                  (fun (old_c, mask) ->
                    let orig, out_map = orig_of.(old_c) in
                    let out_map' =
                      Array.of_list
                        (List.map (fun o -> out_map.(o)) (Bitvec.to_list mask))
                    in
                    (orig, out_map'))
                  spec_arr
              in
              loop rest' orig_of' (part :: parts) (guard + 1))
    end
  in
  loop hg identity [] 0


(* ------------------------------------------------------------------ *)
(* Pairwise refinement                                                *)
(* ------------------------------------------------------------------ *)

(* Re-bipartition the union of two finished parts under both device
   windows, optimising total terminal usage (eq. 2 restricted to the
   pair). Cells of other parts appear as external context, so their IOB
   counts cannot change. Returns the improved pair or [None]. *)
let refine_pair ~opts hg library (pi : part) (pj : part) =
  let masks_of p =
    let tbl = Hashtbl.create 64 in
    List.iter (fun (c, m) -> Hashtbl.replace tbl c m) p.members;
    tbl
  in
  let mi = masks_of pi and mj = masks_of pj in
  let union = Hashtbl.create 128 in
  let add tbl =
    Hashtbl.iter
      (fun c m ->
        Hashtbl.replace union c
          (Bitvec.union m (try Hashtbl.find union c with Not_found -> Bitvec.empty)))
      tbl
  in
  add mi;
  add mj;
  let specs =
    Hashtbl.fold (fun c m acc -> (c, m) :: acc) union []
    |> List.sort compare
  in
  let hu, spec_arr = Hypergraph.induce_copies hg specs in
  (* Initial assignment: part j's share of each cell sits on side B. *)
  let init k =
    let orig, um = spec_arr.(k) in
    let mask_j = try Hashtbl.find mj orig with Not_found -> Bitvec.empty in
    let bit = ref 0 and acc = ref Bitvec.empty in
    Bitvec.iter
      (fun o ->
        if Bitvec.mem o mask_j then acc := Bitvec.add !bit !acc;
        incr bit)
      um;
    !acc
  in
  let st = Partition_state.create_with_masks hu ~masks:init in
  let bounds (p : part) =
    {
      Fm.min_clbs = 1;
      max_clbs = Fpga.Device.max_clbs p.device;
      max_terminals = p.device.Fpga.Device.terminals;
    }
  in
  let cfg =
    Fm.two_device_config ~replication:opts.replication
      ~max_passes:opts.max_passes ~bounds_a:(bounds pi) ~bounds_b:(bounds pj)
      ()
  in
  let s0 = cfg.Fm.score st in
  let s1 = Fm.run_staged cfg st in
  let pen, _, _ = s1 in
  if pen <> 0 || s1 >= s0 then None
  else begin
    let translate_side side =
      Partition_state.side_copies st side
      |> List.map (fun (k, m) ->
             let orig, um = spec_arr.(k) in
             let outs = Bitvec.to_list um in
             let om =
               Bitvec.fold
                 (fun pos acc -> Bitvec.add (List.nth outs pos) acc)
                 m Bitvec.empty
             in
             (orig, om))
    in
    let rebuild side (p : part) =
      let clbs = Partition_state.area st side in
      let iobs = Partition_state.terminals st side in
      (* Keep the device unless a cheaper one now accepts the side. *)
      let device =
        match Fpga.Library.smallest_fitting ~relax_low:true library ~clbs ~iobs with
        | Some d when d.Fpga.Device.price < p.device.Fpga.Device.price -> d
        | _ -> p.device
      in
      { device; members = translate_side side; clbs; iobs }
    in
    Some (rebuild Partition_state.A pi, rebuild Partition_state.B pj)
  end

(* Refinement driver: repeatedly sweep the part pairs that share nets,
   most-connected first. *)
let refine ~opts hg library parts =
  let parts = Array.of_list parts in
  let k = Array.length parts in
  if k < 2 then Array.to_list parts
  else begin
    for _round = 1 to opts.refine_rounds do
      (* Shared-net counts per pair. *)
      let touch = Array.make hg.Hypergraph.num_nets [] in
      Array.iteri
        (fun j p ->
          List.iter
            (fun (c, m) ->
              Array.iter
                (fun n ->
                  match touch.(n) with
                  | x :: _ when x = j -> ()
                  | l -> touch.(n) <- j :: l)
                (Hypergraph.connected_nets (Hypergraph.cell hg c) ~out_mask:m))
            p.members)
        parts;
      let shared = Hashtbl.create 32 in
      Array.iter
        (fun l ->
          let l = List.sort_uniq compare l in
          List.iteri
            (fun a i ->
              List.iteri
                (fun b j ->
                  if b > a then
                    Hashtbl.replace shared (i, j)
                      (1 + try Hashtbl.find shared (i, j) with Not_found -> 0))
                l)
            l)
        touch;
      (* Most-connected pairs first; cap the sweep so refinement stays a
         small fraction of the driver's own cost on many-part results. *)
      let pairs =
        Hashtbl.fold (fun p n acc -> (n, p) :: acc) shared []
        |> List.sort (fun a b -> compare b a)
        |> List.map snd
        |> List.filteri (fun i _ -> i < 4 * k)
      in
      List.iter
        (fun (i, j) ->
          match refine_pair ~opts hg library parts.(i) parts.(j) with
          | Some (pi, pj) ->
              parts.(i) <- pi;
              parts.(j) <- pj
          | None -> ())
        pairs
    done;
    Array.to_list parts
  end

let summarize_parts hg parts =
  let placements =
    List.map
      (fun p -> { Fpga.Cost.device = p.device; clbs = p.clbs; iobs = p.iobs })
      parts
  in
  let summary = Fpga.Cost.summarize placements in
  let appearances = Hashtbl.create 64 in
  List.iter
    (fun p ->
      List.iter
        (fun (c, _) ->
          Hashtbl.replace appearances c
            (1 + try Hashtbl.find appearances c with Not_found -> 0))
        p.members)
    parts;
  let replicated =
    Hashtbl.fold (fun _ n acc -> if n > 1 then acc + 1 else acc) appearances 0
  in
  (summary, replicated, Hypergraph.num_cells hg)

let partition ?(options = default_options) ~library hg =
  let t0 = Sys.time () in
  let best = ref None in
  let feasible = ref 0 in
  for r = 0 to options.runs - 1 do
    let rng = Netlist.Rng.create (options.seed + (r * 7919)) in
    match run_once ~library ~opts:options ~rng hg with
    | Error _ -> ()
    | Ok parts ->
        incr feasible;
        let summary, replicated, total = summarize_parts hg parts in
        let key =
          (summary.Fpga.Cost.total_cost, summary.Fpga.Cost.avg_iob_utilization)
        in
        let better =
          match !best with Some (k, _) -> key < k | None -> true
        in
        if better then best := Some (key, (parts, summary, replicated, total))
  done;
  let elapsed = Sys.time () -. t0 in
  (* Pairwise refinement is applied once, to the winning run (it never
     worsens a partition, so the winner stays at least as good). *)
  let best =
    match !best with
    | Some (_, (parts, _, _, _)) when options.refine_rounds > 0 ->
        let parts = refine ~opts:options hg library parts in
        let summary, replicated, total = summarize_parts hg parts in
        Some (parts, summary, replicated, total)
    | Some (_, v) -> Some v
    | None -> None
  in
  match best with
  | None -> Error "no feasible k-way partition found in any run"
  | Some (parts, summary, replicated, total) ->
      Log.info (fun m ->
          m "best of %d runs (%d feasible): %a" options.runs !feasible
            Fpga.Cost.pp_summary summary);
      Ok
        {
          parts;
          summary;
          replicated_cells = replicated;
          total_cells = total;
          elapsed;
          runs = options.runs;
          feasible_runs = !feasible;
        }

let check hg result =
  let err fmt = Printf.ksprintf (fun s -> Error s) fmt in
  let num = Hypergraph.num_cells hg in
  (* 1. Output masks partition every cell's outputs. *)
  let seen = Array.make num Bitvec.empty in
  let overlap = ref None in
  List.iter
    (fun p ->
      List.iter
        (fun (c, m) ->
          if not (Bitvec.is_empty (Bitvec.inter seen.(c) m)) then
            overlap := Some c;
          seen.(c) <- Bitvec.union seen.(c) m)
        p.members)
    result.parts;
  match !overlap with
  | Some c -> err "cell %d: an output is driven by two parts" c
  | None -> (
      let missing = ref None in
      for c = 0 to num - 1 do
        let full =
          Bitvec.full (Array.length (Hypergraph.cell hg c).Hypergraph.outputs)
        in
        if not (Bitvec.equal seen.(c) full) then missing := Some c
      done;
      match !missing with
      | Some c -> err "cell %d: some output is driven by no part" c
      | None -> (
          (* 2. Per-part areas and terminal counts match the members, and
             fit the device. Terminals recomputed from the original
             hypergraph: a net consumes an IOB of a part iff the part
             touches it and it also lives outside the part. *)
          let net_touchers = Array.make hg.Hypergraph.num_nets [] in
          List.iteri
            (fun j p ->
              List.iter
                (fun (c, m) ->
                  Array.iter
                    (fun n ->
                      match net_touchers.(n) with
                      | k :: _ when k = j -> ()
                      | l -> net_touchers.(n) <- j :: l)
                    (Hypergraph.connected_nets (Hypergraph.cell hg c)
                       ~out_mask:m))
                p.members)
            result.parts;
          let rec check_parts j = function
            | [] -> Ok ()
            | p :: rest ->
                let clbs =
                  List.fold_left
                    (fun acc (c, _) -> acc + (Hypergraph.cell hg c).Hypergraph.area)
                    0 p.members
                in
                let iobs = ref 0 in
                Array.iteri
                  (fun n touchers ->
                    if List.mem j touchers then
                      let outside =
                        hg.Hypergraph.net_external.(n)
                        || List.exists (fun k -> k <> j) touchers
                      in
                      if outside then incr iobs)
                  net_touchers;
                if clbs <> p.clbs then
                  err "part %d: recorded %d CLBs, members sum to %d" j p.clbs
                    clbs
                else if !iobs <> p.iobs then
                  err "part %d: recorded %d IOBs, recomputed %d" j p.iobs !iobs
                else if
                  not
                    (Fpga.Device.fits ~relax_low:true p.device ~clbs
                       ~iobs:!iobs)
                then err "part %d: violates device %s" j p.device.Fpga.Device.name
                else check_parts (j + 1) rest
          in
          check_parts 0 result.parts))

let pp_result fmt r =
  Format.fprintf fmt "@[<v>%a@,replicated cells: %d / %d (%.1f%%)@,runs: %d (%d feasible), %.2fs@,"
    Fpga.Cost.pp_summary r.summary r.replicated_cells r.total_cells
    (100.0 *. float_of_int r.replicated_cells /. float_of_int (max 1 r.total_cells))
    r.runs r.feasible_runs r.elapsed;
  List.iteri
    (fun j p ->
      Format.fprintf fmt "  part %d: %-8s %4d CLBs (%3.0f%%), %3d IOBs (%3.0f%%)@,"
        j p.device.Fpga.Device.name p.clbs
        (100.0 *. Fpga.Device.clb_utilization p.device ~clbs:p.clbs)
        p.iobs
        (100.0 *. Fpga.Device.iob_utilization p.device ~iobs:p.iobs))
    r.parts;
  Format.fprintf fmt "@]"
