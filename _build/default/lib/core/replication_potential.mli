(** Replication potential (Section II of the paper).

    The replication potential [psi] of a cell counts the input pins that
    control exactly one of its outputs (eq. 4):

    {v psi = sum_i | and_{j<>i} ~A_Xj  /\  A_Xi |     (m > 1)
       psi = 0                                        (m = 1) v}

    The higher [psi], the more input nets functional replication can detach
    from a copy, hence the more nets it may remove from a cut. The
    {e threshold replication potential} [T] (eq. 6) restricts replication
    to cells with [psi >= T]; [T = 0] allows every multi-output cell and
    corresponds to the paper's maximum-replication setting. *)

val of_supports : Bitvec.t array -> int
(** [psi] from a cell's per-output adjacency vectors. *)

val of_cell : Hypergraph.cell -> int

val all : Hypergraph.t -> int array
(** Per-cell [psi]. *)

val replicable : threshold:int -> Hypergraph.cell -> bool
(** A cell may be replicated iff it has several outputs and
    [psi >= threshold]. *)

(** {1 Distribution (eq. 5, Figure 3)} *)

type distribution = {
  single_output : int;       (** cells with m = 1 (psi = 0 by definition) *)
  multi_by_psi : (int * int) list;
      (** (psi, count) for multi-output cells, ascending psi *)
  total : int;
}

val distribution : Hypergraph.t -> distribution

val max_replication_factor : distribution -> threshold:int -> int
(** [r_T] of eq. (6): the number of cells allowed to replicate at
    threshold [T] (multi-output cells with psi >= T). *)

val pp_distribution : Format.formatter -> distribution -> unit
(** Renders one circuit's bar of Figure 3: share of cells per psi value. *)
