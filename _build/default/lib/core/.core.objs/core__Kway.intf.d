lib/core/kway.mli: Bitvec Format Fpga Hypergraph Stdlib
