lib/core/bucket.mli:
