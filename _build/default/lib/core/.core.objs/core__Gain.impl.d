lib/core/gain.ml: Array Bitvec Hypergraph List Partition_state Replication_potential
