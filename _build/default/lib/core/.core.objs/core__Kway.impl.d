lib/core/kway.ml: Array Bitvec Fm Format Fpga Fun Hashtbl Hypergraph List Logs Netlist Option Partition_state Printf Sys
