lib/core/replication_potential.mli: Bitvec Format Hypergraph
