lib/core/bucket.ml: Array
