lib/core/replication_potential.ml: Array Bitvec Format Hashtbl Hypergraph List
