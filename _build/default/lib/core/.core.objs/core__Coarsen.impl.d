lib/core/coarsen.ml: Array Bitvec Fm Fun Hashtbl Hypergraph List Netlist Partition_state Printf
