lib/core/fm.mli: Hypergraph Netlist Partition_state
