lib/core/gain.mli: Bitvec Partition_state
