lib/core/coarsen.mli: Fm Hypergraph Netlist Partition_state
