lib/core/fm.ml: Array Bitvec Bucket Fun Gain Hypergraph List Netlist Option Partition_state
