let of_supports supports =
  let m = Array.length supports in
  if m <= 1 then 0
  else begin
    (* An input contributes iff it appears in exactly one adjacency
       vector. *)
    let psi = ref 0 in
    Array.iteri
      (fun i a_i ->
        let others =
          Array.to_list supports
          |> List.filteri (fun j _ -> j <> i)
          |> List.fold_left Bitvec.union Bitvec.empty
        in
        psi := !psi + Bitvec.norm (Bitvec.diff a_i others))
      supports;
    !psi
  end

let of_cell (c : Hypergraph.cell) = of_supports c.Hypergraph.supports

let all h = Array.init (Hypergraph.num_cells h) (fun i -> of_cell (Hypergraph.cell h i))

let replicable ~threshold (c : Hypergraph.cell) =
  Array.length c.Hypergraph.outputs > 1 && of_cell c >= threshold

type distribution = {
  single_output : int;
  multi_by_psi : (int * int) list;
  total : int;
}

let distribution h =
  let counts = Hashtbl.create 16 in
  let single = ref 0 in
  let total = Hypergraph.num_cells h in
  for i = 0 to total - 1 do
    let c = Hypergraph.cell h i in
    if Array.length c.Hypergraph.outputs <= 1 then incr single
    else begin
      let psi = of_cell c in
      Hashtbl.replace counts psi
        (1 + try Hashtbl.find counts psi with Not_found -> 0)
    end
  done;
  let multi =
    Hashtbl.fold (fun psi n acc -> (psi, n) :: acc) counts []
    |> List.sort compare
  in
  { single_output = !single; multi_by_psi = multi; total }

let max_replication_factor d ~threshold =
  List.fold_left
    (fun acc (psi, n) -> if psi >= threshold then acc + n else acc)
    0 d.multi_by_psi

let pp_distribution fmt d =
  let pct n = 100.0 *. float_of_int n /. float_of_int (max 1 d.total) in
  Format.fprintf fmt "@[<v>single-output: %5.1f%%@," (pct d.single_output);
  List.iter
    (fun (psi, n) -> Format.fprintf fmt "psi = %2d     : %5.1f%%@," psi (pct n))
    d.multi_by_psi;
  Format.fprintf fmt "@]"
