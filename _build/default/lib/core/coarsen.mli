(** Multilevel bipartitioning (extension).

    The paper's 1994 flat F-M struggles on the largest circuits; the
    multilevel scheme that later became standard (coarsen by heavy-edge
    matching, partition the small graph, project and refine level by
    level) is implemented here as an extension and ablation baseline. It
    composes with the paper's contribution: the multilevel phase produces
    a high-quality {e plain} bipartition, and functional replication then
    runs on the fine graph as usual ({!Fm.run_staged}).

    Coarse cells are clusters: their area is the summed CLB count and
    their per-output supports are widened to all inputs (clusters are
    never replicated — replication happens only at the finest level, where
    the real adjacency vectors live). *)

val coarsen :
  rng:Netlist.Rng.t -> Hypergraph.t -> Hypergraph.t * int array
(** One level of heavy-edge matching: each cell merges with its most
    connected unmatched neighbour (connectivity = sum over shared nets of
    [1 / (pins - 1)]). Returns the coarse hypergraph and the fine-to-coarse
    cell map. The coarse graph has at least half as many... at most the
    same number of cells; callers should stop when the reduction stalls. *)

val multilevel_init :
  ?coarsest:int ->
  ?max_levels:int ->
  rng:Netlist.Rng.t ->
  Fm.config ->
  Hypergraph.t ->
  Partition_state.t
(** Build an initial bipartition of the fine hypergraph by the multilevel
    scheme: coarsen until at most [coarsest] cells (default 150) or
    [max_levels] (default 12) levels, random-partition and F-M the
    coarsest graph, then project and F-M-refine upward. The given config's
    [score]/[area_ok] are reused at every level (areas are preserved by
    the cluster weights); replication is disabled during the multilevel
    phase regardless of the config. The returned state belongs to the
    original hypergraph and is ready for {!Fm.run} or {!Fm.run_staged}. *)
