type t = Device.t array

let make devices =
  match devices with
  | [] -> invalid_arg "Library.make: empty library"
  | _ ->
      let arr = Array.of_list devices in
      let names = List.map (fun d -> d.Device.name) devices in
      let sorted_names = List.sort_uniq compare names in
      if List.length sorted_names <> List.length names then
        invalid_arg "Library.make: duplicate device names";
      Array.sort
        (fun a b -> compare a.Device.capacity b.Device.capacity)
        arr;
      arr

(* Capacities and terminal counts are the Xilinx XC3000 family data used by
   the paper; prices are reconstructed (see .mli). Utilization windows: the
   paper reports partitions at 70-90% CLB utilization, so feasible uses must
   land in [0.50, 0.95] of capacity except on the smallest device, which
   also mops up remainders. *)
let xc3000 =
  make
    [
      Device.make ~name:"XC3020" ~capacity:64 ~terminals:64 ~price:100.0
        ~util_low:0.0 ~util_high:0.95 ();
      Device.make ~name:"XC3030" ~capacity:100 ~terminals:80 ~price:150.0
        ~util_low:0.50 ~util_high:0.95 ();
      Device.make ~name:"XC3042" ~capacity:144 ~terminals:96 ~price:210.0
        ~util_low:0.50 ~util_high:0.95 ();
      Device.make ~name:"XC3064" ~capacity:224 ~terminals:120 ~price:315.0
        ~util_low:0.50 ~util_high:0.95 ();
      Device.make ~name:"XC3090" ~capacity:320 ~terminals:144 ~price:435.0
        ~util_low:0.50 ~util_high:0.95 ();
    ]

let xc4000 =
  make
    [
      Device.make ~name:"XC4003" ~capacity:100 ~terminals:80 ~price:160.0
        ~util_low:0.0 ~util_high:0.95 ();
      Device.make ~name:"XC4005" ~capacity:196 ~terminals:112 ~price:290.0
        ~util_low:0.50 ~util_high:0.95 ();
      Device.make ~name:"XC4008" ~capacity:324 ~terminals:144 ~price:450.0
        ~util_low:0.50 ~util_high:0.95 ();
      Device.make ~name:"XC4010" ~capacity:400 ~terminals:160 ~price:540.0
        ~util_low:0.50 ~util_high:0.95 ();
      Device.make ~name:"XC4013" ~capacity:576 ~terminals:192 ~price:750.0
        ~util_low:0.50 ~util_high:0.95 ();
    ]

let devices t = Array.to_list t

let find t name =
  Array.find_opt (fun d -> String.equal d.Device.name name) t

let smallest_fitting ?relax_low t ~clbs ~iobs =
  Array.to_list t
  |> List.filter (fun d -> Device.fits ?relax_low d ~clbs ~iobs)
  |> List.sort (fun a b ->
         match compare a.Device.price b.Device.price with
         | 0 -> compare a.Device.capacity b.Device.capacity
         | c -> c)
  |> function
  | [] -> None
  | d :: _ -> Some d

let largest t = t.(Array.length t - 1)

let by_efficiency t =
  Array.to_list t
  |> List.sort (fun a b ->
         compare (Device.price_per_clb a) (Device.price_per_clb b))

let min_feasible_cost t ~clbs =
  let cheapest =
    Array.fold_left (fun acc d -> min acc d.Device.price) infinity t
  in
  let best_rate =
    Array.fold_left (fun acc d -> min acc (Device.price_per_clb d)) infinity t
  in
  Float.max cheapest (best_rate *. float_of_int clbs)

let pp fmt t =
  Format.fprintf fmt "@[<v>%-8s %5s %5s %7s %5s %5s %9s@,"
    "Device" "c_i" "t_i" "d_i" "l_i" "u_i" "d_i/c_i";
  Array.iter
    (fun d ->
      Format.fprintf fmt "%-8s %5d %5d %7.0f %5.2f %5.2f %9.2f@,"
        d.Device.name d.Device.capacity d.Device.terminals d.Device.price
        d.Device.util_low d.Device.util_high (Device.price_per_clb d))
    t;
  Format.fprintf fmt "@]"
