(** FPGA device types.

    A device [D_i = (c_i, t_i, d_i, l_i, u_i)] as in Table I of the paper:
    CLB capacity, terminal (IOB) count, unit price, and lower/upper bounds
    on CLB utilization for a feasible assignment. *)

type t = {
  name : string;
  capacity : int;     (** [c_i]: configurable logic blocks *)
  terminals : int;    (** [t_i]: I/O blocks *)
  price : float;      (** [d_i]: unit cost (normalised dollars) *)
  util_low : float;   (** [l_i]: minimum CLB utilization of a feasible use *)
  util_high : float;  (** [u_i]: maximum CLB utilization *)
}

val make :
  name:string -> capacity:int -> terminals:int -> price:float ->
  ?util_low:float -> ?util_high:float -> unit -> t
(** Defaults: [util_low = 0.0], [util_high = 1.0]. Raises
    [Invalid_argument] on non-positive capacity/terminals/price or bounds
    outside [0 <= l <= u <= 1]. *)

val min_clbs : t -> int
(** Smallest CLB count satisfying the lower utilization bound
    ([ceil (l_i * c_i)]). *)

val max_clbs : t -> int
(** Largest CLB count satisfying the upper bound ([floor (u_i * c_i)]). *)

val fits : ?relax_low:bool -> t -> clbs:int -> iobs:int -> bool
(** Feasibility of one partition on this device: CLB count within the
    utilization window and IOB count within the terminal budget.
    [relax_low] ignores the lower bound (used for the final remainder
    partition of a k-way decomposition). *)

val price_per_clb : t -> float

val clb_utilization : t -> clbs:int -> float
val iob_utilization : t -> iobs:int -> float

val pp : Format.formatter -> t -> unit
