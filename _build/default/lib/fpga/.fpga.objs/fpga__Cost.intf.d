lib/fpga/cost.mli: Device Format
