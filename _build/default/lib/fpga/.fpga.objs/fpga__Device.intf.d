lib/fpga/device.mli: Format
