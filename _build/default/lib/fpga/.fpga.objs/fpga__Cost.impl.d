lib/fpga/cost.ml: Device Format Fun Hashtbl List Printf String
