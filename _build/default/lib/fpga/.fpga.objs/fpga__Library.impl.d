lib/fpga/library.ml: Array Device Float Format List String
