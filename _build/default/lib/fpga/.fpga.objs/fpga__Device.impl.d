lib/fpga/device.ml: Format
