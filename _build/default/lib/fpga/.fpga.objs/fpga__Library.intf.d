lib/fpga/library.mli: Device Format
