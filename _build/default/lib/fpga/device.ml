type t = {
  name : string;
  capacity : int;
  terminals : int;
  price : float;
  util_low : float;
  util_high : float;
}

let make ~name ~capacity ~terminals ~price ?(util_low = 0.0) ?(util_high = 1.0)
    () =
  if capacity <= 0 then invalid_arg "Device.make: capacity must be positive";
  if terminals <= 0 then invalid_arg "Device.make: terminals must be positive";
  if price <= 0.0 then invalid_arg "Device.make: price must be positive";
  if not (0.0 <= util_low && util_low <= util_high && util_high <= 1.0) then
    invalid_arg "Device.make: need 0 <= util_low <= util_high <= 1";
  { name; capacity; terminals; price; util_low; util_high }

let min_clbs d = int_of_float (ceil (d.util_low *. float_of_int d.capacity))
let max_clbs d = int_of_float (floor (d.util_high *. float_of_int d.capacity))

let fits ?(relax_low = false) d ~clbs ~iobs =
  clbs <= max_clbs d
  && (relax_low || clbs >= min_clbs d)
  && clbs >= 1
  && iobs <= d.terminals

let price_per_clb d = d.price /. float_of_int d.capacity

let clb_utilization d ~clbs = float_of_int clbs /. float_of_int d.capacity
let iob_utilization d ~iobs = float_of_int iobs /. float_of_int d.terminals

let pp fmt d =
  Format.fprintf fmt "%s (%d CLB, %d IOB, $%.0f, util %.2f-%.2f)" d.name
    d.capacity d.terminals d.price d.util_low d.util_high
