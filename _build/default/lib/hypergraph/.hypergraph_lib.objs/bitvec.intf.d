lib/hypergraph/bitvec.mli: Format
