lib/hypergraph/partition_state.mli: Bitvec Hypergraph
