lib/hypergraph/hypergraph.mli: Bitvec Format
