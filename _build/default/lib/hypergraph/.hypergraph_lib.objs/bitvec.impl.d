lib/hypergraph/bitvec.ml: Format List Sys
