lib/hypergraph/partition_state.ml: Array Bitvec Hypergraph Printf
