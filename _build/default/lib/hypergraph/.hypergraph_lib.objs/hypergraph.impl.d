lib/hypergraph/hypergraph.ml: Array Bitvec Format Hashtbl List Netlist Printf
