type t = int

let max_width = Sys.int_size - 1

let empty = 0

let full w =
  if w < 0 || w > max_width then invalid_arg "Bitvec.full: bad width";
  if w = 0 then 0 else (1 lsl w) - 1

let singleton i = 1 lsl i
let mem i v = v land (1 lsl i) <> 0
let add i v = v lor (1 lsl i)
let remove i v = v land lnot (1 lsl i)
let union = ( lor )
let inter = ( land )
let diff a b = a land lnot b
let complement w v = full w land lnot v

let norm v =
  (* Branch-free popcount on the 62 relevant bits. *)
  let v = v - ((v lsr 1) land 0x5555555555555555) in
  let v = (v land 0x3333333333333333) + ((v lsr 2) land 0x3333333333333333) in
  let v = (v + (v lsr 4)) land 0x0F0F0F0F0F0F0F0F in
  (v * 0x0101010101010101) lsr 56

let is_empty v = v = 0
let subset a b = a land lnot b = 0
let equal (a : t) (b : t) = a = b

let iter f v =
  let rest = ref v in
  while !rest <> 0 do
    let bit = !rest land - !rest in
    (* index of lowest set bit *)
    let rec index b i = if b = 1 then i else index (b lsr 1) (i + 1) in
    f (index bit 0);
    rest := !rest lxor bit
  done

let fold f v acc =
  let acc = ref acc in
  iter (fun i -> acc := f i !acc) v;
  !acc

let to_list v = List.rev (fold (fun i l -> i :: l) v [])
let of_list l = List.fold_left (fun v i -> add i v) empty l

let pp ~width fmt v =
  Format.pp_print_char fmt '[';
  for i = 0 to width - 1 do
    if i > 0 then Format.pp_print_char fmt ' ';
    Format.pp_print_char fmt (if mem i v then '1' else '0')
  done;
  Format.pp_print_char fmt ']'
