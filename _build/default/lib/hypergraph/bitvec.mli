(** Fixed-width bit vectors packed in a native [int].

    The paper's adjacency vectors (which input pins an output functionally
    depends on) are at most a handful of bits after XC3000 mapping — a CLB
    has five input pins — so a native int (62 usable bits) is ample. All
    operations take the vector width explicitly; bits at positions [>=
    width] are always zero. *)

type t = int

val max_width : int
(** 62 on a 64-bit platform. *)

val empty : t

val full : int -> t
(** [full w] has bits [0..w-1] set. Raises [Invalid_argument] if [w < 0] or
    [w > max_width]. *)

val singleton : int -> t
val mem : int -> t -> bool
val add : int -> t -> t
val remove : int -> t -> t
val union : t -> t -> t
val inter : t -> t -> t
val diff : t -> t -> t
val complement : int -> t -> t
(** [complement w v] flips [v] within width [w] — the paper's
    [Ā] operation on adjacency vectors. *)

val norm : t -> int
(** Population count — the paper's [|A|] norm. *)

val is_empty : t -> bool
val subset : t -> t -> bool
val equal : t -> t -> bool

val iter : (int -> unit) -> t -> unit
(** Iterate over set bit positions, ascending. *)

val fold : (int -> 'a -> 'a) -> t -> 'a -> 'a
val to_list : t -> int list
val of_list : int list -> t
val pp : width:int -> Format.formatter -> t -> unit
(** Renders like the paper's column vectors, LSB first: [\[1 0 1\]]. *)
