(** Materialise a k-way partition back into a mapped netlist.

    Functional replication leaves some cells present in several devices,
    each copy driving a subset of the original outputs and reading only the
    nets those outputs depend on. [to_mapped] rebuilds the full multi-FPGA
    system as one {!Techmap.Mapped.t} — one CLB per copy — so the result
    can be simulated and compared against the original circuit. This is
    the strongest soundness check in the repository: it proves end-to-end
    that partitioning with functional replication preserves the circuit's
    function (combinational and sequential). *)

val to_mapped : Techmap.Mapped.t -> Core.Kway.result -> Techmap.Mapped.t
(** [to_mapped m r] expands result [r] (obtained on
    [Techmap.Mapper.to_hypergraph m]) over the netlist [m]. CLB names gain
    an [@p<i>] suffix identifying their device. Raises [Invalid_argument]
    if the result does not cover [m]'s cells. *)

val verify : Netlist.Circuit.t -> Techmap.Mapped.t -> Core.Kway.result ->
  (unit, string) result
(** Expand and check: the expanded netlist must validate and be
    functionally equivalent to the source circuit on random stimulus. *)
