type row = {
  name : string;
  clbs : int;
  iobs : int;
  dffs : int;
  nets : int;
  pins : int;
}

let run (e : Suite.entry) =
  let s = Techmap.Mapped.stats (Lazy.force e.Suite.mapped) in
  {
    name = e.Suite.display;
    clbs = s.Techmap.Mapped.clbs;
    iobs = s.Techmap.Mapped.iobs;
    dffs = s.Techmap.Mapped.dffs;
    nets = s.Techmap.Mapped.nets;
    pins = s.Techmap.Mapped.pins;
  }

let run_all () = List.map run (Suite.all ())

let pp fmt rows =
  Format.fprintf fmt "@[<v>%-10s %7s %7s %7s %7s %7s@," "Circuit" "#CLBs"
    "#IOBs" "#DFF" "#NETs" "#PINs";
  List.iter
    (fun r ->
      Format.fprintf fmt "%-10s %7d %7d %7d %7d %7d@," r.name r.clbs r.iobs
        r.dffs r.nets r.pins)
    rows;
  Format.fprintf fmt "@]"
