(** Table II — benchmark circuit characteristics after XC3000 mapping:
    #CLBs, #IOBs, #DFF, #NETs, #PINs per circuit. *)

type row = {
  name : string;
  clbs : int;
  iobs : int;
  dffs : int;
  nets : int;
  pins : int;
}

val run : Suite.entry -> row
val run_all : unit -> row list
val pp : Format.formatter -> row list -> unit
