lib/experiments/table2.mli: Format Suite
