lib/experiments/table3.mli: Format Suite
