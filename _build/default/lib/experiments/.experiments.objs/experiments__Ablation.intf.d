lib/experiments/ablation.mli: Format Suite
