lib/experiments/timing_eval.ml: Array Core Expand Float Format Fpga Hypergraph Lazy List Suite Techmap
