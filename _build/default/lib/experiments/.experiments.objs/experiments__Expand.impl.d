lib/experiments/expand.ml: Array Bitvec Core Hashtbl List Printf Techmap
