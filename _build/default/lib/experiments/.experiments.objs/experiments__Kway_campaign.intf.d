lib/experiments/kway_campaign.mli: Format Fpga Suite
