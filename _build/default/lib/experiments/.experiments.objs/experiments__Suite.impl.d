lib/experiments/suite.ml: Hypergraph Lazy List Netlist String Techmap
