lib/experiments/suite.mli: Hypergraph Lazy Netlist Techmap
