lib/experiments/fig3.ml: Core Format Lazy List Suite
