lib/experiments/expand.mli: Core Netlist Techmap
