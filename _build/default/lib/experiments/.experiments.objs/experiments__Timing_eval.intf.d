lib/experiments/timing_eval.mli: Core Format Hypergraph Suite Techmap
