lib/experiments/kway_campaign.ml: Core Float Format Fpga Lazy List Printf Suite Sys
