lib/experiments/table3.ml: Core Format Hypergraph Lazy List Netlist Suite Sys
