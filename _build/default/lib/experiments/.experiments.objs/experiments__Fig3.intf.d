lib/experiments/fig3.mli: Format Suite
