lib/experiments/table2.ml: Format Lazy List Suite Techmap
