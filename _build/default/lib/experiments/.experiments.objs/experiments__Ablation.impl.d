lib/experiments/ablation.ml: Array Core Format Fun Hypergraph Lazy List Netlist Partition_state Suite Techmap
