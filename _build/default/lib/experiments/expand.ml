let to_mapped (m : Techmap.Mapped.t) (r : Core.Kway.result) =
  let num_cells = Array.length m.Techmap.Mapped.clbs in
  let clbs = ref [] in
  let covered = Array.make num_cells Bitvec.empty in
  List.iteri
    (fun part_idx part ->
      List.iter
        (fun (cell, mask) ->
          if cell < 0 || cell >= num_cells then
            invalid_arg "Expand.to_mapped: cell id out of range";
          covered.(cell) <- Bitvec.union covered.(cell) mask;
          let clb = m.Techmap.Mapped.clbs.(cell) in
          (* Input pins needed by the outputs this copy carries. *)
          let in_mask =
            Bitvec.fold
              (fun o acc -> Bitvec.union acc (Techmap.Mapped.support_mask clb o))
              mask Bitvec.empty
          in
          let old_pins = Bitvec.to_list in_mask in
          let new_index = Hashtbl.create 8 in
          List.iteri (fun k p -> Hashtbl.add new_index p k) old_pins;
          let inputs =
            Array.of_list
              (List.map (fun p -> clb.Techmap.Mapped.inputs.(p)) old_pins)
          in
          let outputs =
            Bitvec.to_list mask
            |> List.map (fun o ->
                   let out = clb.Techmap.Mapped.outputs.(o) in
                   {
                     out with
                     Techmap.Mapped.pins =
                       Array.map
                         (fun p -> Hashtbl.find new_index p)
                         out.Techmap.Mapped.pins;
                   })
            |> Array.of_list
          in
          clbs :=
            {
              Techmap.Mapped.name =
                Printf.sprintf "%s@p%d" clb.Techmap.Mapped.name part_idx;
              inputs;
              outputs;
            }
            :: !clbs)
        part.Core.Kway.members)
    r.Core.Kway.parts;
  Array.iteri
    (fun cell mask ->
      let full =
        Bitvec.full (Array.length m.Techmap.Mapped.clbs.(cell).Techmap.Mapped.outputs)
      in
      if not (Bitvec.equal mask full) then
        invalid_arg "Expand.to_mapped: partition does not cover every output")
    covered;
  { m with Techmap.Mapped.clbs = Array.of_list (List.rev !clbs) }

let verify circuit m r =
  match to_mapped m r with
  | exception Invalid_argument msg -> Error msg
  | expanded -> (
      match Techmap.Mapped.validate expanded with
      | Error msg -> Error ("expanded netlist invalid: " ^ msg)
      | Ok () ->
          if Techmap.Mapped.equivalent circuit expanded then Ok ()
          else Error "expanded netlist is not equivalent to the source")
