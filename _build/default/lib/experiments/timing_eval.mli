(** Timing evaluation of k-way partitions (extension experiment).

    The paper motivates multi-FPGA partitioning quality partly by
    performance. This runner makes that concrete: expand a partition
    (replicas included) into a mapped netlist, mark every net that leaves
    a device (or comes from a chip pad) as board-delayed, and run static
    timing. Functional replication removes board hops from paths, so its
    interconnect gains should show up as critical-delay gains. *)

val crossing_nets : Hypergraph.t -> Core.Kway.result -> bool array
(** Per net of the original hypergraph: does it cross a device boundary
    (touched by several parts) or reach a chip pad? *)

val of_result :
  ?model:Techmap.Timing.delay_model ->
  Techmap.Mapped.t ->
  Core.Kway.result ->
  Techmap.Timing.report
(** Expand [result] over the mapped netlist and analyze. *)

type row = {
  name : string;
  baseline_delay : float;
  baseline_crossings : int;
  repl_delay : float;
  repl_crossings : int;
}

val run : ?runs:int -> ?seed:int -> ?threshold:int -> Suite.entry -> row option
(** Partition with and without replication (threshold defaults to 1) and
    compare critical delays; [None] when either partitioning fails. *)

val pp : Format.formatter -> row list -> unit
