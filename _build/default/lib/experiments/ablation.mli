(** Ablations of the design choices DESIGN.md calls out.

    1. {e Functional vs traditional replication} (Section II's motivating
       comparison, Figs. 1 and 4): the same staged F-M with the replica
       connection rule switched between the paper's adjacency-vector model
       and the all-inputs Kring-Newton model. The paper's claim to verify:
       traditional replication buys little because mapped cells have many
       inputs per output, while functional replication keeps winning.

    2. {e CLB output pairing}: mapping with pairing disabled produces only
       single-output cells, which by eq. (4) all have psi = 0 — functional
       replication then degenerates to no replication. This isolates how
       much of the method's power comes from the multi-output cells the
       mapper creates. *)

type repl_row = {
  name : string;
  plain_best : int;        (** staged F-M, no replication *)
  traditional_best : int;  (** + traditional replication, T = 0 *)
  functional_best : int;   (** + functional replication, T = 0 *)
}

val replication_model : ?runs:int -> ?seed:int -> Suite.entry -> repl_row
val pp_replication_model : Format.formatter -> repl_row list -> unit

type pairing_row = {
  name : string;
  paired_clbs : int;
  unpaired_clbs : int;
  paired_r0 : int;          (** replicable cells (r_0) with pairing *)
  unpaired_r0 : int;        (** ... without pairing (always 0) *)
  paired_plain_cut : int;   (** no-replication cut on the paired mapping *)
  paired_repl_cut : int;    (** functional-replication cut, paired mapping *)
  unpaired_plain_cut : int; (** no-replication cut, unpaired mapping *)
  unpaired_repl_cut : int;  (** replication changes nothing here: r_0 = 0 *)
}

val pairing : ?runs:int -> ?seed:int -> Suite.entry -> pairing_row
val pp_pairing : Format.formatter -> pairing_row list -> unit

(** {1 Multilevel initialisation (extension C)}

    Flat F-M (the paper's 1994 setting) versus the multilevel
    coarsen-partition-refine scheme that later became standard
    ({!Core.Coarsen}), with and without functional replication on top. *)

type multilevel_row = {
  name : string;
  flat_plain : int;
  ml_plain : int;
  flat_repl : int;
  ml_repl : int;
}

val multilevel : ?runs:int -> ?seed:int -> Suite.entry -> multilevel_row
val pp_multilevel : Format.formatter -> multilevel_row list -> unit
