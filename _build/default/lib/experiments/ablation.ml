type repl_row = {
  name : string;
  plain_best : int;
  traditional_best : int;
  functional_best : int;
}

let best_cut ~runs ~seed ~model ~replication h =
  let total = Hypergraph.total_area h in
  let cfg = Core.Fm.balance_config ~replication ~total_area:total () in
  let best = ref max_int in
  for r = 0 to runs - 1 do
    let rng = Netlist.Rng.create (seed + (r * 65537)) in
    let n = Hypergraph.num_cells h in
    let order = Array.init n Fun.id in
    Netlist.Rng.shuffle rng order;
    let on_b = Array.make n false in
    Array.iteri (fun k c -> if k < n / 2 then on_b.(c) <- true) order;
    let st = Partition_state.create ~model h ~init_on_b:(fun c -> on_b.(c)) in
    let _, cut, _ = Core.Fm.run_staged cfg st in
    best := min !best cut
  done;
  !best

let replication_model ?(runs = 10) ?(seed = 7) (e : Suite.entry) =
  let h = Lazy.force e.Suite.hypergraph in
  {
    name = e.Suite.display;
    plain_best =
      best_cut ~runs ~seed ~model:Partition_state.Functional ~replication:`None
        h;
    traditional_best =
      best_cut ~runs ~seed ~model:Partition_state.Traditional
        ~replication:(`Functional 0) h;
    functional_best =
      best_cut ~runs ~seed ~model:Partition_state.Functional
        ~replication:(`Functional 0) h;
  }

let pp_replication_model fmt rows =
  Format.fprintf fmt "@[<v>%-10s | %9s | %12s %6s | %12s %6s@," "Circuit"
    "no repl." "traditional" "red." "functional" "red.";
  let red base v =
    if base = 0 then 0.0
    else 100.0 *. float_of_int (base - v) /. float_of_int base
  in
  List.iter
    (fun r ->
      Format.fprintf fmt "%-10s | %9d | %12d %5.1f%% | %12d %5.1f%%@," r.name
        r.plain_best r.traditional_best
        (red r.plain_best r.traditional_best)
        r.functional_best
        (red r.plain_best r.functional_best))
    rows;
  Format.fprintf fmt
    "(best equal-halves cut; traditional replication connects replicas to \
     every input net, functional replication only to the migrated output's \
     adjacency vector)@]"

type pairing_row = {
  name : string;
  paired_clbs : int;
  unpaired_clbs : int;
  paired_r0 : int;
  unpaired_r0 : int;
  paired_plain_cut : int;
  paired_repl_cut : int;
  unpaired_plain_cut : int;
  unpaired_repl_cut : int;
}

let pairing ?(runs = 10) ?(seed = 7) (e : Suite.entry) =
  let circuit = Lazy.force e.Suite.circuit in
  let paired = Lazy.force e.Suite.hypergraph in
  let unpaired =
    Techmap.Mapper.to_hypergraph
      (Techmap.Mapper.map
         ~options:{ Techmap.Mapper.default_options with pair = false }
         circuit)
  in
  let r0 h =
    Core.Replication_potential.max_replication_factor
      (Core.Replication_potential.distribution h)
      ~threshold:0
  in
  let cut replication h =
    best_cut ~runs ~seed ~model:Partition_state.Functional ~replication h
  in
  {
    name = e.Suite.display;
    paired_clbs = Hypergraph.total_area paired;
    unpaired_clbs = Hypergraph.total_area unpaired;
    paired_r0 = r0 paired;
    unpaired_r0 = r0 unpaired;
    paired_plain_cut = cut `None paired;
    paired_repl_cut = cut (`Functional 0) paired;
    unpaired_plain_cut = cut `None unpaired;
    unpaired_repl_cut = cut (`Functional 0) unpaired;
  }

let pp_pairing fmt rows =
  Format.fprintf fmt
    "@[<v>%-10s | %6s %6s | %6s %6s | %6s %6s %6s | %6s %6s %6s@," "Circuit"
    "CLBs+" "CLBs-" "r_0+" "r_0-" "cut+" "repl+" "gain" "cut-" "repl-" "gain";
  let gain base v =
    if base = 0 then 0.0
    else 100.0 *. float_of_int (base - v) /. float_of_int base
  in
  List.iter
    (fun r ->
      Format.fprintf fmt
        "%-10s | %6d %6d | %6d %6d | %6d %6d %5.1f%% | %6d %6d %5.1f%%@,"
        r.name r.paired_clbs r.unpaired_clbs r.paired_r0 r.unpaired_r0
        r.paired_plain_cut r.paired_repl_cut
        (gain r.paired_plain_cut r.paired_repl_cut)
        r.unpaired_plain_cut r.unpaired_repl_cut
        (gain r.unpaired_plain_cut r.unpaired_repl_cut))
    rows;
  Format.fprintf fmt
    "(+ = CLB output pairing on, - = off; r_0 = cells eligible for \
     replication; gain = cut reduction from enabling functional \
     replication. Without pairing every cell is single-output, so \
     replication has nothing to work with.)@]"

type multilevel_row = {
  name : string;
  flat_plain : int;
  ml_plain : int;
  flat_repl : int;
  ml_repl : int;
}

let multilevel ?(runs = 5) ?(seed = 7) (e : Suite.entry) =
  let h = Lazy.force e.Suite.hypergraph in
  let total = Hypergraph.total_area h in
  let plain_cfg = Core.Fm.balance_config ~total_area:total () in
  let repl_cfg =
    Core.Fm.balance_config ~replication:(`Functional 0) ~total_area:total ()
  in
  let best init_and_run =
    let best = ref max_int in
    for r = 0 to runs - 1 do
      best := min !best (init_and_run (Netlist.Rng.create (seed + (r * 65537))))
    done;
    !best
  in
  let flat cfg runner rng =
    let st = Core.Fm.random_state rng h in
    let _, cut, _ = runner cfg st in
    cut
  in
  let ml cfg runner rng =
    let st = Core.Coarsen.multilevel_init ~rng cfg h in
    let _, cut, _ = runner cfg st in
    cut
  in
  {
    name = e.Suite.display;
    flat_plain = best (flat plain_cfg Core.Fm.run);
    ml_plain = best (ml plain_cfg Core.Fm.run);
    flat_repl = best (flat repl_cfg Core.Fm.run_staged);
    ml_repl = best (ml repl_cfg Core.Fm.run_staged);
  }

let pp_multilevel fmt rows =
  Format.fprintf fmt "@[<v>%-10s | %9s %9s %6s | %9s %9s@," "Circuit"
    "flat" "multilvl" "red." "flat+rep" "multi+rep";
  List.iter
    (fun r ->
      let red =
        if r.flat_plain = 0 then 0.0
        else
          100.0
          *. float_of_int (r.flat_plain - r.ml_plain)
          /. float_of_int r.flat_plain
      in
      Format.fprintf fmt "%-10s | %9d %9d %5.1f%% | %9d %9d@," r.name
        r.flat_plain r.ml_plain red r.flat_repl r.ml_repl)
    rows;
  Format.fprintf fmt
    "(best equal-halves cut over the multi-start; multilevel = heavy-edge \
     coarsening + projected refinement as the initial solution. Functional \
     replication runs on the finest level in both columns.)@]"
