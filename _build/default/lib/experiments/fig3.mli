(** Figure 3 — distribution of mapped cells over the replication potential
    psi, per circuit. The paper's observation to reproduce: slightly under
    half of the cells are single-output (psi = 0 by definition), a small
    share of multi-output cells have psi = 0, and the rest have psi >= 1. *)

type row = {
  name : string;
  total_cells : int;
  pct_single_output : float;
  pct_multi_psi0 : float;
  by_psi : (int * float) list;  (** psi >= 1 buckets, percentage of cells *)
}

val run : Suite.entry -> row
val run_all : unit -> row list
val pp : Format.formatter -> row list -> unit
