type row = {
  name : string;
  total_cells : int;
  pct_single_output : float;
  pct_multi_psi0 : float;
  by_psi : (int * float) list;
}

let run (e : Suite.entry) =
  let h = Lazy.force e.Suite.hypergraph in
  let d = Core.Replication_potential.distribution h in
  let total = float_of_int (max 1 d.Core.Replication_potential.total) in
  let pct n = 100.0 *. float_of_int n /. total in
  let psi0 =
    match List.assoc_opt 0 d.Core.Replication_potential.multi_by_psi with
    | Some n -> n
    | None -> 0
  in
  {
    name = e.Suite.display;
    total_cells = d.Core.Replication_potential.total;
    pct_single_output = pct d.Core.Replication_potential.single_output;
    pct_multi_psi0 = pct psi0;
    by_psi =
      List.filter_map
        (fun (psi, n) -> if psi >= 1 then Some (psi, pct n) else None)
        d.Core.Replication_potential.multi_by_psi;
  }

let run_all () = List.map run (Suite.all ())

let pp fmt rows =
  (* Columns: single-output, multi psi=0, psi buckets 1..9, psi >= 10. *)
  Format.fprintf fmt "@[<v>%-10s %6s | %5s %5s" "Circuit" "cells" "1-out"
    "psi0";
  for psi = 1 to 9 do
    Format.fprintf fmt " %5d" psi
  done;
  Format.fprintf fmt "  >=10@,";
  List.iter
    (fun r ->
      Format.fprintf fmt "%-10s %6d | %5.1f %5.1f" r.name r.total_cells
        r.pct_single_output r.pct_multi_psi0;
      for psi = 1 to 9 do
        let v = try List.assoc psi r.by_psi with Not_found -> 0.0 in
        Format.fprintf fmt " %5.1f" v
      done;
      let tail =
        List.fold_left
          (fun acc (psi, v) -> if psi >= 10 then acc +. v else acc)
          0.0 r.by_psi
      in
      Format.fprintf fmt " %5.1f@," tail)
    rows;
  Format.fprintf fmt "(percent of all mapped cells; 1-out = single-output \
                      cells, psi0 = multi-output cells with psi = 0)@]"
