(* Quickstart: the full flow on a circuit small enough to read.

   Builds a 4-bit ripple adder, maps it into XC3000 CLBs, inspects the
   multi-output cells functional replication feeds on, bipartitions it, and
   finally places it onto devices from the paper's library.

   Run with: dune exec examples/quickstart.exe *)

let () =
  (* 1. A gate-level circuit. Circuits can be built programmatically (as
     here or via Netlist.Generator) or parsed from ISCAS .bench text. *)
  let adder = Netlist.Generator.ripple_adder ~bits:4 () in
  Format.printf "circuit:  %a@." Netlist.Circuit.pp_summary adder;

  (* 2. Technology mapping: decompose -> 4-LUT covering -> CLB packing.
     The result is functionally checked against the source. *)
  let mapped = Techmap.Mapper.map adder in
  assert (Techmap.Mapped.equivalent adder mapped);
  Format.printf "mapped:   %a@." Techmap.Mapped.pp_stats
    (Techmap.Mapped.stats mapped);

  (* 3. The partitioner's view: a hypergraph whose cells carry one
     adjacency vector per output — which input pins that output depends
     on. Cells where some input feeds only one output have replication
     potential psi > 0: replicating them can shed nets from a cut. *)
  let h = Techmap.Mapper.to_hypergraph mapped in
  Format.printf "@.replication potential of the mapped cells (eq. 4):@.%a@."
    Core.Replication_potential.pp_distribution
    (Core.Replication_potential.distribution h);

  (* A concrete two-output cell, as in the paper's Fig. 1/2. *)
  (match
     Array.find_opt
       (fun c -> Array.length c.Hypergraph.outputs = 2)
       h.Hypergraph.cells
   with
  | Some c ->
      Format.printf "example cell %s: A_X1 = %a, A_X2 = %a, psi = %d@."
        c.Hypergraph.name
        (Bitvec.pp ~width:(Array.length c.Hypergraph.inputs))
        c.Hypergraph.supports.(0)
        (Bitvec.pp ~width:(Array.length c.Hypergraph.inputs))
        c.Hypergraph.supports.(1)
        (Core.Replication_potential.of_cell c)
  | None -> ());

  (* 4. Min-cut bipartition with functional replication (the paper's first
     experiment, in miniature). *)
  let cfg =
    Core.Fm.balance_config ~replication:(`Functional 0)
      ~total_area:(Hypergraph.total_area h) ()
  in
  let st = Core.Fm.random_state (Netlist.Rng.create 42) h in
  let _, cut, _ = Core.Fm.run_staged cfg st in
  Format.printf "@.bipartition: cut %d nets, %d replicated cells@." cut
    (Partition_state.num_replicated st);

  (* 5. k-way partitioning into the heterogeneous XC3000 library,
     minimising total device cost (eq. 1) and interconnect (eq. 2). A
     4-bit adder of course fits one device; see the other examples for
     multi-device runs. *)
  match
    Core.Kway.partition ~library:Fpga.Library.xc3000 h
  with
  | Ok r -> Format.printf "@.k-way: %a@." Core.Kway.pp_result r
  | Error msg -> Format.printf "k-way failed: %s@." msg
