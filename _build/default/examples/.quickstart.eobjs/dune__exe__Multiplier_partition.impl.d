examples/multiplier_partition.ml: Core Experiments Format Fpga Hypergraph List Netlist Techmap
