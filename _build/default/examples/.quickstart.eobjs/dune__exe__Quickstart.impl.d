examples/quickstart.ml: Array Bitvec Core Format Fpga Hypergraph Netlist Partition_state Techmap
