examples/replication_study.ml: Core Format Fpga Hypergraph List Netlist Printf Techmap
