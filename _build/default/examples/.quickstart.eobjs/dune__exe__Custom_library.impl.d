examples/custom_library.ml: Core Format Fpga Hypergraph List Netlist Techmap
