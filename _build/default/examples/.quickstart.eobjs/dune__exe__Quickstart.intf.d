examples/quickstart.mli:
