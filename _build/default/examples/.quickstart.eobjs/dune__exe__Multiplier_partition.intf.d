examples/multiplier_partition.mli:
