#!/usr/bin/env python3
"""Extract the objective-stable subset of a fpgapart stats document.

The subset is everything that must not change when the cost-objective
API is swapped underneath the paper objective: the partitioning result
(device choices, per-part CLB/IOB loads, costs) and the full decision
telemetry (counters, events, non-rate histograms). Keys that are
allowed to differ across schema revisions are dropped:

- ``schema_version`` and ``options`` (new option fields may appear),
- wall-derived fields (``_secs``, ``_per_sec``) and derived ratio
  fields (``_util``), mirroring tools/scrub_stats.py.

The event stream (megabytes on the larger circuits) is folded into an
md5 fingerprint of its stripped canonical rendering — still a
byte-level gate on every recorded decision, without megabyte goldens.

Output is canonical (indent=1, stable key order as emitted) so two
extracts can be compared with cmp/diff.

Usage: extract_stable.py FILE
"""
import hashlib
import json
import sys

MASKED_SUFFIXES = ("_secs", "_per_sec", "_util")


def strip(node):
    if isinstance(node, dict):
        return {
            k: strip(v)
            for k, v in node.items()
            if not k.endswith(MASKED_SUFFIXES)
        }
    if isinstance(node, list):
        return [strip(v) for v in node]
    return node


def main():
    if len(sys.argv) != 2:
        sys.stderr.write(__doc__)
        return 2
    with open(sys.argv[1]) as f:
        doc = json.load(f)
    obs = strip(doc.get("obs", {}))
    events = obs.pop("events", [])
    obs.pop("timers", None)
    canonical = json.dumps(events, sort_keys=True, separators=(",", ":"))
    obs["events_md5"] = hashlib.md5(canonical.encode()).hexdigest()
    obs["events_len"] = len(events)
    stable = {
        "circuit": doc.get("circuit"),
        "seed": doc.get("seed"),
        "result": strip(doc.get("result", {})),
        "obs": obs,
    }
    json.dump(stable, sys.stdout, indent=1)
    sys.stdout.write("\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
