#!/bin/sh
# Trace acceptance gate: produce a --trace artifact from a traced
# parallel partition of a genuinely multi-device circuit and validate
# the Chrome trace-event JSON that Perfetto will load: the file parses,
# carries complete ("X") events, every event's timestamp is
# non-decreasing within its tid in file order (spans are globally sorted
# by begin time), and the F-M passes show up as spans.
set -eu
cd "$(dirname "$0")/.."

tmpdir=$(mktemp -d)
trap 'rm -rf "$tmpdir"' EXIT

dune exec --no-print-directory bin/fpgapart.exe -- \
  partition --circuit c6288 --seed 1 --jobs 4 \
  --stats-json "$tmpdir/s.json" --trace "$tmpdir/t.json" >/dev/null

python3 - "$tmpdir/t.json" <<'PY'
import json, sys

with open(sys.argv[1]) as f:
    doc = json.load(f)          # must parse as JSON at all

events = doc["traceEvents"]
xs = [e for e in events if e.get("ph") == "X"]
assert xs, "no complete (X) events in the trace"

for e in xs:
    for key in ("name", "pid", "tid", "ts", "dur"):
        assert key in e, f"X event missing {key}: {e}"
    assert e["dur"] >= 0, f"negative duration: {e}"

# Spans are globally sorted by begin time, so within each tid the ts
# sequence must be non-decreasing in file order.
last = {}
for e in xs:
    tid = (e["pid"], e["tid"])
    assert e["ts"] >= last.get(tid, 0), \
        f"ts went backwards on pid/tid {tid}: {e}"
    last[tid] = e["ts"]

tids = {e["tid"] for e in xs}
assert len(tids) > 1, f"expected >1 domain track at --jobs 4, got {sorted(tids)}"

names = {e["name"] for e in xs}
# Span names are slash-separated paths ("run0/split0/dev-XC3090/pass4").
segments = {seg for n in names for seg in n.split("/")}
assert any(s.startswith("pass") for s in segments), \
    "no F-M pass spans in the trace"
assert any(s.startswith("run") for s in segments), \
    "no multi-start run spans in the trace"

print(f"trace check: ok ({len(xs)} spans, tids {sorted(tids)})")
PY
