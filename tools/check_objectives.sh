#!/bin/sh
# Objective-API acceptance gate, in two halves.
#
# Equivalence: `--objective paper` (the default) must reproduce the
# pre-redesign scalar partitioner's decisions byte-for-byte on every
# bundled circuit. Each run's stats document is reduced to its
# objective-stable subset (tools/extract_stable.py: result + decision
# telemetry, minus schema-revision keys and wall/ratio fields) and
# compared against the goldens in test/golden/, which were generated
# from the scalar implementation. Any drift in a device choice, a cut,
# an F-M event or a counter fails the gate.
#
# Smoke: the non-paper objectives must run end-to-end — a valid
# feasible partition under `--objective multi-personality` (vector
# feasibility) and `--objective chiplet` (interposer-priced cut nets),
# each stamping its objective name into the stats options — and an
# unknown objective name must be rejected at the CLI.
set -eu
cd "$(dirname "$0")/.."

tmpdir=$(mktemp -d)
trap 'rm -rf "$tmpdir"' EXIT

dune build bin/fpgapart.exe 2>/dev/null

run() {
  circuit=$1; shift
  dune exec --no-print-directory --no-build bin/fpgapart.exe -- \
    partition --circuit "$circuit" --seed 1 "$@" >/dev/null
}

for circuit in c1355 c5315 c6288 c7552 s13207 s15850 s38584 s5378 s9234; do
  run "$circuit" --objective paper --stats-json "$tmpdir/$circuit.json"
  python3 tools/extract_stable.py "$tmpdir/$circuit.json" \
    > "$tmpdir/$circuit.stable"
  if ! cmp -s "$tmpdir/$circuit.stable" "test/golden/$circuit.baseline.json"; then
    echo "objective check: $circuit under --objective paper drifted from the scalar baseline" >&2
    diff "test/golden/$circuit.baseline.json" "$tmpdir/$circuit.stable" | head -20 >&2
    exit 1
  fi
done

for objective in multi-personality chiplet; do
  run c1355 --objective "$objective" --stats-json "$tmpdir/smoke.json"
  if ! grep -qF "\"objective\": \"$objective\"" "$tmpdir/smoke.json"; then
    echo "objective check: --objective $objective did not stamp the stats options" >&2
    exit 1
  fi
done

if run c1355 --objective no-such-objective 2>/dev/null; then
  echo "objective check: unknown objective name was accepted" >&2
  exit 1
fi

echo "objective check: ok (paper matches scalar baselines on 9 circuits; multi-personality and chiplet run end-to-end)"
