#!/bin/sh
# Service acceptance gate: boot the partitioning daemon on a throwaway
# socket and drive the full client surface against it. Checks that (0)
# the health probe answers accepting with the configured bounds, (1) a
# byte-permuted but semantically identical netlist is answered from the
# result cache with a byte-identical reply, (2) an in-flight job can be
# cancelled, (3) the daemon survives a malformed frame, (4) an
# incremental resubmit of an edited s38584 is served warm an order of
# magnitude faster than a cold run at equivalent cost — and the empty
# delta is answered byte-identically from the cache without running any
# F-M — and (5) shutdown drains cleanly and unlinks the socket.
set -eu
cd "$(dirname "$0")/.."

dune build --no-print-directory bin/fpgapart.exe
FPGAPART=_build/default/bin/fpgapart.exe

tmpdir=$(mktemp -d)
sock="$tmpdir/fpgapart.sock"
cleanup() {
    "$FPGAPART" svc-shutdown --socket "$sock" >/dev/null 2>&1 || true
    [ -n "${daemon_pid:-}" ] && wait "$daemon_pid" 2>/dev/null || true
    rm -rf "$tmpdir"
}
trap cleanup EXIT

# A semantics-preserving byte permutation of a .bench netlist: INPUT
# declarations first, every other statement reversed. The parser
# resolves names independent of statement order.
"$FPGAPART" generate c1355 "$tmpdir/c1355.bench" >/dev/null
grep '^INPUT' "$tmpdir/c1355.bench" > "$tmpdir/permuted.bench"
grep -v '^INPUT' "$tmpdir/c1355.bench" | grep -v '^[[:space:]]*$' \
    | sed -n '1!G;h;$p' >> "$tmpdir/permuted.bench"

"$FPGAPART" serve --socket "$sock" --queue-cap 4 >/dev/null &
daemon_pid=$!

# Wait for the socket to appear.
i=0
while [ ! -S "$sock" ]; do
    i=$((i + 1))
    [ "$i" -gt 100 ] && { echo "daemon never bound $sock" >&2; exit 1; }
    sleep 0.1
done

# 0. Health probe: the daemon reports itself accepting, with the
#    configured queue bound, before any work is submitted.
"$FPGAPART" svc-health --socket "$sock" > "$tmpdir/health.json"
python3 - "$tmpdir/health.json" <<'PY'
import json, sys

with open(sys.argv[1]) as f:
    health = json.load(f)

assert health["state"] == "accepting", health
assert health["protocol_version"] == 3, health
assert health["queue_cap"] == 4, health
assert health["queue_depth"] == 0, health
assert health["inflight"] == 0, health
assert health["uptime_secs"] >= 0, health

print("service check: health ok", health["state"])
PY

# 1. Original, then the permuted copy: the second reply must come out of
#    the cache byte-for-byte identical (the key is a canonical content
#    hash, not a hash of the input bytes).
"$FPGAPART" submit --socket "$sock" --bench "$tmpdir/c1355.bench" \
    --runs 2 --seed 1 > "$tmpdir/reply1.json" 2>/dev/null
"$FPGAPART" submit --socket "$sock" --bench "$tmpdir/permuted.bench" \
    --runs 2 --seed 1 > "$tmpdir/reply2.json" 2>/dev/null
cmp "$tmpdir/reply1.json" "$tmpdir/reply2.json" \
    || { echo "cached reply differs from computed reply" >&2; exit 1; }

# 2. Cancel an in-flight slow job.
job=$("$FPGAPART" submit --socket "$sock" --circuit s38584 --runs 50 \
    --no-wait 2>/dev/null)
"$FPGAPART" svc-cancel --socket "$sock" "$job" >/dev/null

# 3. A malformed frame (valid length prefix, bogus JSON payload) must
#    not take the daemon down.
printf '\000\000\000\007garbage' \
    | timeout 5 python3 -c '
import socket, sys
s = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
s.connect(sys.argv[1])
s.sendall(sys.stdin.buffer.read())
s.recv(4096)  # the error reply
s.close()
' "$sock"

# 4. The daemon is still alive and its counters line up.
"$FPGAPART" svc-stats --socket "$sock" > "$tmpdir/stats.json"
python3 - "$tmpdir/stats.json" <<'PY'
import json, sys

with open(sys.argv[1]) as f:
    stats = json.load(f)

counters = stats["obs"]["counters"]
assert counters.get("service.cache_hit") == 1, counters
assert counters.get("service.cache_miss", 0) >= 1, counters
assert counters.get("service.bad_requests", 0) >= 1, counters
assert counters.get("service.cancelled", 0) + counters.get("service.completed", 0) >= 2, counters
assert stats["cache"]["len"] >= 1, stats["cache"]

print("service check: counters ok", counters)
PY

# 5. Incremental resubmit: a 1% ECO of s38584, resubmitted against the
#    base partition's digest, must be served warm at least 10x faster
#    than the cold run of the edited netlist and land within 2% of the
#    cold cost. The empty delta must reply the cached base document
#    byte-for-byte without moving the F-M counters.
"$FPGAPART" generate s38584 "$tmpdir/s38584.bench" >/dev/null
"$FPGAPART" perturb --bench "$tmpdir/s38584.bench" --seed 7 --frac 0.01 \
    --delta-out "$tmpdir/delta.json" --edited-out "$tmpdir/edited.bench" \
    >/dev/null
"$FPGAPART" submit --socket "$sock" --bench "$tmpdir/s38584.bench" \
    --runs 2 --seed 1 > "$tmpdir/eco_base.json" 2>/dev/null
digest=$(python3 -c \
    'import json, sys; print(json.load(open(sys.argv[1]))["digest"])' \
    "$tmpdir/eco_base.json")
t0=$(date +%s%N)
"$FPGAPART" submit --socket "$sock" --bench "$tmpdir/edited.bench" \
    --runs 2 --seed 1 > "$tmpdir/eco_cold.json" 2>/dev/null
t1=$(date +%s%N)
"$FPGAPART" resubmit --socket "$sock" --base-digest "$digest" \
    --delta "$tmpdir/delta.json" > "$tmpdir/eco_warm.json" 2>/dev/null
t2=$(date +%s%N)
cold_ms=$(( (t1 - t0) / 1000000 ))
warm_ms=$(( (t2 - t1) / 1000000 ))
[ $(( warm_ms * 10 )) -le "$cold_ms" ] || {
    echo "resubmit too slow: warm ${warm_ms}ms vs cold ${cold_ms}ms (need 10x)" >&2
    exit 1
}
python3 - "$tmpdir/eco_cold.json" "$tmpdir/eco_warm.json" <<'PY'
import json, sys

cold = json.load(open(sys.argv[1]))["result"]["total_cost"]
warm = json.load(open(sys.argv[2]))["result"]["total_cost"]
assert abs(warm - cold) <= 0.02 * cold, \
    f"warm cost {warm} not within 2% of cold {cold}"
PY
"$FPGAPART" svc-stats --socket "$sock" > "$tmpdir/stats_pre.json"
printf '{"ops":[]}' > "$tmpdir/empty.json"
"$FPGAPART" resubmit --socket "$sock" --base-digest "$digest" \
    --delta "$tmpdir/empty.json" > "$tmpdir/eco_noop.json" 2>/dev/null
"$FPGAPART" svc-stats --socket "$sock" > "$tmpdir/stats_post.json"
cmp "$tmpdir/eco_noop.json" "$tmpdir/eco_base.json" \
    || { echo "empty-delta resubmit differs from cached base reply" >&2; exit 1; }
python3 - "$tmpdir/stats_pre.json" "$tmpdir/stats_post.json" <<'PY'
import json, sys

pre = json.load(open(sys.argv[1]))["obs"]["counters"]
post = json.load(open(sys.argv[2]))["obs"]["counters"]
assert post.get("service.resubmit_warm") == 1, post
assert post.get("service.resubmit_warm_failed", 0) == 0, post
assert post.get("service.resubmit_cold_fallback", 0) == 0, post
assert post.get("service.resubmit_noop") == 1, post
assert pre.get("service.fm_applied_ops", 0) == post.get("service.fm_applied_ops", 0), \
    "empty-delta resubmit ran F-M"

print("service check: resubmit ok", {k: v for k, v in post.items() if "resubmit" in k})
PY
echo "service check: resubmit warm ${warm_ms}ms vs cold ${cold_ms}ms"

# 6. Graceful shutdown: daemon exits and the socket file is gone.
"$FPGAPART" svc-shutdown --socket "$sock" >/dev/null
wait "$daemon_pid"
daemon_pid=
[ ! -e "$sock" ] || { echo "socket file left behind after shutdown" >&2; exit 1; }

echo "service check: ok (cache hit byte-identical, cancel, garbage, drain)"
