#!/usr/bin/env python3
"""Determinism scrub for fpgapart stats JSON, printed to stdout.

Mirrors Obs.Snapshot.scrub_elapsed: every object field whose key ends in
``_secs`` or ``_per_sec`` is replaced by null, recursively, and nothing
else changes. A ``_per_sec``-named histogram is masked whole — its
count, sum and buckets are all wall-derived. Output is canonical
(sorted-key-free, stable separators) so two scrubbed documents can be
compared with cmp/diff.

Usage: scrub_stats.py FILE
"""
import json
import sys

WALL_SUFFIXES = ("_secs", "_per_sec")


def scrub(node):
    if isinstance(node, dict):
        return {
            k: (None if k.endswith(WALL_SUFFIXES) else scrub(v))
            for k, v in node.items()
        }
    if isinstance(node, list):
        return [scrub(v) for v in node]
    return node


def main():
    if len(sys.argv) != 2:
        sys.stderr.write(__doc__)
        return 2
    with open(sys.argv[1]) as f:
        doc = json.load(f)
    json.dump(scrub(doc), sys.stdout, indent=1)
    sys.stdout.write("\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
