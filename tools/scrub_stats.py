#!/usr/bin/env python3
"""Determinism scrub for fpgapart stats JSON, printed to stdout.

Mirrors Obs.Snapshot.scrub_elapsed: every object field whose key ends in
``_secs``, ``_per_sec`` or ``_util`` is replaced by null, recursively,
and nothing else changes. A ``_per_sec``-named histogram is masked whole
— its count, sum and buckets are all wall-derived. ``_util`` keys
(schema v5 per-axis utilization ratios) are derived floats of
used/capacity whose integral inputs are already in the document, masked
so comparisons are float-formatting-independent. Output is canonical
(sorted-key-free, stable separators) so two scrubbed documents can be
compared with cmp/diff.

Usage: scrub_stats.py FILE
"""
import json
import sys

MASKED_SUFFIXES = ("_secs", "_per_sec", "_util")


def scrub(node):
    if isinstance(node, dict):
        return {
            k: (None if k.endswith(MASKED_SUFFIXES) else scrub(v))
            for k, v in node.items()
        }
    if isinstance(node, list):
        return [scrub(v) for v in node]
    return node


def main():
    if len(sys.argv) != 2:
        sys.stderr.write(__doc__)
        return 2
    with open(sys.argv[1]) as f:
        doc = json.load(f)
    json.dump(scrub(doc), sys.stdout, indent=1)
    sys.stdout.write("\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
