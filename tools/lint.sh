#!/bin/sh
# Source hygiene check (ocamlformat is not a build dependency, so this is
# the fmt-clean equivalent the CI target runs): no tabs, no trailing
# whitespace, and a final newline in every OCaml source and dune file.
set -eu
cd "$(dirname "$0")/.."

status=0
files=$(git ls-files '*.ml' '*.mli' '*/dune' 'dune-project')

for f in $files; do
  if grep -qIP '\t' "$f"; then
    echo "lint: tab character in $f" >&2
    status=1
  fi
  if grep -qI ' $' "$f"; then
    echo "lint: trailing whitespace in $f" >&2
    status=1
  fi
  if [ -s "$f" ] && [ "$(tail -c 1 "$f")" != "" ]; then
    echo "lint: missing final newline in $f" >&2
    status=1
  fi
done

[ "$status" -eq 0 ] && echo "lint: ok"
exit "$status"
