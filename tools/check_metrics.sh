#!/bin/sh
# Observability acceptance gate: boot the daemon with structured logging
# and tracing on, drive a small serialized workload, and check that
# (1) `svc-metrics` emits a valid OpenMetrics exposition — parsed by a
#     small validator: families declared before samples, counter samples
#     under *_total, histogram buckets cumulative and +Inf == _count,
#     "# EOF" terminator — including the queue/inflight/cache gauges and
#     the queue-wait/run/e2e SLO histograms with one observation per
#     executed job;
# (2) `svc-health` reports accepting with the configured bounds;
# (3) every result reply carries a wall-clock "timings" breakdown whose
#     parts sum to its total within tolerance;
# (4) the scrubbed info-level log stream is byte-identical across two
#     identical runs — the log determinism contract;
# (5) a worker fleet scrapes as valid OpenMetrics too, with the labeled
#     per-worker gauges (fleet_worker_up{worker=...}, restarts) present;
# (6) the per-job lifecycle trace holds the complete span set per job.
set -eu
cd "$(dirname "$0")/.."

dune build --no-print-directory bin/fpgapart.exe
FPGAPART=_build/default/bin/fpgapart.exe

tmpdir=$(mktemp -d)
cleanup() {
    for s in "$tmpdir"/run*.sock; do
        "$FPGAPART" svc-shutdown --socket "$s" >/dev/null 2>&1 || true
    done
    wait 2>/dev/null || true
    rm -rf "$tmpdir"
}
trap cleanup EXIT

"$FPGAPART" generate c1355 "$tmpdir/c1355.bench" >/dev/null

# One serialized workload against a fresh daemon: submit (miss), wait,
# resubmit the same bytes (hit). Logs go scrubbed to a file; run 1 also
# collects metrics, health, timings and the lifecycle trace.
run_workload() {
    n="$1"
    sock="$tmpdir/run$n.sock"
    "$FPGAPART" serve --socket "$sock" --queue-cap 4 \
        --log-level info --log-scrub --log-file "$tmpdir/log$n.jsonl" \
        --trace "$tmpdir/trace$n.json" >/dev/null &
    pid=$!
    i=0
    while [ ! -S "$sock" ]; do
        i=$((i + 1))
        [ "$i" -gt 100 ] && { echo "daemon never bound $sock" >&2; exit 1; }
        sleep 0.1
    done
    "$FPGAPART" submit --socket "$sock" --bench "$tmpdir/c1355.bench" \
        --runs 2 --seed 1 > "$tmpdir/reply$n.json" 2>/dev/null
    "$FPGAPART" submit --socket "$sock" --bench "$tmpdir/c1355.bench" \
        --runs 2 --seed 1 > "$tmpdir/hit$n.json" 2>/dev/null
    if [ "$n" = 1 ]; then
        "$FPGAPART" svc-health --socket "$sock" > "$tmpdir/health.json"
        "$FPGAPART" svc-metrics --socket "$sock" > "$tmpdir/metrics.txt"
        # Timings ride the reply envelope, not the submit stdout (which
        # prints only the result document); fetch one over the raw wire.
        python3 - "$sock" > "$tmpdir/timings.json" <<'PY'
import json, socket, struct, sys

s = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
s.connect(sys.argv[1])
req = json.dumps({"v": 3, "verb": "result", "job": 1, "wait": True}).encode()
s.sendall(struct.pack(">I", len(req)) + req)
n = struct.unpack(">I", s.recv(4))[0]
buf = b""
while len(buf) < n:
    buf += s.recv(n - len(buf))
s.close()
print(json.dumps(json.loads(buf)["timings"]))
PY
    fi
    "$FPGAPART" svc-shutdown --socket "$sock" >/dev/null
    wait "$pid"
}

run_workload 1
run_workload 2

# 1. Validate the exposition with a small OpenMetrics parser.
python3 - "$tmpdir/metrics.txt" <<'PY'
import re, sys

lines = open(sys.argv[1]).read().splitlines(keepends=True)
assert lines and lines[-1] == "# EOF\n", "missing # EOF terminator"

types = {}      # family -> type
samples = {}    # full sample name -> [(labels, value)]
name_re = re.compile(r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{([^}]*)\})? (\S+)$")
for line in lines[:-1]:
    line = line.rstrip("\n")
    if line.startswith("# TYPE "):
        _, _, family, typ = line.split(" ")
        assert family not in types, f"family {family} declared twice"
        types[family] = typ
    elif line.startswith("# HELP ") or not line:
        continue
    else:
        m = name_re.match(line)
        assert m, f"unparseable sample line: {line!r}"
        name, _, labels, value = m.groups()
        samples.setdefault(name, []).append((labels, float(value)))

def of(family, suffix=""):
    assert family in types, f"family {family} never declared"
    got = samples.get(family + suffix)
    assert got, f"no samples for {family}{suffix}"
    return got

# Gauges the daemon maintains continuously.
for g in ["fpgapart_queue_depth", "fpgapart_queue_capacity",
          "fpgapart_inflight_jobs", "fpgapart_cache_entries",
          "fpgapart_cache_capacity", "fpgapart_cache_hit_ratio",
          "fpgapart_uptime_seconds", "fpgapart_gc_heap_words",
          "fpgapart_gc_major_collections"]:
    assert types.get(g) == "gauge", f"{g}: {types.get(g)}"
    of(g)
assert of("fpgapart_queue_depth")[0][1] == 0
assert of("fpgapart_queue_capacity")[0][1] == 4
assert of("fpgapart_cache_hit_ratio")[0][1] == 0.5  # one miss, one hit

# Counters sample under *_total; every declared counter must.
for family, typ in types.items():
    if typ == "counter":
        of(family, "_total")
assert of("fpgapart_service_cache_hit", "_total")[0][1] == 1
assert of("fpgapart_service_requests", "_total")[0][1] >= 2

# Histograms: cumulative buckets, +Inf present and equal to _count.
for family, typ in types.items():
    if typ != "histogram":
        continue
    buckets = of(family, "_bucket")
    count = of(family, "_count")[0][1]
    of(family, "_sum")
    prev, inf = 0.0, None
    for labels, v in buckets:
        assert v >= prev, f"{family}: non-cumulative bucket {labels}"
        prev = v
        if 'le="+Inf"' in (labels or ""):
            inf = v
    assert inf is not None, f"{family}: no +Inf bucket"
    assert inf == count, f"{family}: +Inf {inf} != count {count}"

# SLO latency histograms: one executed job, two end-to-end replies.
assert of("fpgapart_service_queue_wait_seconds", "_count")[0][1] == 1
assert of("fpgapart_service_run_seconds", "_count")[0][1] == 1
assert of("fpgapart_service_e2e_seconds", "_count")[0][1] == 2

print(f"metrics check: exposition ok ({len(types)} families)")
PY

# 2. Health: accepting, right bounds.
python3 - "$tmpdir/health.json" <<'PY'
import json, sys

health = json.load(open(sys.argv[1]))
assert health["state"] == "accepting", health
assert health["protocol_version"] == 3, health
assert health["queue_cap"] == 4, health
print("metrics check: health ok")
PY

# 3. Timings: every part non-negative, parts sum to total within
#    tolerance.
python3 - "$tmpdir/timings.json" <<'PY'
import json, sys

t = json.load(open(sys.argv[1]))
parts = ["decode_ms", "queue_wait_ms", "run_ms", "encode_ms"]
assert all(t[k] >= 0 for k in parts + ["total_ms"]), t
assert abs(t["total_ms"] - sum(t[k] for k in parts)) <= 100, t
print("metrics check: timings ok", t)
PY

# 4. Scrubbed logs byte-identical across the two runs, and every
#    lifecycle line a parseable JSON record with a correlation id.
cmp "$tmpdir/log1.jsonl" "$tmpdir/log2.jsonl" || {
    echo "scrubbed logs differ between identical runs" >&2
    diff "$tmpdir/log1.jsonl" "$tmpdir/log2.jsonl" >&2 || true
    exit 1
}
python3 - "$tmpdir/log1.jsonl" <<'PY'
import json, sys

events = []
for line in open(sys.argv[1]):
    rec = json.loads(line)
    assert rec["ts_secs"] is None, f"unscrubbed timestamp: {rec}"
    assert "event" in rec and "level" in rec, rec
    events.append(rec["event"])
    if rec["event"].startswith("job."):
        assert "corr" in rec, f"lifecycle line without correlation id: {rec}"
for needed in ["server.start", "job.enqueue", "job.dequeue", "job.done",
               "job.cache_hit", "server.drain", "server.stopped"]:
    assert needed in events, f"log lacks {needed}: {events}"
assert events.index("job.enqueue") < events.index("job.dequeue") \
    < events.index("job.done") < events.index("job.cache_hit"), events

print(f"metrics check: logs ok ({len(events)} deterministic lines)")
PY

# 5. Fleet exposition: a 2-worker fleet scrapes as valid OpenMetrics
#    too, including the per-worker and per-tenant labeled gauges the
#    scheduler maintains on top of the shared service families.
fsock="$tmpdir/runfleet.sock"
"$FPGAPART" serve --socket "$fsock" --workers 2 --queue-cap 8 \
    >/dev/null 2>&1 &
fpid=$!
i=0
while [ ! -S "$fsock" ]; do
    i=$((i + 1))
    [ "$i" -gt 150 ] && { echo "fleet never bound $fsock" >&2; exit 1; }
    sleep 0.1
done
i=0
while :; do
    up=$("$FPGAPART" svc-health --socket "$fsock" 2>/dev/null \
        | python3 -c 'import json,sys; print(json.load(sys.stdin).get("workers_up", 0))' \
        || echo 0)
    [ "$up" -ge 2 ] && break
    i=$((i + 1))
    [ "$i" -gt 150 ] && { echo "fleet workers never came up" >&2; exit 1; }
    sleep 0.1
done
"$FPGAPART" submit --socket "$fsock" --bench "$tmpdir/c1355.bench" \
    --runs 2 --seed 1 >/dev/null 2>&1
"$FPGAPART" svc-metrics --socket "$fsock" > "$tmpdir/fleet_metrics.txt"
"$FPGAPART" svc-shutdown --socket "$fsock" >/dev/null
wait "$fpid"
python3 - "$tmpdir/fleet_metrics.txt" <<'PY'
import re, sys

lines = open(sys.argv[1]).read().splitlines(keepends=True)
assert lines and lines[-1] == "# EOF\n", "missing # EOF terminator"

types = {}
samples = {}
name_re = re.compile(r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{([^}]*)\})? (\S+)$")
for line in lines[:-1]:
    line = line.rstrip("\n")
    if line.startswith("# TYPE "):
        _, _, family, typ = line.split(" ")
        assert family not in types, f"family {family} declared twice"
        types[family] = typ
    elif line.startswith("# HELP ") or not line:
        continue
    else:
        m = name_re.match(line)
        assert m, f"unparseable sample line: {line!r}"
        name, _, labels, value = m.groups()
        samples.setdefault(name, []).append((labels, float(value)))

# Labeled per-worker gauges: one sample per worker, one TYPE line per
# family, every worker up after the drain-free workload.
for fam in ["fpgapart_fleet_worker_up", "fpgapart_fleet_worker_restarts"]:
    assert types.get(fam) == "gauge", f"{fam}: {types.get(fam)}"
    got = samples.get(fam, [])
    workers = {dict(re.findall(r'(\w+)="([^"]*)"', l or "")).get("worker")
               for l, _ in got}
    assert workers == {"0", "1"}, f"{fam} worker labels: {workers}"
up = {l: v for l, v in samples["fpgapart_fleet_worker_up"]}
assert all(v == 1.0 for v in up.values()), up

# Unlabeled fleet-level gauges ride alongside.
assert types.get("fpgapart_fleet_workers") == "gauge", types
assert samples["fpgapart_fleet_workers"][0][1] == 2, samples

# The scheduler serves the same SLO histograms the daemon does.
assert types.get("fpgapart_service_e2e_seconds") == "histogram", types
print("metrics check: fleet exposition ok "
      f"({len(types)} families, {len(up)} workers)")
PY

# 6. The lifecycle trace has the full span set on the job's lane.
python3 - "$tmpdir/trace1.json" <<'PY'
import json, sys

events = json.load(open(sys.argv[1]))["traceEvents"]
spans = {e["name"] for e in events if e.get("ph") == "X" and e.get("pid") == 1}
needed = {"decode", "canonicalise", "queue_wait", "partition", "encode_reply"}
assert needed <= spans, f"job 1 lifecycle incomplete: {spans}"
print("metrics check: trace ok", sorted(spans))
PY

echo "metrics check: ok (exposition, health, timings, log determinism, fleet, trace)"
