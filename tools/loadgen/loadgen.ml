(* Fleet load generator: hammer a running daemon (or fleet) with
   concurrent submissions across a tenant mix and assert delivery
   semantics — every submission gets exactly one terminal reply, no job
   id is ever issued twice, and the p99 submit-to-terminal latency stays
   under a bound. Prints a JSON summary; a broken assertion exits 1, so
   the CI wrapper (tools/check_fleet.sh) needs no parsing to fail.

   The job mix is deliberately cache-heavy (few distinct (circuit, seed)
   keys): the point is to stress the scheduler's queuing, fan-out and
   reply plumbing, not to burn CPU in the partitioner. A fraction of the
   submissions go through submit-batch frames so the batched path sees
   the same delivery assertions as the singles. *)

module J = Obs.Json
module P = Service.Protocol
module C = Service.Client

let socket = ref ""
let jobs = ref 1000
let clients = ref 32
let tenants = ref 4
let seeds = ref 2
let circuit = ref "c1355"
let p99_budget_ms = ref 10_000.0
let batch_every = ref 8  (* every Nth unit is a batch of [batch_size] *)
let batch_size = ref 4
let runs = ref 2

let args =
  [
    ("--socket", Arg.Set_string socket, "PATH daemon socket (required)");
    ("--jobs", Arg.Set_int jobs, "N total submissions (default 1000)");
    ("--clients", Arg.Set_int clients, "N client threads (default 32)");
    ("--tenants", Arg.Set_int tenants, "N distinct tenants (default 4)");
    ("--seeds", Arg.Set_int seeds, "N distinct seeds (default 2)");
    ("--circuit", Arg.Set_string circuit, "NAME builtin circuit (default c1355)");
    ("--p99-ms", Arg.Set_float p99_budget_ms,
     "MS p99 latency budget (default 10000)");
    ("--batch-every", Arg.Set_int batch_every,
     "N every Nth unit is a batch; 0 disables (default 8)");
    ("--batch-size", Arg.Set_int batch_size, "N circuits per batch (default 4)");
    ("--runs", Arg.Set_int runs, "N multi-start runs per job (default 2)");
  ]

let usage = "loadgen --socket PATH [options]"

let die fmt = Printf.ksprintf (fun s -> prerr_endline ("loadgen: " ^ s); exit 1) fmt

(* One recorded delivery: the scheduler job id it was issued and the
   submit-to-terminal latency. *)
type delivery = { job_id : int; latency_ms : float; cached : bool }

type stats = {
  mutable deliveries : delivery list;
  mutable errors : (string * string) list;  (* (code, msg) terminal errors *)
  mutex : Mutex.t;
}

let record st d =
  Mutex.lock st.mutex;
  st.deliveries <- d :: st.deliveries;
  Mutex.unlock st.mutex

let record_error st code msg =
  Mutex.lock st.mutex;
  st.errors <- (code, msg) :: st.errors;
  Mutex.unlock st.mutex

let backoff = { C.Backoff.attempts = 10; base = 0.05; cap = 1.0; jitter = 0.5 }

let options ~seed =
  { Core.Kway.Options.default with Core.Kway.runs = !runs; seed }

let tenant_of i = Printf.sprintf "tenant%d" (i mod !tenants)
let seed_of i = 1 + (i mod !seeds)

(* Split a submit reply: Ok (job_id, None) = queued, Ok (job_id, Some _)
   = served from cache, Error (code, msg) = typed refusal. *)
let parse_submit_reply reply =
  match C.ok_or_error reply with
  | Error (code, msg) -> Error (code, msg)
  | Ok reply -> (
      match Option.bind (J.member "job" reply) J.to_int with
      | None -> Error (P.code_bad_request, "reply lacks a job id")
      | Some id -> Ok (id, J.member "result" reply))

let parse_batch_item item =
  match J.member "error" item with
  | Some err ->
      let field k =
        Option.value ~default:"?" (Option.bind (J.member k err) J.to_str)
      in
      Error (field "code", field "msg")
  | None -> (
      match Option.bind (J.member "job" item) J.to_int with
      | None -> Error (P.code_bad_request, "batch item lacks a job id")
      | Some id -> Ok (id, J.member "result" item))

let await_result ~job_id =
  match C.rpc ~socket:!socket (P.Result { job = job_id; wait = true }) with
  | Error msg -> Error (P.code_worker_lost, msg)
  | Ok reply -> (
      match C.ok_or_error reply with
      | Error (code, msg) -> Error (code, msg)
      | Ok _ -> Ok ())

let run_single st ~netlist i =
  let envelope =
    { P.tenant = tenant_of i; priority = 0; portfolio = false }
  in
  let req =
    P.Submit
      {
        name = Printf.sprintf "%s-%d" !circuit i;
        format = P.Bench;
        netlist;
        options = options ~seed:(seed_of i);
        envelope;
      }
  in
  let t0 = Unix.gettimeofday () in
  match C.rpc_retry ~backoff ~socket:!socket req with
  | Error msg -> record_error st "transport" msg
  | Ok reply -> (
      match parse_submit_reply reply with
      | Error (code, msg) -> record_error st code msg
      | Ok (job_id, Some _) ->
          record st
            {
              job_id;
              latency_ms = (Unix.gettimeofday () -. t0) *. 1000.;
              cached = true;
            }
      | Ok (job_id, None) -> (
          match await_result ~job_id with
          | Ok () ->
              record st
                {
                  job_id;
                  latency_ms = (Unix.gettimeofday () -. t0) *. 1000.;
                  cached = false;
                }
          | Error (code, msg) -> record_error st code msg))

let run_batch st ~netlist i n =
  let envelope =
    { P.tenant = tenant_of i; priority = 0; portfolio = false }
  in
  let items =
    List.init n (fun k ->
        {
          P.b_name = Printf.sprintf "%s-%d-%d" !circuit i k;
          b_format = P.Bench;
          b_netlist = netlist;
          b_options = options ~seed:(seed_of (i + k));
        })
  in
  let t0 = Unix.gettimeofday () in
  match C.rpc_retry ~backoff ~socket:!socket (P.Submit_batch { items; envelope }) with
  | Error msg -> List.iter (fun _ -> record_error st "transport" msg) items
  | Ok reply -> (
      match C.ok_or_error reply with
      | Error (code, msg) ->
          List.iter (fun _ -> record_error st code msg) items
      | Ok reply -> (
          match J.member "items" reply with
          | Some (J.List replies) when List.length replies = n ->
              List.iter
                (fun item ->
                  (* Per-item replies use the same shape as submit, but
                     with the "ok" envelope stripped: an {"error": ...}
                     object or the submit fields directly. *)
                  match parse_batch_item item with
                  | Error (code, msg) -> record_error st code msg
                  | Ok (job_id, Some _) ->
                      record st
                        {
                          job_id;
                          latency_ms =
                            (Unix.gettimeofday () -. t0) *. 1000.;
                          cached = true;
                        }
                  | Ok (job_id, None) -> (
                      match await_result ~job_id with
                      | Ok () ->
                          record st
                            {
                              job_id;
                              latency_ms =
                                (Unix.gettimeofday () -. t0) *. 1000.;
                              cached = false;
                            }
                      | Error (code, msg) -> record_error st code msg))
                replies
          | _ ->
              List.iter
                (fun _ ->
                  record_error st P.code_bad_request "malformed batch reply")
                items))

let percentile sorted p =
  match Array.length sorted with
  | 0 -> 0.0
  | n -> sorted.(min (n - 1) (int_of_float (ceil (p *. float_of_int n)) - 1))

let () =
  Arg.parse args (fun a -> die "unexpected argument %S" a) usage;
  if !socket = "" then die "--socket is required";
  if !jobs <= 0 || !clients <= 0 || !tenants <= 0 || !seeds <= 0 then
    die "--jobs/--clients/--tenants/--seeds must be positive";
  let netlist =
    match Experiments.Suite.find !circuit with
    | Some e ->
        Netlist.Bench_format.to_string (Lazy.force e.Experiments.Suite.circuit)
    | None -> die "unknown builtin circuit: %s" !circuit
  in
  let st =
    { deliveries = []; errors = []; mutex = Mutex.create () }
  in
  (* Carve the job ids into work units up front: every unit is either one
     single submission or one batch covering [batch_size] ids. *)
  let units = ref [] in
  let i = ref 0 in
  let unit_no = ref 0 in
  while !i < !jobs do
    let remaining = !jobs - !i in
    let is_batch =
      !batch_every > 0 && !batch_size > 1
      && !unit_no mod !batch_every = !batch_every - 1
      && remaining >= !batch_size
    in
    if is_batch then begin
      units := `Batch (!i, !batch_size) :: !units;
      i := !i + !batch_size
    end
    else begin
      units := `Single !i :: !units;
      incr i
    end;
    incr unit_no
  done;
  let units = Array.of_list (List.rev !units) in
  let next = ref 0 in
  let next_mutex = Mutex.create () in
  let take () =
    Mutex.lock next_mutex;
    let u =
      if !next < Array.length units then begin
        let u = Some units.(!next) in
        incr next;
        u
      end
      else None
    in
    Mutex.unlock next_mutex;
    u
  in
  let t_start = Unix.gettimeofday () in
  let worker () =
    let rec loop () =
      match take () with
      | None -> ()
      | Some (`Single i) ->
          run_single st ~netlist i;
          loop ()
      | Some (`Batch (i, n)) ->
          run_batch st ~netlist i n;
          loop ()
    in
    loop ()
  in
  let threads = List.init !clients (fun _ -> Thread.create worker ()) in
  List.iter Thread.join threads;
  let wall_secs = Unix.gettimeofday () -. t_start in
  let deliveries = st.deliveries in
  let ids = List.map (fun d -> d.job_id) deliveries in
  let distinct = List.sort_uniq compare ids in
  let received = List.length ids in
  let duplicated = received - List.length distinct in
  let lost = !jobs - received - List.length st.errors in
  let cache_hits =
    List.fold_left (fun n d -> if d.cached then n + 1 else n) 0 deliveries
  in
  let lat =
    Array.of_list (List.map (fun d -> d.latency_ms) deliveries)
  in
  Array.sort compare lat;
  let p50 = percentile lat 0.50 and p99 = percentile lat 0.99 in
  let errors_json =
    (* Terminal typed errors are delivery failures for this harness:
       the fleet under test is provisioned so that retry-after-overload
       always lands. Summarize by code. *)
    let tbl = Hashtbl.create 4 in
    List.iter
      (fun (code, _) ->
        Hashtbl.replace tbl code
          (1 + Option.value ~default:0 (Hashtbl.find_opt tbl code)))
      st.errors;
    Hashtbl.fold (fun code n acc -> (code, J.Int n) :: acc) tbl []
    |> List.sort compare
  in
  let summary =
    J.Obj
      [
        ("jobs", J.Int !jobs);
        ("clients", J.Int !clients);
        ("tenants", J.Int !tenants);
        ("received", J.Int received);
        ("lost", J.Int (max 0 lost));
        ("duplicated", J.Int duplicated);
        ("errors", J.Obj errors_json);
        ("cache_hits", J.Int cache_hits);
        ("p50_ms", J.Float p50);
        ("p99_ms", J.Float p99);
        ("wall_secs", J.Float wall_secs);
        ( "throughput_per_sec",
          J.Float (float_of_int received /. Float.max 1e-9 wall_secs) );
      ]
  in
  print_endline (J.to_compact_string summary);
  let fail = ref false in
  if received <> !jobs then begin
    Printf.eprintf "loadgen: FAIL %d submissions, %d terminal replies (%d typed errors)\n"
      !jobs received (List.length st.errors);
    List.iteri
      (fun k (code, msg) ->
        if k < 5 then Printf.eprintf "loadgen:   error[%s] %s\n" code msg)
      st.errors;
    fail := true
  end;
  if duplicated > 0 then begin
    Printf.eprintf "loadgen: FAIL %d duplicated job ids\n" duplicated;
    fail := true
  end;
  if p99 > !p99_budget_ms then begin
    Printf.eprintf "loadgen: FAIL p99 %.1f ms over budget %.1f ms\n" p99
      !p99_budget_ms;
    fail := true
  end;
  if !fail then exit 1
