#!/bin/sh
# Perf-regression smoke gate for the incremental F-M engine.
#
# Three checks, all cheap enough for every CI run:
#
#   1. The hot-loop microbenchmark runs and its artifact carries the two
#      gate numbers (moves/sec and allocated words per applied move) for
#      both gain modes.
#   2. A partition run on a genuinely multi-device circuit exports the
#      incremental-rescoring telemetry: the fm.rescored_cells counter and
#      the fm.moves_per_sec histogram (schema v4).
#   3. Oracle identity: the same partition re-run under
#      FPGAPART_FM_ORACLE=1 — every incrementally maintained best op
#      cross-checked against a from-scratch recomputation after every
#      applied move — must produce byte-identical scrubbed telemetry,
#      partitions included. A stale cached gain either trips the oracle's
#      failwith or changes a decision and trips the cmp.
#
# FPGAPART_PERF_FULL=1 widens check 3 to every bundled circuit (minutes,
# not seconds — the oracle sweep restores the pre-filtering engine's
# cost); the default covers c6288 only. c1355 would be useless here: it
# fits one device, so a partition of it runs zero F-M passes and exports
# no fm.* keys at all.
set -eu
cd "$(dirname "$0")/.."

tmpdir=$(mktemp -d)
trap 'rm -rf "$tmpdir"' EXIT

echo "perf check: hot-loop microbenchmark (c6288, 1 run/mode)..."
dune exec --no-print-directory bench/main.exe -- hotloop \
  --hotloop-circuit c6288 --hotloop-runs 1 > "$tmpdir/hotloop.out"
for key in '"moves_per_sec"' '"alloc_words_per_move"' '"rescored_cells"' \
  '"eager"' '"lazy"'
do
  if ! grep -qF "$key" "$tmpdir/hotloop.out"; then
    echo "perf check: hotloop artifact lacks $key" >&2
    exit 1
  fi
done

run() {
  circuit=$1; out=$2; shift 2
  dune exec --no-print-directory bin/fpgapart.exe -- \
    partition --circuit "$circuit" --seed 1 --stats-json "$out" "$@" \
    >/dev/null
}

echo "perf check: incremental-rescoring telemetry (c6288)..."
run c6288 "$tmpdir/plain.json"
for key in '"fm.rescored_cells"' '"fm.moves_per_sec"'
do
  if ! grep -qF "$key" "$tmpdir/plain.json"; then
    echo "perf check: stats JSON lacks $key" >&2
    exit 1
  fi
done

scrub() {
  python3 tools/scrub_stats.py "$1"
}

oracle_identity() {
  circuit=$1
  echo "perf check: oracle identity on $circuit..."
  run "$circuit" "$tmpdir/norm.json"
  FPGAPART_FM_ORACLE=1 run "$circuit" "$tmpdir/oracle.json"
  scrub "$tmpdir/norm.json" > "$tmpdir/norm.scrubbed"
  scrub "$tmpdir/oracle.json" > "$tmpdir/oracle.scrubbed"
  if ! cmp -s "$tmpdir/norm.scrubbed" "$tmpdir/oracle.scrubbed"; then
    echo "perf check: FPGAPART_FM_ORACLE=1 changed the $circuit result" >&2
    echo "            (incremental gains disagree with from-scratch rescoring)" >&2
    exit 1
  fi
}

if [ -n "${FPGAPART_PERF_FULL:-}" ]; then
  for c in c1355 c5315 c6288 c7552 s5378 s9234 s13207 s15850 s38584; do
    oracle_identity "$c"
  done
else
  oracle_identity c6288
fi

echo "perf check: ok"
