#!/bin/sh
# Perf-regression smoke gate for the incremental F-M engine.
#
# Three checks, all cheap enough for every CI run:
#
#   1. The hot-loop microbenchmark runs and its artifact carries the two
#      gate numbers (moves/sec and allocated words per applied move) for
#      both gain modes.
#   2. A partition run on a genuinely multi-device circuit exports the
#      incremental-rescoring telemetry: the fm.rescored_cells counter and
#      the fm.moves_per_sec histogram (schema v4).
#   3. Oracle identity: the same partition re-run under
#      FPGAPART_FM_ORACLE=1 — every incrementally maintained best op
#      cross-checked against a from-scratch recomputation after every
#      applied move — must produce byte-identical scrubbed telemetry,
#      partitions included. A stale cached gain either trips the oracle's
#      failwith or changes a decision and trips the cmp.
#
# FPGAPART_PERF_FULL=1 widens check 3 to every bundled circuit (minutes,
# not seconds — the oracle sweep restores the pre-filtering engine's
# cost); the default covers c6288 only. c1355 would be useless here: it
# fits one device, so a partition of it runs zero F-M passes and exports
# no fm.* keys at all.
set -eu
cd "$(dirname "$0")/.."

tmpdir=$(mktemp -d)
trap 'rm -rf "$tmpdir"' EXIT

echo "perf check: hot-loop microbenchmark (c6288, 1 run/mode)..."
dune exec --no-print-directory bench/main.exe -- hotloop \
  --hotloop-circuit c6288 --hotloop-runs 1 > "$tmpdir/hotloop.out"
for key in '"moves_per_sec"' '"alloc_words_per_move"' '"rescored_cells"' \
  '"eager"' '"lazy"'
do
  if ! grep -qF "$key" "$tmpdir/hotloop.out"; then
    echo "perf check: hotloop artifact lacks $key" >&2
    exit 1
  fi
done

run() {
  circuit=$1; out=$2; shift 2
  dune exec --no-print-directory bin/fpgapart.exe -- \
    partition --circuit "$circuit" --seed 1 --stats-json "$out" "$@" \
    >/dev/null
}

echo "perf check: incremental-rescoring telemetry (c6288)..."
run c6288 "$tmpdir/plain.json"
for key in '"fm.rescored_cells"' '"fm.moves_per_sec"'
do
  if ! grep -qF "$key" "$tmpdir/plain.json"; then
    echo "perf check: stats JSON lacks $key" >&2
    exit 1
  fi
done

scrub() {
  python3 tools/scrub_stats.py "$1"
}

oracle_identity() {
  circuit=$1
  echo "perf check: oracle identity on $circuit..."
  run "$circuit" "$tmpdir/norm.json"
  FPGAPART_FM_ORACLE=1 run "$circuit" "$tmpdir/oracle.json"
  scrub "$tmpdir/norm.json" > "$tmpdir/norm.scrubbed"
  scrub "$tmpdir/oracle.json" > "$tmpdir/oracle.scrubbed"
  if ! cmp -s "$tmpdir/norm.scrubbed" "$tmpdir/oracle.scrubbed"; then
    echo "perf check: FPGAPART_FM_ORACLE=1 changed the $circuit result" >&2
    echo "            (incremental gains disagree with from-scratch rescoring)" >&2
    exit 1
  fi
}

if [ -n "${FPGAPART_PERF_FULL:-}" ]; then
  for c in c1355 c5315 c6288 c7552 s5378 s9234 s13207 s15850 s38584; do
    oracle_identity "$c"
  done
else
  oracle_identity c6288
fi

# 4. Flat-path byte identity: with multilevel disabled (the default),
#    every bundled circuit's objective-stable telemetry must still
#    byte-match the scalar-era goldens in test/golden/. Unlike the
#    check_objectives.sh loop this runs the pure defaults — no
#    --objective flag — so it also gates the default-options plumbing
#    (strategy = Flat) that the multilevel work threaded through the
#    driver.
echo "perf check: flat-path golden identity (9 circuits, defaults)..."
for c in c1355 c5315 c6288 c7552 s5378 s9234 s13207 s15850 s38584; do
  run "$c" "$tmpdir/flat.json"
  python3 tools/extract_stable.py "$tmpdir/flat.json" > "$tmpdir/flat.stable"
  if ! cmp -s "$tmpdir/flat.stable" "test/golden/$c.baseline.json"; then
    echo "perf check: flat default run of $c drifted from test/golden/$c.baseline.json" >&2
    diff "test/golden/$c.baseline.json" "$tmpdir/flat.stable" | head -20 >&2
    exit 1
  fi
done

# 5. Multilevel at scale: the V-cycle must take a seeded 100k-cell
#    Rent-profile circuit to a feasible partition inside the wall
#    budget. The partition phase on a typical desktop core lands in
#    single-digit seconds; the default budget leaves headroom for slow
#    CI hosts (override with FPGAPART_ML_BUDGET_SECS). Feasibility is
#    asserted through the result itself: a partition error exits
#    non-zero, and the stats document always carries the part list of a
#    Kway.check-clean result.
ml_budget=${FPGAPART_ML_BUDGET_SECS:-30}
scale_gate() {
  circuit=$1; budget=$2
  echo "perf check: multilevel $circuit under ${budget}s partition wall..."
  dune exec --no-print-directory bin/fpgapart.exe -- \
    partition --circuit "$circuit" --device-lib bench/scale_devices.json \
    --multilevel --stats-json "$tmpdir/ml.json" >/dev/null
  python3 - "$tmpdir/ml.json" "$budget" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
budget = float(sys.argv[2])
res = doc["result"]
wall = res["wall_secs"]
if not res["parts"]:
    sys.exit("multilevel result carries no parts")
if res["feasible_runs"] < 1:
    sys.exit("multilevel result reports no feasible run")
if wall > budget:
    sys.exit(f"multilevel partition took {wall:.1f}s (budget {budget:.0f}s)")
print(f"  {len(res['parts'])} devices, ${res['total_cost']:.0f}, {wall:.1f}s partition wall")
EOF
}
scale_gate gen100k "$ml_budget"

# FPGAPART_PERF_FULL widens the scale gate to the million-cell
# generator profile (several minutes of generation + mapping on top of
# the partition itself).
if [ -n "${FPGAPART_PERF_FULL:-}" ]; then
  scale_gate gen1m "${FPGAPART_ML_BUDGET_1M_SECS:-300}"
fi

echo "perf check: ok"
