#!/bin/sh
# Telemetry acceptance gate: generate a stats document with
# `fpgapart partition --stats-json` on a genuinely multi-device circuit
# and fail if the JSON schema keys drift or the determinism contract
# (same seed => byte-identical modulo *_secs fields) breaks.
set -eu
cd "$(dirname "$0")/.."

tmpdir=$(mktemp -d)
trap 'rm -rf "$tmpdir"' EXIT

run() {
  dune exec --no-print-directory bin/fpgapart.exe -- \
    partition --circuit c6288 --seed 1 --stats-json "$1" >/dev/null
}

run "$tmpdir/a.json"

# Every key the README documents as schema v1 must be present, including
# the per-pass F-M event fields and the per-split device-window attempts.
for key in \
  '"schema_version": 1' '"circuit"' '"seed"' '"options"' '"result"' \
  '"obs"' '"counters"' '"timers"' '"events"' \
  '"parts"' '"elapsed_secs"' \
  '"event": "fm.pass"' '"event": "kway.device_attempt"' \
  '"event": "kway.split"' \
  '"pass"' '"applied"' '"rolled_back"' '"repl_attempted"' '"repl_accepted"' \
  '"cut"' '"terminals"' '"improved"' '"feasible"' '"span"' \
  '"fm.passes"' '"kway.device_attempts"' '"kway.splits"'
do
  if ! grep -qF "$key" "$tmpdir/a.json"; then
    echo "schema check: missing $key in stats JSON" >&2
    exit 1
  fi
done

run "$tmpdir/b.json"

# The only permitted nondeterminism is elapsed time, and every such field
# ends in _secs. Null them out and require byte identity.
scrub() {
  sed -e 's|"\([A-Za-z0-9_/.-]*_secs\)": [-+eE0-9.]*|"\1": null|g' "$1"
}
scrub "$tmpdir/a.json" > "$tmpdir/a.scrubbed"
scrub "$tmpdir/b.json" > "$tmpdir/b.scrubbed"
if ! cmp -s "$tmpdir/a.scrubbed" "$tmpdir/b.scrubbed"; then
  echo "schema check: same-seed runs differ beyond *_secs fields" >&2
  exit 1
fi

echo "schema check: ok"
