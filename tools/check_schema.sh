#!/bin/sh
# Telemetry acceptance gate: generate a stats document with
# `fpgapart partition --stats-json` on a genuinely multi-device circuit
# and fail if the JSON schema keys drift, the determinism contract
# (same seed => byte-identical modulo *_secs/*_per_sec/*_util fields) breaks, or the
# parallel search leaks into the telemetry (--jobs 4 must scrub to the
# same bytes as --jobs 1 — even with --trace enabled, since the trace is
# a separate artifact that must never leak into the stats document).
#
# When SCRUB_OUT is set, the scrubbed document is also copied there so a
# caller (the Makefile's ci target) can diff gate runs made under
# different FPGAPART_JOBS settings.
set -eu
cd "$(dirname "$0")/.."

tmpdir=$(mktemp -d)
trap 'rm -rf "$tmpdir"' EXIT

run() {
  out=$1; shift
  dune exec --no-print-directory bin/fpgapart.exe -- \
    partition --circuit c6288 --seed 1 --stats-json "$out" "$@" >/dev/null
}

run "$tmpdir/a.json"

# Every key the README documents as schema v6 must be present, including
# the per-pass F-M event fields, the per-split device-window attempts,
# the split wall/CPU timing of the result, the v3 histograms (name ->
# {count; sum; buckets}) of F-M gains and bucket-scan lengths, the
# v4 incremental-rescoring telemetry (fm.rescored_cells counter,
# fm.moves_per_sec rate histogram), the v5 objective name in the
# options plus the per-axis resource_util object in the result, and
# the v6 strategy field ("flat" here; the multilevel knob object is
# checked by the dedicated multilevel run below).
for key in \
  '"schema_version": 6' '"circuit"' '"seed"' '"options"' '"result"' \
  '"obs"' '"counters"' '"timers"' '"events"' \
  '"parts"' '"wall_secs"' '"cpu_secs"' \
  '"event": "fm.pass"' '"event": "kway.device_attempt"' \
  '"event": "kway.split"' \
  '"pass"' '"applied"' '"rolled_back"' '"repl_attempted"' '"repl_accepted"' \
  '"cut"' '"terminals"' '"improved"' '"feasible"' '"span"' \
  '"fm.passes"' '"kway.device_attempts"' '"kway.splits"' \
  '"fm.rescored_cells"' \
  '"objective": "paper"' '"resource_util"' '"clb_util"' '"io_util"' \
  '"histograms"' '"fm.gain"' '"fm.scan_len"' '"fm.moves_per_sec"' \
  '"kway.attempt_cut"' '"kway.split_cut"' \
  '"count"' '"sum"' '"buckets"' \
  '"strategy": "flat"'
do
  if ! grep -qF "$key" "$tmpdir/a.json"; then
    echo "schema check: missing $key in stats JSON" >&2
    exit 1
  fi
done

# Schema v4 deliberately omits jobs from the options object: the scrubbed
# document must be independent of the --jobs setting.
if grep -qF '"jobs"' "$tmpdir/a.json"; then
  echo "schema check: options must not record jobs (breaks the jobs-independence diff)" >&2
  exit 1
fi

# The wall-clock trace lives only in the --trace artifact; its presence
# in the stats document would break jobs-independence (timestamps, track
# ids and GC deltas are execution-dependent).
if grep -qF '"traceEvents"' "$tmpdir/a.json"; then
  echo "schema check: trace events leaked into the stats JSON" >&2
  exit 1
fi

run "$tmpdir/b.json"
run "$tmpdir/j4.json" --jobs 4 --trace "$tmpdir/j4.trace.json"

# The only masked keys are wall-derived *_secs fields, (since v4)
# *_per_sec rate histograms, and (since v5) derived *_util utilization
# ratios; values span multiple pretty-printed lines — so the scrub
# parses the JSON instead of pattern-matching lines, mirroring
# Obs.Snapshot.scrub_elapsed exactly.
scrub() {
  python3 tools/scrub_stats.py "$1"
}
scrub "$tmpdir/a.json" > "$tmpdir/a.scrubbed"
scrub "$tmpdir/b.json" > "$tmpdir/b.scrubbed"
scrub "$tmpdir/j4.json" > "$tmpdir/j4.scrubbed"
if ! cmp -s "$tmpdir/a.scrubbed" "$tmpdir/b.scrubbed"; then
  echo "schema check: same-seed runs differ beyond *_secs/*_per_sec/*_util fields" >&2
  exit 1
fi
if ! cmp -s "$tmpdir/a.scrubbed" "$tmpdir/j4.scrubbed"; then
  echo "schema check: --jobs 4 --trace telemetry differs from --jobs 1 beyond *_secs/*_per_sec/*_util fields" >&2
  exit 1
fi

if [ -n "${SCRUB_OUT:-}" ]; then
  mkdir -p "$(dirname "$SCRUB_OUT")"
  cp "$tmpdir/a.scrubbed" "$SCRUB_OUT"
fi

# Multilevel telemetry (v6): a --multilevel run on a circuit that
# actually coarsens must export the V-cycle counters/histograms, the
# multilevel knob object in the options, and obey the same
# jobs-independence contract as the flat driver.
mlrun() {
  out=$1; shift
  dune exec --no-print-directory bin/fpgapart.exe -- \
    partition --circuit s9234 --seed 1 --multilevel --stats-json "$out" \
    "$@" >/dev/null
}
echo "schema check: multilevel telemetry (s9234)..."
mlrun "$tmpdir/ml.json"
for key in \
  '"ml.level"' '"ml.cells_per_level"' '"ml.coarsen_ratio"' \
  '"event": "ml.coarsen"' '"event": "ml.refine"' \
  '"max_levels"' '"coarsen_ratio"' '"refine_passes"'
do
  if ! grep -qF "$key" "$tmpdir/ml.json"; then
    echo "schema check: multilevel stats JSON lacks $key" >&2
    exit 1
  fi
done
mlrun "$tmpdir/ml4.json" --jobs 4
scrub "$tmpdir/ml.json" > "$tmpdir/ml.scrubbed"
scrub "$tmpdir/ml4.json" > "$tmpdir/ml4.scrubbed"
if ! cmp -s "$tmpdir/ml.scrubbed" "$tmpdir/ml4.scrubbed"; then
  echo "schema check: multilevel --jobs 4 telemetry differs from --jobs 1 beyond *_secs/*_per_sec/*_util fields" >&2
  exit 1
fi

# The fleet stats document is its own artifact with its own key set:
# per-worker lifecycle rows, per-tenant fair-queue rows, and the
# layered (memory + disk) cache summary.
dune build --no-print-directory bin/fpgapart.exe
FPGAPART=_build/default/bin/fpgapart.exe
fsock="$tmpdir/fleet.sock"
"$FPGAPART" serve --socket "$fsock" --workers 1 \
    --cache-dir "$tmpdir/fleetcache" >/dev/null 2>&1 &
fpid=$!
i=0
while [ ! -S "$fsock" ]; do
  i=$((i + 1))
  [ "$i" -gt 150 ] && { echo "schema check: fleet never bound" >&2; exit 1; }
  sleep 0.1
done
"$FPGAPART" fleet-stats --socket "$fsock" > "$tmpdir/fleet.json"
"$FPGAPART" svc-shutdown --socket "$fsock" >/dev/null
wait "$fpid" 2>/dev/null || true
for key in \
  '"artifact": "service.fleet_stats"' '"workers"' '"tenants"' \
  '"queue_len"' '"tenant_cap"' '"inflight"' '"cache"' '"disk_cache"' \
  '"restarts"' '"segments"' '"corrupt_skipped"' '"obs"'
do
  if ! grep -qF "$key" "$tmpdir/fleet.json"; then
    echo "schema check: missing $key in fleet stats JSON" >&2
    exit 1
  fi
done
echo "schema check: fleet stats keys ok"

echo "schema check: ok"
