#!/bin/sh
# Fleet acceptance gate: boot a 4-worker fleet on a throwaway socket and
# drive it hard. Checks that (0) the scheduler answers health with the
# worker pool attached, (1) the load generator pushes >= 1000 concurrent
# jobs across >= 2 tenants through the fleet with zero lost or
# duplicated replies and a sane p99, (2) a worker SIGKILLed mid-job is
# respawned and its job requeued exactly once — the client still gets
# its result and the service.worker_restarts / service.requeues counters
# advance, (3) the persistent result cache survives a full fleet
# restart (the resubmitted circuit is answered from disk), and (4) a
# single-worker fleet replies byte-identically to the single-process
# daemon for the same submission.
set -eu
cd "$(dirname "$0")/.."

dune build --no-print-directory bin/fpgapart.exe tools/loadgen/loadgen.exe
FPGAPART=_build/default/bin/fpgapart.exe
LOADGEN=_build/default/tools/loadgen/loadgen.exe

tmpdir=$(mktemp -d)
sock="$tmpdir/fleet.sock"
cleanup() {
    "$FPGAPART" svc-shutdown --socket "$sock" >/dev/null 2>&1 || true
    "$FPGAPART" svc-shutdown --socket "$tmpdir/solo.sock" >/dev/null 2>&1 || true
    "$FPGAPART" svc-shutdown --socket "$tmpdir/one.sock" >/dev/null 2>&1 || true
    [ -n "${fleet_pid:-}" ] && wait "$fleet_pid" 2>/dev/null || true
    rm -rf "$tmpdir"
}
trap cleanup EXIT

wait_sock() {
    i=0
    while [ ! -S "$1" ]; do
        i=$((i + 1))
        [ "$i" -gt 150 ] && { echo "daemon never bound $1" >&2; exit 1; }
        sleep 0.1
    done
}

wait_workers() {
    # Block until every worker of the fleet on $1 reports up.
    want=$2
    i=0
    while :; do
        up=$("$FPGAPART" svc-health --socket "$1" 2>/dev/null \
            | python3 -c 'import json,sys; print(json.load(sys.stdin).get("workers_up", 0))' \
            || echo 0)
        [ "$up" -ge "$want" ] && break
        i=$((i + 1))
        [ "$i" -gt 150 ] && { echo "workers never came up on $1" >&2; exit 1; }
        sleep 0.1
    done
}

"$FPGAPART" serve --socket "$sock" --workers 4 --queue-cap 512 \
    --cache-dir "$tmpdir/cache" >/dev/null 2>"$tmpdir/fleet.err" &
fleet_pid=$!
wait_sock "$sock"
wait_workers "$sock" 4

# 0. Health carries the pool.
"$FPGAPART" svc-health --socket "$sock" | python3 -c '
import json, sys
h = json.load(sys.stdin)
assert h["state"] == "accepting", h
assert h["workers"] == 4, h
assert h["workers_up"] == 4, h
print("fleet check: health ok,", h["workers_up"], "workers up")
'

# 1. The load generator asserts zero lost / zero duplicated replies and
#    the p99 budget itself (exit 1 on violation).
"$LOADGEN" --socket "$sock" --jobs 1000 --clients 32 --tenants 4 \
    --seeds 2 --p99-ms 30000 > "$tmpdir/loadgen.json"
python3 - "$tmpdir/loadgen.json" <<'PY'
import json, sys
s = json.load(open(sys.argv[1]))
assert s["received"] == s["jobs"] == 1000, s
assert s["lost"] == 0 and s["duplicated"] == 0, s
print("fleet check: loadgen ok —", s["jobs"], "jobs, p99", round(s["p99_ms"], 1), "ms")
PY

# 2. SIGKILL a busy worker mid-partition: the job is requeued exactly
#    once, the client reply still arrives, and the restart/requeue
#    counters advance.
"$FPGAPART" submit --socket "$sock" --circuit s13207 --seed 97 --runs 4 \
    > "$tmpdir/kill.out" 2>/dev/null &
submit_pid=$!
busy=""
i=0
while [ -z "$busy" ]; do
    i=$((i + 1))
    [ "$i" -gt 100 ] && { echo "no worker ever went busy" >&2; exit 1; }
    busy=$("$FPGAPART" fleet-stats --socket "$sock" | python3 -c '
import json, sys
w = [w["pid"] for w in json.load(sys.stdin)["workers"] if w["state"] == "busy"]
print(w[0] if w else "")
')
    [ -z "$busy" ] && sleep 0.1
done
kill -9 "$busy"
wait "$submit_pid"
grep -q '"total_cost"' "$tmpdir/kill.out" \
    || { echo "requeued job never delivered a result" >&2; exit 1; }
"$FPGAPART" fleet-stats --socket "$sock" | python3 -c '
import json, sys
f = json.load(sys.stdin)
c = f["obs"]["counters"]
assert c.get("service.requeues", 0) >= 1, c
assert c.get("service.worker_restarts", 0) >= 1, c
print("fleet check: worker kill ok — requeues", c["service.requeues"],
      "restarts", c["service.worker_restarts"])
'

# 3. Disk cache survives a restart: warm a key, bounce the fleet, and
#    the same submission must be a cache hit served from disk.
"$FPGAPART" submit --socket "$sock" --circuit c1355 --seed 4242 \
    >/dev/null 2>&1
"$FPGAPART" svc-shutdown --socket "$sock" >/dev/null
wait "$fleet_pid" 2>/dev/null || true
"$FPGAPART" serve --socket "$sock" --workers 2 --queue-cap 512 \
    --cache-dir "$tmpdir/cache" >/dev/null 2>>"$tmpdir/fleet.err" &
fleet_pid=$!
wait_sock "$sock"
wait_workers "$sock" 2
"$FPGAPART" submit --socket "$sock" --circuit c1355 --seed 4242 \
    > "$tmpdir/warm.out" 2>"$tmpdir/warm.err"
grep -q 'cache hit' "$tmpdir/warm.err" \
    || { echo "disk cache did not survive the restart" >&2; exit 1; }
"$FPGAPART" fleet-stats --socket "$sock" | python3 -c '
import json, sys
f = json.load(sys.stdin)
assert f["disk_cache"]["len"] >= 1, f["disk_cache"]
assert f["obs"]["counters"].get("fleet.disk_cache_hit", 0) >= 1, f["obs"]["counters"]
print("fleet check: disk cache ok —", f["disk_cache"]["len"], "keys on disk")
'
"$FPGAPART" svc-shutdown --socket "$sock" >/dev/null
wait "$fleet_pid" 2>/dev/null || true

# 4. A single-worker fleet is byte-identical to the single-process
#    daemon for the same submission (scrubbing is unnecessary: result
#    documents carry no timings).
"$FPGAPART" serve --socket "$tmpdir/solo.sock" >/dev/null 2>&1 &
"$FPGAPART" serve --socket "$tmpdir/one.sock" --workers 1 >/dev/null 2>&1 &
wait_sock "$tmpdir/solo.sock"
wait_sock "$tmpdir/one.sock"
wait_workers "$tmpdir/one.sock" 1
"$FPGAPART" submit --socket "$tmpdir/solo.sock" --circuit c1355 --seed 9 \
    > "$tmpdir/solo.json" 2>/dev/null
"$FPGAPART" submit --socket "$tmpdir/one.sock" --circuit c1355 --seed 9 \
    > "$tmpdir/one.json" 2>/dev/null
cmp "$tmpdir/solo.json" "$tmpdir/one.json" \
    || { echo "single-worker fleet reply differs from daemon reply" >&2; exit 1; }
echo "fleet check: single-worker fleet is byte-identical to the daemon"

echo "fleet check: all green"
